package ros

// Benchmark harness for the thesis's performance claims (see
// DESIGN.md's experiment index and EXPERIMENTS.md for results):
//
//	E1  write cost:    pure log ≈ hybrid ≪ shadowing      (§1.2.2, §4.1)
//	E2  recovery cost: shadowing ≪ hybrid < pure log      (§1.2.2, §4.1)
//	E3  recovery scan: hybrid reads outcome entries only  (§4.1)
//	E4  early prepare shortens the prepare phase          (§4.4)
//	E5  snapshot ∝ live set, compaction ∝ whole log       (§5.3)
//	E6  housekeeping bounds recovery cost                 (ch. 5)
//	E11 group commit shares forces across committers      (§1.2, §4.1)
//
// The absolute numbers are simulation times; the claims are about the
// relative shapes, which EXPERIMENTS.md records.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/ids"
)

// buildGuardian creates a guardian with n counters bound to stable
// variables, all committed.
func buildGuardian(b *testing.B, backend core.Backend, n int) (*guardian.Guardian, []*Atomic) {
	b.Helper()
	g, err := guardian.New(1, guardian.WithBackend(backend))
	if err != nil {
		b.Fatal(err)
	}
	counters := make([]*Atomic, n)
	a := g.Begin()
	for i := range counters {
		c, err := a.NewAtomic(Int(0))
		if err != nil {
			b.Fatal(err)
		}
		counters[i] = c
		if err := a.SetVar(fmt.Sprintf("c%d", i), c); err != nil {
			b.Fatal(err)
		}
	}
	if err := a.Commit(); err != nil {
		b.Fatal(err)
	}
	return g, counters
}

// commitBatch commits one action updating k counters starting at off.
func commitBatch(b *testing.B, g *guardian.Guardian, counters []*Atomic, off, k int) {
	b.Helper()
	a := g.Begin()
	for j := 0; j < k; j++ {
		c := counters[(off+j)%len(counters)]
		if err := a.Update(c, func(v Value) Value { return Int(int64(v.(Int)) + 1) }); err != nil {
			b.Fatal(err)
		}
	}
	if err := a.Commit(); err != nil {
		b.Fatal(err)
	}
}

// --- E1: write cost per committed action --------------------------------

func benchWrite(b *testing.B, backend core.Backend) {
	for _, objs := range []int{64, 512} {
		for _, batch := range []int{1, 8} {
			b.Run(fmt.Sprintf("objs=%d/batch=%d", objs, batch), func(b *testing.B) {
				g, counters := buildGuardian(b, backend, objs)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					commitBatch(b, g, counters, i, batch)
				}
				b.StopTimer()
				b.ReportMetric(float64(g.RS().LogBytes())/float64(b.N), "logB/op")
			})
		}
	}
}

func BenchmarkWritePureLog(b *testing.B)   { benchWrite(b, core.BackendSimple) }
func BenchmarkWriteHybridLog(b *testing.B) { benchWrite(b, core.BackendHybrid) }
func BenchmarkWriteShadow(b *testing.B)    { benchWrite(b, core.BackendShadow) }

// --- E2: recovery cost after a history of commits ------------------------

func benchRecover(b *testing.B, backend core.Backend) {
	for _, history := range []int{100, 1000} {
		b.Run(fmt.Sprintf("history=%d", history), func(b *testing.B) {
			g, counters := buildGuardian(b, backend, 32)
			for i := 0; i < history; i++ {
				commitBatch(b, g, counters, i, 2)
			}
			g.Crash()
			b.ResetTimer()
			var entries int
			for i := 0; i < b.N; i++ {
				rec, err := guardian.RecoverStats(g)
				if err != nil {
					b.Fatal(err)
				}
				entries = rec.EntriesRead
			}
			b.StopTimer()
			b.ReportMetric(float64(entries), "entriesRead")
		})
	}
}

func BenchmarkRecoverPureLog(b *testing.B)   { benchRecover(b, core.BackendSimple) }
func BenchmarkRecoverHybridLog(b *testing.B) { benchRecover(b, core.BackendHybrid) }
func BenchmarkRecoverShadow(b *testing.B)    { benchRecover(b, core.BackendShadow) }

// --- E3: recovery scan cost (entries examined) ---------------------------

// BenchmarkRecoveryScanCost reports how many log entries each
// organization examines to recover the same state: the structural
// difference of §4.1 (and §1.2.2 for shadowing).
func BenchmarkRecoveryScanCost(b *testing.B) {
	for _, backend := range []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow} {
		for _, batch := range []int{1, 16} { // data entries per outcome
			history := 200
			b.Run(fmt.Sprintf("%s/batch=%d", backend, batch), func(b *testing.B) {
				g, counters := buildGuardian(b, backend, 32)
				for i := 0; i < history; i++ {
					commitBatch(b, g, counters, i, batch)
				}
				g.Crash()
				b.ResetTimer()
				var entries float64
				for i := 0; i < b.N; i++ {
					rec, err := guardian.RecoverStats(g)
					if err != nil {
						b.Fatal(err)
					}
					entries = float64(rec.EntriesRead)
				}
				b.ReportMetric(entries, "entriesRead")
			})
		}
	}
}

// --- E4: early prepare ----------------------------------------------------

// BenchmarkEarlyPrepare measures the prepare-to-reply latency with and
// without early prepare (§4.4): when the data entries were written
// ahead of time, preparing forces only the prepared outcome entry.
func BenchmarkEarlyPrepare(b *testing.B) {
	for _, early := range []bool{false, true} {
		name := "cold"
		if early {
			name = "early"
		}
		for _, k := range []int{4, 32} {
			b.Run(fmt.Sprintf("%s/objects=%d", name, k), func(b *testing.B) {
				g, counters := buildGuardian(b, core.BackendHybrid, k)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					a := g.Begin()
					for _, c := range counters {
						if err := a.Update(c, func(v Value) Value { return Int(int64(v.(Int)) + 1) }); err != nil {
							b.Fatal(err)
						}
					}
					if early {
						if err := a.EarlyPrepare(); err != nil {
							b.Fatal(err)
						}
					}
					b.StartTimer()
					// The timed region: what happens when the prepare
					// message arrives.
					if _, err := g.HandlePrepare(a.ID()); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if err := g.HandleCommit(a.ID()); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			})
		}
	}
}

// --- E5: compaction vs snapshot -------------------------------------------

// benchHousekeeping measures one housekeeping pass over a log whose
// dead:live ratio is controlled: `live` objects, `dead` superseded
// versions.
func benchHousekeeping(b *testing.B, kind core.HousekeepKind) {
	for _, live := range []int{32} {
		for _, deadRatio := range []int{2, 16, 64} {
			b.Run(fmt.Sprintf("live=%d/dead=%dx", live, deadRatio), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					g, counters := buildGuardian(b, core.BackendHybrid, live)
					for j := 0; j < live*deadRatio/2; j++ {
						commitBatch(b, g, counters, j, 2)
					}
					b.StartTimer()
					stats, err := g.Housekeep(kind)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					b.ReportMetric(float64(stats.OldEntriesRead), "oldEntriesRead")
					b.ReportMetric(float64(stats.ObjectsCopied), "objectsCopied")
					b.StartTimer()
				}
			})
		}
	}
}

func BenchmarkCompaction(b *testing.B) { benchHousekeeping(b, core.HousekeepCompact) }
func BenchmarkSnapshot(b *testing.B)   { benchHousekeeping(b, core.HousekeepSnapshot) }

// --- E6: recovery cost before vs after housekeeping ------------------------

func BenchmarkRecoveryAfterHousekeeping(b *testing.B) {
	for _, housekept := range []bool{false, true} {
		name := "before"
		if housekept {
			name = "after"
		}
		b.Run(name, func(b *testing.B) {
			g, counters := buildGuardian(b, core.BackendHybrid, 32)
			for i := 0; i < 500; i++ {
				commitBatch(b, g, counters, i, 2)
			}
			if housekept {
				if _, err := g.Housekeep(core.HousekeepSnapshot); err != nil {
					b.Fatal(err)
				}
			}
			g.Crash()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := guardian.Restart(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7 companion: message cost of two-phase commit ------------------------

// BenchmarkTwoPhaseCommit measures a full distributed commit across m
// guardians (the §2.2 protocol overhead).
func BenchmarkTwoPhaseCommit(b *testing.B) {
	for _, m := range []int{2, 4} {
		b.Run(fmt.Sprintf("guardians=%d", m), func(b *testing.B) {
			net := NewNetwork()
			gs := make([]*Guardian, m)
			cs := make([]*Atomic, m)
			for i := range gs {
				g, err := guardian.New(ids.GuardianID(i+1), guardian.WithBackend(core.BackendHybrid))
				if err != nil {
					b.Fatal(err)
				}
				gs[i] = g
				a := g.Begin()
				c, err := a.NewAtomic(Int(0))
				if err != nil {
					b.Fatal(err)
				}
				if err := a.SetVar("c", c); err != nil {
					b.Fatal(err)
				}
				if err := a.Commit(); err != nil {
					b.Fatal(err)
				}
				cs[i] = c
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := gs[0].Begin()
				for j, g := range gs {
					br := a
					if j > 0 {
						br = g.Join(a.ID())
					}
					if err := br.Update(cs[j], func(v Value) Value { return Int(int64(v.(Int)) + 1) }); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := CommitDistributed(net, gs[0], a, gs[1:]...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E11: group commit — forces shared across concurrent committers --------

// groupCommitWriteDelay is the simulated per-block device latency under
// which E11 runs. The default MemDevice write is a memcpy, so forces
// cost nothing and committers never overlap inside one; a realistic
// latency restores the economics the thesis assumes (§1.2: forces are
// the write-cost measure).
const groupCommitWriteDelay = 50 * time.Microsecond

// BenchmarkGroupCommit measures commit throughput and forces per commit
// as the number of concurrent committers grows. Each worker commits
// actions on its own counter — no lock contention — so any force
// sharing comes purely from the log's force scheduler. Serially a local
// commit is four force waits (prepared, committing, committed, done);
// group commit drives forces/commit below 1 once enough committers
// overlap.
func BenchmarkGroupCommit(b *testing.B) {
	for _, backend := range []core.Backend{core.BackendSimple, core.BackendHybrid} {
		for _, workers := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", backend, workers), func(b *testing.B) {
				g, counters := buildGuardian(b, backend, workers)
				g.Volume().SetWriteDelay(groupCommitWriteDelay)
				forces0 := g.RS().Forces()
				bytes0 := g.RS().LogBytes()
				errs := make([]error, workers)
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					w := w
					n := b.N / workers
					if w < b.N%workers {
						n++
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < n; i++ {
							a := g.Begin()
							if err := a.Update(counters[w], func(v Value) Value {
								return Int(int64(v.(Int)) + 1)
							}); err != nil {
								errs[w] = err
								return
							}
							if err := a.Commit(); err != nil {
								errs[w] = err
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(g.RS().Forces()-forces0)/float64(b.N), "forces/commit")
				b.ReportMetric(float64(g.RS().LogBytes()-bytes0)/float64(b.N), "logB/commit")
			})
		}
	}
}

// --- Macro benchmark: a TPC-B-shaped bank (ch. 6 "realistic applications")

// BenchmarkMacroBank runs a classic branch/teller/account transaction
// mix — each transaction updates one branch total, one teller total,
// one account balance, and appends to a mutex history journal — across
// all three stable-storage organizations.
func BenchmarkMacroBank(b *testing.B) {
	const branches, tellers, accounts = 2, 8, 64
	for _, backend := range []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow} {
		b.Run(backend.String(), func(b *testing.B) {
			g, err := guardian.New(1, guardian.WithBackend(backend))
			if err != nil {
				b.Fatal(err)
			}
			setup := g.Begin()
			mk := func(prefix string, n int) []*Atomic {
				out := make([]*Atomic, n)
				for i := range out {
					o, err := setup.NewAtomic(Int(0))
					if err != nil {
						b.Fatal(err)
					}
					if err := setup.SetVar(fmt.Sprintf("%s%d", prefix, i), o); err != nil {
						b.Fatal(err)
					}
					out[i] = o
				}
				return out
			}
			bs := mk("branch", branches)
			ts := mk("teller", tellers)
			as := mk("acct", accounts)
			hist, err := setup.NewMutex(NewList())
			if err != nil {
				b.Fatal(err)
			}
			if err := setup.SetVar("history", hist); err != nil {
				b.Fatal(err)
			}
			if err := setup.Commit(); err != nil {
				b.Fatal(err)
			}
			inc := func(d int64) func(Value) Value {
				return func(v Value) Value { return Int(int64(v.(Int)) + d) }
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delta := int64(i%100 - 50)
				a := g.Begin()
				if err := a.Update(as[i%accounts], inc(delta)); err != nil {
					b.Fatal(err)
				}
				if err := a.Update(ts[i%tellers], inc(delta)); err != nil {
					b.Fatal(err)
				}
				if err := a.Update(bs[i%branches], inc(delta)); err != nil {
					b.Fatal(err)
				}
				if err := a.Seize(hist, func(v Value) Value {
					l := v.(*List)
					if len(l.Elems) > 32 { // bounded journal
						l.Elems = l.Elems[1:]
					}
					l.Elems = append(l.Elems, Int(delta))
					return l
				}); err != nil {
					b.Fatal(err)
				}
				if err := a.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(g.RS().LogBytes())/float64(b.N), "logB/op")
		})
	}
}

// --- Scale: recovery with a large live set and long history ---------------

// BenchmarkRecoveryScale pushes the hybrid log to a larger scale (2k
// live objects, 5k commits) to confirm recovery cost stays proportional
// to outcome entries + live set, and that housekeeping resets it.
func BenchmarkRecoveryScale(b *testing.B) {
	if testing.Short() {
		b.Skip("scale bench skipped in -short mode")
	}
	build := func(housekept bool) *guardian.Guardian {
		g, counters := buildGuardian(b, core.BackendHybrid, 2000)
		for i := 0; i < 5000; i++ {
			commitBatch(b, g, counters, i*3, 4)
		}
		if housekept {
			if _, err := g.Housekeep(core.HousekeepSnapshot); err != nil {
				b.Fatal(err)
			}
		}
		g.Crash()
		return g
	}
	for _, housekept := range []bool{false, true} {
		name := "raw-log"
		if housekept {
			name = "after-housekeeping"
		}
		b.Run(name, func(b *testing.B) {
			g := build(housekept)
			b.ResetTimer()
			var entries int
			for i := 0; i < b.N; i++ {
				rec, err := guardian.RecoverStats(g)
				if err != nil {
					b.Fatal(err)
				}
				entries = rec.EntriesRead
			}
			b.ReportMetric(float64(entries), "entriesRead")
		})
	}
}
