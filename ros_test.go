package ros

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g, err := NewGuardian(1)
	if err != nil {
		t.Fatal(err)
	}
	a := g.Begin()
	acct, err := a.NewAtomic(Int(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetVar("account", acct); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	g.Crash()
	g, err = Recover(g)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := g.VarAtomic("account")
	if !ok {
		t.Fatal("account lost")
	}
	if !ValueEqual(got.Base(), Int(100)) {
		t.Fatalf("account = %s", ValueString(got.Base()))
	}
}

func TestAllBackendsThroughPublicAPI(t *testing.T) {
	for _, b := range []Backend{SimpleLog, HybridLog, Shadowing} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			g, err := NewGuardian(1, WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			a := g.Begin()
			c, err := a.NewAtomic(NewList(Int(1), Str("x")))
			if err != nil {
				t.Fatal(err)
			}
			if err := a.SetVar("v", c); err != nil {
				t.Fatal(err)
			}
			if err := a.Commit(); err != nil {
				t.Fatal(err)
			}
			g.Crash()
			g, err = Recover(g)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := g.VarAtomic("v")
			if !ok || !ValueEqual(got.Base(), NewList(Int(1), Str("x"))) {
				t.Fatalf("recovered %v", got)
			}
		})
	}
}

func TestDistributedTransferWithRecovery(t *testing.T) {
	net := NewNetwork()
	bank1, err := NewGuardian(1)
	if err != nil {
		t.Fatal(err)
	}
	bank2, err := NewGuardian(2)
	if err != nil {
		t.Fatal(err)
	}
	setup := func(g *Guardian, balance int64) *Atomic {
		a := g.Begin()
		acct, err := a.NewAtomic(Int(balance))
		if err != nil {
			t.Fatal(err)
		}
		if err := a.SetVar("acct", acct); err != nil {
			t.Fatal(err)
		}
		if err := a.Commit(); err != nil {
			t.Fatal(err)
		}
		return acct
	}
	a1 := setup(bank1, 500)
	a2 := setup(bank2, 100)

	// Transfer 200 from bank1 to bank2 under one top-level action.
	act := bank1.Begin()
	br := bank2.Join(act.ID())
	if err := act.Update(a1, func(v Value) Value { return Int(int64(v.(Int)) - 200) }); err != nil {
		t.Fatal(err)
	}
	if err := br.Update(a2, func(v Value) Value { return Int(int64(v.(Int)) + 200) }); err != nil {
		t.Fatal(err)
	}
	res, err := CommitDistributed(net, bank1, act, bank2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Committed || !res.Done {
		t.Fatalf("result = %+v", res)
	}

	// Both survive independent crashes.
	bank1.Crash()
	bank2.Crash()
	bank1, err = Recover(bank1)
	if err != nil {
		t.Fatal(err)
	}
	bank2, err = Recover(bank2)
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := bank1.VarAtomic("acct")
	g2, _ := bank2.VarAtomic("acct")
	if !ValueEqual(g1.Base(), Int(300)) || !ValueEqual(g2.Base(), Int(300)) {
		t.Fatalf("balances %s / %s, want 300 / 300", ValueString(g1.Base()), ValueString(g2.Base()))
	}
}

func TestResolveInDoubtCommit(t *testing.T) {
	net := NewNetwork()
	coord, _ := NewGuardian(1)
	part, _ := NewGuardian(2)
	setup := func(g *Guardian) *Atomic {
		a := g.Begin()
		c, _ := a.NewAtomic(Int(0))
		if err := a.SetVar("c", c); err != nil {
			t.Fatal(err)
		}
		if err := a.Commit(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := setup(coord)
	c2 := setup(part)

	act := coord.Begin()
	br := part.Join(act.ID())
	if err := act.Set(c1, Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := br.Set(c2, Int(1)); err != nil {
		t.Fatal(err)
	}
	// Drive phase one by hand, write the committing record, then crash
	// the participant before the commit message arrives.
	if v, err := coord.HandlePrepare(act.ID()); err != nil || v != 1 {
		t.Fatalf("coord prepare: %v %v", v, err)
	}
	if v, err := part.HandlePrepare(act.ID()); err != nil || v != 1 {
		t.Fatalf("part prepare: %v %v", v, err)
	}
	if err := coord.Committing(act.ID(), []GuardianID{1, 2}); err != nil {
		t.Fatal(err)
	}
	part.Crash()
	// The participant recovers in doubt and queries the coordinator.
	part, err := Recover(part)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.InDoubt()) != 1 {
		t.Fatalf("InDoubt = %v", part.InDoubt())
	}
	if err := ResolveInDoubt(net, part, map[GuardianID]*Guardian{1: coord}); err != nil {
		t.Fatal(err)
	}
	got, _ := part.VarAtomic("c")
	if !ValueEqual(got.Base(), Int(1)) {
		t.Fatalf("participant c = %s, want committed 1", ValueString(got.Base()))
	}
	if len(part.InDoubt()) != 0 {
		t.Fatalf("still in doubt: %v", part.InDoubt())
	}
}

func TestResolveInDoubtAbort(t *testing.T) {
	net := NewNetwork()
	coord, _ := NewGuardian(1)
	part, _ := NewGuardian(2)
	a := part.Begin() // never reaches the coordinator's committing record
	c, _ := a.NewAtomic(Int(5))
	if err := a.SetVar("c", c); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}

	act := coord.Begin()
	br := part.Join(act.ID())
	if err := br.Set(c, Int(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := part.HandlePrepare(act.ID()); err != nil {
		t.Fatal(err)
	}
	// Coordinator crashes before committing: presumed abort (§2.2.3).
	coord.Crash()
	coord2, err := Recover(coord)
	if err != nil {
		t.Fatal(err)
	}
	part.Crash()
	part, err = Recover(part)
	if err != nil {
		t.Fatal(err)
	}
	if err := ResolveInDoubt(net, part, map[GuardianID]*Guardian{1: coord2}); err != nil {
		t.Fatal(err)
	}
	got, _ := part.VarAtomic("c")
	if !ValueEqual(got.Base(), Int(5)) {
		t.Fatalf("c = %s, want aborted back to 5", ValueString(got.Base()))
	}
}

func TestHousekeepingThroughPublicAPI(t *testing.T) {
	g, _ := NewGuardian(1, WithBackend(HybridLog))
	a := g.Begin()
	c, _ := a.NewAtomic(Int(0))
	if err := a.SetVar("c", c); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		act := g.Begin()
		if err := act.Set(c, Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := act.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for _, kind := range []HousekeepKind{Compact, Snapshot} {
		stats, err := g.Housekeep(kind)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ObjectsCopied == 0 {
			t.Fatalf("housekeeping %v copied nothing", kind)
		}
	}
	g.Crash()
	g, err := Recover(g)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := g.VarAtomic("c")
	if !ValueEqual(got.Base(), Int(39)) {
		t.Fatalf("c = %s", ValueString(got.Base()))
	}
}

func TestValueHelpers(t *testing.T) {
	r := RecordOf("a", Int(1), "b", Str("x"))
	if !ValueEqual(r.Fields["a"], Int(1)) {
		t.Fatal("RecordOf broken")
	}
	l := NewList(Bool(true), Bytes{1, 2})
	if len(l.Elems) != 2 {
		t.Fatal("NewList broken")
	}
	if ValueString(Int(3)) != "3" {
		t.Fatal("ValueString broken")
	}
}
