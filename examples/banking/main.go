// Banking: a distributed funds transfer between two bank guardians
// under two-phase commit (thesis §2.2), including the interesting
// failure: the receiving bank crashes after preparing, recovers in
// doubt, and queries the coordinator for the verdict (§2.2.2).
package main

import (
	"fmt"
	"log"

	ros "repro"
)

func openBank(id ros.GuardianID, name string, balance int64) (*ros.Guardian, *ros.Atomic) {
	g, err := ros.NewGuardian(id)
	if err != nil {
		log.Fatal(err)
	}
	a := g.Begin()
	acct, err := a.NewAtomic(ros.Int(balance))
	if err != nil {
		log.Fatal(err)
	}
	if err := a.SetVar("vault", acct); err != nil {
		log.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s opens with balance %d\n", name, balance)
	return g, acct
}

func balances(east, west *ros.Guardian) (int64, int64) {
	e, _ := east.VarAtomic("vault")
	w, _ := west.VarAtomic("vault")
	return int64(e.Base().(ros.Int)), int64(w.Base().(ros.Int))
}

func main() {
	net := ros.NewNetwork()
	east, eastVault := openBank(1, "bank-east", 1000)
	west, westVault := openBank(2, "bank-west", 200)

	// --- A clean distributed transfer -----------------------------------
	xfer := east.Begin() // east coordinates
	branch := west.Join(xfer.ID())
	const amount = 300
	if err := xfer.Update(eastVault, func(v ros.Value) ros.Value {
		return ros.Int(int64(v.(ros.Int)) - amount)
	}); err != nil {
		log.Fatal(err)
	}
	if err := branch.Update(westVault, func(v ros.Value) ros.Value {
		return ros.Int(int64(v.(ros.Int)) + amount)
	}); err != nil {
		log.Fatal(err)
	}
	res, err := ros.CommitDistributed(net, east, xfer, west)
	if err != nil {
		log.Fatal(err)
	}
	e, w := balances(east, west)
	fmt.Printf("transfer of %d: outcome=%v done=%v; balances east=%d west=%d\n",
		amount, res.Outcome, res.Done, e, w)

	// --- The hard case: participant crashes between prepare and commit ---
	xfer2 := east.Begin()
	branch2 := west.Join(xfer2.ID())
	if err := xfer2.Update(eastVault, func(v ros.Value) ros.Value {
		return ros.Int(int64(v.(ros.Int)) - 100)
	}); err != nil {
		log.Fatal(err)
	}
	wv, _ := west.VarAtomic("vault")
	if err := branch2.Update(wv, func(v ros.Value) ros.Value {
		return ros.Int(int64(v.(ros.Int)) + 100)
	}); err != nil {
		log.Fatal(err)
	}

	// Drive phase one by hand so we can crash west at the worst moment.
	if _, err := east.HandlePrepare(xfer2.ID()); err != nil {
		log.Fatal(err)
	}
	if _, err := west.HandlePrepare(xfer2.ID()); err != nil {
		log.Fatal(err)
	}
	// The coordinator writes its committing record: the point of no
	// return (§2.2.3). The action IS committed, even though west is
	// about to crash without hearing the verdict.
	if err := east.Committing(xfer2.ID(), []ros.GuardianID{east.ID(), west.ID()}); err != nil {
		log.Fatal(err)
	}
	if err := east.HandleCommit(xfer2.ID()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bank-west crashes after preparing...")
	west.Crash()

	// West recovers: the prepared action is in doubt, its write locks
	// restored, awaiting the verdict.
	west, err = ros.Recover(west)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bank-west recovered; in-doubt actions: %v\n", west.InDoubt())

	// The participant queries the coordinator and learns the commit.
	if err := ros.ResolveInDoubt(net, west, map[ros.GuardianID]*ros.Guardian{east.ID(): east}); err != nil {
		log.Fatal(err)
	}
	// The coordinator finishes phase two when west responds.
	if _, err := ros.CompleteDistributed(net, east, xfer2.ID(), east, west); err != nil {
		log.Fatal(err)
	}
	e, w = balances(east, west)
	fmt.Printf("after recovery and resolution: east=%d west=%d (sum %d, money conserved)\n",
		e, w, e+w)
}
