// Quickstart: a single guardian with one stable variable. Shows the
// whole life cycle — create, commit actions, abort an action, crash,
// recover — in ~60 lines.
package main

import (
	"fmt"
	"log"

	ros "repro"
)

func main() {
	// A guardian is a logical node with stable state (thesis §2.1). The
	// default stable-storage organization is the hybrid log (ch. 4).
	g, err := ros.NewGuardian(1)
	if err != nil {
		log.Fatal(err)
	}

	// Bind a stable variable inside an atomic action. Only committed
	// actions change the stable state.
	a := g.Begin()
	acct, err := a.NewAtomic(ros.Int(100))
	if err != nil {
		log.Fatal(err)
	}
	if err := a.SetVar("account", acct); err != nil {
		log.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("opened account with balance", ros.ValueString(acct.Base()))

	// A committed update.
	dep := g.Begin()
	if err := dep.Update(acct, func(v ros.Value) ros.Value {
		return ros.Int(int64(v.(ros.Int)) + 50)
	}); err != nil {
		log.Fatal(err)
	}
	if err := dep.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after deposit:", ros.ValueString(acct.Base()))

	// An aborted update leaves no trace.
	bad := g.Begin()
	if err := bad.Set(acct, ros.Int(-1_000_000)); err != nil {
		log.Fatal(err)
	}
	if err := bad.Abort(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after aborted withdrawal:", ros.ValueString(acct.Base()))

	// Crash the node. All volatile state dies; the stable log survives.
	g.Crash()
	g, err = ros.Recover(g)
	if err != nil {
		log.Fatal(err)
	}
	recovered, ok := g.VarAtomic("account")
	if !ok {
		log.Fatal("account lost — this should be impossible")
	}
	fmt.Println("after crash and recovery:", ros.ValueString(recovered.Base()))
}
