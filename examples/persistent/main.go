// Persistent: a guardian whose stable storage lives on the real
// filesystem. Run it repeatedly — the counter keeps incrementing across
// process restarts, because each run recovers the previous run's
// stable state from the two-copy page files on disk.
//
//	go run ./examples/persistent          # uses ./ros-data
//	go run ./examples/persistent /tmp/x   # custom directory
package main

import (
	"fmt"
	"log"
	"os"

	ros "repro"
)

func main() {
	dir := "ros-data"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}

	vol, err := ros.NewFileVolume(dir, 512, false)
	if err != nil {
		log.Fatal(err)
	}
	//roslint:besteffort every durable write was already fsynced by ForceWrite; Close releases descriptors only
	defer vol.Close()

	var g *ros.Guardian
	if _, statErr := os.Stat(dir + "/gen1-a"); statErr == nil {
		// A previous run left state behind: recover it.
		g, err = ros.OpenGuardian(1, vol, ros.HybridLog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("recovered existing guardian from", dir)
	} else {
		g, err = ros.NewGuardian(1, ros.WithVolume(vol))
		if err != nil {
			log.Fatal(err)
		}
		a := g.Begin()
		c, err := a.NewAtomic(ros.Int(0))
		if err != nil {
			log.Fatal(err)
		}
		if err := a.SetVar("runs", c); err != nil {
			log.Fatal(err)
		}
		if err := a.Commit(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("created new guardian in", dir)
	}

	counter, ok := g.VarAtomic("runs")
	if !ok {
		log.Fatal("runs counter missing")
	}
	a := g.Begin()
	if err := a.Update(counter, func(v ros.Value) ros.Value {
		return ros.Int(int64(v.(ros.Int)) + 1)
	}); err != nil {
		log.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("this program has now run", ros.ValueString(counter.Base()), "time(s)")
}
