// Directory: a replicated name-service built on guardian handlers
// (thesis §2.1) and subactions. A front guardian accepts bind requests
// and fans them out to two replica guardians through handler calls;
// one top-level action updates all three or none. A replica crash
// during commit is resolved through the coordinator query path.
package main

import (
	"fmt"
	"log"

	ros "repro"
)

// newReplica builds a guardian holding a name→address directory and
// exposing bind/lookup handlers.
func newReplica(id ros.GuardianID) *ros.Guardian {
	g, err := ros.NewGuardian(id)
	if err != nil {
		log.Fatal(err)
	}
	boot := g.Begin()
	table, err := boot.NewAtomic(ros.NewRecord())
	if err != nil {
		log.Fatal(err)
	}
	if err := boot.SetVar("directory", table); err != nil {
		log.Fatal(err)
	}
	if err := boot.Commit(); err != nil {
		log.Fatal(err)
	}
	registerHandlers(g)
	return g
}

// registerHandlers installs the replica's external interface. Handlers
// are volatile state: after a crash the recovered guardian re-runs this
// (§2.1 — "once the volatile objects have been restored, the guardian
// ... can respond to new handler calls").
func registerHandlers(g *ros.Guardian) {
	g.RegisterHandler("bind", func(sub *ros.Sub, arg ros.Value) (ros.Value, error) {
		req := arg.(*ros.Record)
		name := string(req.Fields["name"].(ros.Str))
		addr := req.Fields["addr"]
		dir, _ := g.VarAtomic("directory")
		err := sub.Update(dir, func(v ros.Value) ros.Value {
			rec := v.(*ros.Record)
			rec.Fields[name] = addr
			return rec
		})
		return ros.Bool(err == nil), err
	})
	g.RegisterHandler("lookup", func(sub *ros.Sub, arg ros.Value) (ros.Value, error) {
		dir, _ := g.VarAtomic("directory")
		v, err := sub.Read(dir)
		if err != nil {
			return nil, err
		}
		name := string(arg.(ros.Str))
		if addr, ok := v.(*ros.Record).Fields[name]; ok {
			return addr, nil
		}
		return nil, fmt.Errorf("unbound name %q", name)
	})
}

func main() {
	net := ros.NewNetwork()
	front := newReplica(1)
	rep2 := newReplica(2)
	rep3 := newReplica(3)
	replicas := []*ros.Guardian{front, rep2, rep3}

	// Bind names atomically across all replicas.
	for i, name := range []string{"alpha", "beta", "gamma"} {
		a := front.Begin()
		req := ros.RecordOf("name", ros.Str(name), "addr", ros.Int(int64(9000+i)))
		ok := true
		for _, r := range replicas {
			if _, err := ros.Call(net, a, r, "bind", req); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			if err := a.Abort(); err != nil {
				log.Fatal(err)
			}
			continue
		}
		// CommitSpread finds the participants reached by the Calls.
		if _, err := ros.CommitSpread(net, a); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bound %s on all replicas\n", name)
	}

	// A replica crashes and recovers: the directory is intact.
	rep3.Crash()
	var err error
	rep3, err = ros.Recover(rep3)
	if err != nil {
		log.Fatal(err)
	}
	registerHandlers(rep3) // volatile state: handlers come back with the process
	lookup := front.Begin()
	addr, err := ros.Call(net, lookup, rep3, "lookup", ros.Str("beta"))
	if err != nil {
		log.Fatal(err)
	}
	if err := lookup.Abort(); err != nil { // read-only: nothing to keep
		log.Fatal(err)
	}
	fmt.Printf("after replica crash+recovery, beta -> %s on replica 3\n", ros.ValueString(addr))

	// A failed bind (handler error on one replica) leaves no trace.
	front.RegisterHandler("bind", func(*ros.Sub, ros.Value) (ros.Value, error) {
		return nil, fmt.Errorf("front replica refuses")
	})
	a := front.Begin()
	failed := false
	for _, r := range replicas {
		if _, err := ros.Call(net, a, r, "bind",
			ros.RecordOf("name", ros.Str("delta"), "addr", ros.Int(9999))); err != nil {
			failed = true
			break
		}
	}
	if failed {
		if err := a.Abort(); err != nil {
			log.Fatal(err)
		}
	}
	check := front.Begin()
	if _, err := ros.Call(net, check, rep2, "lookup", ros.Str("delta")); err != nil {
		fmt.Println("delta correctly unbound everywhere after the failed bind")
	} else {
		log.Fatal("delta leaked to a replica")
	}
	if err := check.Abort(); err != nil {
		log.Fatal(err)
	}
}
