// Comparison: the three stable-storage organizations side by side on
// the same workload — the thesis's §1.2.2 trade-off made visible:
//
//	log       ⇒ fast writing, but slow recovery
//	shadowing ⇒ slow writing, but fast recovery
//	hybrid    ⇒ writing almost as fast as the log, recovery in between
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	ros "repro"
)

const (
	liveObjects = 128
	commits     = 400
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "organization\tcommit µs (avg)\tstable bytes\trecovery µs\tstate ok")
	for _, backend := range []ros.Backend{ros.SimpleLog, ros.HybridLog, ros.Shadowing} {
		commitUS, bytes, recoverUS, ok := run(backend)
		fmt.Fprintf(w, "%v\t%.1f\t%d\t%.0f\t%v\n", backend, commitUS, bytes, recoverUS, ok)
	}
	w.Flush()
	fmt.Println("\nThe shape to see (thesis §1.2.2, §4.1):")
	fmt.Println("  - shadowing's commit cost is the worst: it rewrites the whole object map each time;")
	fmt.Println("  - its recovery is the best: the map points straight at every live object;")
	fmt.Println("  - the logs write fast; the hybrid log recovers faster than the simple log")
	fmt.Println("    because it follows the outcome-entry chain instead of reading every entry.")
}

func run(backend ros.Backend) (commitUS float64, logBytes uint64, recoverUS float64, ok bool) {
	g, err := ros.NewGuardian(1, ros.WithBackend(backend))
	if err != nil {
		log.Fatal(err)
	}
	setup := g.Begin()
	objs := make([]*ros.Atomic, liveObjects)
	for i := range objs {
		o, err := setup.NewAtomic(ros.Int(0))
		if err != nil {
			log.Fatal(err)
		}
		if err := setup.SetVar(fmt.Sprintf("o%d", i), o); err != nil {
			log.Fatal(err)
		}
		objs[i] = o
	}
	if err := setup.Commit(); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	for i := 0; i < commits; i++ {
		a := g.Begin()
		for j := 0; j < 2; j++ {
			if err := a.Update(objs[(i+j)%liveObjects], func(v ros.Value) ros.Value {
				return ros.Int(int64(v.(ros.Int)) + 1)
			}); err != nil {
				log.Fatal(err)
			}
		}
		if err := a.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	commitUS = float64(time.Since(start).Microseconds()) / commits
	logBytes = g.RS().LogBytes()

	g.Crash()
	start = time.Now()
	g, err = ros.Recover(g)
	if err != nil {
		log.Fatal(err)
	}
	recoverUS = float64(time.Since(start).Microseconds())

	// Verify the recovered state: each object was incremented twice per
	// touching commit; just check the total.
	var total int64
	for i := 0; i < liveObjects; i++ {
		o, found := g.VarAtomic(fmt.Sprintf("o%d", i))
		if !found {
			return commitUS, logBytes, recoverUS, false
		}
		total += int64(o.Base().(ros.Int))
	}
	return commitUS, logBytes, recoverUS, total == commits*2
}
