// Reservations: an airline-style workload (one of the application
// domains the thesis's introduction motivates). A guardian holds a
// seat map of atomic objects plus a mutex audit journal (§2.4.2), books
// seats under load with early prepare (§4.4), housekeeps the log
// periodically (ch. 5), and survives a crash mid-flight.
package main

import (
	"fmt"
	"log"

	ros "repro"
)

const seats = 24

func main() {
	g, err := ros.NewGuardian(1, ros.WithBackend(ros.HybridLog))
	if err != nil {
		log.Fatal(err)
	}

	// Stable state: one atomic object per seat ("" = free) and a mutex
	// journal. The journal is a mutex object: every prepared booking is
	// recorded even if the booking later aborts.
	setup := g.Begin()
	for i := 0; i < seats; i++ {
		seat, err := setup.NewAtomic(ros.Str(""))
		if err != nil {
			log.Fatal(err)
		}
		if err := setup.SetVar(seatName(i), seat); err != nil {
			log.Fatal(err)
		}
	}
	journal, err := setup.NewMutex(ros.NewList())
	if err != nil {
		log.Fatal(err)
	}
	if err := setup.SetVar("journal", journal); err != nil {
		log.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flight opened with %d seats\n", seats)

	// Book seats under load. Every booking early-prepares as soon as its
	// modifications are in place, so the eventual prepare only forces
	// the outcome entries (§4.4). Passengers with odd numbers change
	// their minds (abort) — the journal still records their attempts.
	booked := 0
	for p := 0; p < 40; p++ {
		passenger := fmt.Sprintf("p%02d", p)
		seatIdx := p % seats
		seat, _ := g.VarAtomic(seatName(seatIdx))
		if s := seat.Base().(ros.Str); s != "" {
			continue // already taken
		}
		a := g.Begin()
		if err := a.Set(seat, ros.Str(passenger)); err != nil {
			log.Fatal(err)
		}
		j, _ := g.VarMutex("journal")
		if err := a.Seize(j, func(v ros.Value) ros.Value {
			l := v.(*ros.List)
			l.Elems = append(l.Elems, ros.Str(passenger+" requested seat "+seatName(seatIdx)))
			return l
		}); err != nil {
			log.Fatal(err)
		}
		if err := a.EarlyPrepare(); err != nil {
			log.Fatal(err)
		}
		if p%2 == 1 {
			if err := a.Abort(); err != nil {
				log.Fatal(err)
			}
			continue
		}
		if err := a.Commit(); err != nil {
			log.Fatal(err)
		}
		booked++

		// Housekeep every 8 bookings: the snapshot keeps recovery fast
		// no matter how long the flight stays open (§5.2).
		if booked%8 == 0 {
			stats, err := g.Housekeep(ros.Snapshot)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  housekeeping: log %d -> %d bytes\n", stats.OldLogSize, stats.NewLogSize)
		}
	}
	fmt.Printf("%d seats booked\n", booked)

	// Crash and recover: bookings survive; the journal even remembers
	// the prepared-but-aborted attempts (mutex semantics, §2.4.2).
	g.Crash()
	g, err = ros.Recover(g)
	if err != nil {
		log.Fatal(err)
	}
	taken := 0
	for i := 0; i < seats; i++ {
		seat, ok := g.VarAtomic(seatName(i))
		if !ok {
			log.Fatalf("seat %d lost", i)
		}
		if seat.Base().(ros.Str) != "" {
			taken++
		}
	}
	j, _ := g.VarMutex("journal")
	entries := len(j.Current().(*ros.List).Elems)
	fmt.Printf("after crash: %d seats still booked; journal holds %d entries (including aborted attempts)\n",
		taken, entries)
}

func seatName(i int) string {
	return fmt.Sprintf("seat-%c%d", 'A'+i%6, i/6+1)
}
