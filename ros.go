// Package ros (reliable object storage) is the public API of this
// reproduction of Brian M. Oki's thesis "Reliable Object Storage to
// Support Atomic Actions" (MIT/LCS, 1983) — the stable-storage
// organization and recovery algorithms designed for the Argus system.
//
// The library provides:
//
//   - Guardians: logical nodes with crash-surviving stable state
//     (thesis §2.1), backed by simulated atomic stable storage
//     (Lampson–Sturgis two-copy pages).
//   - Atomic actions with read/write-locked atomic objects and
//     seize-locked mutex objects (§2.4), begun at one guardian and
//     joined at others.
//   - Three interchangeable stable-storage organizations (§1.2): the
//     pure/simple log (ch. 3), the hybrid log (ch. 4, the thesis's
//     contribution), and the shadowing baseline.
//   - Two-phase commit (§2.2) over a simulated network, with crash
//     recovery and in-doubt resolution.
//   - Housekeeping for the hybrid log (ch. 5): log compaction and the
//     stable-state snapshot.
//
// # Quick start
//
//	g, _ := ros.NewGuardian(1)
//	a := g.Begin()
//	acct, _ := a.NewAtomic(ros.Int(100))
//	_ = a.SetVar("account", acct)
//	_ = a.Commit()
//
//	g.Crash()
//	g, _ = ros.Recover(g)
//	acct2, _ := g.VarAtomic("account") // Int(100) again
//
// See the examples directory for distributed transfers, early prepare,
// and housekeeping under load.
package ros

import (
	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/hybridlog"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/stablelog"
	"repro/internal/transport"
	"repro/internal/twopc"
	"repro/internal/value"
)

// --- identifiers --------------------------------------------------------

// GuardianID identifies a guardian (a logical node).
type GuardianID = ids.GuardianID

// ActionID identifies a top-level atomic action; it embeds the
// coordinator's guardian id (§2.2.2).
type ActionID = ids.ActionID

// UID uniquely identifies a recoverable object within its guardian.
type UID = ids.UID

// --- values --------------------------------------------------------------

// Value is a node of an object's data graph: leaves (Int, Str, Bool,
// Bytes), regular composites (*List, *Record), and references to
// recoverable objects (Ref).
type Value = value.Value

// Int is an integer leaf value.
type Int = value.Int

// Str is a string leaf value.
type Str = value.Str

// Bool is a boolean leaf value.
type Bool = value.Bool

// Bytes is an opaque byte-string leaf value.
type Bytes = value.Bytes

// List is a mutable ordered sequence (a regular object: copied whole
// when a referencing recoverable object is written to the log, §2.4.3).
type List = value.List

// Record is a mutable set of named fields (a regular object).
type Record = value.Record

// Ref is a reference to a recoverable object; flattening replaces it
// with the object's UID (§3.3.3.1).
type Ref = value.Ref

// NewList returns a List with the given elements.
func NewList(elems ...Value) *List { return value.NewList(elems...) }

// NewRecord returns an empty Record.
func NewRecord() *Record { return value.NewRecord() }

// RecordOf returns a Record from alternating key, value pairs.
func RecordOf(pairs ...any) *Record { return value.RecordOf(pairs...) }

// RefTo returns a reference to a recoverable object.
func RefTo(obj Recoverable) Ref { return value.Ref{Target: obj} }

// ValueString renders a value for debugging.
func ValueString(v Value) string { return value.String(v) }

// ValueEqual reports structural equality of two values.
func ValueEqual(a, b Value) bool { return value.Equal(a, b) }

// --- objects --------------------------------------------------------------

// Recoverable is a unit written to stable storage: an atomic or mutex
// object (§2.4).
type Recoverable = object.Recoverable

// Atomic is a built-in atomic object: read/write locks and versions
// provide atomicity for the actions that use it (§2.4.1).
type Atomic = object.Atomic

// Mutex is a mutex object: a container with a seize lock whose prepared
// versions survive even aborts (§2.4.2).
type Mutex = object.Mutex

// --- guardians and actions -------------------------------------------------

// Guardian is a logical node with stable state that survives crashes.
type Guardian = guardian.Guardian

// Action is an atomic action's footprint at one guardian.
type Action = guardian.Action

// Sub is a subaction (§2.1): its modifications can be undone without
// aborting the enclosing top-level action, and its locks are acquired
// on the top-level action's behalf.
type Sub = guardian.Sub

// Backend selects the stable-storage organization of a guardian.
type Backend = core.Backend

// The available stable-storage organizations (§1.2).
const (
	// SimpleLog is the chapter 3 pure log: fast writing, slow recovery.
	SimpleLog = core.BackendSimple
	// HybridLog is the chapter 4 hybrid log: fast writing and
	// reasonably fast recovery. The default.
	HybridLog = core.BackendHybrid
	// Shadowing is the §1.2.1 baseline: slow writing, fast recovery.
	Shadowing = core.BackendShadow
)

// HousekeepKind selects a chapter 5 housekeeping algorithm.
type HousekeepKind = core.HousekeepKind

// The housekeeping algorithms (hybrid log only).
const (
	// Compact reads the old log backward and rewrites the survivors
	// (§5.1).
	Compact = core.HousekeepCompact
	// Snapshot copies the stable state out of volatile memory (§5.2) —
	// the technique the thesis concludes is strictly better.
	Snapshot = core.HousekeepSnapshot
)

// HousekeepStats reports the work done by one housekeeping run.
type HousekeepStats = hybridlog.Stats

// Option configures guardian creation.
type Option = guardian.Option

// WithBackend selects the stable-storage organization (default
// HybridLog).
func WithBackend(b Backend) Option { return guardian.WithBackend(b) }

// WithBlockSize sets the simulated stable-device block size.
func WithBlockSize(n int) Option { return guardian.WithBlockSize(n) }

// Volume supplies the stable stores backing a guardian's logs.
type Volume = stablelog.Volume

// FileVolume is a Volume on a real filesystem directory.
type FileVolume = stablelog.FileVolume

// NewFileVolume opens (creating if needed) a file-backed volume. Pass
// it to NewGuardian via WithVolume for on-disk persistence, and reopen
// it after a shutdown with OpenGuardian.
func NewFileVolume(dir string, blockSize int, syncEveryWrite bool) (*FileVolume, error) {
	return stablelog.NewFileVolume(dir, blockSize, syncEveryWrite)
}

// WithVolume runs the guardian's stable storage on the given volume
// (e.g. a FileVolume) instead of the in-memory simulation.
func WithVolume(vol Volume) Option { return guardian.WithVolume(vol) }

// NewGuardian creates a guardian with empty stable state.
func NewGuardian(id GuardianID, opts ...Option) (*Guardian, error) {
	return guardian.New(id, opts...)
}

// OpenGuardian recovers a guardian from an existing volume — typically
// a FileVolume reopened after a process restart.
func OpenGuardian(id GuardianID, vol Volume, backend Backend) (*Guardian, error) {
	return guardian.Open(id, vol, backend)
}

// RunAtomic runs fn inside a fresh top-level action, committing on
// success and aborting on error; lock conflicts and timeouts (the
// possible-deadlock signal) are retried with backoff, the standard
// Argus usage loop.
func RunAtomic(g *Guardian, attempts int, fn func(a *Action) error) error {
	return guardian.RunAtomic(g, attempts, fn)
}

// Recover restarts a crashed guardian from its stable storage,
// rebuilding its heap, accessibility set, and prepared-actions table
// from the log (§3.4/§4.3). Prepared actions come back holding their
// locks; resolve them with ResolveInDoubt.
func Recover(g *Guardian) (*Guardian, error) {
	return guardian.Restart(g)
}

// --- two-phase commit -------------------------------------------------------

// Transport delivers messages between guardians: the simulated
// Network below, or the TCP transport of the serving layer
// (internal/client). The two-phase commit protocol runs unchanged
// over either.
type Transport = transport.Transport

// Network is a simulated network between guardians with node-down and
// link-cut fault injection.
type Network = netsim.Network

// NewNetwork returns a fully connected network.
func NewNetwork() *Network { return netsim.New() }

// Outcome is the fate of a top-level action.
type Outcome = twopc.Outcome

// Action outcomes.
const (
	Committed = twopc.OutcomeCommitted
	Aborted   = twopc.OutcomeAborted
	Unknown   = twopc.OutcomeUnknown
)

// CommitResult reports how a distributed commit ended.
type CommitResult = twopc.Result

// HandlerFunc is the body of a guardian handler (§2.1): it runs inside
// a subaction of the calling action at the target guardian.
type HandlerFunc = guardian.HandlerFunc

// Call invokes a handler at the target guardian on behalf of action a
// over the network. The target becomes a participant in the action's
// two-phase commit; a handler error aborts only the handler's
// subaction.
func Call(net Transport, a *Action, target *Guardian, name string, arg Value) (Value, error) {
	return guardian.Call(net, a, target, name, arg)
}

// CommitSpread commits an action that spread through Call: the
// participant list is assembled automatically from the handler calls.
func CommitSpread(net Transport, a *Action) (CommitResult, error) {
	return guardian.CommitSpread(net, a)
}

// CommitDistributed runs two-phase commit (§2.2) for an action begun at
// coordinator and joined at the other guardians. All guardians —
// including the coordinator — act as participants. On success the
// action's effects are installed at every guardian.
func CommitDistributed(net Transport, coordinator *Guardian, a *Action, others ...*Guardian) (CommitResult, error) {
	parts := make([]twopc.Participant, 0, len(others)+1)
	parts = append(parts, coordinator)
	for _, g := range others {
		parts = append(parts, g)
	}
	c := &twopc.Coordinator{Self: coordinator.ID(), Net: net, Log: coordinator}
	return c.Run(a.ID(), parts)
}

// CompleteDistributed re-drives phase two of an action whose committing
// record is already on the coordinator's log — used after the
// coordinator recovers with the action in Unfinished() (§2.2.3).
func CompleteDistributed(net Transport, coordinator *Guardian, aid ActionID, participants ...*Guardian) (CommitResult, error) {
	parts := make([]twopc.Participant, 0, len(participants))
	for _, g := range participants {
		parts = append(parts, g)
	}
	c := &twopc.Coordinator{Self: coordinator.ID(), Net: net, Log: coordinator}
	return c.Complete(aid, parts)
}

// ResolveInDoubt settles every action that had prepared at g before a
// crash by querying its coordinator (§2.2.2: the participant "can query
// the coordinator to find out the outcome"). coordinators maps guardian
// ids to the (possibly restarted) coordinator guardians.
func ResolveInDoubt(net Transport, g *Guardian, coordinators map[GuardianID]*Guardian) error {
	for _, aid := range g.InDoubt() {
		coord, ok := coordinators[aid.Coordinator]
		if !ok {
			continue // coordinator still down; stay in doubt
		}
		out, err := twopc.Query(net, g.ID(), coord, aid)
		if err != nil {
			continue // unreachable; stay in doubt
		}
		switch out {
		case twopc.OutcomeCommitted:
			if err := g.HandleCommit(aid); err != nil {
				return err
			}
		case twopc.OutcomeAborted:
			if err := g.HandleAbort(aid); err != nil {
				return err
			}
		}
	}
	return nil
}
