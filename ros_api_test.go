package ros

import (
	"testing"
	"time"
)

// TestHandlersAndCommitSpread exercises the handler-based API surface:
// RegisterHandler, Call, CommitSpread, RunAtomic.
func TestHandlersAndCommitSpread(t *testing.T) {
	net := NewNetwork()
	mk := func(id GuardianID) *Guardian {
		g, err := NewGuardian(id, WithBlockSize(256))
		if err != nil {
			t.Fatal(err)
		}
		if err := RunAtomic(g, 1, func(a *Action) error {
			c, err := a.NewAtomic(Int(100))
			if err != nil {
				return err
			}
			return a.SetVar("stock", c)
		}); err != nil {
			t.Fatal(err)
		}
		g.RegisterHandler("take", func(sub *Sub, arg Value) (Value, error) {
			c, _ := g.VarAtomic("stock")
			n := int64(arg.(Int))
			if err := sub.Update(c, func(v Value) Value {
				return Int(int64(v.(Int)) - n)
			}); err != nil {
				return nil, err
			}
			return sub.Read(c)
		})
		return g
	}
	g1 := mk(1)
	g2 := mk(2)

	a := g1.Begin()
	left, err := Call(net, a, g2, "take", Int(30))
	if err != nil {
		t.Fatal(err)
	}
	if !ValueEqual(left, Int(70)) {
		t.Fatalf("take returned %s", ValueString(left))
	}
	res, err := CommitSpread(net, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Committed || !res.Done {
		t.Fatalf("result %+v", res)
	}
	c2, _ := g2.VarAtomic("stock")
	if !ValueEqual(c2.Base(), Int(70)) {
		t.Fatalf("g2 stock = %s", ValueString(c2.Base()))
	}
}

// TestCompleteDistributedAfterCoordinatorCrash: the public phase-two
// re-drive.
func TestCompleteDistributedAfterCoordinatorCrash(t *testing.T) {
	net := NewNetwork()
	coord, _ := NewGuardian(1)
	part, _ := NewGuardian(2)
	for _, g := range []*Guardian{coord, part} {
		if err := RunAtomic(g, 1, func(a *Action) error {
			c, err := a.NewAtomic(Int(0))
			if err != nil {
				return err
			}
			return a.SetVar("c", c)
		}); err != nil {
			t.Fatal(err)
		}
	}
	act := coord.Begin()
	br := part.Join(act.ID())
	cc, _ := coord.VarAtomic("c")
	pc, _ := part.VarAtomic("c")
	if err := act.Set(cc, Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := br.Set(pc, Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.HandlePrepare(act.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := part.HandlePrepare(act.ID()); err != nil {
		t.Fatal(err)
	}
	if err := coord.Committing(act.ID(), []GuardianID{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Coordinator crashes before any commit message.
	coord.Crash()
	coord2, err := Recover(coord)
	if err != nil {
		t.Fatal(err)
	}
	unfinished := coord2.Unfinished()
	if len(unfinished) != 1 {
		t.Fatalf("unfinished = %v", unfinished)
	}
	res, err := CompleteDistributed(net, coord2, unfinished[0], coord2, part)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("result %+v", res)
	}
	gotP, _ := part.VarAtomic("c")
	if !ValueEqual(gotP.Base(), Int(1)) {
		t.Fatalf("participant c = %s", ValueString(gotP.Base()))
	}
	coord2.Crash()
	coord3, err := Recover(coord2)
	if err != nil {
		t.Fatal(err)
	}
	gotC, _ := coord3.VarAtomic("c")
	if !ValueEqual(gotC.Base(), Int(1)) {
		t.Fatalf("coordinator c = %s", ValueString(gotC.Base()))
	}
}

// TestRunAtomicWithWaitingLocks: the retry loop with contention through
// the public API.
func TestRunAtomicWithWaitingLocks(t *testing.T) {
	g, _ := NewGuardian(1)
	if err := RunAtomic(g, 1, func(a *Action) error {
		c, err := a.NewAtomic(Int(0))
		if err != nil {
			return err
		}
		return a.SetVar("n", c)
	}); err != nil {
		t.Fatal(err)
	}
	c, _ := g.VarAtomic("n")
	done := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func() {
			var err error
			for i := 0; i < 5 && err == nil; i++ {
				err = RunAtomic(g, 30, func(a *Action) error {
					return a.UpdateWait(c, 10*time.Millisecond, func(v Value) Value {
						return Int(int64(v.(Int)) + 1)
					})
				})
			}
			done <- err
		}()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !ValueEqual(c.Base(), Int(10)) {
		t.Fatalf("n = %s, want 10", ValueString(c.Base()))
	}
}

// TestValueConstructors covers the remaining helpers.
func TestValueConstructors(t *testing.T) {
	g, _ := NewGuardian(1)
	a := g.Begin()
	obj, err := a.NewAtomic(Int(1))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecord()
	r.Fields["ref"] = RefTo(obj)
	if ValueString(r.Fields["ref"]) != "&O2" {
		t.Fatalf("RefTo = %s", ValueString(r.Fields["ref"]))
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
}
