# Reliable Object Storage — development targets.

GO ?= go
# Extra flags for the soak runs, e.g. `make soak RACE=1` or
# `make soak GOFLAGS=-count=1`. Note that RACE=1 races the soak
# *harness* (the randomized driver, its goroutines, the guardian under
# load) — the exhaustive crash-point sweep replays each history
# single-threaded and asserts on deterministic traces, so its
# assertion path gains nothing from the race detector beyond runtime.
RACE ?=
SOAKFLAGS := $(GOFLAGS) $(if $(RACE),-race)

.PHONY: all build test race cover bench bench-save fuzz lint soak chaos examples tables figures clean

all: lint build test

build:
	$(GO) build ./...

# Static checks: go vet plus the repository's own analyzers
# (cmd/roslint), which enforce the thesis's recovery invariants —
# forced outcome entries, observed I/O errors, sweep determinism,
# wrap-safe sentinel comparisons, and mutex discipline, plus the
# distributed-layer invariants (epoch-fenced replica mutations, total
# wire codecs, deadline-guarded conn I/O). The path-sensitive checks
# run on the internal/analysis/cfg dataflow engine.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/roslint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/... .

bench:
	$(GO) test -bench . -benchmem -benchtime 50x .
	$(GO) test -bench . -benchtime 100x ./internal/stablelog/ ./internal/value/

# Regenerate the committed outputs (test_output.txt, bench_output.txt,
# BENCH_commit.json — the machine-readable E11 group-commit rows —
# BENCH_server.json — the E12 served-throughput curve —
# BENCH_rep.json — the E13 replication cost and failover rows —
# BENCH_shard.json — the E14 shard-scaling and cross-shard 2PC rows —
# and BENCH_read.json — the E16 index-vs-action-path read rows).
bench-save:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
	$(GO) run ./cmd/rosbench -experiment e11 -trace -commitjson BENCH_commit.json
	$(GO) run ./cmd/rosbench -experiment e12 -serverjson BENCH_server.json
	$(GO) run ./cmd/rosbench -experiment e13 -repjson BENCH_rep.json
	$(GO) run ./cmd/rosbench -experiment e14 -trace -shardjson BENCH_shard.json
	$(GO) run ./cmd/rosbench -experiment e16 -readjson BENCH_read.json

fuzz:
	$(GO) test -run xxx -fuzz FuzzUnflatten -fuzztime 30s ./internal/value/
	$(GO) test -run xxx -fuzz FuzzDecode -fuzztime 30s ./internal/logrec/
	$(GO) test -run xxx -fuzz FuzzDecodePage -fuzztime 30s ./internal/stable/
	$(GO) test -run xxx -fuzz FuzzPageCodec -fuzztime 30s ./internal/stable/
	$(GO) test -run xxx -fuzz FuzzReadBackward -fuzztime 30s ./internal/stablelog/
	$(GO) test -run xxx -fuzz FuzzDecodeRepFrame -fuzztime 30s ./internal/stablelog/
	$(GO) test -run xxx -fuzz FuzzDecodeFrame -fuzztime 30s ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzDecodeRequest -fuzztime 30s ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzDecodeRepMessage -fuzztime 30s ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzDecodeShardMessage -fuzztime 30s ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzDecodeTable -fuzztime 30s ./internal/shard/
	$(GO) test -run xxx -fuzz FuzzDecodeEvent -fuzztime 30s ./internal/obs/
	$(GO) test -run xxx -fuzz FuzzDecodeConfig -fuzztime 30s ./internal/chaos/workload/

# Crash-injection soak across all backends: randomized histories
# (single-node + distributed), then the exhaustive crash-point sweep
# with read-path decay.
soak:
	$(GO) run $(SOAKFLAGS) ./cmd/roscrash -steps 2000 -seeds 5
	$(GO) run $(SOAKFLAGS) ./cmd/roscrash -sweep -seeds 5 -sweep-steps 4

# Bounded chaos testnet: real rosd processes, generated load, injected
# kills/pauses/partitions/delays/disk-full, then the serial oracle and
# the merged-trace invariant checker. CI-sized — one episode per
# topology, well under five minutes.
chaos:
	$(GO) test -run TestEpisode -count=1 -timeout 5m ./internal/chaos/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/banking
	$(GO) run ./examples/reservations
	$(GO) run ./examples/comparison
	$(GO) run ./examples/directory
	rm -rf /tmp/ros-example-data && $(GO) run ./examples/persistent /tmp/ros-example-data

# The experiment tables of EXPERIMENTS.md.
tables:
	$(GO) run ./cmd/rosbench

# The thesis's log-scenario figures.
figures:
	$(GO) run ./cmd/roslog -figure all

clean:
	rm -rf ros-data
