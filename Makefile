# Reliable Object Storage — development targets.

GO ?= go

.PHONY: all build test race cover bench bench-save fuzz soak examples tables figures clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/... .

bench:
	$(GO) test -bench . -benchmem -benchtime 50x .
	$(GO) test -bench . -benchtime 100x ./internal/stablelog/ ./internal/value/

# Regenerate the committed outputs (test_output.txt, bench_output.txt).
bench-save:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

fuzz:
	$(GO) test -run xxx -fuzz FuzzUnflatten -fuzztime 30s ./internal/value/
	$(GO) test -run xxx -fuzz FuzzDecode -fuzztime 30s ./internal/logrec/
	$(GO) test -run xxx -fuzz FuzzDecodePage -fuzztime 30s ./internal/stable/
	$(GO) test -run xxx -fuzz FuzzPageCodec -fuzztime 30s ./internal/stable/

# Crash-injection soak across all backends: randomized histories
# (single-node + distributed), then the exhaustive crash-point sweep
# with read-path decay.
soak:
	$(GO) run ./cmd/roscrash -steps 2000 -seeds 5
	$(GO) run ./cmd/roscrash -sweep -seeds 5 -sweep-steps 4

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/banking
	$(GO) run ./examples/reservations
	$(GO) run ./examples/comparison
	$(GO) run ./examples/directory
	rm -rf /tmp/ros-example-data && $(GO) run ./examples/persistent /tmp/ros-example-data

# The experiment tables of EXPERIMENTS.md.
tables:
	$(GO) run ./cmd/rosbench

# The thesis's log-scenario figures.
figures:
	$(GO) run ./cmd/roslog -figure all

clean:
	rm -rf ros-data
