// Command rosctl talks to a running rosd over its wire protocol: a
// small operator CLI for poking the served guardian.
//
// Usage:
//
//	rosctl [-addr 127.0.0.1:4146] [-timeout 5s] <command> [args]
//
// Commands:
//
//	ping                  round-trip a frame
//	get <key>             read a key's committed value over the
//	                      index-served read path (OpGet): no action, no
//	                      lock, no log force. Against a sharded cluster
//	                      the read routes to the key's owning shard.
//	put <key> <value>     store a value (int if it parses, else string)
//	incr <key> [delta]    add delta (default 1) and print the new total
//	status                report replication role, epoch, durable and
//	                      quorum-acked log bytes, replica health, the
//	                      live-version index counters (hits, misses,
//	                      entries, bytes), and one row per hosted shard
//	route                 print the server's shard routing table
//	handoff <id> <addr>   transfer a hosted shard to the node at addr
//	                      and print the routing table the server
//	                      published afterwards
//	txn <key=delta> ...   run one cross-shard atomic action against a
//	                      sharded cluster (-addr is the seed node):
//	                      fetch the routing table, incr every key at
//	                      its owning shard as a joined participant,
//	                      and drive two-phase commit across them. All
//	                      increments commit or none do.
//	promote [minAcked]    make the server's hosted backup take over as
//	                      the guardian (explicit failover; idempotent).
//	                      With minAcked — the deposed primary's last
//	                      quorum-acked byte count, from its final
//	                      status report — the server refuses a backup
//	                      whose received log is shorter: promoting it
//	                      would silently drop an acknowledged commit
//	                      held only by a longer, unreachable copy.
//	                      Without minAcked the promotion is forced.
//
// Every command runs as one complete atomic action at the server: put
// and incr are committed (and durable) before rosctl prints.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/shard"
	"repro/internal/value"
	"repro/internal/wire"
)

var (
	addr    = flag.String("addr", "127.0.0.1:4146", "rosd address")
	timeout = flag.Duration("timeout", 5*time.Second, "per-request timeout")
)

func main() {
	flag.Parse()
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "rosctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rosctl [flags] ping|get|put|incr|status|promote ...")
	}
	c := client.New(*addr, client.Options{CallTimeout: *timeout})
	//roslint:besteffort process exit follows immediately; the command's own error is what matters
	defer c.Close()

	switch cmd := args[0]; cmd {
	case "ping":
		start := time.Now()
		if err := c.Ping(); err != nil {
			return err
		}
		fmt.Printf("pong (%v)\n", time.Since(start).Round(time.Microsecond))
		return nil
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: rosctl get <key>")
		}
		// A sharded node hosts no default guardian: route the read to
		// the key's owner. Everything else answers OpGet directly.
		var v value.Value
		var err error
		if _, rerr := c.Route(); rerr == nil {
			r := client.NewRouted([]string{*addr}, client.Options{CallTimeout: *timeout})
			//roslint:besteffort process exit follows immediately; the read's own error is what matters
			defer r.Close()
			v, err = r.Get(args[1])
		} else {
			v, err = c.Get(args[1])
		}
		if err != nil {
			return err
		}
		fmt.Println(value.String(v))
		return nil
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("usage: rosctl put <key> <value>")
		}
		v, err := c.Invoke("put", value.NewList(value.Str(args[1]), parseValue(args[2])))
		if err != nil {
			return err
		}
		fmt.Println(value.String(v))
		return nil
	case "incr":
		if len(args) != 2 && len(args) != 3 {
			return fmt.Errorf("usage: rosctl incr <key> [delta]")
		}
		delta := int64(1)
		if len(args) == 3 {
			n, err := strconv.ParseInt(args[2], 10, 64)
			if err != nil {
				return fmt.Errorf("delta %q: %v", args[2], err)
			}
			delta = n
		}
		v, err := c.Invoke("incr", value.NewList(value.Str(args[1]), value.Int(delta)))
		if err != nil {
			return err
		}
		fmt.Println(value.String(v))
		return nil
	case "status":
		st, err := c.Status()
		if err != nil {
			return err
		}
		printStatus(st.Rep)
		for _, row := range st.Shards {
			fmt.Printf("shard %d: role=%v durable=%d bytes idx=%d/%d hits/misses\n",
				row.ID, row.Role, row.Durable, row.IdxHits, row.IdxMisses)
		}
		return nil
	case "route":
		t, err := c.Route()
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	case "handoff":
		if len(args) != 3 {
			return fmt.Errorf("usage: rosctl handoff <shardID> <targetAddr>")
		}
		id, perr := strconv.ParseUint(args[1], 10, 32)
		if perr != nil {
			return fmt.Errorf("shardID %q: %v", args[1], perr)
		}
		t, err := c.Handoff(uint32(id), args[2])
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	case "txn":
		if len(args) < 2 {
			return fmt.Errorf("usage: rosctl txn <key=delta> [key=delta ...]")
		}
		return runTxn(args[1:])
	case "promote":
		if len(args) > 2 {
			return fmt.Errorf("usage: rosctl promote [minAckedBytes]")
		}
		var st wire.RepStatus
		var err error
		if len(args) == 2 {
			min, perr := strconv.ParseUint(args[1], 10, 64)
			if perr != nil {
				return fmt.Errorf("minAckedBytes %q: %v", args[1], perr)
			}
			st, err = c.PromoteMin(min)
		} else {
			st, err = c.Promote()
		}
		if err != nil {
			return err
		}
		printStatus(st)
		return nil
	default:
		return fmt.Errorf("unknown command %q (want ping, get, put, incr, status, route, handoff, txn, or promote)", cmd)
	}
}

// runTxn drives one cross-shard atomic action: every key=delta pair
// becomes an incr at the key's owning shard, joined to a single action
// committed by two-phase commit across the participating shards.
func runTxn(pairs []string) error {
	type op struct {
		key   string
		delta int64
	}
	ops := make([]op, 0, len(pairs))
	for _, p := range pairs {
		key, ds, ok := strings.Cut(p, "=")
		if !ok || key == "" {
			return fmt.Errorf("txn argument %q: want key=delta", p)
		}
		d, err := strconv.ParseInt(ds, 10, 64)
		if err != nil {
			return fmt.Errorf("txn argument %q: delta: %v", p, err)
		}
		ops = append(ops, op{key: key, delta: d})
	}
	r := client.NewRouted([]string{*addr}, client.Options{CallTimeout: *timeout})
	//roslint:besteffort process exit follows immediately; the transaction's own error is what matters
	defer r.Close()
	t, err := r.Begin(ops[0].key)
	if err != nil {
		return err
	}
	for _, o := range ops {
		v, err := t.Invoke(o.key, "incr", value.NewList(value.Str(o.key), value.Int(o.delta)))
		if err != nil {
			//roslint:besteffort abort after a failed invoke is advisory; the guardians time the action out regardless
			_ = t.Abort()
			return fmt.Errorf("incr %s: %w", o.key, err)
		}
		fmt.Printf("%s = %s\n", o.key, value.String(v))
	}
	res, err := t.Commit()
	if err != nil {
		return fmt.Errorf("commit %v: %w", t.AID(), err)
	}
	fmt.Printf("action %v: %v\n", t.AID(), res.Outcome)
	return nil
}

// printTable renders a routing table one shard per line.
func printTable(t shard.Table) {
	fmt.Printf("version: %d (%v over %d shards)\n", t.Version, t.Kind, len(t.Shards))
	for _, s := range t.Shards {
		fmt.Printf("shard %d: %s\n", s.ID, s.Addr)
	}
}

// printStatus renders a RepStatus one field per line; the quorum lines
// only apply to a primary that is actually shipping to backups (a
// freshly promoted backup is a primary with no replica set yet).
func printStatus(st wire.RepStatus) {
	fmt.Printf("role:    %v\n", st.Role)
	fmt.Printf("epoch:   %d\n", st.Epoch)
	fmt.Printf("durable: %d bytes\n", st.Durable)
	fmt.Printf("idx:     hits=%d misses=%d entries=%d bytes=%d\n",
		st.IdxHits, st.IdxMisses, st.IdxEntries, st.IdxBytes)
	if st.Role == wire.RolePrimary && st.Replicas > 0 {
		fmt.Printf("quorum:  %d bytes acked by %d of %d copies\n", st.QuorumBytes, st.Quorum, st.Replicas+1)
		fmt.Printf("backups: %d of %d answering\n", st.Alive, st.Replicas)
	}
}

// parseValue reads an argument as an Int when it parses as one, a Str
// otherwise.
func parseValue(s string) value.Value {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return value.Int(n)
	}
	return value.Str(s)
}
