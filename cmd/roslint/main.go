// Command roslint runs the repository's custom static checks — the
// thesis's recovery invariants, enforced at build time:
//
//	forcebarrier    outcome log entries are forced, never buffered (§3.1/§4.1)
//	ioerrcheck      stable-storage / log / network / 2PC errors are observed
//	determinism     the crash-sweep's packages stay replayable per seed
//	errsentinel     wrapped sentinels compared with errors.Is/As, not ==
//	lockdiscipline  mutexes released on every path; no reentrant self-calls;
//	                no raw device I/O under the log mutex
//	epochfence      rep handlers mutate replica state behind an epoch fence;
//	                higher-epoch observations latch deposition
//	wirecodec       wire message fields round-trip through both codecs;
//	                every op has a codec case and a fuzz target
//	deadlinecheck   conn reads/writes are dominated by a deadline
//
// Usage:
//
//	roslint [packages]
//
// with go-style package patterns (default ./...). Findings print as
//
//	path:line:col: [analyzer] message
//
// and a deliberate exception is annotated in the source with
//
//	//roslint:<directive> <justification>
//
// on the flagged line or the line above. Justifications are mandatory,
// unused exemptions are themselves findings, and unknown directive
// names are rejected, so annotations cannot rot. Exits 1 if anything
// is found.
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/deadlinecheck"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/epochfence"
	"repro/internal/analysis/errsentinel"
	"repro/internal/analysis/forcebarrier"
	"repro/internal/analysis/ioerrcheck"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/wirecodec"
)

// analyzers is the multichecker's fixed suite.
var analyzers = []*analysis.Analyzer{
	forcebarrier.Analyzer,
	ioerrcheck.Analyzer,
	determinism.Analyzer,
	errsentinel.Analyzer,
	lockdiscipline.Analyzer,
	epochfence.Analyzer,
	wirecodec.Analyzer,
	deadlinecheck.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roslint: %v\n", err)
		os.Exit(2)
	}

	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Directive] = true
	}

	found := 0
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		diags = append(diags, analysis.UnknownDirectives(pkg, known)...)
		for _, a := range analyzers {
			ds, err := analysis.RunPass(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "roslint: %v\n", err)
				os.Exit(2)
			}
			diags = append(diags, ds...)
		}
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "roslint: %d finding(s)\n", found)
		os.Exit(1)
	}
}
