// Command rostrace prints the event trace of the canonical storage
// scenarios (see internal/obs/scenario): the same byte-for-byte
// deterministic streams the golden-trace tests pin down, made readable
// for debugging and for the EXPERIMENTS.md narratives.
//
// Usage:
//
//	rostrace                 # every scenario
//	rostrace -scenario commit
//	rostrace -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/scenario"
)

func main() {
	name := flag.String("scenario", "", "run a single scenario by name (default: all)")
	list := flag.Bool("list", false, "list scenario names and exit")
	flag.Parse()

	if *list {
		for _, sc := range scenario.All {
			fmt.Println(sc.Name)
		}
		return
	}
	ran := false
	for _, sc := range scenario.All {
		if *name != "" && sc.Name != *name {
			continue
		}
		ran = true
		var rec obs.Recorder
		if err := sc.Run(&rec); err != nil {
			fmt.Fprintf(os.Stderr, "rostrace: %s: %v\n", sc.Name, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (%d events)\n", sc.Name, rec.Len())
		os.Stdout.Write(rec.Text())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "rostrace: unknown scenario %q (use -list)\n", *name)
		os.Exit(1)
	}
}
