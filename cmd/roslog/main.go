// Command roslog renders the thesis's log-scenario figures: it builds
// the exact log of a figure (3-7, 3-8, 3-9, 3-10 for the simple log;
// 4-2, 4-3 for the hybrid log), dumps every entry in the thesis's tuple
// notation, runs recovery, and prints the resulting PT/CT/OT tables —
// the same tables the thesis prints at the end of each scenario
// (§3.4.2, §4.3.2, §4.4).
//
// Usage:
//
//	roslog -figure 3-7|3-8|3-9|3-10|4-2|4-3|all
//	roslog -dir <path> [-format hybrid|simple]   # dump an on-disk log
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/hybridlog"
	"repro/internal/ids"
	"repro/internal/logrec"
	"repro/internal/object"
	"repro/internal/shadow"
	"repro/internal/simplelog"
	"repro/internal/stable"
	"repro/internal/stablelog"
	"repro/internal/value"
)

var (
	figure = flag.String("figure", "all", "which figure to render")
	dir    = flag.String("dir", "", "dump the current log of a file-backed volume at this directory")
	format = flag.String("format", "hybrid", "entry format of the on-disk log: hybrid or simple")
)

var (
	gP = ids.GuardianID(1)
	t1 = ids.ActionID{Coordinator: gP, Seq: 1}
	t2 = ids.ActionID{Coordinator: gP, Seq: 2}
	t3 = ids.ActionID{Coordinator: gP, Seq: 3}
)

func main() {
	flag.Parse()
	if *dir != "" {
		dumpDir(*dir, *format)
		return
	}
	figs := map[string]func(){
		"1-1": fig11,
		"3-7": fig37, "3-8": fig38, "3-9": fig39, "3-10": fig310,
		"4-2": fig42, "4-3": fig43,
	}
	if *figure == "all" {
		for _, name := range []string{"1-1", "3-7", "3-8", "3-9", "3-10", "4-2", "4-3"} {
			figs[name]()
		}
		return
	}
	fn, ok := figs[*figure]
	if !ok {
		fmt.Fprintf(os.Stderr, "roslog: unknown figure %q\n", *figure)
		os.Exit(2)
	}
	fn()
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "roslog:", err)
		os.Exit(1)
	}
}

// dumpDir opens a file-backed volume (as written by examples/persistent
// or any guardian on a FileVolume), dumps its current log, and — for
// the hybrid format — shows the recovered tables.
func dumpDir(path, format string) {
	vol, err := stablelog.NewFileVolume(path, 512, false)
	die(err)
	//roslint:besteffort read-only dump tool exiting right after; Close releases descriptors only
	defer vol.Close()
	site, err := stablelog.OpenSite(vol)
	die(err)
	log := site.Log()
	fmt.Printf("%s: log generation %d, %d entries, %d bytes\n",
		path, site.Generation(), log.Entries(), log.Size())
	switch format {
	case "simple":
		dump(log, logrec.Simple)
		tables, err := simplelog.Recover(log)
		die(err)
		fmt.Println(" recovered state:")
		printSimpleTables(tables)
	case "hybrid":
		dump(log, logrec.Hybrid)
		tables, err := hybridlog.Recover(log)
		die(err)
		fmt.Println(" recovered state:")
		printPT(tables.PT)
		printCT(tables.CT)
		printHeap(tables.Heap)
	default:
		fmt.Fprintf(os.Stderr, "roslog: unknown format %q\n", format)
		os.Exit(2)
	}
}

func newLog() *stablelog.Log {
	a := stable.NewMemDevice(256, nil)
	b := stable.NewMemDevice(256, nil)
	store, err := stable.NewStore(a, b)
	die(err)
	return stablelog.New(store)
}

func flat(v value.Value) []byte { return value.Flatten(v, nil) }

// dump prints every entry of the log in order with its address.
func dump(log *stablelog.Log, format logrec.Format) {
	type row struct {
		lsn stablelog.LSN
		e   *logrec.Entry
	}
	var rows []row
	die(log.ReadBackward(log.LastAppended(), func(lsn stablelog.LSN, p []byte) bool {
		e, err := logrec.Decode(format, p)
		die(err)
		rows = append(rows, row{lsn, e})
		return true
	}))
	for i := len(rows) - 1; i >= 0; i-- {
		fmt.Printf("  %-6v %v\n", rows[i].lsn, rows[i].e)
	}
}

func printSimpleTables(t *simplelog.Tables) {
	printPT(t.PT)
	printCT(t.CT)
	printHeap(t.Heap)
	fmt.Println()
}

func printPT(pt map[ids.ActionID]simplelog.PartState) {
	if len(pt) == 0 {
		return
	}
	fmt.Println("  PT:")
	aids := make([]ids.ActionID, 0, len(pt))
	for aid := range pt {
		aids = append(aids, aid)
	}
	sort.Slice(aids, func(i, j int) bool { return aids[i].Seq < aids[j].Seq })
	for _, aid := range aids {
		fmt.Printf("    %-8v %v\n", aid, pt[aid])
	}
}

func printCT(ct map[ids.ActionID]simplelog.CoordInfo) {
	if len(ct) == 0 {
		return
	}
	fmt.Println("  CT:")
	for aid, ci := range ct {
		if ci.State == simplelog.CoordCommitting {
			fmt.Printf("    %-8v committing %v\n", aid, ci.GIDs)
		} else {
			fmt.Printf("    %-8v done\n", aid)
		}
	}
}

func printHeap(h *object.Heap) {
	fmt.Println("  OT (restored objects):")
	for _, uid := range h.UIDs() {
		o, _ := h.Lookup(uid)
		switch x := o.(type) {
		case *object.Atomic:
			line := fmt.Sprintf("    %-5v atomic base=%s", uid, value.String(x.Base()))
			if w := x.Writer(); !w.IsZero() {
				if cur, ok := x.Current(); ok {
					line += fmt.Sprintf(" current=%s writer=%v", value.String(cur), w)
				}
			}
			fmt.Println(line)
		case *object.Mutex:
			fmt.Printf("    %-5v mutex  current=%s\n", uid, value.String(x.Current()))
		}
	}
}

// --- figure 1-1: the shadowing scheme ------------------------------------

// fig11 drives the shadow store through a commit and an in-flight
// prepare and dumps the map and version area, the structure of thesis
// Figure 1-1 ("shadowed objects").
func fig11() {
	fmt.Println("Figure 1-1 — shadowing: a map points at the current version of every object")
	heap := object.NewHeap()
	o1 := object.NewAtomic(2, value.Int(1), ids.NoAction)
	o2 := object.NewAtomic(3, value.Int(2), ids.NoAction)
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("x", value.Ref{Target: o1}, "y", value.Ref{Target: o2}), ids.NoAction)
	heap.Register(root)
	heap.Register(o1)
	heap.Register(o2)

	devs := make([]*stable.MemDevice, 4)
	for i := range devs {
		devs[i] = stable.NewMemDevice(256, nil)
	}
	vsStore, err := stable.NewStore(devs[0], devs[1])
	die(err)
	rootStore, err := stable.NewStore(devs[2], devs[3])
	die(err)
	store := shadow.New(stablelog.New(vsStore), rootStore, heap)

	// Commit the initial state, then a modification, then leave one
	// action prepared (its version shadows the installed one).
	boot := ids.ActionID{Coordinator: 1, Seq: 1}
	die(store.Prepare(boot, object.MOS{}))
	die(store.Commit(boot))
	upd := ids.ActionID{Coordinator: 1, Seq: 2}
	die(o1.AcquireWrite(upd))
	die(o1.Replace(upd, value.Int(11)))
	die(store.Prepare(upd, object.MOS{o1}))
	die(store.Commit(upd))
	o1.Commit(upd)
	shadowed := ids.ActionID{Coordinator: 1, Seq: 3}
	die(o2.AcquireWrite(shadowed))
	die(o2.Replace(shadowed, value.Int(22)))
	die(store.Prepare(shadowed, object.MOS{o2}))

	fmt.Printf("  map: %d objects installed; map writes so far: %d (one per commit)\n",
		store.MapSize(), store.MapWrites)
	fmt.Printf("  version area: %d records, %d bytes — old versions are never overwritten\n",
		store.Log().Entries(), store.Log().Size())
	fmt.Println("  O3's new version (22) is written but shadowed: the map still points at 2")
	fmt.Println("  until the action commits and a new map is installed in one atomic step.")
	fmt.Println()
}

// --- simple-log figures --------------------------------------------------

func appendSimple(log *stablelog.Log, entries ...*logrec.Entry) {
	for _, e := range entries {
		_, err := log.Write(logrec.Encode(logrec.Simple, e))
		die(err)
	}
	die(log.Force())
}

func data(uid ids.UID, k object.Kind, v value.Value, aid ids.ActionID) *logrec.Entry {
	return &logrec.Entry{Kind: logrec.KindData, UID: uid, ObjType: k, Value: flat(v), AID: aid}
}

func bc(uid ids.UID, v value.Value) *logrec.Entry {
	return &logrec.Entry{Kind: logrec.KindBaseCommitted, UID: uid, Value: flat(v)}
}

func out(kind logrec.Kind, aid ids.ActionID) *logrec.Entry {
	return &logrec.Entry{Kind: kind, AID: aid}
}

func renderSimple(title string, log *stablelog.Log) {
	fmt.Println(title)
	fmt.Println(" log contents:")
	dump(log, logrec.Simple)
	tables, err := simplelog.Recover(log)
	die(err)
	fmt.Println(" after recovery:")
	printSimpleTables(tables)
}

func fig37() {
	log := newLog()
	appendSimple(log,
		bc(1, value.Int(1)),
		bc(2, value.Int(2)),
		data(2, object.KindAtomic, value.Int(22), t1),
		out(logrec.KindPrepared, t1),
		out(logrec.KindCommitted, t1),
		data(1, object.KindAtomic, value.Int(111), t2),
		out(logrec.KindPrepared, t2),
	)
	renderSimple("Figure 3-7 — simple log, atomic objects (T1 committed, T2 prepared)", log)
}

func fig38() {
	log := newLog()
	appendSimple(log,
		data(1, object.KindMutex, value.Int(1), t1),
		data(2, object.KindMutex, value.Int(2), t1),
		out(logrec.KindPrepared, t1),
		out(logrec.KindCommitted, t1),
		data(1, object.KindMutex, value.Int(111), t2),
		out(logrec.KindPrepared, t2),
		out(logrec.KindAborted, t2),
	)
	renderSimple("Figure 3-8 — mutex objects (T2 prepared then aborted; its version survives)", log)
}

func fig39() {
	log := newLog()
	appendSimple(log,
		bc(1, value.Int(10)),
		bc(2, value.Int(20)),
		out(logrec.KindPrepared, t1),
		out(logrec.KindCommitted, t1),
		data(1, object.KindAtomic, value.NewList(value.UIDRef{UID: 3}), t2),
		bc(3, value.Int(30)),
		data(3, object.KindAtomic, value.Int(33), t2),
		out(logrec.KindPrepared, t2),
		data(2, object.KindAtomic, value.NewList(value.UIDRef{UID: 3}), t3),
		out(logrec.KindPrepared, t3),
		out(logrec.KindAborted, t2),
		out(logrec.KindCommitted, t3),
	)
	renderSimple("Figure 3-9 — newly accessible O3 survives T2's abort (needed by committed T3)", log)
}

func fig310() {
	log := newLog()
	appendSimple(log,
		bc(1, value.Int(1)),
		data(1, object.KindAtomic, value.Int(11), t1),
		bc(2, value.Int(2)),
		out(logrec.KindPrepared, t1),
		out(logrec.KindCommitted, t1),
		data(2, object.KindAtomic, value.Int(22), t2),
		out(logrec.KindPrepared, t2),
		&logrec.Entry{Kind: logrec.KindCommitting, AID: t2, GIDs: []ids.GuardianID{1, 2, 3}},
		out(logrec.KindCommitted, t2),
		out(logrec.KindDone, t2),
	)
	renderSimple("Figure 3-10 — coordinator's log (committing/done entries)", log)
}

// --- hybrid-log figures ----------------------------------------------------

type hybridBuilder struct {
	log   *stablelog.Log
	chain stablelog.LSN
}

func (b *hybridBuilder) data(k object.Kind, v value.Value) stablelog.LSN {
	lsn, err := b.log.Write(logrec.Encode(logrec.Hybrid, &logrec.Entry{
		Kind: logrec.KindData, ObjType: k, Value: flat(v)}))
	die(err)
	return lsn
}

func (b *hybridBuilder) out(e *logrec.Entry) {
	e.Prev = b.chain
	lsn, err := b.log.Write(logrec.Encode(logrec.Hybrid, e))
	die(err)
	b.chain = lsn
}

func renderHybrid(title string, log *stablelog.Log) {
	fmt.Println(title)
	fmt.Println(" log contents:")
	dump(log, logrec.Hybrid)
	tables, err := hybridlog.Recover(log)
	die(err)
	fmt.Println(" after recovery:")
	printPT(tables.PT)
	printCT(tables.CT)
	printHeap(tables.Heap)
	fmt.Printf("  cost: %d outcome entries followed, %d data entries fetched\n\n",
		tables.OutcomesRead, tables.DataRead)
}

func fig42() {
	b := &hybridBuilder{log: newLog(), chain: stablelog.NoLSN}
	b.out(&logrec.Entry{Kind: logrec.KindBaseCommitted, UID: 1, Value: flat(value.Int(1))})
	l1 := b.data(object.KindAtomic, value.Int(10))
	l2 := b.data(object.KindMutex, value.Int(20))
	b.out(&logrec.Entry{Kind: logrec.KindPrepared, AID: t1,
		Pairs: []logrec.UIDLSN{{UID: 1, Addr: l1}, {UID: 2, Addr: l2}}})
	b.out(&logrec.Entry{Kind: logrec.KindCommitted, AID: t1})
	l1p := b.data(object.KindAtomic, value.Int(100))
	l2p := b.data(object.KindMutex, value.Int(200))
	b.out(&logrec.Entry{Kind: logrec.KindPrepared, AID: t2,
		Pairs: []logrec.UIDLSN{{UID: 1, Addr: l1p}, {UID: 2, Addr: l2p}}})
	die(b.log.Force())
	renderHybrid("Figure 4-2 — hybrid log: prepared entries carry ⟨uid, log address⟩ pairs", b.log)
}

func fig43() {
	b := &hybridBuilder{log: newLog(), chain: stablelog.NoLSN}
	lT1o1 := b.data(object.KindMutex, value.Str("O1 by T1 (older)"))
	lT2o1 := b.data(object.KindMutex, value.Str("O1 by T2 (latest)"))
	lT2o2 := b.data(object.KindAtomic, value.Int(2))
	lT2o3 := b.data(object.KindAtomic, value.Int(3))
	b.out(&logrec.Entry{Kind: logrec.KindPrepared, AID: t2, Pairs: []logrec.UIDLSN{
		{UID: 1, Addr: lT2o1}, {UID: 2, Addr: lT2o2}, {UID: 3, Addr: lT2o3}}})
	lT1o4 := b.data(object.KindAtomic, value.Int(4))
	b.out(&logrec.Entry{Kind: logrec.KindPrepared, AID: t1, Pairs: []logrec.UIDLSN{
		{UID: 1, Addr: lT1o1}, {UID: 4, Addr: lT1o4}}})
	b.out(&logrec.Entry{Kind: logrec.KindCommitted, AID: t1})
	die(b.log.Force())
	renderHybrid("Figure 4-3 — early prepare interleaving: latest mutex version wins by address", b.log)
}
