// Command rosd serves one guardian over TCP: the reliable object
// store as a daemon. It registers a small durable key/value interface
// (get, put, incr — each a complete atomic action, or a subaction of
// a caller-coordinated one) and serves it through internal/server.
//
// Usage:
//
//	rosd [-addr 127.0.0.1:4146] [-id 1] [-backend hybrid]
//	     [-workers 8] [-maxconns 64] [-trace]
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, then
// connections close. With -trace every rpc.* event streams to stderr
// in the golden-trace text format.
//
// The handlers:
//
//	get  (Str key)           -> stored value, or error
//	put  (List[Str key, V])  -> V
//	incr (List[Str key, Int delta]) -> Int new total (missing key
//	     starts at 0)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/value"
)

var (
	addr     = flag.String("addr", "127.0.0.1:4146", "listen address")
	id       = flag.Uint("id", 1, "guardian id")
	backend  = flag.String("backend", "hybrid", "recovery organization: simple, hybrid, shadow")
	workers  = flag.Int("workers", 8, "request worker pool size")
	maxconns = flag.Int("maxconns", 64, "concurrent connection limit")
	trace    = flag.Bool("trace", false, "stream rpc.* events to stderr")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rosd:", err)
		os.Exit(1)
	}
}

// stderrTracer streams each event as one text line.
type stderrTracer struct{}

func (stderrTracer) Emit(e obs.Event) { fmt.Fprintln(os.Stderr, e.Text()) }

func run() error {
	var b core.Backend
	switch *backend {
	case "simple":
		b = core.BackendSimple
	case "hybrid":
		b = core.BackendHybrid
	case "shadow":
		b = core.BackendShadow
	default:
		return fmt.Errorf("unknown backend %q", *backend)
	}
	g, err := guardian.New(ids.GuardianID(*id), guardian.WithBackend(b))
	if err != nil {
		return err
	}
	registerKV(g)

	cfg := server.Config{Workers: *workers, MaxConns: *maxconns}
	if *trace {
		cfg.Tracer = stderrTracer{}
	}
	s := server.New(g, cfg)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "rosd: draining")
		done <- s.Close()
	}()

	fmt.Fprintf(os.Stderr, "rosd: guardian %d (%v) serving on %s\n", *id, b, *addr)
	if err := s.ListenAndServe(*addr); !errors.Is(err, server.ErrClosed) {
		return err
	}
	return <-done
}

// registerKV installs the key/value handlers. Keys are stable
// variables holding atomic objects, so every committed put/incr
// survives a crash and every action sees a consistent version (§2.1).
func registerKV(g *guardian.Guardian) {
	// keyObj fetches (or, when create is set, makes and registers) the
	// atomic behind a key.
	keyObj := func(sub *guardian.Sub, key string, create bool) (*object.Atomic, error) {
		if o, ok := g.VarAtomic(key); ok {
			return o, nil
		}
		if !create {
			return nil, fmt.Errorf("no such key %q", key)
		}
		o, err := sub.NewAtomic(value.Int(0))
		if err != nil {
			return nil, err
		}
		if err := sub.SetVar(key, o); err != nil {
			return nil, err
		}
		return o, nil
	}

	g.RegisterHandler("get", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		key, ok := arg.(value.Str)
		if !ok {
			return nil, fmt.Errorf("get wants a Str key")
		}
		o, err := keyObj(sub, string(key), false)
		if err != nil {
			return nil, err
		}
		return sub.Read(o)
	})

	g.RegisterHandler("put", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		l, ok := arg.(*value.List)
		if !ok || len(l.Elems) != 2 {
			return nil, fmt.Errorf("put wants List[key, value]")
		}
		key, ok := l.Elems[0].(value.Str)
		if !ok {
			return nil, fmt.Errorf("put wants a Str key")
		}
		o, err := keyObj(sub, string(key), true)
		if err != nil {
			return nil, err
		}
		if err := sub.Set(o, l.Elems[1]); err != nil {
			return nil, err
		}
		return sub.Read(o)
	})

	g.RegisterHandler("incr", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		key, delta, err := incrArgs(arg)
		if err != nil {
			return nil, err
		}
		o, err := keyObj(sub, key, true)
		if err != nil {
			return nil, err
		}
		if err := sub.Update(o, func(cur value.Value) value.Value {
			n, _ := cur.(value.Int)
			return n + delta
		}); err != nil {
			return nil, err
		}
		return sub.Read(o)
	})
}

func incrArgs(arg value.Value) (string, value.Int, error) {
	switch a := arg.(type) {
	case value.Str:
		return string(a), 1, nil
	case *value.List:
		if len(a.Elems) == 2 {
			key, kok := a.Elems[0].(value.Str)
			delta, dok := a.Elems[1].(value.Int)
			if kok && dok {
				return string(key), delta, nil
			}
		}
	}
	return "", 0, fmt.Errorf("incr wants a Str key or List[key, delta]")
}
