// Command rosd serves one guardian over TCP: the reliable object
// store as a daemon. It registers a small durable key/value interface
// (get, put, incr — each a complete atomic action, or a subaction of
// a caller-coordinated one) and serves it through internal/server.
//
// Usage:
//
//	rosd [-addr 127.0.0.1:4146] [-id 1] [-backend hybrid]
//	     [-workers 8] [-maxconns 64] [-noindex]
//	     [-trace] [-tracefile path]
//	     [-data dir] [-datacap bytes] [-datasync]
//	     [-role standalone|primary|backup] [-backups id=addr,...]
//	     [-quorum 2] [-primary-id 1]
//	     [-shards 2,3] [-routemap 2=host:port,3=host:port,...]
//	     [-routekind hash|range]
//
// Persistence (-data):
//
//	With -data set, each guardian's stable storage lives in a
//	subdirectory of that directory (g<id> for guardians, b<id> for a
//	backup's received log) and a restarted rosd recovers it; without
//	it, stable storage is the in-memory simulation and dies with the
//	process. -datacap caps each subdirectory's size: writes that
//	would grow it past the cap fail like a full disk (overwrites of
//	existing blocks still succeed, so a full volume still recovers).
//	-datasync fsyncs every block write; it defaults off because the
//	chaos harness kills processes, not the machine, and the page
//	cache survives a SIGKILL — forced state is durable across process
//	death without paying for per-write fsync.
//
//	On recovery the daemon resolves its own in-doubt actions: an
//	action this guardian coordinated is committed if its committing
//	record survived and presumed aborted otherwise. Actions prepared
//	here for a foreign coordinator stay in doubt until that
//	coordinator (or an operator, via rosctl) delivers the verdict.
//
// Replication (-role):
//
//	standalone   the default: one unreplicated guardian.
//	primary      ships every forced log prefix to the -backups list
//	             and acknowledges commits only at -quorum durable
//	             copies (counting itself). Each -backups entry is
//	             id=host:port naming a rosd running -role backup.
//	backup       hosts a replog.Backup: receives, persists, and acks
//	             the primary's frames, serving no application traffic
//	             until `rosctl promote` makes it the guardian.
//
// Sharding (-shards, standalone role only):
//
//	-shards 2,3 hosts one guardian per listed shard id (the id doubles
//	as the guardian id) instead of the single -id guardian; requests
//	must carry a shard id, and a request for an unhosted shard is
//	refused with the node's routing table in-band. -routemap names
//	every shard in the cluster (id=host:port for -routekind hash;
//	id=host:port=start for range, ordered by start with the first
//	empty) and installs as table version 1; nodes and routed clients
//	exchange newer versions as handoffs publish them. `rosctl handoff`
//	moves a hosted shard to another node; any rosd accepts the inbound
//	transfer and serves the shard from its shipped log.
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, then
// connections close. With -trace every rpc.* event streams to stderr
// in the golden-trace text format (rep.* events included when
// replicating). With -tracefile every event is also appended to a
// binary trace file (obs.FileSink), flushed on a periodic tick and
// fsynced after the drain, so a chaos harness can merge per-node
// traces and run the invariant checker over the whole cluster.
//
// The handlers:
//
//	get  (Str key)           -> stored value, or error
//	put  (List[Str key, V])  -> V
//	incr (List[Str key, Int delta]) -> Int new total (missing key
//	     starts at 0)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/replog"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stablelog"
	"repro/internal/twopc"
	"repro/internal/value"
	"repro/internal/wire"
)

var (
	addr      = flag.String("addr", "127.0.0.1:4146", "listen address")
	id        = flag.Uint("id", 1, "guardian id")
	backend   = flag.String("backend", "hybrid", "recovery organization: simple, hybrid, shadow")
	workers   = flag.Int("workers", 8, "request worker pool size")
	maxconns  = flag.Int("maxconns", 64, "concurrent connection limit")
	trace     = flag.Bool("trace", false, "stream rpc.* events to stderr")
	role      = flag.String("role", "standalone", "replication role: standalone, primary, backup")
	backups   = flag.String("backups", "", "primary: comma-separated id=host:port backup list")
	quorum    = flag.Int("quorum", 2, "primary: durable copies a force needs, counting the primary")
	primaryID = flag.Uint("primary-id", 1, "backup: the replicated guardian's id")
	shards    = flag.String("shards", "", "standalone: comma-separated shard ids this node hosts")
	routemap  = flag.String("routemap", "", "cluster routing table: id=host:port[=start],...")
	routekind = flag.String("routekind", "hash", "routing table kind: hash or range")
	data      = flag.String("data", "", "persistent data directory (empty: in-memory stable storage)")
	datacap   = flag.Int64("datacap", 0, "per-guardian byte cap on the -data subdirectory (0: uncapped); growth past it fails like a full disk")
	datasync  = flag.Bool("datasync", false, "fsync every stable-storage block write (off is sound for process-kill faults: the page cache survives SIGKILL)")
	tracefile = flag.String("tracefile", "", "append the binary obs event stream to this file")
	noindex   = flag.Bool("noindex", false, "disable the per-guardian live-version index (reads fall back to the action path; the E16 baseline)")
)

// dataBlockSize is the stable-device block size for -data volumes,
// matching the guardian's in-memory default.
const dataBlockSize = 512

// traceFlushEvery paces the -tracefile background flush, bounding how
// much trace a SIGKILL can cost to roughly one tick of events.
const traceFlushEvery = 100 * time.Millisecond

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rosd:", err)
		os.Exit(1)
	}
}

// stderrTracer streams each event as one text line.
type stderrTracer struct{}

func (stderrTracer) Emit(e obs.Event) { fmt.Fprintln(os.Stderr, e.Text()) }

// teeTracer fans one event out to several tracers (-trace and
// -tracefile together).
type teeTracer []obs.Tracer

func (t teeTracer) Emit(e obs.Event) {
	for _, tr := range t {
		tr.Emit(e)
	}
}

func run() error {
	var b core.Backend
	switch *backend {
	case "simple":
		b = core.BackendSimple
	case "hybrid":
		b = core.BackendHybrid
	case "shadow":
		b = core.BackendShadow
	default:
		return fmt.Errorf("unknown backend %q", *backend)
	}
	var tr obs.Tracer
	if *trace {
		tr = stderrTracer{}
	}
	if *tracefile != "" {
		sink, err := obs.NewFileSink(*tracefile, fmt.Sprintf("%s-%d@%s", *role, *id, *addr))
		if err != nil {
			return err
		}
		if tr != nil {
			tr = teeTracer{sink, tr}
		} else {
			tr = sink
		}
		// The sink buffers; a background tick bounds what a SIGKILL can
		// lose, and the deferred Flush makes the graceful-drain exit
		// paths (SIGTERM included) leave a complete, fsynced trace.
		stop := make(chan struct{})
		flusherDone := make(chan struct{})
		go func() {
			defer close(flusherDone)
			t := time.NewTicker(traceFlushEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := sink.Flush(); err != nil {
						fmt.Fprintln(os.Stderr, "rosd: trace flush:", err)
						return
					}
				case <-stop:
					return
				}
			}
		}()
		defer func() {
			close(stop)
			<-flusherDone
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rosd: trace close:", err)
			}
		}()
	}
	cfg := server.Config{Workers: *workers, MaxConns: *maxconns, Tracer: tr}
	// Every rosd can ship a shard out (rosctl handoff) and adopt one
	// shipped in; the adopted guardian gets the same handlers.
	cfg.HandoffShip = func(target string, hf wire.HandoffFrames) (wire.RepAck, error) {
		c := client.New(target, client.Options{Tracer: tr})
		//roslint:besteffort one-shot ship client; the HandoffInstall result carries the errors that matter
		defer c.Close()
		return c.HandoffInstall(hf)
	}
	cfg.OnAdopt = func(id uint32, g *guardian.Guardian) {
		registerKV(g)
		if err := settleSelf(g); err != nil {
			fmt.Fprintf(os.Stderr, "rosd: adopted shard %d: settle: %v\n", id, err)
		}
	}

	s, err := buildServer(b, tr, cfg)
	if err != nil {
		return err
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "rosd: draining")
		done <- s.Close()
	}()

	fmt.Fprintf(os.Stderr, "rosd: %s %d (%v) serving on %s\n", *role, *id, b, *addr)
	if err := s.ListenAndServe(*addr); !errors.Is(err, server.ErrClosed) {
		return err
	}
	return <-done
}

// buildServer assembles the server for the configured -role.
func buildServer(b core.Backend, tr obs.Tracer, cfg server.Config) (*server.Server, error) {
	if strings.TrimSpace(*shards) != "" && *role != "standalone" {
		return nil, fmt.Errorf("-shards combines only with -role standalone (shard guardians are unreplicated)")
	}
	switch *role {
	case "standalone":
		if strings.TrimSpace(*shards) != "" {
			return buildSharded(b, tr, cfg)
		}
		g, err := openOrNewGuardian(ids.GuardianID(*id), b, tr)
		if err != nil {
			return nil, err
		}
		registerKV(g)
		return server.New(g, cfg), nil

	case "primary":
		g, err := openOrNewGuardian(ids.GuardianID(*id), b, tr)
		if err != nil {
			return nil, err
		}
		registerKV(g)
		peers, err := parseBackups(*backups)
		if err != nil {
			return nil, err
		}
		tp := client.NewTransport()
		tp.SetTracer(tr)
		reps := make([]replog.Replica, 0, len(peers))
		for _, pe := range peers {
			tp.Register(pe.id, client.New(pe.addr, client.Options{Tracer: tr}))
			r, err := tp.Replica(pe.id)
			if err != nil {
				return nil, err
			}
			reps = append(reps, r)
		}
		p, err := replog.NewPrimary(replog.Config{
			Self: ids.GuardianID(*id), Site: g.Site(), Quorum: *quorum,
			Net: tp, Replicas: reps, Tracer: tr,
		})
		if err != nil {
			return nil, err
		}
		g.SetReplicator(p)
		cfg.Status = p.Status
		return server.New(g, cfg), nil

	case "backup":
		bcfg := replog.BackupConfig{
			ID: ids.GuardianID(*id), Primary: ids.GuardianID(*primaryID),
			Backend: b, Tracer: tr,
		}
		if *data != "" {
			vol, err := dataVol(fmt.Sprintf("b%d", *id))
			if err != nil {
				return nil, err
			}
			bcfg.Volume = vol
		}
		bk, err := replog.NewBackup(bcfg)
		if err != nil {
			return nil, err
		}
		cfg.Backup = bk
		// A promoted backup is the guardian from then on: install the
		// same handlers a standalone rosd serves, and settle the
		// actions the dead primary coordinated — their verdicts are in
		// the replicated log the promotion just recovered.
		cfg.OnPromote = func(g *guardian.Guardian) {
			registerKV(g)
			if err := settleSelf(g); err != nil {
				fmt.Fprintln(os.Stderr, "rosd: promote: settle:", err)
			}
		}
		return server.New(nil, cfg), nil

	default:
		return nil, fmt.Errorf("unknown role %q (want standalone, primary, or backup)", *role)
	}
}

// buildSharded assembles a registry node: one guardian per -shards
// entry (no default -id guardian — every request must carry a shard
// id) plus the version-1 cluster routing table from -routemap.
func buildSharded(b core.Backend, tr obs.Tracer, cfg server.Config) (*server.Server, error) {
	s := server.New(nil, cfg)
	for _, part := range strings.Split(*shards, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("-shards entry %q: want a nonzero shard id", part)
		}
		g, err := openOrNewGuardian(ids.GuardianID(n), b, tr)
		if err != nil {
			return nil, err
		}
		registerKV(g)
		s.AddShard(uint32(n), g)
	}
	if strings.TrimSpace(*routemap) != "" {
		t, err := parseRouteMap(*routemap, *routekind)
		if err != nil {
			return nil, err
		}
		if err := s.InstallTable(t); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// dataVol opens (creating if needed) the persistent volume under
// -data/<sub>. With -datacap the subdirectory is size-capped, so each
// guardian fills its own "disk" independently.
func dataVol(sub string) (*stablelog.FileVolume, error) {
	dir := filepath.Join(*data, sub)
	if *datacap > 0 {
		return stablelog.NewFileVolumeCapped(dir, dataBlockSize, *datasync, *datacap)
	}
	return stablelog.NewFileVolume(dir, dataBlockSize, *datasync)
}

// openOrNewGuardian builds the guardian for gid: in memory when -data
// is unset, otherwise recovered from (or created in) the g<gid>
// subdirectory. An existing site recovers through guardian.Open; a
// directory with no completed site (first boot, or a crash before
// creation finished) falls through to guardian.New on the same volume.
func openOrNewGuardian(gid ids.GuardianID, b core.Backend, tr obs.Tracer) (*guardian.Guardian, error) {
	var extra []guardian.Option
	if *noindex {
		extra = append(extra, guardian.WithoutIndex())
	}
	if *data == "" {
		return guardian.New(gid, append([]guardian.Option{guardian.WithBackend(b), guardian.WithTracer(tr)}, extra...)...)
	}
	vol, err := dataVol(fmt.Sprintf("g%d", gid))
	if err != nil {
		return nil, err
	}
	g, err := guardian.Open(gid, vol, b, append([]guardian.Option{guardian.WithTracer(tr)}, extra...)...)
	if errors.Is(err, stablelog.ErrNoSite) {
		g, err = guardian.New(gid, append([]guardian.Option{guardian.WithBackend(b), guardian.WithTracer(tr), guardian.WithVolume(vol)}, extra...)...)
	}
	if err != nil {
		return nil, err
	}
	if err := settleSelf(g); err != nil {
		return nil, fmt.Errorf("guardian %d: settle recovered actions: %w", gid, err)
	}
	return g, nil
}

// settleSelf resolves the recovered guardian's own in-doubt actions:
// for an action this guardian coordinated, its coordinator log is the
// authority — a surviving committing record means committed, anything
// less is the presumed abort (§2.2.3). Actions prepared here for a
// foreign coordinator are left in doubt; only that coordinator (or an
// operator re-driving outcomes through rosctl) may settle them.
func settleSelf(g *guardian.Guardian) error {
	for _, aid := range g.InDoubt() {
		if aid.Coordinator != g.ID() {
			continue
		}
		var err error
		if g.OutcomeOf(aid) == twopc.OutcomeCommitted {
			err = g.HandleCommit(aid)
		} else {
			err = g.HandleAbort(aid)
		}
		if err != nil {
			return fmt.Errorf("action %v: %w", aid, err)
		}
	}
	return nil
}

// parseRouteMap reads -routemap into a version-1 table. Entries are
// id=host:port for a hash table, id=host:port=start for a range table
// (in range order; the first start is the empty string).
func parseRouteMap(m, kind string) (shard.Table, error) {
	t := shard.Table{Version: 1}
	switch kind {
	case "hash":
		t.Kind = shard.KindHash
	case "range":
		t.Kind = shard.KindRange
	default:
		return shard.Table{}, fmt.Errorf("unknown -routekind %q (want hash or range)", kind)
	}
	for _, part := range strings.Split(m, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), "=", 3)
		if t.Kind == shard.KindRange && len(fields) != 3 {
			return shard.Table{}, fmt.Errorf("-routemap entry %q: want id=host:port=start", part)
		}
		if len(fields) < 2 {
			return shard.Table{}, fmt.Errorf("-routemap entry %q: want id=host:port", part)
		}
		n, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil || n == 0 {
			return shard.Table{}, fmt.Errorf("-routemap entry %q: want a nonzero shard id", part)
		}
		if fields[1] == "" {
			return shard.Table{}, fmt.Errorf("-routemap entry %q: empty address", part)
		}
		sh := shard.Shard{ID: shard.ID(n), Addr: fields[1]}
		if t.Kind == shard.KindRange {
			sh.Start = fields[2]
		}
		t.Shards = append(t.Shards, sh)
	}
	if err := t.Validate(); err != nil {
		return shard.Table{}, fmt.Errorf("-routemap: %w", err)
	}
	return t, nil
}

// backupPeer is one -backups entry.
type backupPeer struct {
	id   ids.GuardianID
	addr string
}

// parseBackups reads the -backups list: comma-separated id=host:port.
func parseBackups(s string) ([]backupPeer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-role primary needs a -backups list (id=host:port,...)")
	}
	var peers []backupPeer
	for _, part := range strings.Split(s, ",") {
		gid, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("backup entry %q: want id=host:port", part)
		}
		n, err := strconv.ParseUint(gid, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("backup entry %q: id: %v", part, err)
		}
		if addr == "" {
			return nil, fmt.Errorf("backup entry %q: empty address", part)
		}
		peers = append(peers, backupPeer{id: ids.GuardianID(n), addr: addr})
	}
	return peers, nil
}

// registerKV installs the key/value handlers. Keys are stable
// variables holding atomic objects, so every committed put/incr
// survives a crash and every action sees a consistent version (§2.1).
func registerKV(g *guardian.Guardian) {
	// keyObj fetches (or, when create is set, makes and registers) the
	// atomic behind a key.
	keyObj := func(sub *guardian.Sub, key string, create bool) (*object.Atomic, error) {
		if o, ok := g.VarAtomic(key); ok {
			return o, nil
		}
		if !create {
			return nil, fmt.Errorf("no such key %q", key)
		}
		o, err := sub.NewAtomic(value.Int(0))
		if err != nil {
			return nil, err
		}
		if err := sub.SetVar(key, o); err != nil {
			return nil, err
		}
		return o, nil
	}

	g.RegisterHandler("get", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		key, ok := arg.(value.Str)
		if !ok {
			return nil, fmt.Errorf("get wants a Str key")
		}
		o, err := keyObj(sub, string(key), false)
		if err != nil {
			return nil, err
		}
		return sub.Read(o)
	})

	g.RegisterHandler("put", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		l, ok := arg.(*value.List)
		if !ok || len(l.Elems) != 2 {
			return nil, fmt.Errorf("put wants List[key, value]")
		}
		key, ok := l.Elems[0].(value.Str)
		if !ok {
			return nil, fmt.Errorf("put wants a Str key")
		}
		o, err := keyObj(sub, string(key), true)
		if err != nil {
			return nil, err
		}
		if err := sub.Set(o, l.Elems[1]); err != nil {
			return nil, err
		}
		return sub.Read(o)
	})

	g.RegisterHandler("incr", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		key, delta, err := incrArgs(arg)
		if err != nil {
			return nil, err
		}
		o, err := keyObj(sub, key, true)
		if err != nil {
			return nil, err
		}
		if err := sub.Update(o, func(cur value.Value) value.Value {
			n, _ := cur.(value.Int)
			return n + delta
		}); err != nil {
			return nil, err
		}
		return sub.Read(o)
	})
}

func incrArgs(arg value.Value) (string, value.Int, error) {
	switch a := arg.(type) {
	case value.Str:
		return string(a), 1, nil
	case *value.List:
		if len(a.Elems) == 2 {
			key, kok := a.Elems[0].(value.Str)
			delta, dok := a.Elems[1].(value.Int)
			if kok && dok {
				return string(key), delta, nil
			}
		}
	}
	return "", 0, fmt.Errorf("incr wants a Str key or List[key, delta]")
}
