package main

import (
	"fmt"
	"net"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/shard"
)

// This file is the real multi-process smoke: three rosd processes
// hosting four shards, driven end to end by rosctl over TCP — build
// both binaries, form the cluster with -shards/-routemap, and commit a
// cross-shard transaction spanning all three processes.

// buildBinaries compiles rosd and rosctl into the test's temp dir.
func buildBinaries(t *testing.T) (rosdBin, rosctlBin string) {
	t.Helper()
	dir := t.TempDir()
	rosdBin = dir + "/rosd"
	rosctlBin = dir + "/rosctl"
	for _, b := range [][2]string{{rosdBin, "repro/cmd/rosd"}, {rosctlBin, "repro/cmd/rosctl"}} {
		cmd := exec.Command("go", "build", "-o", b[0], b[1])
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", b[1], err, out)
		}
	}
	return rosdBin, rosctlBin
}

// freeAddrs reserves n distinct loopback addresses. The listeners are
// closed before rosd binds them — the usual small race, retried away
// by the ping loop.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return addrs
}

// ctl runs one rosctl command against addr and returns its combined
// output.
func ctl(t *testing.T, bin, addr string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, append([]string{"-addr", addr, "-timeout", "5s"}, args...)...).CombinedOutput()
	return string(out), err
}

// TestShardedClusterSmoke: 3 processes, 4 shards, one rosctl-driven
// cross-shard transaction committing atomically over real TCP.
func TestShardedClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short mode")
	}
	rosdBin, rosctlBin := buildBinaries(t)
	addrs := freeAddrs(t, 3)

	// Shards 2 and 3 on node 0, shard 4 on node 1, shard 5 on node 2.
	table := shard.Table{Version: 1, Kind: shard.KindHash, Shards: []shard.Shard{
		{ID: 2, Addr: addrs[0]}, {ID: 3, Addr: addrs[0]},
		{ID: 4, Addr: addrs[1]}, {ID: 5, Addr: addrs[2]},
	}}
	routemap := fmt.Sprintf("2=%s,3=%s,4=%s,5=%s", addrs[0], addrs[0], addrs[1], addrs[2])
	nodes := [][]string{
		{"-addr", addrs[0], "-shards", "2,3", "-routemap", routemap},
		{"-addr", addrs[1], "-shards", "4", "-routemap", routemap},
		{"-addr", addrs[2], "-shards", "5", "-routemap", routemap},
	}
	for _, args := range nodes {
		cmd := exec.Command(rosdBin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			//roslint:besteffort test teardown of a deliberately killed process
			_ = cmd.Process.Kill()
			//roslint:besteffort reaping the killed process; its exit status is meaningless
			_ = cmd.Wait()
		})
	}
	for _, addr := range addrs {
		waitUp(t, rosctlBin, addr)
	}

	// Pick one key per shard in {2, 4, 5} so the transaction spans all
	// three processes. The hash table ignores addresses, so the local
	// copy computes the same owners the cluster does.
	keys := map[shard.ID]string{}
	for i := 0; i < 1000 && len(keys) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		owner := table.Owner(k)
		if _, taken := keys[owner.ID]; !taken && owner.ID != 3 {
			keys[owner.ID] = k
		}
	}
	if len(keys) < 3 {
		t.Fatalf("could not find keys covering shards 2, 4, 5: %v", keys)
	}

	// Drive the cross-shard transaction from node 1, which hosts only
	// shard 4 — the other two legs must route.
	out, err := ctl(t, rosctlBin, addrs[1], "txn",
		keys[2]+"=5", keys[4]+"=7", keys[5]+"=9")
	if err != nil {
		t.Fatalf("txn: %v\n%s", err, out)
	}
	for _, want := range []string{keys[2] + " = 5", keys[4] + " = 7", keys[5] + " = 9", "committed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("txn output missing %q:\n%s", want, out)
		}
	}

	// Read the keys back through a different seed node: the committed
	// values are durable at their owning shards, not at the seed.
	out, err = ctl(t, rosctlBin, addrs[2], "txn",
		keys[2]+"=0", keys[4]+"=0", keys[5]+"=0")
	if err != nil {
		t.Fatalf("read-back txn: %v\n%s", err, out)
	}
	for _, want := range []string{keys[2] + " = 5", keys[4] + " = 7", keys[5] + " = 9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("read-back missing %q:\n%s", want, out)
		}
	}

	// rosctl route: every node publishes the installed table.
	out, err = ctl(t, rosctlBin, addrs[0], "route")
	if err != nil {
		t.Fatalf("route: %v\n%s", err, out)
	}
	for _, want := range []string{"version: 1", "shard 2: " + addrs[0], "shard 5: " + addrs[2]} {
		if !strings.Contains(out, want) {
			t.Fatalf("route output missing %q:\n%s", want, out)
		}
	}

	// rosctl get: an index-served read routed to the key's owning
	// shard — the committed value, no action at the server.
	out, err = ctl(t, rosctlBin, addrs[1], "get", keys[5])
	if err != nil {
		t.Fatalf("get: %v\n%s", err, out)
	}
	if strings.TrimSpace(out) != "9" {
		t.Fatalf("get %s = %q, want 9", keys[5], strings.TrimSpace(out))
	}

	// rosctl status: the two-shard node reports one row per shard plus
	// the node's aggregated index counters; node 2 (which just served
	// the routed get of keys[5]) must have recorded the hit.
	out, err = ctl(t, rosctlBin, addrs[0], "status")
	if err != nil {
		t.Fatalf("status: %v\n%s", err, out)
	}
	for _, want := range []string{"shard 2:", "shard 3:", "idx:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("status output missing %q:\n%s", want, out)
		}
	}
	out, err = ctl(t, rosctlBin, addrs[2], "status")
	if err != nil {
		t.Fatalf("status: %v\n%s", err, out)
	}
	if strings.Contains(out, "hits=0 ") {
		t.Fatalf("node 2 served an index read but reports zero hits:\n%s", out)
	}
}

// waitUp pings addr until the server answers.
func waitUp(t *testing.T, rosctlBin, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		out, err := ctl(t, rosctlBin, addr, "ping")
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rosd at %s never came up: %v\n%s", addr, err, out)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
