// Command roschaos runs one chaos episode against a freshly launched
// multi-process testnet and reports the verdict of both authorities:
// the external-history serial oracle and the merged-trace invariant
// checker.
//
// Usage:
//
//	roschaos [-topology standalone|replicated|sharded] [-seed N]
//	         [-ops N] [-qps N] [-inflight N] [-keys N] [-faults SPEC]
//	         [-out DIR]
//
// The fault spec is a comma-separated list of KIND:NODE:ATOP[:DUR]
// entries: KIND is kill, pause, partition, delay, or diskfull; NODE
// indexes the topology's nodes in launch order (0 is the standalone
// node, the replicated primary, or sharded node0); ATOP is the 1-based
// issued-op count the fault fires before; DUR bounds self-healing
// faults (pause, partition, delay — default 1s). Example:
//
//	roschaos -topology replicated -ops 400 \
//	    -faults pause:1:80:500ms,partition:2:160:500ms,kill:0:300
//
// kills the primary at op 300 mid-traffic; the heal phase promotes the
// backup with the longest durable log through rosctl and re-probes the
// survivors.
//
// Artifacts land in -out (default: a fresh temp dir): episode.json is
// the report, workload.bin the encoded workload config (replayable via
// workload.DecodeConfig), plus each process incarnation's binary trace
// and data directory. The exit status is 0 only when the episode ran
// AND both authorities passed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/chaos/workload"
)

func main() {
	var (
		topology = flag.String("topology", "standalone", "cluster topology: standalone, replicated, or sharded")
		seed     = flag.Int64("seed", 1, "workload seed; identical (seed, config) pairs generate identical op streams")
		ops      = flag.Int("ops", 400, "total operations to issue")
		qps      = flag.Uint("qps", 200, "target issue rate, ops/second")
		inflight = flag.Uint("inflight", 8, "bound on concurrently outstanding ops")
		keys     = flag.Uint("keys", 64, "keyspace size")
		faults   = flag.String("faults", "", "fault schedule: KIND:NODE:ATOP[:DUR],... (kinds: kill pause partition delay diskfull)")
		out      = flag.String("out", "", "artifact directory (default: fresh temp dir, printed)")
	)
	flag.Parse()
	if err := run(*topology, *seed, *ops, uint32(*qps), uint32(*inflight), uint32(*keys), *faults, *out); err != nil {
		fmt.Fprintln(os.Stderr, "roschaos:", err)
		os.Exit(1)
	}
}

func run(topology string, seed int64, ops int, qps, inflight, keys uint32, faultSpec, out string) error {
	topo := chaos.Topology(topology)
	switch topo {
	case chaos.TopologyStandalone, chaos.TopologyReplicated, chaos.TopologySharded:
	default:
		return fmt.Errorf("unknown topology %q", topology)
	}

	wcfg := workload.Default()
	wcfg.Keys = keys
	wcfg.QPS = qps
	wcfg.InFlight = inflight
	if topo != chaos.TopologySharded {
		// Cross-shard transactions need shards; fold their share into
		// plain increments elsewhere.
		wcfg.IncrPct += wcfg.TxnPct
		wcfg.TxnPct = 0
	}

	schedule, err := parseFaults(faultSpec, topo)
	if err != nil {
		return err
	}

	if out == "" {
		out, err = os.MkdirTemp("", "roschaos-*")
		if err != nil {
			return err
		}
	} else if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	fmt.Println("artifacts:", out)
	if err := os.WriteFile(filepath.Join(out, "workload.bin"), workload.EncodeConfig(wcfg), 0o644); err != nil {
		return err
	}

	rep, err := chaos.RunEpisode(chaos.EpisodeConfig{
		Topology: topo,
		Workload: wcfg,
		Seed:     seed,
		Ops:      ops,
		Faults:   schedule,
		Dir:      out,
	})
	if rep != nil {
		if b, jerr := json.MarshalIndent(rep, "", "  "); jerr == nil {
			// The report is also printed below; a failed artifact write
			// must not mask the verdict.
			_ = os.WriteFile(filepath.Join(out, "episode.json"), append(b, '\n'), 0o644)
			fmt.Println(string(b))
		}
	}
	if err != nil {
		return err
	}
	if !rep.Passed() {
		return fmt.Errorf("episode failed: oracle=%q, %d checker violations",
			rep.OracleErr, len(rep.CheckerViolations))
	}
	fmt.Println("episode passed: oracle clean, checker clean")
	return nil
}

// parseFaults parses the -faults spec.
func parseFaults(spec string, topo chaos.Topology) ([]chaos.FaultSpec, error) {
	if spec == "" {
		return nil, nil
	}
	nodes := 3
	if topo == chaos.TopologyStandalone {
		nodes = 1
	}
	var out []chaos.FaultSpec
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(entry, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("fault %q: want KIND:NODE:ATOP[:DUR]", entry)
		}
		f := chaos.FaultSpec{Kind: chaos.FaultKind(parts[0])}
		switch f.Kind {
		case chaos.FaultKill, chaos.FaultPause, chaos.FaultPartition, chaos.FaultDelay, chaos.FaultDiskFull:
		default:
			return nil, fmt.Errorf("fault %q: unknown kind %q", entry, parts[0])
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n < 0 || n >= nodes {
			return nil, fmt.Errorf("fault %q: node index %q out of range [0, %d)", entry, parts[1], nodes)
		}
		f.Node = n
		f.AtOp, err = strconv.Atoi(parts[2])
		if err != nil || f.AtOp < 1 {
			return nil, fmt.Errorf("fault %q: at-op %q must be a positive integer", entry, parts[2])
		}
		f.Duration = time.Second
		if len(parts) == 4 {
			f.Duration, err = time.ParseDuration(parts[3])
			if err != nil {
				return nil, fmt.Errorf("fault %q: duration: %v", entry, err)
			}
		}
		if f.Kind == chaos.FaultDelay {
			f.Connect = 50 * time.Millisecond
			f.Read = 20 * time.Millisecond
		}
		out = append(out, f)
	}
	return out, nil
}
