// Command rosbench regenerates the reproduction's experiment tables
// (see DESIGN.md's experiment index and EXPERIMENTS.md): the write-cost
// and recovery-cost comparison of the three stable-storage
// organizations (E1/E2/E3), the early-prepare effect (E4), the
// compaction-vs-snapshot comparison (E5), the effect of housekeeping on
// recovery (E6), the group-commit force-sharing curve (E11), the
// served-guardian throughput scaling curve over loopback TCP (E12), the
// replication cost and failover-time comparison (E13), the sharded
// keyspace's disjoint-key scaling curve plus cross-shard two-phase
// commit overhead (E14), and the read-path comparison of the
// live-version index against the action-path baseline, with and
// without pipelined wire batching and under a mixed read/write load at
// zipfian key skew (E16).
//
// Usage:
//
//	rosbench [-experiment all|e1|e2|e3|e4|e5|e6|e11|e12|e13|e14|e16] [-quick]
//	         [-commitjson FILE] [-serverjson FILE] [-repjson FILE]
//	         [-shardjson FILE] [-readjson FILE]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/replog"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stablelog"
	"repro/internal/twopc"
	"repro/internal/value"
)

var (
	experiment = flag.String("experiment", "all", "which experiment to run: all, e1..e6, e11, e12, e13, e14, e16")
	quick      = flag.Bool("quick", false, "smaller workloads for a fast smoke run")
	commitJSON = flag.String("commitjson", "", "write the E11 rows as JSON to this file (e.g. BENCH_commit.json)")
	serverJSON = flag.String("serverjson", "", "write the E12 rows as JSON to this file (e.g. BENCH_server.json)")
	repJSON    = flag.String("repjson", "", "write the E13 rows as JSON to this file (e.g. BENCH_rep.json)")
	shardJSON  = flag.String("shardjson", "", "write the E14 rows as JSON to this file (e.g. BENCH_shard.json)")
	readJSON   = flag.String("readjson", "", "write the E16 rows as JSON to this file (e.g. BENCH_read.json)")
	trace      = flag.Bool("trace", false, "derive the E11/E14 per-commit numbers from the event stream and cross-check them against the counters")
)

func main() {
	flag.Parse()
	run := func(name string, fn func()) {
		if *experiment == "all" || *experiment == name {
			fn()
		}
	}
	run("e1", e1WriteCost)
	run("e2", e2RecoveryCost)
	run("e3", e3ScanCost)
	run("e4", e4EarlyPrepare)
	run("e5", e5Housekeeping)
	run("e6", e6RecoveryAfterHousekeeping)
	run("e11", e11GroupCommit)
	run("e12", e12ServerThroughput)
	run("e13", e13Replication)
	run("e14", e14ShardScaling)
	run("e16", e16ReadPath)
}

func backends() []core.Backend {
	return []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rosbench:", err)
		os.Exit(1)
	}
}

func e1WriteCost() {
	fmt.Println("E1 — write cost per committed action (§1.2.2: shadowing pays the map rewrite)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "organization\tlive objects\tobjs/commit\tcommit µs\tlog bytes/commit")
	iters := 300
	sizes := []int{64, 512}
	if *quick {
		iters = 60
		sizes = []int{32, 128}
	}
	for _, b := range backends() {
		for _, objs := range sizes {
			for _, batch := range []int{1, 8} {
				g := commitHistory(b, objs, 0, 0)
				startBytes := g.RS().LogBytes()
				start := time.Now()
				for i := 0; i < iters; i++ {
					act := g.Begin()
					for j := 0; j < batch; j++ {
						o, _ := g.VarAtomic(fmt.Sprintf("c%d", (i+j)%objs))
						die(act.Update(o, func(v value.Value) value.Value {
							return value.Int(int64(v.(value.Int)) + 1)
						}))
					}
					die(act.Commit())
				}
				el := time.Since(start)
				perCommit := float64(g.RS().LogBytes()-startBytes) / float64(iters)
				fmt.Fprintf(w, "%v\t%d\t%d\t%.1f\t%.0f\n",
					b, objs, batch, float64(el.Microseconds())/float64(iters), perCommit)
			}
		}
	}
	w.Flush()
	fmt.Println()
}

func e2RecoveryCost() {
	fmt.Println("E2 — recovery cost by organization (µs and entries read)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "organization\thistory\trecovery µs\tentries read")
	histories := []int{100, 1000}
	if *quick {
		histories = []int{50, 200}
	}
	for _, b := range backends() {
		for _, h := range histories {
			g := commitHistory(b, 32, h, 2)
			g.Crash()
			start := time.Now()
			rec, err := guardian.RecoverStats(g)
			die(err)
			el := time.Since(start)
			fmt.Fprintf(w, "%v\t%d\t%.0f\t%d\n", b, h, float64(el.Microseconds()), rec.EntriesRead)
		}
	}
	w.Flush()
	fmt.Println()
}

func commitHistory(b core.Backend, counters, history, batch int) *guardian.Guardian {
	g, err := guardian.New(1, guardian.WithBackend(b))
	die(err)
	a := g.Begin()
	objs := make([]*object.Atomic, counters)
	for i := range objs {
		o, err := a.NewAtomic(value.Int(0))
		die(err)
		die(a.SetVar(fmt.Sprintf("c%d", i), o))
		objs[i] = o
	}
	die(a.Commit())
	for i := 0; i < history; i++ {
		act := g.Begin()
		for j := 0; j < batch; j++ {
			o := objs[(i+j)%counters]
			die(act.Update(o, func(v value.Value) value.Value {
				return value.Int(int64(v.(value.Int)) + 1)
			}))
		}
		die(act.Commit())
	}
	return g
}

func e3ScanCost() {
	fmt.Println("E3 — entries examined during recovery (hybrid reads the outcome chain only)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "organization\tdata:outcome\tentries read")
	history := 200
	if *quick {
		history = 60
	}
	for _, b := range backends() {
		for _, batch := range []int{1, 16} {
			g := commitHistory(b, 32, history, batch)
			g.Crash()
			rec, err := guardian.RecoverStats(g)
			die(err)
			fmt.Fprintf(w, "%v\t%d:4\t%d\n", b, batch, rec.EntriesRead)
		}
	}
	w.Flush()
	fmt.Println()
}

func e4EarlyPrepare() {
	fmt.Println("E4 — prepare-phase latency with and without early prepare (§4.4)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mode\tobjects\tprepare µs (median of runs)")
	iters := 200
	if *quick {
		iters = 50
	}
	for _, early := range []bool{false, true} {
		for _, k := range []int{4, 32} {
			g := commitHistory(core.BackendHybrid, k, 0, 0)
			var total time.Duration
			for i := 0; i < iters; i++ {
				a := g.Begin()
				for j := 0; j < k; j++ {
					o, _ := g.VarAtomic(fmt.Sprintf("c%d", j))
					die(a.Update(o, func(v value.Value) value.Value {
						return value.Int(int64(v.(value.Int)) + 1)
					}))
				}
				if early {
					die(a.EarlyPrepare())
				}
				start := time.Now()
				_, err := g.HandlePrepare(a.ID())
				die(err)
				total += time.Since(start)
				die(g.HandleCommit(a.ID()))
			}
			mode := "cold"
			if early {
				mode = "early"
			}
			fmt.Fprintf(w, "%s\t%d\t%.1f\n", mode, k, float64(total.Microseconds())/float64(iters))
		}
	}
	w.Flush()
	fmt.Println()
}

func e5Housekeeping() {
	fmt.Println("E5 — compaction vs snapshot as garbage grows (§5.3)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tlive\tdead ratio\tµs\told entries read\tobjects copied")
	ratios := []int{2, 16, 64}
	if *quick {
		ratios = []int{2, 8}
	}
	for _, kind := range []core.HousekeepKind{core.HousekeepCompact, core.HousekeepSnapshot} {
		name := "compaction"
		if kind == core.HousekeepSnapshot {
			name = "snapshot"
		}
		for _, ratio := range ratios {
			const live = 32
			g := commitHistory(core.BackendHybrid, live, live*ratio/2, 2)
			start := time.Now()
			stats, err := g.Housekeep(kind)
			die(err)
			el := time.Since(start)
			fmt.Fprintf(w, "%s\t%d\t%dx\t%.0f\t%d\t%d\n",
				name, live, ratio, float64(el.Microseconds()), stats.OldEntriesRead, stats.ObjectsCopied)
		}
	}
	w.Flush()
	fmt.Println()
}

// commitRow is one E11 measurement, serialized to -commitjson. With
// -trace the forces/bytes numbers come from the event stream (an
// obs.Stats tracer) rather than the storage counters; the two are
// cross-checked against each other first, so the JSON is the same
// either way apart from the source field.
type commitRow struct {
	Organization    string  `json:"organization"`
	Goroutines      int     `json:"goroutines"`
	Commits         int     `json:"commits"`
	NsPerCommit     float64 `json:"ns_per_commit"`
	CommitsPerSec   float64 `json:"commits_per_sec"`
	ForcesPerCommit float64 `json:"forces_per_commit"`
	BytesPerCommit  float64 `json:"bytes_per_commit"`
	Source          string  `json:"source,omitempty"`
}

// e11WriteDelay mirrors the bench_test.go constant: the simulated
// per-block device latency that makes a force expensive enough for
// concurrent committers to overlap inside one.
const e11WriteDelay = 50 * time.Microsecond

func e11GroupCommit() {
	fmt.Println("E11 — group commit: forces shared across concurrent committers (§1.2, §4.1)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "organization\tgoroutines\tcommits/s\tforces/commit\tlog bytes/commit")
	perWorker := 25
	workerCounts := []int{1, 2, 4, 8, 16}
	if *quick {
		perWorker = 8
		workerCounts = []int{1, 4, 8}
	}
	var rows []commitRow
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid} {
		for _, workers := range workerCounts {
			g := commitHistory(b, workers, 0, 0)
			g.Volume().SetWriteDelay(e11WriteDelay)
			var st *obs.Stats
			if *trace {
				st = new(obs.Stats)
				g.SetTracer(st)
			}
			forces0 := g.RS().Forces()
			bytes0 := g.RS().LogBytes()
			commits := workers * perWorker
			errs := make([]error, workers)
			start := time.Now()
			var wg sync.WaitGroup
			for id := 0; id < workers; id++ {
				id := id
				o, ok := g.VarAtomic(fmt.Sprintf("c%d", id))
				if !ok {
					die(fmt.Errorf("counter c%d missing", id))
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						a := g.Begin()
						if err := a.Update(o, func(v value.Value) value.Value {
							return value.Int(int64(v.(value.Int)) + 1)
						}); err != nil {
							errs[id] = err
							return
						}
						if err := a.Commit(); err != nil {
							errs[id] = err
							return
						}
					}
				}()
			}
			wg.Wait()
			el := time.Since(start)
			for _, err := range errs {
				die(err)
			}
			forces := uint64(g.RS().Forces() - forces0)
			bytes := g.RS().LogBytes() - bytes0
			source := "counters"
			if st != nil {
				// The event stream must agree exactly with the storage
				// counters; a divergence means a layer emits events it
				// doesn't count (or vice versa) and the trace-derived
				// experiment numbers can't be trusted.
				tf, tb := st.Count(obs.KindForceDone), st.AppendedBytes()
				if tf != forces || tb != bytes {
					die(fmt.Errorf("e11 %v/%d: trace disagrees with counters: forces %d vs %d, bytes %d vs %d",
						b, workers, tf, forces, tb, bytes))
				}
				forces, bytes, source = tf, tb, "trace"
			}
			row := commitRow{
				Organization:    b.String(),
				Goroutines:      workers,
				Commits:         commits,
				NsPerCommit:     float64(el.Nanoseconds()) / float64(commits),
				CommitsPerSec:   float64(commits) / el.Seconds(),
				ForcesPerCommit: float64(forces) / float64(commits),
				BytesPerCommit:  float64(bytes) / float64(commits),
				Source:          source,
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%v\t%d\t%.0f\t%.3f\t%.0f\n",
				b, workers, row.CommitsPerSec, row.ForcesPerCommit, row.BytesPerCommit)
		}
	}
	w.Flush()
	fmt.Println()
	if *commitJSON != "" {
		out, err := json.MarshalIndent(rows, "", "  ")
		die(err)
		die(os.WriteFile(*commitJSON, append(out, '\n'), 0o644))
		fmt.Printf("wrote %s (%d rows)\n\n", *commitJSON, len(rows))
	}
}

// serverRow is one E12 measurement, serialized to -serverjson.
type serverRow struct {
	Clients         int     `json:"clients"`
	Commits         int     `json:"commits"`
	Seconds         float64 `json:"seconds"`
	CommitsPerSec   float64 `json:"commits_per_sec"`
	P50Us           float64 `json:"p50_us"`
	P99Us           float64 `json:"p99_us"`
	ForcesPerCommit float64 `json:"forces_per_commit"`
	Speedup         float64 `json:"speedup_vs_one_client"`
}

// e12WriteDelay is the simulated device latency behind the served
// guardian's log. It is deliberately larger than e11's: every E12
// commit also pays a wire round trip, so the force has to dominate for
// the group-commit effect to be the thing measured.
const e12WriteDelay = 200 * time.Microsecond

// e12ServerThroughput measures a real rosd-style server over loopback
// TCP: N concurrent clients each driving complete atomic increments of
// their own counter. Throughput should scale superlinearly past the
// single-client line because concurrent committers share log forces
// (E11's effect, now visible through the serving layer).
func e12ServerThroughput() {
	fmt.Println("E12 — served-guardian throughput over loopback TCP (group commit on)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "clients\tcommits\tcommits/s\tp50 µs\tp99 µs\tforces/commit\tspeedup")
	perClient := 300
	clientCounts := []int{1, 2, 4, 8, 16}
	if *quick {
		perClient = 40
		clientCounts = []int{1, 4}
	}
	var rows []serverRow
	for _, clients := range clientCounts {
		row := e12Run(clients, perClient)
		if len(rows) > 0 {
			row.Speedup = row.CommitsPerSec / rows[0].CommitsPerSec
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.0f\t%.0f\t%.3f\t%.2fx\n",
			row.Clients, row.Commits, row.CommitsPerSec, row.P50Us, row.P99Us, row.ForcesPerCommit, row.Speedup)
	}
	w.Flush()
	fmt.Println()
	if *serverJSON != "" {
		out, err := json.MarshalIndent(rows, "", "  ")
		die(err)
		die(os.WriteFile(*serverJSON, append(out, '\n'), 0o644))
		fmt.Printf("wrote %s (%d rows)\n\n", *serverJSON, len(rows))
	}
}

// e12Run measures one point on the curve: a fresh hybrid guardian
// served over a fresh loopback listener, `clients` concurrent clients,
// one counter each (so actions never conflict and every commit is a
// separate top-level action).
func e12Run(clients, perClient int) serverRow {
	g := commitHistory(core.BackendHybrid, clients, 0, 0)
	g.RegisterHandler("incr", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		o, ok := g.VarAtomic(fmt.Sprintf("c%d", int64(arg.(value.Int))))
		if !ok {
			return nil, fmt.Errorf("no such counter")
		}
		if err := sub.Update(o, func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + 1)
		}); err != nil {
			return nil, err
		}
		return sub.Read(o)
	})
	g.Volume().SetWriteDelay(e12WriteDelay)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	die(err)
	s := server.New(g, server.Config{Workers: 2 * clients, MaxConns: 2 * clients})
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	addr := ln.Addr().String()

	forces0 := g.RS().Forces()
	commits := clients * perClient
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := client.New(addr, client.Options{PoolSize: 1})
			//roslint:besteffort teardown after the measured ops all succeeded; nothing left to lose
			defer c.Close()
			lats[id] = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				opStart := time.Now()
				if _, err := c.Invoke("incr", value.Int(id)); err != nil {
					errs[id] = err
					return
				}
				lats[id] = append(lats[id], time.Since(opStart))
			}
		}()
	}
	wg.Wait()
	el := time.Since(start)
	for _, err := range errs {
		die(err)
	}
	forces := g.RS().Forces() - forces0

	// Every acked increment must be in the committed state: each
	// client's counter reads exactly perClient.
	check := g.Begin()
	for id := 0; id < clients; id++ {
		o, _ := g.VarAtomic(fmt.Sprintf("c%d", id))
		v, err := check.Read(o)
		die(err)
		if int(v.(value.Int)) != perClient {
			die(fmt.Errorf("e12 %d clients: counter c%d = %v, want %d", clients, id, v, perClient))
		}
	}
	die(check.Abort())
	die(s.Close())
	if err := <-serveDone; !errors.Is(err, server.ErrClosed) {
		die(err)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return serverRow{
		Clients:         clients,
		Commits:         commits,
		Seconds:         el.Seconds(),
		CommitsPerSec:   float64(commits) / el.Seconds(),
		P50Us:           float64(all[len(all)/2].Microseconds()),
		P99Us:           float64(all[len(all)*99/100].Microseconds()),
		ForcesPerCommit: float64(forces) / float64(commits),
	}
}

// repRow is one E13 measurement, serialized to -repjson.
type repRow struct {
	Mode          string  `json:"mode"`
	Replicas      int     `json:"replicas"`
	Quorum        int     `json:"quorum"`
	Commits       int     `json:"commits"`
	NsPerCommit   float64 `json:"ns_per_commit"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	// FailoverUs is the time to bring a recovered guardian back up after
	// the history: a crash-restart on the single device, a backup
	// promotion (takeover recovery included) when replicated.
	FailoverUs float64 `json:"failover_us"`
}

// e13WriteDelay is the simulated per-block device latency for E13; the
// same delay applies to the primary's device and every backup's, so the
// replicated rows pay the honest cost of the extra durable copies.
const e13WriteDelay = 50 * time.Microsecond

// e13Replication compares commit latency and failover time across
// replication modes: a single device (failover = crash-restart
// recovery), a 2-of-3 quorum (the commit waits for the faster backup),
// and a 3-of-3 all-ack round. Replication runs over the in-process
// deterministic transport — the wire costs are E12's subject; here the
// device and round structure are what's measured.
func e13Replication() {
	fmt.Println("E13 — replicated forces: commit cost and failover time vs a single device")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mode\treplicas\tquorum\tcommits/s\tµs/commit\tfailover µs")
	commits := 300
	if *quick {
		commits = 60
	}
	modes := []struct {
		name              string
		replicas, quorumN int
	}{
		{"single-device", 0, 0},
		{"replicated", 2, 2},
		{"replicated-all", 2, 3},
	}
	var rows []repRow
	for _, m := range modes {
		row := e13Run(m.name, m.replicas, m.quorumN, commits)
		rows = append(rows, row)
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.1f\t%.0f\n",
			row.Mode, row.Replicas, row.Quorum, row.CommitsPerSec, row.NsPerCommit/1e3, row.FailoverUs)
	}
	w.Flush()
	fmt.Println()
	if *repJSON != "" {
		out, err := json.MarshalIndent(rows, "", "  ")
		die(err)
		die(os.WriteFile(*repJSON, append(out, '\n'), 0o644))
		fmt.Printf("wrote %s (%d rows)\n\n", *repJSON, len(rows))
	}
}

// e13Run measures one replication mode: a serial commit loop on one
// counter, then the mode's failover path, verifying the recovered
// counter saw every commit.
func e13Run(mode string, replicas, quorumN, commits int) repRow {
	g := commitHistory(core.BackendHybrid, 1, 0, 0)
	g.Volume().SetWriteDelay(e13WriteDelay)
	var bks []*replog.Backup
	if replicas > 0 {
		net := netsim.New()
		reps := make([]replog.Replica, 0, replicas)
		for i := 0; i < replicas; i++ {
			bvol := stablelog.NewMemVolume(512)
			bvol.SetWriteDelay(e13WriteDelay)
			b, err := replog.NewBackup(replog.BackupConfig{
				ID: ids.GuardianID(101 + i), Primary: 1, Backend: core.BackendHybrid, Volume: bvol,
			})
			die(err)
			bks = append(bks, b)
			reps = append(reps, b)
		}
		p, err := replog.NewPrimary(replog.Config{
			Self: 1, Site: g.Site(), Quorum: quorumN, Net: net, Replicas: reps,
		})
		die(err)
		g.SetReplicator(p)
	}

	o, ok := g.VarAtomic("c0")
	if !ok {
		die(fmt.Errorf("e13: counter c0 missing"))
	}
	start := time.Now()
	for i := 0; i < commits; i++ {
		a := g.Begin()
		die(a.Update(o, func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + 1)
		}))
		die(a.Commit())
	}
	el := time.Since(start)

	var ng *guardian.Guardian
	foStart := time.Now()
	if replicas > 0 {
		var err error
		ng, err = bks[0].Promote()
		die(err)
	} else {
		g.Crash()
		var err error
		ng, err = guardian.Restart(g)
		die(err)
	}
	fo := time.Since(foStart)
	no, ok := ng.VarAtomic("c0")
	if !ok {
		die(fmt.Errorf("e13 %s: counter lost across failover", mode))
	}
	if got := int(no.Base().(value.Int)); got != commits {
		die(fmt.Errorf("e13 %s: recovered counter = %d, want %d", mode, got, commits))
	}
	return repRow{
		Mode:          mode,
		Replicas:      replicas,
		Quorum:        quorumN,
		Commits:       commits,
		NsPerCommit:   float64(el.Nanoseconds()) / float64(commits),
		CommitsPerSec: float64(commits) / el.Seconds(),
		FailoverUs:    float64(fo.Microseconds()),
	}
}

// shardRow is one E14 measurement, serialized to -shardjson. Disjoint
// rows vary the shard count under a disjoint-key workload; cross-shard
// rows hold the cluster at the largest shard count and vary how many
// shards one atomic action spans.
type shardRow struct {
	Mode            string  `json:"mode"` // "disjoint" or "cross-shard"
	Shards          int     `json:"shards"`
	Span            int     `json:"span"`
	Clients         int     `json:"clients"`
	Commits         int     `json:"commits"`
	Seconds         float64 `json:"seconds"`
	CommitsPerSec   float64 `json:"commits_per_sec"`
	NsPerCommit     float64 `json:"ns_per_commit"`
	ForcesPerCommit float64 `json:"forces_per_commit"`
	Speedup         float64 `json:"speedup_vs_one_shard,omitempty"`
	Source          string  `json:"source,omitempty"`
}

// e14WriteDelay is the simulated per-block device latency behind every
// shard guardian's log; with e14ValueBytes-sized values each commit
// keeps its shard's device busy for hundreds of microseconds, so
// throughput is device-bound and adding shards adds devices.
const e14WriteDelay = 50 * time.Microsecond

// e14ValueBytes is the payload size of the disjoint-key workload.
const e14ValueBytes = 4096

// e14ShardScaling measures the sharded deployment: disjoint-key commit
// throughput as the shard count grows (each shard is an independent
// guardian with its own device — the LogBase-style near-linear curve),
// then the cross-shard 2PC overhead as one action spans more shards.
func e14ShardScaling() {
	fmt.Println("E14 — sharded keyspace: disjoint-key scaling and cross-shard 2PC overhead")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mode\tshards\tspan\tclients\tcommits/s\tµs/commit\tforces/commit\tspeedup")
	perClient := 40
	crossTxns := 60
	if *quick {
		perClient = 8
		crossTxns = 12
	}
	var rows []shardRow
	shardCounts := []int{1, 2, 4}
	for _, s := range shardCounts {
		row := e14Disjoint(s, perClient)
		if len(rows) == 0 {
			row.Speedup = 1
		} else {
			row.Speedup = row.CommitsPerSec / rows[0].CommitsPerSec
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0f\t%.0f\t%.3f\t%.2fx\n",
			row.Mode, row.Shards, row.Span, row.Clients, row.CommitsPerSec,
			row.NsPerCommit/1e3, row.ForcesPerCommit, row.Speedup)
	}
	maxShards := shardCounts[len(shardCounts)-1]
	for _, span := range []int{1, 2, 4} {
		row := e14Cross(maxShards, span, crossTxns)
		rows = append(rows, row)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0f\t%.0f\t%.3f\t\n",
			row.Mode, row.Shards, row.Span, row.Clients, row.CommitsPerSec,
			row.NsPerCommit/1e3, row.ForcesPerCommit)
	}
	w.Flush()
	if last := rows[len(shardCounts)-1]; last.Speedup < 3 {
		fmt.Printf("WARNING: %d-shard disjoint speedup %.2fx below the 3x acceptance line\n",
			last.Shards, last.Speedup)
	}
	fmt.Println()
	if *shardJSON != "" {
		out, err := json.MarshalIndent(rows, "", "  ")
		die(err)
		die(os.WriteFile(*shardJSON, append(out, '\n'), 0o644))
		fmt.Printf("wrote %s (%d rows)\n\n", *shardJSON, len(rows))
	}
}

// e14Cluster is one server hosting n shard guardians over loopback
// TCP, each guardian on its own delayed device.
type e14Cluster struct {
	srv   *server.Server
	addr  string
	gs    []*guardian.Guardian
	table shard.Table
	done  chan error
}

func e14Start(shards int) *e14Cluster {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	die(err)
	cl := &e14Cluster{addr: ln.Addr().String(), done: make(chan error, 1)}
	cl.srv = server.New(nil, server.Config{Workers: 4 * shards, MaxConns: 8 * shards})
	cl.table = shard.Table{Version: 1, Kind: shard.KindHash}
	for i := 1; i <= shards; i++ {
		g, err := guardian.New(ids.GuardianID(i), guardian.WithBackend(core.BackendHybrid))
		die(err)
		e14Register(g)
		g.Volume().SetWriteDelay(e14WriteDelay)
		cl.srv.AddShard(uint32(i), g)
		cl.gs = append(cl.gs, g)
		cl.table.Shards = append(cl.table.Shards, shard.Shard{ID: shard.ID(i), Addr: cl.addr})
	}
	die(cl.srv.InstallTable(cl.table))
	go func() { cl.done <- cl.srv.Serve(ln) }()
	return cl
}

func (cl *e14Cluster) stop() {
	die(cl.srv.Close())
	if err := <-cl.done; !errors.Is(err, server.ErrClosed) {
		die(err)
	}
}

// counters sums forces and appended log bytes across every shard's
// guardian.
func (cl *e14Cluster) counters() (forces uint64, bytes uint64) {
	for _, g := range cl.gs {
		forces += uint64(g.RS().Forces())
		bytes += g.RS().LogBytes()
	}
	return forces, bytes
}

// keysFor finds perShard keys owned by each shard under the cluster's
// hash table (the table ignores addresses, so ownership is stable).
func (cl *e14Cluster) keysFor(perShard int) map[shard.ID][]string {
	need := len(cl.table.Shards) * perShard
	out := make(map[shard.ID][]string, len(cl.table.Shards))
	for i, total := 0, 0; total < need; i++ {
		k := fmt.Sprintf("key%06d", i)
		id := cl.table.Owner(k).ID
		if len(out[id]) < perShard {
			out[id] = append(out[id], k)
			total++
		}
	}
	return out
}

// e14Register installs the benchmark handlers: put stores a value
// under a key (creating the stable variable on first use), incr adds a
// delta to an integer key.
func e14Register(g *guardian.Guardian) {
	keyObj := func(sub *guardian.Sub, key string, init value.Value) (*object.Atomic, error) {
		if o, ok := g.VarAtomic(key); ok {
			return o, nil
		}
		o, err := sub.NewAtomic(init)
		if err != nil {
			return nil, err
		}
		if err := sub.SetVar(key, o); err != nil {
			return nil, err
		}
		return o, nil
	}
	g.RegisterHandler("put", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		l, ok := arg.(*value.List)
		if !ok || len(l.Elems) != 2 {
			return nil, fmt.Errorf("put wants List[key, value]")
		}
		o, err := keyObj(sub, string(l.Elems[0].(value.Str)), value.Int(0))
		if err != nil {
			return nil, err
		}
		if err := sub.Set(o, l.Elems[1]); err != nil {
			return nil, err
		}
		return value.Int(1), nil
	})
	g.RegisterHandler("incr", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		l, ok := arg.(*value.List)
		if !ok || len(l.Elems) != 2 {
			return nil, fmt.Errorf("incr wants List[key, delta]")
		}
		o, err := keyObj(sub, string(l.Elems[0].(value.Str)), value.Int(0))
		if err != nil {
			return nil, err
		}
		if err := sub.Update(o, func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + int64(l.Elems[1].(value.Int)))
		}); err != nil {
			return nil, err
		}
		return sub.Read(o)
	})
}

// e14Disjoint measures one point of the scaling curve: two routed
// clients per shard, each repeatedly storing an e14ValueBytes payload
// under a key its shard owns — every commit a complete single-shard
// atomic action, shards never contending for a device.
func e14Disjoint(shards, perClient int) shardRow {
	const clientsPerShard = 2
	cl := e14Start(shards)
	var stats []*obs.Stats
	if *trace {
		for _, g := range cl.gs {
			st := new(obs.Stats)
			g.SetTracer(st)
			stats = append(stats, st)
		}
	}
	keys := cl.keysFor(clientsPerShard)
	payload := value.Str(make([]byte, e14ValueBytes))
	forces0, bytes0 := cl.counters()
	clients := shards * clientsPerShard
	commits := clients * perClient
	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	idx := 0
	for _, sh := range cl.table.Shards {
		for j := 0; j < clientsPerShard; j++ {
			key := keys[sh.ID][j]
			i := idx
			idx++
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := client.NewRouted([]string{cl.addr}, client.Options{PoolSize: 1})
				//roslint:besteffort teardown after the measured ops all succeeded; nothing left to lose
				defer r.Close()
				for n := 0; n < perClient; n++ {
					if _, err := r.Invoke(key, "put", value.NewList(value.Str(key), payload)); err != nil {
						errs[i] = err
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	el := time.Since(start)
	for _, err := range errs {
		die(err)
	}
	forces1, bytes1 := cl.counters()
	forces, bytes := forces1-forces0, bytes1-bytes0
	source := "counters"
	if stats != nil {
		// Trace-derived cross-check, E11's rule extended shard-wise:
		// the union of the shard guardians' event streams must agree
		// with the sum of their storage counters.
		var tf, tb uint64
		for _, st := range stats {
			tf += st.Count(obs.KindForceDone)
			tb += st.AppendedBytes()
		}
		if tf != forces || tb != bytes {
			die(fmt.Errorf("e14 %d shards: trace disagrees with counters: forces %d vs %d, bytes %d vs %d",
				shards, tf, forces, tb, bytes))
		}
		forces, source = tf, "trace"
	}
	cl.stop()
	return shardRow{
		Mode: "disjoint", Shards: shards, Span: 1, Clients: clients, Commits: commits,
		Seconds:         el.Seconds(),
		CommitsPerSec:   float64(commits) / el.Seconds(),
		NsPerCommit:     float64(el.Nanoseconds()) / float64(commits),
		ForcesPerCommit: float64(forces) / float64(commits),
		Source:          source,
	}
}

// e14Cross measures the cross-shard overhead curve: serial atomic
// actions each spanning `span` distinct shards (span 1 uses the same
// client-driven 2PC machinery, so the added legs are the only
// variable). The starting shard rotates so every guardian takes turns
// coordinating.
func e14Cross(shards, span, txns int) shardRow {
	cl := e14Start(shards)
	keys := cl.keysFor(1)
	r := client.NewRouted([]string{cl.addr}, client.Options{PoolSize: 2})
	forces0, _ := cl.counters()
	start := time.Now()
	for i := 0; i < txns; i++ {
		legs := make([]string, 0, span)
		for j := 0; j < span; j++ {
			sh := cl.table.Shards[(i+j)%len(cl.table.Shards)]
			legs = append(legs, keys[sh.ID][0])
		}
		t, err := r.Begin(legs[0])
		die(err)
		for _, k := range legs {
			_, err := t.Invoke(k, "incr", value.NewList(value.Str(k), value.Int(1)))
			die(err)
		}
		res, err := t.Commit()
		die(err)
		if res.Outcome != twopc.OutcomeCommitted {
			die(fmt.Errorf("e14 span %d txn %d: outcome %v", span, i, res.Outcome))
		}
	}
	el := time.Since(start)
	forces1, _ := cl.counters()
	//roslint:besteffort teardown after the measured ops all succeeded; nothing left to lose
	r.Close()
	cl.stop()
	return shardRow{
		Mode: "cross-shard", Shards: shards, Span: span, Clients: 1, Commits: txns,
		Seconds:         el.Seconds(),
		CommitsPerSec:   float64(txns) / el.Seconds(),
		NsPerCommit:     float64(el.Nanoseconds()) / float64(txns),
		ForcesPerCommit: float64(forces1-forces0) / float64(txns),
		Source:          "counters",
	}
}

// readRow is one E16 measurement, serialized to -readjson. IdxHits /
// IdxMisses / Forces are the row's own deltas, cross-checked against
// the guardian's event stream (an obs.Stats tracer) before reporting —
// an index-served row must show hits == ops, zero misses, and zero
// forces, proving the hot read path touched neither locks nor the
// device.
type readRow struct {
	Mode      string  `json:"mode"`
	Clients   int     `json:"clients"`
	Batch     int     `json:"batch"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
	IdxHits   uint64  `json:"idx_hits"`
	IdxMisses uint64  `json:"idx_misses"`
	Forces    uint64  `json:"forces"`
	Speedup   float64 `json:"speedup,omitempty"`
}

const (
	// e16WriteDelay matches e12: the simulated device latency writers
	// pay per forced block, which is what the action-path reader gets
	// stuck behind under write contention.
	e16WriteDelay = 200 * time.Microsecond
	e16Keys       = 64
	e16PayloadLen = 256
	// e16ZipfS skews the key choice so readers and writers pile onto
	// the same hot keys — the regime where lock-free index reads and
	// lock-taking action reads diverge.
	e16ZipfS = 1.2
)

func e16Key(i uint64) string { return fmt.Sprintf("k%03d", i) }

// e16Guardian builds a hybrid guardian with e16Keys payload-bearing
// keys committed, the benchmark handlers registered, and the delayed
// device installed.
func e16Guardian() *guardian.Guardian {
	g, err := guardian.New(1, guardian.WithBackend(core.BackendHybrid))
	die(err)
	e14Register(g)
	g.RegisterHandler("get", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		o, ok := g.VarAtomic(string(arg.(value.Str)))
		if !ok {
			return nil, fmt.Errorf("no such key %q", arg)
		}
		return sub.Read(o)
	})
	a := g.Begin()
	payload := value.Str(make([]byte, e16PayloadLen))
	for i := uint64(0); i < e16Keys; i++ {
		o, err := a.NewAtomic(payload)
		die(err)
		die(a.SetVar(e16Key(i), o))
	}
	die(a.Commit())
	g.Volume().SetWriteDelay(e16WriteDelay)
	return g
}

// e16ReadPath compares the read paths at a fixed client count: the
// action path (an invoked read-only "get" action — the baseline every
// read paid before the index), the index-served OpGet path, the same
// path with pipelined batches sharing one connection, and both paths
// again under a mixed load where a quarter of the clients write to the
// same zipfian-hot keys the readers read.
func e16ReadPath() {
	fmt.Println("E16 — memory-speed reads: live-version index vs the action path (zipfian keys)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mode\tclients\tbatch\tops/s\tp50 µs\tp99 µs\tidx hits\tidx misses\tforces\tspeedup")
	const clients = 16
	perClient := 400
	if *quick {
		perClient = 48
	}
	rows := []readRow{
		e16Run("get-invoke", clients, perClient, 1, 0),
		e16Run("get-idx", clients, perClient, 1, 0),
		e16Run("get-idx-batch", clients, perClient, 16, 0),
		e16Run("mixed-invoke", clients, perClient, 1, 4),
		e16Run("mixed-idx", clients, perClient, 1, 4),
	}
	// Speedups are against the like-for-like baseline: pure-read rows
	// against the action path, mixed rows against the mixed action
	// path.
	rows[0].Speedup = 1
	rows[1].Speedup = rows[1].OpsPerSec / rows[0].OpsPerSec
	rows[2].Speedup = rows[2].OpsPerSec / rows[0].OpsPerSec
	rows[3].Speedup = 1
	rows[4].Speedup = rows[4].OpsPerSec / rows[3].OpsPerSec
	for _, row := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.0f\t%.0f\t%d\t%d\t%d\t%.2fx\n",
			row.Mode, row.Clients, row.Batch, row.OpsPerSec, row.P50Us, row.P99Us,
			row.IdxHits, row.IdxMisses, row.Forces, row.Speedup)
	}
	w.Flush()
	fmt.Println()
	if *readJSON != "" {
		out, err := json.MarshalIndent(rows, "", "  ")
		die(err)
		die(os.WriteFile(*readJSON, append(out, '\n'), 0o644))
		fmt.Printf("wrote %s (%d rows)\n\n", *readJSON, len(rows))
	}
}

// e16Run measures one row: a fresh served guardian, `clients` total
// connections of which `writers` continuously put payloads to zipfian
// keys and the rest issue perClient reads each through the mode's
// path. Readers' client-observed latencies are what the percentiles
// summarize; batched rows amortize the batch round trip over its ops.
func e16Run(mode string, clients, perClient, batch, writers int) readRow {
	g := e16Guardian()
	st := new(obs.Stats)
	g.SetTracer(st)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	die(err)
	s := server.New(g, server.Config{Workers: 2 * clients, MaxConns: 2*clients + 4})
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	addr := ln.Addr().String()

	idx0, _ := g.IndexStats()
	forces0 := uint64(g.RS().Forces())
	hits0, misses0 := st.Count(obs.KindIdxHit), st.Count(obs.KindIdxMiss)

	// Writers run until the readers finish; their puts commit through
	// the delayed device holding hot keys' write locks across forces.
	// Busy refusals under skew are part of the load, not a failure.
	var stop atomic.Bool
	var wwg sync.WaitGroup
	werrs := make([]error, writers)
	for id := 0; id < writers; id++ {
		id := id
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			c := client.New(addr, client.Options{PoolSize: 1})
			//roslint:besteffort teardown of a load-generator client
			defer c.Close()
			zr := rand.New(rand.NewSource(int64(500 + id)))
			z := rand.NewZipf(zr, e16ZipfS, 1, e16Keys-1)
			payload := value.Str(make([]byte, e16PayloadLen))
			for !stop.Load() {
				key := e16Key(z.Uint64())
				if _, err := c.Invoke("put", value.NewList(value.Str(key), payload)); err != nil && !errors.Is(err, client.ErrBusy) {
					werrs[id] = err
					return
				}
			}
		}()
	}

	readers := clients - writers
	ops := readers * perClient
	lats := make([][]time.Duration, readers)
	errs := make([]error, readers)
	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < readers; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := client.New(addr, client.Options{PoolSize: 1})
			//roslint:besteffort teardown after the measured ops completed
			defer c.Close()
			zr := rand.New(rand.NewSource(int64(1 + id)))
			z := rand.NewZipf(zr, e16ZipfS, 1, e16Keys-1)
			lats[id] = make([]time.Duration, 0, perClient)
			for n := 0; n < perClient; n += batch {
				opStart := time.Now()
				switch {
				case batch > 1:
					keys := make([]string, batch)
					for j := range keys {
						keys[j] = e16Key(z.Uint64())
					}
					if _, err := c.GetBatch(keys); err != nil {
						errs[id] = err
						return
					}
				case strings.HasSuffix(mode, "invoke"):
					key := e16Key(z.Uint64())
					// A busy refusal under write contention is a real
					// client-observed read outcome; its latency counts.
					if _, err := c.Invoke("get", value.Str(key)); err != nil && !errors.Is(err, client.ErrBusy) {
						errs[id] = err
						return
					}
				default:
					key := e16Key(z.Uint64())
					if _, err := c.Get(key); err != nil {
						errs[id] = err
						return
					}
				}
				lat := time.Since(opStart)
				for j := 0; j < batch; j++ {
					lats[id] = append(lats[id], lat/time.Duration(batch))
				}
			}
		}()
	}
	wg.Wait()
	el := time.Since(start)
	stop.Store(true)
	wwg.Wait()
	for _, err := range append(errs, werrs...) {
		die(err)
	}
	die(s.Close())
	if err := <-serveDone; !errors.Is(err, server.ErrClosed) {
		die(err)
	}

	idx1, ok := g.IndexStats()
	if !ok {
		die(fmt.Errorf("e16 %s: index disabled on the served guardian", mode))
	}
	hits, misses := idx1.Hits-idx0.Hits, idx1.Misses-idx0.Misses
	forces := uint64(g.RS().Forces()) - forces0
	// The event stream must agree with the index counters (E11's rule
	// for the new subsystem), and an index-served row must have been
	// served entirely from memory: every op a hit, no fallback, and —
	// without writers — not a single log force anywhere in the phase.
	if th, tm := st.Count(obs.KindIdxHit)-hits0, st.Count(obs.KindIdxMiss)-misses0; th != hits || tm != misses {
		die(fmt.Errorf("e16 %s: trace disagrees with index counters: hits %d vs %d, misses %d vs %d",
			mode, th, hits, tm, misses))
	}
	if strings.Contains(mode, "idx") {
		if hits != uint64(ops) || misses != 0 {
			die(fmt.Errorf("e16 %s: %d ops but %d hits / %d misses — the hot path fell back", mode, ops, hits, misses))
		}
		if writers == 0 && forces != 0 {
			die(fmt.Errorf("e16 %s: %d log forces during a pure-read index phase", mode, forces))
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return readRow{
		Mode: mode, Clients: clients, Batch: batch, Ops: ops,
		Seconds:   el.Seconds(),
		OpsPerSec: float64(ops) / el.Seconds(),
		P50Us:     float64(all[len(all)/2].Microseconds()),
		P99Us:     float64(all[len(all)*99/100].Microseconds()),
		IdxHits:   hits,
		IdxMisses: misses,
		Forces:    forces,
	}
}

func e6RecoveryAfterHousekeeping() {
	fmt.Println("E6 — recovery before vs after housekeeping bounds recovery cost (ch. 5)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "state\trecovery µs\tentries read")
	history := 500
	if *quick {
		history = 100
	}
	for _, housekept := range []bool{false, true} {
		g := commitHistory(core.BackendHybrid, 32, history, 2)
		label := "before"
		if housekept {
			label = "after"
			_, err := g.Housekeep(core.HousekeepSnapshot)
			die(err)
		}
		g.Crash()
		start := time.Now()
		rec, err := guardian.RecoverStats(g)
		die(err)
		el := time.Since(start)
		fmt.Fprintf(w, "%s\t%.0f\t%d\n", label, float64(el.Microseconds()), rec.EntriesRead)
	}
	w.Flush()
	fmt.Println()
}
