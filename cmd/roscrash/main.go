// Command roscrash runs the crash-injection harnesses as a soak test:
// randomized action histories with device-level crashes at arbitrary
// write counts, recovery after each, checked against a serial oracle
// (the thesis's chapter 6 correctness property), plus a distributed
// mode where guardians exchange funds under two-phase commit while
// nodes crash (money conservation).
//
// With -sweep it instead runs the exhaustive crash-point sweep: for a
// scripted history it crashes at every device write, every write of the
// recovery that follows, and once more inside the second recovery
// (triple crash), with single-copy decay injected between crash and
// recovery, and verifies the chapter 6 invariant at every point. On
// failure it prints the exact (backend, seed, crash schedule) triple
// and exits non-zero.
//
// Usage:
//
//	roscrash [-mode single|distributed|both] [-backend simple|hybrid|shadow|all]
//	         [-steps 500] [-seeds 10] [-crash-every 5] [-housekeep-every 20]
//	roscrash -sweep [-backend ...] [-seeds 10] [-sweep-steps 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/crashtest"
)

var (
	mode       = flag.String("mode", "both", "single, distributed, or both")
	backend    = flag.String("backend", "all", "simple, hybrid, shadow, or all")
	steps      = flag.Int("steps", 500, "actions per run")
	seeds      = flag.Int("seeds", 10, "number of seeds per configuration")
	crashEvery = flag.Int("crash-every", 5, "~1/n actions interrupted by a crash")
	hkEvery    = flag.Int("housekeep-every", 20, "housekeeping interval (hybrid only; 0 disables)")
	guardians  = flag.Int("guardians", 4, "guardians in distributed mode")
	sweep      = flag.Bool("sweep", false, "run the exhaustive crash-point sweep instead of the randomized soak")
	sweepSteps = flag.Int("sweep-steps", 4, "scripted actions per sweep history")
)

func main() {
	flag.Parse()
	backends := map[string][]core.Backend{
		"simple": {core.BackendSimple},
		"hybrid": {core.BackendHybrid},
		"shadow": {core.BackendShadow},
		"all":    {core.BackendSimple, core.BackendHybrid, core.BackendShadow},
	}[*backend]
	if backends == nil {
		fmt.Fprintf(os.Stderr, "roscrash: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	failed := false
	for _, b := range backends {
		if *sweep {
			failed = runSweep(b) || failed
			continue
		}
		if *mode == "single" || *mode == "both" {
			failed = runSingle(b) || failed
		}
		if *mode == "distributed" || *mode == "both" {
			failed = runDistributed(b) || failed
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("all runs passed")
}

func runSingle(b core.Backend) (failed bool) {
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		cfg := crashtest.Config{
			Backend:    b,
			Counters:   6,
			Steps:      *steps,
			Seed:       seed,
			CrashEvery: *crashEvery,
			Mutex:      true,
		}
		if b == core.BackendHybrid {
			cfg.HousekeepEvery = *hkEvery
		}
		start := time.Now()
		res, err := crashtest.Run(cfg)
		if err != nil {
			fmt.Printf("FAIL single %-7v seed=%-3d %v\n", b, seed, err)
			failed = true
			continue
		}
		fmt.Printf("ok   single %-7v seed=%-3d committed=%d aborted=%d crashes=%d recoveries=%d (%.2fs)\n",
			b, seed, res.Committed, res.Aborted, res.Crashes, res.Recoveries,
			time.Since(start).Seconds())
	}
	return failed
}

// runSweep exhausts every crash point of a scripted history per seed
// and decay mode. A failure prints the exact replay coordinates —
// backend, seed, decay mode, and the crash schedule (history write,
// then nested recovery writes) — so the scenario can be rerun alone.
func runSweep(b core.Backend) (failed bool) {
	decays := []crashtest.DecayMode{
		crashtest.DecayNone, crashtest.DecayDeviceA,
		crashtest.DecayDeviceB, crashtest.DecayAlternate,
	}
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		for _, d := range decays {
			cfg := crashtest.SweepConfig{
				Backend:   b,
				Seed:      seed,
				Steps:     *sweepSteps,
				Mutex:     true,
				Decay:     d,
				Housekeep: b == core.BackendHybrid,
			}
			start := time.Now()
			res, err := crashtest.Sweep(cfg)
			if err != nil {
				fmt.Printf("FAIL sweep  %-7v seed=%-3d decay=%-9v %v\n", b, seed, d, err)
				failed = true
				continue
			}
			fmt.Printf("ok   sweep  %-7v seed=%-3d decay=%-9v writes=%d points=%d recoveries=%d deepest=%d (%.2fs)\n",
				b, seed, d, res.Writes, res.Points, res.Recoveries, res.Deepest,
				time.Since(start).Seconds())
		}
	}
	return failed
}

func runDistributed(b core.Backend) (failed bool) {
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		cfg := crashtest.DistributedConfig{
			Backend:        b,
			Guardians:      *guardians,
			Steps:          *steps,
			Seed:           seed,
			CrashEvery:     *crashEvery,
			InitialBalance: 10_000,
		}
		if b == core.BackendHybrid {
			cfg.HousekeepEvery = *hkEvery
		}
		start := time.Now()
		res, err := crashtest.RunDistributed(cfg)
		if err != nil {
			fmt.Printf("FAIL dist   %-7v seed=%-3d %v\n", b, seed, err)
			failed = true
			continue
		}
		fmt.Printf("ok   dist   %-7v seed=%-3d committed=%d aborted=%d crashes=%d queries=%d (%.2fs)\n",
			b, seed, res.Committed, res.Aborted, res.Crashes, res.Queries,
			time.Since(start).Seconds())
	}
	return failed
}
