package ros

import (
	"testing"
)

// TestFileBackedGuardian exercises the on-disk path end to end: create
// on a FileVolume, commit, close (process exit), reopen, verify, keep
// working, reopen again.
func TestFileBackedGuardian(t *testing.T) {
	dir := t.TempDir()
	vol, err := NewFileVolume(dir, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGuardian(1, WithVolume(vol))
	if err != nil {
		t.Fatal(err)
	}
	a := g.Begin()
	c, err := a.NewAtomic(Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetVar("c", c); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := vol.Close(); err != nil {
		t.Fatal(err)
	}

	// "Next process": reopen the directory and recover.
	vol2, err := NewFileVolume(dir, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := OpenGuardian(1, vol2, HybridLog)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := g2.VarAtomic("c")
	if !ok || !ValueEqual(got.Base(), Int(10)) {
		t.Fatalf("recovered %v", got)
	}
	// Keep working, including housekeeping on disk.
	for i := 0; i < 10; i++ {
		act := g2.Begin()
		if err := act.Update(got, func(v Value) Value {
			return Int(int64(v.(Int)) + 1)
		}); err != nil {
			t.Fatal(err)
		}
		if err := act.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g2.Housekeep(Snapshot); err != nil {
		t.Fatal(err)
	}
	if err := vol2.Close(); err != nil {
		t.Fatal(err)
	}

	vol3, err := NewFileVolume(dir, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	defer vol3.Close()
	g3, err := OpenGuardian(1, vol3, HybridLog)
	if err != nil {
		t.Fatal(err)
	}
	final, ok := g3.VarAtomic("c")
	if !ok || !ValueEqual(final.Base(), Int(20)) {
		t.Fatalf("final = %v", final)
	}
}

// TestFileBackedGuardianAllBackends runs the persistence round trip on
// every organization.
func TestFileBackedGuardianAllBackends(t *testing.T) {
	for _, b := range []Backend{SimpleLog, HybridLog, Shadowing} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			dir := t.TempDir()
			vol, err := NewFileVolume(dir, 512, false)
			if err != nil {
				t.Fatal(err)
			}
			g, err := NewGuardian(1, WithVolume(vol), WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			a := g.Begin()
			c, err := a.NewAtomic(Str("disk"))
			if err != nil {
				t.Fatal(err)
			}
			if err := a.SetVar("v", c); err != nil {
				t.Fatal(err)
			}
			if err := a.Commit(); err != nil {
				t.Fatal(err)
			}
			vol.Close()
			vol2, err := NewFileVolume(dir, 512, false)
			if err != nil {
				t.Fatal(err)
			}
			defer vol2.Close()
			g2, err := OpenGuardian(1, vol2, b)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := g2.VarAtomic("v")
			if !ok || !ValueEqual(got.Base(), Str("disk")) {
				t.Fatalf("recovered %v", got)
			}
		})
	}
}
