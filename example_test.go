package ros_test

import (
	"fmt"
	"log"

	ros "repro"
)

// The basic life cycle: bind a stable variable inside an action, crash,
// recover.
func Example() {
	g, err := ros.NewGuardian(1)
	if err != nil {
		log.Fatal(err)
	}
	a := g.Begin()
	acct, _ := a.NewAtomic(ros.Int(100))
	if err := a.SetVar("account", acct); err != nil {
		log.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		log.Fatal(err)
	}

	g.Crash()
	g, err = ros.Recover(g)
	if err != nil {
		log.Fatal(err)
	}
	recovered, _ := g.VarAtomic("account")
	fmt.Println(ros.ValueString(recovered.Base()))
	// Output: 100
}

// RunAtomic wraps the begin/commit/abort-and-retry loop.
func ExampleRunAtomic() {
	g, _ := ros.NewGuardian(1)
	err := ros.RunAtomic(g, 3, func(a *ros.Action) error {
		c, err := a.NewAtomic(ros.Int(41))
		if err != nil {
			return err
		}
		return a.SetVar("answer", c)
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = ros.RunAtomic(g, 3, func(a *ros.Action) error {
		c, _ := g.VarAtomic("answer")
		return a.Update(c, func(v ros.Value) ros.Value {
			return ros.Int(int64(v.(ros.Int)) + 1)
		})
	})
	c, _ := g.VarAtomic("answer")
	fmt.Println(ros.ValueString(c.Base()))
	// Output: 42
}

// Handlers spread an action to other guardians; CommitSpread commits it
// with two-phase commit over the participants the calls reached.
func ExampleCall() {
	net := ros.NewNetwork()
	alpha, _ := ros.NewGuardian(1)
	beta, _ := ros.NewGuardian(2)
	_ = ros.RunAtomic(beta, 1, func(a *ros.Action) error {
		c, _ := a.NewAtomic(ros.Int(0))
		return a.SetVar("inbox", c)
	})
	beta.RegisterHandler("send", func(sub *ros.Sub, arg ros.Value) (ros.Value, error) {
		inbox, _ := beta.VarAtomic("inbox")
		if err := sub.Update(inbox, func(v ros.Value) ros.Value {
			return ros.Int(int64(v.(ros.Int)) + int64(arg.(ros.Int)))
		}); err != nil {
			return nil, err
		}
		return sub.Read(inbox)
	})

	a := alpha.Begin()
	got, err := ros.Call(net, a, beta, "send", ros.Int(7))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ros.CommitSpread(net, a); err != nil {
		log.Fatal(err)
	}
	fmt.Println(ros.ValueString(got))
	// Output: 7
}

// Housekeeping keeps recovery fast no matter how long the history is.
func ExampleGuardian_Housekeep() {
	g, _ := ros.NewGuardian(1)
	_ = ros.RunAtomic(g, 1, func(a *ros.Action) error {
		c, _ := a.NewAtomic(ros.Int(0))
		return a.SetVar("n", c)
	})
	for i := 0; i < 100; i++ {
		_ = ros.RunAtomic(g, 1, func(a *ros.Action) error {
			c, _ := g.VarAtomic("n")
			return a.Set(c, ros.Int(int64(i)))
		})
	}
	stats, err := g.Housekeep(ros.Snapshot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("live objects copied:", stats.ObjectsCopied)
	// Output: live objects copied: 2
}
