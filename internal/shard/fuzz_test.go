package shard

import (
	"bytes"
	"testing"
)

// FuzzDecodeTable feeds arbitrary bytes to the routing-table decoder:
// no input may panic or over-allocate, and every accepted input must
// re-encode byte-for-byte (one canonical form) to a table that passes
// Validate — a decoded table is installed directly into registries and
// clients, so acceptance is the safety boundary.
func FuzzDecodeTable(f *testing.F) {
	f.Add(hashTable(1, 1).Encode())
	f.Add(hashTable(42, 5).Encode())
	f.Add(rangeTable(7, []string{"", "g", "p"}).Encode())
	valid := hashTable(3, 2).Encode()
	f.Add(valid[:len(valid)-2])                  // truncated entry
	f.Add(append(append([]byte{}, valid...), 7)) // trailing byte
	corrupt := append([]byte{}, valid...)
	corrupt[8] = 0xEE // unknown kind
	f.Add(corrupt)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tb, err := Decode(data)
		if err != nil {
			return
		}
		if err := tb.Validate(); err != nil {
			t.Fatalf("decoded table fails validation: %v", err)
		}
		if !bytes.Equal(tb.Encode(), data) {
			t.Fatal("table decode/encode not canonical")
		}
		// Ownership must be total on whatever decoded.
		for _, key := range []string{"", "a", "zz", "\x00\xff"} {
			if _, ok := tb.Lookup(tb.Owner(key).ID); !ok {
				t.Fatalf("Owner(%q) not in table", key)
			}
		}
	})
}
