// Package shard defines the cluster's routing table: the versioned,
// wire-codable map from keys to shard ids and from shard ids to the
// node addresses hosting them.
//
// The thesis's guardians were always meant to be many cooperating
// nodes (§2.1); this package is the piece that decides *which* one a
// key belongs to. A shard is one guardian — the shard id doubles as
// the guardian id of the guardian holding that slice of the keyspace —
// and a node (one rosd process) hosts a registry of several such
// guardians. Two map kinds cover the two classic partitioning schemes:
//
//   - KindHash: a key hashes (FNV-1a) onto the shard list; good
//     spread, no locality.
//   - KindRange: contiguous key ranges, each shard owning [Start,
//     nextStart); lexicographic locality, explicit splits.
//
// Tables are versioned. Every change — today only an explicit handoff
// moving one shard to another address — installs a strictly newer
// version, and every holder (server registries, routed clients)
// rejects older tables with transport.ErrStaleRoute semantics. A
// server answering a misrouted request returns its own table in-band,
// so one wrong-shard round trip both corrects the client and carries
// the refresh.
//
// Determinism: ownership is a pure function of (table, key). The
// package is in the determinism analyzer's scope — no clocks, no
// randomness, no map iteration — so the crash sweeps and partition
// matrices can replay routed histories byte for byte.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// ID names one shard. It doubles as the ids.GuardianID of the guardian
// holding the shard (the guardian moves between nodes; its id does
// not). Shard ids are nonzero: a wire request carrying shard 0
// addresses the server's default (unsharded) guardian.
type ID uint32

// Kind selects the keyspace partitioning scheme.
type Kind uint8

const (
	// KindHash spreads keys over the shard list by FNV-1a hash.
	KindHash Kind = iota + 1
	// KindRange assigns each shard the keys in [Start, next Start).
	KindRange
)

var kindNames = [...]string{
	KindHash:  "hash",
	KindRange: "range",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind reads a Kind from its flag spelling.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "hash":
		return KindHash, nil
	case "range":
		return KindRange, nil
	}
	return 0, fmt.Errorf("unknown route kind %q (want hash or range)", s)
}

// Shard is one entry of the table: a shard id, the address of the node
// currently hosting its guardian, and — for range tables — the first
// key it owns.
type Shard struct {
	// ID is the shard (and guardian) id; nonzero.
	ID ID
	// Addr is the host:port of the rosd process hosting the shard.
	Addr string
	// Start is the inclusive lower bound of the shard's key range
	// (KindRange only; the table's lowest Start must be "" so every key
	// has an owner). Empty and unused under KindHash.
	Start string
}

// Table is one version of the cluster's routing map. The zero Table is
// invalid (no shards); tables are built whole and replaced whole.
type Table struct {
	// Version orders tables: holders install strictly newer versions
	// and refuse older ones (ErrStaleTable).
	Version uint64
	// Kind is the partitioning scheme.
	Kind Kind
	// Shards lists the shard entries in canonical order: ascending ID
	// for KindHash, ascending Start for KindRange. Validate enforces
	// the order, so equal tables have equal encodings.
	Shards []Shard
}

// Codec and validation errors.
var (
	// ErrBadTable: a routing-table encoding does not decode, or a table
	// fails validation.
	ErrBadTable = errors.New("shard: bad table")
	// ErrStaleTable: an installed table's version is not newer than the
	// holder's current one. Callers surface it wrapping
	// transport.ErrStaleRoute.
	ErrStaleTable = errors.New("shard: stale table version")
)

// Validate checks the structural invariants: at least one shard,
// nonzero unique ids, nonempty addresses, canonical order, and — for
// range tables — unique ascending starts beginning with the empty
// string, so ownership is total (every key has exactly one owner).
func (t Table) Validate() error {
	if t.Version == 0 {
		return fmt.Errorf("%w: version 0", ErrBadTable)
	}
	if t.Kind != KindHash && t.Kind != KindRange {
		return fmt.Errorf("%w: unknown kind %d", ErrBadTable, uint8(t.Kind))
	}
	if len(t.Shards) == 0 {
		return fmt.Errorf("%w: no shards", ErrBadTable)
	}
	seen := make(map[ID]bool, len(t.Shards))
	for i, s := range t.Shards {
		if s.ID == 0 {
			return fmt.Errorf("%w: shard %d has id 0", ErrBadTable, i)
		}
		if seen[s.ID] {
			return fmt.Errorf("%w: duplicate shard id %d", ErrBadTable, s.ID)
		}
		seen[s.ID] = true
		if s.Addr == "" {
			return fmt.Errorf("%w: shard %d has no address", ErrBadTable, s.ID)
		}
		switch t.Kind {
		case KindHash:
			if s.Start != "" {
				return fmt.Errorf("%w: hash shard %d carries a range start", ErrBadTable, s.ID)
			}
			if i > 0 && t.Shards[i-1].ID >= s.ID {
				return fmt.Errorf("%w: hash shards not in ascending id order at %d", ErrBadTable, s.ID)
			}
		case KindRange:
			if i == 0 && s.Start != "" {
				return fmt.Errorf("%w: first range start %q is not empty; keys below it would be unowned", ErrBadTable, s.Start)
			}
			if i > 0 && t.Shards[i-1].Start >= s.Start {
				return fmt.Errorf("%w: range starts not strictly ascending at shard %d", ErrBadTable, s.ID)
			}
		}
	}
	return nil
}

// fnv1a is the 64-bit FNV-1a hash of key — inlined rather than
// hash/fnv so the routing function is one allocation-free loop whose
// bytes are pinned here (a silent hash change would re-home every key).
func fnv1a(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// Owner returns the shard owning key. The table must be valid;
// ownership is total — every key has exactly one owner.
func (t Table) Owner(key string) Shard {
	switch t.Kind {
	case KindRange:
		// The first shard's Start is "", so the search never misses:
		// find the last shard whose Start <= key.
		i := sort.Search(len(t.Shards), func(i int) bool { return t.Shards[i].Start > key }) - 1
		if i < 0 {
			i = 0
		}
		return t.Shards[i]
	default:
		return t.Shards[fnv1a(key)%uint64(len(t.Shards))]
	}
}

// Lookup returns the entry for shard id.
func (t Table) Lookup(id ID) (Shard, bool) {
	for _, s := range t.Shards {
		if s.ID == id {
			return s, true
		}
	}
	return Shard{}, false
}

// Addrs returns the distinct node addresses of the table, in first-seen
// (canonical shard) order.
func (t Table) Addrs() []string {
	var out []string
	seen := make(map[string]bool, len(t.Shards))
	for _, s := range t.Shards {
		if !seen[s.Addr] {
			seen[s.Addr] = true
			out = append(out, s.Addr)
		}
	}
	return out
}

// WithAddr returns a copy of the table, one version newer, with shard
// id rehomed to addr — the table a completed handoff publishes.
func (t Table) WithAddr(id ID, addr string) (Table, error) {
	nt := Table{Version: t.Version + 1, Kind: t.Kind, Shards: make([]Shard, len(t.Shards))}
	copy(nt.Shards, t.Shards)
	for i := range nt.Shards {
		if nt.Shards[i].ID == id {
			nt.Shards[i].Addr = addr
			return nt, nil
		}
	}
	return Table{}, fmt.Errorf("%w: no shard %d to rehome", ErrBadTable, id)
}

// Encode renders the table in its single canonical wire form: explicit
// little-endian fields and uvarint length-prefixed strings, the same
// primitives as internal/wire. Layout:
//
//	[Version u64][Kind u8][uvarint count] then per shard
//	[ID u32][uvarint len Addr][uvarint len Start]
func (t Table) Encode() []byte {
	out := make([]byte, 0, 10+len(t.Shards)*16)
	out = binary.LittleEndian.AppendUint64(out, t.Version)
	out = append(out, byte(t.Kind))
	out = binary.AppendUvarint(out, uint64(len(t.Shards)))
	for _, s := range t.Shards {
		out = binary.LittleEndian.AppendUint32(out, uint32(s.ID))
		out = appendString(out, s.Addr)
		out = appendString(out, s.Start)
	}
	return out
}

// Decode parses an encoded table and validates it. Trailing bytes are
// an error, non-minimal varints are an error, and the result always
// passes Validate — a decoded table is usable as-is.
func Decode(b []byte) (Table, error) {
	if len(b) < 10 {
		return Table{}, fmt.Errorf("%w: table of %d bytes", ErrBadTable, len(b))
	}
	var t Table
	t.Version = binary.LittleEndian.Uint64(b[0:8])
	t.Kind = Kind(b[8])
	rest := b[9:]
	n, used, err := takeUvarint(rest)
	if err != nil {
		return Table{}, err
	}
	rest = rest[used:]
	// Each shard entry costs at least 6 bytes (id + two length
	// prefixes); bound the allocation before trusting the count.
	if n > uint64(len(rest)/6) {
		return Table{}, fmt.Errorf("%w: %d shards claimed in %d bytes", ErrBadTable, n, len(rest))
	}
	t.Shards = make([]Shard, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(rest) < 4 {
			return Table{}, fmt.Errorf("%w: truncated shard entry", ErrBadTable)
		}
		var s Shard
		s.ID = ID(binary.LittleEndian.Uint32(rest[0:4]))
		rest = rest[4:]
		addr, r2, err := takeString(rest)
		if err != nil {
			return Table{}, err
		}
		start, r3, err := takeString(r2)
		if err != nil {
			return Table{}, err
		}
		s.Addr, s.Start = addr, start
		rest = r3
		t.Shards = append(t.Shards, s)
	}
	if len(rest) != 0 {
		return Table{}, fmt.Errorf("%w: %d trailing bytes", ErrBadTable, len(rest))
	}
	if err := t.Validate(); err != nil {
		return Table{}, err
	}
	return t, nil
}

// appendString appends a uvarint length prefix and the string bytes.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// takeUvarint consumes one minimally-encoded uvarint.
func takeUvarint(b []byte) (uint64, int, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return 0, 0, fmt.Errorf("%w: bad length prefix", ErrBadTable)
	}
	if used > 1 && b[used-1] == 0 {
		return 0, 0, fmt.Errorf("%w: non-minimal length prefix", ErrBadTable)
	}
	return n, used, nil
}

// takeString consumes a uvarint-prefixed string, validating the length
// before slicing.
func takeString(b []byte) (string, []byte, error) {
	n, used, err := takeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	rest := b[used:]
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("%w: string length %d beyond %d remaining", ErrBadTable, n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}
