package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func hashTable(version uint64, n int) Table {
	t := Table{Version: version, Kind: KindHash}
	for i := 1; i <= n; i++ {
		t.Shards = append(t.Shards, Shard{ID: ID(i), Addr: fmt.Sprintf("node%d:4146", (i-1)%3+1)})
	}
	return t
}

func rangeTable(version uint64, starts []string) Table {
	t := Table{Version: version, Kind: KindRange}
	for i, s := range starts {
		t.Shards = append(t.Shards, Shard{ID: ID(i + 1), Addr: fmt.Sprintf("node%d:4146", i%3+1), Start: s})
	}
	return t
}

func TestValidate(t *testing.T) {
	good := []Table{
		hashTable(1, 1),
		hashTable(7, 8),
		rangeTable(1, []string{""}),
		rangeTable(3, []string{"", "g", "p"}),
	}
	for i, tb := range good {
		if err := tb.Validate(); err != nil {
			t.Errorf("good table %d: %v", i, err)
		}
	}
	bad := []Table{
		{},                           // zero version, no kind, no shards
		{Version: 1, Kind: KindHash}, // no shards
		{Version: 1, Kind: 9, Shards: []Shard{{ID: 1, Addr: "a"}}},                             // unknown kind
		{Version: 1, Kind: KindHash, Shards: []Shard{{ID: 0, Addr: "a"}}},                      // id 0
		{Version: 1, Kind: KindHash, Shards: []Shard{{ID: 1}}},                                 // no addr
		{Version: 1, Kind: KindHash, Shards: []Shard{{ID: 1, Addr: "a"}, {ID: 1, Addr: "b"}}},  // dup id
		{Version: 1, Kind: KindHash, Shards: []Shard{{ID: 2, Addr: "a"}, {ID: 1, Addr: "b"}}},  // order
		{Version: 1, Kind: KindHash, Shards: []Shard{{ID: 1, Addr: "a", Start: "x"}}},          // start on hash
		{Version: 1, Kind: KindRange, Shards: []Shard{{ID: 1, Addr: "a", Start: "k"}}},         // first start not ""
		{Version: 1, Kind: KindRange, Shards: []Shard{{ID: 1, Addr: "a"}, {ID: 2, Addr: "b"}}}, // equal starts
	}
	for i, tb := range bad {
		if err := tb.Validate(); !errors.Is(err, ErrBadTable) {
			t.Errorf("bad table %d: want ErrBadTable, got %v", i, err)
		}
	}
}

func TestRangeOwnership(t *testing.T) {
	tb := rangeTable(1, []string{"", "g", "p"})
	cases := map[string]ID{
		"":       1,
		"a":      1,
		"fzzz":   1,
		"g":      2,
		"k":      2,
		"ozzz":   2,
		"p":      3,
		"zebra":  3,
		"\xffff": 3,
	}
	for key, want := range cases {
		if got := tb.Owner(key).ID; got != want {
			t.Errorf("Owner(%q) = %d, want %d", key, got, want)
		}
	}
}

// TestOwnershipTotality is the property test of the satellite: for
// random tables of both kinds and random keys, every key is owned by
// exactly one shard — the owner is deterministic, present in the
// table, and (for ranges) the unique shard whose interval holds the
// key.
func TestOwnershipTotality(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	randKey := func() string {
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return string(b)
	}
	for trial := 0; trial < 200; trial++ {
		nShards := 1 + rng.Intn(7)
		version := uint64(1 + rng.Intn(1000))
		var tb Table
		if trial%2 == 0 {
			tb = hashTable(version, nShards)
		} else {
			starts := map[string]bool{"": true}
			for len(starts) < nShards {
				starts[randKey()] = true
			}
			ordered := make([]string, 0, nShards)
			for s := range starts { //roslint:nondet draining for membership; sorted below
				ordered = append(ordered, s)
			}
			sortStrings(ordered)
			tb = rangeTable(version, ordered)
		}
		if err := tb.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k := 0; k < 50; k++ {
			key := randKey()
			owner := tb.Owner(key)
			if _, ok := tb.Lookup(owner.ID); !ok {
				t.Fatalf("trial %d: Owner(%q) = %d not in table", trial, key, owner.ID)
			}
			if again := tb.Owner(key); again.ID != owner.ID {
				t.Fatalf("trial %d: Owner(%q) not deterministic: %d then %d", trial, key, owner.ID, again.ID)
			}
			// Exactly-one: count the shards that could claim the key.
			owners := 0
			for i, s := range tb.Shards {
				switch tb.Kind {
				case KindHash:
					if s.ID == owner.ID {
						owners++
					}
				case KindRange:
					inRange := key >= s.Start && (i == len(tb.Shards)-1 || key < tb.Shards[i+1].Start)
					if inRange {
						owners++
						if s.ID != owner.ID {
							t.Fatalf("trial %d: key %q in shard %d's interval but Owner says %d", trial, key, s.ID, owner.ID)
						}
					}
				}
			}
			if owners != 1 {
				t.Fatalf("trial %d: key %q owned by %d shards", trial, key, owners)
			}
		}
	}
}

// sortStrings is a tiny insertion sort, avoiding an import for the
// test helper.
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tables := []Table{
		hashTable(1, 1),
		hashTable(42, 5),
		rangeTable(7, []string{"", "m"}),
		rangeTable(9, []string{"", "g", "p", "x"}),
	}
	for i, tb := range tables {
		enc := tb.Encode()
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("table %d: %v", i, err)
		}
		if !bytes.Equal(dec.Encode(), enc) {
			t.Fatalf("table %d: decode/encode not canonical", i)
		}
		if dec.Version != tb.Version || dec.Kind != tb.Kind || len(dec.Shards) != len(tb.Shards) {
			t.Fatalf("table %d: round trip changed the table: %+v -> %+v", i, tb, dec)
		}
		for j := range tb.Shards {
			if dec.Shards[j] != tb.Shards[j] {
				t.Fatalf("table %d shard %d: %+v -> %+v", i, j, tb.Shards[j], dec.Shards[j])
			}
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	valid := hashTable(3, 2).Encode()
	cases := [][]byte{
		nil,
		valid[:len(valid)-1],                  // truncated
		append(append([]byte{}, valid...), 0), // trailing byte
	}
	// An encoding of a structurally invalid table must not decode.
	dup := Table{Version: 1, Kind: KindHash, Shards: []Shard{{ID: 1, Addr: "a"}, {ID: 1, Addr: "b"}}}
	cases = append(cases, dup.Encode())
	for i, b := range cases {
		if _, err := Decode(b); !errors.Is(err, ErrBadTable) {
			t.Errorf("case %d: want ErrBadTable, got %v", i, err)
		}
	}
}

func TestWithAddr(t *testing.T) {
	tb := hashTable(5, 3)
	nt, err := tb.WithAddr(2, "elsewhere:4147")
	if err != nil {
		t.Fatal(err)
	}
	if nt.Version != 6 {
		t.Fatalf("version %d, want 6", nt.Version)
	}
	s, ok := nt.Lookup(2)
	if !ok || s.Addr != "elsewhere:4147" {
		t.Fatalf("shard 2 not rehomed: %+v", s)
	}
	if old, _ := tb.Lookup(2); old.Addr == "elsewhere:4147" {
		t.Fatal("WithAddr mutated the original table")
	}
	if _, err := tb.WithAddr(9, "x"); !errors.Is(err, ErrBadTable) {
		t.Fatalf("rehoming an unknown shard: want ErrBadTable, got %v", err)
	}
}

func TestAddrs(t *testing.T) {
	tb := hashTable(1, 6) // addresses cycle node1..node3
	addrs := tb.Addrs()
	if len(addrs) != 3 {
		t.Fatalf("addrs %v, want 3 distinct", addrs)
	}
	if addrs[0] != "node1:4146" || addrs[1] != "node2:4146" || addrs[2] != "node3:4146" {
		t.Fatalf("addrs %v not in canonical order", addrs)
	}
}
