// Shard registry: one rosd process hosting several guardians, each
// owning a slice of the keyspace. Requests carry a shard id in the
// header; the server dispatches them to the owning guardian, refuses
// the ones it does not host (StatusWrongShard, with its routing table
// in-band so the caller learns the owner for free), and serves the
// table itself over OpRoute/OpRouteInstall.
//
// A shard moves between nodes by an explicit operator handoff
// (OpHandoff): drain the guardian, compact its log to live state via
// housekeeping (§5.2 — the snapshot is what makes the shipped log
// small), ship it to the receiver through the replication receiver's
// append path (same validation, same refusal semantics), then publish
// a rehomed routing table whose bumped version retires the old route
// everywhere it propagates. Rebalancing policy — when to move what —
// stays outside the server.
package server

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/replog"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/wire"
)

// handoffChunk bounds one shipped frame run; a shard's compacted log
// crosses the wire in runs well under wire.MaxPayload.
const handoffChunk = 256 << 10

// AddShard registers g as the guardian owning shard id. Requests whose
// header names id dispatch to g from the next request on.
func (s *Server) AddShard(id uint32, g *guardian.Guardian) {
	s.smu.Lock()
	s.shards[id] = g
	s.smu.Unlock()
}

// removeShard unregisters a shard (the outbound handoff's first step);
// requests for it answer StatusWrongShard until a new table points at
// the receiver.
func (s *Server) removeShard(id uint32) *guardian.Guardian {
	s.smu.Lock()
	g := s.shards[id]
	delete(s.shards, id)
	s.smu.Unlock()
	return g
}

// Shard returns the guardian hosting shard id, if any.
func (s *Server) Shard(id uint32) (*guardian.Guardian, bool) {
	s.smu.Lock()
	g, ok := s.shards[id]
	s.smu.Unlock()
	return g, ok
}

// InstallTable installs t as the server's routing table when strictly
// newer than the current one. An equal version is a no-op; an older
// one is refused wrapping transport.ErrStaleRoute, so a delayed table
// from before a handoff can never resurrect a superseded route.
func (s *Server) InstallTable(t shard.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	s.smu.Lock()
	if cur := s.table; cur != nil {
		if t.Version < cur.Version {
			have := cur.Version
			s.smu.Unlock()
			return fmt.Errorf("server: table v%d offered, v%d installed: %w", t.Version, have, transport.ErrStaleRoute)
		}
		if t.Version == cur.Version {
			s.smu.Unlock()
			return nil
		}
	}
	s.table = &t
	s.smu.Unlock()
	s.emit(obs.Event{Kind: obs.KindShardInstall, Durable: t.Version, Bytes: len(t.Shards)})
	return nil
}

// Table returns the server's current routing table.
func (s *Server) Table() (shard.Table, bool) {
	s.smu.Lock()
	defer s.smu.Unlock()
	if s.table == nil {
		return shard.Table{}, false
	}
	return *s.table, true
}

// resolve maps a request's shard id to its guardian. Shard zero is the
// default guardian (the pre-sharding contract); an unhosted nonzero
// shard yields the StatusWrongShard refusal, carrying the current
// table so the caller can re-route without a second round trip.
func (s *Server) resolve(id uint32) (*guardian.Guardian, *wire.Response) {
	if id == 0 {
		return s.guardian(), nil
	}
	s.smu.Lock()
	g, ok := s.shards[id]
	tbl := s.table
	s.smu.Unlock()
	if ok {
		return g, nil
	}
	resp := wire.Response{Status: wire.StatusWrongShard, Err: fmt.Sprintf("shard %d not hosted here", id)}
	var version uint64
	if tbl != nil {
		resp.Result = tbl.Encode()
		version = tbl.Version
	}
	s.emit(obs.Event{Kind: obs.KindShardWrong, From: uint64(id), Durable: version})
	return nil, &resp
}

// route answers OpRoute with the current table.
func (s *Server) route() wire.Response {
	tbl, ok := s.Table()
	if !ok {
		return wire.Response{Status: wire.StatusBadRequest, Err: "not sharded"}
	}
	s.emit(obs.Event{Kind: obs.KindShardRoute, Durable: tbl.Version})
	return wire.Response{Status: wire.StatusOK, Result: tbl.Encode()}
}

// routeInstall answers OpRouteInstall: install the offered table when
// newer, and answer the current table either way — a stale offer is
// not an error to the caller, it just teaches them the newer table.
func (s *Server) routeInstall(req wire.Request) wire.Response {
	offered, err := shard.Decode(req.Arg)
	if err != nil {
		return wire.Response{Status: wire.StatusBadRequest, Err: err.Error()}
	}
	if _, sharded := s.Table(); !sharded {
		return wire.Response{Status: wire.StatusBadRequest, Err: "not sharded"}
	}
	//roslint:besteffort a stale offer is answered with the newer installed table, not an error
	_ = s.InstallTable(offered)
	tbl, _ := s.Table()
	return wire.Response{Status: wire.StatusOK, Result: tbl.Encode()}
}

// statusReport builds the OpStatus answer: the node-level replication
// report plus one row per hosted shard, in ascending id order. The
// node-level idx.* counters aggregate every hosted guardian (default
// plus shards); each shard row carries its own guardian's.
func (s *Server) statusReport() wire.StatusReport {
	rep := wire.StatusReport{Rep: s.status()}
	s.smu.Lock()
	ids := make([]uint32, 0, len(s.shards))
	for id := range s.shards { // draining for membership; sorted below
		ids = append(ids, id)
	}
	guardians := make([]*guardian.Guardian, 0, len(ids))
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		guardians = append(guardians, s.shards[id])
	}
	s.smu.Unlock()
	// Durable boundaries and index counters are read outside smu:
	// TailInfo takes log locks, and smu stays a leaf.
	if g := s.guardian(); g != nil {
		if st, ok := g.IndexStats(); ok {
			rep.Rep.IdxHits += st.Hits
			rep.Rep.IdxMisses += st.Misses
			rep.Rep.IdxEntries += uint64(st.Entries)
			rep.Rep.IdxBytes += uint64(st.Bytes)
		}
	}
	for i, id := range ids {
		row := wire.ShardStatus{ID: id, Role: wire.RoleStandalone}
		if site := guardians[i].Site(); site != nil {
			row.Durable, _ = site.Log().TailInfo()
		}
		if st, ok := guardians[i].IndexStats(); ok {
			row.IdxHits = st.Hits
			row.IdxMisses = st.Misses
			rep.Rep.IdxHits += st.Hits
			rep.Rep.IdxMisses += st.Misses
			rep.Rep.IdxEntries += uint64(st.Entries)
			rep.Rep.IdxBytes += uint64(st.Bytes)
		}
		rep.Shards = append(rep.Shards, row)
	}
	return rep
}

// handoff answers OpHandoff: move one hosted shard to the target node.
// The shard is unregistered first — its requests answer
// StatusWrongShard for the duration, and routed clients ride that out
// with their retry budget — then drained, compacted, shipped, and
// finally published out of this node by a version-bumped table. Any
// failure before the publish re-registers the guardian: the handoff
// never leaves the shard unhosted.
func (s *Server) handoff(req wire.Request) wire.Response {
	h, err := wire.DecodeHandoffReq(req.Arg)
	if err != nil {
		return wire.Response{Status: wire.StatusBadRequest, Err: err.Error()}
	}
	if s.cfg.HandoffShip == nil {
		return wire.Response{Status: wire.StatusBadRequest, Err: "handoff not configured"}
	}
	tbl, sharded := s.Table()
	if !sharded {
		return wire.Response{Status: wire.StatusBadRequest, Err: "not sharded"}
	}
	if h.Target == "" {
		return wire.Response{Status: wire.StatusBadRequest, Err: "handoff without a target"}
	}
	newTable, err := tbl.WithAddr(shard.ID(h.Shard), h.Target)
	if err != nil {
		return wire.Response{Status: wire.StatusBadRequest, Err: err.Error()}
	}
	g := s.removeShard(h.Shard)
	if g == nil {
		if _, e := s.resolve(h.Shard); e != nil {
			return *e
		}
		return wire.Response{Status: wire.StatusBadRequest, Err: fmt.Sprintf("shard %d not hosted here", h.Shard)}
	}
	// Drain: in-flight actions finish or the handoff yields. Bounded —
	// a wedged action must not hold the operator's call forever.
	drained := false
	for i := 0; i < 100; i++ {
		if len(g.LiveActions()) == 0 {
			drained = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !drained {
		s.AddShard(h.Shard, g)
		return wire.Response{Status: wire.StatusRetry, Err: fmt.Sprintf("shard %d has live actions", h.Shard)}
	}
	// Compact to live state so the shipped log is a snapshot, not the
	// full history. Simplelog backends cannot housekeep; their whole
	// log ships instead.
	// Best-effort: compaction shrinks the shipped bytes, but an
	// uncompacted handoff is still correct.
	_, _ = g.Housekeep(core.HousekeepSnapshot)
	site := g.Site()
	if site == nil {
		s.AddShard(h.Shard, g)
		return wire.Response{Status: wire.StatusError, Err: fmt.Sprintf("shard %d has no open site", h.Shard)}
	}
	lg := site.Log()
	durable, _ := lg.TailInfo()
	s.emit(obs.Event{Kind: obs.KindShardHandoff, From: uint64(h.Shard), Bytes: int(durable), Note: "begin"})
	base := wire.HandoffFrames{Shard: h.Shard, Backend: uint8(g.Backend()), BlockSize: uint32(g.VolumeBlockSize())}
	var cursor uint64
	for cursor < durable {
		frames, prevLen, err := lg.ReadRaw(cursor, handoffChunk)
		if err != nil {
			s.AddShard(h.Shard, g)
			return wire.Response{Status: wire.StatusError, Err: fmt.Sprintf("handoff read at %d: %v", cursor, err)}
		}
		hf := base
		hf.App = wire.RepAppend{Epoch: 1, Start: cursor, PrevLen: prevLen, Frames: frames}
		ack, err := s.cfg.HandoffShip(h.Target, hf)
		if err != nil {
			s.AddShard(h.Shard, g)
			return wire.Response{Status: wire.StatusError, Err: fmt.Sprintf("handoff ship at %d: %v", cursor, err)}
		}
		want := cursor + uint64(len(frames))
		// A refused duplicate (a resend after a lost ack) still acks
		// the already-advanced tail; anything short means the receiver
		// holds a different log and the handoff must not publish.
		if ack.Durable != want {
			s.AddShard(h.Shard, g)
			return wire.Response{Status: wire.StatusError, Err: fmt.Sprintf("handoff receiver at %d, want %d", ack.Durable, want)}
		}
		cursor = want
	}
	done := base
	done.Done = true
	done.App = wire.RepAppend{Epoch: 1, Start: cursor}
	done.Table = newTable.Encode()
	if _, err := s.cfg.HandoffShip(h.Target, done); err != nil {
		s.AddShard(h.Shard, g)
		return wire.Response{Status: wire.StatusError, Err: fmt.Sprintf("handoff adopt: %v", err)}
	}
	// The receiver serves the shard now; publish the rehomed table
	// locally so this node's refusals teach the new route. The moved
	// guardian is dropped — its volume stays intact, but nothing
	// routes to it again under the new version.
	if err := s.InstallTable(newTable); err != nil {
		return wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	s.emit(obs.Event{Kind: obs.KindShardHandoff, From: uint64(h.Shard), Durable: newTable.Version, Note: "publish"})
	return wire.Response{Status: wire.StatusOK, Result: newTable.Encode()}
}

// handoffInstall answers OpHandoffInstall on the receiving node.
func (s *Server) handoffInstall(req wire.Request) wire.Response {
	hf, err := wire.DecodeHandoffFrames(req.Arg)
	if err != nil {
		return wire.Response{Status: wire.StatusBadRequest, Err: err.Error()}
	}
	ack, err := s.ApplyHandoff(hf)
	if err != nil {
		return wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	return wire.Response{Status: wire.StatusOK, Result: wire.EncodeRepAck(ack)}
}

// ApplyHandoff applies one inbound handoff step: frame runs accumulate
// in a replication receiver keyed by shard (same validation and
// refusal semantics as backup replication), and the Done step recovers
// the guardian over the received prefix, registers it, and installs
// the shipped table. Idempotent: a resent run is refused with the
// already-advanced tail acked, and a resent Done re-acks an adopted
// shard.
func (s *Server) ApplyHandoff(hf wire.HandoffFrames) (wire.RepAck, error) {
	s.smu.Lock()
	if g, adopted := s.shards[hf.Shard]; adopted {
		s.smu.Unlock()
		if !hf.Done {
			return wire.RepAck{}, fmt.Errorf("server: shard %d already adopted", hf.Shard)
		}
		var durable uint64
		if site := g.Site(); site != nil {
			durable, _ = site.Log().TailInfo()
		}
		return wire.RepAck{Epoch: hf.App.Epoch, Durable: durable, Applied: true}, nil
	}
	b := s.handoffs[hf.Shard]
	if b == nil {
		nb, err := replog.NewBackup(replog.BackupConfig{
			ID:        ids.GuardianID(hf.Shard),
			Primary:   ids.GuardianID(hf.Shard),
			Backend:   core.Backend(hf.Backend),
			BlockSize: int(hf.BlockSize),
			Tracer:    s.cfg.Tracer,
		})
		if err != nil {
			s.smu.Unlock()
			return wire.RepAck{}, err
		}
		b = nb
		s.handoffs[hf.Shard] = b
	}
	s.smu.Unlock()
	if !hf.Done {
		return b.Append(hf.App)
	}
	g, err := b.Promote()
	if err != nil {
		return wire.RepAck{}, fmt.Errorf("server: adopt shard %d: %w", hf.Shard, err)
	}
	if s.cfg.OnAdopt != nil {
		s.cfg.OnAdopt(hf.Shard, g)
	}
	s.AddShard(hf.Shard, g)
	s.smu.Lock()
	delete(s.handoffs, hf.Shard)
	s.smu.Unlock()
	if len(hf.Table) > 0 {
		tbl, err := shard.Decode(hf.Table)
		if err != nil {
			return wire.RepAck{}, fmt.Errorf("server: handoff table: %w", err)
		}
		if err := s.InstallTable(tbl); err != nil {
			return wire.RepAck{}, err
		}
	}
	var durable uint64
	if site := g.Site(); site != nil {
		durable, _ = site.Log().TailInfo()
	}
	s.emit(obs.Event{Kind: obs.KindShardHandoff, From: uint64(hf.Shard), Durable: durable, Note: "adopt"})
	return wire.RepAck{Epoch: hf.App.Epoch, Durable: durable, Applied: true}, nil
}
