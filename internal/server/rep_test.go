package server

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/replog"
	"repro/internal/stablelog"
	"repro/internal/value"
	"repro/internal/wire"
)

// These tests close the replication loop over real sockets: a
// replog.Primary ships through client.Transport + RemoteReplica to
// rosd servers hosting Backups, and the rep.* event stream must be
// byte-identical to the same history run over the deterministic
// simulation — the package's determinism contract, proven end to end.

// repSig renders one replication or network event exactly as the
// replog partition matrix does; other kinds render empty and are
// dropped.
func repSig(e obs.Event) string {
	switch e.Kind {
	case obs.KindNetCall:
		if e.OK {
			return fmt.Sprintf("call %d->%d", e.From, e.To)
		}
		return fmt.Sprintf("call %d->%d refused", e.From, e.To)
	case obs.KindRepSend:
		return fmt.Sprintf("send %d->%d @%d", e.From, e.To, e.Durable)
	case obs.KindRepAck:
		return fmt.Sprintf("ack %d->%d =%d", e.From, e.To, e.Durable)
	case obs.KindRepRecv:
		return fmt.Sprintf("recv[%d] =%d", e.Gid, e.Durable)
	case obs.KindRepQuorum:
		word := "short"
		if e.OK {
			word = "ok"
		}
		return fmt.Sprintf("quorum =%d %s", e.Durable, word)
	case obs.KindRepCatchup:
		if e.From != 0 {
			return fmt.Sprintf("catchup %d->%d =%d", e.From, e.To, e.Durable)
		}
		return fmt.Sprintf("reset[%d]", e.Gid)
	case obs.KindRepPromote:
		return fmt.Sprintf("promote[%d] =%d", e.Gid, e.Durable)
	default:
		return ""
	}
}

func repSigText(rec *obs.Recorder) []byte {
	var buf bytes.Buffer
	for _, e := range rec.Events() {
		if s := repSig(e); s != "" {
			buf.WriteString(s)
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// repHistEnv is one side of the netsim/TCP mirror: a bare replicated
// log plus the partition controls, with every component tracing into
// rec.
type repHistEnv struct {
	log     *stablelog.Log
	setDown func(ids.GuardianID, bool)
	cut     func(a, b ids.GuardianID, cut bool)
	rec     *obs.Recorder
}

// driveRepHistory runs the scripted partition history — forces under
// single-node and double-node outages, a heal with backlog catch-up, a
// cut link — and returns the rendered rep.* stream.
func driveRepHistory(t *testing.T, env *repHistEnv) []byte {
	t.Helper()
	force := func(s string, wantErr error) {
		t.Helper()
		if len(s) != 3 {
			t.Fatalf("payload %q: the mirror uses 3-byte payloads", s)
		}
		lsn, err := env.log.Write([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		if err := env.log.ForceTo(lsn); !errors.Is(err, wantErr) {
			t.Fatalf("ForceTo(%q) = %v, want %v", s, err, wantErr)
		}
	}
	force("h-0", nil)
	env.setDown(101, true)
	force("h-1", nil)
	env.setDown(102, true)
	force("h-2", replog.ErrQuorumLost)
	env.setDown(101, false)
	force("h-3", nil)
	env.setDown(102, false)
	env.cut(1, 101, true)
	force("h-4", nil)
	env.cut(1, 101, false)
	force("h-5", nil)
	return repSigText(env.rec)
}

// newRepSite builds a bare primary log site for the mirror.
func newRepSite(t *testing.T) *stablelog.Site {
	t.Helper()
	site, err := stablelog.CreateSite(stablelog.NewMemVolume(512))
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func newNetsimEnv(t *testing.T) *repHistEnv {
	t.Helper()
	rec := &obs.Recorder{}
	net := netsim.New()
	net.SetTracer(rec)
	site := newRepSite(t)
	var reps []replog.Replica
	for _, id := range []ids.GuardianID{101, 102} {
		b, err := replog.NewBackup(replog.BackupConfig{ID: id, Primary: 1, Tracer: rec})
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, b)
	}
	p, err := replog.NewPrimary(replog.Config{
		Self: 1, Site: site, Quorum: 2, Net: net, Replicas: reps, Tracer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	site.SetReplicator(p)
	return &repHistEnv{log: site.Log(), setDown: net.SetDown, cut: net.Cut, rec: rec}
}

func newTCPEnv(t *testing.T) *repHistEnv {
	t.Helper()
	rec := &obs.Recorder{}
	tp := client.NewTransport()
	tp.SetTracer(rec)
	t.Cleanup(func() {
		if err := tp.Close(); err != nil {
			t.Errorf("transport close: %v", err)
		}
	})
	site := newRepSite(t)
	var reps []replog.Replica
	for _, id := range []ids.GuardianID{101, 102} {
		b, err := replog.NewBackup(replog.BackupConfig{ID: id, Primary: 1, Tracer: rec})
		if err != nil {
			t.Fatal(err)
		}
		_, addr := startServer(t, nil, Config{Backup: b})
		tp.Register(id, client.New(addr, client.Options{}))
		r, err := tp.Replica(id)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, r)
	}
	p, err := replog.NewPrimary(replog.Config{
		Self: 1, Site: site, Quorum: 2, Net: tp, Replicas: reps, Tracer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	site.SetReplicator(p)
	return &repHistEnv{log: site.Log(), setDown: tp.SetDown, cut: tp.Cut, rec: rec}
}

// The partition matrix runs byte-identically over netsim and loopback
// TCP: same scripted history, same rendered rep.* stream.
func TestRepPartitionMatrixTCPMirror(t *testing.T) {
	sim := driveRepHistory(t, newNetsimEnv(t))
	tcp := driveRepHistory(t, newTCPEnv(t))
	if len(sim) == 0 {
		t.Fatal("the history produced no rep events")
	}
	if !bytes.Equal(sim, tcp) {
		t.Fatalf("TCP stream diverged from netsim:\n--- netsim\n%s--- tcp\n%s", sim, tcp)
	}
}

// Failover over real sockets: a guardian's commits replicate through
// TCP backups, an operator-style Promote on a backup server installs
// the recovered guardian, the recovered state serves reads, and the
// deposed primary's next commit is fenced by the bumped epoch.
func TestRepFailoverOverTCP(t *testing.T) {
	g := newCounterGuardian(t, 1)
	g.SetSynchronousForces(true)

	tp := client.NewTransport()
	t.Cleanup(func() {
		if err := tp.Close(); err != nil {
			t.Errorf("transport close: %v", err)
		}
	})
	register := func(ng *guardian.Guardian) {
		ng.RegisterHandler("get", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
			c, ok := ng.VarAtomic("counter")
			if !ok {
				return nil, errors.New("counter lost")
			}
			return sub.Read(c)
		})
	}
	var reps []replog.Replica
	var srvs []*Server
	for _, id := range []ids.GuardianID{101, 102} {
		b, err := replog.NewBackup(replog.BackupConfig{ID: id, Primary: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv, addr := startServer(t, nil, Config{Backup: b, OnPromote: register})
		srvs = append(srvs, srv)
		tp.Register(id, client.New(addr, client.Options{}))
		r, err := tp.Replica(id)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, r)
	}
	p, err := replog.NewPrimary(replog.Config{
		Self: 1, Site: g.Site(), Quorum: 2, Net: tp, Replicas: reps,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.SetReplicator(p)

	incr := func(delta int64) error {
		a := g.Begin()
		c, ok := g.VarAtomic("counter")
		if !ok {
			return errors.New("counter lost")
		}
		if err := a.Update(c, func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + delta)
		}); err != nil {
			return err
		}
		return a.Commit()
	}
	if err := incr(7); err != nil {
		t.Fatalf("replicated commit: %v", err)
	}

	// Both backups hold the primary's durable prefix.
	durable, _ := g.Site().Log().TailInfo()
	c101 := tp.Peer(101)
	st, err := c101.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rep.Role != wire.RoleBackup || st.Rep.Durable != durable {
		t.Fatalf("backup status = %+v, want role backup at %d durable bytes", st, durable)
	}

	// An unpromoted backup serves no guardian ops.
	impatient := client.New(c101.Addr(), client.Options{MaxAttempts: 2, BaseBackoff: time.Millisecond})
	t.Cleanup(func() { impatient.Close() })
	if _, err := impatient.Invoke("get", nil); !errors.Is(err, client.ErrBusy) {
		t.Fatalf("pre-promote invoke err = %v, want ErrBusy", err)
	}

	// Promote backup 101 and read the recovered counter over the wire.
	pst, err := c101.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if pst.Role != wire.RolePrimary || pst.Epoch != 2 {
		t.Fatalf("post-promote status = %+v, want primary at epoch 2", pst)
	}
	got, err := c101.Invoke("get", nil)
	if err != nil {
		t.Fatalf("promoted read: %v", err)
	}
	if int64(got.(value.Int)) != 7 {
		t.Fatalf("promoted counter = %v, want 7", got)
	}
	if srvs[0].Guardian() == nil || srvs[0].ID() != 1 {
		t.Fatalf("promoted server serves guardian %v, want the replicated identity 1", srvs[0].ID())
	}

	// The deposed primary is fenced by the promoted epoch, over the wire.
	if err := incr(1); !errors.Is(err, replog.ErrStaleReplica) {
		t.Fatalf("deposed commit err = %v, want ErrStaleReplica", err)
	}

	// Promote is idempotent and keeps serving the same guardian.
	again, err := c101.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if again.Role != wire.RolePrimary || again.Epoch != pst.Epoch {
		t.Fatalf("second promote status = %+v, want %+v", again, pst)
	}
}

// A promotion carrying the deposed primary's quorum-acked floor must
// refuse a backup whose received log is shorter: somewhere a longer
// copy holds an acknowledged commit this one would silently drop.
func TestPromoteFloorRefusesLaggingBackup(t *testing.T) {
	b, err := replog.NewBackup(replog.BackupConfig{ID: 101, Primary: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, nil, Config{Backup: b})
	c := client.New(addr, client.Options{})
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
	})

	// The empty backup holds 0 durable bytes; any positive floor refuses.
	if _, err := c.PromoteMin(1); err == nil {
		t.Fatal("PromoteMin(1) on an empty backup succeeded; an acked commit on a longer copy would be lost")
	} else if !errors.Is(err, wire.ErrRemote) {
		t.Fatalf("PromoteMin(1) err = %v, want a remote status error", err)
	}
	if b.Promoted() {
		t.Fatal("refused promotion still promoted the backup")
	}

	// A floor the backup meets promotes it (the non-empty-arg path).
	st, err := c.PromoteMin(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != wire.RolePrimary {
		t.Fatalf("post-promote status = %+v, want primary", st)
	}

	// The floor only gates the takeover itself: re-promoting an already
	// promoted backup stays idempotent whatever floor rides along.
	if _, err := c.PromoteMin(1 << 30); err != nil {
		t.Fatalf("idempotent re-promote with a floor: %v", err)
	}
}

// OpStatus on a plain server reports standalone with its own log
// boundary; the Config.Status hook overrides the report wholesale.
func TestStatusOverTCP(t *testing.T) {
	g := newCounterGuardian(t, 9)
	_, addr := startServer(t, g, Config{})
	c := client.New(addr, client.Options{})
	t.Cleanup(func() { c.Close() })
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	durable, _ := g.Site().Log().TailInfo()
	if st.Rep.Role != wire.RoleStandalone || st.Rep.Durable != durable || st.Rep.QuorumBytes != durable {
		t.Fatalf("standalone status = %+v, want standalone at %d durable bytes", st, durable)
	}
	if len(st.Shards) != 0 {
		t.Fatalf("unsharded server reports %d shard rows, want none", len(st.Shards))
	}

	// A rep op against a server with no hosted backup is a protocol
	// error, not a retry.
	if _, err := c.RepHeartbeat(wire.RepHeartbeat{Epoch: 1}); !errors.Is(err, wire.ErrRemote) {
		t.Fatalf("rep op on non-backup err = %v, want ErrRemote", err)
	}

	want := wire.RepStatus{Role: wire.RolePrimary, Epoch: 3, Durable: 48, QuorumBytes: 32, Quorum: 2, Replicas: 2, Alive: 1}
	g2 := newCounterGuardian(t, 10)
	_, addr2 := startServer(t, g2, Config{
		Status: func() wire.RepStatus { return want },
	})
	c2 := client.New(addr2, client.Options{})
	t.Cleanup(func() { c2.Close() })
	st2, err := c2.Status()
	if err != nil {
		t.Fatal(err)
	}
	// The hook answers the replication fields; the server stamps the
	// served guardian's index counters on top.
	if idx, ok := g2.IndexStats(); ok {
		want.IdxHits = idx.Hits
		want.IdxMisses = idx.Misses
		want.IdxEntries = uint64(idx.Entries)
		want.IdxBytes = idx.Bytes
	}
	if st2.Rep != want {
		t.Fatalf("hooked status = %+v, want %+v", st2.Rep, want)
	}
}
