package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/twopc"
	"repro/internal/value"
	"repro/internal/wire"
)

// newCounterGuardian builds a guardian with a committed "counter"
// atomic and incr/get handlers over it.
func newCounterGuardian(t *testing.T, id ids.GuardianID) *guardian.Guardian {
	t.Helper()
	g, err := guardian.New(id)
	if err != nil {
		t.Fatal(err)
	}
	boot := g.Begin()
	counter, err := boot.NewAtomic(value.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.SetVar("counter", counter); err != nil {
		t.Fatal(err)
	}
	if err := boot.Commit(); err != nil {
		t.Fatal(err)
	}
	registerCounter(g)
	return g
}

// registerCounter installs the counter handlers on g; split out so an
// adopted (handoff-recovered) guardian gets the same handlers.
func registerCounter(g *guardian.Guardian) {
	g.RegisterHandler("incr", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		c, _ := g.VarAtomic("counter")
		delta := int64(1)
		if arg != nil {
			delta = int64(arg.(value.Int))
		}
		if err := sub.Update(c, func(cur value.Value) value.Value {
			return value.Int(int64(cur.(value.Int)) + delta)
		}); err != nil {
			return nil, err
		}
		return sub.Read(c)
	})
	g.RegisterHandler("get", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		c, _ := g.VarAtomic("counter")
		return sub.Read(c)
	})
	g.RegisterHandler("fail", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		return nil, errors.New("handler says no")
	})
}

// startServer runs a server over g on a loopback listener and returns
// it with its address.
func startServer(t *testing.T, g *guardian.Guardian, cfg Config) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, cfg)
	go func() {
		if err := s.Serve(ln); !errors.Is(err, ErrClosed) {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ln.Addr().String()
}

// raw is a test client speaking the wire protocol directly; the real
// client package rides on top of the same frames.
type raw struct {
	nc   net.Conn
	corr uint64
}

func dialRaw(t *testing.T, addr string) *raw {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &raw{nc: nc}
}

func (r *raw) call(req wire.Request) (wire.Response, error) {
	r.corr++
	if err := r.nc.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return wire.Response{}, err
	}
	if err := wire.WriteFrame(r.nc, wire.Frame{Type: wire.TypeRequest, CorrID: r.corr, Payload: wire.EncodeRequest(req)}); err != nil {
		return wire.Response{}, err
	}
	f, err := wire.ReadFrame(r.nc)
	if err != nil {
		return wire.Response{}, err
	}
	if f.Type != wire.TypeResponse || f.CorrID != r.corr {
		return wire.Response{}, fmt.Errorf("frame type %d corr %d, want response corr %d", f.Type, f.CorrID, r.corr)
	}
	return wire.DecodeResponse(f.Payload)
}

func (r *raw) mustOK(t *testing.T, req wire.Request) wire.Response {
	t.Helper()
	resp, err := r.call(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("%s: status %s (%s)", req.Op, resp.Status, resp.Err)
	}
	return resp
}

func flatInt(n int64) []byte {
	return value.Flatten(value.Int(n), func(value.Obj) {})
}

func unflatInt(t *testing.T, b []byte) int64 {
	t.Helper()
	v, err := value.Unflatten(b)
	if err != nil {
		t.Fatal(err)
	}
	return int64(v.(value.Int))
}

func TestPingAndInvoke(t *testing.T) {
	g := newCounterGuardian(t, 1)
	_, addr := startServer(t, g, Config{})
	c := dialRaw(t, addr)

	c.mustOK(t, wire.Request{Op: wire.OpPing})
	if got := unflatInt(t, c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "incr", Arg: flatInt(5)}).Result); got != 5 {
		t.Fatalf("incr returned %d, want 5", got)
	}
	if got := unflatInt(t, c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "incr", Arg: flatInt(2)}).Result); got != 7 {
		t.Fatalf("incr returned %d, want 7", got)
	}
	if got := unflatInt(t, c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "get"}).Result); got != 7 {
		t.Fatalf("get returned %d, want 7", got)
	}
	// The owned action committed: nothing is left live server-side.
	if live := g.LiveActions(); len(live) != 0 {
		t.Fatalf("live actions after owned invokes: %v", live)
	}
}

func TestInvokeErrors(t *testing.T) {
	g := newCounterGuardian(t, 1)
	_, addr := startServer(t, g, Config{})
	c := dialRaw(t, addr)

	resp, err := c.call(wire.Request{Op: wire.OpInvoke, Handler: "no-such-handler"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusError {
		t.Fatalf("unknown handler: status %s", resp.Status)
	}
	resp, err = c.call(wire.Request{Op: wire.OpInvoke, Handler: "fail"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusError || resp.Err == "" {
		t.Fatalf("failing handler: %+v", resp)
	}
	// The failed owned action was aborted, not leaked.
	if live := g.LiveActions(); len(live) != 0 {
		t.Fatalf("live actions after failed invoke: %v", live)
	}
	// Counter untouched by the failures.
	if got := unflatInt(t, c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "get"}).Result); got != 0 {
		t.Fatalf("counter %d after failed invokes, want 0", got)
	}
}

// TestLockConflictIsRetry: a write lock held by a live local action
// turns a wire invoke into StatusRetry — the transient class the
// client's backoff loop consumes.
func TestLockConflictIsRetry(t *testing.T) {
	g := newCounterGuardian(t, 1)
	_, addr := startServer(t, g, Config{})
	c := dialRaw(t, addr)

	holder := g.Begin()
	counter, _ := g.VarAtomic("counter")
	if err := holder.Update(counter, func(v value.Value) value.Value { return v }); err != nil {
		t.Fatal(err)
	}
	resp, err := c.call(wire.Request{Op: wire.OpInvoke, Handler: "incr"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusRetry {
		t.Fatalf("status %s (%s), want retry", resp.Status, resp.Err)
	}
	if err := holder.Abort(); err != nil {
		t.Fatal(err)
	}
	c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "incr"})
}

// TestJoinedInvokeTwoPhase drives the participant path over the wire:
// invoke joining a remote coordinator's action, then prepare and
// commit by explicit 2PC messages.
func TestJoinedInvokeTwoPhase(t *testing.T) {
	g := newCounterGuardian(t, 2)
	_, addr := startServer(t, g, Config{})
	c := dialRaw(t, addr)

	coord, err := guardian.New(1)
	if err != nil {
		t.Fatal(err)
	}
	a := coord.Begin()
	aid := a.ID()

	c.mustOK(t, wire.Request{Op: wire.OpInvoke, AID: aid, Handler: "incr", Arg: flatInt(3)})
	// The action is live server-side, waiting for phase one.
	if live := g.LiveActions(); len(live) != 1 || live[0] != aid {
		t.Fatalf("live = %v, want [%v]", g.LiveActions(), aid)
	}
	resp := c.mustOK(t, wire.Request{Op: wire.OpPrepare, AID: aid})
	if twopc.Vote(resp.Vote) != twopc.VotePrepared {
		t.Fatalf("vote %d, want prepared", resp.Vote)
	}
	c.mustOK(t, wire.Request{Op: wire.OpCommit, AID: aid})
	if got := unflatInt(t, c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "get"}).Result); got != 3 {
		t.Fatalf("counter %d after 2PC commit, want 3", got)
	}
	if live := g.LiveActions(); len(live) != 0 {
		t.Fatalf("live actions after commit: %v", live)
	}
	// The coordinator-side action never spread here; drop it.
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestJoinedInvokeAbort: the abort message undoes the joined work.
func TestJoinedInvokeAbort(t *testing.T) {
	g := newCounterGuardian(t, 2)
	_, addr := startServer(t, g, Config{})
	c := dialRaw(t, addr)

	coord, err := guardian.New(1)
	if err != nil {
		t.Fatal(err)
	}
	a := coord.Begin()
	c.mustOK(t, wire.Request{Op: wire.OpInvoke, AID: a.ID(), Handler: "incr", Arg: flatInt(9)})
	c.mustOK(t, wire.Request{Op: wire.OpAbort, AID: a.ID()})
	if got := unflatInt(t, c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "get"}).Result); got != 0 {
		t.Fatalf("counter %d after abort, want 0", got)
	}
	if live := g.LiveActions(); len(live) != 0 {
		t.Fatalf("live actions after abort: %v", live)
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestOutcomeQuery(t *testing.T) {
	g := newCounterGuardian(t, 1)
	_, addr := startServer(t, g, Config{})
	c := dialRaw(t, addr)

	// Commit one owned action at the server, then ask its coordinator
	// (the server's own guardian) for an unknown action's outcome:
	// presumed abort.
	c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "incr"})
	resp := c.mustOK(t, wire.Request{Op: wire.OpOutcome, AID: ids.ActionID{Coordinator: 1, Seq: 999}})
	if twopc.Outcome(resp.Outcome) != twopc.OutcomeAborted {
		t.Fatalf("outcome %d, want aborted (presumed)", resp.Outcome)
	}
}

// TestBadRequestKeepsConnection: a malformed message inside a valid
// frame is answered StatusBadRequest and the connection stays usable;
// a frame that loses framing kills the connection.
func TestBadRequestKeepsConnection(t *testing.T) {
	g := newCounterGuardian(t, 1)
	_, addr := startServer(t, g, Config{})
	c := dialRaw(t, addr)

	if err := wire.WriteFrame(c.nc, wire.Frame{Type: wire.TypeRequest, CorrID: 99, Payload: []byte{0xFF, 0xFF}}); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(c.nc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusBadRequest || f.CorrID != 99 {
		t.Fatalf("got %+v corr %d", resp, f.CorrID)
	}
	c.mustOK(t, wire.Request{Op: wire.OpPing}) // still alive

	// Garbage bytes: the server drops the connection.
	if _, err := c.nc.Write([]byte("this is not a frame, not even close......")); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(c.nc); err == nil {
		t.Fatal("server answered a garbage stream")
	}
}

// TestResponseFrameRejected: a client must not send response frames.
func TestResponseFrameRejected(t *testing.T) {
	g := newCounterGuardian(t, 1)
	_, addr := startServer(t, g, Config{})
	c := dialRaw(t, addr)

	if err := wire.WriteFrame(c.nc, wire.Frame{Type: wire.TypeResponse, CorrID: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(c.nc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusBadRequest {
		t.Fatalf("status %s, want bad-request", resp.Status)
	}
	// Terminal: the stream ends.
	if _, err := wire.ReadFrame(c.nc); !errors.Is(err, io.EOF) {
		t.Fatalf("after response frame: %v, want EOF", err)
	}
}

// TestConnLimit: accepts beyond MaxConns are refused and traced.
func TestConnLimit(t *testing.T) {
	g := newCounterGuardian(t, 1)
	rec := &obs.Recorder{}
	_, addr := startServer(t, g, Config{MaxConns: 1, Tracer: rec})

	c1 := dialRaw(t, addr)
	c1.mustOK(t, wire.Request{Op: wire.OpPing})

	c2 := dialRaw(t, addr)
	// The refused connection is closed without a frame.
	if err := c2.nc.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(c2.nc); !errors.Is(err, io.EOF) {
		t.Fatalf("refused conn read: %v, want EOF", err)
	}
	var accepted, refused int
	for _, e := range rec.Events() {
		if e.Kind == obs.KindRPCAccept {
			if e.OK {
				accepted++
			} else {
				refused++
			}
		}
	}
	if accepted != 1 || refused != 1 {
		t.Fatalf("accept events: %d ok, %d refused; want 1/1", accepted, refused)
	}
}

// TestIdleTimeout: an idle connection is reaped and traced.
func TestIdleTimeout(t *testing.T) {
	g := newCounterGuardian(t, 1)
	rec := &obs.Recorder{}
	_, addr := startServer(t, g, Config{IdleTimeout: 50 * time.Millisecond, Tracer: rec})

	c := dialRaw(t, addr)
	if err := c.nc.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(c.nc); !errors.Is(err, io.EOF) {
		t.Fatalf("idle conn read: %v, want EOF", err)
	}
	found := false
	for _, e := range rec.Events() {
		if e.Kind == obs.KindRPCTimeout {
			found = true
		}
	}
	if !found {
		t.Fatal("no rpc.timeout event for the reaped connection")
	}
}

// TestEventLifecycle checks the trace for one simple exchange:
// accept, dispatch, reply, then the drain pair.
func TestEventLifecycle(t *testing.T) {
	g := newCounterGuardian(t, 1)
	rec := &obs.Recorder{}
	s, addr := startServer(t, g, Config{Tracer: rec})

	c := dialRaw(t, addr)
	c.mustOK(t, wire.Request{Op: wire.OpPing})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var kinds []obs.Kind
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.KindRPCAccept, obs.KindRPCDispatch, obs.KindRPCReply, obs.KindRPCDrain:
			kinds = append(kinds, e.Kind)
		}
	}
	want := []obs.Kind{obs.KindRPCAccept, obs.KindRPCDispatch, obs.KindRPCReply, obs.KindRPCDrain, obs.KindRPCDrain}
	if len(kinds) != len(want) {
		t.Fatalf("rpc events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("rpc events %v, want %v", kinds, want)
		}
	}
}

func TestServeAfterClose(t *testing.T) {
	g := newCounterGuardian(t, 1)
	s, _ := startServer(t, g, Config{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := s.Serve(ln); !errors.Is(err, ErrClosed) {
		t.Fatalf("Serve after Close: %v, want ErrClosed", err)
	}
}

// TestDrainUnderLoad is the shutdown-safety test: Close mid-load must
// leak no goroutines and no in-flight actions, and every acknowledged
// commit must be durable. Run with -race.
func TestDrainUnderLoad(t *testing.T) {
	g := newCounterGuardian(t, 1)
	// A write delay widens the force window so Close always lands on
	// in-flight commits.
	g.Volume().SetWriteDelay(200 * time.Microsecond)

	before := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{Workers: 4, DrainTimeout: 10 * time.Second})
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	const clients = 8
	var acked atomic.Int64
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func() {
			defer wg.Done()
			nc, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
			if err != nil {
				return // raced with Close; nothing sent
			}
			defer nc.Close()
			r := &raw{nc: nc}
			for {
				resp, err := r.call(wire.Request{Op: wire.OpInvoke, Handler: "incr", Arg: flatInt(1)})
				if err != nil {
					return // connection torn down by the drain: clean stop
				}
				switch resp.Status {
				case wire.StatusOK:
					acked.Add(1)
				case wire.StatusRetry:
					// draining or lock conflict; loop (the conn dies soon)
				default:
					t.Errorf("unexpected status %s: %s", resp.Status, resp.Err)
					return
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond) // let load build
	if err := s.Close(); err != nil {
		t.Fatalf("Close under load: %v", err)
	}
	wg.Wait()
	if err := <-serveDone; !errors.Is(err, ErrClosed) {
		t.Fatalf("Serve: %v, want ErrClosed", err)
	}

	// No in-flight action survived the drain.
	if live := g.LiveActions(); len(live) != 0 {
		t.Fatalf("live actions after drain: %v", live)
	}
	// Every acknowledged increment is in the committed state. The
	// counter may exceed acked if a commit's reply was cut off by the
	// drain — committed-but-unacked is the allowed ambiguity, the
	// reverse (acked-but-lost) is the bug.
	counter, _ := g.VarAtomic("counter")
	got := int64(counter.Base().(value.Int))
	if got < acked.Load() {
		t.Fatalf("counter %d < %d acknowledged commits: acked work was lost", got, acked.Load())
	}
	if acked.Load() == 0 {
		t.Log("warning: no commit acknowledged before the drain; load window too small")
	}

	// All server goroutines exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after drain\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
