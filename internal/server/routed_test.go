package server

import (
	"testing"

	"repro/internal/client"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/twopc"
	"repro/internal/value"
)

// shardedCluster is two live servers hosting three counter shards
// under a range table: shard 2 owns ["", "m"), shard 3 ["m", "t"),
// shard 4 ["t", ∞) — so keys "a", "n", "u" land on 2, 3, 4.
type shardedCluster struct {
	a, b         *Server
	addrA, addrB string
	table        shard.Table
	guardians    map[uint32]*guardian.Guardian
}

func newShardedCluster(t *testing.T) *shardedCluster {
	t.Helper()
	cl := &shardedCluster{guardians: make(map[uint32]*guardian.Guardian)}
	cl.a, cl.addrA = startServer(t, newCounterGuardian(t, 100), Config{HandoffShip: shipVia(t)})
	cl.b, cl.addrB = startServer(t, newCounterGuardian(t, 101), Config{
		HandoffShip: shipVia(t),
		OnAdopt:     func(id uint32, g *guardian.Guardian) { registerCounter(g) },
	})
	for _, sh := range []uint32{2, 3} {
		g := newCounterGuardian(t, ids.GuardianID(sh))
		cl.a.AddShard(sh, g)
		cl.guardians[sh] = g
	}
	g4 := newCounterGuardian(t, 4)
	cl.b.AddShard(4, g4)
	cl.guardians[4] = g4
	cl.table = shard.Table{Version: 1, Kind: shard.KindRange, Shards: []shard.Shard{
		{ID: 2, Addr: cl.addrA, Start: ""},
		{ID: 3, Addr: cl.addrA, Start: "m"},
		{ID: 4, Addr: cl.addrB, Start: "t"},
	}}
	if err := cl.a.InstallTable(cl.table); err != nil {
		t.Fatal(err)
	}
	if err := cl.b.InstallTable(cl.table); err != nil {
		t.Fatal(err)
	}
	return cl
}

// counter reads a shard's committed counter directly from its guardian.
func (cl *shardedCluster) counter(t *testing.T, sh uint32) int64 {
	t.Helper()
	c, ok := cl.guardians[sh].VarAtomic("counter")
	if !ok {
		t.Fatalf("shard %d has no counter", sh)
	}
	return int64(c.Base().(value.Int))
}

func newRouted(t *testing.T, cl *shardedCluster, tr obs.Tracer) *client.Routed {
	t.Helper()
	opt := fastOpts()
	opt.Tracer = tr
	r := client.NewRouted([]string{cl.addrA, cl.addrB}, opt)
	t.Cleanup(func() { r.Close() })
	return r
}

// TestRoutedSingleKey: the routed client fetches the table from the
// seeds and lands each key on its owning shard.
func TestRoutedSingleKey(t *testing.T) {
	cl := newShardedCluster(t)
	r := newRouted(t, cl, nil)

	for _, tc := range []struct {
		key   string
		shard uint32
		delta int64
	}{{"a", 2, 5}, {"n", 3, 7}, {"u", 4, 9}} {
		got, err := r.Invoke(tc.key, "incr", value.Int(tc.delta))
		if err != nil {
			t.Fatalf("incr %q: %v", tc.key, err)
		}
		if int64(got.(value.Int)) != tc.delta {
			t.Fatalf("incr %q = %v, want %d", tc.key, got, tc.delta)
		}
		if got := cl.counter(t, tc.shard); got != tc.delta {
			t.Fatalf("shard %d counter = %d, want %d", tc.shard, got, tc.delta)
		}
	}
}

// TestRoutedCrossShardTxn commits one atomic action spanning three
// shards on two nodes over real TCP, then proves all-or-nothing by
// aborting a second spanning action.
func TestRoutedCrossShardTxn(t *testing.T) {
	cl := newShardedCluster(t)
	r := newRouted(t, cl, nil)

	tx, err := r.Begin("a")
	if err != nil {
		t.Fatal(err)
	}
	if tx.AID().Coordinator != 2 {
		t.Fatalf("coordinator = %d, want shard 2 (owner of the first key)", tx.AID().Coordinator)
	}
	for _, tc := range []struct {
		key   string
		delta int64
	}{{"a", 1}, {"n", 2}, {"u", 3}} {
		if _, err := tx.Invoke(tc.key, "incr", value.Int(tc.delta)); err != nil {
			t.Fatalf("txn incr %q: %v", tc.key, err)
		}
	}
	res, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != twopc.OutcomeCommitted || !res.Done {
		t.Fatalf("commit result = %+v, want committed and done", res)
	}
	for sh, want := range map[uint32]int64{2: 1, 3: 2, 4: 3} {
		if got := cl.counter(t, sh); got != want {
			t.Fatalf("shard %d counter = %d, want %d", sh, got, want)
		}
	}

	// An aborted spanning action leaves every shard untouched.
	tx2, err := r.Begin("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Invoke("a", "incr", value.Int(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Invoke("u", "incr", value.Int(100)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	for sh, want := range map[uint32]int64{2: 1, 3: 2, 4: 3} {
		if got := cl.counter(t, sh); got != want {
			t.Fatalf("shard %d counter = %d after abort, want %d", sh, got, want)
		}
	}
	// A finished txn refuses further use.
	if _, err := tx2.Invoke("a", "incr", value.Int(1)); err == nil {
		t.Fatal("invoke on a finished txn succeeded")
	}
}

// TestRoutedWrongShardRefresh: a routed client holding the pre-handoff
// table converges through the wrong-shard refusal — one refused call
// teaches it the rehomed table, the retry lands on the new owner.
func TestRoutedWrongShardRefresh(t *testing.T) {
	cl := newShardedCluster(t)
	rec := &obs.Recorder{}
	r := newRouted(t, cl, rec)

	// Seed the table and some committed state.
	if _, err := r.Invoke("a", "incr", value.Int(4)); err != nil {
		t.Fatal(err)
	}
	if tbl, ok := r.Table(); !ok || tbl.Version != 1 {
		t.Fatalf("routed table = %+v %v, want v1", tbl, ok)
	}

	// Move shard 2 to node B behind the routed client's back.
	ca := client.New(cl.addrA, fastOpts())
	t.Cleanup(func() { ca.Close() })
	if _, err := ca.Handoff(2, cl.addrB); err != nil {
		t.Fatal(err)
	}

	// The stale route draws a refusal, installs v2 in-band, retries.
	got, err := r.Invoke("a", "get", nil)
	if err != nil {
		t.Fatalf("post-handoff routed read: %v", err)
	}
	if int64(got.(value.Int)) != 4 {
		t.Fatalf("moved counter = %v, want 4", got)
	}
	if tbl, _ := r.Table(); tbl.Version != 2 {
		t.Fatalf("routed table v%d after correction, want v2", tbl.Version)
	}
	var sawWrong, sawInstall bool
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.KindShardWrong:
			sawWrong = true
		case obs.KindShardInstall:
			if e.Durable == 2 {
				sawInstall = true
			}
		}
	}
	if !sawWrong || !sawInstall {
		t.Fatalf("trace wrong=%v install=%v, want both", sawWrong, sawInstall)
	}
}

// TestCrossShardPartitionMatrix: for every participant shard, a commit
// attempted while that shard is unreachable aborts cleanly — no shard
// applies — and after healing, a fresh action spanning the same keys
// commits everywhere. With the committing record forced, an
// unresponsive participant holds the action in doubt (not aborted)
// until Complete re-delivers.
func TestCrossShardPartitionMatrix(t *testing.T) {
	keys := map[uint32]string{2: "a", 3: "n", 4: "u"}
	for _, downShard := range []uint32{2, 3, 4} {
		cl := newShardedCluster(t)
		r := newRouted(t, cl, nil)
		// Prime the table before partitioning.
		if _, err := r.Invoke("a", "get", nil); err != nil {
			t.Fatal(err)
		}

		tx, err := r.Begin("a")
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"a", "n", "u"} {
			if _, err := tx.Invoke(key, "incr", value.Int(10)); err != nil {
				t.Fatal(err)
			}
		}
		// Partition one participant for the whole commit: its prepare is
		// refused, the coordinator aborts, and no shard applies.
		r.Transport().SetDown(ids.GuardianID(downShard), true)
		res, err := tx.Commit()
		if err == nil && res.Outcome == twopc.OutcomeCommitted {
			t.Fatalf("down=%d: commit succeeded through a partition refusing a prepare", downShard)
		}
		r.Transport().SetDown(ids.GuardianID(downShard), false)
		//roslint:besteffort the commit already aborted; this clears any prepared survivors
		_ = tx.Abort()
		for sh := range keys {
			if got := cl.counter(t, sh); got != 0 {
				t.Fatalf("down=%d: shard %d counter = %d after aborted commit, want 0", downShard, sh, got)
			}
		}

		// Healed, the same span commits on every shard.
		tx2, err := r.Begin("a")
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"a", "n", "u"} {
			if _, err := tx2.Invoke(key, "incr", value.Int(7)); err != nil {
				t.Fatal(err)
			}
		}
		res, err = tx2.Commit()
		if err != nil || res.Outcome != twopc.OutcomeCommitted {
			t.Fatalf("down=%d: healed commit = %+v, %v", downShard, res, err)
		}
		for sh := range keys {
			if got := cl.counter(t, sh); got != 7 {
				t.Fatalf("down=%d: shard %d counter = %d, want 7", downShard, sh, got)
			}
		}
	}
}

// TestCrossShardInDoubtComplete drives the coordinator-crash window by
// hand: join two shards, prepare both, force the committing record —
// then "lose" the client before any commit message. A fresh client
// resolves the in-doubt action through the coordinator shard's outcome
// query and Complete delivers the commits.
func TestCrossShardInDoubtComplete(t *testing.T) {
	cl := newShardedCluster(t)
	ca := client.New(cl.addrA, fastOpts())
	cb := client.New(cl.addrB, fastOpts())
	t.Cleanup(func() { ca.Close(); cb.Close() })

	aid, err := ca.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.InvokeJoinShard(2, aid, "incr", value.Int(6)); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.InvokeJoinShard(4, aid, "incr", value.Int(8)); err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct {
		c  *client.Client
		sh uint32
	}{{ca, 2}, {cb, 4}} {
		v, err := p.c.PrepareShard(p.sh, aid)
		if err != nil {
			t.Fatal(err)
		}
		if v != twopc.VotePrepared {
			t.Fatalf("shard %d vote = %v, want prepared", p.sh, v)
		}
	}
	if err := ca.Committing(2, aid, []ids.GuardianID{2, 4}); err != nil {
		t.Fatal(err)
	}
	// The driving client dies here. Both shards are prepared and in
	// doubt; the committing record decides.
	out, err := ca.OutcomeShard(2, aid)
	if err != nil {
		t.Fatal(err)
	}
	if out != twopc.OutcomeCommitted {
		t.Fatalf("in-doubt outcome = %v, want committed", out)
	}
	// A fresh routed client completes phase two.
	r := newRouted(t, cl, nil)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	co := twopc.Coordinator{Self: 2, Net: r.Transport(), Log: r.Transport().Peer(2).CoordLog(2)}
	parts := []twopc.Participant{
		&client.RemoteParticipant{ID: 2, Shard: 2, C: r.Transport().Peer(2)},
		&client.RemoteParticipant{ID: 4, Shard: 4, C: r.Transport().Peer(4)},
	}
	res, err := co.Complete(aid, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != twopc.OutcomeCommitted || !res.Done {
		t.Fatalf("complete = %+v, want committed and done", res)
	}
	if got := cl.counter(t, 2); got != 6 {
		t.Fatalf("shard 2 counter = %d, want 6", got)
	}
	if got := cl.counter(t, 4); got != 8 {
		t.Fatalf("shard 4 counter = %d, want 8", got)
	}
}
