package server

import (
	"errors"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/twopc"
	"repro/internal/value"
	"repro/internal/wire"
)

// fastOpts keeps test clients snappy: tight backoff, few attempts.
func fastOpts() client.Options {
	return client.Options{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
}

// shipVia returns a HandoffShip hook that delivers chunks to the
// target over a fresh TCP client, the same wiring rosd uses.
func shipVia(t *testing.T) func(target string, hf wire.HandoffFrames) (wire.RepAck, error) {
	t.Helper()
	return func(target string, hf wire.HandoffFrames) (wire.RepAck, error) {
		c := client.New(target, fastOpts())
		defer c.Close()
		return c.HandoffInstall(hf)
	}
}

// TestShardDispatchAndWrongShard: requests carrying a shard id reach
// the registered guardian; an unhosted shard is refused with the
// server's routing table in-band.
func TestShardDispatchAndWrongShard(t *testing.T) {
	g1 := newCounterGuardian(t, 1)
	g2 := newCounterGuardian(t, 2)
	s, addr := startServer(t, g1, Config{})
	s.AddShard(2, g2)
	tbl := shard.Table{Version: 1, Kind: shard.KindHash, Shards: []shard.Shard{
		{ID: 2, Addr: addr}, {ID: 3, Addr: "127.0.0.1:1"},
	}}
	if err := s.InstallTable(tbl); err != nil {
		t.Fatal(err)
	}

	c := dialRaw(t, addr)
	// Shard 0 is the default guardian; shard 2 its own.
	if got := unflatInt(t, c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "incr", Arg: flatInt(1)}).Result); got != 1 {
		t.Fatalf("default-shard incr = %d, want 1", got)
	}
	if got := unflatInt(t, c.mustOK(t, wire.Request{Op: wire.OpInvoke, Shard: 2, Handler: "incr", Arg: flatInt(5)}).Result); got != 5 {
		t.Fatalf("shard-2 incr = %d, want 5", got)
	}
	// The two counters are distinct guardians.
	if got := unflatInt(t, c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "get"}).Result); got != 1 {
		t.Fatalf("default counter = %d, want 1", got)
	}

	// Unhosted shards — in the table or not — refuse with the table.
	for _, sh := range []uint32{3, 5} {
		resp, err := c.call(wire.Request{Op: wire.OpInvoke, Shard: sh, Handler: "get"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusWrongShard {
			t.Fatalf("shard %d status = %s, want wrong-shard", sh, resp.Status)
		}
		got, err := shard.Decode(resp.Result)
		if err != nil {
			t.Fatalf("in-band table: %v", err)
		}
		if got.Version != 1 || len(got.Shards) != 2 {
			t.Fatalf("in-band table = %+v, want v1 with 2 shards", got)
		}
	}
}

// TestRouteRPC: OpRoute serves the table, OpRouteInstall adopts newer
// tables and answers the current one either way.
func TestRouteRPC(t *testing.T) {
	s, addr := startServer(t, newCounterGuardian(t, 1), Config{})
	c := client.New(addr, fastOpts())
	t.Cleanup(func() { c.Close() })

	if _, err := c.Route(); !errors.Is(err, wire.ErrRemote) {
		t.Fatalf("route on unsharded server err = %v, want remote error", err)
	}
	v1 := shard.Table{Version: 1, Kind: shard.KindHash, Shards: []shard.Shard{{ID: 2, Addr: addr}}}
	if err := s.InstallTable(v1); err != nil {
		t.Fatal(err)
	}
	got, err := c.Route()
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 {
		t.Fatalf("route version = %d, want 1", got.Version)
	}

	// A newer offer installs and is echoed back.
	v2, err := v1.WithAddr(2, "127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := c.RouteInstall(v2)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != 2 {
		t.Fatalf("post-install version = %d, want 2", cur.Version)
	}
	// A stale offer is not an error; the answer teaches the newer table.
	cur, err = c.RouteInstall(v1)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != 2 {
		t.Fatalf("stale install answered v%d, want v2", cur.Version)
	}
	// Server-side install of an older table is refused as stale.
	if err := s.InstallTable(v1); !errors.Is(err, transport.ErrStaleRoute) {
		t.Fatalf("stale InstallTable err = %v, want ErrStaleRoute", err)
	}
}

// TestStatusShardRows: the status report carries one row per hosted
// shard in ascending id order.
func TestStatusShardRows(t *testing.T) {
	s, addr := startServer(t, newCounterGuardian(t, 1), Config{})
	g3 := newCounterGuardian(t, 3)
	g2 := newCounterGuardian(t, 2)
	s.AddShard(3, g3)
	s.AddShard(2, g2)

	c := client.New(addr, fastOpts())
	t.Cleanup(func() { c.Close() })
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 || st.Shards[0].ID != 2 || st.Shards[1].ID != 3 {
		t.Fatalf("shard rows = %+v, want ids [2 3]", st.Shards)
	}
	for _, row := range st.Shards {
		if row.Durable == 0 {
			t.Fatalf("shard %d reports 0 durable bytes; its boot commit is on disk", row.ID)
		}
	}
}

// TestBeginCommittingDoneOutcome drives the client-side coordinator
// records over the wire: Begin mints the action at the shard, a joined
// invoke does work, Committing forces the point of no return (outcome
// queries now answer committed), Commit applies, Done releases the
// durable record (§2.2.2).
func TestBeginCommittingDoneOutcome(t *testing.T) {
	g2 := newCounterGuardian(t, 2)
	s, addr := startServer(t, newCounterGuardian(t, 1), Config{})
	s.AddShard(2, g2)
	c := client.New(addr, fastOpts())
	t.Cleanup(func() { c.Close() })

	aid, err := c.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	if aid.Coordinator != 2 {
		t.Fatalf("begin minted coordinator %d, want shard 2's guardian", aid.Coordinator)
	}
	if _, err := c.InvokeJoinShard(2, aid, "incr", value.Int(4)); err != nil {
		t.Fatal(err)
	}
	v, err := c.PrepareShard(2, aid)
	if err != nil {
		t.Fatal(err)
	}
	if v != twopc.VotePrepared {
		t.Fatalf("vote = %v, want prepared", v)
	}
	if err := c.Committing(2, aid, []ids.GuardianID{2}); err != nil {
		t.Fatal(err)
	}
	out, err := c.OutcomeShard(2, aid)
	if err != nil {
		t.Fatal(err)
	}
	if out != twopc.OutcomeCommitted {
		t.Fatalf("outcome after committing = %v, want committed", out)
	}
	if err := c.CommitShard(2, aid); err != nil {
		t.Fatal(err)
	}
	if err := c.Done(2, aid); err != nil {
		t.Fatal(err)
	}
	// In-memory the done entry still answers committed (a late query
	// gets the truth); only after recovery does the released record
	// fall back to presumed abort.
	out, err = c.OutcomeShard(2, aid)
	if err != nil {
		t.Fatal(err)
	}
	if out != twopc.OutcomeCommitted {
		t.Fatalf("outcome after done = %v, want committed", out)
	}
	if got := unflatInt(t, mustInvoke(t, c, 2, "get")); got != 4 {
		t.Fatalf("counter = %d after committed 2PC, want 4", got)
	}
}

// mustInvoke runs a complete owned action on a shard and returns the
// flattened result.
func mustInvoke(t *testing.T, c *client.Client, sh uint32, handler string) []byte {
	t.Helper()
	v, err := c.InvokeShard(sh, handler, nil)
	if err != nil {
		t.Fatal(err)
	}
	return value.Flatten(v, func(value.Obj) {})
}

// TestHandoffMovesShard is the oracle-verified handoff path: commit
// state into a shard on the source node, hand it to the target over
// the real ship path, and require the committed value to be served by
// the target while the source refuses with the rehomed table.
func TestHandoffMovesShard(t *testing.T) {
	srcRec, dstRec := &obs.Recorder{}, &obs.Recorder{}
	src, srcAddr := startServer(t, newCounterGuardian(t, 1), Config{HandoffShip: shipVia(t), Tracer: srcRec})
	_, dstAddr := startServer(t, newCounterGuardian(t, 10), Config{
		OnAdopt: func(id uint32, g2 *guardian.Guardian) { registerCounter(g2) },
		Tracer:  dstRec,
	})

	g2 := newCounterGuardian(t, 2)
	src.AddShard(2, g2)
	tbl := shard.Table{Version: 1, Kind: shard.KindHash, Shards: []shard.Shard{{ID: 2, Addr: srcAddr}}}
	if err := src.InstallTable(tbl); err != nil {
		t.Fatal(err)
	}

	c := client.New(srcAddr, fastOpts())
	t.Cleanup(func() { c.Close() })
	const commits = 5
	for i := 0; i < commits; i++ {
		if _, err := c.InvokeShard(2, "incr", value.Int(3)); err != nil {
			t.Fatal(err)
		}
	}

	newTbl, err := c.Handoff(2, dstAddr)
	if err != nil {
		t.Fatal(err)
	}
	if newTbl.Version != 2 {
		t.Fatalf("published table v%d, want v2", newTbl.Version)
	}
	if owner, ok := newTbl.Lookup(2); !ok || owner.Addr != dstAddr {
		t.Fatalf("published owner of shard 2 = %+v, want %s", owner, dstAddr)
	}

	// Oracle: the target serves the exact committed value.
	cd := client.New(dstAddr, fastOpts())
	t.Cleanup(func() { cd.Close() })
	got, err := cd.InvokeShard(2, "get", nil)
	if err != nil {
		t.Fatalf("post-handoff read at target: %v", err)
	}
	if int64(got.(value.Int)) != commits*3 {
		t.Fatalf("moved counter = %v, want %d", got, commits*3)
	}

	// The source now refuses shard 2, teaching the rehomed table.
	_, err = c.InvokeShard(2, "get", nil)
	var wse *client.WrongShardError
	if !errors.As(err, &wse) {
		t.Fatalf("post-handoff source err = %v, want wrong-shard", err)
	}
	if !errors.Is(err, transport.ErrWrongShard) {
		t.Fatalf("wrong-shard error does not wrap the sentinel: %v", err)
	}
	inband, err := wse.Table()
	if err != nil {
		t.Fatal(err)
	}
	if inband.Version != 2 {
		t.Fatalf("in-band table v%d, want v2", inband.Version)
	}

	// The trace tells the story: begin and publish at the source, adopt
	// at the target.
	notes := map[string]bool{}
	for _, e := range srcRec.Events() {
		if e.Kind == obs.KindShardHandoff {
			notes[e.Note] = true
		}
	}
	if !notes["begin"] || !notes["publish"] {
		t.Fatalf("source handoff notes = %v, want begin and publish", notes)
	}
	adopted := false
	for _, e := range dstRec.Events() {
		if e.Kind == obs.KindShardHandoff && e.Note == "adopt" {
			adopted = true
		}
	}
	if !adopted {
		t.Fatal("target trace has no shard.handoff adopt event")
	}

	// A resent Done (a retry after a lost ack) re-acks the adopted shard.
	again := wire.HandoffFrames{Shard: 2, Done: true, App: wire.RepAppend{Epoch: 1}}
	ack, err := cd.HandoffInstall(again)
	if err != nil {
		t.Fatalf("resent done: %v", err)
	}
	if !ack.Applied || ack.Durable == 0 {
		t.Fatalf("resent done ack = %+v, want applied at the adopted tail", ack)
	}
}
