package server

import (
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/value"
	"repro/internal/wire"
)

// TestGetOverTCP drives the index-served read path end to end: OpGet
// answers the committed value, misses an unbound key with the "no such
// key" verdict, and the guardian's index counters record the traffic.
func TestGetOverTCP(t *testing.T) {
	g := newCounterGuardian(t, 31)
	_, addr := startServer(t, g, Config{})
	c := dialRaw(t, addr)

	c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "incr", Arg: flatInt(7)})
	if got := unflatInt(t, c.mustOK(t, wire.Request{Op: wire.OpGet, Handler: "counter"}).Result); got != 7 {
		t.Fatalf("get counter = %d, want 7", got)
	}
	resp, err := c.call(wire.Request{Op: wire.OpGet, Handler: "nonesuch"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusError || !strings.Contains(resp.Err, "no such key") {
		t.Fatalf("get of unbound key = %s (%s), want StatusError with 'no such key'", resp.Status, resp.Err)
	}
	st, ok := g.IndexStats()
	if !ok {
		t.Fatal("index disabled on a default guardian")
	}
	if st.Hits == 0 {
		t.Fatalf("index stats %+v: the served get did not hit", st)
	}
}

// TestPipelinedGets writes a whole batch of request frames in one
// write before reading anything — the client-side pipelining pattern —
// and collects every response by correlation id. Responses may arrive
// in any order (workers race) and coalesced into any number of writes;
// each must carry the right answer for its request.
func TestPipelinedGets(t *testing.T) {
	g := newCounterGuardian(t, 32)
	_, addr := startServer(t, g, Config{})
	c := dialRaw(t, addr)
	c.mustOK(t, wire.Request{Op: wire.OpInvoke, Handler: "incr", Arg: flatInt(3)})

	const depth = 24
	var buf []byte
	want := make(map[uint64]wire.Op, depth)
	for i := 0; i < depth; i++ {
		c.corr++
		req := wire.Request{Op: wire.OpGet, Handler: "counter"}
		if i%6 == 5 {
			req = wire.Request{Op: wire.OpPing}
		}
		want[c.corr] = req.Op
		b, err := wire.AppendFrame(buf, wire.Frame{Type: wire.TypeRequest, CorrID: c.corr, Payload: wire.EncodeRequest(req)})
		if err != nil {
			t.Fatal(err)
		}
		buf = b
	}
	if _, err := c.nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		f, err := wire.ReadFrame(c.nc)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		op, ok := want[f.CorrID]
		if f.Type != wire.TypeResponse || !ok {
			t.Fatalf("response %d: frame type %d corr %d unexpected", i, f.Type, f.CorrID)
		}
		delete(want, f.CorrID)
		resp, err := wire.DecodeResponse(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("corr %d: status %s (%s)", f.CorrID, resp.Status, resp.Err)
		}
		if op == wire.OpGet && unflatInt(t, resp.Result) != 3 {
			t.Fatalf("corr %d: get = %d, want 3", f.CorrID, unflatInt(t, resp.Result))
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d responses never arrived", len(want))
	}
}

// TestClientBatch exercises the client's DoBatch/GetBatch over a real
// server: pipelined gets agree with Invoke-observed state, and the
// batch path survives interleaved writes.
func TestClientBatch(t *testing.T) {
	g := newCounterGuardian(t, 33)
	_, addr := startServer(t, g, Config{})
	c := client.New(addr, client.Options{})
	t.Cleanup(func() { c.Close() })

	if _, err := c.Invoke("incr", value.Int(11)); err != nil {
		t.Fatal(err)
	}
	keys := []string{"counter", "counter", "counter", "counter"}
	vals, err := c.GetBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if int64(v.(value.Int)) != 11 {
			t.Fatalf("batch get %d = %v, want 11", i, v)
		}
	}
	// A mixed batch: reads pipelined alongside a write-path invoke.
	resps, err := c.DoBatch([]wire.Request{
		{Op: wire.OpGet, Handler: "counter"},
		{Op: wire.OpInvoke, Handler: "incr", Arg: flatInt(1)},
		{Op: wire.OpGet, Handler: "counter"},
		{Op: wire.OpPing},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if resp.Status != wire.StatusOK {
			t.Fatalf("batch response %d: %s (%s)", i, resp.Status, resp.Err)
		}
	}
	// Both gets are consistent snapshots: 11 or 12 depending on how the
	// racing incr serialized, never anything else.
	for _, i := range []int{0, 2} {
		if got := unflatInt(t, resps[i].Result); got != 11 && got != 12 {
			t.Fatalf("batch get %d = %d, want 11 or 12", i, got)
		}
	}
	if got, err := c.Get("counter"); err != nil || int64(got.(value.Int)) != 12 {
		t.Fatalf("post-batch get = %v, %v, want 12", got, err)
	}
}
