// Package server implements rosd, the networked serving layer: a TCP
// front door over one guardian and its recovery system, speaking the
// internal/wire protocol.
//
// The ROADMAP's north star is a store "serving heavy traffic from
// millions of users"; until this package, nothing could reach a
// guardian except in-process callers and the simulated network. The
// runtime is deliberately boring: one reader goroutine per accepted
// connection decodes frames and feeds a bounded worker pool; workers
// execute guardian operations (handler invocations, two-phase-commit
// messages) and write responses back under a per-connection write
// lock, so responses from concurrent workers never interleave
// mid-frame. A pipelining client (several requests written before any
// response is read) gets its responses coalesced: the reader counts
// in-flight dispatches and the worker answering the last one flushes
// every buffered frame in one write, amortizing syscalls the way group
// commit amortizes forces. Group commit (PR 3) is what makes this compose: N
// concurrent client commits coalesce into a fraction of N log forces,
// so the serving layer rides the force scheduler instead of defeating
// it (experiment E12).
//
// Failure handling follows the transport contract: a request the
// server cannot run safely is answered StatusRetry (lock conflicts,
// drain) for the client's backoff loop, StatusError for application
// failures, and a connection that loses framing (bad magic/CRC) is
// dropped — the client re-dials and retries.
//
// Shutdown is a drain, not an axe: Close stops accepting, kicks the
// readers, lets queued work finish (bounded by DrainTimeout), then
// closes connections. The drain test proves no goroutine and no
// in-flight action survives a mid-load Close.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/replog"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/value"
	"repro/internal/wire"
)

// ErrClosed is returned by Serve after Close stops the server.
var ErrClosed = errors.New("server: closed")

// Config tunes a Server. The zero value picks the defaults.
type Config struct {
	// MaxConns bounds concurrently open connections; excess accepts
	// are closed immediately (the client's dial succeeds, its first
	// read fails, its retry loop backs off). Default 64.
	MaxConns int
	// Workers is the size of the request-execution pool. Default 8.
	Workers int
	// QueueDepth bounds requests decoded but not yet executing; a
	// full queue blocks the connection's reader (backpressure on that
	// client) without stalling other connections. Default 2×Workers.
	QueueDepth int
	// IdleTimeout is the per-connection read deadline between
	// requests; an idle connection is closed when it expires.
	// Default 2m.
	IdleTimeout time.Duration
	// WriteTimeout is the per-response write deadline. Default 10s.
	WriteTimeout time.Duration
	// DrainTimeout bounds how long Close waits for queued requests to
	// finish before closing connections under them. Default 5s.
	DrainTimeout time.Duration
	// Tracer, when non-nil, receives the RPC lifecycle events:
	// rpc.accept, rpc.dispatch, rpc.reply, rpc.timeout, rpc.drain.
	Tracer obs.Tracer
	// Backup, when non-nil, is the hosted replication receiver: the
	// rep.* ops (append, heartbeat, snapshot) are dispatched to it, and
	// OpPromote makes it take over as the served guardian. A server may
	// start with a nil guardian when it hosts a backup — guardian ops
	// answer StatusRetry until promotion installs the recovered
	// guardian.
	Backup *replog.Backup
	// Status, when non-nil, answers OpStatus — a primary's rosd wires
	// its replog.Primary.Status here. Defaults to the hosted backup's
	// status, or a standalone report from the served guardian's log.
	Status func() wire.RepStatus
	// OnPromote, when non-nil, is called with the recovered guardian
	// after OpPromote succeeds (once per promotion; the promote is
	// idempotent but the hook fires only on the call that installed the
	// guardian).
	OnPromote func(*guardian.Guardian)
	// HandoffShip, when non-nil, delivers one OpHandoffInstall step to
	// the receiving node during an outbound shard handoff (a routed
	// client wires a TCP call here; tests wire a loopback into another
	// server's ApplyHandoff). A nil hook refuses OpHandoff.
	HandoffShip func(target string, hf wire.HandoffFrames) (wire.RepAck, error)
	// OnAdopt, when non-nil, is called with a shard guardian recovered
	// by an inbound handoff, before the shard starts serving — the hook
	// registers the application's handlers, exactly as OnPromote does
	// for a failover.
	OnAdopt func(id uint32, g *guardian.Guardian)
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// Server serves one guardian over TCP.
type Server struct {
	cfg Config
	tr  obs.Tracer

	gmu sync.Mutex
	g   *guardian.Guardian // swapped by OpPromote on a backup server

	// smu guards the shard registry and routing table. It is a leaf
	// lock: held only to read or swap the maps below, never across a
	// guardian call, a device write, or an emission — so it can never
	// participate in a cycle with guardian or log locks.
	smu      sync.Mutex
	shards   map[uint32]*guardian.Guardian
	table    *shard.Table
	handoffs map[uint32]*replog.Backup // inbound handoffs, keyed by shard

	work chan task

	mu      sync.Mutex
	ln      net.Listener
	conns   map[*conn]bool
	serial  uint64
	closing bool

	closed    chan struct{} // closed once when Close begins
	closeOnce sync.Once
	closeErr  error

	readers sync.WaitGroup
	workers sync.WaitGroup
}

// task is one dispatched request.
type task struct {
	c      *conn
	corrID uint64
	req    wire.Request
}

// conn is one accepted connection.
type conn struct {
	nc     net.Conn
	serial uint64

	// inflight counts requests dispatched from this connection whose
	// responses have not yet been handed to replyTracked. While it is
	// above zero the client is pipelining (it wrote another request
	// before reading the previous answer), so response frames coalesce
	// in wbuf and go out in one write when the count reaches zero.
	inflight atomic.Int64

	wmu  sync.Mutex // serializes response frames; guards wbuf
	wbuf []byte     // coalesced response frames awaiting flush

	closeOnce sync.Once
}

func (c *conn) close() {
	//roslint:besteffort double-close and teardown races are expected; the reader observes the first error
	c.closeOnce.Do(func() { _ = c.nc.Close() })
}

// New returns a Server over g. The guardian's handlers (registered
// with RegisterHandler) are its external interface; the server adds
// only the network in front of them. g may be nil only when cfg hosts
// a Backup: the server then serves nothing but the rep.* ops until an
// OpPromote recovers and installs the guardian.
func New(g *guardian.Guardian, cfg Config) *Server {
	cfg = cfg.withDefaults()
	gid := uint64(0)
	switch {
	case g != nil:
		gid = uint64(g.ID())
	case cfg.Backup != nil:
		gid = uint64(cfg.Backup.ID())
	}
	s := &Server{
		g:        g,
		cfg:      cfg,
		tr:       obs.WithGuardian(cfg.Tracer, gid),
		shards:   make(map[uint32]*guardian.Guardian),
		handoffs: make(map[uint32]*replog.Backup),
		work:     make(chan task, cfg.QueueDepth),
		conns:    make(map[*conn]bool),
		closed:   make(chan struct{}),
	}
	return s
}

// guardian returns the currently served guardian (nil on a backup
// server before promotion).
func (s *Server) guardian() *guardian.Guardian {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	return s.g
}

func (s *Server) emit(e obs.Event) {
	if s.tr != nil {
		s.tr.Emit(e)
	}
}

// Serve accepts connections on ln until Close. It blocks; run it in
// its own goroutine. After Close it returns ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	s.workers.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}

	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return ErrClosed
			default:
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		s.serial++
		c := &conn{nc: nc, serial: s.serial}
		if s.closing || len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.emit(obs.Event{Kind: obs.KindRPCAccept, From: c.serial})
			c.close()
			continue
		}
		s.conns[c] = true
		s.mu.Unlock()
		s.emit(obs.Event{Kind: obs.KindRPCAccept, From: c.serial, OK: true})
		s.readers.Add(1)
		go s.readLoop(c)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Close drains and stops the server: stop accepting, unblock the
// connection readers, finish dispatched requests (up to
// DrainTimeout), then close every connection. It is idempotent;
// every call returns the first drain's result.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.drain() })
	return s.closeErr
}

func (s *Server) drain() error {
	s.mu.Lock()
	s.closing = true
	ln := s.ln
	open := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()
	close(s.closed)
	s.emit(obs.Event{Kind: obs.KindRPCDrain, Bytes: len(open)})
	if ln != nil {
		//roslint:besteffort listener teardown; Serve observes the accept error and exits via the closed channel
		_ = ln.Close()
	}
	// Kick every reader out of its blocking read. In-flight responses
	// still need the connections writable, so this only expires the
	// read side.
	for _, c := range open {
		//roslint:besteffort a connection torn down concurrently is already kicked
		_ = c.nc.SetReadDeadline(time.Unix(0, 1))
	}
	s.readers.Wait()
	// No reader is left to enqueue: close the pool's feed and let the
	// workers finish what was dispatched.
	close(s.work)
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		err = fmt.Errorf("server: drain timed out after %v", s.cfg.DrainTimeout)
	}
	s.mu.Lock()
	for c := range s.conns {
		c.close()
		delete(s.conns, c)
	}
	s.mu.Unlock()
	if err != nil {
		// The conns are gone; stragglers fail their writes and exit.
		<-done
	}
	s.emit(obs.Event{Kind: obs.KindRPCDrain, OK: true})
	return err
}

// readLoop is the per-connection reader: decode frames, answer
// malformed ones, dispatch the rest to the worker pool.
func (s *Server) readLoop(c *conn) {
	defer s.readers.Done()
	defer s.forget(c)
	for {
		//roslint:besteffort a dead connection surfaces in the following read
		_ = c.nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		f, err := wire.ReadFrame(c.nc)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				select {
				case <-s.closed: // drain kick, not a real timeout
				default:
					s.emit(obs.Event{Kind: obs.KindRPCTimeout, From: c.serial})
				}
			}
			// EOF, timeout, teardown, or lost framing (bad magic/CRC):
			// all terminal for the connection.
			return
		}
		if f.Type != wire.TypeRequest {
			s.reply(c, f.CorrID, wire.Response{Status: wire.StatusBadRequest, Err: "not a request frame"})
			return
		}
		req, err := wire.DecodeRequest(f.Payload)
		if err != nil {
			// The frame passed its CRC, so this is a malformed message,
			// not line noise: answer and keep the connection.
			s.reply(c, f.CorrID, wire.Response{Status: wire.StatusBadRequest, Err: err.Error()})
			continue
		}
		s.emit(obs.Event{Kind: obs.KindRPCDispatch, From: c.serial, Code: uint8(req.Op), Bytes: len(f.Payload)})
		// Count the dispatch before handing it off: exactly one
		// replyTracked call (the worker's, or the drain refusal below)
		// balances this increment.
		c.inflight.Add(1)
		select {
		case s.work <- task{c: c, corrID: f.CorrID, req: req}:
		case <-s.closed:
			s.replyTracked(c, f.CorrID, wire.Response{Status: wire.StatusRetry, Err: "server draining"})
			return
		}
	}
}

// forget unregisters and closes a connection.
func (s *Server) forget(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.close()
}

// worker executes dispatched requests until the feed closes.
func (s *Server) worker() {
	defer s.workers.Done()
	for t := range s.work {
		s.replyTracked(t.c, t.corrID, s.execute(t.req))
	}
}

// coalesceLimit bounds the per-connection response buffer: a deeply
// pipelined batch flushes early once this many bytes accumulate, so
// the buffer never grows with batch depth.
const coalesceLimit = 32 << 10

// reply writes one response frame under the connection's write lock,
// flushing immediately — the path for responses that never entered the
// dispatch count (malformed frames, protocol errors).
func (s *Server) reply(c *conn, corrID uint64, resp wire.Response) {
	s.replyFrame(c, corrID, resp, false)
}

// replyTracked answers one dispatched request: the frame joins the
// connection's coalescing buffer and the write goes out when this was
// the last in-flight request (or the buffer outgrew coalesceLimit).
// Exactly one replyTracked call balances each inflight increment the
// reader performed at dispatch.
func (s *Server) replyTracked(c *conn, corrID uint64, resp wire.Response) {
	s.replyFrame(c, corrID, resp, true)
}

func (s *Server) replyFrame(c *conn, corrID uint64, resp wire.Response, tracked bool) {
	payload := wire.EncodeResponse(resp)
	c.wmu.Lock()
	buf, err := wire.AppendFrame(c.wbuf, wire.Frame{Type: wire.TypeResponse, CorrID: corrID, Payload: payload})
	if err != nil {
		c.wmu.Unlock()
		if tracked {
			c.inflight.Add(-1)
		}
		// An unencodable response (oversized payload) can never reach
		// the client; drop the connection so it re-dials and retries.
		c.close()
		return
	}
	c.wbuf = buf
	// The decrement happens here — inside wmu, after the append. Were
	// it outside, a sibling worker could observe the count hit zero and
	// flush between this frame's decrement and its append, stranding
	// the frame in the buffer with nobody left to write it.
	flush := true
	if tracked {
		flush = c.inflight.Add(-1) == 0 || len(c.wbuf) >= coalesceLimit
	}
	if flush {
		//roslint:besteffort a dead connection surfaces in the following write
		_ = c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		_, err = c.nc.Write(c.wbuf)
		c.wbuf = c.wbuf[:0]
	}
	c.wmu.Unlock()
	if err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			s.emit(obs.Event{Kind: obs.KindRPCTimeout, From: c.serial})
		}
		// A connection that cannot carry the response is dead; the
		// client sees the drop and retries idempotently.
		c.close()
		return
	}
	s.emit(obs.Event{Kind: obs.KindRPCReply, From: c.serial, Code: uint8(resp.Status), OK: resp.Status == wire.StatusOK})
}

// execute runs one request against the guardian (or, for the rep.*
// ops, against the hosted backup).
func (s *Server) execute(req wire.Request) wire.Response {
	switch req.Op {
	case wire.OpPing:
		return wire.Response{Status: wire.StatusOK}
	case wire.OpRepAppend, wire.OpRepHeartbeat, wire.OpRepSnapshot:
		return s.replicate(req)
	case wire.OpStatus:
		return wire.Response{Status: wire.StatusOK, Result: wire.EncodeStatusReport(s.statusReport())}
	case wire.OpPromote:
		return s.promote(req)
	case wire.OpRoute:
		return s.route()
	case wire.OpRouteInstall:
		return s.routeInstall(req)
	case wire.OpHandoff:
		return s.handoff(req)
	case wire.OpHandoffInstall:
		return s.handoffInstall(req)
	}
	g, miss := s.resolve(req.Shard)
	if miss != nil {
		return *miss
	}
	if g == nil {
		// A backup serves nothing until promoted; the client's retry
		// loop rides out the failover window.
		return wire.Response{Status: wire.StatusRetry, Err: "backup not promoted"}
	}
	switch req.Op {
	case wire.OpInvoke:
		return s.invoke(g, req)
	case wire.OpGet:
		return s.get(g, req)
	case wire.OpPrepare:
		vote, err := g.HandlePrepare(req.AID)
		if err != nil {
			return failure(err)
		}
		return wire.Response{Status: wire.StatusOK, Vote: uint8(vote)}
	case wire.OpCommit:
		if err := g.HandleCommit(req.AID); err != nil {
			return failure(err)
		}
		return wire.Response{Status: wire.StatusOK}
	case wire.OpAbort:
		if err := g.HandleAbort(req.AID); err != nil {
			return failure(err)
		}
		return wire.Response{Status: wire.StatusOK}
	case wire.OpOutcome:
		return wire.Response{Status: wire.StatusOK, Outcome: uint8(g.OutcomeOf(req.AID))}
	case wire.OpBegin:
		return wire.Response{Status: wire.StatusOK, Result: wire.EncodeActionID(g.Begin().ID())}
	case wire.OpCommitting:
		gids, err := wire.DecodeGuardianIDs(req.Arg)
		if err != nil {
			return wire.Response{Status: wire.StatusBadRequest, Err: err.Error()}
		}
		if err := g.Committing(req.AID, gids); err != nil {
			return failure(err)
		}
		return wire.Response{Status: wire.StatusOK}
	case wire.OpDone:
		if err := g.Done(req.AID); err != nil {
			return failure(err)
		}
		return wire.Response{Status: wire.StatusOK}
	default:
		return wire.Response{Status: wire.StatusBadRequest, Err: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

// replicate dispatches one rep.* op to the hosted backup. The ack —
// including the in-band refusal, which is an ack that did not advance
// — is a StatusOK response carrying the encoded RepAck; only an
// apply/force failure on the backup's own log is an error.
func (s *Server) replicate(req wire.Request) wire.Response {
	b := s.cfg.Backup
	if b == nil {
		return wire.Response{Status: wire.StatusBadRequest, Err: "not a backup"}
	}
	var ack wire.RepAck
	var err error
	switch req.Op {
	case wire.OpRepAppend:
		var app wire.RepAppend
		if app, err = wire.DecodeRepAppend(req.Arg); err == nil {
			ack, err = b.Append(app)
		}
	case wire.OpRepHeartbeat:
		var hb wire.RepHeartbeat
		if hb, err = wire.DecodeRepHeartbeat(req.Arg); err == nil {
			ack, err = b.Heartbeat(hb)
		}
	case wire.OpRepSnapshot:
		var snap wire.RepSnapshot
		if snap, err = wire.DecodeRepSnapshot(req.Arg); err == nil {
			ack, err = b.Snapshot(snap)
		}
	}
	if err != nil {
		if errors.Is(err, wire.ErrBadMessage) {
			return wire.Response{Status: wire.StatusBadRequest, Err: err.Error()}
		}
		return wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	return wire.Response{Status: wire.StatusOK, Result: wire.EncodeRepAck(ack)}
}

// status answers OpStatus: the Config.Status hook when set (a
// primary's rosd wires replog.Primary.Status there), else the hosted
// backup's report, else a standalone report from the served guardian's
// own log.
func (s *Server) status() wire.RepStatus {
	if s.cfg.Status != nil {
		return s.cfg.Status()
	}
	if s.cfg.Backup != nil {
		return s.cfg.Backup.Status()
	}
	st := wire.RepStatus{Role: wire.RoleStandalone}
	if g := s.guardian(); g != nil {
		if site := g.Site(); site != nil {
			st.Durable, _ = site.Log().TailInfo()
			st.QuorumBytes = st.Durable
		}
	}
	return st
}

// promote makes the hosted backup take over: bump its epoch (fencing
// the deposed primary), run crash recovery over the received prefix,
// and install the recovered guardian as the served one. Idempotent —
// a repeated promote re-answers the post-takeover status. A request
// carrying a RepPromote floor is refused when the backup's received
// prefix falls short of it: the operator is naming the deposed
// primary's last quorum-acked boundary, and promoting a shorter
// candidate would silently discard an acknowledged commit that lives
// only on some other copy.
func (s *Server) promote(req wire.Request) wire.Response {
	b := s.cfg.Backup
	if b == nil {
		return wire.Response{Status: wire.StatusBadRequest, Err: "not a backup"}
	}
	floor, err := wire.DecodeRepPromote(req.Arg)
	if err != nil {
		return wire.Response{Status: wire.StatusBadRequest, Err: err.Error()}
	}
	if !b.Promoted() {
		if durable := b.Status().Durable; durable < floor.MinDurable {
			return wire.Response{Status: wire.StatusError,
				Err: fmt.Sprintf("refusing promotion: candidate holds %d durable bytes, below the required quorum-acked %d; a longer copy exists elsewhere (promote without a floor to force)", durable, floor.MinDurable)}
		}
	}
	g, err := b.Promote()
	if err != nil {
		return wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	s.gmu.Lock()
	installed := s.g != g
	s.g = g
	s.gmu.Unlock()
	if installed && s.cfg.OnPromote != nil {
		s.cfg.OnPromote(g)
	}
	return wire.Response{Status: wire.StatusOK, Result: wire.EncodeRepStatus(s.status())}
}

// invoke runs a handler call. With a zero AID the call is a complete
// client-owned atomic action (begin, handler, commit); with a caller
// AID the guardian joins that action and runs the handler as a
// subaction, staying live as a participant for the caller's eventual
// prepare/commit/abort.
func (s *Server) invoke(g *guardian.Guardian, req wire.Request) wire.Response {
	var argv value.Value
	if len(req.Arg) > 0 {
		v, err := value.Unflatten(req.Arg)
		if err != nil {
			return wire.Response{Status: wire.StatusBadRequest, Err: fmt.Sprintf("argument: %v", err)}
		}
		argv = v
	}
	owned := req.AID.IsZero()
	var a *guardian.Action
	if owned {
		a = g.Begin()
	} else {
		a = g.Join(req.AID)
	}
	// The network hop already happened; the in-process delivery is a
	// loopback.
	result, err := guardian.Call(transport.Loopback{}, a, g, req.Handler, argv)
	if err != nil {
		if owned {
			if aerr := a.Abort(); aerr != nil {
				return failure(fmt.Errorf("%v; abort: %w", err, aerr))
			}
		}
		return failure(err)
	}
	if owned {
		if err := a.Commit(); err != nil {
			return failure(err)
		}
	}
	var flat []byte
	if result != nil {
		flat = value.Flatten(result, func(value.Obj) {})
	}
	return wire.Response{Status: wire.StatusOK, Result: flat}
}

// get answers OpGet: the committed value bound to the stable variable
// named by Handler, flattened — served from the guardian's live-version
// index when it holds the key, else through the guardian's read-only
// action fallback (which takes a read lock and releases it force-free).
func (s *Server) get(g *guardian.Guardian, req wire.Request) wire.Response {
	flat, err := g.ReadKey(req.Handler)
	if err != nil {
		return failure(err)
	}
	return wire.Response{Status: wire.StatusOK, Result: flat}
}

// failure classifies an execution error: lock conflicts and timeouts
// left no effects and are safe to retry; everything else is an
// application-level no.
func failure(err error) wire.Response {
	if errors.Is(err, object.ErrLockConflict) || errors.Is(err, object.ErrLockTimeout) {
		return wire.Response{Status: wire.StatusRetry, Err: err.Error()}
	}
	return wire.Response{Status: wire.StatusError, Err: err.Error()}
}

// Guardian returns the served guardian (nil on a backup server before
// promotion).
func (s *Server) Guardian() *guardian.Guardian { return s.guardian() }

// ID returns the served guardian's id — for an unpromoted backup
// server, the backup's own id.
func (s *Server) ID() ids.GuardianID {
	if g := s.guardian(); g != nil {
		return g.ID()
	}
	if s.cfg.Backup != nil {
		return s.cfg.Backup.ID()
	}
	return 0
}
