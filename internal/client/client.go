// Package client is the rosd client: a connection-pooled, retrying
// caller of one server over the internal/wire protocol.
//
// Retry policy follows the transport contract (internal/transport):
// a failure below the reply — dial refused, connection reset, deadline
// missed, stream desynchronized — means the request MAY have executed,
// so only requests that are safe to repeat should ride the retry loop;
// every rosd operation is (ping and outcome are reads, invoke commits
// a complete atomic action whose repeat is a new action, and the 2PC
// messages are idempotent by protocol design, §2.2.2). Transient
// server verdicts (StatusRetry: lock conflicts, drain) retry the same
// way. Backoff is capped exponential with jitter in [d/2, d], and all
// time and randomness flow through the injected Clock and Rand — the
// determinism analyzer enforces that this package never reads the wall
// clock or the global rand source directly, so backoff schedules are
// replayable in tests.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/twopc"
	"repro/internal/value"
	"repro/internal/wire"
)

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("client: closed")

// ErrUnreachable wraps transport.ErrUnreachable for every
// below-the-reply failure: dial, write, read, deadline, or a
// desynchronized stream. errors.Is(err, transport.ErrUnreachable)
// matches it alongside netsim's refusals.
var ErrUnreachable = fmt.Errorf("client: %w", transport.ErrUnreachable)

// ErrBusy is returned when every attempt drew StatusRetry: the server
// was reachable but transiently unable (lock conflicts, drain) for the
// whole retry budget.
var ErrBusy = errors.New("client: server busy through all retries")

// Options tunes a Client. The zero value picks the defaults.
type Options struct {
	// PoolSize bounds idle connections kept for reuse. Default 2.
	PoolSize int
	// DialTimeout bounds connection establishment. Default 2s.
	DialTimeout time.Duration
	// CallTimeout is the per-attempt deadline covering write and read.
	// Default 5s.
	CallTimeout time.Duration
	// MaxAttempts is the total number of tries per Do (first attempt
	// included). Default 4.
	MaxAttempts int
	// BaseBackoff is the backoff before the second attempt; it doubles
	// per failure up to MaxBackoff. Defaults 10ms / 500ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Clock and Rand supply all time and jitter. Defaults: SystemClock,
	// a fresh SystemRand.
	Clock Clock
	Rand  Rand
	// Dial opens connections; tests inject scripted ones. Default:
	// net.DialTimeout over TCP.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Tracer, when non-nil, receives rpc.retry and rpc.timeout events.
	Tracer obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 500 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = SystemClock{}
	}
	if o.Rand == nil {
		o.Rand = NewSystemRand()
	}
	if o.Dial == nil {
		o.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return o
}

// Client calls one server. It is safe for concurrent use; each
// in-flight request owns one connection.
type Client struct {
	addr string
	opt  Options

	corr atomic.Uint64

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// New returns a client for the server at addr.
func New(addr string, opt Options) *Client {
	return &Client{addr: addr, opt: opt.withDefaults()}
}

// Addr returns the server address this client calls.
func (c *Client) Addr() string { return c.addr }

// Close releases the pooled connections and fails future calls.
// In-flight calls finish on their own connections.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, nc := range idle {
		//roslint:besteffort pool teardown; an idle connection carries no outstanding request
		_ = nc.Close()
	}
	return nil
}

func (c *Client) emit(e obs.Event) {
	if c.opt.Tracer != nil {
		c.opt.Tracer.Emit(e)
	}
}

// conn returns a pooled idle connection or dials a fresh one.
func (c *Client) conn() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		nc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return nc, nil
	}
	c.mu.Unlock()
	nc, err := c.opt.Dial(c.addr, c.opt.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, c.addr, err)
	}
	return nc, nil
}

// release returns a healthy connection to the pool.
func (c *Client) release(nc net.Conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.opt.PoolSize {
		c.idle = append(c.idle, nc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	//roslint:besteffort surplus connection; nothing is in flight on it
	_ = nc.Close()
}

// attempt runs one request/response exchange on one connection.
func (c *Client) attempt(req wire.Request) (wire.Response, error) {
	nc, err := c.conn()
	if err != nil {
		return wire.Response{}, err
	}
	resp, err := c.exchange(nc, req)
	if err != nil {
		// The stream's state is unknown: never pool it.
		//roslint:besteffort the connection is already being discarded for the observed exchange error
		_ = nc.Close()
		return wire.Response{}, err
	}
	c.release(nc)
	return resp, nil
}

func (c *Client) exchange(nc net.Conn, req wire.Request) (wire.Response, error) {
	corr := c.corr.Add(1)
	if err := nc.SetDeadline(c.opt.Clock.Now().Add(c.opt.CallTimeout)); err != nil {
		return wire.Response{}, fmt.Errorf("%w: deadline: %v", ErrUnreachable, err)
	}
	if err := wire.WriteFrame(nc, wire.Frame{Type: wire.TypeRequest, CorrID: corr, Payload: wire.EncodeRequest(req)}); err != nil {
		return wire.Response{}, c.connErr("write", err)
	}
	f, err := wire.ReadFrame(nc)
	if err != nil {
		return wire.Response{}, c.connErr("read", err)
	}
	if f.Type != wire.TypeResponse || f.CorrID != corr {
		return wire.Response{}, fmt.Errorf("%w: %s: stream desynchronized (frame type %d, corr %d != %d)",
			ErrUnreachable, c.addr, f.Type, f.CorrID, corr)
	}
	resp, err := wire.DecodeResponse(f.Payload)
	if err != nil {
		return wire.Response{}, fmt.Errorf("%w: %s: %v", ErrUnreachable, c.addr, err)
	}
	return resp, nil
}

// connErr classifies an I/O failure, emitting rpc.timeout for a
// missed deadline.
func (c *Client) connErr(op string, err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		c.emit(obs.Event{Kind: obs.KindRPCTimeout, Note: op + " " + c.addr})
	}
	return fmt.Errorf("%w: %s %s: %v", ErrUnreachable, op, c.addr, err)
}

// Do sends one request, retrying transient failures (connection-level
// errors and StatusRetry verdicts) with capped exponential backoff and
// jitter. The returned response never has StatusRetry; exhausting the
// budget on transient failures yields an error wrapping ErrBusy (all
// verdicts were StatusRetry) or transport.ErrUnreachable (the last
// failure was below the reply).
func (c *Client) Do(req wire.Request) (wire.Response, error) {
	var last error
	for attempt := 1; ; attempt++ {
		resp, err := c.attempt(req)
		if err == nil && resp.Status != wire.StatusRetry {
			return resp, nil
		}
		if err != nil {
			last = err
		} else {
			last = fmt.Errorf("%w: %s", ErrBusy, resp.Err)
		}
		if attempt >= c.opt.MaxAttempts {
			return wire.Response{}, last
		}
		c.emit(obs.Event{Kind: obs.KindRPCRetry, Code: uint8(attempt), Note: last.Error()})
		c.opt.Clock.Sleep(c.backoff(attempt))
	}
}

// backoff returns the pause after the n-th failed attempt (n ≥ 1):
// BaseBackoff doubling per failure, capped at MaxBackoff, jittered
// uniformly into [d/2, d] so synchronized clients spread out without
// ever retrying immediately.
func (c *Client) backoff(n int) time.Duration {
	d := c.opt.BaseBackoff
	for i := 1; i < n && d < c.opt.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.opt.MaxBackoff {
		d = c.opt.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(c.opt.Rand.Int63n(int64(half)+1))
}

// remoteErr maps a non-OK verdict to an error wrapping wire.ErrRemote.
// A wrong-shard refusal maps to a WrongShardError (wrapping
// transport.ErrWrongShard) carrying the refusing server's routing
// table, so the routed layer re-routes without a second round trip.
func remoteErr(resp wire.Response) error {
	if resp.Status == wire.StatusOK {
		return nil
	}
	if resp.Status == wire.StatusWrongShard {
		return &WrongShardError{Msg: resp.Err, TableBytes: resp.Result}
	}
	return fmt.Errorf("%w: %s: %s", wire.ErrRemote, resp.Status, resp.Err)
}

// Ping checks the server is reachable and serving.
func (c *Client) Ping() error {
	resp, err := c.Do(wire.Request{Op: wire.OpPing})
	if err != nil {
		return err
	}
	return remoteErr(resp)
}

// Invoke calls a handler as a complete server-side atomic action and
// returns its result.
func (c *Client) Invoke(handler string, arg value.Value) (value.Value, error) {
	return c.invoke(0, ids.ActionID{}, handler, arg)
}

// InvokeJoin calls a handler as a subaction of the caller's action
// aid; the server's guardian joins the action and stays a participant
// for its two-phase commit.
func (c *Client) InvokeJoin(aid ids.ActionID, handler string, arg value.Value) (value.Value, error) {
	return c.invoke(0, aid, handler, arg)
}

func (c *Client) invoke(sh uint32, aid ids.ActionID, handler string, arg value.Value) (value.Value, error) {
	req := wire.Request{Op: wire.OpInvoke, AID: aid, Shard: sh, Handler: handler}
	if arg != nil {
		req.Arg = value.Flatten(arg, func(value.Obj) {})
	}
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	if err := remoteErr(resp); err != nil {
		return nil, err
	}
	if len(resp.Result) == 0 {
		return nil, nil
	}
	v, err := value.Unflatten(resp.Result)
	if err != nil {
		return nil, fmt.Errorf("client: result: %w", err)
	}
	return v, nil
}

// Prepare delivers a prepare message for aid and returns the vote.
func (c *Client) Prepare(aid ids.ActionID) (twopc.Vote, error) {
	return c.PrepareShard(0, aid)
}

// PrepareShard is Prepare addressed to a shard's guardian.
func (c *Client) PrepareShard(sh uint32, aid ids.ActionID) (twopc.Vote, error) {
	resp, err := c.Do(wire.Request{Op: wire.OpPrepare, AID: aid, Shard: sh})
	if err != nil {
		return 0, err
	}
	if err := remoteErr(resp); err != nil {
		return 0, err
	}
	return twopc.Vote(resp.Vote), nil
}

// Commit delivers a commit message for aid.
func (c *Client) Commit(aid ids.ActionID) error {
	return c.CommitShard(0, aid)
}

// CommitShard is Commit addressed to a shard's guardian.
func (c *Client) CommitShard(sh uint32, aid ids.ActionID) error {
	resp, err := c.Do(wire.Request{Op: wire.OpCommit, AID: aid, Shard: sh})
	if err != nil {
		return err
	}
	return remoteErr(resp)
}

// Abort delivers an abort message for aid.
func (c *Client) Abort(aid ids.ActionID) error {
	return c.AbortShard(0, aid)
}

// AbortShard is Abort addressed to a shard's guardian.
func (c *Client) AbortShard(sh uint32, aid ids.ActionID) error {
	resp, err := c.Do(wire.Request{Op: wire.OpAbort, AID: aid, Shard: sh})
	if err != nil {
		return err
	}
	return remoteErr(resp)
}

// Outcome asks the server's guardian, as coordinator of aid, for the
// action's fate.
func (c *Client) Outcome(aid ids.ActionID) (twopc.Outcome, error) {
	return c.OutcomeShard(0, aid)
}

// OutcomeShard is Outcome addressed to a shard's guardian.
func (c *Client) OutcomeShard(sh uint32, aid ids.ActionID) (twopc.Outcome, error) {
	resp, err := c.Do(wire.Request{Op: wire.OpOutcome, AID: aid, Shard: sh})
	if err != nil {
		return twopc.OutcomeUnknown, err
	}
	if err := remoteErr(resp); err != nil {
		return twopc.OutcomeUnknown, err
	}
	return twopc.Outcome(resp.Outcome), nil
}
