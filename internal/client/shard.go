package client

// Shard-addressed calls. Every request carries a shard id; the server
// dispatches it to the owning guardian in its registry and refuses
// with StatusWrongShard — carrying its routing table in-band — when it
// does not host the shard. Shard zero is the default guardian, which
// keeps every pre-sharding call site working unchanged.

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/twopc"
	"repro/internal/value"
	"repro/internal/wire"
)

// WrongShardError is the client-side form of a StatusWrongShard
// refusal. It wraps transport.ErrWrongShard (so errors.Is matches) and
// carries the refusing server's routing-table encoding, letting the
// routed layer refresh its view without a second round trip.
type WrongShardError struct {
	// Msg is the server's human-readable refusal.
	Msg string
	// TableBytes is the refusing server's shard.Table encoding.
	TableBytes []byte
}

// Error implements error.
func (e *WrongShardError) Error() string {
	return fmt.Sprintf("%v: %s", transport.ErrWrongShard, e.Msg)
}

// Unwrap makes errors.Is(err, transport.ErrWrongShard) hold.
func (e *WrongShardError) Unwrap() error { return transport.ErrWrongShard }

// Table decodes the refusing server's routing table.
func (e *WrongShardError) Table() (shard.Table, error) {
	return shard.Decode(e.TableBytes)
}

// InvokeShard is Invoke addressed to a shard's guardian.
func (c *Client) InvokeShard(sh uint32, handler string, arg value.Value) (value.Value, error) {
	return c.invoke(sh, ids.ActionID{}, handler, arg)
}

// InvokeJoinShard is InvokeJoin addressed to a shard's guardian.
func (c *Client) InvokeJoinShard(sh uint32, aid ids.ActionID, handler string, arg value.Value) (value.Value, error) {
	return c.invoke(sh, aid, handler, arg)
}

// Begin asks a shard's guardian to mint a live top-level action and
// returns its id. The guardian stays the action's coordinator of
// record: Committing and Done store its 2PC decisions, and in-doubt
// participants resolve through OutcomeShard against it.
func (c *Client) Begin(sh uint32) (ids.ActionID, error) {
	resp, err := c.Do(wire.Request{Op: wire.OpBegin, Shard: sh})
	if err != nil {
		return ids.ActionID{}, err
	}
	if err := remoteErr(resp); err != nil {
		return ids.ActionID{}, err
	}
	aid, err := wire.DecodeActionID(resp.Result)
	if err != nil {
		return ids.ActionID{}, fmt.Errorf("client: begin: %w", err)
	}
	return aid, nil
}

// Committing asks the coordinating shard's guardian to force aid's
// committing record — the 2PC point of no return — naming the
// prepared participants.
func (c *Client) Committing(sh uint32, aid ids.ActionID, gids []ids.GuardianID) error {
	resp, err := c.Do(wire.Request{
		Op: wire.OpCommitting, AID: aid, Shard: sh,
		Arg: wire.EncodeGuardianIDs(gids),
	})
	if err != nil {
		return err
	}
	return remoteErr(resp)
}

// Done asks the coordinating shard's guardian to record that every
// participant learned aid's outcome, releasing the committing record.
func (c *Client) Done(sh uint32, aid ids.ActionID) error {
	resp, err := c.Do(wire.Request{Op: wire.OpDone, AID: aid, Shard: sh})
	if err != nil {
		return err
	}
	return remoteErr(resp)
}

// Route fetches the server's routing table.
func (c *Client) Route() (shard.Table, error) {
	resp, err := c.Do(wire.Request{Op: wire.OpRoute})
	if err != nil {
		return shard.Table{}, err
	}
	if err := remoteErr(resp); err != nil {
		return shard.Table{}, err
	}
	t, err := shard.Decode(resp.Result)
	if err != nil {
		return shard.Table{}, fmt.Errorf("client: route: %w", err)
	}
	return t, nil
}

// RouteInstall offers the server a routing table. The server installs
// it only when strictly newer than its own and answers its current
// table either way.
func (c *Client) RouteInstall(t shard.Table) (shard.Table, error) {
	resp, err := c.Do(wire.Request{Op: wire.OpRouteInstall, Arg: t.Encode()})
	if err != nil {
		return shard.Table{}, err
	}
	if err := remoteErr(resp); err != nil {
		return shard.Table{}, err
	}
	cur, err := shard.Decode(resp.Result)
	if err != nil {
		return shard.Table{}, fmt.Errorf("client: route install: %w", err)
	}
	return cur, nil
}

// Handoff asks the server to transfer a hosted shard to the node at
// target, returning the version-bumped routing table it published.
func (c *Client) Handoff(sh uint32, target string) (shard.Table, error) {
	resp, err := c.Do(wire.Request{
		Op:  wire.OpHandoff,
		Arg: wire.EncodeHandoffReq(wire.HandoffReq{Shard: sh, Target: target}),
	})
	if err != nil {
		return shard.Table{}, err
	}
	if err := remoteErr(resp); err != nil {
		return shard.Table{}, err
	}
	t, err := shard.Decode(resp.Result)
	if err != nil {
		return shard.Table{}, fmt.Errorf("client: handoff: %w", err)
	}
	return t, nil
}

// HandoffInstall ships one handoff chunk to the receiving server.
func (c *Client) HandoffInstall(hf wire.HandoffFrames) (wire.RepAck, error) {
	resp, err := c.Do(wire.Request{
		Op:  wire.OpHandoffInstall,
		Arg: wire.EncodeHandoffFrames(hf),
	})
	if err != nil {
		return wire.RepAck{}, err
	}
	if err := remoteErr(resp); err != nil {
		return wire.RepAck{}, err
	}
	ack, err := wire.DecodeRepAck(resp.Result)
	if err != nil {
		return wire.RepAck{}, fmt.Errorf("client: handoff install: %w", err)
	}
	return ack, nil
}

// CoordLog returns a twopc.CoordinatorLog that stores the committing
// and done records at a shard's guardian through this client — the
// stable half of a client-driven coordinator.
func (c *Client) CoordLog(sh uint32) twopc.CoordinatorLog {
	return &remoteCoordLog{c: c, sh: sh}
}

var _ twopc.CoordinatorLog = (*remoteCoordLog)(nil)

// remoteCoordLog stores a client-driven coordinator's 2PC decisions in
// the coordinating shard's guardian, so the committing record survives
// the client and in-doubt participants can resolve against the shard.
type remoteCoordLog struct {
	c  *Client
	sh uint32
}

// Committing implements twopc.CoordinatorLog over the wire.
func (l *remoteCoordLog) Committing(aid ids.ActionID, gids []ids.GuardianID) error {
	return l.c.Committing(l.sh, aid, gids)
}

// Done implements twopc.CoordinatorLog over the wire.
func (l *remoteCoordLog) Done(aid ids.ActionID) error {
	return l.c.Done(l.sh, aid)
}
