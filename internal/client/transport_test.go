package client

// The TCP partition matrix: the same five scenarios the netsim-backed
// matrix runs in internal/twopc/partition_test.go, executed over real
// loopback servers through the client Transport — asserting the SAME
// message sequences. This is the Transport unification's proof: the
// two-phase-commit engine cannot tell the simulated network from TCP.

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/twopc"
	"repro/internal/value"
)

// mockLog records the coordinator's stable records; atCommitting runs
// a hook at the only coordinator-local step between the phases (where
// the netsim matrix injects its mid-protocol partitions).
type mockLog struct {
	committing   []ids.ActionID
	done         []ids.ActionID
	atCommitting func()
}

func (m *mockLog) Committing(aid ids.ActionID, gids []ids.GuardianID) error {
	if m.atCommitting != nil {
		m.atCommitting()
	}
	m.committing = append(m.committing, aid)
	return nil
}

func (m *mockLog) Done(aid ids.ActionID) error {
	m.done = append(m.done, aid)
	return nil
}

// sig renders one event as the same compact signature the netsim
// matrix asserts, plus "retry" for the client's rpc.retry events
// (which the simulation has no counterpart for).
func sig(e obs.Event) string {
	voteName := map[uint8]string{
		obs.VotePrepared: "prepared",
		obs.VoteAborted:  "aborted",
		obs.VoteReadOnly: "read-only",
	}
	outcomeName := map[uint8]string{
		obs.TwoPCCommitted: "committed",
		obs.TwoPCAborted:   "aborted",
	}
	switch e.Kind {
	case obs.KindNetCall:
		if e.OK {
			return fmt.Sprintf("call %d->%d", e.From, e.To)
		}
		return fmt.Sprintf("call %d->%d refused", e.From, e.To)
	case obs.KindTwoPCPrepare:
		return fmt.Sprintf("prepare %d->%d", e.From, e.To)
	case obs.KindTwoPCVote:
		if !e.OK {
			return fmt.Sprintf("vote %d->%d lost", e.From, e.To)
		}
		return fmt.Sprintf("vote %d->%d %s", e.From, e.To, voteName[e.Code])
	case obs.KindTwoPCOutcome:
		return fmt.Sprintf("outcome %s", outcomeName[e.Code])
	case obs.KindRPCRetry:
		return "retry"
	default:
		return fmt.Sprintf("unexpected %v", e.Kind)
	}
}

func assertSeq(t *testing.T, rec *obs.Recorder, want []string) {
	t.Helper()
	events := rec.Events()
	got := make([]string, len(events))
	for i, e := range events {
		got[i] = sig(e)
	}
	n := len(got)
	if len(want) > n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		var g, w string
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			t.Fatalf("message %d = %q, want %q\nfull sequence: %q", i, g, w, got)
		}
	}
}

// participantServer is one real served guardian with an incr/get
// counter, plus the client reaching it.
type participantServer struct {
	g *guardian.Guardian
	s *server.Server
	c *Client
}

func startParticipant(t *testing.T, id ids.GuardianID) *participantServer {
	t.Helper()
	g, err := guardian.New(id)
	if err != nil {
		t.Fatal(err)
	}
	boot := g.Begin()
	counter, err := boot.NewAtomic(value.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.SetVar("counter", counter); err != nil {
		t.Fatal(err)
	}
	if err := boot.Commit(); err != nil {
		t.Fatal(err)
	}
	g.RegisterHandler("incr", func(sub *guardian.Sub, arg value.Value) (value.Value, error) {
		c, _ := g.VarAtomic("counter")
		if err := sub.Update(c, func(cur value.Value) value.Value {
			return value.Int(int64(cur.(value.Int)) + int64(arg.(value.Int)))
		}); err != nil {
			return nil, err
		}
		return sub.Read(c)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(g, server.Config{})
	go func() {
		if err := s.Serve(ln); !errors.Is(err, server.ErrClosed) {
			t.Errorf("Serve: %v", err)
		}
	}()
	c := New(ln.Addr().String(), Options{
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	})
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return &participantServer{g: g, s: s, c: c}
}

// tcpFixture assembles the matrix fixture: coordinator guardian 1
// (mock log, no server needed) and served participants 2 and 3, with
// the action already joined at both so they vote prepared.
func tcpFixture(t *testing.T) (*twopc.Coordinator, *mockLog, *Transport, []*participantServer, []twopc.Participant, *obs.Recorder, ids.ActionID) {
	t.Helper()
	p2 := startParticipant(t, 2)
	p3 := startParticipant(t, 3)
	tp := NewTransport()
	tp.Register(2, p2.c)
	tp.Register(3, p3.c)
	rec := &obs.Recorder{}
	clog := &mockLog{}
	c := &twopc.Coordinator{Self: 1, Net: tp, Log: clog, Tracer: rec}
	aid := ids.ActionID{Coordinator: 1, Seq: 7}
	// The work phase: both participants join the action over the wire.
	if _, err := p2.c.InvokeJoin(aid, "incr", value.Int(20)); err != nil {
		t.Fatal(err)
	}
	if _, err := p3.c.InvokeJoin(aid, "incr", value.Int(30)); err != nil {
		t.Fatal(err)
	}
	tp.SetTracer(rec)
	parts := []twopc.Participant{
		&RemoteParticipant{ID: 2, C: p2.c},
		&RemoteParticipant{ID: 3, C: p3.c},
	}
	return c, clog, tp, []*participantServer{p2, p3}, parts, rec, aid
}

func counterOf(t *testing.T, g *guardian.Guardian) int64 {
	t.Helper()
	c, ok := g.VarAtomic("counter")
	if !ok {
		t.Fatal("no counter var")
	}
	return int64(c.Base().(value.Int))
}

// The committed baseline: no partition, full protocol, both servers
// install their versions.
func TestTCPCommitBaseline(t *testing.T) {
	c, clog, _, ps, parts, rec, aid := tcpFixture(t)
	res, err := c.Run(aid, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != twopc.OutcomeCommitted || !res.Done {
		t.Fatalf("result = %+v", res)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2",
		"vote 2->1 prepared",
		"prepare 1->3",
		"call 1->3",
		"vote 3->1 prepared",
		"outcome committed",
		"call 1->2",
		"call 1->3",
	})
	if len(clog.committing) != 1 || len(clog.done) != 1 {
		t.Fatalf("coordinator records: %d committing, %d done", len(clog.committing), len(clog.done))
	}
	if got := counterOf(t, ps[0].g); got != 20 {
		t.Fatalf("participant 2 counter %d, want 20", got)
	}
	if got := counterOf(t, ps[1].g); got != 30 {
		t.Fatalf("participant 3 counter %d, want 30", got)
	}
	for _, p := range ps {
		if live := p.g.LiveActions(); len(live) != 0 {
			t.Fatalf("live actions after commit: %v", live)
		}
	}
}

// Coordinator down before phase one (netsim twin:
// TestPartitionCoordinatorDownPrePrepare).
func TestTCPCoordinatorDownPrePrepare(t *testing.T) {
	c, clog, tp, ps, parts, rec, aid := tcpFixture(t)
	tp.SetDown(1, true)
	_, err := c.Run(aid, parts)
	if !errors.Is(err, twopc.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2 refused",
		"vote 2->1 lost",
		"outcome aborted",
	})
	if len(clog.committing) != 0 {
		t.Fatal("committing record written by a down coordinator")
	}
	// Neither server heard anything: the joined actions are still live.
	for _, p := range ps {
		if live := p.g.LiveActions(); len(live) != 1 {
			t.Fatalf("live = %v, want the joined action", live)
		}
	}
}

// Coordinator down after the votes (netsim twin:
// TestPartitionCoordinatorDownPostPrepare): committed but not done;
// restart and Complete re-drives phase two.
func TestTCPCoordinatorDownPostPrepare(t *testing.T) {
	c, clog, tp, ps, parts, rec, aid := tcpFixture(t)
	clog.atCommitting = func() { tp.SetDown(1, true) }
	res, err := c.Run(aid, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != twopc.OutcomeCommitted || res.Done {
		t.Fatalf("result = %+v, want committed and not done", res)
	}
	if len(res.Unresponsive) != 2 {
		t.Fatalf("unresponsive = %v, want both participants", res.Unresponsive)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2",
		"vote 2->1 prepared",
		"prepare 1->3",
		"call 1->3",
		"vote 3->1 prepared",
		"outcome committed",
		"call 1->2 refused",
		"call 1->3 refused",
	})
	if len(clog.done) != 0 {
		t.Fatal("done record written with both participants unreached")
	}
	// Neither participant installed: the counters still read 0.
	if counterOf(t, ps[0].g) != 0 || counterOf(t, ps[1].g) != 0 {
		t.Fatal("a participant installed before its commit message")
	}
	// The coordinator restarts; Complete re-drives phase two.
	tp.SetDown(1, false)
	rec.Reset()
	res2, err := c.Complete(aid, parts)
	if err != nil || !res2.Done {
		t.Fatalf("complete = %+v, %v", res2, err)
	}
	assertSeq(t, rec, []string{"call 1->2", "call 1->3"})
	if counterOf(t, ps[0].g) != 20 || counterOf(t, ps[1].g) != 30 {
		t.Fatalf("counters %d/%d after re-drive, want 20/30",
			counterOf(t, ps[0].g), counterOf(t, ps[1].g))
	}
	if len(clog.done) != 1 {
		t.Fatal("done record missing after re-drive")
	}
}

// A participant marked down (netsim twin: TestPartitionParticipantDown):
// unilateral abort, and the prepared participant hears it.
func TestTCPParticipantDown(t *testing.T) {
	c, clog, tp, ps, parts, rec, aid := tcpFixture(t)
	tp.SetDown(3, true)
	_, err := c.Run(aid, parts)
	if !errors.Is(err, twopc.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2",
		"vote 2->1 prepared",
		"prepare 1->3",
		"call 1->3 refused",
		"vote 3->1 lost",
		"outcome aborted",
		"call 1->2", // abort notification to the prepared participant
	})
	if len(clog.committing) != 0 {
		t.Fatal("committing record written despite a down participant")
	}
	// Participant 2 heard the abort: action gone, counter untouched.
	if live := ps[0].g.LiveActions(); len(live) != 0 {
		t.Fatalf("participant 2 live = %v after abort", live)
	}
	if counterOf(t, ps[0].g) != 0 {
		t.Fatal("aborted work visible at participant 2")
	}
	// Participant 3 heard nothing: its joined action is still live.
	if live := ps[1].g.LiveActions(); len(live) != 1 {
		t.Fatalf("participant 3 live = %v, want the joined action", live)
	}
}

// Link cut before phase one (netsim twin:
// TestPartitionLinkCutPrePrepare).
func TestTCPLinkCutPrePrepare(t *testing.T) {
	c, clog, tp, ps, parts, rec, aid := tcpFixture(t)
	tp.Cut(1, 2, true)
	_, err := c.Run(aid, parts)
	if !errors.Is(err, twopc.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2 refused",
		"vote 2->1 lost",
		"outcome aborted",
	})
	if len(clog.committing) != 0 {
		t.Fatal("committing record written across a cut link")
	}
	// Participant 3 was never contacted after the abort decision.
	if live := ps[1].g.LiveActions(); len(live) != 1 {
		t.Fatalf("participant 3 live = %v, want untouched join", live)
	}
}

// Link cut after the votes (netsim twin:
// TestPartitionLinkCutPostPrepare): the cut-off participant misses
// phase two; healing and re-driving completes the action everywhere.
func TestTCPLinkCutPostPrepare(t *testing.T) {
	c, clog, tp, ps, parts, rec, aid := tcpFixture(t)
	clog.atCommitting = func() { tp.Cut(1, 2, true) }
	res, err := c.Run(aid, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != twopc.OutcomeCommitted || res.Done {
		t.Fatalf("result = %+v, want committed and not done", res)
	}
	if len(res.Unresponsive) != 1 || res.Unresponsive[0] != 2 {
		t.Fatalf("unresponsive = %v, want [2]", res.Unresponsive)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2",
		"vote 2->1 prepared",
		"prepare 1->3",
		"call 1->3",
		"vote 3->1 prepared",
		"outcome committed",
		"call 1->2 refused",
		"call 1->3",
	})
	if counterOf(t, ps[1].g) != 30 {
		t.Fatal("reachable participant did not install its commit")
	}
	if counterOf(t, ps[0].g) != 0 {
		t.Fatal("cut-off participant installed without its commit message")
	}
	// The partition heals; re-driving phase two reaches the straggler.
	tp.Cut(1, 2, false)
	rec.Reset()
	res2, err := c.Complete(aid, parts)
	if err != nil || !res2.Done {
		t.Fatalf("complete = %+v, %v", res2, err)
	}
	assertSeq(t, rec, []string{"call 1->2", "call 1->3"})
	if counterOf(t, ps[0].g) != 20 {
		t.Fatal("straggler still missing its commit after the link healed")
	}
	if len(clog.done) != 1 {
		t.Fatal("done record missing after completion")
	}
}

// The failure mode netsim cannot model: the server really is gone, so
// the call is delivered to the transport but dies below the reply. The
// client retries, exhausts its budget, and the coordinator records a
// lost vote — same protocol outcome, one extra "retry" in the trace.
func TestTCPRealServerDownVoteLost(t *testing.T) {
	c, clog, tp, ps, parts, rec, aid := tcpFixture(t)
	// Route the client's retry events into the same recorder, then
	// actually stop server 3.
	ps[1].c.opt.Tracer = rec
	if err := ps[1].s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := c.Run(aid, parts)
	if !errors.Is(err, twopc.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2",
		"vote 2->1 prepared",
		"prepare 1->3",
		"call 1->3",      // delivered to the transport...
		"retry",          // ...but the exchange dies; the client retries...
		"vote 3->1 lost", // ...and exhausts its budget
		"outcome aborted",
		"call 1->2",
	})
	if len(clog.committing) != 0 {
		t.Fatal("committing record written with a dead participant")
	}
	if live := ps[0].g.LiveActions(); len(live) != 0 {
		t.Fatalf("participant 2 live = %v after abort", live)
	}
	_ = tp
}

// TestTCPOutcomeQuery: a prepared participant's completion query
// through the RemoteCoordinator stub (here aimed at participant 2's
// own server, acting as coordinator of an action it never saw:
// presumed abort).
func TestTCPOutcomeQuery(t *testing.T) {
	_, _, tp, ps, _, _, _ := tcpFixture(t)
	rc := &RemoteCoordinator{ID: 2, C: ps[0].c}
	out, err := twopc.Query(tp, 3, rc, ids.ActionID{Coordinator: 2, Seq: 424242})
	if err != nil {
		t.Fatal(err)
	}
	if out != twopc.OutcomeAborted {
		t.Fatalf("outcome %v, want aborted (presumed)", out)
	}
}
