package client

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/shard"
	"repro/internal/twopc"
	"repro/internal/value"
)

// Txn is a client-driven cross-shard atomic action. Begin picks the
// coordinator shard (the owner of the first key) and asks its guardian
// to mint the action; each Invoke joins the owning shard's guardian as
// a participant; Commit drives the standard two-phase commit through
// twopc.Coordinator over the routed transport, with the coordinator
// shard's guardian storing the committing and done records — so the
// decision survives this client, and an in-doubt participant resolves
// through the coordinator shard exactly as in the single-node protocol
// (§2.2.2; the ActionID's Coordinator field names that guardian).
//
// Not safe for concurrent use; one Txn is one action's serial history.
type Txn struct {
	r   *Routed
	aid ids.ActionID
	// coord is the coordinator shard's id.
	coord shard.ID

	mu sync.Mutex
	// parts maps each joined shard to the address serving it at join
	// time. A joined shard cannot move before the action finishes — the
	// handoff path drains live actions first — so these stay valid for
	// the commit.
	parts map[shard.ID]string
	done  bool
}

// Begin starts a cross-shard action coordinated by the shard owning
// key (pass the first key the transaction will touch).
func (r *Routed) Begin(key string) (*Txn, error) {
	var t *Txn
	err := r.call(key, func(c *Client, sh uint32) error {
		aid, err := c.Begin(sh)
		if err != nil {
			return err
		}
		t = &Txn{
			r:     r,
			aid:   aid,
			coord: shard.ID(sh),
			parts: map[shard.ID]string{shard.ID(sh): c.Addr()},
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// AID returns the action's id.
func (t *Txn) AID() ids.ActionID { return t.aid }

// Invoke calls a handler on the shard owning key as a subaction of
// this action; the shard's guardian joins as a 2PC participant. The
// wrong-shard retry is safe here too: a refusal happens before the
// server dispatches to any guardian, so the join never half-happened.
func (t *Txn) Invoke(key, handler string, arg value.Value) (value.Value, error) {
	if t.finished() {
		return nil, fmt.Errorf("client: txn %v already finished", t.aid)
	}
	var out value.Value
	err := t.r.call(key, func(c *Client, sh uint32) error {
		v, err := c.InvokeJoinShard(sh, t.aid, handler, arg)
		if err != nil {
			return err
		}
		t.mu.Lock()
		t.parts[shard.ID(sh)] = c.Addr()
		t.mu.Unlock()
		out = v
		return nil
	})
	return out, err
}

func (t *Txn) finished() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// participants snapshots the joined shards in ascending shard order —
// a deterministic prepare order, like the simulated coordinator's
// sorted participant list.
func (t *Txn) participants() []twopc.Participant {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids2 := make([]shard.ID, 0, len(t.parts))
	//roslint:nondet draining the participant set; sorted below before use
	for id := range t.parts {
		ids2 = append(ids2, id)
	}
	sort.Slice(ids2, func(i, j int) bool { return ids2[i] < ids2[j] })
	out := make([]twopc.Participant, 0, len(ids2))
	for _, id := range ids2 {
		out = append(out, &RemoteParticipant{
			ID:    ids.GuardianID(id),
			Shard: uint32(id),
			C:     t.r.client(t.parts[id]),
		})
	}
	return out
}

// Commit runs two-phase commit across every joined shard and returns
// the coordinator's result. The committing record — the point of no
// return — is forced at the coordinator shard's guardian before any
// commit message goes out, so a crash between those steps leaves a
// record that answers in-doubt queries with "committed".
func (t *Txn) Commit() (twopc.Result, error) {
	if t.finished() {
		return twopc.Result{}, fmt.Errorf("client: txn %v already finished", t.aid)
	}
	t.mu.Lock()
	t.done = true
	coordAddr := t.parts[t.coord]
	t.mu.Unlock()
	co := twopc.Coordinator{
		Self:   ids.GuardianID(t.coord),
		Net:    t.r.tp,
		Log:    t.r.client(coordAddr).CoordLog(uint32(t.coord)),
		Tracer: t.r.opt.Tracer,
	}
	return co.Run(t.aid, t.participants())
}

// Complete re-drives phase two for a decided action — after a Commit
// whose Result listed unresponsive participants, call Complete once
// they are reachable again to deliver the remaining commit messages
// and retire the coordinator's committing record.
func (t *Txn) Complete() (twopc.Result, error) {
	t.mu.Lock()
	coordAddr := t.parts[t.coord]
	t.mu.Unlock()
	co := twopc.Coordinator{
		Self:   ids.GuardianID(t.coord),
		Net:    t.r.tp,
		Log:    t.r.client(coordAddr).CoordLog(uint32(t.coord)),
		Tracer: t.r.opt.Tracer,
	}
	return co.Complete(t.aid, t.participants())
}

// Abort abandons the action, delivering best-effort aborts to every
// joined shard. Safe to call after a failed Commit attempt: abort of
// an already-decided action is a no-op at each guardian.
func (t *Txn) Abort() error {
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
	var first error
	for _, p := range t.participants() {
		rp := p.(*RemoteParticipant)
		if err := rp.C.AbortShard(rp.Shard, t.aid); err != nil && first == nil {
			first = err
		}
	}
	return first
}
