package client

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/replog"
	"repro/internal/wire"
)

// Replication and introspection calls. The rep.* requests are
// idempotent by construction — a re-sent append whose first delivery
// was applied is refused in-band (the ack's durable offset names the
// actual tail) and the primary adjusts its cursor — so the client's
// ordinary retry loop is safe for them.

// repCall sends one rep.* request and decodes the ack.
func (c *Client) repCall(op wire.Op, arg []byte) (wire.RepAck, error) {
	resp, err := c.Do(wire.Request{Op: op, Arg: arg})
	if err != nil {
		return wire.RepAck{}, err
	}
	if err := remoteErr(resp); err != nil {
		return wire.RepAck{}, err
	}
	ack, err := wire.DecodeRepAck(resp.Result)
	if err != nil {
		return wire.RepAck{}, fmt.Errorf("client: rep ack: %w", err)
	}
	return ack, nil
}

// RepAppend ships a frame run to the server's hosted backup.
func (c *Client) RepAppend(app wire.RepAppend) (wire.RepAck, error) {
	return c.repCall(wire.OpRepAppend, wire.EncodeRepAppend(app))
}

// RepHeartbeat probes the server's hosted backup.
func (c *Client) RepHeartbeat(hb wire.RepHeartbeat) (wire.RepAck, error) {
	return c.repCall(wire.OpRepHeartbeat, wire.EncodeRepHeartbeat(hb))
}

// RepSnapshot offers the server's hosted backup a snapshot reset.
func (c *Client) RepSnapshot(snap wire.RepSnapshot) (wire.RepAck, error) {
	return c.repCall(wire.OpRepSnapshot, wire.EncodeRepSnapshot(snap))
}

// Status reports the server's replication role and health plus one
// row per hosted shard.
func (c *Client) Status() (wire.StatusReport, error) {
	resp, err := c.Do(wire.Request{Op: wire.OpStatus})
	if err != nil {
		return wire.StatusReport{}, err
	}
	if err := remoteErr(resp); err != nil {
		return wire.StatusReport{}, err
	}
	st, err := wire.DecodeStatusReport(resp.Result)
	if err != nil {
		return wire.StatusReport{}, fmt.Errorf("client: status: %w", err)
	}
	return st, nil
}

// Promote tells the server's hosted backup to take over as the
// guardian unconditionally and returns the post-takeover status.
// Idempotent. Prefer PromoteMin during a failover: it refuses a
// candidate whose received prefix is shorter than the deposed
// primary's last quorum-acked boundary.
func (c *Client) Promote() (wire.RepStatus, error) {
	return c.promote(nil)
}

// PromoteMin is Promote with a safety floor: the server refuses the
// takeover when the backup's durable log prefix is below minDurable
// bytes. Operators pass the deposed primary's last quorum-acked
// boundary (Status().QuorumBytes), so an acknowledged commit that
// lives only on a longer, currently unreachable copy cannot be
// silently dropped by promoting the wrong survivor.
func (c *Client) PromoteMin(minDurable uint64) (wire.RepStatus, error) {
	return c.promote(wire.EncodeRepPromote(wire.RepPromote{MinDurable: minDurable}))
}

func (c *Client) promote(arg []byte) (wire.RepStatus, error) {
	resp, err := c.Do(wire.Request{Op: wire.OpPromote, Arg: arg})
	if err != nil {
		return wire.RepStatus{}, err
	}
	if err := remoteErr(resp); err != nil {
		return wire.RepStatus{}, err
	}
	st, err := wire.DecodeRepStatus(resp.Result)
	if err != nil {
		return wire.RepStatus{}, fmt.Errorf("client: promote: %w", err)
	}
	return st, nil
}

// RemoteReplica is a client-side stub presenting a rosd server's
// hosted backup as a replog.Replica: the primary's shipping calls
// become wire requests, exactly as RemoteParticipant does for 2PC.
// Wired together with the client Transport, a replog.Primary runs the
// identical replication protocol over loopback TCP that it runs over
// the deterministic simulation.
type RemoteReplica struct {
	// ID is the remote backup's id.
	ReplicaID ids.GuardianID
	// C is the client reaching the backup's server.
	C *Client
}

var _ replog.Replica = (*RemoteReplica)(nil)

// ID implements replog.Replica.
func (r *RemoteReplica) ID() ids.GuardianID { return r.ReplicaID }

// Append implements replog.Replica over the wire.
func (r *RemoteReplica) Append(app wire.RepAppend) (wire.RepAck, error) {
	return r.C.RepAppend(app)
}

// Heartbeat implements replog.Replica over the wire.
func (r *RemoteReplica) Heartbeat(hb wire.RepHeartbeat) (wire.RepAck, error) {
	return r.C.RepHeartbeat(hb)
}

// Snapshot implements replog.Replica over the wire.
func (r *RemoteReplica) Snapshot(snap wire.RepSnapshot) (wire.RepAck, error) {
	return r.C.RepSnapshot(snap)
}

// Replica returns a replog.Replica that ships to gid's server through
// this transport's registered client.
func (t *Transport) Replica(gid ids.GuardianID) (*RemoteReplica, error) {
	c := t.Peer(gid)
	if c == nil {
		return nil, fmt.Errorf("client: no peer registered for %v", gid)
	}
	return &RemoteReplica{ReplicaID: gid, C: c}, nil
}
