package client

import (
	"math/rand"
	"sync"
	"time"
)

// Clock is the client's only source of time: retry backoff sleeps and
// per-attempt I/O deadlines both go through it. The crash sweeps and
// the backoff unit tests inject a fake; production uses SystemClock.
type Clock interface {
	// Now returns the current time (the base for I/O deadlines).
	Now() time.Time
	// Sleep pauses the calling goroutine for d.
	Sleep(d time.Duration)
}

// Rand is the client's only source of randomness: it supplies the
// backoff jitter. Tests inject a fixed sequence; production uses
// SystemRand.
type Rand interface {
	// Int63n returns a uniform value in [0, n). n must be > 0.
	Int63n(n int64) int64
}

// SystemClock is the production Clock.
type SystemClock struct{}

// Now returns the wall-clock time.
//
//roslint:nondet serving real traffic runs on the wall clock; determinism-sensitive callers inject a fake Clock
func (SystemClock) Now() time.Time { return time.Now() }

// Sleep pauses on the wall clock.
//
//roslint:nondet serving real traffic runs on the wall clock; determinism-sensitive callers inject a fake Clock
func (SystemClock) Sleep(d time.Duration) { time.Sleep(d) }

// SystemRand is the production Rand: an explicitly seeded source
// behind a mutex (Do may be called from many goroutines).
type SystemRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewSystemRand returns a SystemRand seeded from the wall clock, so
// concurrent clients do not jitter in lockstep.
func NewSystemRand() *SystemRand {
	//roslint:nondet jitter seeding wants cross-process spread; backoff determinism tests inject a fake Rand
	return &SystemRand{r: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

// Int63n implements Rand.
func (s *SystemRand) Int63n(n int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Int63n(n)
}
