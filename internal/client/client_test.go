package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// fakeClock anchors far in the future so real connections given
// Clock-derived deadlines never spuriously time out; Sleep records
// and advances without pausing.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1<<40, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Sleep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	f.sleeps = append(f.sleeps, d)
}

func (f *fakeClock) slept() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.sleeps...)
}

// fakeRand returns a scripted sequence (then zeros).
type fakeRand struct {
	mu   sync.Mutex
	vals []int64
}

func (f *fakeRand) Int63n(n int64) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.vals) == 0 {
		return 0
	}
	v := f.vals[0] % n
	f.vals = f.vals[1:]
	return v
}

// script serves wire responses over in-process pipes: each dial yields
// a connection answered by respond, which may return a nil response to
// drop the connection instead.
type script struct {
	mu      sync.Mutex
	dials   int
	respond func(req wire.Request) *wire.Response
}

func (s *script) dial(addr string, timeout time.Duration) (net.Conn, error) {
	s.mu.Lock()
	s.dials++
	s.mu.Unlock()
	cli, srv := net.Pipe()
	go func() {
		defer srv.Close()
		for {
			f, err := wire.ReadFrame(srv)
			if err != nil {
				return
			}
			req, err := wire.DecodeRequest(f.Payload)
			if err != nil {
				return
			}
			resp := s.respond(req)
			if resp == nil {
				return // drop: the client sees the conn die
			}
			if err := wire.WriteFrame(srv, wire.Frame{Type: wire.TypeResponse, CorrID: f.CorrID, Payload: wire.EncodeResponse(*resp)}); err != nil {
				return
			}
		}
	}()
	return cli, nil
}

func (s *script) dialCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dials
}

func newTestClient(sc *script, clk *fakeClock, r Rand, tr obs.Tracer) *Client {
	return New("script", Options{
		MaxAttempts: 4,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Clock:       clk,
		Rand:        r,
		Dial:        sc.dial,
		Tracer:      tr,
	})
}

func ok() *wire.Response { return &wire.Response{Status: wire.StatusOK} }

func TestDoSuccessNoRetry(t *testing.T) {
	sc := &script{respond: func(wire.Request) *wire.Response { return ok() }}
	clk := newFakeClock()
	c := newTestClient(sc, clk, &fakeRand{}, nil)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if len(clk.slept()) != 0 {
		t.Fatalf("slept %v on a clean call", clk.slept())
	}
}

// TestRetryBackoffSchedule: with scripted jitter, the sleep sequence
// is exactly the doubling schedule — injected clock and rand are the
// only time/randomness sources.
func TestRetryBackoffSchedule(t *testing.T) {
	fails := 0
	sc := &script{respond: func(req wire.Request) *wire.Response {
		fails++
		if fails <= 3 {
			return &wire.Response{Status: wire.StatusRetry, Err: "busy"}
		}
		return ok()
	}}
	clk := newFakeClock()
	rec := &obs.Recorder{}
	// Jitter draws 0, half, half: sleeps d/2, d, then capped-d.
	c := newTestClient(sc, clk, &fakeRand{vals: []int64{0, 10 * int64(time.Millisecond), 40 * int64(time.Millisecond)}}, rec)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{
		5 * time.Millisecond,  // base 10ms: half + 0
		20 * time.Millisecond, // doubled to 20ms: half + half
		60 * time.Millisecond, // doubled to 40ms: half + half... drawn 40ms%21ms
	}
	// Third draw: d=40ms, half=20ms, Int63n(20ms+1) of scripted 40ms →
	// 40ms % (20ms+1ns). Compute exactly as backoff does.
	want[2] = 20*time.Millisecond + time.Duration(40*int64(time.Millisecond)%(int64(20*time.Millisecond)+1))
	got := clk.slept()
	if len(got) != len(want) {
		t.Fatalf("sleeps %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (all %v)", i, got[i], want[i], got)
		}
	}
	// One rpc.retry per failed attempt, Code = attempt number.
	var codes []uint8
	for _, e := range rec.Events() {
		if e.Kind == obs.KindRPCRetry {
			codes = append(codes, e.Code)
		}
	}
	if len(codes) != 3 || codes[0] != 1 || codes[1] != 2 || codes[2] != 3 {
		t.Fatalf("retry codes %v, want [1 2 3]", codes)
	}
}

func TestRetryExhaustionBusy(t *testing.T) {
	sc := &script{respond: func(wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusRetry, Err: "still busy"}
	}}
	clk := newFakeClock()
	c := newTestClient(sc, clk, &fakeRand{}, nil)
	if err := c.Ping(); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if len(clk.slept()) != 3 {
		t.Fatalf("slept %d times, want 3 (4 attempts)", len(clk.slept()))
	}
}

func TestConnDropRetriesThenUnreachable(t *testing.T) {
	sc := &script{respond: func(wire.Request) *wire.Response { return nil }} // every conn drops
	clk := newFakeClock()
	c := newTestClient(sc, clk, &fakeRand{}, nil)
	err := c.Ping()
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v, want transport.ErrUnreachable", err)
	}
	if sc.dialCount() != 4 {
		t.Fatalf("dialed %d times, want 4", sc.dialCount())
	}
}

func TestDialFailureClassified(t *testing.T) {
	c := New("nowhere", Options{
		MaxAttempts: 2,
		Clock:       newFakeClock(),
		Rand:        &fakeRand{},
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			return nil, fmt.Errorf("connection refused")
		},
	})
	if err := c.Ping(); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v, want transport.ErrUnreachable", err)
	}
}

// TestConnDropHalfwayRecovers: a drop on the first attempt is healed
// by a fresh dial on the second.
func TestConnDropHalfwayRecovers(t *testing.T) {
	n := 0
	var mu sync.Mutex
	sc := &script{}
	sc.respond = func(wire.Request) *wire.Response {
		mu.Lock()
		defer mu.Unlock()
		n++
		if n == 1 {
			return nil
		}
		return ok()
	}
	clk := newFakeClock()
	c := newTestClient(sc, clk, &fakeRand{}, nil)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if sc.dialCount() != 2 {
		t.Fatalf("dialed %d times, want 2", sc.dialCount())
	}
}

// TestPoolReuse: sequential calls ride one pooled connection.
func TestPoolReuse(t *testing.T) {
	sc := &script{respond: func(wire.Request) *wire.Response { return ok() }}
	c := newTestClient(sc, newFakeClock(), &fakeRand{}, nil)
	for i := 0; i < 5; i++ {
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	if sc.dialCount() != 1 {
		t.Fatalf("dialed %d times for 5 sequential calls, want 1", sc.dialCount())
	}
}

func TestRemoteErrorNotRetried(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	sc := &script{respond: func(wire.Request) *wire.Response {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return &wire.Response{Status: wire.StatusError, Err: "no such handler"}
	}}
	c := newTestClient(sc, newFakeClock(), &fakeRand{}, nil)
	_, err := c.Invoke("nope", nil)
	if !errors.Is(err, wire.ErrRemote) {
		t.Fatalf("err = %v, want wire.ErrRemote", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("application error retried: %d calls", calls)
	}
}

func TestClosedClient(t *testing.T) {
	sc := &script{respond: func(wire.Request) *wire.Response { return ok() }}
	c := newTestClient(sc, newFakeClock(), &fakeRand{}, nil)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestBackoffCaps(t *testing.T) {
	c := New("x", Options{
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Clock:       newFakeClock(),
		Rand:        &fakeRand{}, // always 0: backoff is exactly half the delay
	})
	for _, tc := range []struct {
		n    int
		want time.Duration
	}{
		{1, 5 * time.Millisecond},
		{2, 10 * time.Millisecond},
		{3, 20 * time.Millisecond},
		{4, 40 * time.Millisecond},
		{5, 40 * time.Millisecond}, // capped
		{9, 40 * time.Millisecond},
	} {
		if got := c.backoff(tc.n); got != tc.want {
			t.Fatalf("backoff(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}
