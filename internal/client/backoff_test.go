package client

import (
	"testing"
	"time"
)

// maxRand always draws the top of the range: Int63n(n) = n-1. Under it
// backoff returns its upper bound exactly.
type maxRand struct{}

func (maxRand) Int63n(n int64) int64 { return n - 1 }

// lcgRand is a tiny deterministic generator for the jitter property
// test — no global rand, no seed-from-clock, so the test is replayable.
type lcgRand struct{ state uint64 }

func (l *lcgRand) Int63n(n int64) int64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return int64(l.state>>1) % n
}

// TestBackoffUpperBound drives backoff with a Rand pinned to the top
// of its range: the result must be exactly the capped-doubling delay
// d, never a nanosecond more. Base 10ms doubling to an 80ms cap gives
// the sequence 10, 20, 40, 80, 80, ...
func TestBackoffUpperBound(t *testing.T) {
	c := New("x", Options{
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Clock:       newFakeClock(),
		Rand:        maxRand{},
	})
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := c.backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestBackoffJitterWithinBounds is the jitter property: for every
// attempt number and many jitter draws, the pause lands in [d/2, d]
// where d is the capped-doubling delay — jitter widens the spread but
// never pushes a retry past the cap and never collapses it below half
// the schedule.
func TestBackoffJitterWithinBounds(t *testing.T) {
	const (
		base = 7 * time.Millisecond // odd base exercises the half rounding
		cap  = 100 * time.Millisecond
	)
	c := New("x", Options{
		BaseBackoff: base,
		MaxBackoff:  cap,
		Clock:       newFakeClock(),
		Rand:        &lcgRand{state: 42},
	})
	for n := 1; n <= 12; n++ {
		// The schedule backoff promises: base doubling per failure,
		// capped.
		d := base
		for i := 1; i < n && d < cap; i++ {
			d *= 2
		}
		if d > cap {
			d = cap
		}
		for draw := 0; draw < 200; draw++ {
			got := c.backoff(n)
			if got < d/2 || got > d {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", n, got, d/2, d)
			}
			if got > cap {
				t.Fatalf("backoff(%d) = %v exceeds cap %v", n, got, cap)
			}
		}
	}
}

// TestBackoffDefaultsBounded pins the default schedule: with no
// options set, the worst-case pause is MaxBackoff (500ms) regardless
// of attempt number — a stuck server cannot push a client into
// unbounded sleeps.
func TestBackoffDefaultsBounded(t *testing.T) {
	c := New("x", Options{Clock: newFakeClock(), Rand: maxRand{}})
	for _, n := range []int{1, 4, 16, 63} {
		if got := c.backoff(n); got > 500*time.Millisecond {
			t.Fatalf("backoff(%d) = %v exceeds the 500ms default cap", n, got)
		}
	}
	if got := c.backoff(1); got != 10*time.Millisecond {
		t.Fatalf("backoff(1) = %v, want the 10ms default base", got)
	}
}
