package client

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Transport implements transport.Transport over TCP clients: the real
// counterpart of the simulated netsim.Network, so the two-phase-commit
// coordinator runs the identical protocol over loopback sockets that
// it runs over the deterministic simulation.
//
// Delivery semantics differ from netsim in exactly one way. netsim
// decides reachability before running fn, so a refused call provably
// did nothing. Real TCP can also fail *after* delivery — the request
// may have executed even though the call errored — and the protocol
// already tolerates that: every 2PC message is idempotent and a lost
// reply is re-driven (§2.2.2). For tests that need netsim's exact
// refusal sequencing, SetDown and Cut mark nodes and links down
// client-side: a marked call is refused before any I/O, emitting the
// same net.call events in the same order as the simulation.
type Transport struct {
	mu    sync.Mutex
	peers map[ids.GuardianID]*Client
	down  map[ids.GuardianID]bool
	cut   map[[2]ids.GuardianID]bool
	tr    obs.Tracer
}

var _ transport.Transport = (*Transport)(nil)

// NewTransport returns a transport with no peers.
func NewTransport() *Transport {
	return &Transport{
		peers: make(map[ids.GuardianID]*Client),
		down:  make(map[ids.GuardianID]bool),
		cut:   make(map[[2]ids.GuardianID]bool),
	}
}

// SetTracer installs (or, with nil, removes) the transport's event
// tracer; every Call emits one net.call event, mirroring netsim.
func (t *Transport) SetTracer(tr obs.Tracer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tr = tr
}

// Register associates a guardian id with the client that reaches its
// server. The transport owns registered clients: Close closes them.
func (t *Transport) Register(gid ids.GuardianID, c *Client) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[gid] = c
}

// Peer returns the registered client for gid, or nil.
func (t *Transport) Peer(gid ids.GuardianID) *Client {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peers[gid]
}

// SetDown marks a guardian as unreachable (true) or reachable (false)
// client-side, mirroring netsim.Network.SetDown for partition tests.
func (t *Transport) SetDown(g ids.GuardianID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[g] = down
}

// Cut severs (true) or restores (false) a link client-side, mirroring
// netsim.Network.Cut.
func (t *Transport) Cut(a, b ids.GuardianID, cut bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if a > b {
		a, b = b, a
	}
	t.cut[[2]ids.GuardianID{a, b}] = cut
}

// Reachable reports whether a call from a to b would be attempted.
func (t *Transport) Reachable(a, b ids.GuardianID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reachableLocked(a, b)
}

func (t *Transport) reachableLocked(a, b ids.GuardianID) bool {
	if t.down[a] || t.down[b] {
		return false
	}
	if a != b {
		key := [2]ids.GuardianID{a, b}
		if a > b {
			key = [2]ids.GuardianID{b, a}
		}
		if t.cut[key] {
			return false
		}
	}
	return true
}

// Call implements transport.Transport: refuse if a down/cut marker
// blocks the pair (before any I/O, like netsim), otherwise run fn —
// whose closure performs the real wire exchange — and pass through its
// error. Connection-level failures already wrap
// transport.ErrUnreachable via the Client.
func (t *Transport) Call(a, b ids.GuardianID, fn func() error) error {
	t.mu.Lock()
	tr := t.tr
	if !t.reachableLocked(a, b) {
		t.mu.Unlock()
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindNetCall, From: uint64(a), To: uint64(b)})
		}
		return fmt.Errorf("%w: %v -> %v", ErrUnreachable, a, b)
	}
	t.mu.Unlock()
	// Emitted before fn so the delivery precedes the events fn's work
	// produces, matching netsim's causal ordering.
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindNetCall, From: uint64(a), To: uint64(b), OK: true})
	}
	return fn()
}

// Close closes every registered client.
func (t *Transport) Close() error {
	t.mu.Lock()
	gids := make([]ids.GuardianID, 0, len(t.peers))
	//roslint:nondet draining the peer set for teardown; the collected ids are sorted before use
	for gid := range t.peers {
		gids = append(gids, gid)
	}
	clients := make([]*Client, 0, len(gids))
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		clients = append(clients, t.peers[gid])
	}
	t.peers = make(map[ids.GuardianID]*Client)
	t.mu.Unlock()
	var first error
	for _, c := range clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Participant returns a twopc.Participant that delivers its messages
// to gid's server through this transport's registered client.
func (t *Transport) Participant(gid ids.GuardianID) (*RemoteParticipant, error) {
	c := t.Peer(gid)
	if c == nil {
		return nil, fmt.Errorf("client: no peer registered for %v", gid)
	}
	return &RemoteParticipant{ID: gid, C: c}, nil
}
