package client

import (
	"repro/internal/ids"
	"repro/internal/twopc"
)

// RemoteParticipant is a client-side stub presenting a served guardian
// as a twopc.Participant: the coordinator's prepare/commit/abort
// messages become wire requests. The coordinator invokes these methods
// inside Transport.Call, so the stub performs the I/O the simulated
// network only pretends to do.
type RemoteParticipant struct {
	// ID is the remote guardian's id.
	ID ids.GuardianID
	// Shard addresses the guardian on a node hosting several; zero is
	// the node's default guardian (the pre-sharding contract).
	Shard uint32
	// C is the client reaching the guardian's server.
	C *Client
}

var _ twopc.Participant = (*RemoteParticipant)(nil)

// GuardianID implements twopc.Participant.
func (p *RemoteParticipant) GuardianID() ids.GuardianID { return p.ID }

// HandlePrepare implements twopc.Participant over the wire.
func (p *RemoteParticipant) HandlePrepare(aid ids.ActionID) (twopc.Vote, error) {
	return p.C.PrepareShard(p.Shard, aid)
}

// HandleCommit implements twopc.Participant over the wire.
func (p *RemoteParticipant) HandleCommit(aid ids.ActionID) error {
	return p.C.CommitShard(p.Shard, aid)
}

// HandleAbort implements twopc.Participant over the wire.
func (p *RemoteParticipant) HandleAbort(aid ids.ActionID) error {
	return p.C.AbortShard(p.Shard, aid)
}

// RemoteCoordinator is a client-side stub presenting a served guardian
// as a twopc.OutcomeSource, for a prepared participant's completion
// query (§2.2.2).
type RemoteCoordinator struct {
	ID ids.GuardianID
	// Shard addresses the coordinating guardian on a node hosting
	// several; zero is the node's default guardian.
	Shard uint32
	C     *Client
}

var _ twopc.OutcomeSource = (*RemoteCoordinator)(nil)

// GuardianID implements twopc.OutcomeSource.
func (rc *RemoteCoordinator) GuardianID() ids.GuardianID { return rc.ID }

// OutcomeOf implements twopc.OutcomeSource over the wire. A failed
// query answers OutcomeUnknown — the participant stays in doubt and
// asks again later.
func (rc *RemoteCoordinator) OutcomeOf(aid ids.ActionID) twopc.Outcome {
	out, err := rc.C.OutcomeShard(rc.Shard, aid)
	if err != nil {
		return twopc.OutcomeUnknown
	}
	return out
}
