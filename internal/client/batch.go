// Pipelined batching: several requests written to one connection in a
// single buffered write, answers collected by correlation id. The
// server counts the dispatches and coalesces the response frames into
// one write of its own, so a batch of N requests costs two syscalls on
// each side instead of 2N — the wire-level analogue of group commit
// (experiment E16 measures the effect on read throughput).
//
// Batching changes no semantics: each request is still one independent
// operation with the transport contract's retry rules. A batch is NOT
// atomic — requests land as separate actions, and a partial outcome
// (some OK, some retried) is normal under contention.
package client

import (
	"fmt"
	"net"

	"repro/internal/obs"
	"repro/internal/value"
	"repro/internal/wire"
)

// Get reads the committed value bound to a stable-variable key on the
// default guardian: the index-served read path (OpGet). A key no
// variable binds fails wrapping wire.ErrRemote ("no such key").
func (c *Client) Get(key string) (value.Value, error) { return c.GetShard(0, key) }

// GetShard is Get addressed to a shard's guardian.
func (c *Client) GetShard(sh uint32, key string) (value.Value, error) {
	resp, err := c.Do(wire.Request{Op: wire.OpGet, Shard: sh, Handler: key})
	if err != nil {
		return nil, err
	}
	if err := remoteErr(resp); err != nil {
		return nil, err
	}
	if len(resp.Result) == 0 {
		return nil, nil
	}
	v, err := value.Unflatten(resp.Result)
	if err != nil {
		return nil, fmt.Errorf("client: result: %w", err)
	}
	return v, nil
}

// DoBatch pipelines reqs over one pooled connection: all requests go
// out in a single write, and responses (which the server may answer
// out of order) are matched back by correlation id. Connection-level
// failures retry the whole outstanding batch; StatusRetry verdicts
// retry only the requests that drew them. Exhausting the attempt
// budget on transient verdicts returns the responses as they stand —
// StatusRetry rows included, position-matched to reqs — so the caller
// sees exactly which requests never landed; only a final
// connection-level failure returns an error.
func (c *Client) DoBatch(reqs []wire.Request) ([]wire.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([]wire.Response, len(reqs))
	pending := make([]int, len(reqs)) // indices into reqs/out awaiting a verdict
	for i := range pending {
		pending[i] = i
	}
	var last error
	for attempt := 1; ; attempt++ {
		batch := make([]wire.Request, len(pending))
		for j, i := range pending {
			batch[j] = reqs[i]
		}
		resps, err := c.attemptBatch(batch)
		if err == nil {
			var retry []int
			for j, i := range pending {
				out[i] = resps[j]
				if resps[j].Status == wire.StatusRetry {
					retry = append(retry, i)
				}
			}
			if len(retry) == 0 {
				return out, nil
			}
			pending = retry
			last = fmt.Errorf("%w: %s", ErrBusy, out[retry[0]].Err)
		} else {
			last = err
		}
		if attempt >= c.opt.MaxAttempts {
			if err != nil {
				return nil, last
			}
			// Transient verdicts exhausted the budget: the per-request
			// StatusRetry rows tell the caller which requests never ran.
			return out, nil
		}
		c.emit(obs.Event{Kind: obs.KindRPCRetry, Code: uint8(attempt), Note: last.Error()})
		c.opt.Clock.Sleep(c.backoff(attempt))
	}
}

// attemptBatch runs one pipelined exchange on one connection.
func (c *Client) attemptBatch(reqs []wire.Request) ([]wire.Response, error) {
	nc, err := c.conn()
	if err != nil {
		return nil, err
	}
	resps, err := c.exchangeBatch(nc, reqs)
	if err != nil {
		// The stream's state is unknown: never pool it.
		//roslint:besteffort the connection is already being discarded for the observed exchange error
		_ = nc.Close()
		return nil, err
	}
	c.release(nc)
	return resps, nil
}

func (c *Client) exchangeBatch(nc net.Conn, reqs []wire.Request) ([]wire.Response, error) {
	want := make(map[uint64]int, len(reqs))
	var buf []byte
	for i, req := range reqs {
		corr := c.corr.Add(1)
		want[corr] = i
		b, err := wire.AppendFrame(buf, wire.Frame{Type: wire.TypeRequest, CorrID: corr, Payload: wire.EncodeRequest(req)})
		if err != nil {
			return nil, fmt.Errorf("client: batch request %d: %w", i, err)
		}
		buf = b
	}
	// One deadline covers the whole batch: the server answers each
	// request as a worker finishes it, so the batch completes in about
	// one round trip plus the slowest execution.
	if err := nc.SetDeadline(c.opt.Clock.Now().Add(c.opt.CallTimeout)); err != nil {
		return nil, fmt.Errorf("%w: deadline: %v", ErrUnreachable, err)
	}
	if _, err := nc.Write(buf); err != nil {
		return nil, c.connErr("write", err)
	}
	out := make([]wire.Response, len(reqs))
	for n := 0; n < len(reqs); n++ {
		f, err := wire.ReadFrame(nc)
		if err != nil {
			return nil, c.connErr("read", err)
		}
		i, ok := want[f.CorrID]
		if f.Type != wire.TypeResponse || !ok {
			return nil, fmt.Errorf("%w: %s: stream desynchronized (frame type %d, corr %d unexpected)",
				ErrUnreachable, c.addr, f.Type, f.CorrID)
		}
		delete(want, f.CorrID)
		resp, err := wire.DecodeResponse(f.Payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, c.addr, err)
		}
		out[i] = resp
	}
	return out, nil
}

// GetBatch pipelines reads of several keys (default guardian) and
// returns one value per key, position-matched. Any per-key failure —
// including a key that stayed StatusRetry through the budget — fails
// the call, naming the key.
func (c *Client) GetBatch(keys []string) ([]value.Value, error) {
	reqs := make([]wire.Request, len(keys))
	for i, k := range keys {
		reqs[i] = wire.Request{Op: wire.OpGet, Handler: k}
	}
	resps, err := c.DoBatch(reqs)
	if err != nil {
		return nil, err
	}
	vals := make([]value.Value, len(keys))
	for i, resp := range resps {
		if resp.Status == wire.StatusRetry {
			return nil, fmt.Errorf("client: get %q: %w: %s", keys[i], ErrBusy, resp.Err)
		}
		if err := remoteErr(resp); err != nil {
			return nil, fmt.Errorf("client: get %q: %w", keys[i], err)
		}
		if len(resp.Result) == 0 {
			continue
		}
		v, err := value.Unflatten(resp.Result)
		if err != nil {
			return nil, fmt.Errorf("client: get %q: result: %w", keys[i], err)
		}
		vals[i] = v
	}
	return vals, nil
}
