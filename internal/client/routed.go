package client

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/value"
)

// Routed is a table-aware client over a sharded cluster: it fetches
// the routing table from seed nodes, maps each key to its owning shard
// (shard.Table.Owner), and sends the request to the node hosting that
// shard. A wrong-shard refusal carries the refusing server's table
// in-band; the routed client installs it when newer, refreshes from
// the seeds when it is not (the refuser may itself be stale), and
// retries — so a client that raced a handoff converges in one or two
// extra round trips without operator help.
//
// Safe for concurrent use. Per-node Clients are created lazily and
// owned by the Routed client; Close closes them all.
type Routed struct {
	seeds []string
	opt   Options

	// tp presents the per-shard clients as a transport.Transport, so
	// the twopc coordinator drives cross-shard commits through the
	// identical interface the simulated network implements.
	tp *Transport

	mu      sync.Mutex
	table   shard.Table
	have    bool
	clients map[string]*Client
}

// NewRouted returns a routed client seeded with the addresses of one
// or more cluster nodes. No I/O happens until the first call.
func NewRouted(seeds []string, opt Options) *Routed {
	return &Routed{
		seeds:   seeds,
		opt:     opt.withDefaults(),
		tp:      NewTransport(),
		clients: make(map[string]*Client),
	}
}

// Transport returns the routed client's transport view of the cluster:
// one peer per shard, kept registered as tables install.
func (r *Routed) Transport() *Transport { return r.tp }

// Close closes every per-node client.
func (r *Routed) Close() error {
	r.mu.Lock()
	addrs := make([]string, 0, len(r.clients))
	//roslint:nondet draining the client pool for teardown; closing order does not matter beyond determinism, sorted below
	for a := range r.clients {
		addrs = append(addrs, a)
	}
	clients := make([]*Client, 0, len(addrs))
	sort.Strings(addrs)
	for _, a := range addrs {
		clients = append(clients, r.clients[a])
	}
	r.clients = make(map[string]*Client)
	r.mu.Unlock()
	var first error
	for _, c := range clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (r *Routed) emit(e obs.Event) {
	if r.opt.Tracer != nil {
		r.opt.Tracer.Emit(e)
	}
}

// client returns (creating if needed) the client for a node address.
func (r *Routed) client(addr string) *Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clientLocked(addr)
}

func (r *Routed) clientLocked(addr string) *Client {
	if c, ok := r.clients[addr]; ok {
		return c
	}
	c := New(addr, r.opt)
	r.clients[addr] = c
	return c
}

// Table returns the currently installed routing table.
func (r *Routed) Table() (shard.Table, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.table, r.have
}

// Install adopts a routing table when strictly newer than the current
// one (equal versions are a no-op; older ones fail wrapping
// transport.ErrStaleRoute) and re-registers the transport's per-shard
// peers from it.
func (r *Routed) Install(t shard.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	if r.have && t.Version <= r.table.Version {
		cur := r.table.Version
		r.mu.Unlock()
		if t.Version == cur {
			return nil
		}
		return fmt.Errorf("client: table v%d offered, v%d installed: %w", t.Version, cur, transport.ErrStaleRoute)
	}
	r.table = t
	r.have = true
	for _, s := range t.Shards {
		r.tp.Register(ids.GuardianID(s.ID), r.clientLocked(s.Addr))
	}
	r.mu.Unlock()
	r.emit(obs.Event{Kind: obs.KindShardInstall, Durable: t.Version, Bytes: len(t.Shards)})
	return nil
}

// Refresh polls every seed for its routing table and installs the
// newest. It succeeds when at least one seed answers.
func (r *Routed) Refresh() (shard.Table, error) {
	var best shard.Table
	var found bool
	var last error
	for _, addr := range r.seeds {
		t, err := r.client(addr).Route()
		if err != nil {
			last = err
			continue
		}
		if !found || t.Version > best.Version {
			best, found = t, true
		}
	}
	if !found {
		return shard.Table{}, fmt.Errorf("client: no seed answered a route query: %w", last)
	}
	if err := r.Install(best); err != nil && !errors.Is(err, transport.ErrStaleRoute) {
		return shard.Table{}, err
	}
	t, _ := r.Table()
	r.emit(obs.Event{Kind: obs.KindShardRoute, Durable: t.Version})
	return t, nil
}

// tableOrRefresh returns the installed table, fetching one from the
// seeds on first use.
func (r *Routed) tableOrRefresh() (shard.Table, error) {
	if t, ok := r.Table(); ok {
		return t, nil
	}
	return r.Refresh()
}

// call routes one key-addressed call, retrying wrong-shard refusals.
// Each refusal hands back the refuser's table; call installs it, falls
// back to a seed refresh when that made no progress, and re-routes.
// The refusal happens before the server dispatches to any guardian, so
// re-sending is always safe regardless of the wrapped operation.
func (r *Routed) call(key string, fn func(c *Client, sh uint32) error) error {
	for attempt := 1; ; attempt++ {
		tbl, err := r.tableOrRefresh()
		if err != nil {
			return err
		}
		owner := tbl.Owner(key)
		err = fn(r.client(owner.Addr), uint32(owner.ID))
		var wse *WrongShardError
		if !errors.As(err, &wse) {
			return err
		}
		r.routeCorrection(uint64(owner.ID), tbl.Version, wse)
		if attempt >= r.opt.MaxAttempts {
			return fmt.Errorf("client: key %q still misrouted after %d attempts: %w", key, attempt, err)
		}
		r.opt.Clock.Sleep(r.backoffRoute(attempt))
	}
}

// routeCorrection digests one wrong-shard refusal: install the
// in-band table, or refresh from the seeds when the refuser's table is
// no newer than ours (both sides stale).
func (r *Routed) routeCorrection(sh uint64, haveVersion uint64, wse *WrongShardError) {
	t, err := wse.Table()
	if err == nil {
		r.emit(obs.Event{Kind: obs.KindShardWrong, From: sh, Durable: t.Version})
		if t.Version > haveVersion {
			//roslint:besteffort a racing install may already have adopted a newer table; the retry re-reads it
			_ = r.Install(t)
			return
		}
	} else {
		r.emit(obs.Event{Kind: obs.KindShardWrong, From: sh})
	}
	//roslint:besteffort refresh failure leaves the old table; the retry loop bounds further attempts
	_, _ = r.Refresh()
}

// backoffRoute paces wrong-shard retries exactly like the per-client
// transport backoff.
func (r *Routed) backoffRoute(n int) time.Duration {
	c := Client{opt: r.opt}
	return c.backoff(n)
}

// Get routes a read of key's committed value (OpGet, the index-served
// path) to the shard owning key.
func (r *Routed) Get(key string) (value.Value, error) {
	var out value.Value
	err := r.call(key, func(c *Client, sh uint32) error {
		v, err := c.GetShard(sh, key)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	return out, err
}

// Invoke routes a complete single-key atomic action to the shard
// owning key and returns its result.
func (r *Routed) Invoke(key, handler string, arg value.Value) (value.Value, error) {
	var out value.Value
	err := r.call(key, func(c *Client, sh uint32) error {
		v, err := c.InvokeShard(sh, handler, arg)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	return out, err
}
