package replog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/stablelog"
	"repro/internal/transport"
	"repro/internal/wire"
)

// defaultMaxShip bounds one append's frame run, comfortably inside the
// wire layer's MaxPayload once the message and frame headers are added.
const defaultMaxShip = 256 << 10

// Config configures a Primary.
type Config struct {
	// Self is the primary's guardian id (the transport source address
	// and the obs guardian stamp).
	Self ids.GuardianID
	// Site is the primary guardian's log site (guardian.Site()).
	Site *stablelog.Site
	// Quorum is how many durable copies a force needs, counting the
	// primary's own — 2 with two backups is the 2-of-3 configuration.
	// 1 disables the force gate (shipping still happens on probes and
	// later rounds).
	Quorum int
	// Net delivers replica calls; netsim for simulation, the client
	// transport for TCP.
	Net transport.Transport
	// Replicas are the backups, contacted in ascending id order.
	Replicas []Replica
	// Tracer receives rep.* events (nil traces nothing).
	Tracer obs.Tracer
	// Epoch is the starting replication epoch (default 1). A promoted
	// backup's successor primary would start at its bumped epoch.
	Epoch uint64
	// MaxShip bounds the frame bytes of one append (default 256 KiB).
	MaxShip int
}

// repState is the primary's book-keeping for one replica.
type repState struct {
	r  Replica
	id ids.GuardianID
	// acked is the replica's durably acknowledged prefix — its
	// replication cursor. Meaningful only while !diverged.
	acked uint64
	// alive is whether the replica answered its most recent contact.
	// A down replica keeps its acked bytes (they are on its disk); it
	// stops contributing only new acks, not old ones.
	alive bool
	// diverged marks the cursor as naming bytes of a discarded log
	// generation: the next contact opens with a snapshot offer, and
	// the stale cursor is excluded from quorum arithmetic.
	diverged bool
}

// Primary replicates one guardian's stable log. Install it with
// guardian.SetReplicator; from then on every ForceTo on the guardian's
// log blocks in WaitQuorum until the quorum holds the forced prefix.
type Primary struct {
	cfg     Config
	tr      obs.Tracer
	maxShip int

	mu   sync.Mutex
	cond *sync.Cond

	epoch uint64
	gen   uint64 // log generation the cursors refer to
	reps  []repState
	// deposed latches once any replica reports a higher epoch: a backup
	// was promoted, and this primary must never acknowledge a commit
	// again — even one that low-epoch replicas would still cover —
	// because the promoted log is the history now (epochs only grow).
	deposed bool
	// quorumBytes is the largest prefix durably held by Quorum copies;
	// monotone, so a round that loses replicas never un-acknowledges.
	quorumBytes uint64

	inFlight bool   // a leader is running a replication round
	round    uint64 // completed rounds (for rider wakeups)
	roundErr error  // outcome of the most recent round

	rounds int // successful and failed rounds, for statistics
	leads  int // WaitQuorum calls that led a round
	rides  int // WaitQuorum calls that rode another caller's round
}

// NewPrimary validates cfg and returns a Primary ready to install.
func NewPrimary(cfg Config) (*Primary, error) {
	if cfg.Site == nil {
		return nil, fmt.Errorf("replog: primary needs a log site")
	}
	if cfg.Net == nil {
		return nil, fmt.Errorf("replog: primary needs a transport")
	}
	if cfg.Quorum < 1 || cfg.Quorum > 1+len(cfg.Replicas) {
		return nil, fmt.Errorf("replog: quorum %d out of range [1, %d]", cfg.Quorum, 1+len(cfg.Replicas))
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	if cfg.MaxShip <= 0 {
		cfg.MaxShip = defaultMaxShip
	}
	p := &Primary{
		cfg:     cfg,
		tr:      obs.WithGuardian(cfg.Tracer, uint64(cfg.Self)),
		maxShip: cfg.MaxShip,
		epoch:   cfg.Epoch,
		gen:     cfg.Site.Generation(),
	}
	p.cond = sync.NewCond(&p.mu)
	p.reps = make([]repState, len(cfg.Replicas))
	for i, r := range cfg.Replicas {
		p.reps[i] = repState{r: r, id: r.ID(), alive: true}
	}
	sort.Slice(p.reps, func(i, j int) bool { return p.reps[i].id < p.reps[j].id })
	for i := 1; i < len(p.reps); i++ {
		if p.reps[i].id == p.reps[i-1].id {
			return nil, fmt.Errorf("replog: duplicate replica id %d", p.reps[i].id)
		}
	}
	return p, nil
}

// WaitQuorum implements stablelog.Replicator: it blocks until a quorum
// of copies durably holds the prefix covering lsn, coalescing
// concurrent waiters into shared replication rounds exactly as the
// force scheduler coalesces device forces — the entry at lsn is
// already durable locally, so one round shipping up to the current
// durable boundary covers every waiter of a shared force round.
func (p *Primary) WaitQuorum(lsn stablelog.LSN) error {
	if lsn == stablelog.NoLSN {
		return nil
	}
	target := uint64(lsn)
	p.mu.Lock()
	if p.cfg.Quorum <= 1 {
		p.mu.Unlock()
		return nil
	}
	for {
		if p.deposed {
			p.mu.Unlock()
			return ErrStaleReplica
		}
		p.syncGenLocked()
		if target < p.quorumBytes {
			p.mu.Unlock()
			return nil
		}
		if !p.inFlight {
			p.inFlight = true
			p.leads++
			p.mu.Unlock()
			err := p.replicateRound()
			p.mu.Lock()
			p.inFlight = false
			p.round++
			p.roundErr = err
			p.cond.Broadcast()
			// Partial progress may cover this waiter even when the round
			// as a whole fell short of its target.
			if target < p.quorumBytes {
				p.mu.Unlock()
				return nil
			}
			if err != nil {
				p.mu.Unlock()
				return err
			}
			continue
		}
		// A round is in flight but may have snapshotted the durable
		// boundary before our entry was forced: ride it, then re-check.
		p.rides++
		round := p.round
		for p.round == round {
			p.cond.Wait()
		}
		if target < p.quorumBytes {
			p.mu.Unlock()
			return nil
		}
		if p.roundErr != nil {
			err := p.roundErr
			p.mu.Unlock()
			return err
		}
	}
}

// syncGenLocked re-reads the site's log generation. A housekeeping
// switch restarts log addresses from zero, so across it every replica
// cursor names bytes of the discarded generation (diverged: the next
// contact opens with a snapshot offer) and the quorum boundary — bytes
// of the old address space — must reset rather than falsely cover new
// offsets. Caller holds p.mu.
func (p *Primary) syncGenLocked() {
	gen := p.cfg.Site.Generation()
	if gen == p.gen {
		return
	}
	p.gen = gen
	for i := range p.reps {
		p.reps[i].diverged = true
	}
	p.quorumBytes = 0
}

// shipWork is one replica's slice of a round, worked on outside p.mu.
type shipWork struct {
	idx      int
	id       ids.GuardianID
	r        Replica
	cursor   uint64
	alive    bool
	diverged bool
	stale    bool // the replica reported a higher epoch
	shipped  int  // bytes delivered this round, for the catch-up event
}

// replicateRound ships the primary's durable prefix to every replica
// and recomputes the quorum boundary. Called with p.mu released.
func (p *Primary) replicateRound() error {
	log := p.cfg.Site.Log()
	target, _ := log.TailInfo()

	p.mu.Lock()
	p.syncGenLocked()
	epoch := p.epoch
	ws := make([]shipWork, len(p.reps))
	for i := range p.reps {
		s := &p.reps[i]
		ws[i] = shipWork{idx: i, id: s.id, r: s.r, cursor: s.acked, alive: s.alive, diverged: s.diverged}
	}
	p.mu.Unlock()

	stale := false
	for i := range ws {
		wasAlive := ws[i].alive
		p.shipTo(&ws[i], epoch, target, log)
		if ws[i].stale {
			stale = true
		}
		if ws[i].alive && !wasAlive && p.tr != nil {
			p.tr.Emit(obs.Event{Kind: obs.KindRepCatchup, From: uint64(p.cfg.Self), To: uint64(ws[i].id),
				Durable: ws[i].cursor, Bytes: ws[i].shipped})
		}
	}

	p.mu.Lock()
	for i := range ws {
		s := &p.reps[ws[i].idx]
		s.acked = ws[i].cursor
		s.alive = ws[i].alive
		s.diverged = ws[i].diverged
	}
	if stale {
		// Acks gathered after deposition must not advertise coverage:
		// low-epoch replicas can no longer make an entry durable.
		p.deposed = true
	} else if qb := p.quorumLocked(target); qb > p.quorumBytes {
		p.quorumBytes = qb
	}
	qbNow := p.quorumBytes
	p.rounds++
	p.mu.Unlock()

	// A stale round emits no quorum event: the primary is deposed and no
	// longer speaks for the replication group — in the trace, the
	// promoted guardian's log.open is the next word about this gid.
	if p.tr != nil && !stale {
		p.tr.Emit(obs.Event{Kind: obs.KindRepQuorum, Durable: qbNow, OK: qbNow >= target})
	}
	if stale {
		return ErrStaleReplica
	}
	if qbNow < target {
		return ErrQuorumLost
	}
	return nil
}

// quorumLocked computes the largest prefix held durably by Quorum
// copies: the primary's own durable boundary plus every
// non-diverged replica's acked prefix (a down replica's disk still
// holds its acked bytes). The result is capped at selfDurable — quorum
// coverage can never exceed the bytes the primary actually holds, no
// matter what offsets replicas report. Caller holds p.mu.
func (p *Primary) quorumLocked(selfDurable uint64) uint64 {
	vals := make([]uint64, 0, 1+len(p.reps))
	vals = append(vals, selfDurable)
	for i := range p.reps {
		if !p.reps[i].diverged {
			vals = append(vals, p.reps[i].acked)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	if p.cfg.Quorum > len(vals) {
		return 0
	}
	if q := vals[p.cfg.Quorum-1]; q < selfDurable {
		return q
	}
	return selfDurable
}

// shipTo brings one replica's durable prefix up to target. On return
// w.cursor is the replica's acked prefix, w.alive whether it answered.
func (p *Primary) shipTo(w *shipWork, epoch, target uint64, log *stablelog.Log) {
	snapshotted := false
	rewound := false
	if w.diverged || w.cursor > target {
		if !p.offerSnapshot(w, epoch) {
			return
		}
		snapshotted = true
	}
	for w.cursor < target {
		frames, prevLen, err := log.ReadRaw(w.cursor, p.maxShip)
		if err != nil {
			// The cursor does not name a frame boundary of our own log —
			// divergence the generation check did not catch. Reset once.
			if snapshotted {
				w.alive = false
				return
			}
			if !p.offerSnapshot(w, epoch) {
				return
			}
			snapshotted = true
			continue
		}
		if p.tr != nil {
			p.tr.Emit(obs.Event{Kind: obs.KindRepSend, From: uint64(p.cfg.Self), To: uint64(w.id),
				Durable: w.cursor, Bytes: len(frames)})
		}
		var ack wire.RepAck
		app := wire.RepAppend{Epoch: epoch, Start: w.cursor, PrevLen: prevLen, Frames: frames}
		callErr := p.cfg.Net.Call(p.cfg.Self, w.id, func() error {
			var err error
			ack, err = w.r.Append(app)
			return err
		})
		if callErr != nil {
			w.alive = false
			return
		}
		w.alive = true
		if p.tr != nil {
			p.tr.Emit(obs.Event{Kind: obs.KindRepAck, From: uint64(p.cfg.Self), To: uint64(w.id),
				Durable: ack.Durable})
		}
		if ack.Epoch > epoch {
			w.stale = true
			return
		}
		switch {
		case ack.Applied && ack.Durable == w.cursor+uint64(len(frames)):
			// The run was applied: the tail advanced by exactly the
			// shipped bytes, whose content we know. Only this advances
			// the cursor — an offset we did not ship this tenure may
			// name old-history bytes (a replica rejoining after a
			// failover) and must never count as replicated coverage.
			w.shipped += len(frames)
			w.cursor += uint64(len(frames))
		case !ack.Applied && ack.Durable < w.cursor:
			// The replica is behind where the last ack left it (it
			// restarted): adopt its actual tail and re-ship. Once per
			// round, so a confused replica cannot ping-pong us.
			// Rewinding only shrinks the cursor, so it can only shrink
			// quorum coverage, never fabricate it.
			if rewound {
				w.alive = false
				return
			}
			rewound = true
			w.cursor = ack.Durable
		default:
			// A refusal at or beyond the cursor: same-offset divergent
			// content (the back-chain check said no), or a longer tail
			// from a log this primary never wrote — either way the
			// replica's bytes are not a prefix of ours. Offer a
			// snapshot reset once.
			if snapshotted {
				w.alive = false
				return
			}
			if !p.offerSnapshot(w, epoch) {
				return
			}
			snapshotted = true
		}
	}
}

// offerSnapshot tells the replica to discard its received log and
// restart from offset zero. Returns false when the replica is
// unreachable, stale, or did not perform the reset; on success
// w.cursor is zero, the post-reset tail.
func (p *Primary) offerSnapshot(w *shipWork, epoch uint64) bool {
	var ack wire.RepAck
	snap := wire.RepSnapshot{Epoch: epoch}
	callErr := p.cfg.Net.Call(p.cfg.Self, w.id, func() error {
		var err error
		ack, err = w.r.Snapshot(snap)
		return err
	})
	if callErr != nil {
		w.alive = false
		return false
	}
	w.alive = true
	if ack.Epoch > epoch {
		w.stale = true
		return false
	}
	if !ack.Applied || ack.Durable != 0 {
		// The replica answered but did not reset. Whatever its tail
		// holds, we did not ship it: keep the cursor out of quorum
		// arithmetic until a later offer lands.
		w.diverged = true
		return false
	}
	w.cursor = 0
	w.diverged = false
	w.shipped = 0
	return true
}

// Heartbeat probes every replica, refreshing liveness and acked
// offsets without shipping data. It returns ErrStaleReplica when a
// replica reports a higher epoch; unreachable replicas are recorded,
// not errors.
func (p *Primary) Heartbeat() error {
	log := p.cfg.Site.Log()
	durable, _ := log.TailInfo()
	p.mu.Lock()
	p.syncGenLocked()
	epoch := p.epoch
	ws := make([]shipWork, len(p.reps))
	for i := range p.reps {
		s := &p.reps[i]
		ws[i] = shipWork{idx: i, id: s.id, r: s.r, cursor: s.acked, alive: s.alive, diverged: s.diverged}
	}
	p.mu.Unlock()

	stale := false
	hb := wire.RepHeartbeat{Epoch: epoch, Durable: durable}
	for i := range ws {
		w := &ws[i]
		var ack wire.RepAck
		callErr := p.cfg.Net.Call(p.cfg.Self, w.id, func() error {
			var err error
			ack, err = w.r.Heartbeat(hb)
			return err
		})
		if callErr != nil {
			w.alive = false
			continue
		}
		w.alive = true
		if ack.Epoch > epoch {
			w.stale = true
			stale = true
			continue
		}
		// A heartbeat proves liveness and reveals lag; it says nothing
		// about the content behind the replica's tail. Only rewind the
		// cursor (the replica restarted and lost bytes we had counted)
		// — advancing it would adopt bytes this primary never shipped,
		// e.g. a rejoined replica's old-history tail, as quorum
		// coverage. Advancement comes solely from validated appends.
		if !w.diverged && ack.Durable < w.cursor {
			w.cursor = ack.Durable
		}
	}

	p.mu.Lock()
	for i := range ws {
		s := &p.reps[ws[i].idx]
		s.acked = ws[i].cursor
		s.alive = ws[i].alive
	}
	if stale {
		p.deposed = true
	} else if qb := p.quorumLocked(durable); qb > p.quorumBytes {
		p.quorumBytes = qb
	}
	p.mu.Unlock()
	if stale {
		return ErrStaleReplica
	}
	return nil
}

// Status reports the primary's replication health (the OpStatus
// answer).
func (p *Primary) Status() wire.RepStatus {
	durable, _ := p.cfg.Site.Log().TailInfo()
	p.mu.Lock()
	defer p.mu.Unlock()
	alive := 0
	for i := range p.reps {
		if p.reps[i].alive {
			alive++
		}
	}
	return wire.RepStatus{
		Role:        wire.RolePrimary,
		Epoch:       p.epoch,
		Durable:     durable,
		QuorumBytes: p.quorumBytes,
		Quorum:      uint32(p.cfg.Quorum),
		Replicas:    uint32(len(p.reps)),
		Alive:       uint32(alive),
	}
}

// Stats returns how many replication rounds ran, how many WaitQuorum
// calls led one, and how many rode a round led by another caller —
// the replication mirror of the force scheduler's statistics.
func (p *Primary) Stats() (rounds, leads, rides int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rounds, p.leads, p.rides
}
