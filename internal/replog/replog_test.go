package replog

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stablelog"
	"repro/internal/value"
	"repro/internal/wire"
)

// fixture wires a primary guardian (id 1) to backups over a simulated
// network, with a Checker (R1–R4) feeding a Recorder so every test runs
// under the runtime invariants and can inspect the rep.* stream.
type fixture struct {
	g       *guardian.Guardian
	p       *Primary
	backups []*Backup
	reps    []Replica
	net     *netsim.Network
	rec     *obs.Recorder
	chk     *obs.Checker
}

const primaryID = ids.GuardianID(1)

var backupIDs = []ids.GuardianID{101, 102}

func newBackup(t *testing.T, id ids.GuardianID, tr obs.Tracer, vol stablelog.Volume) *Backup {
	t.Helper()
	b, err := NewBackup(BackupConfig{ID: id, Primary: primaryID, Tracer: tr, Volume: vol})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newFixtureReps builds the fixture around caller-supplied replicas, so
// tests can interpose wrappers. quorum counts the primary.
func newFixtureReps(t *testing.T, quorum int, reps []Replica) *fixture {
	t.Helper()
	f := &fixture{rec: &obs.Recorder{}, net: netsim.New(), reps: reps}
	f.chk = obs.NewChecker(f.rec)
	f.net.SetTracer(f.chk)
	g, err := guardian.New(primaryID, guardian.WithTracer(f.chk))
	if err != nil {
		t.Fatal(err)
	}
	g.SetSynchronousForces(true)
	f.g = g
	p, err := NewPrimary(Config{
		Self: primaryID, Site: g.Site(), Quorum: quorum,
		Net: f.net, Replicas: reps, Tracer: f.chk,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.p = p
	g.SetReplicator(p)
	return f
}

func newFixture(t *testing.T, quorum int) *fixture {
	t.Helper()
	f := &fixture{rec: &obs.Recorder{}, net: netsim.New()}
	f.chk = obs.NewChecker(f.rec)
	f.net.SetTracer(f.chk)
	for _, id := range backupIDs {
		b := newBackup(t, id, f.chk, nil)
		f.backups = append(f.backups, b)
		f.reps = append(f.reps, b)
	}
	g, err := guardian.New(primaryID, guardian.WithTracer(f.chk))
	if err != nil {
		t.Fatal(err)
	}
	g.SetSynchronousForces(true)
	f.g = g
	p, err := NewPrimary(Config{
		Self: primaryID, Site: g.Site(), Quorum: quorum,
		Net: f.net, Replicas: f.reps, Tracer: f.chk,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.p = p
	g.SetReplicator(p)
	return f
}

// initCounter commits the action that creates counter "c".
func initCounter(t *testing.T, g *guardian.Guardian) {
	t.Helper()
	a := g.Begin()
	c, err := a.NewAtomic(value.Int(0))
	if err == nil {
		err = a.SetVar("c", c)
	}
	if err == nil {
		err = a.Commit()
	}
	if err != nil {
		t.Fatal(err)
	}
}

// addCommit runs one committing action adding delta to "c", returning
// the commit error.
func addCommit(g *guardian.Guardian, delta int64) error {
	a := g.Begin()
	c, ok := g.VarAtomic("c")
	if !ok {
		return errors.New("counter lost")
	}
	if err := a.Update(c, func(v value.Value) value.Value {
		return value.Int(int64(v.(value.Int)) + delta)
	}); err != nil {
		return err
	}
	return a.Commit()
}

func counterValue(t *testing.T, g *guardian.Guardian) int64 {
	t.Helper()
	c, ok := g.VarAtomic("c")
	if !ok {
		t.Fatal("counter lost")
	}
	return int64(c.Base().(value.Int))
}

func checkClean(t *testing.T, f *fixture) {
	t.Helper()
	if err := f.chk.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPrimaryValidation(t *testing.T) {
	g, err := guardian.New(1)
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New()
	b1, _ := NewBackup(BackupConfig{ID: 101, Primary: 1})
	b2, _ := NewBackup(BackupConfig{ID: 101, Primary: 1})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil site", Config{Self: 1, Net: net, Quorum: 1}},
		{"nil transport", Config{Self: 1, Site: g.Site(), Quorum: 1}},
		{"quorum zero", Config{Self: 1, Site: g.Site(), Net: net, Quorum: 0}},
		{"quorum beyond copies", Config{Self: 1, Site: g.Site(), Net: net, Quorum: 3, Replicas: []Replica{b1}}},
		{"duplicate replica ids", Config{Self: 1, Site: g.Site(), Net: net, Quorum: 2, Replicas: []Replica{b1, b2}}},
	}
	for _, tc := range cases {
		if _, err := NewPrimary(tc.cfg); err == nil {
			t.Fatalf("%s: NewPrimary accepted the config", tc.name)
		}
	}
	if _, err := NewPrimary(Config{Self: 1, Site: g.Site(), Net: net, Quorum: 2, Replicas: []Replica{b1}}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// The steady state: every commit's force completes only after both
// backups hold the prefix, and all three copies agree byte-for-byte on
// the durable boundary.
func TestCommitReplicatesToQuorum(t *testing.T) {
	f := newFixture(t, 2)
	initCounter(t, f.g)
	for _, d := range []int64{5, 7, -2} {
		if err := addCommit(f.g, d); err != nil {
			t.Fatal(err)
		}
	}
	if got := counterValue(t, f.g); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	st := f.p.Status()
	if st.Role != wire.RolePrimary || st.Alive != 2 || st.Replicas != 2 || st.Quorum != 2 {
		t.Fatalf("primary status = %+v", st)
	}
	if st.QuorumBytes != st.Durable || st.Durable == 0 {
		t.Fatalf("quorum boundary %d lags durable %d", st.QuorumBytes, st.Durable)
	}
	for _, b := range f.backups {
		bs := b.Status()
		if bs.Role != wire.RoleBackup || bs.Durable != st.Durable {
			t.Fatalf("backup %d status = %+v, want backup at %d", b.ID(), bs, st.Durable)
		}
	}
	rounds, leads, rides := f.p.Stats()
	if rounds == 0 || leads == 0 {
		t.Fatalf("stats = (%d, %d, %d), want at least one led round", rounds, leads, rides)
	}
	checkClean(t, f)
}

// Quorum 1 disables the force gate entirely: commits complete without
// any replication round.
func TestQuorumOneNeverBlocks(t *testing.T) {
	f := newFixture(t, 1)
	initCounter(t, f.g)
	if err := addCommit(f.g, 3); err != nil {
		t.Fatal(err)
	}
	if rounds, _, _ := f.p.Stats(); rounds != 0 {
		t.Fatalf("rounds = %d, want 0 with quorum 1", rounds)
	}
	if err := f.p.WaitQuorum(stablelog.NoLSN); err != nil {
		t.Fatalf("WaitQuorum(NoLSN) = %v", err)
	}
	checkClean(t, f)
}

// With one of two backups down, 2-of-3 still commits; after the node
// returns, the next commit ships the whole backlog (the catch-up).
func TestOneBackupDownQuorumHolds(t *testing.T) {
	f := newFixture(t, 2)
	f.net.SetDown(backupIDs[0], true)
	initCounter(t, f.g)
	if err := addCommit(f.g, 5); err != nil {
		t.Fatalf("commit with one backup down: %v", err)
	}
	st := f.p.Status()
	if st.Alive != 1 {
		t.Fatalf("alive = %d, want 1", st.Alive)
	}
	if b := f.backups[0].Status(); b.Durable != 0 {
		t.Fatalf("down backup durable = %d, want 0", b.Durable)
	}
	if b := f.backups[1].Status(); b.Durable != st.Durable {
		t.Fatalf("up backup durable = %d, want %d", b.Durable, st.Durable)
	}

	f.net.SetDown(backupIDs[0], false)
	if err := addCommit(f.g, 2); err != nil {
		t.Fatal(err)
	}
	st = f.p.Status()
	if st.Alive != 2 {
		t.Fatalf("alive = %d after heal, want 2", st.Alive)
	}
	if b := f.backups[0].Status(); b.Durable != st.Durable {
		t.Fatalf("healed backup durable = %d, want %d", b.Durable, st.Durable)
	}
	caught := false
	for _, e := range f.rec.Events() {
		if e.Kind == obs.KindRepCatchup && e.To == uint64(backupIDs[0]) {
			caught = true
		}
	}
	if !caught {
		t.Fatal("no rep.catchup event for the healed backup")
	}
	checkClean(t, f)
}

// Both backups down: the force cannot reach 2-of-3, the commit fails
// with ErrQuorumLost, and no durable outcome is acknowledged (R4 would
// flag it). After the network heals the guardian commits again.
func TestQuorumLost(t *testing.T) {
	f := newFixture(t, 2)
	initCounter(t, f.g)
	f.net.SetDown(backupIDs[0], true)
	f.net.SetDown(backupIDs[1], true)
	partitioned := f.rec.Len()
	if err := addCommit(f.g, 9); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("commit with both backups down = %v, want ErrQuorumLost", err)
	}
	for _, e := range f.rec.Events()[partitioned:] {
		if e.Kind == obs.KindRepQuorum && e.OK {
			t.Fatal("a quorum round reported OK with both backups down")
		}
	}
	f.net.SetDown(backupIDs[0], false)
	f.net.SetDown(backupIDs[1], false)
	// The failed action's outcome is ambiguous and it still holds the
	// counter's lock, so the post-heal commit uses a fresh object.
	a := f.g.Begin()
	c2, err := a.NewAtomic(value.Int(1))
	if err == nil {
		err = a.SetVar("c2", c2)
	}
	if err == nil {
		err = a.Commit()
	}
	if err != nil {
		t.Fatalf("commit after heal: %v", err)
	}
	st := f.p.Status()
	for _, b := range f.backups {
		if got := b.Status().Durable; got != st.Durable {
			t.Fatalf("backup %d durable = %d after heal, want %d", b.ID(), got, st.Durable)
		}
	}
	checkClean(t, f)
}

// A cut primary–backup link is indistinguishable from that backup being
// down: quorum holds on the surviving majority.
func TestLinkCutQuorumHolds(t *testing.T) {
	f := newFixture(t, 2)
	initCounter(t, f.g)
	f.net.Cut(ids.GuardianID(1), backupIDs[1], true)
	if err := addCommit(f.g, 4); err != nil {
		t.Fatalf("commit with one link cut: %v", err)
	}
	if b := f.backups[1].Status(); b.Durable == f.p.Status().Durable {
		t.Fatal("cut-off backup received the shipment")
	}
	f.net.Cut(ids.GuardianID(1), backupIDs[1], false)
	if err := addCommit(f.g, 4); err != nil {
		t.Fatal(err)
	}
	if b := f.backups[1].Status(); b.Durable != f.p.Status().Durable {
		t.Fatalf("backup durable = %d after heal, want %d", b.Durable, f.p.Status().Durable)
	}
	checkClean(t, f)
}

// Promotion: the backup bumps its epoch, recovers the received prefix
// with the existing backward-scan recovery, and serves the committed
// state; the deposed primary's next commit fails with ErrStaleReplica
// and stays fenced forever after.
func TestPromoteTakesOverAndFencesOldPrimary(t *testing.T) {
	f := newFixture(t, 2)
	initCounter(t, f.g)
	for _, d := range []int64{5, 7} {
		if err := addCommit(f.g, d); err != nil {
			t.Fatal(err)
		}
	}
	b := f.backups[0]
	g2, err := b.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if err := guardian.CheckRecovered(g2); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g2); got != 12 {
		t.Fatalf("promoted counter = %d, want 12", got)
	}
	if !b.Promoted() || b.Guardian() != g2 {
		t.Fatal("promotion state not latched")
	}
	if again, err := b.Promote(); err != nil || again != g2 {
		t.Fatalf("second Promote = (%p, %v), want the same guardian", again, err)
	}
	if st := b.Status(); st.Role != wire.RolePrimary || st.Epoch != 2 {
		t.Fatalf("promoted status = %+v, want primary at epoch 2", st)
	}

	// The deposed primary must refuse to acknowledge anything more.
	if err := addCommit(f.g, 100); !errors.Is(err, ErrStaleReplica) {
		t.Fatalf("deposed commit = %v, want ErrStaleReplica", err)
	}
	// The fence is latched: every later quorum wait fails immediately,
	// without contacting anyone (the failed commit above still holds its
	// locks — its outcome is ambiguous — so probe WaitQuorum directly).
	rounds, _, _ := f.p.Stats()
	if err := f.p.WaitQuorum(stablelog.LSN(0)); !errors.Is(err, ErrStaleReplica) {
		t.Fatalf("deposed WaitQuorum = %v, want ErrStaleReplica", err)
	}
	if r2, _, _ := f.p.Stats(); r2 != rounds {
		t.Fatalf("deposed primary ran %d more rounds", r2-rounds)
	}
	// The promoted guardian keeps serving new commits (unreplicated).
	if err := addCommit(g2, 8); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g2); got != 20 {
		t.Fatalf("promoted counter = %d, want 20", got)
	}
	promoted := false
	for _, e := range f.rec.Events() {
		if e.Kind == obs.KindRepPromote && e.Gid == uint64(backupIDs[0]) {
			promoted = true
		}
	}
	if !promoted {
		t.Fatal("no rep.promote event")
	}
	checkClean(t, f)
}

// A promoted backup refuses appends and snapshots from the deposed
// primary in-band: it acks its own higher epoch and applies nothing.
func TestPromotedBackupRefusesStaleTraffic(t *testing.T) {
	b := newBackup(t, 101, nil, nil)
	if _, err := b.Promote(); err != nil {
		t.Fatal(err)
	}
	before := b.Status().Durable
	ack, err := b.Append(wire.RepAppend{Epoch: 1, Start: before})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Epoch != 2 || b.Status().Durable != before {
		t.Fatalf("stale append: ack %+v, durable %d", ack, b.Status().Durable)
	}
	if ack, err := b.Snapshot(wire.RepSnapshot{Epoch: 1}); err != nil || ack.Epoch != 2 {
		t.Fatalf("stale snapshot: ack %+v, %v", ack, err)
	}
	if ack, err := b.Heartbeat(wire.RepHeartbeat{Epoch: 1}); err != nil || ack.Epoch != 2 {
		t.Fatalf("stale heartbeat: ack %+v, %v", ack, err)
	}
}

// swapReplica lets a test replace the backup behind a fixed replica
// identity — the "node restarted" and "node lost its disk" scenarios.
type swapReplica struct {
	mu sync.Mutex
	b  *Backup
}

func (s *swapReplica) get() *Backup {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b
}
func (s *swapReplica) set(b *Backup) {
	s.mu.Lock()
	s.b = b
	s.mu.Unlock()
}
func (s *swapReplica) ID() ids.GuardianID { return s.get().ID() }
func (s *swapReplica) Append(a wire.RepAppend) (wire.RepAck, error) {
	return s.get().Append(a)
}
func (s *swapReplica) Heartbeat(h wire.RepHeartbeat) (wire.RepAck, error) {
	return s.get().Heartbeat(h)
}
func (s *swapReplica) Snapshot(sn wire.RepSnapshot) (wire.RepAck, error) {
	return s.get().Snapshot(sn)
}

// A restarted backup reopens its surviving volume and resumes from the
// durable prefix found there: the next append extends it, with no
// snapshot reset.
func TestRejoinResumesDurablePrefix(t *testing.T) {
	vol := stablelog.NewMemVolume(512)
	b1 := newBackup(t, 101, nil, vol)
	sw := &swapReplica{b: b1}
	b2 := newBackup(t, 102, nil, nil)
	f := newFixtureReps(t, 2, []Replica{sw, b2})
	initCounter(t, f.g)
	if err := addCommit(f.g, 5); err != nil {
		t.Fatal(err)
	}
	mid := b1.Status().Durable
	if mid == 0 {
		t.Fatal("backup received nothing before the restart")
	}
	// The process restarts: a fresh Backup over the same volume.
	sw.set(newBackup(t, 101, nil, vol))
	if got := sw.get().Status().Durable; got != mid {
		t.Fatalf("reopened backup durable = %d, want %d", got, mid)
	}
	if err := addCommit(f.g, 7); err != nil {
		t.Fatal(err)
	}
	if got, want := sw.get().Status().Durable, f.p.Status().Durable; got != want {
		t.Fatalf("rejoined backup durable = %d, want %d", got, want)
	}
	for _, e := range f.rec.Events() {
		if e.Kind == obs.KindRepCatchup && e.Gid == 101 && e.Durable == 0 {
			t.Fatal("rejoin triggered a snapshot reset; it should resume the prefix")
		}
	}
	checkClean(t, f)
}

// A backup that lost its disk comes back empty: its ack (0) is behind
// the primary's cursor, the primary rewinds once and re-ships the whole
// log through the ordinary append path.
func TestDiskLossRewindsAndReships(t *testing.T) {
	b1 := newBackup(t, 101, nil, nil)
	sw := &swapReplica{b: b1}
	b2 := newBackup(t, 102, nil, nil)
	f := newFixtureReps(t, 2, []Replica{sw, b2})
	initCounter(t, f.g)
	if err := addCommit(f.g, 5); err != nil {
		t.Fatal(err)
	}
	if b1.Status().Durable == 0 {
		t.Fatal("backup received nothing before the disk loss")
	}
	sw.set(newBackup(t, 101, nil, nil)) // empty volume
	if err := addCommit(f.g, 7); err != nil {
		t.Fatal(err)
	}
	if got, want := sw.get().Status().Durable, f.p.Status().Durable; got != want {
		t.Fatalf("re-shipped backup durable = %d, want %d", got, want)
	}
	checkClean(t, f)
}

// preloadDivergent fills a backup with a forced log history this
// test's primary never wrote — the state of a replica rejoining after
// following a different (pre-failover) primary. Returns the divergent
// durable byte count.
func preloadDivergent(t *testing.T, b *Backup, entries int) uint64 {
	t.Helper()
	vol := stablelog.NewMemVolume(512)
	site, err := stablelog.CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	log := site.Log()
	for i := 0; i < entries; i++ {
		payload := []byte(fmt.Sprintf("old-history-%04d-%s", i, string(bytes.Repeat([]byte{0xEE}, 96))))
		if _, err := log.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Force(); err != nil {
		t.Fatal(err)
	}
	durable, _ := log.TailInfo()
	raw, prevLen, err := log.ReadRaw(0, int(durable))
	if err != nil {
		t.Fatal(err)
	}
	ack, err := b.Append(wire.RepAppend{Epoch: 1, Start: 0, PrevLen: prevLen, Frames: raw})
	if err != nil || !ack.Applied || ack.Durable != durable {
		t.Fatalf("preload ack = %+v, %v, want %d bytes applied", ack, err, durable)
	}
	return durable
}

// A replica rejoining after a failover can hold a longer forced prefix
// of the old history than the new primary's entire log. Its refusal
// acks name offsets this primary never shipped; adopting them as
// replicated progress would acknowledge commits durable on one true
// copy only — an acked-but-lost commit at the next crash. The primary
// must reset the replica with a snapshot offer and re-ship, and quorum
// coverage must never exceed its own durable boundary.
func TestRejoinedLongerOldHistoryIsResetNotCounted(t *testing.T) {
	b := newBackup(t, 101, nil, nil)
	divergent := preloadDivergent(t, b, 64)
	f := newFixtureReps(t, 2, []Replica{b})
	initCounter(t, f.g)
	for _, d := range []int64{5, 7} {
		if err := addCommit(f.g, d); err != nil {
			t.Fatal(err)
		}
	}
	st := f.p.Status()
	if st.Durable >= divergent {
		t.Fatalf("history (%d bytes) outgrew the divergent preload (%d); raise the preload", st.Durable, divergent)
	}
	if st.QuorumBytes > st.Durable {
		t.Fatalf("quorum boundary %d exceeds the primary's %d durable bytes", st.QuorumBytes, st.Durable)
	}
	if st.QuorumBytes != st.Durable {
		t.Fatalf("quorum boundary %d lags durable %d after acknowledged commits", st.QuorumBytes, st.Durable)
	}
	if got := b.Status().Durable; got != st.Durable {
		t.Fatalf("backup durable = %d, want the old history (%d bytes) reset and re-shipped to %d", got, divergent, st.Durable)
	}
	// The shipped copy is the real history: a takeover recovers it.
	g2, err := b.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if err := guardian.CheckRecovered(g2); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g2); got != 12 {
		t.Fatalf("promoted counter = %d, want 12", got)
	}
	checkClean(t, f)
}

// A heartbeat ack reveals the replica's tail but proves nothing about
// the content behind it, so it may only rewind the cursor — adopting a
// longer tail would let a rejoined replica's old-history bytes satisfy
// the quorum without a single shipped frame.
func TestHeartbeatNeverAdvancesQuorumCoverage(t *testing.T) {
	b := newBackup(t, 101, nil, nil)
	divergent := preloadDivergent(t, b, 64)
	vol := stablelog.NewMemVolume(512)
	site, err := stablelog.CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := site.Log().ForceWrite([]byte("local-only entry")); err != nil {
		t.Fatal(err)
	}
	durable, _ := site.Log().TailInfo()
	p, err := NewPrimary(Config{Self: primaryID, Site: site, Quorum: 2, Net: netsim.New(), Replicas: []Replica{b}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	st := p.Status()
	if st.Alive != 1 {
		t.Fatalf("alive = %d after heartbeat, want 1", st.Alive)
	}
	if st.QuorumBytes != 0 {
		t.Fatalf("heartbeat turned the replica's %d divergent bytes into %d quorum-covered bytes (primary durable %d) without shipping anything", divergent, st.QuorumBytes, durable)
	}
}

// A replication round that never contacts a replica must not mark it
// alive or emit rep.catchup for it: a caught-up-but-down replica used
// to flip back to alive whenever the round target matched its cursor.
func TestRoundWithoutContactLeavesReplicaDead(t *testing.T) {
	f := newFixture(t, 3) // every copy must ack: rounds always run
	f.net.SetDown(backupIDs[1], true)
	log := f.g.Site().Log()
	if _, err := log.ForceWrite([]byte("entry")); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("force with backup %d down = %v, want ErrQuorumLost", backupIDs[1], err)
	}
	// Backup 101 acked the whole prefix; now it goes down too.
	f.net.SetDown(backupIDs[0], true)
	if err := f.p.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if alive := f.p.Status().Alive; alive != 0 {
		t.Fatalf("alive = %d after heartbeat with both backups down, want 0", alive)
	}
	mark := f.rec.Len()
	// 101's cursor equals the round target: the round has nothing to
	// ship it and must not resurrect it without a call.
	if err := f.p.WaitQuorum(stablelog.LSN(0)); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("WaitQuorum = %v, want ErrQuorumLost", err)
	}
	if alive := f.p.Status().Alive; alive != 0 {
		t.Fatalf("alive = %d after a no-contact round, want 0", alive)
	}
	for _, e := range f.rec.Events()[mark:] {
		if e.Kind == obs.KindRepCatchup {
			t.Fatalf("no-contact round emitted rep.catchup: %+v", e)
		}
	}
	checkClean(t, f)
}

// MaxEntry exists for replication: ReadRaw ships whole frames and can
// never split one across rep.appends, so the largest possible frame
// plus the message envelopes must fit a single wire frame. This pins
// the arithmetic against wire.MaxPayload.
func TestMaxEntryFrameFitsWirePayload(t *testing.T) {
	vol := stablelog.NewMemVolume(4096)
	site, err := stablelog.CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	log := site.Log()
	if _, err := log.ForceWrite(make([]byte, stablelog.MaxEntry)); err != nil {
		t.Fatal(err)
	}
	durable, _ := log.TailInfo()
	raw, prevLen, err := log.ReadRaw(0, 1) // at least one frame: the whole max-size frame
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(raw)) != durable {
		t.Fatalf("ReadRaw returned %d of %d durable bytes", len(raw), durable)
	}
	app := wire.RepAppend{Epoch: ^uint64(0), Start: ^uint64(0), PrevLen: prevLen, Frames: raw}
	payload := wire.EncodeRequest(wire.Request{Op: wire.OpRepAppend, Arg: wire.EncodeRepAppend(app)})
	if len(payload) > wire.MaxPayload {
		t.Fatalf("a max-entry rep.append request is %d bytes, over wire.MaxPayload %d: no such entry could ever replicate", len(payload), wire.MaxPayload)
	}
}

// Housekeeping switches the log generation: every replica cursor names
// discarded bytes, so the primary offers a snapshot reset and re-ships
// the compacted log — the ch. 5 machinery is the catch-up snapshot.
func TestHousekeepingSwitchSnapshotsReplicas(t *testing.T) {
	f := newFixture(t, 2)
	initCounter(t, f.g)
	for _, d := range []int64{5, 7, 9} {
		if err := addCommit(f.g, d); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.g.Housekeep(core.HousekeepCompact); err != nil {
		t.Fatal(err)
	}
	if err := addCommit(f.g, 2); err != nil {
		t.Fatalf("commit after switch: %v", err)
	}
	st := f.p.Status()
	for _, b := range f.backups {
		if got := b.Status().Durable; got != st.Durable {
			t.Fatalf("backup %d durable = %d after switch, want %d", b.ID(), got, st.Durable)
		}
	}
	reset := 0
	for _, e := range f.rec.Events() {
		if e.Kind == obs.KindRepCatchup && e.Durable == 0 && e.Gid != uint64(primaryID) {
			reset++
		}
	}
	if reset != 2 {
		t.Fatalf("%d snapshot resets, want one per backup", reset)
	}
	// The promoted copy of the compacted log still recovers the state.
	g2, err := f.backups[1].Promote()
	if err != nil {
		t.Fatal(err)
	}
	if err := guardian.CheckRecovered(g2); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g2); got != 23 {
		t.Fatalf("promoted counter = %d, want 23", got)
	}
	checkClean(t, f)
}
