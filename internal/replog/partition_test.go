package replog

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stablelog"
)

// The partition matrix asserts the exact rep.* message sequence of
// every network condition, in the style of the twopc partition tests:
// each event renders as a compact signature line and the whole exchange
// is compared. The tests drive a bare log site (payloads are opaque to
// replication), so frame addresses are simple arithmetic: every
// three-byte payload makes a 16-byte frame.

// repSig renders one replication or network event; other kinds render
// empty and are dropped, so guardian-internal events never disturb the
// message-sequence assertions.
func repSig(e obs.Event) string {
	switch e.Kind {
	case obs.KindNetCall:
		if e.OK {
			return fmt.Sprintf("call %d->%d", e.From, e.To)
		}
		return fmt.Sprintf("call %d->%d refused", e.From, e.To)
	case obs.KindRepSend:
		return fmt.Sprintf("send %d->%d @%d", e.From, e.To, e.Durable)
	case obs.KindRepAck:
		return fmt.Sprintf("ack %d->%d =%d", e.From, e.To, e.Durable)
	case obs.KindRepRecv:
		return fmt.Sprintf("recv[%d] =%d", e.Gid, e.Durable)
	case obs.KindRepQuorum:
		word := "short"
		if e.OK {
			word = "ok"
		}
		return fmt.Sprintf("quorum =%d %s", e.Durable, word)
	case obs.KindRepCatchup:
		if e.From != 0 {
			return fmt.Sprintf("catchup %d->%d =%d", e.From, e.To, e.Durable)
		}
		return fmt.Sprintf("reset[%d]", e.Gid)
	case obs.KindRepPromote:
		return fmt.Sprintf("promote[%d] =%d", e.Gid, e.Durable)
	default:
		return ""
	}
}

func repSigs(rec *obs.Recorder) []string {
	var out []string
	for _, e := range rec.Events() {
		if s := repSig(e); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func assertRepSeq(t *testing.T, rec *obs.Recorder, want []string) {
	t.Helper()
	got := repSigs(rec)
	n := len(got)
	if len(want) > n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		var g, w string
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			t.Fatalf("message %d = %q, want %q\nfull sequence: %q", i, g, w, got)
		}
	}
}

// logFixture wires a bare primary log site to two backups over netsim.
type logFixture struct {
	site    *stablelog.Site
	log     *stablelog.Log
	p       *Primary
	backups []*Backup
	net     *netsim.Network
	rec     *obs.Recorder
}

func newLogFixture(t *testing.T, quorum int) *logFixture {
	t.Helper()
	f := &logFixture{rec: &obs.Recorder{}, net: netsim.New()}
	f.net.SetTracer(f.rec)
	site, err := stablelog.CreateSite(stablelog.NewMemVolume(512))
	if err != nil {
		t.Fatal(err)
	}
	f.site = site
	f.log = site.Log()
	var reps []Replica
	for _, id := range backupIDs {
		b := newBackup(t, id, f.rec, nil)
		f.backups = append(f.backups, b)
		reps = append(reps, b)
	}
	p, err := NewPrimary(Config{
		Self: primaryID, Site: site, Quorum: quorum,
		Net: f.net, Replicas: reps, Tracer: f.rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.p = p
	site.SetReplicator(p)
	return f
}

// write appends one three-byte payload (a 16-byte frame) and returns
// its LSN.
func (f *logFixture) write(t *testing.T, s string) stablelog.LSN {
	t.Helper()
	if len(s) != 3 {
		t.Fatalf("payload %q: partition fixtures use 3-byte payloads", s)
	}
	lsn, err := f.log.Write([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

// Steady state: one force replicates to both backups in id order, then
// an already-covered force moves no messages at all.
func TestRepSequenceSteadyState(t *testing.T) {
	f := newLogFixture(t, 2)
	lsn := f.write(t, "p-0")
	if err := f.log.ForceTo(lsn); err != nil {
		t.Fatal(err)
	}
	assertRepSeq(t, f.rec, []string{
		"send 1->101 @0",
		"call 1->101",
		"recv[101] =16",
		"ack 1->101 =16",
		"send 1->102 @0",
		"call 1->102",
		"recv[102] =16",
		"ack 1->102 =16",
		"quorum =16 ok",
	})
	f.rec.Reset()
	if err := f.log.ForceTo(lsn); err != nil {
		t.Fatal(err)
	}
	if got := repSigs(f.rec); len(got) != 0 {
		t.Fatalf("covered force moved messages: %q", got)
	}
}

// One backup down: its send is refused, the quorum completes on the
// survivor. After the node returns, one append ships the whole backlog
// and the catch-up is announced.
func TestRepSequenceBackupDownAndCatchup(t *testing.T) {
	f := newLogFixture(t, 2)
	f.net.SetDown(101, true)
	lsn := f.write(t, "p-0")
	if err := f.log.ForceTo(lsn); err != nil {
		t.Fatal(err)
	}
	assertRepSeq(t, f.rec, []string{
		"send 1->101 @0",
		"call 1->101 refused",
		"send 1->102 @0",
		"call 1->102",
		"recv[102] =16",
		"ack 1->102 =16",
		"quorum =16 ok",
	})

	f.net.SetDown(101, false)
	lsn2 := f.write(t, "p-1")
	f.rec.Reset()
	if err := f.log.ForceTo(lsn2); err != nil {
		t.Fatal(err)
	}
	assertRepSeq(t, f.rec, []string{
		"send 1->101 @0", // the healed replica's backlog, one run
		"call 1->101",
		"recv[101] =32",
		"ack 1->101 =32",
		"catchup 1->101 =32",
		"send 1->102 @16",
		"call 1->102",
		"recv[102] =32",
		"ack 1->102 =32",
		"quorum =32 ok",
	})
}

// Both backups down: no copy beyond the primary's own, the force fails
// with ErrQuorumLost, and the round honestly reports a zero quorum
// boundary.
func TestRepSequenceQuorumLost(t *testing.T) {
	f := newLogFixture(t, 2)
	f.net.SetDown(101, true)
	f.net.SetDown(102, true)
	lsn := f.write(t, "p-0")
	if err := f.log.ForceTo(lsn); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("ForceTo = %v, want ErrQuorumLost", err)
	}
	assertRepSeq(t, f.rec, []string{
		"send 1->101 @0",
		"call 1->101 refused",
		"send 1->102 @0",
		"call 1->102 refused",
		"quorum =0 short",
	})
}

// A cut link is indistinguishable from a down node for that pair: the
// quorum completes on the reachable backup.
func TestRepSequenceLinkCut(t *testing.T) {
	f := newLogFixture(t, 2)
	f.net.Cut(ids.GuardianID(1), ids.GuardianID(102), true)
	lsn := f.write(t, "p-0")
	if err := f.log.ForceTo(lsn); err != nil {
		t.Fatal(err)
	}
	assertRepSeq(t, f.rec, []string{
		"send 1->101 @0",
		"call 1->101",
		"recv[101] =16",
		"ack 1->101 =16",
		"send 1->102 @0",
		"call 1->102 refused",
		"quorum =16 ok",
	})
}

// A promoted backup answers with its bumped epoch: the deposed primary
// sees the higher epoch in the ack, emits no quorum claim, fails the
// force with ErrStaleReplica, and every later force is fenced without
// moving a single message.
func TestRepSequenceStaleEpoch(t *testing.T) {
	f := newLogFixture(t, 2)
	lsn := f.write(t, "p-0")
	if err := f.log.ForceTo(lsn); err != nil {
		t.Fatal(err)
	}
	// Promote 101. The received bytes are opaque test payloads, so the
	// takeover state is uninteresting here — the scenario needs only the
	// epoch fence, which latches before the takeover recovery runs.
	if _, err := f.backups[0].Promote(); err != nil {
		t.Logf("takeover recovery over opaque payloads: %v", err)
	}
	if !f.backups[0].Promoted() {
		t.Fatal("epoch fence did not latch")
	}
	lsn2 := f.write(t, "p-1")
	f.rec.Reset()
	if err := f.log.ForceTo(lsn2); !errors.Is(err, ErrStaleReplica) {
		t.Fatalf("ForceTo = %v, want ErrStaleReplica", err)
	}
	assertRepSeq(t, f.rec, []string{
		"send 1->101 @16",
		"call 1->101",
		"ack 1->101 =16", // refused in-band: durable unmoved, epoch 2
		"send 1->102 @16",
		"call 1->102",
		"recv[102] =32",
		"ack 1->102 =32",
		// no quorum line: a deposed primary makes no quorum claims
	})
	f.rec.Reset()
	if err := f.log.ForceTo(lsn2); !errors.Is(err, ErrStaleReplica) {
		t.Fatalf("fenced ForceTo = %v, want ErrStaleReplica", err)
	}
	if got := repSigs(f.rec); len(got) != 0 {
		t.Fatalf("fenced primary moved messages: %q", got)
	}
}

// The whole matrix is sweep-deterministic: the same scripted history —
// writes, forces, crashes, heals, a cut, a failed force — produces a
// byte-identical event stream on every run.
func TestRepPartitionMatrixDeterministic(t *testing.T) {
	script := func() []byte {
		f := newLogFixture(t, 2)
		force := func(lsn stablelog.LSN, wantErr error) {
			t.Helper()
			if err := f.log.ForceTo(lsn); !errors.Is(err, wantErr) {
				t.Fatalf("ForceTo = %v, want %v", err, wantErr)
			}
		}
		force(f.write(t, "s-0"), nil)
		f.net.SetDown(101, true)
		force(f.write(t, "s-1"), nil)
		f.net.SetDown(102, true)
		force(f.write(t, "s-2"), ErrQuorumLost)
		f.net.SetDown(101, false)
		force(f.write(t, "s-3"), nil)
		f.net.SetDown(102, false)
		f.net.Cut(ids.GuardianID(1), ids.GuardianID(101), true)
		force(f.write(t, "s-4"), nil)
		f.net.Cut(ids.GuardianID(1), ids.GuardianID(101), false)
		force(f.write(t, "s-5"), nil)
		return f.rec.Text()
	}
	first := script()
	for i := 0; i < 3; i++ {
		if again := script(); !bytes.Equal(first, again) {
			t.Fatalf("run %d diverged from the first run:\n--- first\n%s\n--- run %d\n%s", i+2, first, i+2, again)
		}
	}
}
