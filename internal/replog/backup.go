package replog

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/stablelog"
	"repro/internal/wire"
)

// BackupConfig configures a Backup.
type BackupConfig struct {
	// ID is this replica's own transport address.
	ID ids.GuardianID
	// Primary is the replicated guardian's id: the identity the backup
	// assumes when promoted (the guardian moves; its id does not).
	Primary ids.GuardianID
	// Backend is the primary's storage organization — the shipped log
	// must be recovered by the writer family that produced it. Default
	// hybrid.
	Backend core.Backend
	// Volume holds the received log. Nil creates a fresh in-memory
	// volume; a rejoining replica passes its surviving volume and the
	// backup resumes from the durable prefix found there.
	Volume stablelog.Volume
	// BlockSize sizes the default in-memory volume's devices (512 when
	// zero). Ignored when Volume is set.
	BlockSize int
	// Tracer receives rep.* events and, at promotion, the takeover's
	// recovery.* events (nil traces nothing).
	Tracer obs.Tracer
}

// Backup is the replication receiver: it validates, persists, and acks
// frame runs shipped by a Primary, and can take over as the guardian by
// running the existing backward-scan recovery over its received prefix
// (Promote). It implements Replica for in-process wiring; over TCP a
// rosd server hosts it and dispatches the rep.* ops to these methods.
type Backup struct {
	cfg BackupConfig
	vol stablelog.Volume
	tr  obs.Tracer

	mu       sync.Mutex
	site     *stablelog.Site
	epoch    uint64 // highest epoch seen; adopted from the primary
	promoted bool
	g        *guardian.Guardian // set by Promote
}

// NewBackup opens (or creates) the backup's receiving log. With an
// existing volume the durable prefix found on it is resumed — the
// rejoin path: the next append either extends it or the primary
// rewinds to it.
func NewBackup(cfg BackupConfig) (*Backup, error) {
	if cfg.Backend == 0 {
		cfg.Backend = core.BackendHybrid
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 512
	}
	vol := cfg.Volume
	if vol == nil {
		vol = stablelog.NewMemVolume(cfg.BlockSize)
	}
	site, err := stablelog.OpenSite(vol)
	if err != nil {
		if !errors.Is(err, stablelog.ErrNoSite) {
			return nil, fmt.Errorf("replog: backup volume: %w", err)
		}
		site, err = stablelog.CreateSite(vol)
		if err != nil {
			return nil, fmt.Errorf("replog: backup volume: %w", err)
		}
	}
	return &Backup{
		cfg:  cfg,
		vol:  vol,
		tr:   obs.WithGuardian(cfg.Tracer, uint64(cfg.ID)),
		site: site,
		// Epochs start at 1 everywhere (replog.Config does the same), so
		// even a never-contacted backup promotes past a default primary.
		// Higher epochs are adopted from the first contact.
		epoch: 1,
	}, nil
}

// ID implements Replica.
func (b *Backup) ID() ids.GuardianID { return b.cfg.ID }

// refuseLocked acks the backup's current state without applying
// anything: the in-band refusal (Applied false, Durable naming the
// unchanged tail) or, for a stale sender, the higher-epoch notice.
// Caller holds b.mu.
func (b *Backup) refuseLocked() wire.RepAck {
	durable, _ := b.site.Log().TailInfo()
	return wire.RepAck{Epoch: b.epoch, Durable: durable}
}

// Append implements Replica: validate the run against the local tail,
// apply and force it, ack the new durable offset. A run that does not
// extend the tail exactly — wrong offset, broken back-chain, torn
// bytes — is refused by acking the unchanged tail; the sender rewinds
// or offers a snapshot. Nothing is ever partially applied and acked.
func (b *Backup) Append(app wire.RepAppend) (wire.RepAck, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.promoted || app.Epoch < b.epoch {
		return b.refuseLocked(), nil
	}
	b.epoch = app.Epoch
	log := b.site.Log()
	durable, lastLen := log.TailInfo()
	if app.Start != durable || app.PrevLen != lastLen {
		return b.refuseLocked(), nil
	}
	frames, err := stablelog.ParseFrames(app.Start, app.PrevLen, app.Frames)
	if err != nil {
		return b.refuseLocked(), nil
	}
	for _, f := range frames {
		lsn, err := log.Write(f.Payload)
		if err != nil {
			return wire.RepAck{}, fmt.Errorf("replog: backup %d apply: %w", b.cfg.ID, err)
		}
		if lsn != f.LSN {
			// Frames are a pure function of the payload sequence, so a
			// replayed payload landing at a different address means this
			// log is not the byte-identical copy the protocol maintains.
			return wire.RepAck{}, fmt.Errorf("replog: backup %d applied frame at %v, primary wrote it at %v", b.cfg.ID, lsn, f.LSN)
		}
	}
	if err := log.Force(); err != nil {
		return wire.RepAck{}, fmt.Errorf("replog: backup %d force: %w", b.cfg.ID, err)
	}
	newDurable, _ := log.TailInfo()
	if b.tr != nil {
		b.tr.Emit(obs.Event{Kind: obs.KindRepRecv, Durable: newDurable, Bytes: len(app.Frames)})
	}
	return wire.RepAck{Epoch: b.epoch, Durable: newDurable, Applied: true}, nil
}

// Heartbeat implements Replica.
func (b *Backup) Heartbeat(hb wire.RepHeartbeat) (wire.RepAck, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.promoted && hb.Epoch > b.epoch {
		b.epoch = hb.Epoch
	}
	return b.refuseLocked(), nil
}

// Snapshot implements Replica: accept the snapshot offer by discarding
// the received log — a fresh generation installed through the ch. 5
// switch machinery — and re-acking offset zero. The primary then ships
// its whole compacted log through the append path.
func (b *Backup) Snapshot(snap wire.RepSnapshot) (wire.RepAck, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.promoted || snap.Epoch < b.epoch {
		return b.refuseLocked(), nil
	}
	b.epoch = snap.Epoch
	newLog, gen, err := b.site.NewLog()
	if err != nil {
		return wire.RepAck{}, fmt.Errorf("replog: backup %d reset: %w", b.cfg.ID, err)
	}
	if err := b.site.Switch(newLog, gen); err != nil {
		return wire.RepAck{}, fmt.Errorf("replog: backup %d reset: %w", b.cfg.ID, err)
	}
	if b.tr != nil {
		b.tr.Emit(obs.Event{Kind: obs.KindRepCatchup, Durable: 0})
	}
	return wire.RepAck{Epoch: b.epoch, Durable: 0, Applied: true}, nil
}

// Promote makes the backup take over as the guardian: it bumps the
// replication epoch — appends from the deposed primary are refused
// from here on — and runs the existing crash recovery (guardian.Open)
// over the received prefix. The decision is explicit and external; a
// replica never promotes itself. Idempotent: a second call returns the
// already-recovered guardian.
func (b *Backup) Promote() (*guardian.Guardian, error) {
	b.mu.Lock()
	if b.promoted && b.g != nil {
		g := b.g
		b.mu.Unlock()
		return g, nil
	}
	if !b.promoted {
		// The epoch claim comes first: the bumped epoch is the fence
		// every rep handler checks, so no observer may see the promoted
		// latch without the epoch that justifies refusing the deposed
		// primary.
		b.epoch++
		b.promoted = true
	}
	durable, _ := b.site.Log().TailInfo()
	tr := b.tr
	b.mu.Unlock()

	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindRepPromote, Durable: durable})
	}
	// The guardian keeps its identity (cfg.Primary) across the move:
	// recovery over the received prefix sees its own log. The tracer is
	// handed to Open unstamped so the takeover's recovery events carry
	// the promoted guardian's id, like any other recovery.
	g, err := guardian.Open(b.cfg.Primary, b.vol, b.cfg.Backend, guardian.WithTracer(b.cfg.Tracer))
	if err != nil {
		return nil, fmt.Errorf("replog: promote backup %d: %w", b.cfg.ID, err)
	}
	b.mu.Lock()
	//roslint:unfenced the epoch bump above published the takeover before recovery ran; this only caches the recovered guardian for the idempotent re-call
	b.g = g
	b.mu.Unlock()
	return g, nil
}

// Promoted reports whether Promote has been called.
func (b *Backup) Promoted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.promoted
}

// Guardian returns the recovered guardian after promotion (nil
// before).
func (b *Backup) Guardian() *guardian.Guardian {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.g
}

// Status reports the backup's replication state (the OpStatus answer).
func (b *Backup) Status() wire.RepStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	durable, _ := b.site.Log().TailInfo()
	role := wire.RoleBackup
	if b.promoted {
		role = wire.RolePrimary
	}
	return wire.RepStatus{
		Role:        role,
		Epoch:       b.epoch,
		Durable:     durable,
		QuorumBytes: durable,
	}
}
