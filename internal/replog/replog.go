// Package replog replicates a guardian's stable log to a set of backup
// replicas: a Primary ships raw CRC-framed log records to K Backups
// over a Transport, and a force on the primary's log completes only
// when a configurable quorum of copies — counting the primary's own —
// has the forced prefix durably.
//
// The thesis builds durability on a two-copy stable device (§3.1,
// after Lampson–Sturgis); this package retells that story at node
// granularity. The unit of shipping is the log record, not the page:
// because stable-log frames are laid down contiguously from byte 0 and
// each frame carries its own length, back-chain link, and CRC, a
// backup that replays the shipped payloads through its own log
// produces a byte-identical copy with identical LSNs. A promoted
// backup therefore recovers by running the existing backward-scan
// recovery (guardian.Open) over its received prefix — replication adds
// no recovery code, only a second place to recover from.
//
// Protocol (rep.* messages, internal/wire):
//
//   - append: the primary ships the frame run [cursor, durable) to a
//     replica; the replica validates the chain (stablelog.ParseFrames),
//     applies and forces it, and acks its new durable offset.
//   - ack: every reply carries (epoch, durable, applied). Applied
//     false is the in-band refusal — wrong offset or divergent
//     back-chain — and the primary rewinds its cursor or escalates. An
//     epoch above the primary's own means the primary was deposed
//     (ErrStaleReplica). The primary counts an ack toward quorum
//     coverage only when it acknowledges exactly the bytes shipped
//     this tenure: a tail the primary never shipped (a replica
//     rejoining after a failover with old-history bytes) is divergence
//     and draws a snapshot offer, never coverage — and the quorum
//     boundary is additionally capped at the primary's own durable
//     boundary.
//   - heartbeat: liveness and lag probe; no data moves.
//   - snapshot-offer: a lagging or diverged replica discards its
//     received log (a fresh generation via the ch. 5 switch machinery)
//     and re-acks offset 0; the primary then ships its whole current
//     log — compacted by housekeeping to live state, which is exactly
//     what keeps the "snapshot" small — through the append path.
//
// ForceTo integration: the Primary is a stablelog.Replicator. The
// log's ForceTo first completes the local device force (through the
// PR 3 group-commit scheduler), then calls WaitQuorum, where
// concurrent waiters elect a leader exactly as force rounds do — one
// replication round covers a shared force round. A quorum failure
// surfaces as a ForceTo error, so the committing writer never
// acknowledges the outcome and rolls the action back from its PAT:
// zero acked-but-lost commits by construction.
//
// Determinism contract: the package spawns no goroutines and reads no
// clocks or randomness; replicas are contacted in ascending id order;
// every state change happens inside some caller's WaitQuorum,
// Heartbeat, or handler call. Under netsim's deterministic delivery a
// scripted history produces a byte-identical rep.* event stream — the
// partition matrix asserts the same stream over netsim and loopback
// TCP.
package replog

import (
	"errors"

	"repro/internal/ids"
	"repro/internal/wire"
)

// ErrQuorumLost is returned by WaitQuorum (and therefore by ForceTo on
// a replicated log) when fewer than the configured quorum of copies
// durably hold the forced prefix. The entry is durable locally and may
// yet reach the quorum through a later round — the caller must treat
// the outcome as unacknowledged, the same ambiguity as a failed device
// force.
var ErrQuorumLost = errors.New("replog: quorum lost")

// ErrStaleReplica is returned when a peer reports a higher replication
// epoch than the caller's own: a backup has been promoted and this
// primary is deposed. It must stop acknowledging commits immediately —
// even if enough low-epoch replicas still answer — or the cluster
// would serve two histories.
var ErrStaleReplica = errors.New("replog: stale replica epoch")

// Replica is the primary's view of one backup: the three rep.*
// requests, answered synchronously with a durability ack. The
// in-process Backup implements it directly; client.RemoteReplica
// implements it over TCP against a rosd server hosting a Backup.
type Replica interface {
	// ID is the replica's transport address.
	ID() ids.GuardianID
	// Append validates, persists, and acks a shipped frame run.
	Append(app wire.RepAppend) (wire.RepAck, error)
	// Heartbeat answers a liveness probe with the replica's state.
	Heartbeat(hb wire.RepHeartbeat) (wire.RepAck, error)
	// Snapshot discards the replica's received log and re-acks from
	// offset zero (the snapshot-offer for lagging replicas).
	Snapshot(snap wire.RepSnapshot) (wire.RepAck, error)
}
