package guardian

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/object"
)

// ErrRetriesExhausted is returned by RunAtomic when every attempt
// failed with a retryable error.
var ErrRetriesExhausted = errors.New("guardian: retries exhausted")

// RunAtomic runs fn inside a fresh top-level action and commits it when
// fn succeeds. If fn fails the action is aborted; lock conflicts and
// lock timeouts (the possible-deadlock signal) are retried with jittered
// backoff, up to attempts tries. Any other error aborts and returns.
//
// This is the standard Argus usage loop: actions that might deadlock
// are timed out, aborted, and re-run.
func RunAtomic(g *Guardian, attempts int, fn func(a *Action) error) error {
	if attempts < 1 {
		attempts = 1
	}
	backoff := time.Millisecond
	var last error
	for try := 0; try < attempts; try++ {
		a := g.Begin()
		err := fn(a)
		if err == nil {
			if err := a.Commit(); err != nil {
				return err
			}
			return nil
		}
		if aerr := a.Abort(); aerr != nil {
			return aerr
		}
		if !errors.Is(err, object.ErrLockTimeout) && !errors.Is(err, object.ErrLockConflict) {
			return err
		}
		last = err
		// Jittered backoff so colliding retriers desynchronize.
		//roslint:nondet live-contention retry path, never reached by the single-threaded sweep; jitter is the point
		time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff))))
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
	return fmt.Errorf("%w after %d attempts: %v", ErrRetriesExhausted, attempts, last)
}
