package guardian

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/value"
)

func TestRunAtomicCommits(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	err := RunAtomic(g, 3, func(a *Action) error {
		return a.Update(c, func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + 1)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g); got != 1 {
		t.Fatalf("counter = %d", got)
	}
}

func TestRunAtomicAbortsOnApplicationError(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	boom := errors.New("boom")
	err := RunAtomic(g, 3, func(a *Action) error {
		if err := a.Set(c, value.Int(999)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := counterValue(t, g); got != 0 {
		t.Fatalf("counter = %d after failed action", got)
	}
	// The lock is free for the next action.
	if err := RunAtomic(g, 1, func(a *Action) error {
		return a.Set(c, value.Int(5))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAtomicRetriesLockConflicts(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	// Hold the lock briefly in a competing action, then release.
	holder := g.Begin()
	if err := holder.Set(c, value.Int(1)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(15 * time.Millisecond)
		if err := holder.Commit(); err != nil {
			t.Error(err)
		}
	}()
	err := RunAtomic(g, 20, func(a *Action) error {
		return a.UpdateWait(c, 5*time.Millisecond, func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + 10)
		})
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g); got != 11 {
		t.Fatalf("counter = %d, want 11", got)
	}
}

func TestRunAtomicExhaustsRetries(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	holder := g.Begin()
	if err := holder.Set(c, value.Int(1)); err != nil {
		t.Fatal(err)
	}
	err := RunAtomic(g, 3, func(a *Action) error {
		return a.UpdateWait(c, time.Millisecond, func(v value.Value) value.Value { return v })
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v", err)
	}
	if err := holder.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestRunAtomicDeadlockingWorkers: workers lock two counters in
// opposite orders — guaranteed deadlocks — and RunAtomic's
// timeout+retry resolves them all.
func TestRunAtomicDeadlockingWorkers(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	setup := g.Begin()
	x, _ := setup.NewAtomic(value.Int(0))
	y, _ := setup.NewAtomic(value.Int(0))
	if err := setup.SetVar("x", x); err != nil {
		t.Fatal(err)
	}
	if err := setup.SetVar("y", y); err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		first, second := x, y
		if w%2 == 1 {
			first, second = y, x
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				err := RunAtomic(g, 50, func(a *Action) error {
					if err := a.UpdateWait(first, 5*time.Millisecond, func(v value.Value) value.Value {
						return value.Int(int64(v.(value.Int)) + 1)
					}); err != nil {
						return err
					}
					return a.UpdateWait(second, 5*time.Millisecond, func(v value.Value) value.Value {
						return value.Int(int64(v.(value.Int)) + 1)
					})
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := int64(workers * per)
	gx, _ := g.VarAtomic("x")
	gy, _ := g.VarAtomic("y")
	if int64(gx.Base().(value.Int)) != want || int64(gy.Base().(value.Int)) != want {
		t.Fatalf("x=%s y=%s, want %d each",
			value.String(gx.Base()), value.String(gy.Base()), want)
	}
}
