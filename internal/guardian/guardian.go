// Package guardian implements the Argus guardian runtime of thesis
// §2.1 as a Go library: a logical node with stable state (recoverable
// objects reachable from its stable variables), volatile state, atomic
// actions with read/write locking, and a recovery system that makes the
// stable state survive crashes.
//
// A guardian's stable variables are held in a single recoverable object
// with the predefined UID (§3.3.3.2); applications name them with
// strings. Actions are begun at a coordinator guardian and may be
// joined at participant guardians; commitment runs the two-phase commit
// protocol of §2.2 through the recovery system.
package guardian

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/hybridlog"
	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/objindex"
	"repro/internal/obs"
	"repro/internal/simplelog"
	"repro/internal/stablelog"
	"repro/internal/twopc"
	"repro/internal/value"
)

// Guardian is one logical node. Create with New, recover a crashed one
// with Restart.
type Guardian struct {
	id      ids.GuardianID
	backend core.Backend
	vol     stablelog.Volume
	memVol  *stablelog.MemVolume // non-nil when vol is the in-memory simulation
	site    *stablelog.Site      // nil for the shadow backend
	rs      core.RecoverySystem
	heap    *object.Heap
	uids    *ids.UIDGenerator
	aids    *ids.ActionIDGenerator
	tr      obs.Tracer // raw (unwrapped) tracer, propagated across Restart

	// idx is the live-version index over committed object versions
	// (nil when disabled with WithoutIndex). It is mutated only by
	// installCommitted and rebuildIndex — see internal/objindex for the
	// consistency contract and roslint's lockdiscipline rule 5 for the
	// enforcement.
	idx *objindex.Index

	// freshVars records that recovery found nothing on stable storage
	// and registered the stable-variables object afresh, as New does; it
	// is then legitimately absent from the AS until first logged.
	freshVars bool

	// mu is the guardian table lock: it guards only the action tables
	// (live, ct, pt) and the crashed flag, with short critical sections —
	// a table lookup or update, never log I/O, object flattening, or a
	// force wait. Per-action footprints live behind each actionState's
	// own mutex, so actions touching disjoint objects proceed in
	// parallel and their outcome forces coalesce in the log's group
	// scheduler. Lock order: g.mu → actionState.mu → writer → log
	// (see DESIGN.md "Concurrency architecture"); no code acquires g.mu
	// while holding a later lock.
	mu      sync.Mutex
	live    map[ids.ActionID]*actionState
	ct      map[ids.ActionID]simplelog.CoordInfo
	pt      map[ids.ActionID]simplelog.PartState
	crashed bool

	// handlers is the guardian's external interface (§2.1), guarded by
	// its own mutex: handler registration must not contend with the
	// action tables, and registries of different guardians are
	// independent.
	handlersMu sync.Mutex
	handlers   map[string]HandlerFunc
}

// actionState is one action's volatile footprint at this guardian. Its
// mutex guards all fields; it is ordered after g.mu (the table lock
// locates the state, then the state locks itself) and before any writer
// or log mutex. Holding it across a recovery-system call or force wait
// is forbidden — that would serialize independent actions again.
type actionState struct {
	mu       sync.Mutex
	mos      map[ids.UID]object.Recoverable // modified objects
	locked   map[ids.UID]*object.Atomic     // atomics holding locks for this action
	early    map[ids.UID]bool               // early-prepared and unmodified since
	remote   map[ids.GuardianID]*Guardian   // participants reached via Call
	prepared bool
}

func newActionState() *actionState {
	return &actionState{
		mos:    make(map[ids.UID]object.Recoverable),
		locked: make(map[ids.UID]*object.Atomic),
		early:  make(map[ids.UID]bool),
	}
}

// Option configures guardian creation.
type Option func(*config)

type config struct {
	backend   core.Backend
	blockSize int
	vol       stablelog.Volume
	tracer    obs.Tracer
	noIndex   bool
}

// WithBackend selects the stable-storage organization (default hybrid).
func WithBackend(b core.Backend) Option {
	return func(c *config) { c.backend = b }
}

// WithBlockSize sets the simulated device block size (default 512).
func WithBlockSize(n int) Option {
	return func(c *config) { c.blockSize = n }
}

// WithTracer installs an event tracer on the guardian's storage stack.
// Every event is stamped with the guardian's id before it reaches tr.
// The tracer survives Restart: the recovered guardian re-installs it
// and emits the recovery-phase events through it.
func WithTracer(tr obs.Tracer) Option {
	return func(c *config) { c.tracer = tr }
}

// WithoutIndex disables the live-version index: every ReadKey takes
// the action-path device-bound fallback. The default (index enabled)
// is correct for all workloads; this exists for the device-bound
// baseline rows of benchmarks and for A/B debugging.
func WithoutIndex() Option {
	return func(c *config) { c.noIndex = true }
}

// WithVolume runs the guardian's stable storage on the given volume —
// e.g. a stablelog.FileVolume for real disk persistence — instead of
// the default in-memory simulation. Crash injection (Crash, Volume,
// the crashtest harness) requires the in-memory volume; a file-backed
// guardian is "crashed" by closing the volume and reopened with Open.
func WithVolume(vol stablelog.Volume) Option {
	return func(c *config) { c.vol = vol }
}

// epochPage is the root-store page holding the guardian's incarnation
// number. Action identifiers embed it so that an action id can never be
// reused across a crash: an action wiped out mid-prepare leaves no
// trace in the PT or CT, so a volatile counter alone could hand its id
// to a new action, whose recovery would then adopt the dead action's
// orphaned data entries.
const epochPage = 2

// epochShift positions the incarnation number above the per-epoch
// action counter within ActionID.Seq.
const epochShift = 40

func bumpEpoch(vol stablelog.Volume) (uint64, error) {
	root, err := vol.Root()
	if err != nil {
		return 0, err
	}
	page, err := root.ReadPage(epochPage)
	if err != nil {
		return 0, err
	}
	var epoch uint64
	if len(page) >= 8 {
		epoch = binary.LittleEndian.Uint64(page[:8])
	}
	epoch++
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], epoch)
	if err := root.WritePage(epochPage, buf[:]); err != nil {
		return 0, err
	}
	return epoch, nil
}

// New creates a guardian with empty stable state.
func New(id ids.GuardianID, opts ...Option) (*Guardian, error) {
	cfg := config{backend: core.BackendHybrid, blockSize: 512}
	for _, o := range opts {
		o(&cfg)
	}
	vol := cfg.vol
	var memVol *stablelog.MemVolume
	if vol == nil {
		memVol = stablelog.NewMemVolume(cfg.blockSize)
		vol = memVol
	} else if mv, ok := vol.(*stablelog.MemVolume); ok {
		memVol = mv
	}
	epoch, err := bumpEpoch(vol)
	if err != nil {
		return nil, err
	}
	g := &Guardian{
		id:       id,
		backend:  cfg.backend,
		vol:      vol,
		memVol:   memVol,
		heap:     object.NewHeap(),
		uids:     ids.NewUIDGenerator(ids.StableVarsUID),
		aids:     ids.NewActionIDGenerator(id),
		live:     make(map[ids.ActionID]*actionState),
		ct:       make(map[ids.ActionID]simplelog.CoordInfo),
		pt:       make(map[ids.ActionID]simplelog.PartState),
		handlers: make(map[string]HandlerFunc),
	}
	g.aids.SetEpoch(epoch << epochShift)
	// The stable-variables object exists from the guardian's creation
	// (§3.3.3.2), initially an empty record, unlocked.
	g.heap.Register(object.NewAtomic(ids.StableVarsUID, value.NewRecord(), ids.NoAction))
	if !cfg.noIndex {
		g.idx = objindex.New()
	}

	switch cfg.backend {
	case core.BackendShadow:
		rs, err := core.NewShadow(vol, g.heap)
		if err != nil {
			return nil, err
		}
		g.rs = rs
	default:
		site, err := stablelog.CreateSite(vol)
		if err != nil {
			return nil, err
		}
		g.site = site
		if cfg.backend == core.BackendSimple {
			g.rs = core.NewSimple(site, g.heap)
		} else {
			g.rs = core.NewHybrid(site, g.heap)
		}
	}
	if cfg.tracer != nil {
		g.SetTracer(cfg.tracer)
	}
	return g, nil
}

// SetTracer installs (or, with nil, removes) an event tracer on the
// guardian's storage stack: the recovery system's writer, the current
// log, and (on the in-memory simulation) the volume's devices for
// fault-injection events. Events carry the guardian's id.
func (g *Guardian) SetTracer(tr obs.Tracer) {
	g.tr = tr
	wrapped := obs.WithGuardian(tr, uint64(g.id))
	g.rs.SetTracer(wrapped)
	if g.memVol != nil {
		g.memVol.SetTracer(wrapped)
	}
	if g.idx != nil {
		g.idx.SetTracer(wrapped)
	}
}

// ID returns the guardian's identifier.
func (g *Guardian) ID() ids.GuardianID { return g.id }

// GuardianID is a thin alias for ID, required because the
// twopc.Participant, twopc.CoordinatorLog and twopc.OutcomeSource
// interfaces name the method GuardianID. Use ID everywhere else.
func (g *Guardian) GuardianID() ids.GuardianID { return g.ID() }

// SetSynchronousForces pins (on) or lifts (off) fully synchronous
// outcome forcing on the guardian's recovery system. The default is
// group commit; the crash harnesses pin synchronous mode so device
// write counts are a pure function of the operation sequence.
func (g *Guardian) SetSynchronousForces(on bool) { g.rs.SetSynchronousForces(on) }

// SetReplicator installs (or, with nil, removes) a replication hook on
// the guardian's log site: every outcome force then additionally waits
// for a replica quorum (internal/replog). A no-op on the shadow
// backend, which keeps no log.
func (g *Guardian) SetReplicator(r stablelog.Replicator) { g.rs.SetReplicator(r) }

// Site returns the guardian's log site (nil on the shadow backend). A
// replication primary reads the durable boundary and raw frame runs it
// ships through this.
func (g *Guardian) Site() *stablelog.Site { return g.rs.Site() }

// Heap returns the guardian's volatile heap.
func (g *Guardian) Heap() *object.Heap { return g.heap }

// RS returns the guardian's recovery system (for statistics).
func (g *Guardian) RS() core.RecoverySystem { return g.rs }

// Backend returns the stable-storage organization in use.
func (g *Guardian) Backend() core.Backend { return g.backend }

// VolumeBlockSize reports the device block size of the guardian's
// volume, or the 512 default when the volume does not expose one — the
// non-panicking accessor the serving layer's handoff path needs on
// real file-backed volumes.
func (g *Guardian) VolumeBlockSize() int {
	if bs, ok := g.vol.(interface{ BlockSize() int }); ok {
		return bs.BlockSize()
	}
	return 512
}

// Volume exposes the simulated storage volume for fault injection; it
// panics for a guardian created on a non-simulated volume.
func (g *Guardian) Volume() *stablelog.MemVolume {
	if g.memVol == nil {
		panic("guardian: Volume() on a non-simulated volume")
	}
	return g.memVol
}

// Crash simulates a node crash: all volatile state (processes, locks,
// running actions) disappears; only stable storage survives (§2.1).
// It requires the in-memory volume; see WithVolume.
func (g *Guardian) Crash() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.crashed = true
	g.live = make(map[ids.ActionID]*actionState)
	if g.memVol != nil {
		g.memVol.Crash()
	}
}

// Restart recovers a crashed guardian from its stable storage: the
// Argus system "re-creates the guardian with the stable objects as they
// were when last written to stable storage" (§2.1). The returned
// guardian has a fresh volatile state; prepared actions are back in the
// PAT with their locks, awaiting their coordinators' verdicts.
func Restart(g *Guardian) (*Guardian, error) {
	if g.memVol != nil {
		g.memVol.Restart()
	}
	opts := []Option{WithTracer(g.tr)}
	if g.idx == nil {
		opts = append(opts, WithoutIndex())
	}
	return Open(g.id, g.vol, g.backend, opts...)
}

// Open recovers a guardian from an existing volume — either a restarted
// in-memory simulation or a reopened file volume. It is the §2.3
// recovery operation at guardian granularity. Of the options only
// WithTracer is meaningful here (the volume and backend are explicit
// parameters); with a tracer installed, Open emits recovery.start and
// the recovery.phase sequence repair → open-log → scan → materialize →
// rebuild → resume in thesis order.
func Open(id ids.GuardianID, vol stablelog.Volume, backend core.Backend, opts ...Option) (*Guardian, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	wrapped := obs.WithGuardian(cfg.tracer, uint64(id))
	phase := func(p obs.Phase) {
		if wrapped != nil {
			wrapped.Emit(obs.Event{Kind: obs.KindRecoveryPhase, Code: uint8(p)})
		}
	}
	if wrapped != nil {
		wrapped.Emit(obs.Event{Kind: obs.KindRecoveryStart})
	}
	// Repair the root store before anything reads or writes it: the
	// crash may have interrupted a root-page write (generation pointer,
	// epoch), leaving the pair divergent. bumpEpoch below does a
	// read-modify-write of the epoch page and must see the repaired
	// state, not race the torn copy.
	root, err0 := vol.Root()
	if err0 != nil {
		return nil, err0
	}
	phase(obs.PhaseRepair)
	if err := root.Recover(); err != nil {
		return nil, fmt.Errorf("guardian: root store unrecoverable: %w", err)
	}
	epoch, err0 := bumpEpoch(vol)
	if err0 != nil {
		return nil, fmt.Errorf("guardian: epoch bump failed: %w", err0)
	}
	ng := &Guardian{
		id:       id,
		backend:  backend,
		vol:      vol,
		aids:     ids.NewActionIDGenerator(id),
		live:     make(map[ids.ActionID]*actionState),
		handlers: make(map[string]HandlerFunc),
	}
	ng.aids.SetEpoch(epoch << epochShift)
	if mv, ok := vol.(*stablelog.MemVolume); ok {
		ng.memVol = mv
	}
	var rec *core.Recovered
	var err error
	phase(obs.PhaseOpenLog)
	switch backend {
	case core.BackendShadow:
		phase(obs.PhaseScan)
		rec, ng.rs, err = core.RecoverShadow(vol)
	case core.BackendSimple:
		ng.site, err = stablelog.OpenSite(vol)
		if err == nil {
			phase(obs.PhaseScan)
			rec, ng.rs, err = core.RecoverSimple(ng.site)
		}
	default:
		ng.site, err = stablelog.OpenSite(vol)
		if err == nil {
			phase(obs.PhaseScan)
			rec, ng.rs, err = core.RecoverHybrid(ng.site)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("guardian: %v recovery: %w", backend, err)
	}
	// The backward scan, version materialization, and table rebuild run
	// inside Recover*; at guardian granularity they complete together.
	phase(obs.PhaseMaterialize)
	phase(obs.PhaseRebuild)
	ng.heap = rec.Heap
	ng.pt = rec.PT
	ng.ct = rec.CT
	// Reset the stable counter past every recovered UID (§3.2) and the
	// action counter past every action this guardian coordinated.
	maxUID := rec.MaxUID
	if maxUID < ids.StableVarsUID {
		maxUID = ids.StableVarsUID
	}
	ng.uids = ids.NewUIDGenerator(maxUID)
	// A freshly created guardian that crashed before its first prepare
	// has nothing on the log, not even the stable-variables object.
	// Register it in volatile memory only, exactly as New does; it
	// enters the AS with the first prepare that writes it, so it is
	// legitimately absent from the AS until then (see CheckRecovered).
	if _, ok := ng.heap.StableVars(); !ok {
		ng.heap.Register(object.NewAtomic(ids.StableVarsUID, value.NewRecord(), ids.NoAction))
		ng.freshVars = true
	}
	if !cfg.noIndex {
		ng.idx = objindex.New()
	}
	if cfg.tracer != nil {
		ng.SetTracer(cfg.tracer)
	}
	// Rebuild the live-version index from the committed state the
	// backward scan just materialized: a restarted (or promoted, or
	// handoff-adopting — both run Open) guardian resumes with a
	// warm-correct index and no extra durable structure.
	ng.rebuildIndex()
	phase(obs.PhaseResume)
	return ng, nil
}

// RecoverStats reopens g's stable storage and runs recovery, returning
// the recovered tables (with their cost accounting) without resuming
// the guardian. Used by benchmarks to measure recovery work.
func RecoverStats(g *Guardian) (*core.Recovered, error) {
	if g.memVol != nil {
		g.memVol.Restart()
	}
	switch g.backend {
	case core.BackendShadow:
		rec, _, err := core.RecoverShadow(g.vol)
		return rec, err
	case core.BackendSimple:
		site, err := stablelog.OpenSite(g.vol)
		if err != nil {
			return nil, err
		}
		rec, _, err := core.RecoverSimple(site)
		return rec, err
	default:
		site, err := stablelog.OpenSite(g.vol)
		if err != nil {
			return nil, err
		}
		rec, _, err := core.RecoverHybrid(site)
		return rec, err
	}
}

// CheckRecovered verifies the structural invariants a freshly recovered
// guardian must satisfy; the crash harnesses call it after every
// recovery. The invariants: (1) every write lock in the heap is held by
// an action in the PAT (only prepared actions survive a crash holding
// locks); (2) the accessibility set equals exactly the set of objects
// reachable from the stable variables (recovery rebuilds it by
// traversal, §3.4.4 step 4); (3) no heap UID exceeds the stable
// counter, so fresh UIDs cannot collide (§3.2).
func CheckRecovered(g *Guardian) error {
	pat := g.rs.PAT()
	for _, uid := range g.heap.UIDs() {
		o, _ := g.heap.Lookup(uid)
		if at, ok := o.(*object.Atomic); ok {
			if w := at.Writer(); !w.IsZero() && !pat.Contains(w) {
				return fmt.Errorf("guardian: %v write-locked by %v, which is not prepared", uid, w)
			}
		}
	}
	reachable := g.heap.AccessibleSet()
	as := g.rs.AS()
	for _, uid := range reachable.UIDs() {
		if !as.Contains(uid) {
			// The stable-variables object exists from creation but is
			// logged (and enters the AS) only with the first prepare; a
			// guardian recovered from an empty log re-registers it
			// volatile-only, as New does.
			if g.freshVars && uid == ids.StableVarsUID {
				continue
			}
			return fmt.Errorf("guardian: reachable %v missing from AS", uid)
		}
	}
	for _, uid := range as.UIDs() {
		if !reachable.Contains(uid) {
			return fmt.Errorf("guardian: AS contains unreachable %v after recovery", uid)
		}
	}
	if max := g.heap.MaxUID(); max > g.uids.Last() {
		return fmt.Errorf("guardian: heap UID %v beyond stable counter %v", max, g.uids.Last())
	}
	// (4) The rebuilt live-version index is byte-equal to a from-scratch
	// scan of the recovered committed state. Riding here puts index
	// coherence under every crash point of every crashtest sweep.
	return g.CheckIndexCoherence()
}

// LiveActions returns the actions that currently have volatile state at
// this guardian (running or prepared-and-waiting). After a failed
// distributed commit, branches that never prepared still hold volatile
// locks; the runtime aborts them once the coordinator's verdict is
// known.
func (g *Guardian) LiveActions() []ids.ActionID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ids.ActionID, 0, len(g.live))
	//roslint:nondet keys collected here are sorted below before use
	for aid := range g.live {
		out = append(out, aid)
	}
	sortActionIDs(out)
	return out
}

// InDoubt returns the actions that had prepared here before the crash
// and await their coordinators' verdicts.
func (g *Guardian) InDoubt() []ids.ActionID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []ids.ActionID
	//roslint:nondet keys collected here are sorted below before use
	for aid, st := range g.pt {
		if st == simplelog.PartPrepared {
			out = append(out, aid)
		}
	}
	sortActionIDs(out)
	return out
}

// Unfinished returns the actions this guardian was coordinating whose
// phase two had not completed (CT state committing): Complete must be
// re-driven for them (§2.2.3).
func (g *Guardian) Unfinished() []ids.ActionID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []ids.ActionID
	//roslint:nondet keys collected here are sorted below before use
	for aid, ci := range g.ct {
		if ci.State == simplelog.CoordCommitting {
			out = append(out, aid)
		}
	}
	sortActionIDs(out)
	return out
}

// sortActionIDs orders ids by (coordinator, sequence) so the lists the
// recovery driver walks are identical across runs.
func sortActionIDs(ids []ids.ActionID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Coordinator != ids[j].Coordinator {
			return ids[i].Coordinator < ids[j].Coordinator
		}
		return ids[i].Seq < ids[j].Seq
	})
}

// OutcomeOf implements twopc.OutcomeSource: committed iff the
// committing record reached stable storage; otherwise presumed aborted
// (§2.2.3).
func (g *Guardian) OutcomeOf(aid ids.ActionID) twopc.Outcome {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.ct[aid]; ok {
		return twopc.OutcomeCommitted
	}
	return twopc.OutcomeAborted
}

// TrimAS trims the guardian's accessibility set (§3.3.3.2): useful
// after workloads that unlink many objects from the stable variables.
func (g *Guardian) TrimAS() { g.rs.TrimAS() }

// Housekeep runs a chapter 5 housekeeping pass (hybrid backend only).
func (g *Guardian) Housekeep(kind core.HousekeepKind) (hybridlog.Stats, error) {
	return g.rs.Housekeep(kind)
}

// Var returns the recoverable object bound to a stable variable, or
// false if unbound. It reads the committed state.
func (g *Guardian) Var(name string) (object.Recoverable, bool) {
	root, ok := g.heap.StableVars()
	if !ok {
		return nil, false
	}
	rec, ok := root.Base().(*value.Record)
	if !ok {
		return nil, false
	}
	ref, ok := rec.Fields[name].(value.Ref)
	if !ok {
		return nil, false
	}
	obj, ok := ref.Target.(object.Recoverable)
	if !ok {
		// A reference recovered but not yet resolved would be a bug;
		// resolve through the heap defensively.
		return nil, false
	}
	return obj, true
}

// VarAtomic is Var narrowed to atomic objects. With the live-version
// index enabled the binding resolves through it (the read half of a
// read-validate update finds its object without walking the root
// record); the index holds exactly the committed bindings, so both
// paths agree.
func (g *Guardian) VarAtomic(name string) (*object.Atomic, bool) {
	if g.idx != nil {
		if a, ok := g.idx.Bound(name); ok {
			return a, true
		}
	}
	o, ok := g.Var(name)
	if !ok {
		return nil, false
	}
	a, ok := o.(*object.Atomic)
	return a, ok
}

// VarMutex is Var narrowed to mutex objects.
func (g *Guardian) VarMutex(name string) (*object.Mutex, bool) {
	o, ok := g.Var(name)
	if !ok {
		return nil, false
	}
	m, ok := o.(*object.Mutex)
	return m, ok
}
