package guardian

import (
	"testing"

	"repro/internal/core"
	"repro/internal/value"
)

func TestSubCommitKeepsEffects(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 10)
	a := g.Begin()
	sub := a.Sub()
	if err := sub.Set(c, value.Int(20)); err != nil {
		t.Fatal(err)
	}
	if err := sub.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g); got != 20 {
		t.Fatalf("counter = %d, want 20", got)
	}
}

func TestSubAbortUndoesItsWrites(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 10)
	a := g.Begin()
	sub := a.Sub()
	if err := sub.Set(c, value.Int(99)); err != nil {
		t.Fatal(err)
	}
	if err := sub.Abort(); err != nil {
		t.Fatal(err)
	}
	// The top action continues and commits; the subaction's write is
	// gone, and since the subaction introduced the lock, the object is
	// free for the parent (or others) again.
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	g.Crash()
	g2, err := Restart(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g2); got != 10 {
		t.Fatalf("after crash counter = %d, want 10", got)
	}
}

func TestSubAbortRestoresParentVersion(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 10)
	a := g.Begin()
	if err := a.Set(c, value.Int(15)); err != nil {
		t.Fatal(err)
	}
	sub := a.Sub()
	if err := sub.Set(c, value.Int(99)); err != nil {
		t.Fatal(err)
	}
	if err := sub.Abort(); err != nil {
		t.Fatal(err)
	}
	// The parent's own modification survives the subaction abort.
	if got := c.Value(a.ID()); !value.Equal(got, value.Int(15)) {
		t.Fatalf("parent's view = %s, want 15", value.String(got))
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g); got != 15 {
		t.Fatalf("counter = %d, want 15", got)
	}
}

func TestSubAbortMultipleObjects(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	a0 := g.Begin()
	x, _ := a0.NewAtomic(value.Int(1))
	y, _ := a0.NewAtomic(value.Int(2))
	if err := a0.SetVar("x", x); err != nil {
		t.Fatal(err)
	}
	if err := a0.SetVar("y", y); err != nil {
		t.Fatal(err)
	}
	if err := a0.Commit(); err != nil {
		t.Fatal(err)
	}
	a := g.Begin()
	if err := a.Set(x, value.Int(11)); err != nil { // parent touches x
		t.Fatal(err)
	}
	sub := a.Sub()
	if err := sub.Set(x, value.Int(111)); err != nil {
		t.Fatal(err)
	}
	if err := sub.Set(y, value.Int(222)); err != nil { // sub introduces y
		t.Fatal(err)
	}
	if err := sub.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	gx, _ := g.VarAtomic("x")
	gy, _ := g.VarAtomic("y")
	if !value.Equal(gx.Base(), value.Int(11)) {
		t.Fatalf("x = %s, want parent's 11", value.String(gx.Base()))
	}
	if !value.Equal(gy.Base(), value.Int(2)) {
		t.Fatalf("y = %s, want original 2", value.String(gy.Base()))
	}
}

func TestSubSequencing(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	a := g.Begin()
	s1 := a.Sub()
	if err := s1.Set(c, value.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	// A second subaction sees the first's committed effect and aborts:
	// the state reverts to s1's result, not to the original.
	s2 := a.Sub()
	got, err := s2.Read(c)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, value.Int(1)) {
		t.Fatalf("s2 read %s", value.String(got))
	}
	if err := s2.Set(c, value.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
}

func TestSubUseAfterCompletion(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	a := g.Begin()
	sub := a.Sub()
	if err := sub.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Set(c, value.Int(1)); err == nil {
		t.Fatal("write through a committed subaction succeeded")
	}
	if err := sub.Abort(); err == nil {
		t.Fatal("abort of a committed subaction succeeded")
	}
	if sub.aidOf() != a.ID() {
		t.Fatal("subaction runs under a different action id")
	}
}

func TestSubNewObjectDiscardedOnAbort(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	a := g.Begin()
	sub := a.Sub()
	orphanParent, err := sub.NewAtomic(value.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Set(c, value.NewList(value.Ref{Target: orphanParent})); err != nil {
		t.Fatal(err)
	}
	if err := sub.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	// The counter reverted, so the new object is unreachable and must
	// not appear in the recovered stable state.
	g.Crash()
	g2, err := Restart(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, found := g2.Heap().Lookup(orphanParent.UID()); found {
		t.Fatal("orphaned subaction object recovered")
	}
}
