package guardian

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/stable"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// commitTwice builds a guardian with a counter at 10, commits an
// increment to 11, and crashes it.
func commitTwice(t *testing.T, b core.Backend) *Guardian {
	t.Helper()
	g := mustGuardian(t, 1, b)
	c := initCounter(t, g, 10)
	a := g.Begin()
	if err := a.Update(c, func(v value.Value) value.Value {
		return v.(value.Int) + 1
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	g.Crash()
	return g
}

// TestRecoveryWithWholeDeviceDecay decays every block of one device —
// first side A, then side B — between a crash and the restart. Every
// page still has its sibling copy, so recovery must succeed through
// two-copy read-repair and restore the exact committed state. This is
// the strongest single-failure read fault: it subsumes the decay of any
// one copy of any single page.
func TestRecoveryWithWholeDeviceDecay(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		for side := 0; side < 2; side++ {
			g := commitTwice(t, b)
			vol := g.Volume()
			vol.Restart()
			vol.EachDevicePair(func(label string, da, db *stable.MemDevice) {
				dev := da
				if side == 1 {
					dev = db
				}
				for i := 0; i < dev.NumBlocks(); i++ {
					dev.Decay(i)
				}
			})
			g2, err := Open(g.ID(), vol, b)
			if err != nil {
				t.Fatalf("side %d: recovery under whole-device decay: %v", side, err)
			}
			if err := CheckRecovered(g2); err != nil {
				t.Fatalf("side %d: %v", side, err)
			}
			if got := counterValue(t, g2); got != 11 {
				t.Fatalf("side %d: counter = %d after decayed recovery, want 11", side, got)
			}
			// Recovery repaired the pairs: the same decay on the *other*
			// side must now also be survivable.
			g2.Crash()
			vol.Restart()
			vol.EachDevicePair(func(label string, da, db *stable.MemDevice) {
				dev := db
				if side == 1 {
					dev = da
				}
				for i := 0; i < dev.NumBlocks(); i++ {
					dev.Decay(i)
				}
			})
			g3, err := Open(g.ID(), vol, b)
			if err != nil {
				t.Fatalf("side %d: second recovery after repair: %v", side, err)
			}
			if got := counterValue(t, g3); got != 11 {
				t.Fatalf("side %d: counter = %d after second decayed recovery, want 11", side, got)
			}
		}
	})
}

// TestRecoveryDetectsDoubleDecay decays BOTH copies of a live data page
// of the current generation: committed state is genuinely gone, and
// recovery must fail loudly with the data-loss classification — never
// come up with silently wrong state.
func TestRecoveryDetectsDoubleDecay(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := commitTwice(t, b)
		vol := g.Volume()
		vol.Restart()
		vol.EachDevicePair(func(label string, da, db *stable.MemDevice) {
			if label == "root" {
				return
			}
			// Page 1 is the first data page of a log generation; with a
			// two-commit history it holds live entries on every backend.
			da.Decay(1)
			db.Decay(1)
		})
		g2, err := Open(g.ID(), vol, b)
		if err == nil {
			// Permitted only if recovery still restored the exact
			// committed state (e.g. the lost page was superseded).
			if got := counterValue(t, g2); got != 11 {
				t.Fatalf("silent corruption: counter = %d, want 11 or a loud failure", got)
			}
			return
		}
		if !errors.Is(err, stable.ErrDataLoss) {
			t.Fatalf("double decay error = %v, want ErrDataLoss in the chain", err)
		}
	})
}

// TestRecoveryAfterRootEpochTear crashes the node on the epoch-page
// write issued by Open itself, then recovers again: the root store must
// be repaired before the epoch read-modify-write, and the second
// recovery must both succeed and bump past the torn epoch.
func TestRecoveryAfterRootEpochTear(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := commitTwice(t, b)
		vol := g.Volume()
		vol.Restart()
		// Crash on the first device write of the restart: that is the
		// epoch page's first copy (Open's root recovery reads only).
		vol.ArmGlobalCrashAtWrite(1)
		if _, err := Open(g.ID(), vol, b); !errors.Is(err, stable.ErrCrashed) {
			t.Fatalf("armed open: err = %v, want ErrCrashed", err)
		}
		vol.Crash()
		vol.Restart()
		g2, err := Open(g.ID(), vol, b)
		if err != nil {
			t.Fatalf("recovery after epoch tear: %v", err)
		}
		if err := CheckRecovered(g2); err != nil {
			t.Fatal(err)
		}
		if got := counterValue(t, g2); got != 11 {
			t.Fatalf("counter = %d after epoch-tear recovery, want 11", got)
		}
	})
}

// TestOpenSiteErrNoSiteSurfaces: the sentinel for "no site was ever
// durably created" must pass through guardian recovery unobscured, so a
// crash harness can classify it.
func TestOpenSiteErrNoSiteSurfaces(t *testing.T) {
	vol := stablelog.NewMemVolume(512)
	if _, err := vol.Root(); err != nil {
		t.Fatal(err)
	}
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid} {
		if _, err := Open(7, vol, b); !errors.Is(err, stablelog.ErrNoSite) {
			t.Fatalf("%v: err = %v, want ErrNoSite", b, err)
		}
	}
}
