package guardian

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/value"
)

func readInt(t *testing.T, g *Guardian, key string) int64 {
	t.Helper()
	flat, err := g.ReadKey(key)
	if err != nil {
		t.Fatalf("ReadKey(%q): %v", key, err)
	}
	v, err := value.Unflatten(flat)
	if err != nil {
		t.Fatalf("ReadKey(%q) bytes undecodable: %v", key, err)
	}
	n, ok := v.(value.Int)
	if !ok {
		t.Fatalf("ReadKey(%q) = %s, want an int", key, value.String(v))
	}
	return int64(n)
}

func TestIndexServesCommittedReads(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := mustGuardian(t, 1, b)
		c := initCounter(t, g, 10)
		if got := readInt(t, g, "counter"); got != 10 {
			t.Fatalf("counter = %d, want 10", got)
		}
		a := g.Begin()
		if err := a.Update(c, func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + 5)
		}); err != nil {
			t.Fatal(err)
		}
		if err := a.Commit(); err != nil {
			t.Fatal(err)
		}
		if got := readInt(t, g, "counter"); got != 15 {
			t.Fatalf("after commit counter = %d, want 15", got)
		}
		st, ok := g.IndexStats()
		if !ok {
			t.Fatal("index disabled by default")
		}
		if st.Hits < 2 {
			t.Fatalf("hits = %d, want both reads served from the index", st.Hits)
		}
		if _, err := g.ReadKey("absent"); !errors.Is(err, ErrNoSuchKey) {
			t.Fatalf("absent key error = %v, want ErrNoSuchKey", err)
		}
		if err := g.CheckIndexCoherence(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestIndexAbortInvisible(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := mustGuardian(t, 1, b)
		c := initCounter(t, g, 10)
		a := g.Begin()
		if err := a.Set(c, value.Int(999)); err != nil {
			t.Fatal(err)
		}
		// The uncommitted version must not be readable while the write
		// lock is held, nor after the abort.
		if err := a.Abort(); err != nil {
			t.Fatal(err)
		}
		if got := readInt(t, g, "counter"); got != 10 {
			t.Fatalf("aborted write visible: counter = %d, want 10", got)
		}
		if err := g.CheckIndexCoherence(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestIndexDisabledFallback(t *testing.T) {
	g, err := New(1, WithoutIndex())
	if err != nil {
		t.Fatal(err)
	}
	initCounter(t, g, 7)
	if _, ok := g.IndexStats(); ok {
		t.Fatal("WithoutIndex guardian reports index stats")
	}
	if got := readInt(t, g, "counter"); got != 7 {
		t.Fatalf("fallback read = %d, want 7", got)
	}
	// Disabled stays disabled across Restart.
	g.Crash()
	g2, err := Restart(g)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Index() != nil {
		t.Fatal("index reappeared after Restart of a WithoutIndex guardian")
	}
	if got := readInt(t, g2, "counter"); got != 7 {
		t.Fatalf("recovered fallback read = %d, want 7", got)
	}
}

// TestIndexRebuildMatchesScan is the direct form of the crash-sweep
// property (CheckRecovered invariant 4): after every crash point of a
// small scripted history, the rebuilt index is byte-equal to a
// from-scratch scan of the recovered committed state, and reads it
// serves match the committed base versions.
func TestIndexRebuildMatchesScan(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		for crashAfter := 0; crashAfter <= 6; crashAfter++ {
			g := mustGuardian(t, 1, b)
			step := 0
			commit := func(fn func(a *Action) error) {
				if step >= crashAfter {
					return
				}
				step++
				a := g.Begin()
				if err := fn(a); err != nil {
					t.Fatal(err)
				}
				if err := a.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			var objs []*object.Atomic
			commit(func(a *Action) error {
				for i := 0; i < 3; i++ {
					o, err := a.NewAtomic(value.Int(int64(i)))
					if err != nil {
						return err
					}
					objs = append(objs, o)
					if err := a.SetVar(fmt.Sprintf("k%d", i), o); err != nil {
						return err
					}
				}
				return nil
			})
			commit(func(a *Action) error {
				return a.Set(objs[0], value.Int(100))
			})
			commit(func(a *Action) error { // rebind k1 to k0's object
				return a.SetVar("k1", objs[0])
			})
			commit(func(a *Action) error {
				return a.Set(objs[2], value.Str("rewritten"))
			})
			commit(func(a *Action) error { // unbind k2's object, bind a fresh one
				o, err := a.NewAtomic(value.Int(42))
				if err != nil {
					return err
				}
				return a.SetVar("k2", o)
			})
			commit(func(a *Action) error {
				return a.Set(objs[0], value.Int(101))
			})

			g.Crash()
			g2, err := Restart(g)
			if err != nil {
				t.Fatalf("crashAfter=%d: %v", crashAfter, err)
			}
			// CheckRecovered includes the byte-equality coherence check.
			if err := CheckRecovered(g2); err != nil {
				t.Fatalf("crashAfter=%d: %v", crashAfter, err)
			}
			// Every index-served read equals the committed base version.
			for _, row := range g2.Index().Snapshot() {
				flat, err := g2.ReadKey(row.Key)
				if err != nil {
					t.Fatalf("crashAfter=%d ReadKey(%q): %v", crashAfter, row.Key, err)
				}
				o, ok := g2.VarAtomic(row.Key)
				if !ok {
					t.Fatalf("crashAfter=%d: %q in index but unbound", crashAfter, row.Key)
				}
				if want := o.SnapshotBase(nil); !bytes.Equal(flat, want) {
					t.Fatalf("crashAfter=%d: ReadKey(%q) diverges from committed base", crashAfter, row.Key)
				}
			}
		}
	})
}

// TestIndexConcurrent is the race soak CI runs with -race -count=3:
// concurrent index readers against committers and aborters. Readers
// must only ever see committed versions — the per-key counter values
// are monotonically nondecreasing and never show an aborted write.
func TestIndexConcurrent(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	const keys = 4
	objs := make([]*object.Atomic, keys)
	setup := g.Begin()
	for i := range objs {
		o, err := setup.NewAtomic(value.Int(0))
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = o
		if err := setup.SetVar(fmt.Sprintf("k%d", i), o); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	const committers = 4
	const increments = 30
	var commitWG, readWG sync.WaitGroup
	errc := make(chan error, committers+keys)
	for w := 0; w < committers; w++ {
		w := w
		commitWG.Add(1)
		go func() {
			defer commitWG.Done()
			obj := objs[w%keys]
			done := 0
			for done < increments {
				a := g.Begin()
				err := a.Update(obj, func(v value.Value) value.Value {
					return value.Int(int64(v.(value.Int)) + 1)
				})
				if err != nil {
					_ = a.Abort()
					if errors.Is(err, object.ErrLockConflict) {
						continue
					}
					errc <- err
					return
				}
				// Odd iterations abort: the poisoned value -1 must never
				// surface through the index.
				if done%2 == 1 {
					if err := a.Set(obj, value.Int(-1)); err == nil {
						if err := a.Abort(); err != nil {
							errc <- err
							return
						}
						done++
						continue
					}
				}
				if err := a.Commit(); err != nil {
					errc <- err
					return
				}
				done++
			}
		}()
	}
	stop := make(chan struct{})
	for r := 0; r < keys; r++ {
		r := r
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			key := fmt.Sprintf("k%d", r)
			var last int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				flat, err := g.ReadKey(key)
				if err != nil {
					errc <- fmt.Errorf("reader %s: %w", key, err)
					return
				}
				v, err := value.Unflatten(flat)
				if err != nil {
					errc <- fmt.Errorf("reader %s: torn bytes: %w", key, err)
					return
				}
				n := int64(v.(value.Int))
				if n < last {
					errc <- fmt.Errorf("reader %s: went backwards %d -> %d", key, last, n)
					return
				}
				if n < 0 {
					errc <- fmt.Errorf("reader %s: saw aborted write %d", key, n)
					return
				}
				last = n
			}
		}()
	}
	// Readers spin until every committer finishes its bounded work.
	commitWG.Wait()
	close(stop)
	readWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := g.CheckIndexCoherence(); err != nil {
		t.Fatal(err)
	}
	st, _ := g.IndexStats()
	if st.Hits == 0 {
		t.Fatal("soak never hit the index")
	}
}
