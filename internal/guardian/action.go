package guardian

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/simplelog"
	"repro/internal/stable"
	"repro/internal/twopc"
	"repro/internal/value"
)

// ErrCrashed is returned for operations on a crashed guardian.
var ErrCrashed = errors.New("guardian: node is down")

// ErrUnknownAction is returned when an operation names an action the
// guardian does not know (never ran here, aborted locally, or wiped out
// by a crash, §2.2.2).
var ErrUnknownAction = errors.New("guardian: unknown action")

// Action is one atomic action's footprint at one guardian. A top-level
// action is begun at its coordinator guardian with Begin and joined at
// participant guardians with Join.
type Action struct {
	g  *Guardian
	id ids.ActionID
}

// Begin starts a new top-level action coordinated by this guardian.
func (g *Guardian) Begin() *Action {
	aid := g.aids.Next()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.live[aid] = newActionState()
	return &Action{g: g, id: aid}
}

// Join enters an existing action at this guardian (the arrival of a
// handler call on the action's behalf, §2.1).
func (g *Guardian) Join(aid ids.ActionID) *Action {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.live[aid]; !ok {
		g.live[aid] = newActionState()
	}
	return &Action{g: g, id: aid}
}

// ID returns the action identifier.
func (a *Action) ID() ids.ActionID { return a.id }

func (a *Action) state() (*actionState, error) {
	a.g.mu.Lock()
	defer a.g.mu.Unlock()
	if a.g.crashed {
		return nil, ErrCrashed
	}
	st, ok := a.g.live[a.id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownAction, a.id)
	}
	return st, nil
}

// NewAtomic creates a new built-in atomic object; the creating action
// holds a read lock on it (§2.4.1).
func (a *Action) NewAtomic(initial value.Value) (*object.Atomic, error) {
	st, err := a.state()
	if err != nil {
		return nil, err
	}
	obj := object.NewAtomic(a.g.uids.Next(), initial, a.id)
	a.g.heap.Register(obj)
	st.mu.Lock()
	st.locked[obj.UID()] = obj
	st.mu.Unlock()
	return obj, nil
}

// NewMutex creates a new mutex object.
func (a *Action) NewMutex(initial value.Value) (*object.Mutex, error) {
	if _, err := a.state(); err != nil {
		return nil, err
	}
	obj := object.NewMutex(a.g.uids.Next(), initial)
	a.g.heap.Register(obj)
	return obj, nil
}

// Read acquires a read lock on obj and returns the version visible to
// this action.
func (a *Action) Read(obj *object.Atomic) (value.Value, error) {
	st, err := a.state()
	if err != nil {
		return nil, err
	}
	if err := obj.AcquireRead(a.id); err != nil {
		return nil, err
	}
	st.mu.Lock()
	st.locked[obj.UID()] = obj
	st.mu.Unlock()
	return obj.Value(a.id), nil
}

// Update acquires a write lock on obj and replaces its current version
// with fn(old). The object joins the action's modified objects set.
func (a *Action) Update(obj *object.Atomic, fn func(value.Value) value.Value) error {
	st, err := a.state()
	if err != nil {
		return err
	}
	if err := obj.AcquireWrite(a.id); err != nil {
		return err
	}
	if err := obj.Replace(a.id, fn(obj.Value(a.id))); err != nil {
		return err
	}
	st.mu.Lock()
	st.locked[obj.UID()] = obj
	st.mos[obj.UID()] = obj
	delete(st.early, obj.UID()) // modified since any early prepare
	st.mu.Unlock()
	return nil
}

// Set is Update with a constant new version.
func (a *Action) Set(obj *object.Atomic, v value.Value) error {
	return a.Update(obj, func(value.Value) value.Value { return v })
}

// ReadWait is Read that waits (up to timeout) for a conflicting write
// lock to be released instead of failing immediately. Argus actions
// wait for locks; the timeout stands in for deadlock handling.
func (a *Action) ReadWait(obj *object.Atomic, timeout time.Duration) (value.Value, error) {
	st, err := a.state()
	if err != nil {
		return nil, err
	}
	if err := obj.AcquireReadWait(a.id, timeout); err != nil {
		return nil, err
	}
	st.mu.Lock()
	st.locked[obj.UID()] = obj
	st.mu.Unlock()
	return obj.Value(a.id), nil
}

// UpdateWait is Update that waits (up to timeout) for conflicting locks
// instead of failing immediately. On ErrLockTimeout the caller should
// abort the action and retry (possible deadlock).
func (a *Action) UpdateWait(obj *object.Atomic, timeout time.Duration, fn func(value.Value) value.Value) error {
	st, err := a.state()
	if err != nil {
		return err
	}
	if err := obj.AcquireWriteWait(a.id, timeout); err != nil {
		return err
	}
	if err := obj.Replace(a.id, fn(obj.Value(a.id))); err != nil {
		return err
	}
	st.mu.Lock()
	st.locked[obj.UID()] = obj
	st.mos[obj.UID()] = obj
	delete(st.early, obj.UID())
	st.mu.Unlock()
	return nil
}

// Seize runs fn while in possession of the mutex object (§2.4.2) and
// records the modification in the action's MOS.
func (a *Action) Seize(m *object.Mutex, fn func(value.Value) value.Value) error {
	st, err := a.state()
	if err != nil {
		return err
	}
	m.Seize(a.id, fn)
	st.mu.Lock()
	st.mos[m.UID()] = m
	delete(st.early, m.UID())
	st.mu.Unlock()
	return nil
}

// SetVar binds a stable variable to a recoverable object by modifying
// the stable-variables root object under this action. The binding
// becomes permanent when the action commits.
func (a *Action) SetVar(name string, obj object.Recoverable) error {
	root, ok := a.g.heap.StableVars()
	if !ok {
		return fmt.Errorf("guardian: no stable variables object")
	}
	return a.Update(root, func(v value.Value) value.Value {
		rec, ok := v.(*value.Record)
		if !ok {
			rec = value.NewRecord()
		}
		rec.Fields[name] = value.Ref{Target: obj}
		return rec
	})
}

// mosList snapshots the action's modified objects, excluding those
// early-prepared and unmodified since. The list is sorted by UID: it
// becomes the prepared entry's object order in the log, which must be
// identical across runs for the crash sweep to replay a schedule.
func (a *Action) mosList(st *actionState, includeEarly bool) object.MOS {
	st.mu.Lock()
	defer st.mu.Unlock()
	uids := make([]ids.UID, 0, len(st.mos))
	//roslint:nondet keys collected here are sorted below before use
	for uid := range st.mos {
		if !includeEarly && st.early[uid] {
			continue
		}
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	mos := make(object.MOS, 0, len(uids))
	for _, uid := range uids {
		mos = append(mos, st.mos[uid])
	}
	return mos
}

// EarlyPrepare writes the action's modified objects to the log ahead of
// the prepare message (§4.4), so that preparing later only forces the
// outcome entries. Supported by the hybrid backend.
func (a *Action) EarlyPrepare() error {
	st, err := a.state()
	if err != nil {
		return err
	}
	mos := a.mosList(st, false)
	rest, err := a.g.rs.WriteEntry(a.id, mos)
	if err != nil {
		return err
	}
	notWritten := make(map[ids.UID]bool, len(rest))
	for _, obj := range rest {
		notWritten[obj.UID()] = true
	}
	st.mu.Lock()
	for _, obj := range mos {
		if !notWritten[obj.UID()] {
			st.early[obj.UID()] = true
		}
	}
	st.mu.Unlock()
	return nil
}

// --- participant-side message handlers (twopc.Participant) -------------

// HandlePrepare processes a prepare message (§2.2.2): write the data
// entries and the prepared record, or vote aborted if the action is
// unknown here.
func (g *Guardian) HandlePrepare(aid ids.ActionID) (twopc.Vote, error) {
	g.mu.Lock()
	if g.crashed {
		g.mu.Unlock()
		return twopc.VoteAborted, ErrCrashed
	}
	st, ok := g.live[aid]
	if !ok {
		g.mu.Unlock()
		// "If the action is unknown at the participant (because it
		// never ran there, was aborted locally, or was wiped out by a
		// crash), then it replies aborted" (§2.2.2).
		return twopc.VoteAborted, nil
	}
	g.mu.Unlock()
	// The read-only optimization: a branch that modified nothing (and
	// early-prepared nothing) writes no records and drops out of phase
	// two; its read locks are released at once, since no outcome can
	// affect it.
	fullMOS := (&Action{g: g, id: aid}).mosList(st, true)
	if len(fullMOS) == 0 {
		g.mu.Lock()
		_, stillLive := g.live[aid]
		g.mu.Unlock()
		st.mu.Lock()
		onlyReads := stillLive && len(st.mos) == 0
		st.mu.Unlock()
		if onlyReads {
			g.applyVerdict(aid, false) // releases read locks; no records
			return twopc.VoteReadOnly, nil
		}
	}
	mos := (&Action{g: g, id: aid}).mosList(st, false)
	// No lock across Prepare: it flattens objects, appends to the log
	// and waits for a (possibly shared) force.
	if err := g.rs.Prepare(aid, mos); err != nil {
		return twopc.VoteAborted, err
	}
	st.mu.Lock()
	st.prepared = true
	st.mu.Unlock()
	g.mu.Lock()
	g.pt[aid] = simplelog.PartPrepared
	g.mu.Unlock()
	return twopc.VotePrepared, nil
}

// HandleCommit processes a commit message: force the committed record
// and install the action's versions in volatile memory.
func (g *Guardian) HandleCommit(aid ids.ActionID) error {
	g.mu.Lock()
	if g.crashed {
		g.mu.Unlock()
		return ErrCrashed
	}
	g.mu.Unlock()
	if err := g.rs.Commit(aid); err != nil {
		return err
	}
	g.applyVerdict(aid, true)
	return nil
}

// HandleAbort processes an abort message.
func (g *Guardian) HandleAbort(aid ids.ActionID) error {
	g.mu.Lock()
	if g.crashed {
		g.mu.Unlock()
		return ErrCrashed
	}
	g.mu.Unlock()
	if err := g.rs.Abort(aid); err != nil {
		return err
	}
	g.applyVerdict(aid, false)
	return nil
}

// applyVerdict installs or discards the action's versions and releases
// its locks. After a crash the action's lock footprint lives only in
// the recovered objects, so fall back to a heap scan.
func (g *Guardian) applyVerdict(aid ids.ActionID, commit bool) {
	g.mu.Lock()
	st, ok := g.live[aid]
	if ok {
		delete(g.live, aid)
	}
	if commit {
		g.pt[aid] = simplelog.PartCommitted
	} else {
		g.pt[aid] = simplelog.PartAborted
	}
	g.mu.Unlock()
	apply := func(obj *object.Atomic) {
		if commit {
			obj.Commit(aid)
		} else {
			obj.Abort(aid)
		}
	}
	if ok {
		st.mu.Lock()
		locked := make([]*object.Atomic, 0, len(st.locked))
		//roslint:nondet keys collected here are sorted below before use
		for _, obj := range st.locked {
			locked = append(locked, obj)
		}
		st.mu.Unlock()
		// Sorted so the index-install events (and the installs
		// themselves) happen in the same order on every run — the apply
		// itself is per-object and order-independent, the trace is not.
		sortAtomicsByUID(locked)
		if commit {
			// Point of no return is behind us (the outcome record is
			// durable); publish the committed versions into the
			// live-version index before releasing the write locks, so a
			// reader can never see a stale version after a lock it could
			// have contended on is gone.
			g.installCommitted(aid, locked)
		}
		for _, obj := range locked {
			apply(obj)
		}
		return
	}
	// Recovered guardian: release every lock the recovered objects say
	// aid holds.
	var locked []*object.Atomic
	for _, uid := range g.heap.UIDs() {
		if o, found := g.heap.Lookup(uid); found {
			if at, isAtomic := o.(*object.Atomic); isAtomic {
				if at.Writer() == aid || at.HoldsRead(aid) {
					locked = append(locked, at)
				}
			}
		}
	}
	if commit {
		g.installCommitted(aid, locked)
	}
	for _, obj := range locked {
		apply(obj)
	}
}

// sortAtomicsByUID orders objects by UID so install and apply loops
// are deterministic across runs.
func sortAtomicsByUID(objs []*object.Atomic) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].UID() < objs[j].UID() })
}

// --- coordinator-side log (twopc.CoordinatorLog) -----------------------

// Committing forces the committing record: the action's point of no
// return (§2.2.3).
func (g *Guardian) Committing(aid ids.ActionID, gids []ids.GuardianID) error {
	g.mu.Lock()
	if g.crashed {
		g.mu.Unlock()
		return ErrCrashed
	}
	g.mu.Unlock()
	if err := g.rs.Committing(aid, gids); err != nil {
		return err
	}
	g.mu.Lock()
	g.ct[aid] = simplelog.CoordInfo{State: simplelog.CoordCommitting, GIDs: gids}
	g.mu.Unlock()
	return nil
}

// Done forces the done record: two-phase commit is over.
func (g *Guardian) Done(aid ids.ActionID) error {
	g.mu.Lock()
	if g.crashed {
		g.mu.Unlock()
		return ErrCrashed
	}
	g.mu.Unlock()
	if err := g.rs.Done(aid); err != nil {
		return err
	}
	g.mu.Lock()
	g.ct[aid] = simplelog.CoordInfo{State: simplelog.CoordDone}
	g.mu.Unlock()
	return nil
}

// --- local commitment ---------------------------------------------------

// Commit commits a top-level action whose only participant is its own
// guardian: the full §2.2 sequence with coordinator == participant.
//
// The committing record is the point of no return (§2.2.3). A full
// disk (stable.ErrNoSpace) is a deterministic refusal, not a device
// fault, and the guardian keeps serving through it — so the commit
// sequence must stay coherent across a refusal at any step. Before
// the committing record is durable, a refused force aborts the action
// and rolls its volatile state back without writing anything (presumed
// abort: the missing outcome record IS the abort, and a leaked lock
// would wedge the key until restart). After it is durable the outcome
// is fixed: a refused committed-record force must still surface as
// success, with the versions installed, because recovery will re-drive
// the commit from the committing record no matter what the caller was
// told. Any other storage failure is treated as a crash and propagates
// untouched — no volatile cleanup, no further writes.
func (a *Action) Commit() error {
	if _, err := a.state(); err != nil {
		return err
	}
	vote, err := a.g.HandlePrepare(a.id)
	if err != nil {
		if errors.Is(err, stable.ErrNoSpace) {
			a.g.applyVerdict(a.id, false)
		}
		return err
	}
	if vote == twopc.VoteReadOnly {
		// Nothing was modified: the action commits trivially with no
		// stable-storage traffic (the read-only optimization).
		return nil
	}
	if vote != twopc.VotePrepared {
		return fmt.Errorf("guardian: local prepare of %v voted abort", a.id)
	}
	if err := a.g.Committing(a.id, []ids.GuardianID{a.g.id}); err != nil {
		if errors.Is(err, stable.ErrNoSpace) {
			a.g.applyVerdict(a.id, false)
		}
		return err
	}
	// Point of no return.
	if err := a.g.HandleCommit(a.id); err != nil {
		if !errors.Is(err, stable.ErrNoSpace) {
			return err
		}
		// The committed-record force was refused, but the committing
		// record already decides recovery: install the versions and
		// report the commit the log has fixed. The coordinator-table
		// entry stays behind for settleSelf to re-force on the next
		// boot.
		a.g.applyVerdict(a.id, true)
		return nil
	}
	if err := a.g.Done(a.id); err != nil {
		if !errors.Is(err, stable.ErrNoSpace) {
			return err
		}
		// The done record only truncates the coordinator table; a
		// refused force leaves a committing entry recovery re-resolves.
	}
	return nil
}

// Abort aborts the action at this guardian, discarding its versions.
func (a *Action) Abort() error {
	if _, err := a.state(); err != nil {
		return err
	}
	return a.g.HandleAbort(a.id)
}
