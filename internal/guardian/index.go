package guardian

// The guardian's half of the live-version index (internal/objindex):
// all mutation of g.idx is confined to installCommitted and
// rebuildIndex in this file — roslint's lockdiscipline rule 5 rejects
// Install/ReplaceBindings/Clear calls anywhere else in the package —
// so the consistency argument reduces to two call sites:
//
//   - installCommitted runs in applyVerdict, after the action's
//     outcome is durable (§2.2.3 point of no return) and before its
//     write locks are released. The objects' current versions are
//     frozen (the committing action owns the write locks, and it is
//     done), so the flattened bytes installed are exactly the bytes
//     Commit is about to promote to base.
//   - rebuildIndex runs in Open, over the committed heap the backward
//     scan materialized, before the guardian resumes service.
//
// Aborts never touch the index: it only ever holds committed state.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/objindex"
	"repro/internal/value"
)

// ErrNoSuchKey is returned by ReadKey for a key no stable variable
// binds. The text must keep the "no such key" phrase: the serving
// layer and the chaos harness classify missing-key reads by it.
var ErrNoSuchKey = errors.New("guardian: no such key")

// Index returns the guardian's live-version index (nil when disabled
// with WithoutIndex). Callers may read stats and snapshots; mutation
// belongs to the guardian alone.
func (g *Guardian) Index() *objindex.Index { return g.idx }

// IndexStats returns the index counters; ok is false when the index
// is disabled.
func (g *Guardian) IndexStats() (objindex.Stats, bool) {
	if g.idx == nil {
		return objindex.Stats{}, false
	}
	return g.idx.Stats(), true
}

// logCoord is the guardian's durable log boundary — the log
// coordinate stamped on index entries. Zero on the shadow backend,
// which keeps no log.
func (g *Guardian) logCoord() uint64 {
	site := g.rs.Site()
	if site == nil {
		return 0
	}
	durable, _ := site.Log().TailInfo()
	return durable
}

// committedBindings scans the committed root record for its atomic
// bindings, sorted by key — the from-scratch form the index is
// rebuilt from and checked against.
func (g *Guardian) committedBindings() []objindex.Binding {
	root, ok := g.heap.StableVars()
	if !ok {
		return nil
	}
	rec, ok := root.Base().(*value.Record)
	if !ok {
		return nil
	}
	return recordBindings(rec)
}

// recordBindings extracts the atomic-object bindings of one root
// record version, sorted by key. Bindings to non-atomic objects
// (mutexes) are not indexed; their reads synchronize on the seize
// lock instead.
func recordBindings(rec *value.Record) []objindex.Binding {
	names := make([]string, 0, len(rec.Fields))
	//roslint:nondet keys collected here are sorted below before use
	for name := range rec.Fields {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]objindex.Binding, 0, len(names))
	for _, name := range names {
		ref, ok := rec.Fields[name].(value.Ref)
		if !ok {
			continue
		}
		if obj, ok := ref.Target.(*object.Atomic); ok {
			out = append(out, objindex.Binding{Key: name, Obj: obj})
		}
	}
	return out
}

// rebuildIndex rebuilds the live-version index whole from the
// committed state recovery materialized. Prepared-but-undecided
// writers hold their tentative versions as current, never base, so
// the rebuilt index is committed-only by construction.
func (g *Guardian) rebuildIndex() {
	if g.idx == nil {
		return
	}
	g.idx.Rebuild(g.committedBindings(), func(o *object.Atomic) []byte {
		return o.SnapshotBase(nil)
	}, g.logCoord())
}

// installCommitted publishes a committing action's new versions into
// the live-version index. Called from applyVerdict on the commit
// path only, after the outcome record is durable and before the
// action's write locks are released; locked is the action's full
// lock footprint, sorted by UID.
//
// The root record is processed first: if aid wrote it, the commit
// rewrites the binding set, so the index's bindings are replaced from
// the version this commit installs (keys rebound to existing,
// unwritten objects fill from the version visible to aid — their
// committed base). Then every other object aid wrote gets its
// aid-visible version installed; Install drops objects no binding
// references.
func (g *Guardian) installCommitted(aid ids.ActionID, locked []*object.Atomic) {
	idx := g.idx
	if idx == nil {
		return
	}
	lsn := g.logCoord()
	flatten := func(o *object.Atomic) []byte { return o.SnapshotFor(aid, nil) }
	for _, obj := range locked {
		if obj.UID() != ids.StableVarsUID || obj.Writer() != aid {
			continue
		}
		if rec, ok := obj.Value(aid).(*value.Record); ok {
			idx.ReplaceBindings(recordBindings(rec), flatten, lsn)
		}
	}
	for _, obj := range locked {
		if obj.Writer() != aid || obj.UID() == ids.StableVarsUID {
			continue
		}
		idx.Install(obj, flatten(obj), lsn)
	}
}

// ReadKey serves the read path: the committed value bound to key,
// flattened. With a warm index this touches no device and takes no
// lock — the memory-speed path. On a miss (or with the index
// disabled) it falls back to a read-only action over the committed
// heap: the device-bound baseline, which can also return lock
// conflicts under write contention.
func (g *Guardian) ReadKey(key string) ([]byte, error) {
	if g.idx != nil {
		if e, ok := g.idx.Get(key); ok {
			return e.Flat, nil
		}
	}
	a := g.Begin()
	obj, ok := g.VarAtomic(key)
	if !ok {
		// Abort of an empty action cannot meaningfully fail.
		_ = a.Abort()
		return nil, fmt.Errorf("%w %q", ErrNoSuchKey, key)
	}
	v, err := a.Read(obj)
	if err != nil {
		// The read error is the one to surface.
		_ = a.Abort()
		return nil, err
	}
	flat := value.Flatten(v, nil)
	if err := a.Commit(); err != nil {
		return nil, err
	}
	return flat, nil
}

// CheckIndexCoherence verifies the index against a from-scratch scan
// of the committed state: same keys, same objects, byte-equal
// flattened versions, and no stored version outside the binding set.
// A nil (disabled) index is trivially coherent. The crash harnesses
// run this after every recovery via CheckRecovered.
func (g *Guardian) CheckIndexCoherence() error {
	if g.idx == nil {
		return nil
	}
	want := g.committedBindings()
	got := g.idx.Snapshot()
	if len(got) != len(want) {
		return fmt.Errorf("guardian: index holds %d keys, committed scan %d", len(got), len(want))
	}
	uids := make(map[ids.UID]bool, len(want))
	for i, b := range want {
		s := got[i]
		if s.Key != b.Key {
			return fmt.Errorf("guardian: index key %q, committed scan %q", s.Key, b.Key)
		}
		if s.UID != b.Obj.UID() {
			return fmt.Errorf("guardian: index binds %q to %v, committed scan to %v", s.Key, s.UID, b.Obj.UID())
		}
		if flat := b.Obj.SnapshotBase(nil); !bytes.Equal(flat, s.Flat) {
			return fmt.Errorf("guardian: index bytes for %q diverge from committed base (%d vs %d bytes)", s.Key, len(s.Flat), len(flat))
		}
		uids[b.Obj.UID()] = true
	}
	if st := g.idx.Stats(); st.Entries != len(uids) {
		return fmt.Errorf("guardian: index stores %d versions, bindings reference %d", st.Entries, len(uids))
	}
	return nil
}
