package guardian

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/value"
)

// arbLeafValue builds a random regular value (no references).
func arbLeafValue(rng *rand.Rand, depth int) value.Value {
	if depth > 2 {
		return value.Int(rng.Int63n(1000))
	}
	switch rng.Intn(6) {
	case 0:
		return value.Int(rng.Int63n(1000) - 500)
	case 1:
		return value.Str(fmt.Sprintf("s%d", rng.Intn(100)))
	case 2:
		return value.Bool(rng.Intn(2) == 0)
	case 3:
		b := make(value.Bytes, rng.Intn(8))
		rng.Read(b)
		return b
	case 4:
		l := value.NewList()
		for i := 0; i < rng.Intn(4); i++ {
			l.Elems = append(l.Elems, arbLeafValue(rng, depth+1))
		}
		return l
	default:
		r := value.NewRecord()
		for i := 0; i < rng.Intn(4); i++ {
			r.Fields[fmt.Sprintf("f%d", i)] = arbLeafValue(rng, depth+1)
		}
		return r
	}
}

// TestRandomObjectGraphsSurviveCrash builds random graphs of atomic and
// mutex objects with cross-references, commits them over a series of
// actions, crashes, and checks every object — including reference
// identity — against the live heap.
func TestRandomObjectGraphsSurviveCrash(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			g := mustGuardian(t, 1, b)
			var objects []object.Recoverable

			// Several actions, each creating objects and wiring them to
			// the stable variables and each other.
			for round := 0; round < 5; round++ {
				a := g.Begin()
				created := 0
				for created < 3 {
					v := arbLeafValue(rng, 0)
					// Sometimes embed a reference to an existing object.
					if len(objects) > 0 && rng.Intn(2) == 0 {
						target := objects[rng.Intn(len(objects))]
						v = value.NewList(v, value.Ref{Target: target})
					}
					var obj object.Recoverable
					var err error
					if rng.Intn(4) == 0 {
						obj, err = a.NewMutex(v)
					} else {
						obj, err = a.NewAtomic(v)
					}
					if err != nil {
						t.Fatal(err)
					}
					if err := a.SetVar(fmt.Sprintf("v%d-%d", round, created), obj); err != nil {
						t.Fatal(err)
					}
					objects = append(objects, obj)
					created++
				}
				if err := a.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			// A few mutations in separate actions, some aborted.
			for i := 0; i < 8; i++ {
				a := g.Begin()
				obj := objects[rng.Intn(len(objects))]
				var err error
				switch o := obj.(type) {
				case *object.Atomic:
					err = a.Update(o, func(value.Value) value.Value {
						return arbLeafValue(rng, 0)
					})
					if err != nil {
						// Lock conflict impossible here (sequential), but
						// stale read locks from creation rounds are gone.
						t.Fatal(err)
					}
				case *object.Mutex:
					err = a.Seize(o, func(value.Value) value.Value {
						return arbLeafValue(rng, 0)
					})
					if err != nil {
						t.Fatal(err)
					}
				}
				if rng.Intn(3) == 0 {
					if err := a.Abort(); err != nil {
						t.Fatal(err)
					}
					// NOTE: an aborted Seize still changed the mutex in
					// volatile memory (mutex semantics); the comparison
					// below uses the live heap as oracle, which reflects
					// exactly what recovery must rebuild for prepared
					// actions — but an aborted action never prepared, so
					// skip mutex-modifying aborts in the oracle sense by
					// re-seizing to a known value under a committed
					// action.
					if m, isMutex := obj.(*object.Mutex); isMutex {
						fix := g.Begin()
						if err := fix.Seize(m, func(value.Value) value.Value {
							return value.Str("fixed")
						}); err != nil {
							t.Fatal(err)
						}
						if err := fix.Commit(); err != nil {
							t.Fatal(err)
						}
					}
				} else if err := a.Commit(); err != nil {
					t.Fatal(err)
				}
			}

			// Snapshot the live committed state, crash, recover, compare.
			type snap struct {
				kind object.Kind
				v    value.Value
			}
			want := make(map[string]snap)
			g.Heap().Traverse(func(o object.Recoverable) {
				switch x := o.(type) {
				case *object.Atomic:
					want[x.UID().String()] = snap{object.KindAtomic, value.Copy(x.Base())}
				case *object.Mutex:
					want[x.UID().String()] = snap{object.KindMutex, value.Copy(x.Current())}
				}
			})
			g.Crash()
			g2, err := Restart(g)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			got := 0
			g2.Heap().Traverse(func(o object.Recoverable) {
				got++
				w, ok := want[o.UID().String()]
				if !ok {
					t.Fatalf("seed %d: recovered unexpected %v", seed, o.UID())
				}
				switch x := o.(type) {
				case *object.Atomic:
					if w.kind != object.KindAtomic || !value.Equal(x.Base(), w.v) {
						t.Fatalf("seed %d: %v = %s, want %s", seed, o.UID(),
							value.String(x.Base()), value.String(w.v))
					}
				case *object.Mutex:
					if w.kind != object.KindMutex || !value.Equal(x.Current(), w.v) {
						t.Fatalf("seed %d: %v = %s, want %s", seed, o.UID(),
							value.String(x.Current()), value.String(w.v))
					}
				}
			})
			if got != len(want) {
				t.Fatalf("seed %d: recovered %d objects, want %d", seed, got, len(want))
			}
		}
	})
}
