package guardian

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/twopc"
	"repro/internal/value"
)

func backends() []core.Backend {
	return []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow}
}

func forBackends(t *testing.T, fn func(t *testing.T, b core.Backend)) {
	for _, b := range backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) { fn(t, b) })
	}
}

func mustGuardian(t *testing.T, id ids.GuardianID, b core.Backend) *Guardian {
	t.Helper()
	g, err := New(id, WithBackend(b))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// initCounter commits an action that binds stable variable "counter".
func initCounter(t *testing.T, g *Guardian, initial int64) *object.Atomic {
	t.Helper()
	a := g.Begin()
	c, err := a.NewAtomic(value.Int(initial))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetVar("counter", c); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	return c
}

func counterValue(t *testing.T, g *Guardian) int64 {
	t.Helper()
	c, ok := g.VarAtomic("counter")
	if !ok {
		t.Fatal("counter variable missing")
	}
	v, ok := c.Base().(value.Int)
	if !ok {
		t.Fatalf("counter = %s", value.String(c.Base()))
	}
	return int64(v)
}

func TestLocalCommitSurvivesCrash(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := mustGuardian(t, 1, b)
		c := initCounter(t, g, 10)
		a := g.Begin()
		if err := a.Update(c, func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + 5)
		}); err != nil {
			t.Fatal(err)
		}
		if err := a.Commit(); err != nil {
			t.Fatal(err)
		}
		g.Crash()
		g2, err := Restart(g)
		if err != nil {
			t.Fatal(err)
		}
		if got := counterValue(t, g2); got != 15 {
			t.Fatalf("counter = %d, want 15", got)
		}
	})
}

func TestAbortRestoresState(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := mustGuardian(t, 1, b)
		c := initCounter(t, g, 10)
		a := g.Begin()
		if err := a.Set(c, value.Int(999)); err != nil {
			t.Fatal(err)
		}
		if err := a.Abort(); err != nil {
			t.Fatal(err)
		}
		if got := counterValue(t, g); got != 10 {
			t.Fatalf("counter = %d, want 10", got)
		}
		// And nothing of the aborted action survives a crash.
		g.Crash()
		g2, err := Restart(g)
		if err != nil {
			t.Fatal(err)
		}
		if got := counterValue(t, g2); got != 10 {
			t.Fatalf("after crash counter = %d, want 10", got)
		}
	})
}

func TestUncommittedActionLostOnCrash(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := mustGuardian(t, 1, b)
		c := initCounter(t, g, 10)
		a := g.Begin()
		if err := a.Set(c, value.Int(999)); err != nil {
			t.Fatal(err)
		}
		g.Crash()
		g2, err := Restart(g)
		if err != nil {
			t.Fatal(err)
		}
		if got := counterValue(t, g2); got != 10 {
			t.Fatalf("counter = %d, want 10", got)
		}
		// No stale locks.
		c2, _ := g2.VarAtomic("counter")
		if !c2.Writer().IsZero() {
			t.Fatalf("stale write lock: %v", c2.Writer())
		}
	})
}

func TestCrashBeforeFirstCommit(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := mustGuardian(t, 1, b)
		g.Crash()
		g2, err := Restart(g)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := g2.Var("anything"); ok {
			t.Fatal("phantom variable after empty recovery")
		}
		// The reborn guardian is usable.
		initCounter(t, g2, 1)
		if got := counterValue(t, g2); got != 1 {
			t.Fatalf("counter = %d", got)
		}
	})
}

func TestUIDsNotReusedAfterCrash(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := mustGuardian(t, 1, b)
		c := initCounter(t, g, 0)
		g.Crash()
		g2, err := Restart(g)
		if err != nil {
			t.Fatal(err)
		}
		a := g2.Begin()
		fresh, err := a.NewAtomic(value.Int(0))
		if err != nil {
			t.Fatal(err)
		}
		if fresh.UID() <= c.UID() {
			t.Fatalf("UID %v reused or regressed (old max %v)", fresh.UID(), c.UID())
		}
	})
}

func TestMutexVariable(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := mustGuardian(t, 1, b)
		a := g.Begin()
		m, err := a.NewMutex(value.NewList(value.Str("log")))
		if err != nil {
			t.Fatal(err)
		}
		if err := a.SetVar("journal", m); err != nil {
			t.Fatal(err)
		}
		if err := a.Seize(m, func(v value.Value) value.Value {
			l := v.(*value.List)
			l.Elems = append(l.Elems, value.Str("entry-1"))
			return l
		}); err != nil {
			t.Fatal(err)
		}
		if err := a.Commit(); err != nil {
			t.Fatal(err)
		}
		g.Crash()
		g2, err := Restart(g)
		if err != nil {
			t.Fatal(err)
		}
		m2, ok := g2.VarMutex("journal")
		if !ok {
			t.Fatal("journal lost")
		}
		l := m2.Current().(*value.List)
		if len(l.Elems) != 2 || l.Elems[1] != value.Str("entry-1") {
			t.Fatalf("journal = %s", value.String(m2.Current()))
		}
	})
}

// distributedFixture: three guardians on a network.
type distributedFixture struct {
	net  *netsim.Network
	g    []*Guardian
	cs   []*object.Atomic // counter at each guardian
	coor *twopc.Coordinator
}

func newDistributed(t *testing.T, b core.Backend) *distributedFixture {
	t.Helper()
	f := &distributedFixture{net: netsim.New()}
	for i := 0; i < 3; i++ {
		g := mustGuardian(t, ids.GuardianID(i+1), b)
		f.g = append(f.g, g)
		f.cs = append(f.cs, initCounter(t, g, int64(100*(i+1))))
	}
	f.coor = &twopc.Coordinator{Self: f.g[0].ID(), Net: f.net, Log: f.g[0]}
	return f
}

// spread starts a top-level action at g[0] and applies delta at each
// guardian's counter.
func (f *distributedFixture) spread(t *testing.T, deltas [3]int64) (ids.ActionID, []twopc.Participant) {
	t.Helper()
	a := f.g[0].Begin()
	parts := make([]twopc.Participant, 0, 3)
	for i, g := range f.g {
		var br *Action
		if i == 0 {
			br = a
		} else {
			br = g.Join(a.ID())
		}
		d := deltas[i]
		if err := br.Update(f.cs[i], func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + d)
		}); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, g)
	}
	return a.ID(), parts
}

func TestDistributedCommit(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		f := newDistributed(t, b)
		aid, parts := f.spread(t, [3]int64{-30, +10, +20})
		res, err := f.coor.Run(aid, parts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != twopc.OutcomeCommitted || !res.Done {
			t.Fatalf("result = %+v", res)
		}
		want := []int64{70, 210, 320}
		for i, g := range f.g {
			if got := counterValue(t, g); got != want[i] {
				t.Fatalf("guardian %d counter = %d, want %d", i+1, got, want[i])
			}
		}
	})
}

func TestDistributedAbortOnCrashedParticipant(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		f := newDistributed(t, b)
		aid, parts := f.spread(t, [3]int64{-30, +10, +20})
		// Participant 3 crashes before the prepare arrives.
		f.g[2].Crash()
		f.net.SetDown(f.g[2].ID(), true)
		_, err := f.coor.Run(aid, parts)
		if err == nil {
			t.Fatal("commit succeeded with crashed participant")
		}
		// Survivors must have aborted: counters unchanged.
		if got := counterValue(t, f.g[0]); got != 100 {
			t.Fatalf("guardian 1 counter = %d, want 100", got)
		}
		if got := counterValue(t, f.g[1]); got != 200 {
			t.Fatalf("guardian 2 counter = %d, want 200", got)
		}
		// The crashed participant recovers to its old state too.
		f.net.SetDown(f.g[2].ID(), false)
		g3, err := Restart(f.g[2])
		if err != nil {
			t.Fatal(err)
		}
		if got := counterValue(t, g3); got != 300 {
			t.Fatalf("guardian 3 counter = %d, want 300", got)
		}
	})
}

// TestTwoPCCrashMatrix (experiment E7): crash a participant or the
// coordinator at each step of two-phase commit; after recovery and
// verdict resolution every guardian agrees and balances are
// all-or-nothing.
func TestTwoPCCrashMatrix(t *testing.T) {
	type step int
	const (
		crashParticipantBeforePrepare step = iota
		crashParticipantAfterPrepare
		crashCoordinatorBeforeCommitting
		crashCoordinatorAfterCommitting
		crashParticipantBeforeCommitMsg
		noCrash
	)
	steps := []struct {
		step step
		name string
		// wantCommit: whether the transfer must be visible at the end.
		wantCommit bool
	}{
		{crashParticipantBeforePrepare, "participant-before-prepare", false},
		{crashParticipantAfterPrepare, "participant-after-prepare", false},
		{crashCoordinatorBeforeCommitting, "coordinator-before-committing", false},
		{crashCoordinatorAfterCommitting, "coordinator-after-committing", true},
		{crashParticipantBeforeCommitMsg, "participant-before-commit-msg", true},
		{noCrash, "no-crash", true},
	}
	forBackends(t, func(t *testing.T, b core.Backend) {
		for _, tc := range steps {
			tc := tc
			t.Run(tc.name, func(t *testing.T) {
				f := newDistributed(t, b)
				aid, parts := f.spread(t, [3]int64{-30, +10, +20})
				coordinator := f.g[0]
				victim := f.g[1]

				// Drive the protocol by hand to hit the exact step.
				runManual := func() {
					switch tc.step {
					case crashParticipantBeforePrepare:
						victim.Crash()
						f.net.SetDown(victim.ID(), true)
						_, _ = f.coor.Run(aid, parts)
					case crashParticipantAfterPrepare:
						// Prepare everywhere, then crash the participant;
						// the coordinator times out waiting and aborts.
						for _, p := range parts {
							if v, err := p.(*Guardian).HandlePrepare(aid); err != nil || v != twopc.VotePrepared {
								t.Fatalf("prepare: %v %v", v, err)
							}
						}
						victim.Crash()
						f.net.SetDown(victim.ID(), true)
						// Coordinator aborts unilaterally (it may not
						// have heard the last vote): it never writes
						// committing and tells the others to abort.
						for _, p := range parts {
							_ = f.net.Call(coordinator.ID(), p.(*Guardian).ID(), func() error {
								return p.(*Guardian).HandleAbort(aid)
							})
						}
					case crashCoordinatorBeforeCommitting:
						for _, p := range parts {
							if _, err := p.(*Guardian).HandlePrepare(aid); err != nil {
								t.Fatal(err)
							}
						}
						coordinator.Crash()
						f.net.SetDown(coordinator.ID(), true)
					case crashCoordinatorAfterCommitting:
						for _, p := range parts {
							if _, err := p.(*Guardian).HandlePrepare(aid); err != nil {
								t.Fatal(err)
							}
						}
						if err := coordinator.Committing(aid, []ids.GuardianID{1, 2, 3}); err != nil {
							t.Fatal(err)
						}
						coordinator.Crash()
						f.net.SetDown(coordinator.ID(), true)
					case crashParticipantBeforeCommitMsg:
						for _, p := range parts {
							if _, err := p.(*Guardian).HandlePrepare(aid); err != nil {
								t.Fatal(err)
							}
						}
						if err := coordinator.Committing(aid, []ids.GuardianID{1, 2, 3}); err != nil {
							t.Fatal(err)
						}
						victim.Crash()
						f.net.SetDown(victim.ID(), true)
						// Commit reaches the others; the victim is
						// unresponsive.
						res, err := f.coor.Complete(aid, parts)
						if err != nil {
							t.Fatal(err)
						}
						if res.Done {
							t.Fatal("done written with unresponsive participant")
						}
					case noCrash:
						if _, err := f.coor.Run(aid, parts); err != nil {
							t.Fatal(err)
						}
					}
				}
				runManual()

				// Recovery: restart whoever crashed, resolve in-doubt
				// actions by querying the coordinator.
				guardians := []*Guardian{f.g[0], f.g[1], f.g[2]}
				for i, g := range guardians {
					g.mu.Lock()
					crashed := g.crashed
					g.mu.Unlock()
					if crashed {
						f.net.SetDown(g.ID(), false)
						ng, err := Restart(g)
						if err != nil {
							t.Fatal(err)
						}
						guardians[i] = ng
					}
				}
				coordinatorNow := guardians[0]
				// In-doubt participants query the coordinator (§2.2.2).
				for _, g := range guardians {
					for _, inDoubt := range g.InDoubt() {
						out, err := twopc.Query(f.net, g.ID(), coordinatorNow, inDoubt)
						if err != nil {
							t.Fatalf("query: %v", err)
						}
						switch out {
						case twopc.OutcomeCommitted:
							if err := g.HandleCommit(inDoubt); err != nil {
								t.Fatal(err)
							}
						case twopc.OutcomeAborted:
							if err := g.HandleAbort(inDoubt); err != nil {
								t.Fatal(err)
							}
						}
					}
					// A recovered coordinator re-drives phase two.
					for _, unfinished := range g.Unfinished() {
						if unfinished == aid && g.ID() == coordinatorNow.ID() {
							ps := make([]twopc.Participant, len(guardians))
							for i := range guardians {
								ps[i] = guardians[i]
							}
							c := &twopc.Coordinator{Self: g.ID(), Net: f.net, Log: g}
							if _, err := c.Complete(aid, ps); err != nil {
								t.Fatal(err)
							}
						}
					}
				}

				// Verify all-or-nothing.
				want := []int64{100, 200, 300}
				if tc.wantCommit {
					want = []int64{70, 210, 320}
				}
				for i, g := range guardians {
					if got := counterValue(t, g); got != want[i] {
						t.Fatalf("%s: guardian %d = %d, want %d (commit=%v)",
							tc.name, i+1, got, want[i], tc.wantCommit)
					}
				}
			})
		}
	})
}

func TestEarlyPrepareThroughGuardian(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	a := g.Begin()
	if err := a.Set(c, value.Int(41)); err != nil {
		t.Fatal(err)
	}
	if err := a.EarlyPrepare(); err != nil {
		t.Fatal(err)
	}
	// Modify again: the early copy is stale and must be re-written.
	if err := a.Set(c, value.Int(42)); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	g.Crash()
	g2, err := Restart(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g2); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestEarlyPrepareUnsupportedBackends(t *testing.T) {
	for _, b := range []core.Backend{core.BackendSimple, core.BackendShadow} {
		g := mustGuardian(t, 1, b)
		c := initCounter(t, g, 0)
		a := g.Begin()
		if err := a.Set(c, value.Int(1)); err != nil {
			t.Fatal(err)
		}
		if err := a.EarlyPrepare(); err == nil {
			t.Fatalf("%v: early prepare accepted", b)
		}
	}
}

func TestHousekeepThroughGuardian(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	for i := 0; i < 30; i++ {
		a := g.Begin()
		if err := a.Set(c, value.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := a.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	before := g.RS().LogBytes()
	stats, err := g.Housekeep(core.HousekeepSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NewLogSize >= before {
		t.Fatalf("housekeeping did not shrink: %d -> %d", before, stats.NewLogSize)
	}
	g.Crash()
	g2, err := Restart(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g2); got != 29 {
		t.Fatalf("counter = %d, want 29", got)
	}
}

func TestUnknownActionVotesAbort(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	v, err := g.HandlePrepare(ids.ActionID{Coordinator: 9, Seq: 9})
	if err != nil {
		t.Fatal(err)
	}
	if v != twopc.VoteAborted {
		t.Fatalf("vote = %v, want aborted", v)
	}
}

func TestManyActionsManyObjects(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := mustGuardian(t, 1, b)
		// Build a little directory tree of atomic objects.
		a := g.Begin()
		var leaves []*object.Atomic
		dir := value.NewRecord()
		for i := 0; i < 8; i++ {
			leaf, err := a.NewAtomic(value.Int(0))
			if err != nil {
				t.Fatal(err)
			}
			leaves = append(leaves, leaf)
			dir.Fields[fmt.Sprintf("leaf%d", i)] = value.Ref{Target: leaf}
		}
		dirObj, err := a.NewAtomic(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.SetVar("dir", dirObj); err != nil {
			t.Fatal(err)
		}
		if err := a.Commit(); err != nil {
			t.Fatal(err)
		}
		// Update each leaf in its own action; abort every third.
		for i, leaf := range leaves {
			act := g.Begin()
			if err := act.Set(leaf, value.Int(int64(i+1))); err != nil {
				t.Fatal(err)
			}
			if i%3 == 2 {
				if err := act.Abort(); err != nil {
					t.Fatal(err)
				}
			} else if err := act.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		g.Crash()
		g2, err := Restart(g)
		if err != nil {
			t.Fatal(err)
		}
		rd, ok := g2.VarAtomic("dir")
		if !ok {
			t.Fatal("dir lost")
		}
		rec := rd.Base().(*value.Record)
		for i := 0; i < 8; i++ {
			ref := rec.Fields[fmt.Sprintf("leaf%d", i)].(value.Ref)
			leaf := ref.Target.(*object.Atomic)
			want := int64(i + 1)
			if i%3 == 2 {
				want = 0
			}
			if got := leaf.Base().(value.Int); int64(got) != want {
				t.Fatalf("leaf%d = %d, want %d", i, got, want)
			}
		}
	})
}
