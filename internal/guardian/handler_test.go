package guardian

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/twopc"
	"repro/internal/value"
)

// setupHandlerBank creates a guardian exposing deposit/withdraw
// handlers over its vault.
func setupHandlerBank(t *testing.T, id ids.GuardianID) *Guardian {
	t.Helper()
	g := mustGuardian(t, id, core.BackendHybrid)
	boot := g.Begin()
	vault, err := boot.NewAtomic(value.Int(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.SetVar("vault", vault); err != nil {
		t.Fatal(err)
	}
	if err := boot.Commit(); err != nil {
		t.Fatal(err)
	}
	g.RegisterHandler("deposit", func(sub *Sub, arg value.Value) (value.Value, error) {
		v, _ := g.VarAtomic("vault")
		amount := int64(arg.(value.Int))
		if err := sub.Update(v, func(cur value.Value) value.Value {
			return value.Int(int64(cur.(value.Int)) + amount)
		}); err != nil {
			return nil, err
		}
		return sub.Read(v)
	})
	g.RegisterHandler("withdraw", func(sub *Sub, arg value.Value) (value.Value, error) {
		v, _ := g.VarAtomic("vault")
		amount := int64(arg.(value.Int))
		cur, err := sub.Read(v)
		if err != nil {
			return nil, err
		}
		if int64(cur.(value.Int)) < amount {
			return nil, errors.New("insufficient funds")
		}
		if err := sub.Update(v, func(c value.Value) value.Value {
			return value.Int(int64(c.(value.Int)) - amount)
		}); err != nil {
			return nil, err
		}
		return sub.Read(v)
	})
	return g
}

func vaultBalance(t *testing.T, g *Guardian) int64 {
	t.Helper()
	v, ok := g.VarAtomic("vault")
	if !ok {
		t.Fatal("vault missing")
	}
	return int64(v.Base().(value.Int))
}

// TestHandlerCallCommit: a top-level action spreads to another guardian
// through a handler call, then commits with two-phase commit.
func TestHandlerCallCommit(t *testing.T) {
	net := netsim.New()
	src := setupHandlerBank(t, 1)
	dst := setupHandlerBank(t, 2)

	a := src.Begin()
	vault, _ := src.VarAtomic("vault")
	if err := a.Update(vault, func(v value.Value) value.Value {
		return value.Int(int64(v.(value.Int)) - 250)
	}); err != nil {
		t.Fatal(err)
	}
	out, err := Call(net, a, dst, "deposit", value.Int(250))
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(out, value.Int(1250)) {
		t.Fatalf("deposit returned %s", value.String(out))
	}
	coor := &twopc.Coordinator{Self: src.ID(), Net: net, Log: src}
	res, err := coor.Run(a.ID(), []twopc.Participant{src, dst})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("result %+v", res)
	}
	if got := vaultBalance(t, src); got != 750 {
		t.Fatalf("src vault = %d", got)
	}
	if got := vaultBalance(t, dst); got != 1250 {
		t.Fatalf("dst vault = %d", got)
	}
}

// TestHandlerErrorAbortsOnlySubaction: a failed handler call undoes its
// effects at the target, and the top action can still commit other
// work.
func TestHandlerErrorAbortsOnlySubaction(t *testing.T) {
	net := netsim.New()
	src := setupHandlerBank(t, 1)
	dst := setupHandlerBank(t, 2)

	a := src.Begin()
	// Overdraw at the destination: handler fails, subaction aborts.
	if _, err := Call(net, a, dst, "withdraw", value.Int(5000)); err == nil {
		t.Fatal("overdraft succeeded")
	}
	// A smaller withdrawal through the same action now works.
	out, err := Call(net, a, dst, "withdraw", value.Int(100))
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(out, value.Int(900)) {
		t.Fatalf("withdraw returned %s", value.String(out))
	}
	coor := &twopc.Coordinator{Self: src.ID(), Net: net, Log: src}
	if _, err := coor.Run(a.ID(), []twopc.Participant{src, dst}); err != nil {
		t.Fatal(err)
	}
	if got := vaultBalance(t, dst); got != 900 {
		t.Fatalf("dst vault = %d, want 900", got)
	}
}

// TestHandlerUnknownName and unreachable targets.
func TestHandlerCallFailures(t *testing.T) {
	net := netsim.New()
	src := setupHandlerBank(t, 1)
	dst := setupHandlerBank(t, 2)
	a := src.Begin()
	if _, err := Call(net, a, dst, "no-such-handler", value.Int(0)); err == nil {
		t.Fatal("unknown handler succeeded")
	}
	net.SetDown(dst.ID(), true)
	if _, err := Call(net, a, dst, "deposit", value.Int(1)); err == nil {
		t.Fatal("call to down guardian succeeded")
	}
}

// TestHandlerCallThenCrashBeforeCommit: the spread action dies with the
// crash; both vaults revert.
func TestHandlerCallThenCrashBeforeCommit(t *testing.T) {
	net := netsim.New()
	src := setupHandlerBank(t, 1)
	dst := setupHandlerBank(t, 2)
	a := src.Begin()
	if _, err := Call(net, a, dst, "deposit", value.Int(250)); err != nil {
		t.Fatal(err)
	}
	dst.Crash()
	d2, err := Restart(dst)
	if err != nil {
		t.Fatal(err)
	}
	if got := vaultBalance(t, d2); got != 1000 {
		t.Fatalf("dst vault = %d, want 1000", got)
	}
}

// TestCommitSpread: the coordinator auto-assembles the participants a
// Call reached.
func TestCommitSpread(t *testing.T) {
	net := netsim.New()
	src := setupHandlerBank(t, 1)
	dst := setupHandlerBank(t, 2)
	other := setupHandlerBank(t, 3)

	a := src.Begin()
	vault, _ := src.VarAtomic("vault")
	if err := a.Update(vault, func(v value.Value) value.Value {
		return value.Int(int64(v.(value.Int)) - 100)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Call(net, a, dst, "deposit", value.Int(60)); err != nil {
		t.Fatal(err)
	}
	if _, err := Call(net, a, other, "deposit", value.Int(40)); err != nil {
		t.Fatal(err)
	}
	res, err := CommitSpread(net, a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Outcome != twopc.OutcomeCommitted {
		t.Fatalf("result %+v", res)
	}
	if got := vaultBalance(t, src); got != 900 {
		t.Fatalf("src = %d", got)
	}
	if got := vaultBalance(t, dst); got != 1060 {
		t.Fatalf("dst = %d", got)
	}
	if got := vaultBalance(t, other); got != 1040 {
		t.Fatalf("other = %d", got)
	}
	// And the commits survive crashes.
	for _, g := range []*Guardian{src, dst, other} {
		g.Crash()
		if _, err := Restart(g); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCommitSpreadUnknownAction: committing a dead action fails.
func TestCommitSpreadUnknownAction(t *testing.T) {
	net := netsim.New()
	src := setupHandlerBank(t, 1)
	a := src.Begin()
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := CommitSpread(net, a); err == nil {
		t.Fatal("CommitSpread of an aborted action succeeded")
	}
}

// TestReadOnlyParticipantOptimization: a participant that only read
// votes read-only, writes nothing, and skips phase two.
func TestReadOnlyParticipantOptimization(t *testing.T) {
	net := netsim.New()
	src := setupHandlerBank(t, 1)
	dst := setupHandlerBank(t, 2)
	dst.RegisterHandler("peek", func(sub *Sub, _ value.Value) (value.Value, error) {
		v, _ := dst.VarAtomic("vault")
		return sub.Read(v)
	})

	a := src.Begin()
	vault, _ := src.VarAtomic("vault")
	if err := a.Update(vault, func(v value.Value) value.Value {
		return value.Int(int64(v.(value.Int)) + 1)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Call(net, a, dst, "peek", value.Int(0)); err != nil {
		t.Fatal(err)
	}
	dstBytes := dst.RS().LogBytes()
	res, err := CommitSpread(net, a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("result %+v", res)
	}
	if grew := dst.RS().LogBytes() - dstBytes; grew != 0 {
		t.Fatalf("read-only participant wrote %d bytes", grew)
	}
	// Its read locks are released: another action can write at once.
	b := dst.Begin()
	dv, _ := dst.VarAtomic("vault")
	if err := b.Set(dv, value.Int(1)); err != nil {
		t.Fatalf("read lock leaked: %v", err)
	}
	if err := b.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestAllReadOnlyCommit: every participant read-only — the action
// commits with zero stable writes anywhere.
func TestAllReadOnlyCommit(t *testing.T) {
	net := netsim.New()
	src := setupHandlerBank(t, 1)
	before := src.RS().LogBytes()
	a := src.Begin()
	vault, _ := src.VarAtomic("vault")
	if _, err := a.Read(vault); err != nil {
		t.Fatal(err)
	}
	res, err := CommitSpread(net, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != twopc.OutcomeCommitted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if grew := src.RS().LogBytes() - before; grew != 0 {
		t.Fatalf("read-only action wrote %d bytes", grew)
	}
}
