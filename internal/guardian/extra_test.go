package guardian

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/twopc"
	"repro/internal/value"
)

// TestTrimAS: unlinking an object from the stable variables leaves its
// UID in the AS (§3.3.3.2: "the set grows larger over time"); TrimAS
// removes it, and a later re-link treats the object as newly accessible
// again without losing data.
func TestTrimAS(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := mustGuardian(t, 1, b)
		a := g.Begin()
		keep, err := a.NewAtomic(value.Int(1))
		if err != nil {
			t.Fatal(err)
		}
		drop, err := a.NewAtomic(value.Int(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := a.SetVar("keep", keep); err != nil {
			t.Fatal(err)
		}
		if err := a.SetVar("drop", drop); err != nil {
			t.Fatal(err)
		}
		if err := a.Commit(); err != nil {
			t.Fatal(err)
		}
		if !g.RS().AS().Contains(drop.UID()) {
			t.Fatal("drop not in AS after commit")
		}

		// Unbind "drop": overwrite the stable variable with keep.
		unbind := g.Begin()
		if err := unbind.SetVar("drop", keep); err != nil {
			t.Fatal(err)
		}
		if err := unbind.Commit(); err != nil {
			t.Fatal(err)
		}
		// The AS still contains the unreachable UID (superset behavior).
		if !g.RS().AS().Contains(drop.UID()) {
			t.Fatal("AS trimmed eagerly — thesis expects lazy growth")
		}
		g.TrimAS()
		if g.RS().AS().Contains(drop.UID()) {
			t.Fatal("TrimAS kept an unreachable UID")
		}
		if !g.RS().AS().Contains(keep.UID()) {
			t.Fatal("TrimAS dropped a reachable UID")
		}

		// Re-link the dropped object: it must be written again as newly
		// accessible, and survive a crash.
		relink := g.Begin()
		if err := relink.SetVar("back", drop); err != nil {
			t.Fatal(err)
		}
		if err := relink.Commit(); err != nil {
			t.Fatal(err)
		}
		g.Crash()
		g2, err := Restart(g)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := g2.VarAtomic("back")
		if !ok || !value.Equal(got.Base(), value.Int(2)) {
			t.Fatalf("re-linked object lost: %v", got)
		}
	})
}

// TestPartitionDuringPhaseOne: a link cut between coordinator and one
// participant aborts the action everywhere reachable.
func TestPartitionDuringPhaseOne(t *testing.T) {
	f := newDistributed(t, core.BackendHybrid)
	aid, parts := f.spread(t, [3]int64{-30, +10, +20})
	f.net.Cut(f.g[0].ID(), f.g[2].ID(), true)
	if _, err := f.coor.Run(aid, parts); err == nil {
		t.Fatal("commit succeeded across a partition")
	}
	// Reachable guardians rolled back.
	for i := 0; i < 2; i++ {
		want := int64(100 * (i + 1))
		if got := counterValue(t, f.g[i]); got != want {
			t.Fatalf("guardian %d = %d, want %d", i+1, got, want)
		}
	}
	// The partitioned guardian never prepared; its local action state is
	// still live but uncommitted; heal the partition and confirm its
	// committed state is intact.
	f.net.Cut(f.g[0].ID(), f.g[2].ID(), false)
	if got := counterValue(t, f.g[2]); got != 300 {
		t.Fatalf("guardian 3 = %d, want 300", got)
	}
}

// TestPartitionDuringPhaseTwo: the commit message is cut off; the
// participant resolves via query after the partition heals.
func TestPartitionDuringPhaseTwo(t *testing.T) {
	f := newDistributed(t, core.BackendHybrid)
	aid, parts := f.spread(t, [3]int64{-30, +10, +20})
	for _, p := range parts {
		if v, err := p.(*Guardian).HandlePrepare(aid); err != nil || v != twopc.VotePrepared {
			t.Fatalf("prepare: %v %v", v, err)
		}
	}
	if err := f.g[0].Committing(aid, []ids.GuardianID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.net.Cut(f.g[0].ID(), f.g[2].ID(), true)
	res, err := f.coor.Complete(aid, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done || len(res.Unresponsive) != 1 {
		t.Fatalf("result = %+v", res)
	}
	// g[2] is prepared and cut off. Heal; it queries and commits.
	f.net.Cut(f.g[0].ID(), f.g[2].ID(), false)
	out, err := twopc.Query(f.net, f.g[2].ID(), f.g[0], aid)
	if err != nil || out != twopc.OutcomeCommitted {
		t.Fatalf("query: %v %v", out, err)
	}
	if err := f.g[2].HandleCommit(aid); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, f.g[2]); got != 320 {
		t.Fatalf("guardian 3 = %d, want 320", got)
	}
	// The coordinator finishes phase two.
	if res, err := f.coor.Complete(aid, parts); err != nil || !res.Done {
		t.Fatalf("complete: %+v %v", res, err)
	}
}

// TestConcurrentActionsDisjointObjects: goroutines run actions on
// disjoint counters; the recovery-system lock serializes log writes and
// nothing is lost across a crash.
func TestConcurrentActionsDisjointObjects(t *testing.T) {
	forBackends(t, func(t *testing.T, b core.Backend) {
		g := mustGuardian(t, 1, b)
		const workers = 4
		const perWorker = 10
		setup := g.Begin()
		counters := make([]*object.Atomic, workers)
		for i := range counters {
			c, err := setup.NewAtomic(value.Int(0))
			if err != nil {
				t.Fatal(err)
			}
			if err := setup.SetVar(varName(i), c); err != nil {
				t.Fatal(err)
			}
			counters[i] = c
		}
		if err := setup.Commit(); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, workers*perWorker)
		for wkr := 0; wkr < workers; wkr++ {
			wkr := wkr
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					a := g.Begin()
					if err := a.Update(counters[wkr], func(v value.Value) value.Value {
						return value.Int(int64(v.(value.Int)) + 1)
					}); err != nil {
						errs <- err
						return
					}
					if err := a.Commit(); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		g.Crash()
		g2, err := Restart(g)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < workers; i++ {
			c, ok := g2.VarAtomic(varName(i))
			if !ok {
				t.Fatalf("counter %d lost", i)
			}
			if got := c.Base().(value.Int); int64(got) != perWorker {
				t.Fatalf("counter %d = %d, want %d", i, got, perWorker)
			}
		}
	})
}

// TestLockConflictAcrossActions: the second action cannot write-lock a
// counter the first holds; after the first commits, it can.
func TestLockConflictAcrossActions(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	a1 := g.Begin()
	if err := a1.Set(c, value.Int(1)); err != nil {
		t.Fatal(err)
	}
	a2 := g.Begin()
	if err := a2.Set(c, value.Int(2)); err == nil {
		t.Fatal("conflicting write lock granted")
	}
	if err := a1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a2.Set(c, value.Int(2)); err != nil {
		t.Fatalf("lock not released after commit: %v", err)
	}
	if err := a2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g); got != 2 {
		t.Fatalf("counter = %d", got)
	}
}

// TestOperationsOnDeadAction: using an action after commit/abort fails
// cleanly.
func TestOperationsOnDeadAction(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	a := g.Begin()
	if err := a.Set(c, value.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.Set(c, value.Int(2)); err == nil {
		t.Fatal("write through a committed action succeeded")
	}
	if err := a.Commit(); err == nil {
		t.Fatal("double commit succeeded")
	}
	if err := a.Abort(); err == nil {
		t.Fatal("abort after commit succeeded")
	}
}

// TestReadOnlyActionWritesNothing: a committed read-only action should
// add (almost) nothing but outcome entries to the log.
func TestReadOnlyActionWritesNothing(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 7)
	before := g.RS().LogBytes()
	a := g.Begin()
	v, err := a.Read(c)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(v, value.Int(7)) {
		t.Fatalf("read %s", value.String(v))
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	grew := g.RS().LogBytes() - before
	if grew > 200 { // four small outcome entries
		t.Fatalf("read-only action wrote %d bytes", grew)
	}
}

func varName(i int) string {
	return string(rune('a' + i))
}

// TestConcurrentActionsContendedObject: goroutines increment the SAME
// counter through UpdateWait; lock waiting serializes them and no
// increment is lost across a crash.
func TestConcurrentActionsContendedObject(t *testing.T) {
	g := mustGuardian(t, 1, core.BackendHybrid)
	c := initCounter(t, g, 0)
	const workers, per = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a := g.Begin()
				if err := a.UpdateWait(c, 5*time.Second, func(v value.Value) value.Value {
					return value.Int(int64(v.(value.Int)) + 1)
				}); err != nil {
					errs <- err
					return
				}
				if err := a.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := counterValue(t, g); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	g.Crash()
	g2, err := Restart(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, g2); got != workers*per {
		t.Fatalf("after crash counter = %d, want %d", got, workers*per)
	}
}
