package guardian

// Handlers (thesis §2.1): "A guardian's external interface is in the
// form of a set of operations, called handlers, that can be called by
// other guardians to provide access to the called guardian's objects."
//
// A handler call travels over the network, runs as a subaction of the
// calling top-level action at the target guardian, and makes that
// guardian a participant in the action's eventual two-phase commit.
// If the handler returns an error its subaction is aborted, undoing its
// modifications at the target without dooming the whole action.

import (
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/twopc"
	"repro/internal/value"
)

// HandlerFunc is the body of a handler: it runs inside a subaction of
// the calling action at this guardian and may read and modify the
// guardian's objects through it.
type HandlerFunc func(sub *Sub, arg value.Value) (value.Value, error)

// RegisterHandler installs a handler under the given name. The registry
// is per-guardian (guarded by g.handlersMu), so registration at one
// guardian never contends with calls at another.
func (g *Guardian) RegisterHandler(name string, fn HandlerFunc) {
	g.handlersMu.Lock()
	defer g.handlersMu.Unlock()
	g.handlers[name] = fn
}

// lookupHandler fetches a handler by name.
func (g *Guardian) lookupHandler(name string) (HandlerFunc, bool) {
	g.handlersMu.Lock()
	defer g.handlersMu.Unlock()
	fn, ok := g.handlers[name]
	return fn, ok
}

// Call invokes a handler at the target guardian on behalf of action a,
// delivering the call over the network. The target joins the action (it
// becomes a participant, remembered for CommitSpread); the handler body
// runs in a subaction, so a handler error undoes its effects at the
// target and is returned to the caller, leaving the top-level action
// free to try something else (§2.1).
func Call(net transport.Transport, a *Action, target *Guardian, name string, arg value.Value) (value.Value, error) {
	var result value.Value
	err := net.Call(a.g.id, target.id, func() error {
		fn, ok := target.lookupHandler(name)
		if !ok {
			return fmt.Errorf("guardian: %v has no handler %q", target.id, name)
		}
		branch := target.Join(a.id)
		sub := branch.Sub()
		out, herr := fn(sub, arg)
		if herr != nil {
			if aerr := sub.Abort(); aerr != nil {
				return aerr
			}
			return herr
		}
		if cerr := sub.Commit(); cerr != nil {
			return cerr
		}
		result = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Remember the participant for CommitSpread.
	a.g.mu.Lock()
	st, ok := a.g.live[a.id]
	a.g.mu.Unlock()
	if ok {
		st.mu.Lock()
		if st.remote == nil {
			st.remote = make(map[ids.GuardianID]*Guardian)
		}
		st.remote[target.id] = target
		st.mu.Unlock()
	}
	return result, nil
}

// CommitSpread commits a top-level action that spread to other
// guardians through Call: the coordinator assembles the participant
// list automatically (itself plus every guardian a handler call
// reached) and runs two-phase commit (§2.2).
func CommitSpread(net transport.Transport, a *Action) (twopc.Result, error) {
	a.g.mu.Lock()
	st, ok := a.g.live[a.id]
	a.g.mu.Unlock()
	if !ok {
		return twopc.Result{}, fmt.Errorf("%w: %v", ErrUnknownAction, a.id)
	}
	// Sort the spread-to guardians so prepare/commit messages go out in
	// the same order every run (the sweep replays message schedules).
	st.mu.Lock()
	gids := make([]ids.GuardianID, 0, len(st.remote))
	//roslint:nondet keys collected here are sorted below before use
	for gid := range st.remote {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	parts := []twopc.Participant{a.g}
	for _, gid := range gids {
		parts = append(parts, st.remote[gid])
	}
	st.mu.Unlock()
	c := &twopc.Coordinator{Self: a.g.id, Net: net, Log: a.g}
	return c.Run(a.id, parts)
}
