package guardian

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/value"
)

// TestConcurrentCommitStress drives many goroutines through the
// group-commit path at once: each worker commits a run of actions on
// its own (disjoint) counter and on one shared, contended counter, all
// through the normal RunAtomic retry loop. It then verifies the final
// values against the serial oracle, crashes the guardian, and checks
// that recovery reproduces exactly the committed state.
//
// Run under -race this exercises the decomposed locking: the guardian
// table lock (g.mu), the per-action state locks (actionState.mu), the
// writer mutexes, and the force scheduler all see real concurrency
// here, unlike the single-threaded crash sweeps.
func TestConcurrentCommitStress(t *testing.T) {
	const (
		workers       = 8
		commits       = 12 // per worker, disjoint phase
		sharedCommits = 4  // per worker, contended phase
		attempts      = 200
		lockWait      = 2 * time.Second
	)
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			g := mustGuardian(t, 1, b)
			// With the default zero-latency MemDevice a force is a
			// memcpy and concurrent committers never overlap inside
			// one, so there is nothing to coalesce. A modest simulated
			// write latency restores the disk economics group commit
			// exists for.
			g.Volume().SetWriteDelay(50 * time.Microsecond)

			// One committed action binds the shared counter and every
			// per-worker counter, so all workers start from the same
			// recoverable state.
			a := g.Begin()
			shared, err := a.NewAtomic(value.Int(0))
			if err != nil {
				t.Fatal(err)
			}
			if err := a.SetVar("shared", shared); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < workers; w++ {
				c, err := a.NewAtomic(value.Int(0))
				if err != nil {
					t.Fatal(err)
				}
				if err := a.SetVar(fmt.Sprintf("ctr%d", w), c); err != nil {
					t.Fatal(err)
				}
			}
			if err := a.Commit(); err != nil {
				t.Fatal(err)
			}

			forcesBefore := g.RS().Forces()
			var wg sync.WaitGroup
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				w := w
				own, ok := g.VarAtomic(fmt.Sprintf("ctr%d", w))
				if !ok {
					t.Fatalf("ctr%d missing", w)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					inc := func(v value.Value) value.Value {
						return value.Int(int64(v.(value.Int)) + 1)
					}
					// Disjoint phase: each worker updates only its own
					// counter, so no action ever waits on another's
					// lock and the commits genuinely overlap — this is
					// the phase that exercises force coalescing.
					for i := 0; i < commits; i++ {
						errs[w] = RunAtomic(g, attempts, func(a *Action) error {
							return a.Update(own, inc)
						})
						if errs[w] != nil {
							return
						}
					}
					// Contended phase: every worker increments the one
					// shared counter. Its write lock is held through
					// commit, so these serialize; UpdateWait queues on
					// the lock instead of aborting immediately.
					for i := 0; i < sharedCommits; i++ {
						errs[w] = RunAtomic(g, attempts, func(a *Action) error {
							return a.UpdateWait(shared, lockWait, inc)
						})
						if errs[w] != nil {
							return
						}
					}
				}()
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}

			// Every RunAtomic above committed, so the oracle is exact:
			// each disjoint counter saw `commits` increments and the
			// shared counter saw every worker's sharedCommits.
			check := func(g *Guardian, when string) {
				t.Helper()
				for w := 0; w < workers; w++ {
					c, ok := g.VarAtomic(fmt.Sprintf("ctr%d", w))
					if !ok {
						t.Fatalf("%s: ctr%d missing", when, w)
					}
					if got := int64(c.Base().(value.Int)); got != commits {
						t.Errorf("%s: ctr%d = %d, want %d", when, w, got, commits)
					}
				}
				s, ok := g.VarAtomic("shared")
				if !ok {
					t.Fatalf("%s: shared counter missing", when)
				}
				if got := int64(s.Base().(value.Int)); got != workers*sharedCommits {
					t.Errorf("%s: shared = %d, want %d", when, got, workers*sharedCommits)
				}
			}
			check(g, "before crash")

			// The whole point of the scheduler: concurrent committers
			// share forces. Each local commit is four force waits
			// (prepared, committing, committed, done), so a fully
			// serial run forces exactly 4 per commit; anything below
			// proves coalescing happened. The bound is loose — the
			// scheduler is timing-dependent — but with 8 workers
			// committing disjoint counters flat out, some overlap is
			// guaranteed in practice.
			totalCommits := workers * (commits + sharedCommits)
			forces := g.RS().Forces() - forcesBefore
			if forces >= 4*totalCommits {
				t.Errorf("no force coalescing: %d forces for %d commits", forces, totalCommits)
			}
			t.Logf("%d commits, %d forces (%.2f forces/commit)",
				totalCommits, forces, float64(forces)/float64(totalCommits))

			g.Crash()
			g2, err := Restart(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckRecovered(g2); err != nil {
				t.Fatal(err)
			}
			check(g2, "after recovery")
		})
	}
}
