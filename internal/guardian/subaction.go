package guardian

// Subactions (thesis §2.1: "an action called a top-level action starts
// at one guardian and can spread to other guardians, spawning
// subactions by means of handler calls").
//
// The recovery system never sees subactions — only top-level actions
// prepare, commit, and abort against stable storage. What subactions
// add is volatile-state scoping: a subaction's modifications can be
// undone without aborting the whole top-level action, and its locks are
// acquired on the top-level action's behalf (lock inheritance), so the
// parent keeps them when the subaction commits.
//
// This implementation takes the standard simplification for a
// single-version-per-top-action runtime: a subaction records, for each
// atomic object it is the first in its scope to modify, the version
// that was current when it started; aborting the subaction restores
// those versions. Mutex objects are exempt — as at top level, seize
// modifications are not undone by aborts (§2.4.2 gives them no
// recoverability).

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/value"
)

// Sub is a subaction of a top-level action at one guardian.
type Sub struct {
	parent *Action
	done   bool
	// undo records the pre-subaction current version of each atomic
	// object first modified inside this subaction (and whether the
	// top-level action already had it in its MOS).
	undo []undoRecord
}

type undoRecord struct {
	obj      *object.Atomic
	version  value.Value
	hadWrite bool // the top action already write-locked it before the sub
}

// Sub starts a subaction. Its reads and writes act on behalf of the
// top-level action; Commit keeps them, Abort undoes them.
func (a *Action) Sub() *Sub {
	return &Sub{parent: a}
}

func (s *Sub) check() error {
	if s.done {
		return fmt.Errorf("guardian: subaction already completed")
	}
	_, err := s.parent.state()
	return err
}

// Read acquires a read lock (on the top-level action's behalf) and
// returns the visible version.
func (s *Sub) Read(obj *object.Atomic) (value.Value, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	return s.parent.Read(obj)
}

// Update modifies obj within the subaction's scope.
func (s *Sub) Update(obj *object.Atomic, fn func(value.Value) value.Value) error {
	if err := s.check(); err != nil {
		return err
	}
	// Record the undo point before the first modification in this scope.
	already := false
	for _, u := range s.undo {
		if u.obj == obj {
			already = true
			break
		}
	}
	if !already {
		hadWrite := obj.Writer() == s.parent.id
		var prior value.Value
		if hadWrite {
			prior = value.Copy(obj.Value(s.parent.id))
		}
		s.undo = append(s.undo, undoRecord{obj: obj, version: prior, hadWrite: hadWrite})
	}
	return s.parent.Update(obj, fn)
}

// Set is Update with a constant value.
func (s *Sub) Set(obj *object.Atomic, v value.Value) error {
	return s.Update(obj, func(value.Value) value.Value { return v })
}

// NewAtomic creates an object within the subaction; if the subaction
// aborts the object remains allocated but unreferenced (and therefore
// never written to stable storage).
func (s *Sub) NewAtomic(initial value.Value) (*object.Atomic, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	return s.parent.NewAtomic(initial)
}

// SetVar binds a stable variable within the subaction's scope. The
// binding rides the stable-variables root object through the sub's own
// Update, so aborting the subaction undoes it (Action.SetVar is only
// undone by a top-level abort).
func (s *Sub) SetVar(name string, obj object.Recoverable) error {
	if err := s.check(); err != nil {
		return err
	}
	root, ok := s.parent.g.heap.StableVars()
	if !ok {
		return fmt.Errorf("guardian: no stable variables object")
	}
	return s.Update(root, func(v value.Value) value.Value {
		rec, ok := v.(*value.Record)
		if !ok {
			rec = value.NewRecord()
		}
		rec.Fields[name] = value.Ref{Target: obj}
		return rec
	})
}

// Seize runs fn in possession of the mutex on the top action's behalf.
// Mutex modifications are not undone by subaction abort, mirroring
// top-level abort semantics (§2.4.2).
func (s *Sub) Seize(m *object.Mutex, fn func(value.Value) value.Value) error {
	if err := s.check(); err != nil {
		return err
	}
	return s.parent.Seize(m, fn)
}

// Commit makes the subaction's effects part of the top-level action
// (which must still commit for them to reach stable storage).
func (s *Sub) Commit() error {
	if err := s.check(); err != nil {
		return err
	}
	s.done = true
	s.undo = nil
	return nil
}

// Abort undoes the subaction's modifications to atomic objects while
// the top-level action continues. Objects the subaction was the first
// to modify revert to their pre-subaction versions; objects the top
// action had already modified revert to the top action's version.
func (s *Sub) Abort() error {
	if err := s.check(); err != nil {
		return err
	}
	s.done = true
	a := s.parent
	for i := len(s.undo) - 1; i >= 0; i-- {
		u := s.undo[i]
		if u.hadWrite {
			if err := u.obj.Replace(a.id, u.version); err != nil {
				return err
			}
			continue
		}
		// The subaction introduced the write: drop the version and the
		// lock, and remove the object from the top action's MOS.
		u.obj.Abort(a.id)
		a.g.mu.Lock()
		st, live := a.g.live[a.id]
		a.g.mu.Unlock()
		if live {
			st.mu.Lock()
			delete(st.mos, u.obj.UID())
			delete(st.locked, u.obj.UID())
			st.mu.Unlock()
		}
	}
	s.undo = nil
	return nil
}

// aidOf is a test hook returning the top-level action id a subaction
// runs under.
func (s *Sub) aidOf() ids.ActionID { return s.parent.id }
