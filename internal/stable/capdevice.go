package stable

import (
	"errors"
	"sync"
)

// ErrNoSpace is returned by a capped device when a write would grow it
// past its volume's byte budget — the external face of disk-full. The
// layers above treat it like any device write error: the force fails,
// the commit is refused, and nothing is acknowledged; the chaos
// harness injects it by starting a victim rosd with a small -datacap
// and letting traffic fill it.
var ErrNoSpace = errors.New("stable: no space left on device")

// Budget is a byte allowance shared by the devices of one volume, so
// the cap models a full disk rather than a full file.
type Budget struct {
	mu        sync.Mutex
	remaining int64
}

// NewBudget returns a budget of n bytes.
func NewBudget(n int64) *Budget { return &Budget{remaining: n} }

// Charge debits n bytes, or returns ErrNoSpace (debiting nothing) if
// fewer remain.
func (b *Budget) Charge(n int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.remaining {
		return ErrNoSpace
	}
	b.remaining -= n
	return nil
}

// Refund returns n bytes to the budget (a charged write that failed at
// the device).
func (b *Budget) Refund(n int64) {
	b.mu.Lock()
	b.remaining += n
	b.mu.Unlock()
}

// Remaining reports the bytes left.
func (b *Budget) Remaining() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remaining
}

// CappedDevice charges block growth on an underlying device against a
// shared Budget. Overwrites of existing blocks are free — the space is
// already paid for — so a full volume still recovers and serves reads;
// only growth (new log entries, new generations) is refused.
type CappedDevice struct {
	Device
	budget *Budget
}

// Capped wraps d so its growth draws from budget.
func Capped(d Device, budget *Budget) *CappedDevice {
	return &CappedDevice{Device: d, budget: budget}
}

// WriteBlock implements Device, refusing growth past the budget.
func (c *CappedDevice) WriteBlock(i int, p []byte) error {
	var charge int64
	if n := c.Device.NumBlocks(); i >= n {
		charge = int64(i+1-n) * int64(c.Device.BlockSize())
		if err := c.budget.Charge(charge); err != nil {
			return err
		}
	}
	if err := c.Device.WriteBlock(i, p); err != nil {
		c.budget.Refund(charge)
		return err
	}
	return nil
}
