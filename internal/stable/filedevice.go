package stable

import (
	"fmt"
	"os"
	"sync"
)

// FileDevice is a Device backed by an ordinary file, for running the
// library against real disks rather than the in-memory simulation. Each
// block occupies a fixed-size slot; the Store layer's per-copy
// checksums detect torn or corrupted blocks, so the device itself makes
// no integrity promises beyond what the filesystem gives — exactly the
// "conventional storage devices with less desirable properties" that
// stable storage must be built from (§1.1).
//
// Pair two FileDevices on independent spindles (or at least files) to
// build a Store with the two-copy protocol.
type FileDevice struct {
	mu        sync.Mutex
	f         *os.File
	blockSize int
	nBlocks   int
	sync      bool
}

// OpenFileDevice opens (creating if necessary) a file-backed device.
// If syncEveryWrite is true every block write is followed by fsync,
// making the durability story real at the price of latency.
func OpenFileDevice(path string, blockSize int, syncEveryWrite bool) (*FileDevice, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("stable: block size must be positive")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size()%int64(blockSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("stable: %s size %d not a multiple of block size %d",
			path, info.Size(), blockSize)
	}
	return &FileDevice{
		f:         f,
		blockSize: blockSize,
		nBlocks:   int(info.Size() / int64(blockSize)),
		sync:      syncEveryWrite,
	}, nil
}

// BlockSize implements Device.
func (d *FileDevice) BlockSize() int { return d.blockSize }

// NumBlocks implements Device.
func (d *FileDevice) NumBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nBlocks
}

// ReadBlock implements Device.
func (d *FileDevice) ReadBlock(i int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= d.nBlocks {
		return nil, fmt.Errorf("stable: block %d out of range [0,%d)", i, d.nBlocks)
	}
	buf := make([]byte, d.blockSize)
	if _, err := d.f.ReadAt(buf, int64(i)*int64(d.blockSize)); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteBlock implements Device.
func (d *FileDevice) WriteBlock(i int, p []byte) error {
	if len(p) > d.blockSize {
		return fmt.Errorf("stable: write of %d bytes exceeds block size %d", len(p), d.blockSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 {
		return fmt.Errorf("stable: negative block %d", i)
	}
	buf := make([]byte, d.blockSize)
	copy(buf, p)
	if _, err := d.f.WriteAt(buf, int64(i)*int64(d.blockSize)); err != nil {
		return err
	}
	if i >= d.nBlocks {
		d.nBlocks = i + 1
	}
	if d.sync {
		return d.f.Sync()
	}
	return nil
}

// Sync flushes the file to disk.
func (d *FileDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Sync()
}

// Close releases the underlying file.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}
