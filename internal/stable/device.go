// Package stable implements simulated atomic stable storage in the style
// of Lampson and Sturgis, as assumed by thesis §1.1.
//
// The thesis deliberately does not implement stable storage; it assumes
// a device whose write operation is atomic ("the data is either written
// completely to the disk or not written at all, even if there is a
// failure while the update is happening") and builds the log
// organization above it. This package provides that contract in
// simulation so the layers above exercise exactly the code paths the
// thesis describes:
//
//   - Device is a conventional block device with *non-atomic* writes: a
//     crash mid-write leaves a torn (detectably bad) block, and blocks
//     may spontaneously decay.
//   - Store pairs two Devices with independent failure modes and runs
//     the two-copy update protocol (write copy A, then copy B, each
//     self-checksummed and version-stamped), yielding pages whose
//     updates are atomic with respect to crashes and single-device
//     faults.
//
// Fault injection is deterministic: a FaultPlan decides, per device
// write, whether the write succeeds, tears, or the whole node crashes,
// which lets tests enumerate every crash point of the protocols above.
package stable

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrCrashed is returned by every operation on a device (or a store
// using it) after an injected crash, until the device is Restarted.
// It simulates the node being down.
var ErrCrashed = errors.New("stable: node crashed")

// ErrBadBlock is returned when a read finds a torn or decayed block.
var ErrBadBlock = errors.New("stable: bad block")

// Fault is a fault-injection verdict for a single block write.
type Fault uint8

const (
	// FaultNone lets the write proceed normally.
	FaultNone Fault = iota
	// FaultTorn applies the write but leaves the block torn: subsequent
	// reads return ErrBadBlock until the block is rewritten. It models a
	// power failure mid-sector or a scribbled sector.
	FaultTorn
	// FaultCrash tears the block and crashes the node: this write and
	// every later operation return ErrCrashed until Restart.
	FaultCrash
)

// FaultPlan decides the fate of each write. The device calls Next once
// per WriteBlock with the block number; implementations may count calls
// to trigger a fault at an exact point. A nil FaultPlan never faults.
type FaultPlan interface {
	Next(block int) Fault
}

// FaultFunc adapts a function to the FaultPlan interface.
type FaultFunc func(block int) Fault

// Next implements FaultPlan.
func (f FaultFunc) Next(block int) Fault { return f(block) }

// ReadFault is a fault-injection verdict for a single block read.
type ReadFault uint8

const (
	// ReadFaultNone lets the read proceed normally.
	ReadFaultNone ReadFault = iota
	// ReadFaultTransient fails this read with ErrBadBlock while leaving
	// the block intact: a soft read error that a retry (or the sibling
	// copy) survives.
	ReadFaultTransient
	// ReadFaultDecay marks the block decayed: this and every later read
	// return ErrBadBlock until the block is rewritten. It models media
	// failure discovered on read.
	ReadFaultDecay
)

// ReadFaultPlan extends a FaultPlan to the read path. A FaultPlan that
// also implements ReadFaultPlan has NextRead called once per ReadBlock;
// plans that do not implement it never fault reads. Keeping the read
// plan per device lets tests diverge the two copies of a stable store
// independently, which is what the two-copy protocol must survive.
type ReadFaultPlan interface {
	NextRead(block int) ReadFault
}

// ReadFaultFunc adapts a function to a write-silent ReadFaultPlan.
type ReadFaultFunc func(block int) ReadFault

// Next implements FaultPlan (never faults writes).
func (f ReadFaultFunc) Next(int) Fault { return FaultNone }

// NextRead implements ReadFaultPlan.
func (f ReadFaultFunc) NextRead(block int) ReadFault { return f(block) }

// ReadFaultAfter returns a plan that injects rf on the nth read
// (1-based) and never faults writes. n <= 0 never faults.
func ReadFaultAfter(n int, rf ReadFault) FaultPlan {
	count := 0
	return ReadFaultFunc(func(int) ReadFault {
		if n <= 0 {
			return ReadFaultNone
		}
		count++
		if count == n {
			return rf
		}
		return ReadFaultNone
	})
}

// CrashAfter returns a FaultPlan that crashes the node on the nth write
// (1-based) and never otherwise faults. n <= 0 never crashes.
func CrashAfter(n int) FaultPlan {
	count := 0
	return FaultFunc(func(int) Fault {
		if n <= 0 {
			return FaultNone
		}
		count++
		if count == n {
			return FaultCrash
		}
		return FaultNone
	})
}

// Device is a conventional block device. Writes are not atomic: see
// FaultPlan. Implementations must be safe for concurrent use.
type Device interface {
	// ReadBlock returns the contents of block i, or ErrBadBlock if the
	// block is torn/decayed, or ErrCrashed if the node is down.
	ReadBlock(i int) ([]byte, error)
	// WriteBlock replaces block i. The device grows as needed.
	WriteBlock(i int, p []byte) error
	// BlockSize returns the fixed block size in bytes.
	BlockSize() int
	// NumBlocks returns the current number of blocks.
	NumBlocks() int
}

// MemDevice is an in-memory Device with injectable faults. It survives
// "crashes" the way a disk does: the blocks persist, only the node stops
// responding until Restart. Use two MemDevices with independent plans to
// build a Store.
type MemDevice struct {
	mu        sync.Mutex
	blockSize int
	blocks    [][]byte
	bad       map[int]bool
	crashed   bool
	plan      FaultPlan
	writes    int           // total successful or torn writes, for statistics
	reads     int           // total read attempts, for statistics
	delay     time.Duration // simulated latency per block write
	tr        obs.Tracer    // emits fault.injected when a fault takes effect
}

// SetTracer installs (or, with nil, removes) the device's event
// tracer: each injected fault that takes effect — torn write, node
// crash, read decay, transient read error, spontaneous Decay — emits a
// fault.injected event whose LSN field carries the block number.
func (d *MemDevice) SetTracer(tr obs.Tracer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tr = tr
}

// emitFault reports one injected fault; callers hold d.mu.
func (d *MemDevice) emitFault(code uint8, block int) {
	if d.tr != nil {
		d.tr.Emit(obs.Event{Kind: obs.KindFaultInjected, Code: code, LSN: uint64(block)})
	}
}

// NewMemDevice returns an empty in-memory device with the given block
// size and fault plan (nil for no faults).
func NewMemDevice(blockSize int, plan FaultPlan) *MemDevice {
	if blockSize <= 0 {
		panic("stable: block size must be positive")
	}
	return &MemDevice{
		blockSize: blockSize,
		bad:       make(map[int]bool),
		plan:      plan,
	}
}

// BlockSize implements Device.
func (d *MemDevice) BlockSize() int { return d.blockSize }

// NumBlocks implements Device.
func (d *MemDevice) NumBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}

// Writes returns how many block writes the device has absorbed.
func (d *MemDevice) Writes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// Reads returns how many block reads the device has served.
func (d *MemDevice) Reads() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads
}

// SetPlan replaces the device's fault plan without touching the crashed
// flag or block contents (unlike Restart). Harnesses use it to arm a
// fault plan on a running device.
func (d *MemDevice) SetPlan(plan FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.plan = plan
}

// SetWriteDelay makes every subsequent block write take at least d of
// wall-clock time, simulating the device latency that makes a log force
// expensive. The default MemDevice write is a memcpy, so concurrent
// committers never overlap inside a force and group commit has nothing
// to coalesce; benchmarks set a realistic delay to recover the disk
// economics the thesis assumes (§1.2: forces are the write-cost
// measure). The delay changes only timing, never outcomes or write
// counts, so the deterministic crash harnesses are unaffected (they
// leave it zero).
func (d *MemDevice) SetWriteDelay(delay time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.delay = delay
}

// Bad reports whether block i is currently torn or decayed.
func (d *MemDevice) Bad(i int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bad[i]
}

// ReadBlock implements Device.
func (d *MemDevice) ReadBlock(i int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	if i < 0 || i >= len(d.blocks) {
		return nil, fmt.Errorf("stable: block %d out of range [0,%d)", i, len(d.blocks))
	}
	d.reads++
	if rp, ok := d.plan.(ReadFaultPlan); ok {
		switch rp.NextRead(i) {
		case ReadFaultTransient:
			d.emitFault(obs.FaultReadTransient, i)
			return nil, ErrBadBlock
		case ReadFaultDecay:
			d.emitFault(obs.FaultReadDecay, i)
			d.bad[i] = true
		}
	}
	if d.bad[i] {
		return nil, ErrBadBlock
	}
	out := make([]byte, d.blockSize)
	copy(out, d.blocks[i])
	return out, nil
}

// WriteBlock implements Device.
func (d *MemDevice) WriteBlock(i int, p []byte) error {
	if len(p) > d.blockSize {
		return fmt.Errorf("stable: write of %d bytes exceeds block size %d", len(p), d.blockSize)
	}
	d.mu.Lock()
	delay := d.delay
	d.mu.Unlock()
	if delay > 0 {
		// Outside d.mu: a slow write models device latency, not a lock
		// on the block map; reads and the crash injector stay live.
		// Sleep, not a spin — a disk write leaves the CPU free for the
		// committers whose overlap group commit exists to exploit (a
		// spin would serialize them on small machines). The sleep
		// timer's granularity may round the delay up; that only makes
		// the simulated disk slower, which the relative measurements
		// tolerate.
		time.Sleep(delay)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if i < 0 {
		return fmt.Errorf("stable: negative block %d", i)
	}
	for i >= len(d.blocks) {
		d.blocks = append(d.blocks, make([]byte, d.blockSize))
	}
	var fault Fault
	if d.plan != nil {
		fault = d.plan.Next(i)
	}
	d.writes++
	switch fault {
	case FaultTorn:
		// Half-applied write: block contents are garbage.
		d.emitFault(obs.FaultTorn, i)
		d.bad[i] = true
		return nil
	case FaultCrash:
		d.emitFault(obs.FaultCrash, i)
		d.bad[i] = true
		d.crashed = true
		return ErrCrashed
	}
	buf := d.blocks[i]
	copy(buf, p)
	for j := len(p); j < d.blockSize; j++ {
		buf[j] = 0
	}
	delete(d.bad, i)
	return nil
}

// Decay marks block i bad, simulating spontaneous media failure of one
// device (the failure mode the two-copy protocol must survive).
func (d *MemDevice) Decay(i int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i >= 0 && i < len(d.blocks) {
		d.emitFault(obs.FaultDecay, i)
		d.bad[i] = true
	}
}

// Crash takes the node down: every subsequent operation returns
// ErrCrashed until Restart. Blocks persist.
func (d *MemDevice) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = true
}

// Restart brings a crashed node back up with a new fault plan (nil for
// none). Block contents, including torn blocks, persist across the
// restart, exactly as a disk would.
func (d *MemDevice) Restart(plan FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = false
	d.plan = plan
}
