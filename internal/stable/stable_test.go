package stable

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T) (*Store, *MemDevice, *MemDevice) {
	t.Helper()
	a := NewMemDevice(256, nil)
	b := NewMemDevice(256, nil)
	s, err := NewStore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return s, a, b
}

func TestMemDeviceRoundTrip(t *testing.T) {
	d := NewMemDevice(64, nil)
	want := []byte("hello stable storage")
	if err := d.WriteBlock(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(want)], want) {
		t.Fatalf("read back %q, want prefix %q", got, want)
	}
	if d.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4 (grow on demand)", d.NumBlocks())
	}
}

func TestMemDeviceOversizeWrite(t *testing.T) {
	d := NewMemDevice(8, nil)
	if err := d.WriteBlock(0, make([]byte, 9)); err == nil {
		t.Fatal("oversize write succeeded")
	}
}

func TestMemDeviceTornBlock(t *testing.T) {
	plan := FaultFunc(func(block int) Fault {
		if block == 1 {
			return FaultTorn
		}
		return FaultNone
	})
	d := NewMemDevice(64, plan)
	if err := d.WriteBlock(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadBlock(1); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("read of torn block: err = %v, want ErrBadBlock", err)
	}
}

func TestMemDeviceCrashAndRestart(t *testing.T) {
	d := NewMemDevice(64, CrashAfter(2))
	if err := d.WriteBlock(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(1, []byte("b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write 2 err = %v, want ErrCrashed", err)
	}
	if _, err := d.ReadBlock(0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read while crashed err = %v, want ErrCrashed", err)
	}
	d.Restart(nil)
	got, err := d.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'a' {
		t.Fatalf("block 0 lost across restart: %q", got[0])
	}
	// Block 1 was torn by the crash.
	if _, err := d.ReadBlock(1); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("torn block after restart err = %v, want ErrBadBlock", err)
	}
}

func TestStoreReadWrite(t *testing.T) {
	s, _, _ := newStore(t)
	for i := 0; i < 10; i++ {
		payload := []byte(fmt.Sprintf("page-%d", i))
		if err := s.WritePage(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := s.ReadPage(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("page-%d", i); string(got) != want {
			t.Fatalf("page %d = %q, want %q", i, got, want)
		}
	}
}

func TestStoreUnwrittenPageReadsEmpty(t *testing.T) {
	s, _, _ := newStore(t)
	got, err := s.ReadPage(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("unwritten page = %q, want empty", got)
	}
}

func TestStoreOverwriteTakesNewerVersion(t *testing.T) {
	s, _, _ := newStore(t)
	for i := 0; i < 5; i++ {
		if err := s.WritePage(0, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v4" {
		t.Fatalf("page 0 = %q, want v4", got)
	}
}

func TestStoreSurvivesSingleDeviceDecay(t *testing.T) {
	s, a, b := newStore(t)
	if err := s.WritePage(0, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	a.Decay(0)
	got, err := s.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Fatalf("after device-A decay, page = %q", got)
	}
	// Recover repairs the pair; then decay the *other* device.
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	b.Decay(0)
	got, err = s.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Fatalf("after repair and device-B decay, page = %q", got)
	}
}

func TestStoreDoubleFailureIsDetected(t *testing.T) {
	s, a, b := newStore(t)
	if err := s.WritePage(0, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	a.Decay(0)
	b.Decay(0)
	if _, err := s.ReadPage(0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("double failure read err = %v, want ErrBadBlock", err)
	}
	// The loss is classified precisely, not as a generic bad block.
	if _, err := s.ReadPage(0); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("double failure read err = %v, want ErrDataLoss", err)
	}
	// Scrub reports the loss and must not fabricate an empty page.
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != 1 || rep.Lost[0] != 0 {
		t.Fatalf("scrub report = %+v, want page 0 lost", rep)
	}
	if _, err := s.ReadPage(0); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("read after scrub err = %v, want ErrDataLoss (loss must persist)", err)
	}
}

// TestStoreAtomicWriteAcrossCrash enumerates every crash point inside
// WritePage and checks the §1.1 contract: after restart + Recover the
// page holds either the complete old value or the complete new value.
func TestStoreAtomicWriteAcrossCrash(t *testing.T) {
	for crashAt := 1; crashAt <= 2; crashAt++ {
		crashAt := crashAt
		t.Run(fmt.Sprintf("crash-on-write-%d", crashAt), func(t *testing.T) {
			a := NewMemDevice(256, nil)
			b := NewMemDevice(256, nil)
			s, err := NewStore(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.WritePage(0, []byte("old")); err != nil {
				t.Fatal(err)
			}
			// Arm the crash: device writes alternate a,b per page write,
			// so write #1 of the update hits a, #2 hits b.
			n := 0
			plan := FaultFunc(func(int) Fault {
				n++
				if n == crashAt {
					return FaultCrash
				}
				return FaultNone
			})
			if crashAt == 1 {
				a.Restart(plan)
			} else {
				// Crash on the second copy: a's write succeeds, b tears.
				b.Restart(FaultFunc(func(int) Fault { return FaultCrash }))
			}
			err = s.WritePage(0, []byte("new"))
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("WritePage err = %v, want ErrCrashed", err)
			}
			// Reboot: both devices come back, store runs cleanup.
			a.Restart(nil)
			b.Restart(nil)
			s2, err := NewStore(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if err := s2.Recover(); err != nil {
				t.Fatal(err)
			}
			got, err := s2.ReadPage(0)
			if err != nil {
				t.Fatal(err)
			}
			if g := string(got); g != "old" && g != "new" {
				t.Fatalf("page after crash = %q, want old or new in full", g)
			}
			if crashAt == 2 && string(got) != "new" {
				// First copy completed, so cleanup must roll forward.
				t.Fatalf("crash after first copy: page = %q, want new", got)
			}
			// After recovery both copies must agree (survive either decay).
			a.Decay(0)
			if got2, err := s2.ReadPage(0); err != nil || string(got2) != string(got) {
				t.Fatalf("post-recover decay: got %q err %v, want %q", got2, err, got)
			}
		})
	}
}

// TestStoreRandomFaults hammers the store with random torn writes and
// decays on one device at a time and checks no acknowledged write is
// ever lost.
func TestStoreRandomFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var tearNext bool
	plan := FaultFunc(func(int) Fault {
		if tearNext {
			tearNext = false
			return FaultTorn
		}
		return FaultNone
	})
	a := NewMemDevice(128, plan)
	b := NewMemDevice(128, nil)
	s, err := NewStore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 16
	shadow := make(map[int]string)
	for step := 0; step < 500; step++ {
		p := rng.Intn(pages)
		switch rng.Intn(4) {
		case 0: // torn write on device a
			tearNext = true
			fallthrough
		case 1, 2: // normal write
			v := fmt.Sprintf("p%d-s%d", p, step)
			if err := s.WritePage(p, []byte(v)); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			shadow[p] = v
		case 3: // decay one device's copy, repairing first so at most
			// one copy is ever bad (the single-failure assumption).
			if err := s.Recover(); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				a.Decay(p)
			} else {
				b.Decay(p)
			}
		}
		if v, ok := shadow[p]; ok {
			got, err := s.ReadPage(p)
			if err != nil {
				t.Fatalf("step %d read page %d: %v", step, p, err)
			}
			if string(got) != v {
				t.Fatalf("step %d page %d = %q, want %q", step, p, got, v)
			}
		}
	}
}

// Property: encode/decode of a page is the identity on payloads, and any
// single-bit corruption is detected.
func TestPageCodecProperties(t *testing.T) {
	codec := func(version uint64, payload []byte) bool {
		if len(payload) > 240 {
			payload = payload[:240]
		}
		raw := encodePage(256, version, payload)
		v, p, ok := decodePage(raw)
		return ok && v == version && bytes.Equal(p, payload)
	}
	if err := quick.Check(codec, nil); err != nil {
		t.Fatal(err)
	}
	corrupt := func(payload []byte, bit uint16) bool {
		if len(payload) > 240 {
			payload = payload[:240]
		}
		raw := encodePage(256, 7, payload)
		limit := (pageHeaderSize + len(payload)) * 8
		if limit == 0 {
			return true
		}
		i := int(bit) % limit
		raw[i/8] ^= 1 << (i % 8)
		v, p, ok := decodePage(raw)
		// Either detected, or the flip didn't land in live bytes
		// (impossible here since we bound by header+payload), so it
		// must be detected or decode to something different.
		if !ok {
			return true
		}
		return v != 7 || !bytes.Equal(p, payload)
	}
	if err := quick.Check(corrupt, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewStoreValidation(t *testing.T) {
	a := NewMemDevice(64, nil)
	b := NewMemDevice(128, nil)
	if _, err := NewStore(a, b); err == nil {
		t.Fatal("mismatched block sizes accepted")
	}
	tiny1 := NewMemDevice(8, nil)
	tiny2 := NewMemDevice(8, nil)
	if _, err := NewStore(tiny1, tiny2); err == nil {
		t.Fatal("block size smaller than header accepted")
	}
}
