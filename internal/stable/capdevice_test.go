package stable

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestCappedDevice: growth charges the shared budget, overwrites are
// free, and a refused write leaves the budget intact.
func TestCappedDevice(t *testing.T) {
	dir := t.TempDir()
	const bs = 128
	raw, err := OpenFileDevice(filepath.Join(dir, "dev"), bs, false)
	if err != nil {
		t.Fatalf("OpenFileDevice: %v", err)
	}
	defer raw.Close()
	budget := NewBudget(3 * bs)
	d := Capped(raw, budget)

	block := make([]byte, bs)
	for i := 0; i < 3; i++ {
		if err := d.WriteBlock(i, block); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if got := budget.Remaining(); got != 0 {
		t.Fatalf("remaining %d after 3 writes, want 0", got)
	}
	// Growth past the budget is disk-full…
	if err := d.WriteBlock(3, block); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write 3: %v, want ErrNoSpace", err)
	}
	// …but overwriting paid-for blocks still works (recovery reads and
	// rewrites existing state on a full disk).
	if err := d.WriteBlock(1, block); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if _, err := d.ReadBlock(1); err != nil {
		t.Fatalf("read: %v", err)
	}
	// A sparse write charges every implied block.
	budget2 := NewBudget(bs)
	raw2, err := OpenFileDevice(filepath.Join(dir, "dev2"), bs, false)
	if err != nil {
		t.Fatal(err)
	}
	defer raw2.Close()
	d2 := Capped(raw2, budget2)
	if err := d2.WriteBlock(5, block); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("sparse write: %v, want ErrNoSpace", err)
	}
	if got := budget2.Remaining(); got != bs {
		t.Fatalf("refused write debited the budget: remaining %d", got)
	}
	// A failed device write refunds its charge: write past the block
	// size bound fails in FileDevice after the charge.
	if err := d2.WriteBlock(0, make([]byte, bs+1)); err == nil || errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversized write: %v", err)
	}
	if got := budget2.Remaining(); got != bs {
		t.Fatalf("failed write kept its charge: remaining %d", got)
	}
}
