package stable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// pageHeaderSize is the per-copy on-disk overhead: 8-byte version,
// 4-byte payload length, 4-byte CRC32 of (version, length, payload).
const pageHeaderSize = 8 + 4 + 4

// Store is atomic stable storage: an array of pages whose writes are
// atomic with respect to crashes and single-device failures. Each page
// is represented by one block on each of two devices with independent
// failure modes; WritePage updates "one and then the other" (§1.1), each
// copy carrying a version stamp and checksum.
//
// Invariant maintained by the protocol: at any instant at least one copy
// of each page is good, and a good copy holds either the old or the new
// value in its entirety. Cleanup (run on restart after a crash) repairs
// divergent pairs by copying the newer good copy over its sibling, which
// completes or rolls back the interrupted write.
type Store struct {
	mu   sync.Mutex
	a, b Device
	// versions caches the current version stamp per page so writes can
	// monotonically advance it without a read.
	versions []uint64
}

// NewStore builds stable storage over two devices of equal block size.
// Call Recover before first use if the devices may hold prior state
// (i.e. after a crash); a brand-new pair needs no recovery.
func NewStore(a, b Device) (*Store, error) {
	if a.BlockSize() != b.BlockSize() {
		return nil, fmt.Errorf("stable: mismatched block sizes %d and %d", a.BlockSize(), b.BlockSize())
	}
	if a.BlockSize() <= pageHeaderSize {
		return nil, fmt.Errorf("stable: block size %d too small for page header", a.BlockSize())
	}
	return &Store{a: a, b: b}, nil
}

// PageSize returns the usable payload bytes per page.
func (s *Store) PageSize() int { return s.a.BlockSize() - pageHeaderSize }

// NumPages returns the number of pages ever written (the maximum extent
// of either device).
func (s *Store) NumPages() int {
	n := s.a.NumBlocks()
	if m := s.b.NumBlocks(); m > n {
		n = m
	}
	return n
}

func encodePage(blockSize int, version uint64, payload []byte) []byte {
	buf := make([]byte, blockSize)
	binary.LittleEndian.PutUint64(buf[0:8], version)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	copy(buf[16:], payload)
	crc := crc32.ChecksumIEEE(buf[0:12])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(buf[12:16], crc)
	return buf
}

// decodePage validates a raw block and returns (version, payload, ok).
func decodePage(raw []byte) (uint64, []byte, bool) {
	if len(raw) < pageHeaderSize {
		return 0, nil, false
	}
	version := binary.LittleEndian.Uint64(raw[0:8])
	length := binary.LittleEndian.Uint32(raw[8:12])
	if int(length) > len(raw)-pageHeaderSize {
		return 0, nil, false
	}
	payload := raw[16 : 16+int(length)]
	crc := crc32.ChecksumIEEE(raw[0:12])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != binary.LittleEndian.Uint32(raw[12:16]) {
		return 0, nil, false
	}
	out := make([]byte, length)
	copy(out, payload)
	return version, out, true
}

// readCopy reads one copy of page i from dev; ok is false if the block
// is missing, torn, or fails its checksum. A device error other than
// ErrBadBlock (notably ErrCrashed) is returned as err.
func readCopy(dev Device, i int) (version uint64, payload []byte, ok bool, err error) {
	raw, err := dev.ReadBlock(i)
	if err != nil {
		if err == ErrBadBlock {
			return 0, nil, false, nil
		}
		if i >= dev.NumBlocks() {
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	v, p, ok := decodePage(raw)
	return v, p, ok, nil
}

// ReadPage returns the payload of page i. It prefers the copy with the
// higher version; if one copy is bad it falls back to the other. A page
// never written reads as an empty payload.
func (s *Store) ReadPage(i int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readPageLocked(i)
}

func (s *Store) readPageLocked(i int) ([]byte, error) {
	if i < 0 {
		return nil, fmt.Errorf("stable: negative page %d", i)
	}
	if i >= s.NumPages() {
		return []byte{}, nil
	}
	va, pa, oka, err := readCopy(s.a, i)
	if err != nil {
		return nil, err
	}
	vb, pb, okb, err := readCopy(s.b, i)
	if err != nil {
		return nil, err
	}
	switch {
	case oka && okb:
		if vb > va {
			return pb, nil
		}
		return pa, nil
	case oka:
		return pa, nil
	case okb:
		return pb, nil
	default:
		// Both copies bad: the independence assumption was violated.
		return nil, fmt.Errorf("stable: page %d lost on both devices: %w", i, ErrBadBlock)
	}
}

// WritePage atomically replaces the payload of page i. If a crash occurs
// between the two copy writes, Cleanup on restart resolves the pair to
// either the old or the new payload in full — never a mixture.
func (s *Store) WritePage(i int, payload []byte) error {
	if len(payload) > s.PageSize() {
		return fmt.Errorf("stable: payload %d exceeds page size %d", len(payload), s.PageSize())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	version := s.nextVersionLocked(i)
	block := encodePage(s.a.BlockSize(), version, payload)
	if err := s.a.WriteBlock(i, block); err != nil {
		return err
	}
	return s.b.WriteBlock(i, block)
}

func (s *Store) nextVersionLocked(i int) uint64 {
	for i >= len(s.versions) {
		s.versions = append(s.versions, 0)
	}
	if s.versions[i] == 0 {
		// Cold cache: consult the devices so the stamp keeps rising
		// across restarts.
		if va, _, oka, err := readCopy(s.a, i); err == nil && oka && va > s.versions[i] {
			s.versions[i] = va
		}
		if vb, _, okb, err := readCopy(s.b, i); err == nil && okb && vb > s.versions[i] {
			s.versions[i] = vb
		}
	}
	s.versions[i]++
	return s.versions[i]
}

// Recover repairs every page pair after a crash: for each page, the
// newer good copy is written over a bad or stale sibling. After Recover
// returns, both copies of every page agree, restoring the invariant that
// a later single-device failure cannot lose data. It is the Lampson-
// Sturgis cleanup pass and must run before the store is used after a
// restart.
func (s *Store) Recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.NumPages()
	for i := 0; i < n; i++ {
		va, pa, oka, err := readCopy(s.a, i)
		if err != nil {
			return err
		}
		vb, pb, okb, err := readCopy(s.b, i)
		if err != nil {
			return err
		}
		switch {
		case oka && okb && va == vb:
			// Consistent.
		case oka && (!okb || va > vb):
			if err := s.b.WriteBlock(i, encodePage(s.b.BlockSize(), va, pa)); err != nil {
				return err
			}
		case okb:
			if err := s.a.WriteBlock(i, encodePage(s.a.BlockSize(), vb, pb)); err != nil {
				return err
			}
		default:
			// Neither copy good. This can only happen for a page whose
			// very first write crashed (no old value existed) or under
			// double failure. Treat as never-written: rewrite empty.
			empty := encodePage(s.a.BlockSize(), 1, nil)
			if err := s.a.WriteBlock(i, empty); err != nil {
				return err
			}
			if err := s.b.WriteBlock(i, empty); err != nil {
				return err
			}
		}
		for i >= len(s.versions) {
			s.versions = append(s.versions, 0)
		}
		if va > vb {
			s.versions[i] = va
		} else {
			s.versions[i] = vb
		}
	}
	return nil
}
