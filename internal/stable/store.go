package stable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// ErrDataLoss is returned when both copies of a page are explicitly bad
// (torn or decayed): the independence assumption of the two-copy
// protocol was violated and the page's contents are gone. Callers must
// surface this loudly — it is never acceptable to paper over it with an
// empty page, which would silently corrupt committed state. It wraps
// ErrBadBlock, so existing bad-block handling still matches.
var ErrDataLoss = fmt.Errorf("stable: page lost on both devices: %w", ErrBadBlock)

// pageHeaderSize is the per-copy on-disk overhead: 8-byte version,
// 4-byte payload length, 4-byte CRC32 of (version, length, payload).
const pageHeaderSize = 8 + 4 + 4

// Store is atomic stable storage: an array of pages whose writes are
// atomic with respect to crashes and single-device failures. Each page
// is represented by one block on each of two devices with independent
// failure modes; WritePage updates "one and then the other" (§1.1), each
// copy carrying a version stamp and checksum.
//
// Invariant maintained by the protocol: at any instant at least one copy
// of each page is good, and a good copy holds either the old or the new
// value in its entirety. Cleanup (run on restart after a crash) repairs
// divergent pairs by copying the newer good copy over its sibling, which
// completes or rolls back the interrupted write.
type Store struct {
	mu   sync.Mutex
	a, b Device
	// versions caches the current version stamp per page so writes can
	// monotonically advance it without a read.
	versions []uint64
}

// NewStore builds stable storage over two devices of equal block size.
// Call Recover before first use if the devices may hold prior state
// (i.e. after a crash); a brand-new pair needs no recovery.
func NewStore(a, b Device) (*Store, error) {
	if a.BlockSize() != b.BlockSize() {
		return nil, fmt.Errorf("stable: mismatched block sizes %d and %d", a.BlockSize(), b.BlockSize())
	}
	if a.BlockSize() <= pageHeaderSize {
		return nil, fmt.Errorf("stable: block size %d too small for page header", a.BlockSize())
	}
	return &Store{a: a, b: b}, nil
}

// PageSize returns the usable payload bytes per page.
func (s *Store) PageSize() int { return s.a.BlockSize() - pageHeaderSize }

// NumPages returns the number of pages ever written (the maximum extent
// of either device).
func (s *Store) NumPages() int {
	n := s.a.NumBlocks()
	if m := s.b.NumBlocks(); m > n {
		n = m
	}
	return n
}

func encodePage(blockSize int, version uint64, payload []byte) []byte {
	buf := make([]byte, blockSize)
	binary.LittleEndian.PutUint64(buf[0:8], version)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	copy(buf[16:], payload)
	crc := crc32.ChecksumIEEE(buf[0:12])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(buf[12:16], crc)
	return buf
}

// decodePage validates a raw block and returns (version, payload, ok).
func decodePage(raw []byte) (uint64, []byte, bool) {
	if len(raw) < pageHeaderSize {
		return 0, nil, false
	}
	version := binary.LittleEndian.Uint64(raw[0:8])
	length := binary.LittleEndian.Uint32(raw[8:12])
	if int(length) > len(raw)-pageHeaderSize {
		return 0, nil, false
	}
	payload := raw[16 : 16+int(length)]
	crc := crc32.ChecksumIEEE(raw[0:12])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != binary.LittleEndian.Uint32(raw[12:16]) {
		return 0, nil, false
	}
	out := make([]byte, length)
	copy(out, payload)
	return version, out, true
}

// copyState classifies one device copy of a page.
type copyState uint8

const (
	// copyGood: the block read back and passed its checksum.
	copyGood copyState = iota
	// copyBad: the device reported ErrBadBlock — the block was written
	// but is torn or decayed.
	copyBad
	// copyBlank: the block is missing or holds no validly written page
	// (all zeroes on a fresh device, or scribble that never carried a
	// checksum). Distinct from copyBad: nothing was ever lost here.
	copyBlank
)

// readCopy reads one copy of page i from dev and classifies it. A
// device error other than ErrBadBlock (notably ErrCrashed) is returned
// as err.
func readCopy(dev Device, i int) (version uint64, payload []byte, st copyState, err error) {
	raw, err := dev.ReadBlock(i)
	if err != nil {
		if errors.Is(err, ErrBadBlock) {
			return 0, nil, copyBad, nil
		}
		if i >= dev.NumBlocks() {
			return 0, nil, copyBlank, nil
		}
		return 0, nil, copyBlank, err
	}
	v, p, ok := decodePage(raw)
	if !ok {
		return 0, nil, copyBlank, nil
	}
	return v, p, copyGood, nil
}

// ReadPage returns the payload of page i. It prefers the copy with the
// higher version; if one copy is bad it falls back to the other. A page
// never written reads as an empty payload.
func (s *Store) ReadPage(i int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readPageLocked(i)
}

func (s *Store) readPageLocked(i int) ([]byte, error) {
	if i < 0 {
		return nil, fmt.Errorf("stable: negative page %d", i)
	}
	if i >= s.NumPages() {
		return []byte{}, nil
	}
	va, pa, sa, err := readCopy(s.a, i)
	if err != nil {
		return nil, err
	}
	vb, pb, sb, err := readCopy(s.b, i)
	if err != nil {
		return nil, err
	}
	switch {
	case sa == copyGood && sb == copyGood:
		if vb > va {
			return pb, nil
		}
		return pa, nil
	case sa == copyGood:
		// Read-repair: the read succeeded from one copy only. If the
		// sibling is explicitly bad (torn or decayed), rewrite it from
		// the survivor so a later failure of this copy cannot lose the
		// page. Best-effort: the data in hand is returned regardless.
		if sb == copyBad {
			//roslint:besteffort read-repair; the page is already safely in hand and the next WritePage retries the sibling
			_ = s.b.WriteBlock(i, encodePage(s.b.BlockSize(), va, pa))
		}
		return pa, nil
	case sb == copyGood:
		if sa == copyBad {
			//roslint:besteffort read-repair; the page is already safely in hand and the next WritePage retries the sibling
			_ = s.a.WriteBlock(i, encodePage(s.a.BlockSize(), vb, pb))
		}
		return pb, nil
	case sa == copyBad && sb == copyBad:
		// Both copies were written and both are bad: the independence
		// assumption was violated and the page is gone.
		return nil, fmt.Errorf("stable: page %d: %w", i, ErrDataLoss)
	default:
		// No good copy but nothing durable was lost (a first write that
		// never completed on either device, or a never-written page
		// inside the extent).
		return nil, fmt.Errorf("stable: page %d unreadable (never completely written): %w", i, ErrBadBlock)
	}
}

// WritePage atomically replaces the payload of page i. If a crash occurs
// between the two copy writes, Cleanup on restart resolves the pair to
// either the old or the new payload in full — never a mixture.
func (s *Store) WritePage(i int, payload []byte) error {
	if len(payload) > s.PageSize() {
		return fmt.Errorf("stable: payload %d exceeds page size %d", len(payload), s.PageSize())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	version := s.nextVersionLocked(i)
	block := encodePage(s.a.BlockSize(), version, payload)
	if err := s.a.WriteBlock(i, block); err != nil {
		return err
	}
	return s.b.WriteBlock(i, block)
}

func (s *Store) nextVersionLocked(i int) uint64 {
	for i >= len(s.versions) {
		s.versions = append(s.versions, 0)
	}
	if s.versions[i] == 0 {
		// Cold cache: consult the devices so the stamp keeps rising
		// across restarts.
		if va, _, sa, err := readCopy(s.a, i); err == nil && sa == copyGood && va > s.versions[i] {
			s.versions[i] = va
		}
		if vb, _, sb, err := readCopy(s.b, i); err == nil && sb == copyGood && vb > s.versions[i] {
			s.versions[i] = vb
		}
	}
	s.versions[i]++
	return s.versions[i]
}

// ScrubReport summarizes one scrub (read-repair) pass over a store.
type ScrubReport struct {
	// Pages is the number of page pairs examined.
	Pages int
	// Repaired lists pages where one copy was rewritten from its good
	// sibling (bad, stale, or blank sibling healed).
	Repaired []int
	// Reset lists pages with no good copy and no evidence of durable
	// data (a first write that crashed before either copy completed);
	// they were reinitialized as never-written.
	Reset []int
	// Lost lists pages where both copies were explicitly bad: committed
	// data is gone. The blocks are left bad so every later read fails
	// with ErrDataLoss rather than serving fabricated contents.
	Lost []int
}

// Scrub is the read-repair/salvager pass: every page pair is read and
// divergent pairs are repaired by copying the newer good copy over its
// sibling, which completes or rolls back an interrupted write and heals
// single-copy decay. It is the Lampson-Sturgis cleanup pass; recovery
// runs it before a store is used after a restart, and it is safe to run
// at any quiescent point (an online salvager).
//
// Pages whose both copies are explicitly bad are reported in
// ScrubReport.Lost and deliberately left bad: data loss must surface on
// read, not be papered over. The error return is reserved for device
// failures (notably ErrCrashed).
func (s *Store) Scrub() (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep ScrubReport
	n := s.NumPages()
	rep.Pages = n
	for i := 0; i < n; i++ {
		va, pa, sa, err := readCopy(s.a, i)
		if err != nil {
			return rep, err
		}
		vb, pb, sb, err := readCopy(s.b, i)
		if err != nil {
			return rep, err
		}
		switch {
		case sa == copyGood && sb == copyGood && va == vb:
			// Consistent.
		case sa == copyGood && (sb != copyGood || va > vb):
			if err := s.b.WriteBlock(i, encodePage(s.b.BlockSize(), va, pa)); err != nil {
				return rep, err
			}
			rep.Repaired = append(rep.Repaired, i)
		case sb == copyGood:
			if err := s.a.WriteBlock(i, encodePage(s.a.BlockSize(), vb, pb)); err != nil {
				return rep, err
			}
			rep.Repaired = append(rep.Repaired, i)
		case sa == copyBad && sb == copyBad:
			// Both copies written, both bad: double failure. Committed
			// data is gone; leave the pair bad and report the loss.
			rep.Lost = append(rep.Lost, i)
			continue
		default:
			// Neither copy good, at most one ever written (a first
			// write that crashed mid-block, or single decay of a
			// never-written page). No committed value existed:
			// reinitialize as never-written. Order matters — rewrite
			// the bad copy first. A crash during that write leaves the
			// pair (bad, blank) again, and a crash during the second
			// leaves one good copy (the ordinary repair case); writing
			// the blank copy first could tear it and leave both copies
			// bad, indistinguishable from genuine double loss.
			empty := encodePage(s.a.BlockSize(), 1, nil)
			first, second := s.a, s.b
			if sb == copyBad {
				first, second = s.b, s.a
			}
			if err := first.WriteBlock(i, empty); err != nil {
				return rep, err
			}
			if err := second.WriteBlock(i, empty); err != nil {
				return rep, err
			}
			rep.Reset = append(rep.Reset, i)
		}
		for i >= len(s.versions) {
			s.versions = append(s.versions, 0)
		}
		if va > vb {
			s.versions[i] = va
		} else {
			s.versions[i] = vb
		}
	}
	return rep, nil
}

// Recover repairs every page pair after a crash by running Scrub. After
// Recover returns, both copies of every repairable page agree, restoring
// the invariant that a later single-device failure cannot lose data.
// Pages lost on both devices are left bad (reads return ErrDataLoss);
// recovery above this layer decides whether such a page held live state.
func (s *Store) Recover() error {
	_, err := s.Scrub()
	return err
}
