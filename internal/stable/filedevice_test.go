package stable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openFileDev(t *testing.T, name string) *FileDevice {
	t.Helper()
	d, err := OpenFileDevice(filepath.Join(t.TempDir(), name), 128, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestFileDeviceRoundTrip(t *testing.T) {
	d := openFileDev(t, "dev")
	want := []byte("persistent bytes")
	if err := d.WriteBlock(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(want)], want) {
		t.Fatalf("read %q", got[:len(want)])
	}
	if d.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d", d.NumBlocks())
	}
	if _, err := d.ReadBlock(9); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if err := d.WriteBlock(0, make([]byte, 129)); err == nil {
		t.Fatal("oversize write succeeded")
	}
}

func TestFileDevicePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dev")
	d, err := OpenFileDevice(path, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(0, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenFileDevice(path, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumBlocks() != 1 {
		t.Fatalf("NumBlocks after reopen = %d", d2.NumBlocks())
	}
	got, err := d2.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:8]) != "survivor" {
		t.Fatalf("block 0 = %q", got[:8])
	}
}

func TestFileDeviceRejectsMisalignedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dev")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDevice(path, 64, false); err == nil {
		t.Fatal("misaligned file accepted")
	}
}

// TestFileBackedStore runs the two-copy protocol over two files,
// including recovery after simulated corruption of one copy.
func TestFileBackedStore(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenFileDevice(filepath.Join(dir, "a"), 256, false)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenFileDevice(filepath.Join(dir, "b"), 256, false)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	s, err := NewStore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(0, []byte("on real disk")); err != nil {
		t.Fatal(err)
	}
	// Corrupt device a's copy directly on disk.
	if err := a.WriteBlock(0, bytes.Repeat([]byte{0xFF}, 256)); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "on real disk" {
		t.Fatalf("page = %q", got)
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	// Now corrupt b instead; a's repaired copy serves the read.
	if err := b.WriteBlock(0, bytes.Repeat([]byte{0xEE}, 256)); err != nil {
		t.Fatal(err)
	}
	got, err = s.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "on real disk" {
		t.Fatalf("page after repair = %q", got)
	}
	// Both corrupted: detected, not silently wrong.
	if err := a.WriteBlock(0, bytes.Repeat([]byte{0xDD}, 256)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadPage(0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("double corruption err = %v", err)
	}
}
