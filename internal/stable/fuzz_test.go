package stable

import (
	"bytes"
	"testing"
)

// FuzzDecodePage throws arbitrary bytes at the page codec: it must
// never panic, and anything it accepts must round-trip through
// encodePage to the same (version, payload).
func FuzzDecodePage(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, pageHeaderSize))
	f.Add(encodePage(64, 1, nil))
	f.Add(encodePage(64, 7, []byte("seed payload")))
	f.Add(encodePage(256, ^uint64(0), bytes.Repeat([]byte{0xA7}, 100)))
	f.Fuzz(func(t *testing.T, raw []byte) {
		version, payload, ok := decodePage(raw)
		if !ok {
			return
		}
		if len(payload) > len(raw)-pageHeaderSize {
			t.Fatalf("decoded payload of %d bytes from a %d-byte block", len(payload), len(raw))
		}
		re := encodePage(len(raw), version, payload)
		v2, p2, ok2 := decodePage(re)
		if !ok2 || v2 != version || !bytes.Equal(p2, payload) {
			t.Fatalf("re-encode mismatch: (%d,%q) -> (%d,%q,ok=%v)", version, payload, v2, p2, ok2)
		}
	})
}

// FuzzPageCodec fuzzes the encode side: any (version, payload, flip)
// combination must encode to a block that decodes back exactly, and a
// single corrupted byte in the covered region (header + payload) must
// never decode to different contents — it either fails the checksum or
// (for flips in the unused padding) decodes identically.
func FuzzPageCodec(f *testing.F) {
	f.Add(uint64(1), []byte("hello"), 0)
	f.Add(uint64(0), []byte{}, 5)
	f.Add(^uint64(0), bytes.Repeat([]byte{0xFF}, 40), 17)
	f.Fuzz(func(t *testing.T, version uint64, payload []byte, flip int) {
		blockSize := pageHeaderSize + len(payload) + 16
		block := encodePage(blockSize, version, payload)
		v, p, ok := decodePage(block)
		if !ok || v != version || !bytes.Equal(p, payload) {
			t.Fatalf("round trip failed: got (%d,%q,ok=%v), want (%d,%q)", v, p, ok, version, payload)
		}
		if flip < 0 {
			flip = -flip
		}
		pos := flip % len(block)
		mut := append([]byte(nil), block...)
		mut[pos] ^= 0x01
		v2, p2, ok2 := decodePage(mut)
		if ok2 && (v2 != version || !bytes.Equal(p2, payload)) {
			t.Fatalf("corrupted block at byte %d decoded to different contents (%d,%q)", pos, v2, p2)
		}
	})
}
