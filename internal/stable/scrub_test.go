package stable

import (
	"errors"
	"fmt"
	"testing"
)

// TestReadFaultTransient: a transient read error fails one read of one
// copy; the store falls back to the sibling and the next read of the
// faulted copy succeeds again.
func TestReadFaultTransient(t *testing.T) {
	a := NewMemDevice(256, ReadFaultAfter(1, ReadFaultTransient))
	b := NewMemDevice(256, nil)
	s, err := NewStore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(0, []byte("soft")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "soft" {
		t.Fatalf("page under transient fault = %q, want \"soft\"", got)
	}
	// The block itself is intact: a direct read now succeeds.
	if _, err := a.ReadBlock(0); err != nil {
		t.Fatalf("read after transient fault: %v", err)
	}
}

// TestReadFaultDecayTriggersReadRepair: decay-on-read marks the block
// bad; the store serves the sibling and read-repair rewrites the
// decayed copy, so a later failure of the sibling cannot lose the page.
func TestReadFaultDecayTriggersReadRepair(t *testing.T) {
	a := NewMemDevice(256, ReadFaultAfter(1, ReadFaultDecay))
	b := NewMemDevice(256, nil)
	s, err := NewStore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(0, []byte("heal me")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "heal me" {
		t.Fatalf("page under decay-on-read = %q", got)
	}
	// Read-repair rewrote copy A from B.
	if a.Bad(0) {
		t.Fatal("copy A still bad after read-repair")
	}
	// Now copy B can fail without loss.
	b.Decay(0)
	got, err = s.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "heal me" {
		t.Fatalf("page after sibling decay = %q", got)
	}
}

// TestScrubRepairsEveryFailureMode walks the scrub case matrix: stale
// sibling, single-copy decay on either device, torn first write, and
// per-device divergence (different pages bad on different devices).
func TestScrubRepairsEveryFailureMode(t *testing.T) {
	s, a, b := newStore(t)
	for i := 0; i < 4; i++ {
		if err := s.WritePage(i, []byte(fmt.Sprintf("page-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Diverge the devices: page 0 bad on A, page 1 bad on B, page 2
	// stale on B (simulate an interrupted two-copy update by decaying
	// then rewriting only A via a fresh store over the same devices).
	a.Decay(0)
	b.Decay(1)
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != 0 {
		t.Fatalf("scrub reported loss %v on single-copy faults", rep.Lost)
	}
	if len(rep.Repaired) != 2 {
		t.Fatalf("scrub repaired %v, want pages 0 and 1", rep.Repaired)
	}
	if a.Bad(0) || b.Bad(1) {
		t.Fatal("bad blocks not healed by scrub")
	}
	for i := 0; i < 4; i++ {
		got, err := s.ReadPage(i)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("page-%d", i) {
			t.Fatalf("page %d = %q after scrub", i, got)
		}
	}
}

// TestScrubResetsCrashedFirstWrite: a first write that tore one copy
// and never reached the other holds no committed data; scrub
// reinitializes it instead of reporting loss.
func TestScrubResetsCrashedFirstWrite(t *testing.T) {
	plan := FaultFunc(func(int) Fault { return FaultCrash })
	a := NewMemDevice(256, plan)
	b := NewMemDevice(256, nil)
	s, err := NewStore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(0, []byte("never landed")); err == nil {
		t.Fatal("write survived an armed crash")
	}
	a.Restart(nil)
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != 0 {
		t.Fatalf("first-write crash reported as loss: %+v", rep)
	}
	if len(rep.Reset) != 1 || rep.Reset[0] != 0 {
		t.Fatalf("scrub report = %+v, want page 0 reset", rep)
	}
	got, err := s.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("reset page = %q, want empty", got)
	}
}

// TestScrubPerDeviceDivergence: different pages decayed on different
// devices in the same store are all healed in one pass.
func TestScrubPerDeviceDivergence(t *testing.T) {
	s, a, b := newStore(t)
	const n = 8
	for i := 0; i < n; i++ {
		if err := s.WritePage(i, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			a.Decay(i)
		} else {
			b.Decay(i)
		}
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repaired) != n || len(rep.Lost) != 0 {
		t.Fatalf("scrub report = %+v, want %d repaired, 0 lost", rep, n)
	}
	for i := 0; i < n; i++ {
		got, err := s.ReadPage(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != byte('a'+i) {
			t.Fatalf("page %d = %q after divergent scrub", i, got)
		}
	}
}

// TestScrubSurfacesCrash: a device crash during scrub is a device
// error, not a report entry.
func TestScrubSurfacesCrash(t *testing.T) {
	s, a, _ := newStore(t)
	if err := s.WritePage(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	a.Crash()
	if _, err := s.Scrub(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("scrub on crashed device: err = %v, want ErrCrashed", err)
	}
}
