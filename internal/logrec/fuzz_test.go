package logrec

import (
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/stablelog"
)

// FuzzDecode checks that both entry decoders never panic and that
// accepted entries survive a re-encode/decode round trip unchanged.
// (Byte-level canonicality does not hold: the varint reader accepts
// non-minimal encodings that the writer never produces.)
func FuzzDecode(f *testing.F) {
	aid := ids.ActionID{Coordinator: 2, Seq: 5}
	f.Add(byte(Simple), Encode(Simple, &Entry{Kind: KindPrepared, AID: aid}))
	f.Add(byte(Hybrid), Encode(Hybrid, &Entry{Kind: KindPrepared, AID: aid,
		Pairs: []UIDLSN{{UID: 1, Addr: 2}}, Prev: 3}))
	f.Add(byte(Simple), Encode(Simple, &Entry{Kind: KindData, UID: 7,
		ObjType: object.KindAtomic, Value: []byte("v"), AID: aid}))
	f.Add(byte(Hybrid), Encode(Hybrid, &Entry{Kind: KindCommittedSS,
		Pairs: []UIDLSN{{UID: 9, Addr: 1}}, Prev: stablelog.NoLSN}))
	f.Add(byte(Hybrid), []byte{0xFF, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, format byte, data []byte) {
		fm := Format(format)
		if fm != Simple && fm != Hybrid {
			fm = Simple
		}
		e, err := Decode(fm, data)
		if err != nil {
			return
		}
		e2, err := Decode(fm, Encode(fm, e))
		if err != nil {
			t.Fatalf("re-encode of accepted entry failed: %v", err)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Fatalf("round trip changed entry: %+v vs %+v", e, e2)
		}
	})
}
