package logrec

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/stablelog"
)

var aid = ids.ActionID{Coordinator: 2, Seq: 5}

func roundTrip(t *testing.T, f Format, e *Entry) *Entry {
	t.Helper()
	got, err := Decode(f, Encode(f, e))
	if err != nil {
		t.Fatalf("decode %v (%v): %v", e.Kind, f, err)
	}
	return got
}

func TestSimpleFormatRoundTrips(t *testing.T) {
	cases := []*Entry{
		{Kind: KindData, UID: 7, ObjType: object.KindAtomic, Value: []byte("v"), AID: aid, Prev: stablelog.NoLSN},
		{Kind: KindData, UID: 8, ObjType: object.KindMutex, Value: []byte{}, AID: aid, Prev: stablelog.NoLSN},
		{Kind: KindPrepared, AID: aid, Prev: stablelog.NoLSN},
		{Kind: KindCommitted, AID: aid, Prev: stablelog.NoLSN},
		{Kind: KindAborted, AID: aid, Prev: stablelog.NoLSN},
		{Kind: KindCommitting, AID: aid, GIDs: []ids.GuardianID{1, 2, 3}, Prev: stablelog.NoLSN},
		{Kind: KindDone, AID: aid, Prev: stablelog.NoLSN},
		{Kind: KindBaseCommitted, UID: 9, Value: []byte("base"), Prev: stablelog.NoLSN},
		{Kind: KindPreparedData, UID: 10, AID: aid, Value: []byte("cur"), Prev: stablelog.NoLSN},
	}
	for _, e := range cases {
		got := roundTrip(t, Simple, e)
		if got.Kind != e.Kind || got.UID != e.UID || got.ObjType != e.ObjType ||
			got.AID != e.AID || string(got.Value) != string(e.Value) ||
			!reflect.DeepEqual(got.GIDs, e.GIDs) || got.Prev != stablelog.NoLSN {
			t.Fatalf("simple %v: got %+v, want %+v", e.Kind, got, e)
		}
	}
}

func TestHybridFormatRoundTrips(t *testing.T) {
	pairs := []UIDLSN{{UID: 3, Addr: 0}, {UID: 4, Addr: 123}}
	cases := []*Entry{
		{Kind: KindData, ObjType: object.KindAtomic, Value: []byte("v"), Prev: stablelog.NoLSN},
		{Kind: KindPrepared, AID: aid, Pairs: pairs, Prev: 45},
		{Kind: KindPrepared, AID: aid, Prev: stablelog.NoLSN}, // empty pairs, end of chain
		{Kind: KindCommitted, AID: aid, Prev: 99},
		{Kind: KindAborted, AID: aid, Prev: stablelog.NoLSN},
		{Kind: KindCommitting, AID: aid, GIDs: []ids.GuardianID{7}, Prev: 1},
		{Kind: KindDone, AID: aid, Prev: 2},
		{Kind: KindBaseCommitted, UID: 9, Value: []byte("b"), Prev: 3},
		{Kind: KindPreparedData, UID: 10, AID: aid, Value: []byte("c"), Prev: stablelog.NoLSN},
		{Kind: KindCommittedSS, Pairs: pairs, Prev: 77},
	}
	for _, e := range cases {
		got := roundTrip(t, Hybrid, e)
		if got.Kind != e.Kind || got.UID != e.UID || got.ObjType != e.ObjType ||
			got.AID != e.AID || string(got.Value) != string(e.Value) ||
			!reflect.DeepEqual(got.GIDs, e.GIDs) || got.Prev != e.Prev {
			t.Fatalf("hybrid %v: got %+v, want %+v", e.Kind, got, e)
		}
		if len(e.Pairs) > 0 && !reflect.DeepEqual(got.Pairs, e.Pairs) {
			t.Fatalf("hybrid %v pairs: got %v, want %v", e.Kind, got.Pairs, e.Pairs)
		}
	}
}

func TestHybridDataEntryOmitsUIDAndAID(t *testing.T) {
	// Figure 4-1: "data entries no longer need the action ids and object
	// uids since the prepared outcome entries contain that information."
	simple := Encode(Simple, &Entry{Kind: KindData, UID: 1 << 40, ObjType: object.KindAtomic, Value: []byte("v"), AID: aid})
	hybrid := Encode(Hybrid, &Entry{Kind: KindData, ObjType: object.KindAtomic, Value: []byte("v")})
	if len(hybrid) >= len(simple) {
		t.Fatalf("hybrid data entry (%d bytes) not smaller than simple (%d bytes)", len(hybrid), len(simple))
	}
	got, err := Decode(Hybrid, hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if got.UID != ids.NoUID || !got.AID.IsZero() {
		t.Fatalf("hybrid data entry decoded uid/aid: %+v", got)
	}
}

func TestFormatMismatchRejected(t *testing.T) {
	e := &Entry{Kind: KindPrepared, AID: aid, Prev: stablelog.NoLSN}
	data := Encode(Simple, e)
	if _, err := Decode(Hybrid, data); err == nil {
		t.Fatal("simple entry decoded as hybrid")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	good := Encode(Hybrid, &Entry{Kind: KindPrepared, AID: aid,
		Pairs: []UIDLSN{{UID: 1, Addr: 2}}, Prev: 3})
	for i := 0; i < len(good); i++ {
		if _, err := Decode(Hybrid, good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if _, err := Decode(Hybrid, append(append([]byte{}, good...), 1)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := Decode(Simple, []byte{byte(Simple), 200}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Decode(Simple, []byte{byte(Simple), byte(KindData), 99, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad object type accepted")
	}
}

func TestLSNCoding(t *testing.T) {
	for _, l := range []stablelog.LSN{0, 1, 12345, stablelog.NoLSN} {
		if got := lsnDecode(lsnCode(l)); got != l {
			t.Fatalf("lsn round trip %v -> %v", l, got)
		}
	}
}

func TestIsOutcome(t *testing.T) {
	if KindData.IsOutcome() {
		t.Fatal("data entry classified as outcome")
	}
	for _, k := range []Kind{KindPrepared, KindCommitted, KindAborted,
		KindCommitting, KindDone, KindBaseCommitted, KindPreparedData, KindCommittedSS} {
		if !k.IsOutcome() {
			t.Fatalf("%v not classified as outcome", k)
		}
	}
}

func TestEntryString(t *testing.T) {
	cases := []struct {
		e    Entry
		want string
	}{
		{Entry{Kind: KindData, UID: 1, ObjType: object.KindAtomic, Value: []byte("xy"), AID: aid, Prev: stablelog.NoLSN},
			"<O1, atomic, 2 bytes, T2.5>"},
		{Entry{Kind: KindBaseCommitted, UID: 2, Value: []byte("x"), Prev: stablelog.NoLSN},
			"<bc, O2, 1 bytes>"},
		{Entry{Kind: KindPrepared, AID: aid, Prev: 5},
			"<prepared, T2.5, prev=L5>"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %s, want %s", got, c.want)
		}
	}
}

// Property: both formats round-trip arbitrary prepared entries.
func TestPreparedRoundTripProperty(t *testing.T) {
	f := func(coord uint16, seq uint32, rawPairs []uint32, prev uint32) bool {
		e := &Entry{
			Kind: KindPrepared,
			AID:  ids.ActionID{Coordinator: ids.GuardianID(coord), Seq: uint64(seq)},
			Prev: stablelog.LSN(prev),
		}
		for i := 0; i+1 < len(rawPairs); i += 2 {
			e.Pairs = append(e.Pairs, UIDLSN{UID: ids.UID(rawPairs[i]), Addr: stablelog.LSN(rawPairs[i+1])})
		}
		got, err := Decode(Hybrid, Encode(Hybrid, e))
		if err != nil {
			return false
		}
		return got.AID == e.AID && got.Prev == e.Prev && reflect.DeepEqual(got.Pairs, e.Pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
