// Package logrec defines the log entry formats of the simple log
// (thesis Figure 3-1) and the hybrid log (Figure 4-1) and their binary
// encodings.
//
// Both logs share the same entry kinds:
//
//	data            — a recoverable object's flattened version
//	prepared        — participant outcome: the action prepared
//	committed       — participant outcome: the action committed
//	aborted         — participant outcome: the action aborted
//	committing      — coordinator outcome, with participant guardian ids
//	done            — coordinator outcome: two-phase commit finished
//	base_committed  — combined data+outcome for a newly accessible
//	                  object's base version (§3.3.3.2)
//	prepared_data   — combined data+outcome for a newly accessible
//	                  object's current version written by a *prepared*
//	                  action (§3.3.3.2)
//	committed_ss    — housekeeping's committed stable state entry
//	                  carrying the CSSL (§5.1.1)
//
// The two formats differ per Figure 4-1: in the hybrid log, data
// entries drop the uid and action id (the prepared entry carries them
// as ⟨uid, log address⟩ pairs), and every outcome entry gains a log
// pointer linking it to the previous outcome entry, forming the
// backward chain recovery follows.
package logrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/stablelog"
)

// Kind identifies a log entry kind.
type Kind uint8

// The entry kinds of Figures 3-1 and 4-1 (committed_ss from ch. 5).
const (
	KindData Kind = iota + 1
	KindPrepared
	KindCommitted
	KindAborted
	KindCommitting
	KindDone
	KindBaseCommitted
	KindPreparedData
	KindCommittedSS
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindPrepared:
		return "prepared"
	case KindCommitted:
		return "committed"
	case KindAborted:
		return "aborted"
	case KindCommitting:
		return "committing"
	case KindDone:
		return "done"
	case KindBaseCommitted:
		return "base_committed"
	case KindPreparedData:
		return "prepared_data"
	case KindCommittedSS:
		return "committed_ss"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsOutcome reports whether k is an outcome entry (as opposed to a data
// entry). base_committed and prepared_data are outcome entries in the
// thesis's terminology — "these entries are like combined data and
// outcome entries" (§3.2) — as is committed_ss.
func (k Kind) IsOutcome() bool { return k != KindData }

// Format selects the encoding variant.
type Format uint8

const (
	// Simple is the chapter 3 format (Figure 3-1).
	Simple Format = iota + 1
	// Hybrid is the chapter 4 format (Figure 4-1).
	Hybrid
)

// UIDLSN is one ⟨object uid, log address⟩ pair from a hybrid prepared
// entry's map portion or a committed_ss entry's CSSL.
type UIDLSN struct {
	UID  ids.UID
	Addr stablelog.LSN
}

// Entry is a decoded log entry of either format. Fields not used by a
// given kind/format are zero.
type Entry struct {
	Kind Kind

	// UID is the object id (data [simple], base_committed,
	// prepared_data).
	UID ids.UID
	// ObjType distinguishes atomic from mutex object versions (data).
	ObjType object.Kind
	// Value is the flattened object version (data, base_committed,
	// prepared_data).
	Value []byte
	// AID is the action id (all outcome entries; data in the simple
	// format).
	AID ids.ActionID
	// GIDs lists participant guardians (committing).
	GIDs []ids.GuardianID
	// Pairs is the ⟨uid, log address⟩ list (hybrid prepared,
	// committed_ss).
	Pairs []UIDLSN
	// Prev is the hybrid backward-chain pointer to the previous outcome
	// entry (NoLSN at the chain's end; unused in the simple format).
	Prev stablelog.LSN
}

// ErrCorrupt is returned when decoding malformed entry bytes.
var ErrCorrupt = errors.New("logrec: corrupt entry")

// lsnCode maps LSNs to varints with NoLSN as zero.
func lsnCode(l stablelog.LSN) uint64 {
	if l == stablelog.NoLSN {
		return 0
	}
	return uint64(l) + 1
}

func lsnDecode(x uint64) stablelog.LSN {
	if x == 0 {
		return stablelog.NoLSN
	}
	return stablelog.LSN(x - 1)
}

// Encode serializes e in the given format.
func Encode(f Format, e *Entry) []byte {
	w := encoder{buf: make([]byte, 0, 16+len(e.Value))}
	w.byte(byte(f))
	w.byte(byte(e.Kind))
	switch e.Kind {
	case KindData:
		w.byte(byte(e.ObjType))
		if f == Simple {
			w.uvarint(uint64(e.UID))
			w.aid(e.AID)
		}
		w.bytes(e.Value)
	case KindPrepared:
		w.aid(e.AID)
		if f == Hybrid {
			w.pairs(e.Pairs)
			w.uvarint(lsnCode(e.Prev))
		}
	case KindCommitted, KindAborted, KindDone:
		w.aid(e.AID)
		if f == Hybrid {
			w.uvarint(lsnCode(e.Prev))
		}
	case KindCommitting:
		w.aid(e.AID)
		w.uvarint(uint64(len(e.GIDs)))
		for _, g := range e.GIDs {
			w.uvarint(uint64(g))
		}
		if f == Hybrid {
			w.uvarint(lsnCode(e.Prev))
		}
	case KindBaseCommitted:
		w.uvarint(uint64(e.UID))
		w.bytes(e.Value)
		if f == Hybrid {
			w.uvarint(lsnCode(e.Prev))
		}
	case KindPreparedData:
		w.uvarint(uint64(e.UID))
		w.aid(e.AID)
		w.bytes(e.Value)
		if f == Hybrid {
			w.uvarint(lsnCode(e.Prev))
		}
	case KindCommittedSS:
		w.pairs(e.Pairs)
		w.uvarint(lsnCode(e.Prev))
	default:
		panic(fmt.Sprintf("logrec: encode of unknown kind %v", e.Kind))
	}
	return w.buf
}

// Decode parses entry bytes, checking that they carry the expected
// format.
func Decode(f Format, data []byte) (*Entry, error) {
	r := decoder{data: data}
	gotF, err := r.byte()
	if err != nil {
		return nil, err
	}
	if Format(gotF) != f {
		return nil, fmt.Errorf("%w: format %d, want %d", ErrCorrupt, gotF, f)
	}
	k, err := r.byte()
	if err != nil {
		return nil, err
	}
	e := &Entry{Kind: Kind(k), Prev: stablelog.NoLSN}
	switch e.Kind {
	case KindData:
		ot, err := r.byte()
		if err != nil {
			return nil, err
		}
		e.ObjType = object.Kind(ot)
		if e.ObjType != object.KindAtomic && e.ObjType != object.KindMutex {
			return nil, fmt.Errorf("%w: bad object type %d", ErrCorrupt, ot)
		}
		if f == Simple {
			u, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			e.UID = ids.UID(u)
			if e.AID, err = r.aid(); err != nil {
				return nil, err
			}
		}
		if e.Value, err = r.bytes(); err != nil {
			return nil, err
		}
	case KindPrepared:
		if e.AID, err = r.aid(); err != nil {
			return nil, err
		}
		if f == Hybrid {
			if e.Pairs, err = r.pairs(); err != nil {
				return nil, err
			}
			if e.Prev, err = r.lsn(); err != nil {
				return nil, err
			}
		}
	case KindCommitted, KindAborted, KindDone:
		if e.AID, err = r.aid(); err != nil {
			return nil, err
		}
		if f == Hybrid {
			if e.Prev, err = r.lsn(); err != nil {
				return nil, err
			}
		}
	case KindCommitting:
		if e.AID, err = r.aid(); err != nil {
			return nil, err
		}
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(data)) {
			return nil, ErrCorrupt
		}
		for i := uint64(0); i < n; i++ {
			g, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			e.GIDs = append(e.GIDs, ids.GuardianID(g))
		}
		if f == Hybrid {
			if e.Prev, err = r.lsn(); err != nil {
				return nil, err
			}
		}
	case KindBaseCommitted:
		u, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		e.UID = ids.UID(u)
		if e.Value, err = r.bytes(); err != nil {
			return nil, err
		}
		if f == Hybrid {
			if e.Prev, err = r.lsn(); err != nil {
				return nil, err
			}
		}
	case KindPreparedData:
		u, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		e.UID = ids.UID(u)
		if e.AID, err = r.aid(); err != nil {
			return nil, err
		}
		if e.Value, err = r.bytes(); err != nil {
			return nil, err
		}
		if f == Hybrid {
			if e.Prev, err = r.lsn(); err != nil {
				return nil, err
			}
		}
	case KindCommittedSS:
		if e.Pairs, err = r.pairs(); err != nil {
			return nil, err
		}
		if e.Prev, err = r.lsn(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, k)
	}
	if !r.done() {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return e, nil
}

// String renders an entry in the thesis's tuple notation, e.g.
// ⟨O2, atomic, 12 bytes, T1.1⟩ or ⟨prepared, T1.1⟩.
func (e *Entry) String() string {
	var b strings.Builder
	b.WriteString("<")
	switch e.Kind {
	case KindData:
		if e.UID != ids.NoUID {
			fmt.Fprintf(&b, "%v, ", e.UID)
		}
		fmt.Fprintf(&b, "%v, %d bytes", e.ObjType, len(e.Value))
		if !e.AID.IsZero() {
			fmt.Fprintf(&b, ", %v", e.AID)
		}
	case KindBaseCommitted:
		fmt.Fprintf(&b, "bc, %v, %d bytes", e.UID, len(e.Value))
	case KindPreparedData:
		fmt.Fprintf(&b, "pd, %v, %d bytes, %v", e.UID, len(e.Value), e.AID)
	case KindCommitting:
		fmt.Fprintf(&b, "committing, %v, %v", e.GIDs, e.AID)
	case KindCommittedSS:
		fmt.Fprintf(&b, "committed_ss, %d pairs", len(e.Pairs))
	default:
		fmt.Fprintf(&b, "%v, %v", e.Kind, e.AID)
	}
	if len(e.Pairs) > 0 && e.Kind == KindPrepared {
		fmt.Fprintf(&b, ", %d pairs", len(e.Pairs))
	}
	if e.Prev != stablelog.NoLSN {
		fmt.Fprintf(&b, ", prev=%v", e.Prev)
	}
	b.WriteString(">")
	return b.String()
}

// --- low-level encoder/decoder ----------------------------------------

type encoder struct{ buf []byte }

func (w *encoder) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *encoder) uvarint(x uint64) { w.buf = binary.AppendUvarint(w.buf, x) }

func (w *encoder) bytes(p []byte) {
	w.uvarint(uint64(len(p)))
	w.buf = append(w.buf, p...)
}

func (w *encoder) aid(a ids.ActionID) {
	w.uvarint(uint64(a.Coordinator))
	w.uvarint(a.Seq)
}

func (w *encoder) pairs(ps []UIDLSN) {
	w.uvarint(uint64(len(ps)))
	for _, p := range ps {
		w.uvarint(uint64(p.UID))
		w.uvarint(lsnCode(p.Addr))
	}
}

type decoder struct {
	data []byte
	pos  int
}

func (r *decoder) done() bool { return r.pos == len(r.data) }

func (r *decoder) byte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, ErrCorrupt
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *decoder) uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.pos += n
	return x, nil
}

func (r *decoder) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos) {
		return nil, ErrCorrupt
	}
	out := make([]byte, n)
	copy(out, r.data[r.pos:])
	r.pos += int(n)
	return out, nil
}

func (r *decoder) aid() (ids.ActionID, error) {
	c, err := r.uvarint()
	if err != nil {
		return ids.ActionID{}, err
	}
	s, err := r.uvarint()
	if err != nil {
		return ids.ActionID{}, err
	}
	return ids.ActionID{Coordinator: ids.GuardianID(c), Seq: s}, nil
}

func (r *decoder) lsn() (stablelog.LSN, error) {
	x, err := r.uvarint()
	if err != nil {
		return stablelog.NoLSN, err
	}
	return lsnDecode(x), nil
}

func (r *decoder) pairs() ([]UIDLSN, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)) {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]UIDLSN, 0, n)
	for i := uint64(0); i < n; i++ {
		u, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		l, err := r.lsn()
		if err != nil {
			return nil, err
		}
		out = append(out, UIDLSN{UID: ids.UID(u), Addr: l})
	}
	return out, nil
}
