// Package transport defines the message-delivery contract shared by
// the simulated network (internal/netsim) and the real TCP serving
// layer (internal/client, internal/server).
//
// Argus guardians communicate only by messages (thesis §2.1), and the
// two-phase commit engine (internal/twopc) issues every message
// through this interface. Which implementation is behind it decides
// the execution regime:
//
//   - netsim.Network delivers calls in-process with deterministic,
//     injectable failures — the crash-point sweeps and partition
//     matrices replay exact message schedules over it;
//   - client.Transport delivers calls over real TCP connections to
//     rosd servers, where the same unreachability branches are taken
//     when connections fail or peers are marked down.
//
// The protocol code is identical over both: a Call either delivers
// (fn runs, its error is the callee's answer) or fails with an error
// wrapping ErrUnreachable (fn's effects never happened, or could not
// be observed — the caller must treat the callee's state as unknown).
package transport

import (
	"errors"

	"repro/internal/ids"
)

// ErrUnreachable is the base sentinel for undeliverable calls. Both
// netsim and the TCP transport wrap it (with their own context), so
// protocol code tests errors.Is(err, transport.ErrUnreachable) and
// works over either.
var ErrUnreachable = errors.New("unreachable")

// ErrWrongShard is the base sentinel for requests that reached a node
// not hosting the addressed shard: the call was delivered and refused
// before touching any guardian state. The server's refusal carries its
// own routing table in-band, so the routed client installs the fresher
// table and retries; this error surfaces only when the retry budget
// exhausts without finding the owner (a handoff in flight, or a
// cluster whose nodes disagree for longer than the client waits).
// Always wrapped with context — compare with errors.Is.
var ErrWrongShard = errors.New("wrong shard")

// ErrStaleRoute is the base sentinel for routing-table installs that
// would move a holder backwards: the offered table's version is not
// newer than the one already installed. Registries and routed clients
// refuse such installs so a delayed table from before a handoff can
// never resurrect a superseded route. Always wrapped with context —
// compare with errors.Is.
var ErrStaleRoute = errors.New("stale route")

// Transport delivers synchronous invocations between guardians.
//
// Call runs fn if and only if the invocation can be delivered from
// guardian a to guardian b, and returns an error wrapping
// ErrUnreachable otherwise. fn's own error is returned as-is: it is
// the callee's answer, not a delivery failure. Implementations that
// cannot distinguish "not delivered" from "delivered but the reply was
// lost" (real networks, after a connection drops mid-call) still
// return ErrUnreachable; two-phase commit is exactly the protocol that
// makes that ambiguity safe (§2.2).
type Transport interface {
	Call(a, b ids.GuardianID, fn func() error) error
}

// Loopback is the degenerate Transport for a guardian calling into
// itself in-process: every call is delivered. The rosd server uses it
// to drive handler invocations that arrived over TCP — the real
// network hop already happened by the time fn runs.
type Loopback struct{}

// Call implements Transport by running fn unconditionally.
func (Loopback) Call(a, b ids.GuardianID, fn func() error) error { return fn() }
