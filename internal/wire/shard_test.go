package wire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/ids"
)

func TestHandoffReqRoundTrip(t *testing.T) {
	cases := []HandoffReq{
		{Shard: 1, Target: "node2:4146"},
		{Shard: 0xFFFFFFFF, Target: ""},
	}
	for _, h := range cases {
		got, err := DecodeHandoffReq(EncodeHandoffReq(h))
		if err != nil || got != h {
			t.Fatalf("round trip = %+v, %v, want %+v", got, err, h)
		}
	}
	b := EncodeHandoffReq(HandoffReq{Shard: 2, Target: "x"})
	if _, err := DecodeHandoffReq(append(b, 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing byte: err = %v, want ErrBadMessage", err)
	}
	if _, err := DecodeHandoffReq(b[:3]); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("truncated: err = %v, want ErrBadMessage", err)
	}
}

func TestHandoffFramesRoundTrip(t *testing.T) {
	cases := []HandoffFrames{
		{Shard: 3, Backend: 1, BlockSize: 512, App: RepAppend{Epoch: 1, Start: 0, Frames: []byte{0xA7, 1, 2}}},
		{Shard: 3, Backend: 2, BlockSize: 512, App: RepAppend{Epoch: 1, Start: 64, PrevLen: 13}},
		{Shard: 3, Backend: 1, BlockSize: 4096, Done: true, App: RepAppend{Epoch: 1, Start: 128, PrevLen: 9}, Table: []byte("tbl")},
	}
	for i, hf := range cases {
		got, err := DecodeHandoffFrames(EncodeHandoffFrames(hf))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Shard != hf.Shard || got.Backend != hf.Backend || got.BlockSize != hf.BlockSize || got.Done != hf.Done {
			t.Fatalf("case %d: round trip = %+v, want %+v", i, got, hf)
		}
		if got.App.Epoch != hf.App.Epoch || got.App.Start != hf.App.Start || got.App.PrevLen != hf.App.PrevLen || !bytes.Equal(got.App.Frames, hf.App.Frames) {
			t.Fatalf("case %d: nested append = %+v, want %+v", i, got.App, hf.App)
		}
		if !bytes.Equal(got.Table, hf.Table) {
			t.Fatalf("case %d: table = %q, want %q", i, got.Table, hf.Table)
		}
	}
	// The done byte has exactly two valid values.
	b := EncodeHandoffFrames(cases[0])
	b[9] = 2
	if _, err := DecodeHandoffFrames(b); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("done byte 2: err = %v, want ErrBadMessage", err)
	}
}

func TestStatusReportRoundTrip(t *testing.T) {
	cases := []StatusReport{
		{Rep: RepStatus{Role: RoleStandalone, Durable: 42}},
		{
			Rep: RepStatus{Role: RolePrimary, Epoch: 2, Durable: 99, QuorumBytes: 88, Quorum: 2, Replicas: 2, Alive: 1},
			Shards: []ShardStatus{
				{ID: 1, Role: RoleStandalone, Durable: 100, IdxHits: 12, IdxMisses: 1},
				{ID: 2, Role: RoleStandalone, Durable: 250},
				{ID: 7, Role: RolePrimary, Durable: 3, IdxHits: 9000},
			},
		},
	}
	for i, r := range cases {
		got, err := DecodeStatusReport(EncodeStatusReport(r))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Rep != r.Rep || len(got.Shards) != len(r.Shards) {
			t.Fatalf("case %d: round trip = %+v, want %+v", i, got, r)
		}
		for j := range r.Shards {
			if got.Shards[j] != r.Shards[j] {
				t.Fatalf("case %d shard %d: %+v, want %+v", i, j, got.Shards[j], r.Shards[j])
			}
		}
	}
	// Shard rows out of ascending id order are not canonical.
	bad := EncodeStatusReport(StatusReport{Rep: RepStatus{Role: RoleStandalone}})
	bad = bad[:len(bad)-1] // drop the zero count
	bad = append(bad, 2)   // two rows...
	bad = append(bad, EncodeShardStatus(ShardStatus{ID: 5, Role: RoleStandalone})...)
	bad = append(bad, EncodeShardStatus(ShardStatus{ID: 4, Role: RoleStandalone})...)
	if _, err := DecodeStatusReport(bad); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("out-of-order rows: err = %v, want ErrBadMessage", err)
	}
}

func TestActionIDCodec(t *testing.T) {
	aid := ids.ActionID{Coordinator: 7, Seq: 123456789}
	got, err := DecodeActionID(EncodeActionID(aid))
	if err != nil || got != aid {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	if _, err := DecodeActionID(make([]byte, 11)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("11 bytes: err = %v, want ErrBadMessage", err)
	}
	if _, err := DecodeActionID(make([]byte, 13)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("13 bytes: err = %v, want ErrBadMessage", err)
	}
}

func TestGuardianIDsCodec(t *testing.T) {
	cases := [][]ids.GuardianID{
		nil,
		{3},
		{1, 2, 7},
	}
	for i, gids := range cases {
		got, err := DecodeGuardianIDs(EncodeGuardianIDs(gids))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(gids) {
			t.Fatalf("case %d: %v, want %v", i, got, gids)
		}
		for j := range gids {
			if got[j] != gids[j] {
				t.Fatalf("case %d: %v, want %v", i, got, gids)
			}
		}
	}
	// A count claiming more ids than the bytes hold must not allocate.
	if _, err := DecodeGuardianIDs([]byte{200}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("overlong count: err = %v, want ErrBadMessage", err)
	}
	b := EncodeGuardianIDs([]ids.GuardianID{1, 2})
	if _, err := DecodeGuardianIDs(append(b, 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing byte: err = %v, want ErrBadMessage", err)
	}
}

// FuzzDecodeShardMessage hits every sharding codec with arbitrary
// bytes: no input may panic or over-allocate, and any accepted input
// must re-encode to the same bytes (one canonical form, like the rest
// of the protocol). Seeds mention every sharding op so the wirecodec
// totality rule sees OpRoute, OpRouteInstall, OpBegin, OpCommitting,
// OpDone, OpHandoff, and OpHandoffInstall covered from this file too.
func FuzzDecodeShardMessage(f *testing.F) {
	f.Add(EncodeHandoffReq(HandoffReq{Shard: 2, Target: "node2:4146"}))
	f.Add(EncodeHandoffFrames(HandoffFrames{Shard: 2, Backend: 1, BlockSize: 512, App: RepAppend{Epoch: 1, Frames: []byte{0xA7, 0, 0}}}))
	f.Add(EncodeHandoffFrames(HandoffFrames{Shard: 2, Backend: 1, BlockSize: 512, Done: true, App: RepAppend{Epoch: 1, Start: 3}, Table: []byte("t")}))
	f.Add(EncodeStatusReport(StatusReport{Rep: RepStatus{Role: RoleStandalone, Durable: 9}, Shards: []ShardStatus{{ID: 1, Role: RoleStandalone, Durable: 9}}}))
	f.Add(EncodeShardStatus(ShardStatus{ID: 4, Role: RolePrimary, Durable: 77, IdxHits: 5, IdxMisses: 2}))
	f.Add(EncodeActionID(ids.ActionID{Coordinator: 3, Seq: 41}))
	f.Add(EncodeGuardianIDs([]ids.GuardianID{1, 2, 3}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := DecodeHandoffReq(data); err == nil {
			if !bytes.Equal(EncodeHandoffReq(h), data) {
				t.Fatal("handoff req decode/encode not canonical")
			}
		}
		if hf, err := DecodeHandoffFrames(data); err == nil {
			if !bytes.Equal(EncodeHandoffFrames(hf), data) {
				t.Fatal("handoff frames decode/encode not canonical")
			}
		}
		if s, err := DecodeShardStatus(data); err == nil {
			if !bytes.Equal(EncodeShardStatus(s), data) {
				t.Fatal("shard status decode/encode not canonical")
			}
		}
		if r, err := DecodeStatusReport(data); err == nil {
			if !bytes.Equal(EncodeStatusReport(r), data) {
				t.Fatal("status report decode/encode not canonical")
			}
		}
		if aid, err := DecodeActionID(data); err == nil {
			if !bytes.Equal(EncodeActionID(aid), data) {
				t.Fatal("action id decode/encode not canonical")
			}
		}
		if gids, err := DecodeGuardianIDs(data); err == nil {
			if !bytes.Equal(EncodeGuardianIDs(gids), data) {
				t.Fatal("guardian ids decode/encode not canonical")
			}
		}
	})
}
