// Package wire is the binary framing protocol of the rosd serving
// layer: length-prefixed frames with a CRC trailer and correlation
// ids, carrying the request/response messages of message.go.
//
// A frame on the wire:
//
//	offset  size  field
//	0       4     magic "ROS" + version byte (0x01)
//	4       1     frame type (TypeRequest | TypeResponse)
//	5       1     reserved, must be zero
//	6       8     correlation id, little-endian
//	14      4     payload length, little-endian
//	18      n     payload (a message, see message.go)
//	18+n    4     CRC-32 (IEEE) over bytes [0, 18+n)
//
// The correlation id ties a response to its request on a connection
// that may carry many in flight; the client assigns it, the server
// echoes it. The CRC covers header and payload so a frame corrupted
// anywhere — including its claimed length — is rejected rather than
// half-believed; a reader that sees ErrBadMagic, ErrBadCRC, or a
// reserved-byte violation cannot resynchronize and must drop the
// connection (stream framing has no record boundaries to skip to,
// unlike the self-identifying log frames of internal/logrec).
//
// Decoding is allocation-bounded: the payload length is validated
// against MaxPayload before any buffer is sized from it, so a hostile
// 4-byte length field cannot make the server allocate gigabytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Protocol limits.
const (
	// HeaderSize is the fixed frame header length.
	HeaderSize = 18
	// TrailerSize is the CRC trailer length.
	TrailerSize = 4
	// MaxPayload bounds a frame's payload: nothing the protocol
	// carries (handler arguments, flattened values, error strings)
	// legitimately exceeds it, and every decoder checks it before
	// allocating.
	MaxPayload = 1 << 20
)

// magic identifies the protocol and its version in one comparison.
var magic = [4]byte{'R', 'O', 'S', 0x01}

// Frame types.
const (
	// TypeRequest frames carry a Request payload, client to server.
	TypeRequest byte = 1
	// TypeResponse frames carry a Response payload, server to client.
	TypeResponse byte = 2
)

// Frame decode errors. All are terminal for the connection: a stream
// that produced one has lost framing and cannot be resynchronized.
var (
	// ErrBadMagic: the frame does not start with the protocol magic
	// (wrong protocol, wrong version, or lost framing).
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadType: the frame type byte is neither request nor response,
	// or the reserved byte is nonzero.
	ErrBadType = errors.New("wire: bad frame type")
	// ErrBadCRC: the CRC trailer does not match the received bytes.
	ErrBadCRC = errors.New("wire: checksum mismatch")
	// ErrOversize: the claimed payload length exceeds MaxPayload.
	ErrOversize = errors.New("wire: oversized frame")
	// ErrTruncated: the input ended inside a frame.
	ErrTruncated = errors.New("wire: truncated frame")
)

// Frame is one protocol frame.
type Frame struct {
	// Type is TypeRequest or TypeResponse.
	Type byte
	// CorrID correlates a response with its request; the client
	// assigns it, the server echoes it.
	CorrID uint64
	// Payload is the encoded message (message.go).
	Payload []byte
}

// AppendFrame appends f's wire encoding to dst and returns the
// extended slice. It fails only on an oversized payload.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return dst, fmt.Errorf("%w: payload %d > %d", ErrOversize, len(f.Payload), MaxPayload)
	}
	start := len(dst)
	dst = append(dst, magic[:]...)
	dst = append(dst, f.Type, 0)
	dst = binary.LittleEndian.AppendUint64(dst, f.CorrID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum), nil
}

// DecodeFrame decodes one frame from the front of b, returning the
// frame and the number of bytes consumed. The returned payload
// aliases b. Errors classify the failure: ErrTruncated means more
// bytes may complete the frame; everything else is terminal.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderSize {
		return Frame{}, 0, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(b), HeaderSize)
	}
	if [4]byte(b[:4]) != magic {
		return Frame{}, 0, fmt.Errorf("%w: % x", ErrBadMagic, b[:4])
	}
	typ := b[4]
	if typ != TypeRequest && typ != TypeResponse {
		return Frame{}, 0, fmt.Errorf("%w: type %d", ErrBadType, typ)
	}
	if b[5] != 0 {
		return Frame{}, 0, fmt.Errorf("%w: reserved byte %d", ErrBadType, b[5])
	}
	plen := binary.LittleEndian.Uint32(b[14:18])
	if plen > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: payload %d > %d", ErrOversize, plen, MaxPayload)
	}
	total := HeaderSize + int(plen) + TrailerSize
	if len(b) < total {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes of %d", ErrTruncated, len(b), total)
	}
	body := b[:HeaderSize+int(plen)]
	sum := binary.LittleEndian.Uint32(b[HeaderSize+int(plen) : total])
	if crc32.ChecksumIEEE(body) != sum {
		return Frame{}, 0, ErrBadCRC
	}
	return Frame{
		Type:    typ,
		CorrID:  binary.LittleEndian.Uint64(b[6:14]),
		Payload: body[HeaderSize:],
	}, total, nil
}

// WriteFrame writes f to w as one Write call, so concurrent writers
// serialized by a mutex never interleave partial frames.
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(make([]byte, 0, HeaderSize+len(f.Payload)+TrailerSize), f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads exactly one frame from r. The header is read and
// validated before the payload buffer is sized, so a corrupt length
// cannot force an oversized allocation. io.EOF is returned unwrapped
// only at a clean frame boundary (no bytes read); a stream ending
// mid-frame yields ErrTruncated.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, fmt.Errorf("%w: stream ended inside header", ErrTruncated)
		}
		return Frame{}, err
	}
	if [4]byte(hdr[:4]) != magic {
		return Frame{}, fmt.Errorf("%w: % x", ErrBadMagic, hdr[:4])
	}
	typ := hdr[4]
	if typ != TypeRequest && typ != TypeResponse {
		return Frame{}, fmt.Errorf("%w: type %d", ErrBadType, typ)
	}
	if hdr[5] != 0 {
		return Frame{}, fmt.Errorf("%w: reserved byte %d", ErrBadType, hdr[5])
	}
	plen := binary.LittleEndian.Uint32(hdr[14:18])
	if plen > MaxPayload {
		return Frame{}, fmt.Errorf("%w: payload %d > %d", ErrOversize, plen, MaxPayload)
	}
	rest := make([]byte, int(plen)+TrailerSize)
	if _, err := io.ReadFull(r, rest); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, fmt.Errorf("%w: stream ended inside frame", ErrTruncated)
		}
		return Frame{}, err
	}
	payload := rest[:plen]
	sum := binary.LittleEndian.Uint32(rest[plen:])
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if crc.Sum32() != sum {
		return Frame{}, ErrBadCRC
	}
	return Frame{
		Type:    typ,
		CorrID:  binary.LittleEndian.Uint64(hdr[6:14]),
		Payload: payload,
	}, nil
}
