// Sharding and cross-shard coordination messages (OpRoute,
// OpRouteInstall, OpBegin, OpCommitting, OpDone, OpHandoff,
// OpHandoffInstall) plus the per-shard status report that OpStatus
// answers with. Same codec rules as message.go: explicit little-endian
// fields, uvarint byte strings, exactly one valid encoding, every
// bound checked before slicing.
//
// The routing table itself is defined and encoded by internal/shard
// (the one structure shared verbatim by servers, clients, and the
// CLI); this layer carries its encoding as an opaque byte string in
// Request.Arg / Response.Result, so wire stays independent of the
// routing policy.
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ids"
)

// HandoffReq is the argument of OpHandoff: move one shard from the
// addressed node to Target.
type HandoffReq struct {
	// Shard is the shard to move; the addressed node must host it.
	Shard uint32
	// Target is the receiving node's address (host:port), which must
	// accept OpHandoffInstall.
	Target string
}

// HandoffFrames is the argument of OpHandoffInstall: one step of an
// inbound shard handoff. The source drains the shard's guardian,
// compacts its log via housekeeping, then ships the compacted log as
// append runs (reusing the replication codec and its refusal
// semantics) followed by a final Done step that recovers the guardian
// on the receiver and publishes the rehomed routing table.
type HandoffFrames struct {
	// Shard is the shard being received.
	Shard uint32
	// Backend is the record layout of the shipped log (a core.Backend
	// value), fixed by the first step; the receiver recovers with it.
	Backend uint8
	// BlockSize is the source volume's block size in bytes.
	BlockSize uint32
	// Done marks the final step: no frames, recover and adopt the
	// guardian, install Table.
	Done bool
	// App carries a contiguous run of raw stable-log frames, exactly
	// as replication ships them (empty on the Done step). The
	// receiver's ack/refusal semantics are RepAppend's: a mismatched
	// Start acks the unchanged tail and the source rewinds.
	App RepAppend
	// Table is the rehomed routing table's encoding (Done step only):
	// the source's table with this shard's address rewritten to the
	// receiver, version bumped.
	Table []byte
}

// ShardStatus is one shard's row in a StatusReport.
type ShardStatus struct {
	// ID is the shard id.
	ID uint32
	// Role is the hosting guardian's replication role (standalone
	// unless the shard's log is replicated).
	Role Role
	// Durable is the shard's durable log prefix in bytes.
	Durable uint64
	// IdxHits / IdxMisses are the shard guardian's live-version index
	// counters (zero with the index disabled).
	IdxHits   uint64
	IdxMisses uint64
}

// StatusReport answers OpStatus: the node-level replication report
// plus one row per hosted shard. A node hosting only its default
// guardian reports no shard rows — the pre-sharding report, extended.
type StatusReport struct {
	// Rep is the node's replication role and health (the default
	// guardian's, on nodes that also host shards).
	Rep RepStatus
	// Shards lists every hosted shard in ascending id order.
	Shards []ShardStatus
}

const shardStatusSize = 29

// takeUvarint consumes a minimally-encoded uvarint from b.
func takeUvarint(b []byte) (uint64, []byte, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrBadMessage)
	}
	if used > 1 && b[used-1] == 0 {
		return 0, nil, fmt.Errorf("%w: non-minimal uvarint", ErrBadMessage)
	}
	return n, b[used:], nil
}

// EncodeHandoffReq renders h as a request argument.
func EncodeHandoffReq(h HandoffReq) []byte {
	out := make([]byte, 0, 4+len(h.Target)+2)
	out = binary.LittleEndian.AppendUint32(out, h.Shard)
	return appendBytes(out, []byte(h.Target))
}

// DecodeHandoffReq parses a request argument as a HandoffReq.
func DecodeHandoffReq(b []byte) (HandoffReq, error) {
	if len(b) < 4 {
		return HandoffReq{}, fmt.Errorf("%w: handoff of %d bytes", ErrBadMessage, len(b))
	}
	var h HandoffReq
	h.Shard = binary.LittleEndian.Uint32(b[0:4])
	target, rest, err := takeBytes(b[4:])
	if err != nil {
		return HandoffReq{}, err
	}
	h.Target = string(target)
	if len(rest) != 0 {
		return HandoffReq{}, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(rest))
	}
	return h, nil
}

// EncodeHandoffFrames renders f as a request argument.
func EncodeHandoffFrames(f HandoffFrames) []byte {
	app := EncodeRepAppend(f.App)
	out := make([]byte, 0, 4+1+4+1+len(app)+len(f.Table)+8)
	out = binary.LittleEndian.AppendUint32(out, f.Shard)
	out = append(out, f.Backend)
	out = binary.LittleEndian.AppendUint32(out, f.BlockSize)
	done := byte(0)
	if f.Done {
		done = 1
	}
	out = append(out, done)
	out = appendBytes(out, app)
	return appendBytes(out, f.Table)
}

// DecodeHandoffFrames parses a request argument as a HandoffFrames.
func DecodeHandoffFrames(b []byte) (HandoffFrames, error) {
	if len(b) < 4+1+4+1 {
		return HandoffFrames{}, fmt.Errorf("%w: handoff.install of %d bytes", ErrBadMessage, len(b))
	}
	var f HandoffFrames
	f.Shard = binary.LittleEndian.Uint32(b[0:4])
	f.Backend = b[4]
	f.BlockSize = binary.LittleEndian.Uint32(b[5:9])
	if b[9] > 1 {
		return HandoffFrames{}, fmt.Errorf("%w: handoff.install done byte %d", ErrBadMessage, b[9])
	}
	f.Done = b[9] == 1
	app, rest, err := takeBytes(b[10:])
	if err != nil {
		return HandoffFrames{}, err
	}
	f.App, err = DecodeRepAppend(app)
	if err != nil {
		return HandoffFrames{}, err
	}
	table, rest, err := takeBytes(rest)
	if err != nil {
		return HandoffFrames{}, err
	}
	if len(table) > 0 {
		f.Table = table
	}
	if len(rest) != 0 {
		return HandoffFrames{}, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(rest))
	}
	return f, nil
}

// EncodeShardStatus renders s as one fixed-size row.
func EncodeShardStatus(s ShardStatus) []byte {
	out := make([]byte, 0, shardStatusSize)
	out = binary.LittleEndian.AppendUint32(out, s.ID)
	out = append(out, byte(s.Role))
	out = binary.LittleEndian.AppendUint64(out, s.Durable)
	out = binary.LittleEndian.AppendUint64(out, s.IdxHits)
	return binary.LittleEndian.AppendUint64(out, s.IdxMisses)
}

// DecodeShardStatus parses one fixed-size row as a ShardStatus.
func DecodeShardStatus(b []byte) (ShardStatus, error) {
	if len(b) != shardStatusSize {
		return ShardStatus{}, fmt.Errorf("%w: shard status of %d bytes", ErrBadMessage, len(b))
	}
	var s ShardStatus
	s.ID = binary.LittleEndian.Uint32(b[0:4])
	s.Role = Role(b[4])
	if int(s.Role) >= len(roleNames) || roleNames[s.Role] == "" {
		return ShardStatus{}, fmt.Errorf("%w: unknown role %d", ErrBadMessage, b[4])
	}
	s.Durable = binary.LittleEndian.Uint64(b[5:13])
	s.IdxHits = binary.LittleEndian.Uint64(b[13:21])
	s.IdxMisses = binary.LittleEndian.Uint64(b[21:29])
	return s, nil
}

// EncodeStatusReport renders r as a response result.
func EncodeStatusReport(r StatusReport) []byte {
	out := make([]byte, 0, 2+repStatusSize+len(r.Shards)*shardStatusSize+2)
	out = appendBytes(out, EncodeRepStatus(r.Rep))
	out = binary.AppendUvarint(out, uint64(len(r.Shards)))
	for _, s := range r.Shards {
		out = append(out, EncodeShardStatus(s)...)
	}
	return out
}

// DecodeStatusReport parses a response result as a StatusReport. Shard
// rows must arrive in strictly ascending id order — the one canonical
// encoding of a shard set.
func DecodeStatusReport(b []byte) (StatusReport, error) {
	rep, rest, err := takeBytes(b)
	if err != nil {
		return StatusReport{}, err
	}
	var r StatusReport
	r.Rep, err = DecodeRepStatus(rep)
	if err != nil {
		return StatusReport{}, err
	}
	n, rest, err := takeUvarint(rest)
	if err != nil {
		return StatusReport{}, err
	}
	// Each row is exactly shardStatusSize bytes: bound the count by
	// what remains before allocating.
	if n > uint64(len(rest)/shardStatusSize) {
		return StatusReport{}, fmt.Errorf("%w: %d shard rows beyond %d remaining bytes", ErrBadMessage, n, len(rest))
	}
	if n > 0 {
		r.Shards = make([]ShardStatus, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		s, err := DecodeShardStatus(rest[:shardStatusSize])
		if err != nil {
			return StatusReport{}, err
		}
		if i > 0 && s.ID <= r.Shards[i-1].ID {
			return StatusReport{}, fmt.Errorf("%w: shard rows out of order", ErrBadMessage)
		}
		r.Shards = append(r.Shards, s)
		rest = rest[shardStatusSize:]
	}
	if len(rest) != 0 {
		return StatusReport{}, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(rest))
	}
	return r, nil
}

// EncodeActionID renders an action id as a 12-byte result (OpBegin's
// answer): the same u32 coordinator + u64 seq layout the request
// header uses.
func EncodeActionID(aid ids.ActionID) []byte {
	out := make([]byte, 0, 12)
	out = binary.LittleEndian.AppendUint32(out, uint32(aid.Coordinator))
	return binary.LittleEndian.AppendUint64(out, aid.Seq)
}

// DecodeActionID parses a 12-byte action id.
func DecodeActionID(b []byte) (ids.ActionID, error) {
	if len(b) != 12 {
		return ids.ActionID{}, fmt.Errorf("%w: action id of %d bytes", ErrBadMessage, len(b))
	}
	return ids.ActionID{
		Coordinator: ids.GuardianID(binary.LittleEndian.Uint32(b[0:4])),
		Seq:         binary.LittleEndian.Uint64(b[4:12]),
	}, nil
}

// EncodeGuardianIDs renders a participant list as OpCommitting's
// argument: a uvarint count followed by one u32 per guardian, in the
// caller's order (the coordinator's sorted participant list).
func EncodeGuardianIDs(gids []ids.GuardianID) []byte {
	out := make([]byte, 0, 2+4*len(gids))
	out = binary.AppendUvarint(out, uint64(len(gids)))
	for _, g := range gids {
		out = binary.LittleEndian.AppendUint32(out, uint32(g))
	}
	return out
}

// DecodeGuardianIDs parses OpCommitting's argument.
func DecodeGuardianIDs(b []byte) ([]ids.GuardianID, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return nil, err
	}
	// Each id is exactly 4 bytes: bound the count before allocating.
	if n > uint64(len(rest)/4) {
		return nil, fmt.Errorf("%w: %d guardian ids beyond %d remaining bytes", ErrBadMessage, n, len(rest))
	}
	var gids []ids.GuardianID
	if n > 0 {
		gids = make([]ids.GuardianID, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		gids = append(gids, ids.GuardianID(binary.LittleEndian.Uint32(rest[0:4])))
		rest = rest[4:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(rest))
	}
	return gids, nil
}
