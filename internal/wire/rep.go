// Replication and introspection messages (OpRepAppend, OpRepHeartbeat,
// OpRepSnapshot, OpStatus). They travel inside Request.Arg /
// Response.Result, so the frame layer's CRC and correlation ids apply
// unchanged; the codecs here follow the same rules as message.go —
// explicit little-endian fields, uvarint byte strings, exactly one
// valid encoding, every bound checked before slicing.
//
// The shipped log frames themselves (RepAppend.Frames) are opaque to
// this layer: they carry their own per-frame CRC chain, validated by
// stablelog.ParseFrames on the receiver, so corruption is detected
// end to end even if it slips past the transport CRC.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Role is a server's replication role, reported by OpStatus.
type Role uint8

const (
	// RoleStandalone: an unreplicated server (no primary, no backups).
	RoleStandalone Role = iota + 1
	// RolePrimary: ships log frames to backups and quorum-gates forces.
	RolePrimary
	// RoleBackup: receives, persists, and acks shipped frames; serves
	// nothing until promoted.
	RoleBackup
)

var roleNames = [...]string{
	RoleStandalone: "standalone",
	RolePrimary:    "primary",
	RoleBackup:     "backup",
}

func (r Role) String() string {
	if int(r) < len(roleNames) && roleNames[r] != "" {
		return roleNames[r]
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// RepAppend ships a contiguous run of raw stable-log frames.
type RepAppend struct {
	// Epoch is the sender's replication epoch; it increases by one at
	// every promotion, so a deposed primary's appends are recognizably
	// stale (the receiver acks with its own, higher epoch and applies
	// nothing).
	Epoch uint64
	// Start is the byte offset the run begins at; it must equal the
	// receiver's durable tail or the receiver acks its actual tail and
	// the sender rewinds.
	Start uint64
	// PrevLen is the frame length of the entry preceding Start (0 at
	// offset 0), cross-checked against the receiver's own tail so a
	// same-offset divergence is caught before any byte is applied.
	PrevLen uint32
	// Frames is the raw frame run (stablelog.ReadRaw output).
	Frames []byte
}

// RepAck is a replica's durability acknowledgment, answering every
// rep.* request. Applied distinguishes the in-band refusal explicitly,
// so a sender never has to infer the outcome from the Durable offset
// alone — a refusing replica's tail can coincide byte-for-byte with
// the offset an applied run would have reached (a rejoined replica
// holding old-history bytes), and offsets the sender never shipped
// must never be adopted as replicated coverage. An Epoch above the
// sender's own means the sender has been deposed.
type RepAck struct {
	// Epoch is the receiver's replication epoch.
	Epoch uint64
	// Durable is the receiver's durable log prefix in bytes.
	Durable uint64
	// Applied reports that the request's mutation took effect: an
	// append's run was validated, persisted, and forced, or a snapshot
	// offer's reset completed. False is the refusal (or, for a
	// heartbeat, simply "nothing to apply"): Durable names the
	// receiver's unchanged tail, whose content the sender must not
	// assume matches its own log.
	Applied bool
}

// RepHeartbeat probes a replica: no data, just the sender's epoch and
// durable offset so the replica can report how far it lags.
type RepHeartbeat struct {
	// Epoch is the sender's replication epoch.
	Epoch uint64
	// Durable is the sender's durable log prefix in bytes.
	Durable uint64
}

// RepSnapshot is the snapshot-offer for a lagging or diverged replica:
// discard the received log entirely and re-ack offset 0. The primary
// then ships its whole current log — compacted by housekeeping to live
// state (ch. 5), which is exactly what makes the "snapshot" small —
// through the ordinary append path.
type RepSnapshot struct {
	// Epoch is the sender's replication epoch.
	Epoch uint64
}

// RepPromote is the optional argument of OpPromote: the operator's
// safety floor for an explicit failover.
type RepPromote struct {
	// MinDurable refuses the promotion unless the candidate backup's
	// durable log prefix is at least this many bytes. Operators pass
	// the deposed primary's last quorum-acked boundary (the
	// QuorumBytes line of a status report), so a reachable-but-lagging
	// backup cannot be promoted over an acknowledged commit that lives
	// only on an unreachable peer. Zero imposes no floor — the forced
	// promotion, and what a bare OpPromote (empty argument) means.
	MinDurable uint64
}

// RepStatus answers OpStatus: the server's replication role and health.
type RepStatus struct {
	// Role is the server's current replication role.
	Role Role
	// Epoch is the server's replication epoch.
	Epoch uint64
	// Durable is the server's own durable log prefix in bytes.
	Durable uint64
	// QuorumBytes is the largest prefix durably acked by a quorum
	// (primaries only; equals Durable elsewhere).
	QuorumBytes uint64
	// Quorum is the configured quorum size, counting the primary
	// itself (primaries only).
	Quorum uint32
	// Replicas is the number of configured backups (primaries only).
	Replicas uint32
	// Alive is how many of those backups answered the most recent
	// round or probe (primaries only).
	Alive uint32
	// IdxHits / IdxMisses are the node's live-version index counters,
	// summed over its guardians (zero with the index disabled).
	IdxHits   uint64
	IdxMisses uint64
	// IdxEntries is the number of indexed versions, IdxBytes their
	// total flattened size.
	IdxEntries uint64
	IdxBytes   uint64
}

const (
	repAckSize       = 17
	repHeartbeatSize = 16
	repSnapshotSize  = 8
	repPromoteSize   = 8
	repStatusSize    = 69
)

// EncodeRepAppend renders a as a request argument.
func EncodeRepAppend(a RepAppend) []byte {
	out := make([]byte, 0, 8+8+4+4+len(a.Frames))
	out = binary.LittleEndian.AppendUint64(out, a.Epoch)
	out = binary.LittleEndian.AppendUint64(out, a.Start)
	out = binary.LittleEndian.AppendUint32(out, a.PrevLen)
	return appendBytes(out, a.Frames)
}

// DecodeRepAppend parses a request argument as a RepAppend.
func DecodeRepAppend(b []byte) (RepAppend, error) {
	if len(b) < 8+8+4 {
		return RepAppend{}, fmt.Errorf("%w: rep.append of %d bytes", ErrBadMessage, len(b))
	}
	var a RepAppend
	a.Epoch = binary.LittleEndian.Uint64(b[0:8])
	a.Start = binary.LittleEndian.Uint64(b[8:16])
	a.PrevLen = binary.LittleEndian.Uint32(b[16:20])
	frames, rest, err := takeBytes(b[20:])
	if err != nil {
		return RepAppend{}, err
	}
	if len(frames) > 0 {
		a.Frames = frames
	}
	if len(rest) != 0 {
		return RepAppend{}, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(rest))
	}
	return a, nil
}

// EncodeRepAck renders a as a response result.
func EncodeRepAck(a RepAck) []byte {
	out := make([]byte, 0, repAckSize)
	out = binary.LittleEndian.AppendUint64(out, a.Epoch)
	out = binary.LittleEndian.AppendUint64(out, a.Durable)
	applied := byte(0)
	if a.Applied {
		applied = 1
	}
	return append(out, applied)
}

// DecodeRepAck parses a response result as a RepAck.
func DecodeRepAck(b []byte) (RepAck, error) {
	if len(b) != repAckSize {
		return RepAck{}, fmt.Errorf("%w: rep ack of %d bytes", ErrBadMessage, len(b))
	}
	if b[16] > 1 {
		return RepAck{}, fmt.Errorf("%w: rep ack applied byte %d", ErrBadMessage, b[16])
	}
	return RepAck{
		Epoch:   binary.LittleEndian.Uint64(b[0:8]),
		Durable: binary.LittleEndian.Uint64(b[8:16]),
		Applied: b[16] == 1,
	}, nil
}

// EncodeRepHeartbeat renders h as a request argument.
func EncodeRepHeartbeat(h RepHeartbeat) []byte {
	out := make([]byte, 0, repHeartbeatSize)
	out = binary.LittleEndian.AppendUint64(out, h.Epoch)
	return binary.LittleEndian.AppendUint64(out, h.Durable)
}

// DecodeRepHeartbeat parses a request argument as a RepHeartbeat.
func DecodeRepHeartbeat(b []byte) (RepHeartbeat, error) {
	if len(b) != repHeartbeatSize {
		return RepHeartbeat{}, fmt.Errorf("%w: rep.heartbeat of %d bytes", ErrBadMessage, len(b))
	}
	return RepHeartbeat{
		Epoch:   binary.LittleEndian.Uint64(b[0:8]),
		Durable: binary.LittleEndian.Uint64(b[8:16]),
	}, nil
}

// EncodeRepSnapshot renders s as a request argument.
func EncodeRepSnapshot(s RepSnapshot) []byte {
	out := make([]byte, 0, repSnapshotSize)
	return binary.LittleEndian.AppendUint64(out, s.Epoch)
}

// DecodeRepSnapshot parses a request argument as a RepSnapshot.
func DecodeRepSnapshot(b []byte) (RepSnapshot, error) {
	if len(b) != repSnapshotSize {
		return RepSnapshot{}, fmt.Errorf("%w: rep.snapshot of %d bytes", ErrBadMessage, len(b))
	}
	return RepSnapshot{Epoch: binary.LittleEndian.Uint64(b[0:8])}, nil
}

// EncodeRepPromote renders p as a request argument.
func EncodeRepPromote(p RepPromote) []byte {
	out := make([]byte, 0, repPromoteSize)
	return binary.LittleEndian.AppendUint64(out, p.MinDurable)
}

// DecodeRepPromote parses a request argument as a RepPromote. An empty
// argument — what a pre-floor client sends — decodes to the zero
// floor.
func DecodeRepPromote(b []byte) (RepPromote, error) {
	if len(b) == 0 {
		return RepPromote{}, nil
	}
	if len(b) != repPromoteSize {
		return RepPromote{}, fmt.Errorf("%w: promote of %d bytes", ErrBadMessage, len(b))
	}
	return RepPromote{MinDurable: binary.LittleEndian.Uint64(b[0:8])}, nil
}

// EncodeRepStatus renders s as a response result.
func EncodeRepStatus(s RepStatus) []byte {
	out := make([]byte, 0, repStatusSize)
	out = append(out, byte(s.Role))
	out = binary.LittleEndian.AppendUint64(out, s.Epoch)
	out = binary.LittleEndian.AppendUint64(out, s.Durable)
	out = binary.LittleEndian.AppendUint64(out, s.QuorumBytes)
	out = binary.LittleEndian.AppendUint32(out, s.Quorum)
	out = binary.LittleEndian.AppendUint32(out, s.Replicas)
	out = binary.LittleEndian.AppendUint32(out, s.Alive)
	out = binary.LittleEndian.AppendUint64(out, s.IdxHits)
	out = binary.LittleEndian.AppendUint64(out, s.IdxMisses)
	out = binary.LittleEndian.AppendUint64(out, s.IdxEntries)
	return binary.LittleEndian.AppendUint64(out, s.IdxBytes)
}

// DecodeRepStatus parses a response result as a RepStatus.
func DecodeRepStatus(b []byte) (RepStatus, error) {
	if len(b) != repStatusSize {
		return RepStatus{}, fmt.Errorf("%w: status of %d bytes", ErrBadMessage, len(b))
	}
	var s RepStatus
	s.Role = Role(b[0])
	if int(s.Role) >= len(roleNames) || roleNames[s.Role] == "" {
		return RepStatus{}, fmt.Errorf("%w: unknown role %d", ErrBadMessage, b[0])
	}
	s.Epoch = binary.LittleEndian.Uint64(b[1:9])
	s.Durable = binary.LittleEndian.Uint64(b[9:17])
	s.QuorumBytes = binary.LittleEndian.Uint64(b[17:25])
	s.Quorum = binary.LittleEndian.Uint32(b[25:29])
	s.Replicas = binary.LittleEndian.Uint32(b[29:33])
	s.Alive = binary.LittleEndian.Uint32(b[33:37])
	s.IdxHits = binary.LittleEndian.Uint64(b[37:45])
	s.IdxMisses = binary.LittleEndian.Uint64(b[45:53])
	s.IdxEntries = binary.LittleEndian.Uint64(b[53:61])
	s.IdxBytes = binary.LittleEndian.Uint64(b[61:69])
	return s, nil
}
