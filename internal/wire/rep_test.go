package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestRepAppendRoundTrip(t *testing.T) {
	cases := []RepAppend{
		{},
		{Epoch: 1, Start: 0, PrevLen: 0, Frames: []byte{0xA7, 1, 2, 3}},
		{Epoch: 9, Start: 4096, PrevLen: 77, Frames: bytes.Repeat([]byte{0x5A}, 1000)},
	}
	for _, a := range cases {
		got, err := DecodeRepAppend(EncodeRepAppend(a))
		if err != nil {
			t.Fatalf("DecodeRepAppend(%+v): %v", a, err)
		}
		if got.Epoch != a.Epoch || got.Start != a.Start || got.PrevLen != a.PrevLen || !bytes.Equal(got.Frames, a.Frames) {
			t.Fatalf("round trip = %+v, want %+v", got, a)
		}
	}
}

func TestRepAppendRejectsTrailingBytes(t *testing.T) {
	b := EncodeRepAppend(RepAppend{Epoch: 1, Frames: []byte("xyz")})
	if _, err := DecodeRepAppend(append(b, 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing byte: err = %v, want ErrBadMessage", err)
	}
	if _, err := DecodeRepAppend(b[:len(b)-1]); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("truncated frames: err = %v, want ErrBadMessage", err)
	}
	if _, err := DecodeRepAppend(nil); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("empty: err = %v, want ErrBadMessage", err)
	}
}

func TestRepFixedCodecsRoundTrip(t *testing.T) {
	for _, ack := range []RepAck{
		{Epoch: 3, Durable: 12345},
		{Epoch: 3, Durable: 12345, Applied: true},
	} {
		if got, err := DecodeRepAck(EncodeRepAck(ack)); err != nil || got != ack {
			t.Fatalf("ack round trip = %+v, %v", got, err)
		}
	}
	// The applied byte has exactly two valid values.
	bad := EncodeRepAck(RepAck{Epoch: 1, Durable: 2, Applied: true})
	bad[16] = 2
	if _, err := DecodeRepAck(bad); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("applied byte 2: err = %v, want ErrBadMessage", err)
	}
	hb := RepHeartbeat{Epoch: 2, Durable: 512}
	if got, err := DecodeRepHeartbeat(EncodeRepHeartbeat(hb)); err != nil || got != hb {
		t.Fatalf("heartbeat round trip = %+v, %v", got, err)
	}
	snap := RepSnapshot{Epoch: 8}
	if got, err := DecodeRepSnapshot(EncodeRepSnapshot(snap)); err != nil || got != snap {
		t.Fatalf("snapshot round trip = %+v, %v", got, err)
	}
	pr := RepPromote{MinDurable: 4096}
	if got, err := DecodeRepPromote(EncodeRepPromote(pr)); err != nil || got != pr {
		t.Fatalf("promote round trip = %+v, %v", got, err)
	}
	// A bare OpPromote carries no argument: the zero floor.
	if got, err := DecodeRepPromote(nil); err != nil || got != (RepPromote{}) {
		t.Fatalf("empty promote = %+v, %v, want zero floor", got, err)
	}
	if _, err := DecodeRepPromote(make([]byte, 7)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("7-byte promote: err = %v, want ErrBadMessage", err)
	}
	st := RepStatus{Role: RolePrimary, Epoch: 4, Durable: 99, QuorumBytes: 88, Quorum: 2, Replicas: 2, Alive: 1, IdxHits: 1000, IdxMisses: 3, IdxEntries: 64, IdxBytes: 8192}
	if got, err := DecodeRepStatus(EncodeRepStatus(st)); err != nil || got != st {
		t.Fatalf("status round trip = %+v, %v", got, err)
	}
	// Exact-size codecs reject any other length.
	for _, n := range []int{0, 7, 15, 17, 36, 37, 38, 68, 70} {
		b := make([]byte, n)
		if _, err := DecodeRepAck(b); err == nil && n != repAckSize {
			t.Fatalf("ack accepted %d bytes", n)
		}
		if _, err := DecodeRepStatus(b); err == nil && n != repStatusSize {
			t.Fatalf("status accepted %d bytes", n)
		}
	}
}

func TestRepStatusRejectsUnknownRole(t *testing.T) {
	b := EncodeRepStatus(RepStatus{Role: RoleBackup})
	b[0] = 0
	if _, err := DecodeRepStatus(b); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("role 0: err = %v, want ErrBadMessage", err)
	}
	b[0] = 200
	if _, err := DecodeRepStatus(b); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("role 200: err = %v, want ErrBadMessage", err)
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{
		RoleStandalone: "standalone",
		RolePrimary:    "primary",
		RoleBackup:     "backup",
		Role(0):        "role(0)",
		Role(9):        "role(9)",
	} {
		if got := r.String(); got != want {
			t.Fatalf("Role(%d).String() = %q, want %q", uint8(r), got, want)
		}
	}
}

// FuzzDecodeRepMessage hits every replication codec with arbitrary
// bytes: no input may panic, and any accepted input must re-encode to
// the same bytes (one canonical form, like the other message codecs).
func FuzzDecodeRepMessage(f *testing.F) {
	f.Add(EncodeRepAppend(RepAppend{Epoch: 1, Start: 64, PrevLen: 13, Frames: []byte{0xA7, 0, 0}}))
	f.Add(EncodeRepAck(RepAck{Epoch: 1, Durable: 77, Applied: true}))
	f.Add(EncodeRepHeartbeat(RepHeartbeat{Epoch: 2, Durable: 13}))
	f.Add(EncodeRepSnapshot(RepSnapshot{Epoch: 3}))
	f.Add(EncodeRepPromote(RepPromote{MinDurable: 512}))
	f.Add(EncodeRepStatus(RepStatus{Role: RoleBackup, Epoch: 2, Durable: 42, IdxHits: 7, IdxEntries: 2, IdxBytes: 33}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if a, err := DecodeRepAppend(data); err == nil {
			if !bytes.Equal(EncodeRepAppend(a), data) {
				t.Fatal("rep.append decode/encode not canonical")
			}
		}
		if a, err := DecodeRepAck(data); err == nil {
			if !bytes.Equal(EncodeRepAck(a), data) {
				t.Fatal("rep ack decode/encode not canonical")
			}
		}
		if h, err := DecodeRepHeartbeat(data); err == nil {
			if !bytes.Equal(EncodeRepHeartbeat(h), data) {
				t.Fatal("rep.heartbeat decode/encode not canonical")
			}
		}
		if s, err := DecodeRepSnapshot(data); err == nil {
			if !bytes.Equal(EncodeRepSnapshot(s), data) {
				t.Fatal("rep.snapshot decode/encode not canonical")
			}
		}
		if p, err := DecodeRepPromote(data); err == nil && len(data) > 0 {
			// The empty argument is the one sanctioned second encoding
			// of the zero floor (pre-floor clients send it).
			if !bytes.Equal(EncodeRepPromote(p), data) {
				t.Fatal("promote decode/encode not canonical")
			}
		}
		if s, err := DecodeRepStatus(data); err == nil {
			if !bytes.Equal(EncodeRepStatus(s), data) {
				t.Fatal("status decode/encode not canonical")
			}
		}
	})
}
