package wire

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/ids"
)

// FuzzDecodeFrame feeds arbitrary bytes to both frame decoders: no
// input may panic, allocate beyond the frame bound, or decode to a
// frame that does not re-encode to the same bytes.
func FuzzDecodeFrame(f *testing.F) {
	seed := func(fr Frame) []byte {
		b, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	valid := seed(Frame{Type: TypeRequest, CorrID: 7, Payload: EncodeRequest(Request{Op: OpInvoke, Handler: "h", Arg: []byte{1}})})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                           // truncated trailer
	f.Add(valid[:HeaderSize-2])                           // truncated header
	f.Add(append([]byte(nil), bytes.Repeat(valid, 3)...)) // several frames
	// A pipelined batch as the server coalesces it: several response
	// frames with distinct correlation ids in one write.
	batch := seed(Frame{Type: TypeResponse, CorrID: 8, Payload: EncodeResponse(Response{Status: StatusOK, Result: []byte("v1")})})
	batch = append(batch, seed(Frame{Type: TypeResponse, CorrID: 10, Payload: EncodeResponse(Response{Status: StatusRetry})})...)
	batch = append(batch, seed(Frame{Type: TypeResponse, CorrID: 9, Payload: EncodeResponse(Response{Status: StatusError, Err: "guardian: no such key"})})...)
	f.Add(batch)
	f.Add(batch[:len(batch)-TrailerSize-1]) // batch with a torn last frame
	corrupt := append([]byte(nil), valid...)
	corrupt[HeaderSize] ^= 0xFF
	f.Add(corrupt)
	oversize := append([]byte(nil), valid...)
	oversize[14], oversize[15], oversize[16], oversize[17] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(oversize)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Slice decoder: on success the consumed prefix must re-encode
		// byte-for-byte (the codec has one canonical form).
		fr, n, err := DecodeFrame(data)
		if err == nil {
			if n < HeaderSize+TrailerSize || n > len(data) {
				t.Fatalf("consumed %d of %d", n, len(data))
			}
			if len(fr.Payload) > MaxPayload {
				t.Fatalf("payload %d escaped the MaxPayload bound", len(fr.Payload))
			}
			re, err := AppendFrame(nil, fr)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(re, data[:n]) {
				t.Fatal("decode/encode not canonical")
			}
		}
		// Stream decoder must agree with the slice decoder on validity.
		sfr, serr := ReadFrame(bytes.NewReader(data))
		if (err == nil) != (serr == nil) {
			t.Fatalf("slice err %v, stream err %v", err, serr)
		}
		if err == nil && (sfr.CorrID != fr.CorrID || !bytes.Equal(sfr.Payload, fr.Payload)) {
			t.Fatal("slice and stream decoders disagree")
		}
		// Message decoders over the payload: must not panic; bounds are
		// checked before any slicing.
		if err == nil {
			//roslint:besteffort fuzz probes: decode errors are the interesting outcome, not a failure
			_, _ = DecodeRequest(fr.Payload)
			//roslint:besteffort fuzz probes: decode errors are the interesting outcome, not a failure
			_, _ = DecodeResponse(fr.Payload)
		}
	})
}

// FuzzDecodeRequest hits the message codec directly, without the CRC
// gate in front of it: the server decodes requests only from valid
// frames, but the codec itself must hold against anything.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(Request{Op: OpPing}))
	f.Add(EncodeRequest(Request{Op: OpInvoke, Handler: "transfer", Arg: bytes.Repeat([]byte{9}, 100)}))
	f.Add(EncodeResponse(Response{Status: StatusOK, Result: []byte("r")}))
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF})
	// One seed per remaining op, each carrying the Arg shape that op
	// travels with, so every dispatch value and its argument codec sit
	// in the corpus (wirecodec enforces the coverage).
	aid := ids.ActionID{Coordinator: 3, Seq: 41}
	f.Add(EncodeRequest(Request{Op: OpPrepare, AID: aid}))
	f.Add(EncodeRequest(Request{Op: OpCommit, AID: aid}))
	f.Add(EncodeRequest(Request{Op: OpAbort, AID: aid}))
	f.Add(EncodeRequest(Request{Op: OpOutcome, AID: aid}))
	f.Add(EncodeRequest(Request{Op: OpRepAppend, Arg: EncodeRepAppend(RepAppend{Epoch: 2, Start: 64, PrevLen: 13, Frames: []byte{0xA7, 0, 0}})}))
	f.Add(EncodeRequest(Request{Op: OpRepHeartbeat, Arg: EncodeRepHeartbeat(RepHeartbeat{Epoch: 2, Durable: 96})}))
	f.Add(EncodeRequest(Request{Op: OpRepSnapshot, Arg: EncodeRepSnapshot(RepSnapshot{Epoch: 2})}))
	f.Add(EncodeRequest(Request{Op: OpStatus}))
	f.Add(EncodeRequest(Request{Op: OpPromote, Arg: EncodeRepPromote(RepPromote{MinDurable: 128})}))
	f.Add(EncodeRequest(Request{Op: OpRoute}))
	f.Add(EncodeRequest(Request{Op: OpRouteInstall, Arg: []byte("table")}))
	f.Add(EncodeRequest(Request{Op: OpBegin, Shard: 2}))
	f.Add(EncodeRequest(Request{Op: OpCommitting, AID: aid, Shard: 2, Arg: EncodeGuardianIDs([]ids.GuardianID{1, 2})}))
	f.Add(EncodeRequest(Request{Op: OpDone, AID: aid, Shard: 2}))
	f.Add(EncodeRequest(Request{Op: OpHandoff, Arg: EncodeHandoffReq(HandoffReq{Shard: 2, Target: "node2:4146"})}))
	f.Add(EncodeRequest(Request{Op: OpHandoffInstall, Arg: EncodeHandoffFrames(HandoffFrames{Shard: 2, Backend: 1, BlockSize: 512, App: RepAppend{Epoch: 1}})}))
	f.Add(EncodeRequest(Request{Op: OpInvoke, Shard: 3, Handler: "get", Arg: []byte("k")}))
	f.Add(EncodeRequest(Request{Op: OpGet, Shard: 2, Handler: "hot-key"}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(data); err == nil {
			if !bytes.Equal(EncodeRequest(req), data) {
				t.Fatal("request decode/encode not canonical")
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			if !bytes.Equal(EncodeResponse(resp), data) {
				t.Fatal("response decode/encode not canonical")
			}
		}
	})
}

// TestEveryOpHasFuzzTarget is the wirecodec smoke test: every Op
// constant must appear in some Fuzz* function of this package, so a
// new op cannot land without a decoder seed. The roslint wirecodec
// analyzer enforces the same rule statically; this test keeps the
// guarantee alive even when lint is skipped.
func TestEveryOpHasFuzzTarget(t *testing.T) {
	ops := map[Op]string{
		OpPing:           "OpPing",
		OpInvoke:         "OpInvoke",
		OpPrepare:        "OpPrepare",
		OpCommit:         "OpCommit",
		OpAbort:          "OpAbort",
		OpOutcome:        "OpOutcome",
		OpRepAppend:      "OpRepAppend",
		OpRepHeartbeat:   "OpRepHeartbeat",
		OpRepSnapshot:    "OpRepSnapshot",
		OpStatus:         "OpStatus",
		OpPromote:        "OpPromote",
		OpRoute:          "OpRoute",
		OpRouteInstall:   "OpRouteInstall",
		OpBegin:          "OpBegin",
		OpCommitting:     "OpCommitting",
		OpDone:           "OpDone",
		OpHandoff:        "OpHandoff",
		OpHandoffInstall: "OpHandoffInstall",
		OpGet:            "OpGet",
	}
	var text []byte
	for _, name := range []string{"fuzz_test.go", "rep_test.go", "shard_test.go"} {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		text = append(text, src...)
	}
	for op, name := range ops {
		if op.String() == fmt.Sprintf("op(%d)", uint8(op)) {
			t.Errorf("%s has no opNames entry", name)
		}
		if !bytes.Contains(text, []byte(name)) {
			t.Errorf("%s is not mentioned by any fuzz file; add a decoder seed for it", name)
		}
	}
}
