package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes to both frame decoders: no
// input may panic, allocate beyond the frame bound, or decode to a
// frame that does not re-encode to the same bytes.
func FuzzDecodeFrame(f *testing.F) {
	seed := func(fr Frame) []byte {
		b, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	valid := seed(Frame{Type: TypeRequest, CorrID: 7, Payload: EncodeRequest(Request{Op: OpInvoke, Handler: "h", Arg: []byte{1}})})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                           // truncated trailer
	f.Add(valid[:HeaderSize-2])                           // truncated header
	f.Add(append([]byte(nil), bytes.Repeat(valid, 3)...)) // several frames
	corrupt := append([]byte(nil), valid...)
	corrupt[HeaderSize] ^= 0xFF
	f.Add(corrupt)
	oversize := append([]byte(nil), valid...)
	oversize[14], oversize[15], oversize[16], oversize[17] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(oversize)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Slice decoder: on success the consumed prefix must re-encode
		// byte-for-byte (the codec has one canonical form).
		fr, n, err := DecodeFrame(data)
		if err == nil {
			if n < HeaderSize+TrailerSize || n > len(data) {
				t.Fatalf("consumed %d of %d", n, len(data))
			}
			if len(fr.Payload) > MaxPayload {
				t.Fatalf("payload %d escaped the MaxPayload bound", len(fr.Payload))
			}
			re, err := AppendFrame(nil, fr)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(re, data[:n]) {
				t.Fatal("decode/encode not canonical")
			}
		}
		// Stream decoder must agree with the slice decoder on validity.
		sfr, serr := ReadFrame(bytes.NewReader(data))
		if (err == nil) != (serr == nil) {
			t.Fatalf("slice err %v, stream err %v", err, serr)
		}
		if err == nil && (sfr.CorrID != fr.CorrID || !bytes.Equal(sfr.Payload, fr.Payload)) {
			t.Fatal("slice and stream decoders disagree")
		}
		// Message decoders over the payload: must not panic; bounds are
		// checked before any slicing.
		if err == nil {
			//roslint:besteffort fuzz probes: decode errors are the interesting outcome, not a failure
			_, _ = DecodeRequest(fr.Payload)
			//roslint:besteffort fuzz probes: decode errors are the interesting outcome, not a failure
			_, _ = DecodeResponse(fr.Payload)
		}
	})
}

// FuzzDecodeRequest hits the message codec directly, without the CRC
// gate in front of it: the server decodes requests only from valid
// frames, but the codec itself must hold against anything.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(Request{Op: OpPing}))
	f.Add(EncodeRequest(Request{Op: OpInvoke, Handler: "transfer", Arg: bytes.Repeat([]byte{9}, 100)}))
	f.Add(EncodeResponse(Response{Status: StatusOK, Result: []byte("r")}))
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(data); err == nil {
			if !bytes.Equal(EncodeRequest(req), data) {
				t.Fatal("request decode/encode not canonical")
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			if !bytes.Equal(EncodeResponse(resp), data) {
				t.Fatal("response decode/encode not canonical")
			}
		}
	})
}
