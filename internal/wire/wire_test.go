package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/ids"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypeRequest, CorrID: 0, Payload: nil},
		{Type: TypeResponse, CorrID: 1, Payload: []byte{}},
		{Type: TypeRequest, CorrID: ^uint64(0), Payload: []byte("hello")},
		{Type: TypeResponse, CorrID: 42, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	// Stream decode.
	r := bytes.NewReader(buf.Bytes())
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.CorrID != want.CorrID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
	// Slice decode consumes the same bytes.
	rest := buf.Bytes()
	for i, want := range frames {
		got, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got.Payload, want.Payload) || got.CorrID != want.CorrID {
			t.Fatalf("frame %d mismatch", i)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d undecoded bytes", len(rest))
	}
}

func encode(t *testing.T, f Frame) []byte {
	t.Helper()
	b, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFrameErrors(t *testing.T) {
	good := encode(t, Frame{Type: TypeRequest, CorrID: 7, Payload: []byte("payload")})

	t.Run("truncated", func(t *testing.T) {
		for n := 0; n < len(good); n++ {
			if _, _, err := DecodeFrame(good[:n]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("prefix %d: %v, want ErrTruncated", n, err)
			}
			_, err := ReadFrame(bytes.NewReader(good[:n]))
			if n == 0 {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("empty stream: %v, want io.EOF", err)
				}
			} else if !errors.Is(err, ErrTruncated) {
				t.Fatalf("stream prefix %d: %v, want ErrTruncated", n, err)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] ^= 0xFF
		if _, _, err := DecodeFrame(b); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("%v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[3] = 0x02
		if _, _, err := DecodeFrame(b); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("%v, want ErrBadMagic", err)
		}
	})
	t.Run("bad type", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4] = 9
		if _, _, err := DecodeFrame(b); !errors.Is(err, ErrBadType) {
			t.Fatalf("%v, want ErrBadType", err)
		}
		b = append([]byte(nil), good...)
		b[5] = 1 // reserved byte
		if _, _, err := DecodeFrame(b); !errors.Is(err, ErrBadType) {
			t.Fatalf("%v, want ErrBadType", err)
		}
	})
	t.Run("corrupt payload", func(t *testing.T) {
		for i := range good {
			b := append([]byte(nil), good...)
			b[i] ^= 0x40
			if _, _, err := DecodeFrame(b); err == nil {
				t.Fatalf("bit flip at %d decoded cleanly", i)
			}
		}
	})
	t.Run("oversize claim", func(t *testing.T) {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(b[14:18], MaxPayload+1)
		if _, _, err := DecodeFrame(b); !errors.Is(err, ErrOversize) {
			t.Fatalf("%v, want ErrOversize", err)
		}
		if _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrOversize) {
			t.Fatalf("stream: %v, want ErrOversize", err)
		}
	})
	t.Run("oversize encode", func(t *testing.T) {
		if _, err := AppendFrame(nil, Frame{Type: TypeRequest, Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrOversize) {
			t.Fatalf("%v, want ErrOversize", err)
		}
	})
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpPing},
		{Op: OpInvoke, Handler: "transfer", Arg: []byte{1, 2, 3}},
		{Op: OpInvoke, AID: ids.ActionID{Coordinator: 9, Seq: 77}, Handler: "deposit"},
		{Op: OpPrepare, AID: ids.ActionID{Coordinator: 1, Seq: 1 << 41}},
		{Op: OpCommit, AID: ids.ActionID{Coordinator: 3, Seq: 5}},
		{Op: OpAbort, AID: ids.ActionID{Coordinator: 3, Seq: 5}},
		{Op: OpOutcome, AID: ids.ActionID{Coordinator: 2, Seq: 8}},
	}
	for _, want := range reqs {
		got, err := DecodeRequest(EncodeRequest(want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got.Op != want.Op || got.AID != want.AID || got.Handler != want.Handler || !bytes.Equal(got.Arg, want.Arg) {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK},
		{Status: StatusOK, Vote: 1},
		{Status: StatusOK, Outcome: 2, Result: []byte("flattened")},
		{Status: StatusRetry, Err: "lock conflict"},
		{Status: StatusError, Err: strings.Repeat("x", 300)},
		{Status: StatusBadRequest, Err: "unknown op 99"},
	}
	for _, want := range resps {
		got, err := DecodeResponse(EncodeResponse(want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got.Status != want.Status || got.Vote != want.Vote || got.Outcome != want.Outcome ||
			!bytes.Equal(got.Result, want.Result) || got.Err != want.Err {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
}

func TestMessageErrors(t *testing.T) {
	if _, err := DecodeRequest(nil); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("empty request: %v", err)
	}
	if _, err := DecodeRequest([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("unknown op: %v", err)
	}
	// Length prefix pointing past the end.
	b := EncodeRequest(Request{Op: OpInvoke, Handler: "h"})
	b[17] = 0xFF // handler length prefix
	if _, err := DecodeRequest(b); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("overlong prefix: %v", err)
	}
	// Trailing garbage.
	if _, err := DecodeRequest(append(EncodeRequest(Request{Op: OpPing}), 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing bytes: %v", err)
	}
	if _, err := DecodeResponse(nil); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("empty response: %v", err)
	}
	if _, err := DecodeResponse(append(EncodeResponse(Response{Status: StatusOK}), 1, 2)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing bytes: %v", err)
	}
}

func TestOpStatusStrings(t *testing.T) {
	if OpInvoke.String() != "invoke" || OpPrepare.String() != "prepare" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() != "op(99)" {
		t.Fatalf("unknown op renders %q", Op(99).String())
	}
	if StatusRetry.String() != "retry" || Status(99).String() != "status(99)" {
		t.Fatal("status names wrong")
	}
}
