// Request/response messages carried in frame payloads. The encoding
// is explicit little-endian fields plus uvarint length-prefixed byte
// strings — the same primitives as the log record codec
// (internal/logrec), chosen over reflection-driven serialization for
// the same reason: every byte is accounted for and every decoder
// bound is checked.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ids"
)

// Op identifies a request's operation: the guardian's external
// interface (handler calls, §2.1) plus the two-phase commit messages
// (§2.2.2) so a remote coordinator can drive this server's guardian
// as a participant.
type Op uint8

const (
	// OpPing checks liveness; it touches no guardian state.
	OpPing Op = iota + 1
	// OpInvoke calls a named handler. With a zero AID the server runs
	// it inside a fresh top-level action and commits (a complete
	// client-owned atomic read/create/update); with a non-zero AID the
	// server joins that action and runs the handler as a subaction,
	// leaving the action live for a later prepare/commit/abort — the
	// guardian becomes a participant in the caller's two-phase commit.
	OpInvoke
	// OpPrepare delivers a prepare message for AID.
	OpPrepare
	// OpCommit delivers a commit message for AID.
	OpCommit
	// OpAbort delivers an abort message for AID.
	OpAbort
	// OpOutcome asks the server's guardian, as coordinator of AID, for
	// the action's fate (the §2.2.2 completion-phase query).
	OpOutcome
	// OpRepAppend ships a run of raw stable-log frames from a primary
	// to a backup replica (rep.go); Arg is a RepAppend, Result a
	// RepAck.
	OpRepAppend
	// OpRepHeartbeat probes a replica's liveness and durable offset
	// without shipping data; Arg is a RepHeartbeat, Result a RepAck.
	OpRepHeartbeat
	// OpRepSnapshot tells a lagging or diverged replica to discard its
	// received log and restart from offset zero of the primary's
	// current generation; Arg is a RepSnapshot, Result a RepAck.
	OpRepSnapshot
	// OpStatus asks a server for its replication role, durable offset,
	// and quorum health; Result is a RepStatus. Works on primaries,
	// backups, and standalone servers alike.
	OpStatus
	// OpPromote orders a backup replica to take over as primary:
	// recover over its received log prefix and begin serving. The
	// failover decision is explicit and external (an operator or a
	// controller), never taken by the replica itself. Arg optionally
	// carries a RepPromote safety floor: the promotion is refused when
	// the candidate's durable prefix falls short of it, so an operator
	// cannot silently discard a quorum-acknowledged commit by
	// promoting a lagging backup (an empty Arg imposes no floor).
	OpPromote
	// OpRoute asks a server for its current routing table; Result is a
	// shard.Table encoding. Any node of a sharded cluster answers —
	// tables are versioned, and a client merging answers keeps the
	// newest.
	OpRoute
	// OpRouteInstall offers a server a routing table (Arg, a
	// shard.Table encoding); the server installs it when strictly
	// newer and answers its current table either way, so the install
	// is idempotent and a stale offer teaches the offerer.
	OpRouteInstall
	// OpBegin mints a fresh top-level action at the addressed shard's
	// guardian — the coordinator of a client-driven cross-shard
	// two-phase commit. Result is the 12-byte ActionID encoding; the
	// action stays live for later OpInvoke joins and 2PC messages.
	OpBegin
	// OpCommitting writes the coordinator's committing record for AID
	// at the addressed shard's guardian — the point of no return
	// (§2.2.3) of a client-driven cross-shard commit. Arg is the
	// prepared participant list (a GuardianIDs encoding).
	OpCommitting
	// OpDone writes the coordinator's done record for AID, retiring
	// the committing entry after every participant acknowledged.
	OpDone
	// OpHandoff orders the addressed node to move a shard to another
	// node: snapshot via housekeeping, ship the compacted log, publish
	// a new table. Arg is a HandoffReq; Result the new shard.Table
	// encoding.
	OpHandoff
	// OpHandoffInstall carries one step of an inbound handoff to the
	// receiving node: a run of log frames, or the final "done" that
	// recovers and adopts the guardian. Arg is a HandoffFrames.
	OpHandoffInstall
	// OpGet reads the committed value bound to a stable-variable key
	// (Handler carries the key) at the addressed shard's guardian,
	// served from the live-version index when warm — no action, no
	// locks, no device reads. Result is the flattened value. A key no
	// variable binds answers StatusError ("no such key").
	OpGet
)

var opNames = [...]string{
	OpPing:           "ping",
	OpInvoke:         "invoke",
	OpPrepare:        "prepare",
	OpCommit:         "commit",
	OpAbort:          "abort",
	OpOutcome:        "outcome",
	OpRepAppend:      "rep.append",
	OpRepHeartbeat:   "rep.heartbeat",
	OpRepSnapshot:    "rep.snapshot",
	OpStatus:         "status",
	OpPromote:        "promote",
	OpRoute:          "route",
	OpRouteInstall:   "route.install",
	OpBegin:          "begin",
	OpCommitting:     "committing",
	OpDone:           "done",
	OpHandoff:        "handoff",
	OpHandoffInstall: "handoff.install",
	OpGet:            "get",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Status classifies a response.
type Status uint8

const (
	// StatusOK: the operation succeeded; Result/Vote/Outcome carry the
	// answer.
	StatusOK Status = iota + 1
	// StatusRetry: the operation failed transiently (lock conflict,
	// lock timeout, server draining) and left no effects; the client
	// may safely retry it.
	StatusRetry
	// StatusError: the operation failed at the application level
	// (handler error, unknown handler, aborted action); Err carries
	// the message. Retrying will not help.
	StatusError
	// StatusBadRequest: the request itself was malformed (unknown op,
	// undecodable payload).
	StatusBadRequest
	// StatusWrongShard: the request named a shard this node does not
	// host. The operation left no effects; Result carries the node's
	// current routing table (a shard.Table encoding) so the caller can
	// refresh and retry against the owner without a separate route
	// fetch.
	StatusWrongShard
)

var statusNames = [...]string{
	StatusOK:         "ok",
	StatusRetry:      "retry",
	StatusError:      "error",
	StatusBadRequest: "bad-request",
	StatusWrongShard: "wrong-shard",
}

func (s Status) String() string {
	if int(s) < len(statusNames) && statusNames[s] != "" {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Message decode errors.
var (
	// ErrBadMessage: a request or response payload does not decode.
	ErrBadMessage = errors.New("wire: bad message")
)

// ErrRemote is the base sentinel for application-level failures
// reported by a server (StatusError): the call was delivered and
// answered, the answer is "no". Distinct from transport failures,
// which wrap transport.ErrUnreachable.
var ErrRemote = errors.New("wire: remote error")

// Request is a client-to-server message.
type Request struct {
	// Op selects the operation.
	Op Op
	// AID names the acted-on action for OpPrepare/Commit/Abort/
	// Outcome, and optionally for OpInvoke (join instead of a fresh
	// top-level action).
	AID ids.ActionID
	// Shard addresses the guardian that must execute the request on a
	// node hosting several (a shard registry). Zero addresses the
	// node's default guardian — the pre-sharding wire contract, which
	// every old client still speaks. A node that does not host the
	// named shard answers StatusWrongShard without touching state.
	Shard uint32
	// Handler names the invoked handler (OpInvoke), or the read key
	// (OpGet).
	Handler string
	// Arg is the handler argument as a flattened value (OpInvoke
	// only; see value.Flatten).
	Arg []byte
}

// Response is a server-to-client message.
type Response struct {
	// Status classifies the outcome.
	Status Status
	// Vote is the participant's vote for OpPrepare (a twopc.Vote).
	Vote uint8
	// Outcome is the coordinator's answer for OpOutcome (a
	// twopc.Outcome).
	Outcome uint8
	// Result is the handler's result as a flattened value (OpInvoke).
	Result []byte
	// Err is the failure message for StatusError/StatusBadRequest.
	Err string
}

// appendBytes appends a uvarint length prefix and the bytes.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// takeBytes consumes a uvarint-prefixed byte string from b. The
// length is validated against what remains before any slicing, so a
// corrupt prefix cannot read out of bounds (the result aliases b).
func takeBytes(b []byte) ([]byte, []byte, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, nil, fmt.Errorf("%w: bad length prefix", ErrBadMessage)
	}
	// Reject non-minimal varints (a zero final byte carries no bits),
	// so every message has exactly one valid encoding.
	if used > 1 && b[used-1] == 0 {
		return nil, nil, fmt.Errorf("%w: non-minimal length prefix", ErrBadMessage)
	}
	rest := b[used:]
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: length %d beyond %d remaining", ErrBadMessage, n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

// EncodeRequest renders r as a frame payload.
func EncodeRequest(r Request) []byte {
	out := make([]byte, 0, 1+16+len(r.Handler)+len(r.Arg)+4)
	out = append(out, byte(r.Op))
	out = binary.LittleEndian.AppendUint32(out, uint32(r.AID.Coordinator))
	out = binary.LittleEndian.AppendUint64(out, r.AID.Seq)
	out = binary.LittleEndian.AppendUint32(out, r.Shard)
	out = appendBytes(out, []byte(r.Handler))
	out = appendBytes(out, r.Arg)
	return out
}

// DecodeRequest parses a frame payload as a Request. Trailing bytes
// are an error: a request that decodes but has leftovers was framed
// by a peer speaking something else.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < 1+16 {
		return Request{}, fmt.Errorf("%w: request of %d bytes", ErrBadMessage, len(b))
	}
	var r Request
	r.Op = Op(b[0])
	if int(r.Op) >= len(opNames) || opNames[r.Op] == "" {
		return Request{}, fmt.Errorf("%w: unknown op %d", ErrBadMessage, b[0])
	}
	r.AID.Coordinator = ids.GuardianID(binary.LittleEndian.Uint32(b[1:5]))
	r.AID.Seq = binary.LittleEndian.Uint64(b[5:13])
	r.Shard = binary.LittleEndian.Uint32(b[13:17])
	handler, rest, err := takeBytes(b[17:])
	if err != nil {
		return Request{}, err
	}
	r.Handler = string(handler)
	arg, rest, err := takeBytes(rest)
	if err != nil {
		return Request{}, err
	}
	if len(arg) > 0 {
		r.Arg = arg
	}
	if len(rest) != 0 {
		return Request{}, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(rest))
	}
	return r, nil
}

// EncodeResponse renders r as a frame payload.
func EncodeResponse(r Response) []byte {
	out := make([]byte, 0, 3+len(r.Result)+len(r.Err)+4)
	out = append(out, byte(r.Status), r.Vote, r.Outcome)
	out = appendBytes(out, r.Result)
	out = appendBytes(out, []byte(r.Err))
	return out
}

// DecodeResponse parses a frame payload as a Response.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < 3 {
		return Response{}, fmt.Errorf("%w: response of %d bytes", ErrBadMessage, len(b))
	}
	var r Response
	r.Status = Status(b[0])
	if int(r.Status) >= len(statusNames) || statusNames[r.Status] == "" {
		return Response{}, fmt.Errorf("%w: unknown status %d", ErrBadMessage, b[0])
	}
	r.Vote, r.Outcome = b[1], b[2]
	result, rest, err := takeBytes(b[3:])
	if err != nil {
		return Response{}, err
	}
	if len(result) > 0 {
		r.Result = result
	}
	errMsg, rest, err := takeBytes(rest)
	if err != nil {
		return Response{}, err
	}
	r.Err = string(errMsg)
	if len(rest) != 0 {
		return Response{}, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(rest))
	}
	return r, nil
}
