package simplelog

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/logrec"
	"repro/internal/object"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// decodeAll reads the whole log forward and decodes every entry.
func decodeAll(t *testing.T, log *stablelog.Log) []*logrec.Entry {
	t.Helper()
	var rev []*logrec.Entry
	err := log.ReadBackward(log.LastAppended(), func(_ stablelog.LSN, p []byte) bool {
		e, err := logrec.Decode(logrec.Simple, p)
		if err != nil {
			t.Fatal(err)
		}
		rev = append(rev, e)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*logrec.Entry, len(rev))
	for i, e := range rev {
		out[len(rev)-1-i] = e
	}
	return out
}

type fixture struct {
	log    *stablelog.Log
	heap   *object.Heap
	as     *object.AccessSet
	pat    *object.PAT
	writer *Writer
}

func newFixture(t *testing.T) *fixture {
	f := &fixture{
		log:  newTestLog(t),
		heap: object.NewHeap(),
		as:   object.NewAccessSet(),
		pat:  object.NewPAT(),
	}
	f.writer = NewWriter(f.log, f.heap, f.as, f.pat)
	return f
}

// TestWritingScenarioFig3_6 reproduces the worked example of §3.3.3.2:
// stable var X → O1 → O2; T1 write-locks O2 and makes it point to a new
// atomic object O3. Prepare must write data(O2), base_committed(O3),
// prepared(T1) and grow the AS to {O1, O2, O3}.
func TestWritingScenarioFig3_6(t *testing.T) {
	f := newFixture(t)
	// In our runtime the figure's "O1" is the stable-variables object.
	o2 := object.NewAtomic(2, value.Int(2), ids.NoAction)
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("X", value.Ref{Target: o2}), ids.NoAction)
	f.heap.Register(root)
	f.heap.Register(o2)
	f.as.Add(root.UID())
	f.as.Add(o2.UID())

	// T1 gets a write lock on O2 and modifies it to point to new O3.
	if err := o2.AcquireWrite(tA); err != nil {
		t.Fatal(err)
	}
	o3 := object.NewAtomic(3, value.Int(3), tA) // T1 holds a read lock
	f.heap.Register(o3)
	if err := o2.Replace(tA, value.NewList(value.Ref{Target: o3})); err != nil {
		t.Fatal(err)
	}

	if err := f.writer.Prepare(tA, object.MOS{o2}); err != nil {
		t.Fatal(err)
	}

	entries := decodeAll(t, f.log)
	if len(entries) != 3 {
		t.Fatalf("log has %d entries, want 3: %v", len(entries), entries)
	}
	if entries[0].Kind != logrec.KindData || entries[0].UID != 2 || entries[0].AID != tA {
		t.Fatalf("entry 0 = %v, want data(O2,...,T1)", entries[0])
	}
	if entries[1].Kind != logrec.KindBaseCommitted || entries[1].UID != 3 {
		t.Fatalf("entry 1 = %v, want bc(O3,...)", entries[1])
	}
	if entries[2].Kind != logrec.KindPrepared || entries[2].AID != tA {
		t.Fatalf("entry 2 = %v, want prepared(T1)", entries[2])
	}
	// O2's flattened version references O3 by UID.
	v, err := value.Unflatten(entries[0].Value)
	if err != nil {
		t.Fatal(err)
	}
	if ref, ok := v.(*value.List).Elems[0].(value.UIDRef); !ok || ref.UID != 3 {
		t.Fatalf("flattened O2 = %s", value.String(v))
	}
	// AS now contains O1(root), O2, O3 — step 7 of the example.
	for _, u := range []ids.UID{ids.StableVarsUID, 2, 3} {
		if !f.as.Contains(u) {
			t.Errorf("AS missing %v", u)
		}
	}
	if !f.pat.Contains(tA) {
		t.Error("T1 not in PAT after prepare")
	}
}

// TestWritingScenarioFig3_5 drives the full 8-step history of Figure
// 3-5 through the writer, crashes, recovers, and checks that the
// recovered state matches step 8 ("the stable state ... will look
// exactly like the situation that existed before the crash in Step 8").
func TestWritingScenarioFig3_5(t *testing.T) {
	f := newFixture(t)
	// Step 1: X→O1, Y→O2, all committed (seeded by a setup action).
	o1 := object.NewAtomic(11, value.Int(1), ids.NoAction)
	o2 := object.NewAtomic(12, value.Int(2), ids.NoAction)
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("X", value.Ref{Target: o1}, "Y", value.Ref{Target: o2}), ids.NoAction)
	f.heap.Register(root)
	f.heap.Register(o1)
	f.heap.Register(o2)
	setup := ids.ActionID{Coordinator: gP, Seq: 100}
	if err := f.writer.Prepare(setup, object.MOS{root, o1, o2}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Commit(setup); err != nil {
		t.Fatal(err)
	}

	// Step 2: T2 write-locks O1, creates O3, points O1's version at it.
	tT2 := ids.ActionID{Coordinator: gP, Seq: 2}
	tT3 := ids.ActionID{Coordinator: gP, Seq: 3}
	if err := o1.AcquireWrite(tT2); err != nil {
		t.Fatal(err)
	}
	o3 := object.NewAtomic(13, value.Int(3), tT2)
	f.heap.Register(o3)
	o1.Replace(tT2, value.NewList(value.Ref{Target: o3}))

	// Step 3: T3 write-locks O2 and points it at O3 too.
	if err := o2.AcquireWrite(tT3); err != nil {
		t.Fatal(err)
	}
	o2.Replace(tT3, value.NewList(value.Ref{Target: o3}))

	// Step 4: T2 modifies O3.
	if err := o3.AcquireWrite(tT2); err != nil {
		t.Fatal(err)
	}
	o3.Replace(tT2, value.Int(33))

	// Step 5: T2 prepares (MOS = {O1, O3}).
	if err := f.writer.Prepare(tT2, object.MOS{o1, o3}); err != nil {
		t.Fatal(err)
	}
	// Step 6: T3 prepares (MOS = {O2}).
	if err := f.writer.Prepare(tT3, object.MOS{o2}); err != nil {
		t.Fatal(err)
	}
	// Step 7: T2 aborts. Step 8: T3 commits.
	if err := f.writer.Abort(tT2); err != nil {
		t.Fatal(err)
	}
	o1.Abort(tT2)
	o3.Abort(tT2)
	if err := f.writer.Commit(tT3); err != nil {
		t.Fatal(err)
	}
	o2.Commit(tT3)

	// Step 9: crash; then recover.
	tables, err := Recover(f.log)
	if err != nil {
		t.Fatal(err)
	}
	if tables.PT[tT2] != PartAborted || tables.PT[tT3] != PartCommitted {
		t.Fatalf("PT = %v", tables.PT)
	}
	// O1 reverted to Int(1).
	r1 := getAtomic(t, tables.Heap, 11)
	if !value.Equal(r1.Base(), value.Int(1)) {
		t.Errorf("O1 = %s, want 1", value.String(r1.Base()))
	}
	// O2 points at O3 (committed by T3).
	r2 := getAtomic(t, tables.Heap, 12)
	l, ok := r2.Base().(*value.List)
	if !ok {
		t.Fatalf("O2 = %s", value.String(r2.Base()))
	}
	r3 := getAtomic(t, tables.Heap, 13)
	if ref, ok := l.Elems[0].(value.Ref); !ok || ref.Target != value.Obj(r3) {
		t.Fatalf("O2's element = %s, want resolved ref to O3", value.String(l.Elems[0]))
	}
	// O3 survives with its *base* version (T2's write aborted).
	if !value.Equal(r3.Base(), value.Int(3)) {
		t.Errorf("O3 = %s, want base 3", value.String(r3.Base()))
	}
	// The AS rebuilt from the stable state contains root, O2, O3 and O1.
	for _, u := range []ids.UID{ids.StableVarsUID, 11, 12, 13} {
		if !tables.AS.Contains(u) {
			t.Errorf("recovered AS missing %v (AS=%v)", u, tables.AS.UIDs())
		}
	}
}

// TestPrepareSeedsEmptyASFromStableVars: a brand-new guardian's first
// prepare writes the whole initial stable state (writing algorithm
// step 2).
func TestPrepareSeedsEmptyASFromStableVars(t *testing.T) {
	f := newFixture(t)
	acct := object.NewAtomic(2, value.Int(100), tA)
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("account", value.Ref{Target: acct}), tA)
	f.heap.Register(root)
	f.heap.Register(acct)

	if err := f.writer.Prepare(tA, object.MOS{}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Commit(tA); err != nil {
		t.Fatal(err)
	}
	tables, err := Recover(f.log)
	if err != nil {
		t.Fatal(err)
	}
	rAcct := getAtomic(t, tables.Heap, 2)
	if !value.Equal(rAcct.Base(), value.Int(100)) {
		t.Fatalf("account = %s", value.String(rAcct.Base()))
	}
	rRoot, ok := tables.Heap.StableVars()
	if !ok {
		t.Fatal("stable variables object not restored")
	}
	ref := rRoot.Base().(*value.Record).Fields["account"].(value.Ref)
	if ref.Target != value.Obj(rAcct) {
		t.Fatal("stable variable does not reference the restored account")
	}
}

// TestPrepareWritesMutexInMOS: an accessible mutex in the MOS yields a
// plain data entry with the current version.
func TestPrepareWritesMutexInMOS(t *testing.T) {
	f := newFixture(t)
	m := object.NewMutex(2, value.Int(5))
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("m", value.Ref{Target: m}), ids.NoAction)
	f.heap.Register(root)
	f.heap.Register(m)
	f.as.Add(root.UID())
	f.as.Add(m.UID())

	m.Seize(tA, func(value.Value) value.Value { return value.Int(6) })
	if err := f.writer.Prepare(tA, object.MOS{m}); err != nil {
		t.Fatal(err)
	}
	entries := decodeAll(t, f.log)
	if entries[0].Kind != logrec.KindData || entries[0].ObjType != object.KindMutex {
		t.Fatalf("entry 0 = %v", entries[0])
	}
	v, _ := value.Unflatten(entries[0].Value)
	if !value.Equal(v, value.Int(6)) {
		t.Fatalf("mutex version = %s", value.String(v))
	}
}

// TestPrepareNewlyAccessibleMutex: a newly accessible mutex gets a
// plain data entry under the preparing action (§3.3.3.2), and its
// version survives recovery even if the action aborts afterwards.
func TestPrepareNewlyAccessibleMutex(t *testing.T) {
	f := newFixture(t)
	box := object.NewAtomic(2, value.Int(0), ids.NoAction)
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("box", value.Ref{Target: box}), ids.NoAction)
	f.heap.Register(root)
	f.heap.Register(box)
	f.as.Add(root.UID())
	f.as.Add(box.UID())

	m := object.NewMutex(3, value.Str("fresh"))
	f.heap.Register(m)
	if err := box.AcquireWrite(tA); err != nil {
		t.Fatal(err)
	}
	box.Replace(tA, value.NewList(value.Ref{Target: m}))

	if err := f.writer.Prepare(tA, object.MOS{box}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Abort(tA); err != nil {
		t.Fatal(err)
	}
	box.Abort(tA)

	tables, err := Recover(f.log)
	if err != nil {
		t.Fatal(err)
	}
	rm := getMutex(t, tables.Heap, 3)
	if !value.Equal(rm.Current(), value.Str("fresh")) {
		t.Fatalf("mutex = %s, want the prepared version", value.String(rm.Current()))
	}
}

// TestPrepareNewlyAccessibleLockedByPreparedAction reproduces the
// prepared_data case: action A modified object O (inaccessible at A's
// prepare), then B makes O accessible and prepares. Both of O's
// versions must be written — the current in case A commits, the base
// in case A aborts.
func TestPrepareNewlyAccessibleLockedByPreparedAction(t *testing.T) {
	f := newFixture(t)
	holder := object.NewAtomic(2, value.Int(0), ids.NoAction)
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("h", value.Ref{Target: holder}), ids.NoAction)
	f.heap.Register(root)
	f.heap.Register(holder)
	f.as.Add(root.UID())
	f.as.Add(holder.UID())

	// O is not accessible. A write-locks and modifies it, then prepares
	// (nothing written for O — it's inaccessible).
	o := object.NewAtomic(3, value.Int(1), ids.NoAction)
	f.heap.Register(o)
	aA := ids.ActionID{Coordinator: gP, Seq: 10}
	aB := ids.ActionID{Coordinator: gP, Seq: 11}
	if err := o.AcquireWrite(aA); err != nil {
		t.Fatal(err)
	}
	o.Replace(aA, value.Int(2))
	if err := f.writer.Prepare(aA, object.MOS{o}); err != nil {
		t.Fatal(err)
	}
	entries := decodeAll(t, f.log)
	if len(entries) != 1 || entries[0].Kind != logrec.KindPrepared {
		t.Fatalf("A's prepare wrote %v, want only prepared(A)", entries)
	}

	// B makes O accessible and prepares.
	if err := holder.AcquireWrite(aB); err != nil {
		t.Fatal(err)
	}
	holder.Replace(aB, value.NewList(value.Ref{Target: o}))
	if err := f.writer.Prepare(aB, object.MOS{holder}); err != nil {
		t.Fatal(err)
	}

	entries = decodeAll(t, f.log)
	// prepared(A), data(holder,B), bc(O,base), pd(O,cur,A), prepared(B)
	kinds := make([]logrec.Kind, len(entries))
	for i, e := range entries {
		kinds[i] = e.Kind
	}
	want := []logrec.Kind{logrec.KindPrepared, logrec.KindData,
		logrec.KindBaseCommitted, logrec.KindPreparedData, logrec.KindPrepared}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	pd := entries[3]
	if pd.UID != 3 || pd.AID != aA {
		t.Fatalf("prepared_data = %v, want O3 under action A", pd)
	}

	// Crash now; A must come back prepared and write-locking O.
	tables, err := Recover(f.log)
	if err != nil {
		t.Fatal(err)
	}
	rO := getAtomic(t, tables.Heap, 3)
	if rO.Writer() != aA {
		t.Fatalf("O writer = %v, want A", rO.Writer())
	}
	if cur, ok := rO.Current(); !ok || !value.Equal(cur, value.Int(2)) {
		t.Fatalf("O current = %v", cur)
	}
	if !value.Equal(rO.Base(), value.Int(1)) {
		t.Fatalf("O base = %s", value.String(rO.Base()))
	}
}

// TestPrepareNewlyAccessibleLockedByUnpreparedAction: if the other
// writer has NOT prepared, only the base version is written.
func TestPrepareNewlyAccessibleLockedByUnpreparedAction(t *testing.T) {
	f := newFixture(t)
	holder := object.NewAtomic(2, value.Int(0), ids.NoAction)
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("h", value.Ref{Target: holder}), ids.NoAction)
	f.heap.Register(root)
	f.heap.Register(holder)
	f.as.Add(root.UID())
	f.as.Add(holder.UID())

	o := object.NewAtomic(3, value.Int(1), ids.NoAction)
	f.heap.Register(o)
	aA := ids.ActionID{Coordinator: gP, Seq: 10} // modifies O, not prepared
	aB := ids.ActionID{Coordinator: gP, Seq: 11}
	if err := o.AcquireWrite(aA); err != nil {
		t.Fatal(err)
	}
	o.Replace(aA, value.Int(2))

	if err := holder.AcquireWrite(aB); err != nil {
		t.Fatal(err)
	}
	holder.Replace(aB, value.NewList(value.Ref{Target: o}))
	if err := f.writer.Prepare(aB, object.MOS{holder}); err != nil {
		t.Fatal(err)
	}
	for _, e := range decodeAll(t, f.log) {
		if e.Kind == logrec.KindPreparedData {
			t.Fatalf("prepared_data written for unprepared action: %v", e)
		}
		if e.Kind == logrec.KindData && e.UID == 3 {
			t.Fatalf("current version of O written for unprepared action: %v", e)
		}
	}
}

// TestCommitAbortMaintainPAT checks PAT bookkeeping across the
// participant's outcomes.
func TestCommitAbortMaintainPAT(t *testing.T) {
	f := newFixture(t)
	root := object.NewAtomic(ids.StableVarsUID, value.RecordOf(), ids.NoAction)
	f.heap.Register(root)
	if err := f.writer.Prepare(tA, object.MOS{}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Prepare(tB, object.MOS{}); err != nil {
		t.Fatal(err)
	}
	if f.pat.Len() != 2 {
		t.Fatalf("PAT len = %d", f.pat.Len())
	}
	f.writer.Commit(tA)
	f.writer.Abort(tB)
	if f.pat.Len() != 0 {
		t.Fatalf("PAT after outcomes = %d", f.pat.Len())
	}
}

// TestCoordinatorEntries checks committing/done encoding through the
// writer.
func TestCoordinatorEntries(t *testing.T) {
	f := newFixture(t)
	if err := f.writer.Committing(tA, []ids.GuardianID{5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Done(tA); err != nil {
		t.Fatal(err)
	}
	entries := decodeAll(t, f.log)
	if entries[0].Kind != logrec.KindCommitting || len(entries[0].GIDs) != 2 {
		t.Fatalf("entry 0 = %v", entries[0])
	}
	if entries[1].Kind != logrec.KindDone {
		t.Fatalf("entry 1 = %v", entries[1])
	}
}

func TestWriterAccessorsAndStates(t *testing.T) {
	f := newFixture(t)
	if f.writer.Log() != f.log || f.writer.PAT() != f.pat || f.writer.AS() != f.as {
		t.Fatal("accessors wrong")
	}
	if PartPrepared.String() != "prepared" || PartCommitted.String() != "committed" ||
		PartAborted.String() != "aborted" || PartState(9).String() == "" {
		t.Fatal("PartState strings wrong")
	}
	if CoordCommitting.String() != "committing" || CoordDone.String() != "done" ||
		CoordState(9).String() == "" {
		t.Fatal("CoordState strings wrong")
	}
}

func TestWriterTrimAS(t *testing.T) {
	f := newFixture(t)
	kept := object.NewAtomic(2, value.Int(1), ids.NoAction)
	dropped := object.NewAtomic(3, value.Int(2), ids.NoAction)
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("k", value.Ref{Target: kept}), ids.NoAction)
	f.heap.Register(root)
	f.heap.Register(kept)
	f.heap.Register(dropped)
	f.as.Add(root.UID())
	f.as.Add(kept.UID())
	f.as.Add(dropped.UID()) // stale: not reachable
	f.writer.TrimAS()
	if f.as.Contains(dropped.UID()) {
		t.Fatal("unreachable UID survived trim")
	}
	if !f.as.Contains(kept.UID()) || !f.as.Contains(root.UID()) {
		t.Fatal("reachable UIDs dropped")
	}
}
