// Package simplelog implements the simple log of thesis chapter 3: the
// algorithm for writing recoverable objects to the log as a top-level
// action prepares (§3.3) and the algorithm for recovering the guardian's
// stable state from the log after a crash (§3.4).
//
// The simple log is the "pure log" end of the organization spectrum
// (§1.2): writing is fast (append-only, one force per outcome), but
// recovery must read and decode every log entry.
package simplelog

import (
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/logrec"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// Writer runs the participant- and coordinator-side writing algorithms
// against one guardian's simple log. The mutex serializes mutation of
// the writer's volatile tables (AS, PAT) and the log appends; the force
// that makes an outcome durable happens *outside* the mutex via
// ForceTo, so concurrent actions share force barriers (group commit)
// instead of queueing behind each other's device writes. Durability is
// a log-prefix property: once an outcome entry is appended under the
// mutex, any force that covers it — whoever ran it — makes it durable,
// and the tables may be updated at append time because every later
// prepare's force also covers every earlier append.
type Writer struct {
	mu   sync.Mutex
	log  *stablelog.Log
	heap *object.Heap
	as   *object.AccessSet
	pat  *object.PAT
	tr   obs.Tracer // guarded by mu; nil traces nothing
}

// SetTracer installs the writer's event tracer: outcome appends and
// acknowledgments plus crit.enter/crit.exit brackets around the writer
// mutex, which obs.Checker's lock-discipline rule consumes.
func (w *Writer) SetTracer(tr obs.Tracer) {
	w.mu.Lock()
	w.tr = tr
	w.mu.Unlock()
}

// enterCrit / exitCrit emit the critical-section brackets; callers
// hold w.mu.
func (w *Writer) enterCrit() {
	if w.tr != nil {
		w.tr.Emit(obs.Event{Kind: obs.KindCritEnter})
	}
}

func (w *Writer) exitCrit() {
	if w.tr != nil {
		w.tr.Emit(obs.Event{Kind: obs.KindCritExit})
	}
}

// emitOutcome reports an outcome entry appended (and, with
// KindOutcomeDurable, acknowledged durable). appended emissions run
// under w.mu; durable emissions run after the force, outside it.
func emitOutcome(tr obs.Tracer, kind obs.Kind, code obs.OutcomeKind, aid ids.ActionID, lsn stablelog.LSN) {
	if tr != nil {
		tr.Emit(obs.Event{Kind: kind, Code: uint8(code), AID: aid, LSN: uint64(lsn)})
	}
}

// NewWriter returns a writer over log for a guardian whose volatile
// state is heap. as is the guardian's accessibility set and pat its
// prepared actions table; a brand-new guardian starts with both empty.
func NewWriter(log *stablelog.Log, heap *object.Heap, as *object.AccessSet, pat *object.PAT) *Writer {
	return &Writer{log: log, heap: heap, as: as, pat: pat}
}

// Log returns the underlying stable log.
func (w *Writer) Log() *stablelog.Log { return w.log }

// PAT returns the prepared actions table the writer maintains.
func (w *Writer) PAT() *object.PAT { return w.pat }

// AS returns the accessibility set the writer maintains.
func (w *Writer) AS() *object.AccessSet { return w.as }

// Prepare runs the writing algorithm of §3.3.3.3 for action aid with
// modified-objects set mos, then forces the prepared outcome entry.
// After Prepare returns the participant may reply "prepared" to the
// coordinator.
//
// The PAT entry is added at append time, before the force: a concurrent
// prepare that sees an object write-locked by aid must then write aid's
// current version as prepared_data, and that is correct because the
// concurrent prepare's own force covers aid's already-appended prepared
// entry. If the force fails the entry is rolled back.
func (w *Writer) Prepare(aid ids.ActionID, mos object.MOS) error {
	w.mu.Lock()
	w.enterCrit()
	// Steps 2–4: data, base_committed and prepared_data entries.
	if err := w.writeDataEntries(aid, mos); err != nil {
		w.exitCrit()
		w.mu.Unlock()
		return err
	}
	// Step 5: append the prepared outcome entry and enter the PAT; the
	// force happens after the unlock so concurrent prepares coalesce.
	lsn, err := w.log.Write(logrec.Encode(logrec.Simple, &logrec.Entry{
		Kind: logrec.KindPrepared,
		AID:  aid,
	}))
	if err != nil {
		w.exitCrit()
		w.mu.Unlock()
		return err
	}
	w.pat.Add(aid)
	emitOutcome(w.tr, obs.KindOutcomeAppend, obs.OutcomePrepared, aid, lsn)
	w.exitCrit()
	tr := w.tr
	w.mu.Unlock()

	if err := w.log.ForceTo(lsn); err != nil {
		w.mu.Lock()
		w.pat.Remove(aid)
		w.mu.Unlock()
		return err
	}
	emitOutcome(tr, obs.KindOutcomeDurable, obs.OutcomePrepared, aid, lsn)
	return nil
}

// writeDataEntries runs steps 2–4 of §3.3.3.3, appending the data,
// base_committed and prepared_data entries for aid's MOS. The caller
// holds w.mu.
func (w *Writer) writeDataEntries(aid ids.ActionID, mos object.MOS) error {
	naos := newNAOS()
	// Step 2: a just-created guardian has an empty AS; seed the NAOS
	// with the stable-variables object so the whole initial stable
	// state is written.
	if w.as.Len() == 0 {
		if root, ok := w.heap.StableVars(); ok {
			naos.add(root)
		}
	}

	// Step 3: process the MOS.
	for _, obj := range mos {
		if !w.as.Contains(obj.UID()) {
			// Step 3c: not accessible (or newly accessible — the NAOS
			// pass will discover and handle it).
			continue
		}
		if err := w.writeDataEntry(aid, obj, naos); err != nil {
			return err
		}
	}

	// Step 4: process the NAOS until empty; processing one object may
	// reveal more newly accessible objects.
	for {
		obj, ok := naos.pop()
		if !ok {
			break
		}
		if err := w.writeNewlyAccessible(aid, obj, naos); err != nil {
			return err
		}
		w.as.Add(obj.UID())
	}
	return nil
}

// writeDataEntry copies the version of obj visible to aid and writes a
// data entry, feeding referenced not-yet-accessible objects to the NAOS.
func (w *Writer) writeDataEntry(aid ids.ActionID, obj object.Recoverable, naos *naos) error {
	var flat []byte
	switch o := obj.(type) {
	case *object.Atomic:
		flat = o.SnapshotFor(aid, naos.visitor(w.as))
	case *object.Mutex:
		flat = o.Snapshot(naos.visitor(w.as))
	default:
		return fmt.Errorf("simplelog: unknown recoverable type %T", obj)
	}
	_, err := w.log.Write(logrec.Encode(logrec.Simple, &logrec.Entry{
		Kind:    logrec.KindData,
		UID:     obj.UID(),
		ObjType: obj.Kind(),
		Value:   flat,
		AID:     aid,
	}))
	return err
}

// writeNewlyAccessible handles one newly accessible object per the case
// analysis of §3.3.3.3 step 4.
func (w *Writer) writeNewlyAccessible(aid ids.ActionID, obj object.Recoverable, naos *naos) error {
	switch o := obj.(type) {
	case *object.Mutex:
		// A newly accessible mutex object is no problem: one data entry
		// with the current version suffices, because mutex versions are
		// restored regardless of the writing action's fate (§3.3.3.2).
		return w.writeDataEntry(aid, obj, naos)

	case *object.Atomic:
		writer := o.Writer()
		switch {
		case writer == aid:
			// The preparing action write-locks the object: write the
			// base version as base_committed and the current version as
			// an ordinary data entry.
			if err := w.writeBaseCommitted(o, naos); err != nil {
				return err
			}
			return w.writeDataEntry(aid, obj, naos)

		case writer.IsZero():
			// Read-locked by this action (newly created) or unlocked:
			// a single version; write it as base_committed.
			return w.writeBaseCommitted(o, naos)

		default:
			// Write-locked by some other action A.
			if w.pat.Contains(writer) {
				// A has prepared: its current version must survive in
				// case A commits, and the base version in case A aborts.
				if err := w.writeBaseCommitted(o, naos); err != nil {
					return err
				}
				flat, ok := o.SnapshotCurrent(naos.visitor(w.as))
				if !ok {
					return fmt.Errorf("simplelog: %v write-locked by %v but has no current version", o.UID(), writer)
				}
				_, err := w.log.Write(logrec.Encode(logrec.Simple, &logrec.Entry{
					Kind:  logrec.KindPreparedData,
					UID:   o.UID(),
					AID:   writer,
					Value: flat,
				}))
				return err
			}
			// A has not prepared: only the base version need survive.
			return w.writeBaseCommitted(o, naos)
		}

	default:
		return fmt.Errorf("simplelog: unknown recoverable type %T", obj)
	}
}

func (w *Writer) writeBaseCommitted(o *object.Atomic, naos *naos) error {
	flat := o.SnapshotBase(naos.visitor(w.as))
	_, err := w.log.Write(logrec.Encode(logrec.Simple, &logrec.Entry{
		Kind:  logrec.KindBaseCommitted,
		UID:   o.UID(),
		Value: flat,
	}))
	return err
}

// Commit appends and forces the committed outcome entry for aid and
// drops it from the PAT (§3.3.2). The force runs outside the writer
// mutex so concurrent committers share one force barrier.
func (w *Writer) Commit(aid ids.ActionID) error {
	w.mu.Lock()
	w.enterCrit()
	lsn, err := w.log.Write(logrec.Encode(logrec.Simple, &logrec.Entry{
		Kind: logrec.KindCommitted,
		AID:  aid,
	}))
	if err == nil {
		emitOutcome(w.tr, obs.KindOutcomeAppend, obs.OutcomeCommitted, aid, lsn)
	}
	w.exitCrit()
	tr := w.tr
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if err := w.log.ForceTo(lsn); err != nil {
		return err
	}
	emitOutcome(tr, obs.KindOutcomeDurable, obs.OutcomeCommitted, aid, lsn)
	w.mu.Lock()
	w.pat.Remove(aid)
	w.mu.Unlock()
	return nil
}

// Abort appends and forces the aborted outcome entry for aid and drops
// it from the PAT (§3.3.2).
func (w *Writer) Abort(aid ids.ActionID) error {
	w.mu.Lock()
	w.enterCrit()
	lsn, err := w.log.Write(logrec.Encode(logrec.Simple, &logrec.Entry{
		Kind: logrec.KindAborted,
		AID:  aid,
	}))
	if err == nil {
		emitOutcome(w.tr, obs.KindOutcomeAppend, obs.OutcomeAborted, aid, lsn)
	}
	w.exitCrit()
	tr := w.tr
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if err := w.log.ForceTo(lsn); err != nil {
		return err
	}
	emitOutcome(tr, obs.KindOutcomeDurable, obs.OutcomeAborted, aid, lsn)
	w.mu.Lock()
	w.pat.Remove(aid)
	w.mu.Unlock()
	return nil
}

// Committing appends and forces the coordinator's committing outcome
// entry naming the participant guardians; once it is on the log the
// action is committed (§3.3.1).
func (w *Writer) Committing(aid ids.ActionID, gids []ids.GuardianID) error {
	w.mu.Lock()
	w.enterCrit()
	lsn, err := w.log.Write(logrec.Encode(logrec.Simple, &logrec.Entry{
		Kind: logrec.KindCommitting,
		AID:  aid,
		GIDs: gids,
	}))
	if err == nil {
		emitOutcome(w.tr, obs.KindOutcomeAppend, obs.OutcomeCommitting, aid, lsn)
	}
	w.exitCrit()
	tr := w.tr
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if err := w.log.ForceTo(lsn); err != nil {
		return err
	}
	emitOutcome(tr, obs.KindOutcomeDurable, obs.OutcomeCommitting, aid, lsn)
	return nil
}

// Done appends and forces the coordinator's done outcome entry;
// two-phase commit is complete (§3.3.1).
func (w *Writer) Done(aid ids.ActionID) error {
	w.mu.Lock()
	w.enterCrit()
	lsn, err := w.log.Write(logrec.Encode(logrec.Simple, &logrec.Entry{
		Kind: logrec.KindDone,
		AID:  aid,
	}))
	if err == nil {
		emitOutcome(w.tr, obs.KindOutcomeAppend, obs.OutcomeDone, aid, lsn)
	}
	w.exitCrit()
	tr := w.tr
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if err := w.log.ForceTo(lsn); err != nil {
		return err
	}
	emitOutcome(tr, obs.KindOutcomeDurable, obs.OutcomeDone, aid, lsn)
	return nil
}

// TrimAS trims the accessibility set (§3.3.3.2): actions that make
// objects unreachable leave their UIDs in the AS, so it grows into a
// superset of the stable state. Trimming traverses the objects
// reachable from the stable variables into a fresh set and intersects
// it with the old one — the intersection (rather than replacement)
// drops objects that became newly accessible during the traversal,
// which must keep being treated as newly accessible by the writing
// algorithm.
func (w *Writer) TrimAS() {
	fresh := w.heap.AccessibleSet()
	w.mu.Lock()
	defer w.mu.Unlock()
	fresh.Intersect(w.as)
	w.as.ReplaceWith(fresh)
}

// naos is the newly accessible objects set (§3.3.3.2): a work queue of
// recoverable objects discovered during flattening whose UIDs are not
// in the accessibility set.
type naos struct {
	queue  []object.Recoverable
	queued map[ids.UID]bool
}

func newNAOS() *naos {
	return &naos{queued: make(map[ids.UID]bool)}
}

func (n *naos) add(obj object.Recoverable) {
	if n.queued[obj.UID()] {
		return
	}
	n.queued[obj.UID()] = true
	n.queue = append(n.queue, obj)
}

func (n *naos) pop() (object.Recoverable, bool) {
	if len(n.queue) == 0 {
		return nil, false
	}
	obj := n.queue[0]
	n.queue = n.queue[1:]
	return obj, true
}

// visitor returns the flattening callback that checks the AS for every
// recoverable object the copy comes across and queues the newly
// accessible ones. queued membership is retained across pops so an
// object already processed in this prepare is not re-queued.
func (n *naos) visitor(as *object.AccessSet) func(value.Obj) {
	return func(ref value.Obj) {
		obj, ok := ref.(object.Recoverable)
		if !ok {
			return
		}
		if as.Contains(obj.UID()) {
			return
		}
		n.add(obj)
	}
}
