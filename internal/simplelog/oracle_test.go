package simplelog

// Property test: the backward-scan recovery algorithm (§3.4.4) is
// equivalent to the forward-replay semantics of the log — for random
// interleaved action histories, replaying the log chronologically with
// the thesis's commit/abort/mutex rules yields exactly the object state
// recovery reconstructs.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ids"
	"repro/internal/logrec"
	"repro/internal/object"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// oracleState is the forward-replay interpretation of a simple log.
type oracleState struct {
	base   map[ids.UID]value.Value // committed versions (atomic base / mutex current)
	kind   map[ids.UID]object.Kind
	writer map[ids.UID]ids.ActionID // write lock of a still-prepared action
	cur    map[ids.UID]value.Value  // that action's current version
	status map[ids.ActionID]PartState
}

func newOracle() *oracleState {
	return &oracleState{
		base:   make(map[ids.UID]value.Value),
		kind:   make(map[ids.UID]object.Kind),
		writer: make(map[ids.UID]ids.ActionID),
		cur:    make(map[ids.UID]value.Value),
		status: make(map[ids.ActionID]PartState),
	}
}

// replay applies the log entries chronologically.
func (o *oracleState) replay(entries []*logrec.Entry) error {
	// pending data per action, in write order.
	type write struct {
		uid  ids.UID
		kind object.Kind
		v    value.Value
	}
	pending := make(map[ids.ActionID][]write)
	for _, e := range entries {
		switch e.Kind {
		case logrec.KindData:
			v, err := value.Unflatten(e.Value)
			if err != nil {
				return err
			}
			pending[e.AID] = append(pending[e.AID], write{e.UID, e.ObjType, v})
		case logrec.KindBaseCommitted:
			v, err := value.Unflatten(e.Value)
			if err != nil {
				return err
			}
			// The committed base version of a newly accessible object.
			o.base[e.UID] = v
			o.kind[e.UID] = object.KindAtomic
		case logrec.KindPreparedData:
			v, err := value.Unflatten(e.Value)
			if err != nil {
				return err
			}
			// The current version of an object write-locked by an
			// already prepared action: as if that action had written it
			// in its own prepare.
			pending[e.AID] = append(pending[e.AID], write{e.UID, object.KindAtomic, v})
		case logrec.KindPrepared:
			o.status[e.AID] = PartPrepared
			for _, w := range pending[e.AID] {
				o.kind[w.uid] = w.kind
				if w.kind == object.KindMutex {
					// Mutex versions take effect at prepare (§2.4.2).
					o.base[w.uid] = w.v
				} else {
					o.writer[w.uid] = e.AID
					o.cur[w.uid] = w.v
				}
			}
		case logrec.KindCommitted:
			o.status[e.AID] = PartCommitted
			for _, w := range pending[e.AID] {
				if w.kind == object.KindAtomic {
					o.base[w.uid] = w.v
				}
				if o.writer[w.uid] == e.AID {
					delete(o.writer, w.uid)
					delete(o.cur, w.uid)
				}
			}
		case logrec.KindAborted:
			o.status[e.AID] = PartAborted
			for _, w := range pending[e.AID] {
				if o.writer[w.uid] == e.AID {
					delete(o.writer, w.uid)
					delete(o.cur, w.uid)
				}
			}
		}
	}
	return nil
}

// genHistory writes a random history to the log and returns the
// chronological entries. The recovery-system operations are sequential
// (§2.3), so each action's data entries and prepared entry form a
// contiguous block; verdict entries interleave freely between other
// actions' blocks.
func genHistory(t *testing.T, rng *rand.Rand, log *stablelog.Log) []*logrec.Entry {
	t.Helper()
	const nUIDs = 8
	kinds := make([]object.Kind, nUIDs)
	for i := range kinds {
		if rng.Intn(3) == 0 {
			kinds[i] = object.KindMutex
		} else {
			kinds[i] = object.KindAtomic
		}
	}
	// Write locks: one pending writer per atomic uid at a time.
	locked := make(map[ids.UID]bool)

	type actionRun struct {
		aid    ids.ActionID
		uids   []ids.UID
		phase  int // 0 = not yet prepared, 1 = prepared, 2 = finished
		commit bool
	}
	var runs []*actionRun
	nActions := 4 + rng.Intn(5)
	for i := 0; i < nActions; i++ {
		r := &actionRun{
			aid:    ids.ActionID{Coordinator: 1, Seq: uint64(i + 1)},
			commit: rng.Intn(2) == 0,
		}
		for u := ids.UID(1); u <= nUIDs; u++ {
			if rng.Intn(3) != 0 {
				continue
			}
			if kinds[u-1] == object.KindAtomic {
				if locked[u] {
					continue
				}
				locked[u] = true
			}
			r.uids = append(r.uids, u)
		}
		runs = append(runs, r)
	}

	var entries []*logrec.Entry
	emit := func(e *logrec.Entry) {
		entries = append(entries, e)
		if _, err := log.Write(logrec.Encode(logrec.Simple, e)); err != nil {
			t.Fatal(err)
		}
	}
	for {
		// Pick a random unfinished action.
		var live []*actionRun
		for _, r := range runs {
			if r.phase < 2 {
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			break
		}
		r := live[rng.Intn(len(live))]
		switch r.phase {
		case 0:
			// The whole prepare runs as one sequential operation.
			for _, u := range r.uids {
				v := value.Int(int64(u)*1000 + int64(r.aid.Seq)*10)
				emit(&logrec.Entry{Kind: logrec.KindData, UID: u,
					ObjType: kinds[u-1], Value: value.Flatten(v, nil), AID: r.aid})
			}
			emit(&logrec.Entry{Kind: logrec.KindPrepared, AID: r.aid})
			r.phase = 1
		case 1:
			// Sometimes leave it prepared forever (in doubt at the
			// crash); release nothing in that case.
			if rng.Intn(5) == 0 {
				r.phase = 2
				continue
			}
			kind := logrec.KindAborted
			if r.commit {
				kind = logrec.KindCommitted
			}
			emit(&logrec.Entry{Kind: kind, AID: r.aid})
			for _, u := range r.uids {
				if kinds[u-1] == object.KindAtomic {
					delete(locked, u)
				}
			}
			r.phase = 2
		}
	}
	if err := log.Force(); err != nil {
		t.Fatal(err)
	}
	return entries
}

func TestRecoveryMatchesForwardReplay(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			log := newTestLog(t)
			entries := genHistory(t, rng, log)

			oracle := newOracle()
			if err := oracle.replay(entries); err != nil {
				t.Fatal(err)
			}
			tables, err := Recover(log)
			if err != nil {
				t.Fatal(err)
			}

			// Action states agree.
			for aid, st := range oracle.status {
				if tables.PT[aid] != st {
					t.Fatalf("PT[%v] = %v, oracle %v", aid, tables.PT[aid], st)
				}
			}
			// Object states agree.
			for uid, want := range oracle.base {
				obj, ok := tables.Heap.Lookup(uid)
				if !ok {
					t.Fatalf("%v missing from recovery (oracle %s)", uid, value.String(want))
				}
				switch x := obj.(type) {
				case *object.Atomic:
					if !value.Equal(x.Base(), want) {
						t.Fatalf("%v base = %s, oracle %s", uid,
							value.String(x.Base()), value.String(want))
					}
					wantWriter := oracle.writer[uid]
					if x.Writer() != wantWriter {
						t.Fatalf("%v writer = %v, oracle %v", uid, x.Writer(), wantWriter)
					}
					if !wantWriter.IsZero() {
						cur, okc := x.Current()
						if !okc || !value.Equal(cur, oracle.cur[uid]) {
							t.Fatalf("%v current = %v, oracle %s", uid, cur,
								value.String(oracle.cur[uid]))
						}
					}
				case *object.Mutex:
					if !value.Equal(x.Current(), want) {
						t.Fatalf("%v mutex = %s, oracle %s", uid,
							value.String(x.Current()), value.String(want))
					}
				}
			}
			// Recovery must not invent objects: atomics write-locked by
			// a prepared action but with no committed base are the only
			// extras allowed.
			for _, uid := range tables.Heap.UIDs() {
				if _, known := oracle.base[uid]; known {
					continue
				}
				obj, _ := tables.Heap.Lookup(uid)
				a, isAtomic := obj.(*object.Atomic)
				if !isAtomic || a.Writer().IsZero() {
					t.Fatalf("recovery invented %v", uid)
				}
			}
		})
	}
}
