package simplelog

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/logrec"
	"repro/internal/object"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// PartState is a participant action state in the PT (§3.4.1).
type PartState uint8

const (
	// PartPrepared means the action prepared and awaits the verdict.
	PartPrepared PartState = iota + 1
	// PartCommitted means the action committed.
	PartCommitted
	// PartAborted means the action aborted.
	PartAborted
)

func (s PartState) String() string {
	switch s {
	case PartPrepared:
		return "prepared"
	case PartCommitted:
		return "committed"
	case PartAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// CoordState is a coordinator action state in the CT (§3.4.2, scenario 4).
type CoordState uint8

const (
	// CoordCommitting means phase two of two-phase commit was under way.
	CoordCommitting CoordState = iota + 1
	// CoordDone means two-phase commit completed.
	CoordDone
)

func (s CoordState) String() string {
	switch s {
	case CoordCommitting:
		return "committing"
	case CoordDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// CoordInfo is a CT row: the state plus, for committing, the guardians
// participating in the action.
type CoordInfo struct {
	State CoordState
	GIDs  []ids.GuardianID
}

// ObjState is an object state in the OT.
type ObjState uint8

const (
	// ObjPrepared: the restored current version was written by an action
	// that prepared but had not committed; the latest committed version
	// (the base) is still owed.
	ObjPrepared ObjState = iota + 1
	// ObjRestored: the object is fully restored.
	ObjRestored
)

// Tables is what recovery returns to the Argus system (§3.4.1 step 5):
// the participant table, the coordinator table, and — standing in for
// the OT's "vm addresses" — the reconstructed volatile heap, plus the
// rebuilt accessibility set, prepared actions table, and the largest
// UID seen (to which the stable counter is reset).
type Tables struct {
	PT     map[ids.ActionID]PartState
	CT     map[ids.ActionID]CoordInfo
	Heap   *object.Heap
	AS     *object.AccessSet
	PAT    *object.PAT
	MaxUID ids.UID
	// EntriesRead counts log entries processed, the cost measure that
	// separates the simple log from the hybrid log (§4.1).
	EntriesRead int
}

// otRow is the object table row built during the backward scan; objects
// are materialized only after the scan, then reference-resolved.
type otRow struct {
	kind   object.Kind
	state  ObjState
	base   value.Value // atomic: base version; mutex: the single version
	cur    value.Value // atomic with writer: in-progress version
	writer ids.ActionID
}

// Recover reconstructs a guardian's stable state from its simple log
// after a crash, per the general recovery algorithm of §3.4.4.
func Recover(log *stablelog.Log) (*Tables, error) {
	r := &recovery{
		ot: make(map[ids.UID]*otRow),
		t: &Tables{
			PT: make(map[ids.ActionID]PartState),
			CT: make(map[ids.ActionID]CoordInfo),
		},
	}
	err := log.ReadBackward(log.Top(), func(lsn stablelog.LSN, payload []byte) bool {
		e, derr := logrec.Decode(logrec.Simple, payload)
		if derr != nil {
			r.err = fmt.Errorf("simplelog: entry at %v: %w", lsn, derr)
			return false
		}
		r.t.EntriesRead++
		r.process(e)
		return r.err == nil
	})
	if err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	return r.finish()
}

type recovery struct {
	ot  map[ids.UID]*otRow
	t   *Tables
	err error
}

// process handles one log entry during the backward scan (§3.4.4 step 2).
func (r *recovery) process(e *logrec.Entry) {
	switch e.Kind {
	case logrec.KindPrepared:
		// 2.a: keep only the latest verdict.
		if _, known := r.t.PT[e.AID]; !known {
			r.t.PT[e.AID] = PartPrepared
		}

	case logrec.KindCommitted:
		// 2.b. Reading backward, the verdict is seen before the prepare.
		if _, known := r.t.PT[e.AID]; !known {
			r.t.PT[e.AID] = PartCommitted
		}

	case logrec.KindAborted:
		// 2.c.
		if _, known := r.t.PT[e.AID]; !known {
			r.t.PT[e.AID] = PartAborted
		}

	case logrec.KindBaseCommitted:
		// 2.d: a base version for a newly accessible atomic object.
		r.applyBaseVersion(e.UID, e.Value)

	case logrec.KindPreparedData:
		// 2.e: a current version written on behalf of another action
		// that had prepared when the entry was written.
		switch r.t.PT[e.AID] {
		case PartAborted:
			// 2.e.i: discarded.
		case PartCommitted:
			// 2.e.i: the action committed, so this version is the latest
			// committed one; it plays the base-version role.
			r.applyBaseVersion(e.UID, e.Value)
		case PartPrepared:
			// Verdict arrived between this entry and the crash? A
			// prepared outcome later in the log put the action in the
			// PT; treat like the unknown case below.
			fallthrough
		default:
			// 2.e.ii: no verdict on the log — the action is still
			// prepared (its prepared entry appears earlier in the log).
			if _, known := r.t.PT[e.AID]; !known {
				r.t.PT[e.AID] = PartPrepared
			}
			if _, seen := r.ot[e.UID]; !seen {
				v, err := r.unflatten(e.Value)
				if err != nil {
					return
				}
				r.ot[e.UID] = &otRow{
					kind:   object.KindAtomic,
					state:  ObjPrepared,
					cur:    v,
					writer: e.AID,
				}
			}
		}

	case logrec.KindCommitting:
		// 2.f.
		if _, known := r.t.CT[e.AID]; !known {
			r.t.CT[e.AID] = CoordInfo{State: CoordCommitting, GIDs: e.GIDs}
		}

	case logrec.KindDone:
		// 2.g.
		if _, known := r.t.CT[e.AID]; !known {
			r.t.CT[e.AID] = CoordInfo{State: CoordDone}
		}

	case logrec.KindData:
		r.processData(e)

	case logrec.KindCommittedSS:
		r.err = fmt.Errorf("simplelog: committed_ss entry in a simple log")

	default:
		r.err = fmt.Errorf("simplelog: unknown entry kind %v", e.Kind)
	}
}

// processData handles a data entry per §3.4.4 step 2.h.
func (r *recovery) processData(e *logrec.Entry) {
	state, known := r.t.PT[e.AID]
	if !known {
		// The action never reached an outcome entry: it was wiped out by
		// the crash mid-prepare and will abort; its versions are
		// discarded (§2.2.3).
		return
	}
	switch state {
	case PartCommitted:
		// 2.h.i.
		if row, seen := r.ot[e.UID]; seen {
			if row.state == ObjPrepared && e.ObjType == object.KindAtomic {
				v, err := r.unflatten(e.Value)
				if err != nil {
					return
				}
				row.base = v
				row.state = ObjRestored
			}
			// Restored (or mutex): a later version was already copied.
			return
		}
		v, err := r.unflatten(e.Value)
		if err != nil {
			return
		}
		r.ot[e.UID] = &otRow{kind: e.ObjType, state: ObjRestored, base: v}

	case PartPrepared:
		// 2.h.ii.
		if _, seen := r.ot[e.UID]; seen {
			return
		}
		v, err := r.unflatten(e.Value)
		if err != nil {
			return
		}
		if e.ObjType == object.KindAtomic {
			// The action held the write lock at the crash; it is granted
			// the write lock again and the version becomes the current
			// version. The base version is owed by an earlier entry.
			r.ot[e.UID] = &otRow{
				kind:   object.KindAtomic,
				state:  ObjPrepared,
				cur:    v,
				writer: e.AID,
			}
		} else {
			// Mutex versions written by prepared actions are restored
			// outright (§2.4.2).
			r.ot[e.UID] = &otRow{kind: object.KindMutex, state: ObjRestored, base: v}
		}

	case PartAborted:
		// 2.h.iii: atomic versions of aborted actions are discarded, but
		// a mutex version written by a *prepared* (later aborted) action
		// is the current version and must be restored.
		if e.ObjType != object.KindMutex {
			return
		}
		if _, seen := r.ot[e.UID]; seen {
			return
		}
		v, err := r.unflatten(e.Value)
		if err != nil {
			return
		}
		r.ot[e.UID] = &otRow{kind: object.KindMutex, state: ObjRestored, base: v}
	}
}

// applyBaseVersion installs a committed (base) version for an atomic
// object, per the base_committed rules of §3.4.4 step 2.d.
func (r *recovery) applyBaseVersion(uid ids.UID, flat []byte) {
	if row, seen := r.ot[uid]; seen {
		if row.state == ObjPrepared {
			v, err := r.unflatten(flat)
			if err != nil {
				return
			}
			row.base = v
			row.state = ObjRestored
		}
		return
	}
	v, err := r.unflatten(flat)
	if err != nil {
		return
	}
	r.ot[uid] = &otRow{kind: object.KindAtomic, state: ObjRestored, base: v}
}

func (r *recovery) unflatten(flat []byte) (value.Value, error) {
	v, err := value.Unflatten(flat)
	if err != nil {
		r.err = fmt.Errorf("simplelog: corrupt object version: %w", err)
	}
	return v, err
}

// finish materializes the objects, resolves UID references (§3.4.3),
// rebuilds the AS and PAT, and returns the tables (§3.4.4 steps 3-5).
func (r *recovery) finish() (*Tables, error) {
	heap := object.NewHeap()
	atomics := make(map[ids.UID]*object.Atomic)
	mutexes := make(map[ids.UID]*object.Mutex)
	var maxUID ids.UID
	//roslint:nondet order-independent: installs into keyed maps and the heap, whose readers sort (Heap.UIDs)
	for uid, row := range r.ot {
		if uid > maxUID {
			maxUID = uid
		}
		switch row.kind {
		case object.KindAtomic:
			a := object.RestoreAtomic(uid, row.base, row.cur, row.writer)
			atomics[uid] = a
			heap.Register(a)
		case object.KindMutex:
			m := object.NewMutex(uid, row.base)
			mutexes[uid] = m
			heap.Register(m)
		}
	}

	// Final pass over volatile memory: replace uid references with
	// references to the restored objects.
	lookup := func(u ids.UID) (value.Obj, bool) {
		o, ok := heap.Lookup(u)
		if !ok {
			return nil, false
		}
		return o, true
	}
	//roslint:nondet order-independent: per-object reference resolution, no cross-object effects
	for uid, row := range r.ot {
		switch row.kind {
		case object.KindAtomic:
			a := atomics[uid]
			if row.base != nil {
				nb, err := value.ResolveRefs(row.base, lookup)
				if err != nil {
					return nil, err
				}
				a.SetBase(nb)
			}
			if row.cur != nil && !row.writer.IsZero() {
				nc, err := value.ResolveRefs(row.cur, lookup)
				if err != nil {
					return nil, err
				}
				if err := a.Replace(row.writer, nc); err != nil {
					return nil, err
				}
			}
		case object.KindMutex:
			m := mutexes[uid]
			if row.base != nil {
				nv, err := value.ResolveRefs(row.base, lookup)
				if err != nil {
					return nil, err
				}
				m.SetCurrent(nv)
			}
		}
	}

	// Rebuild the accessibility set by traversing the restored stable
	// state, and the PAT from the PT.
	r.t.Heap = heap
	r.t.AS = heap.AccessibleSet()
	r.t.PAT = object.NewPAT()
	//roslint:nondet order-independent: installs into the PAT set, whose readers sort (PAT.Actions)
	for aid, st := range r.t.PT {
		if st == PartPrepared {
			r.t.PAT.Add(aid)
		}
	}
	r.t.MaxUID = maxUID
	return r.t, nil
}
