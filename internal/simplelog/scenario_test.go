package simplelog

// Scenario tests reproducing the four recovery scenarios of thesis
// §3.4.2 (Figures 3-7 through 3-10). Each test builds the exact log of
// the figure, runs recovery, and checks the PT/CT/OT tables printed at
// the end of each scenario in the thesis.

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/logrec"
	"repro/internal/object"
	"repro/internal/stable"
	"repro/internal/stablelog"
	"repro/internal/value"
)

var (
	gP = ids.GuardianID(1)
	tA = ids.ActionID{Coordinator: gP, Seq: 1} // "T1" in the figures
	tB = ids.ActionID{Coordinator: gP, Seq: 2} // "T2"
	tC = ids.ActionID{Coordinator: gP, Seq: 3} // "T3"
)

func newTestLog(t *testing.T) *stablelog.Log {
	t.Helper()
	a := stable.NewMemDevice(256, nil)
	b := stable.NewMemDevice(256, nil)
	store, err := stable.NewStore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return stablelog.New(store)
}

// appendEntries writes the given entries in order and forces the log.
func appendEntries(t *testing.T, log *stablelog.Log, entries ...*logrec.Entry) {
	t.Helper()
	for _, e := range entries {
		if _, err := log.Write(logrec.Encode(logrec.Simple, e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Force(); err != nil {
		t.Fatal(err)
	}
}

func flat(v value.Value) []byte { return value.Flatten(v, nil) }

func data(uid ids.UID, kind object.Kind, v value.Value, aid ids.ActionID) *logrec.Entry {
	return &logrec.Entry{Kind: logrec.KindData, UID: uid, ObjType: kind, Value: flat(v), AID: aid}
}

func bc(uid ids.UID, v value.Value) *logrec.Entry {
	return &logrec.Entry{Kind: logrec.KindBaseCommitted, UID: uid, Value: flat(v)}
}

func outcome(kind logrec.Kind, aid ids.ActionID) *logrec.Entry {
	return &logrec.Entry{Kind: kind, AID: aid}
}

func wantPT(t *testing.T, tables *Tables, want map[ids.ActionID]PartState) {
	t.Helper()
	if len(tables.PT) != len(want) {
		t.Fatalf("PT = %v, want %v", tables.PT, want)
	}
	for aid, st := range want {
		if tables.PT[aid] != st {
			t.Fatalf("PT[%v] = %v, want %v", aid, tables.PT[aid], st)
		}
	}
}

func getAtomic(t *testing.T, h *object.Heap, uid ids.UID) *object.Atomic {
	t.Helper()
	o, ok := h.Lookup(uid)
	if !ok {
		t.Fatalf("%v not restored", uid)
	}
	a, ok := o.(*object.Atomic)
	if !ok {
		t.Fatalf("%v restored as %T, want atomic", uid, o)
	}
	return a
}

func getMutex(t *testing.T, h *object.Heap, uid ids.UID) *object.Mutex {
	t.Helper()
	o, ok := h.Lookup(uid)
	if !ok {
		t.Fatalf("%v not restored", uid)
	}
	m, ok := o.(*object.Mutex)
	if !ok {
		t.Fatalf("%v restored as %T, want mutex", uid, o)
	}
	return m
}

// TestScenarioFig3_7 — scenario 1: atomic objects; T1 committed, T2
// prepared. Log (left to right):
//
//	bc(O1,V1) bc(O2,V2) data(O2,at,V2',T1) prepared(T1) committed(T1)
//	data(O1,at,V1',T2) prepared(T2)
func TestScenarioFig3_7(t *testing.T) {
	const o1, o2 = ids.UID(11), ids.UID(12)
	v1, v2 := value.Int(1), value.Int(2)
	v2p := value.Int(22)  // V2 written by T1
	v1p := value.Int(111) // V1 written by T2

	log := newTestLog(t)
	appendEntries(t, log,
		bc(o1, v1),
		bc(o2, v2),
		data(o2, object.KindAtomic, v2p, tA),
		outcome(logrec.KindPrepared, tA),
		outcome(logrec.KindCommitted, tA),
		data(o1, object.KindAtomic, v1p, tB),
		outcome(logrec.KindPrepared, tB),
	)

	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	wantPT(t, tables, map[ids.ActionID]PartState{tA: PartCommitted, tB: PartPrepared})
	if len(tables.CT) != 0 {
		t.Fatalf("CT = %v, want empty", tables.CT)
	}

	// O1: base V1, current V1' write-locked by T2 (still prepared).
	a1 := getAtomic(t, tables.Heap, o1)
	if !value.Equal(a1.Base(), v1) {
		t.Errorf("O1 base = %s, want %s", value.String(a1.Base()), value.String(v1))
	}
	if a1.Writer() != tB {
		t.Errorf("O1 writer = %v, want %v", a1.Writer(), tB)
	}
	if cur, ok := a1.Current(); !ok || !value.Equal(cur, v1p) {
		t.Errorf("O1 current = %v", cur)
	}

	// O2: restored to T1's committed version.
	a2 := getAtomic(t, tables.Heap, o2)
	if !value.Equal(a2.Base(), v2p) {
		t.Errorf("O2 base = %s, want %s", value.String(a2.Base()), value.String(v2p))
	}
	if !a2.Writer().IsZero() {
		t.Errorf("O2 unexpectedly write-locked by %v", a2.Writer())
	}

	// T2 is back in the PAT awaiting its verdict.
	if !tables.PAT.Contains(tB) || tables.PAT.Contains(tA) {
		t.Errorf("PAT wrong: %v", tables.PAT)
	}
	if tables.MaxUID != o2 {
		t.Errorf("stable counter reset to %v, want %v", tables.MaxUID, o2)
	}
}

// TestScenarioFig3_8 — scenario 2: mutex objects; T1 committed, T2
// prepared then aborted. The mutex version written by T2 must be
// restored anyway (§2.4.2). Log:
//
//	data(O1,mx,V1,T1) data(O2,mx,V2,T1) prepared(T1) committed(T1)
//	data(O1,mx,V1',T2) prepared(T2) aborted(T2)
func TestScenarioFig3_8(t *testing.T) {
	const o1, o2 = ids.UID(21), ids.UID(22)
	v1, v2, v1p := value.Int(1), value.Int(2), value.Int(111)

	log := newTestLog(t)
	appendEntries(t, log,
		data(o1, object.KindMutex, v1, tA),
		data(o2, object.KindMutex, v2, tA),
		outcome(logrec.KindPrepared, tA),
		outcome(logrec.KindCommitted, tA),
		data(o1, object.KindMutex, v1p, tB),
		outcome(logrec.KindPrepared, tB),
		outcome(logrec.KindAborted, tB),
	)

	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	wantPT(t, tables, map[ids.ActionID]PartState{tA: PartCommitted, tB: PartAborted})

	// O1 must hold T2's version even though T2 aborted: "what matters is
	// that the action prepared."
	m1 := getMutex(t, tables.Heap, o1)
	if !value.Equal(m1.Current(), v1p) {
		t.Errorf("O1 = %s, want aborted-but-prepared version %s",
			value.String(m1.Current()), value.String(v1p))
	}
	m2 := getMutex(t, tables.Heap, o2)
	if !value.Equal(m2.Current(), v2) {
		t.Errorf("O2 = %s, want %s", value.String(m2.Current()), value.String(v2))
	}
	if tables.PAT.Len() != 0 {
		t.Errorf("PAT = %v, want empty (T2 aborted)", tables.PAT)
	}
}

// TestScenarioFig3_9 — scenario 3: newly accessible objects, the
// history of Figure 3-5. O3 was made accessible by T2 (aborted) but is
// referenced by T3 (committed), so its base version must survive via
// the base_committed entry. Log:
//
//	bc(O1,V1) bc(O2,V2) prepared(T1) committed(T1)
//	data(O1,at,V1',T2) bc(O3,V3b) data(O3,at,V3c,T2) prepared(T2)
//	data(O2,at,V2',T3) prepared(T3) aborted(T2) committed(T3)
func TestScenarioFig3_9(t *testing.T) {
	const o1, o2, o3 = ids.UID(31), ids.UID(32), ids.UID(33)
	v1, v2 := value.Int(10), value.Int(20)
	v1p := value.NewList(value.UIDRef{UID: o3}) // T2: O1 -> O3 (discarded)
	v3b := value.Int(30)                        // O3's base version
	v3c := value.Int(33)                        // T2's version of O3 (discarded)
	v2p := value.NewList(value.UIDRef{UID: o3}) // T3: O2 -> O3 (committed)

	log := newTestLog(t)
	appendEntries(t, log,
		bc(o1, v1),
		bc(o2, v2),
		outcome(logrec.KindPrepared, tA),
		outcome(logrec.KindCommitted, tA),
		data(o1, object.KindAtomic, v1p, tB),
		bc(o3, v3b),
		data(o3, object.KindAtomic, v3c, tB),
		outcome(logrec.KindPrepared, tB),
		data(o2, object.KindAtomic, v2p, tC),
		outcome(logrec.KindPrepared, tC),
		outcome(logrec.KindAborted, tB),
		outcome(logrec.KindCommitted, tC),
	)

	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	wantPT(t, tables, map[ids.ActionID]PartState{
		tA: PartCommitted, tB: PartAborted, tC: PartCommitted,
	})

	// O1 reverts to V1: T2's modification aborted.
	a1 := getAtomic(t, tables.Heap, o1)
	if !value.Equal(a1.Base(), v1) {
		t.Errorf("O1 = %s, want %s", value.String(a1.Base()), value.String(v1))
	}
	// O3 survives with its base version although T2 aborted.
	a3 := getAtomic(t, tables.Heap, o3)
	if !value.Equal(a3.Base(), v3b) {
		t.Errorf("O3 = %s, want base version %s", value.String(a3.Base()), value.String(v3b))
	}
	// O2 holds T3's committed version, whose reference to O3 must have
	// been resolved to the restored object (the §3.4.3 final pass).
	a2 := getAtomic(t, tables.Heap, o2)
	l, ok := a2.Base().(*value.List)
	if !ok {
		t.Fatalf("O2 base = %s", value.String(a2.Base()))
	}
	ref, ok := l.Elems[0].(value.Ref)
	if !ok {
		t.Fatalf("O2's reference not resolved: %s", value.String(l.Elems[0]))
	}
	if ref.Target != value.Obj(a3) {
		t.Errorf("O2 references %v, want the restored O3", ref.Target.UID())
	}
	if tables.MaxUID != o3 {
		t.Errorf("stable counter = %v, want %v", tables.MaxUID, o3)
	}
}

// TestScenarioFig3_10 — scenario 4: a guardian that is both coordinator
// and participant for T2. Log:
//
//	bc(O1,V1b) data(O1,at,V1,T1) bc(O2,V2b) prepared(T1) committed(T1)
//	data(O2,at,V2,T2) prepared(T2) committing([P1,P2,P3],T2)
//	committed(T2) done(T2)
func TestScenarioFig3_10(t *testing.T) {
	const o1, o2 = ids.UID(41), ids.UID(42)
	v1b, v1 := value.Int(1), value.Int(11)
	v2b, v2 := value.Int(2), value.Int(22)
	parts := []ids.GuardianID{1, 2, 3}

	log := newTestLog(t)
	appendEntries(t, log,
		bc(o1, v1b),
		data(o1, object.KindAtomic, v1, tA),
		bc(o2, v2b),
		outcome(logrec.KindPrepared, tA),
		outcome(logrec.KindCommitted, tA),
		data(o2, object.KindAtomic, v2, tB),
		outcome(logrec.KindPrepared, tB),
		&logrec.Entry{Kind: logrec.KindCommitting, AID: tB, GIDs: parts},
		outcome(logrec.KindCommitted, tB),
		outcome(logrec.KindDone, tB),
	)

	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	wantPT(t, tables, map[ids.ActionID]PartState{tA: PartCommitted, tB: PartCommitted})

	// CT: T2 done — the committing entry is superseded, so no
	// coordinator needs restarting.
	if len(tables.CT) != 1 {
		t.Fatalf("CT = %v", tables.CT)
	}
	ci := tables.CT[tB]
	if ci.State != CoordDone {
		t.Fatalf("CT[T2] = %v, want done", ci.State)
	}

	a1 := getAtomic(t, tables.Heap, o1)
	if !value.Equal(a1.Base(), v1) {
		t.Errorf("O1 = %s, want %s", value.String(a1.Base()), value.String(v1))
	}
	a2 := getAtomic(t, tables.Heap, o2)
	if !value.Equal(a2.Base(), v2) {
		t.Errorf("O2 = %s, want %s", value.String(a2.Base()), value.String(v2))
	}
}

// TestScenarioCommittingWithoutDone checks the CT path the thesis
// describes in scenario 4: if the coordinator crashed between the
// committing and done entries, the CT reports the action as committing
// with its participant list, so the coordinator can be resumed.
func TestScenarioCommittingWithoutDone(t *testing.T) {
	parts := []ids.GuardianID{2, 3}
	log := newTestLog(t)
	appendEntries(t, log,
		outcome(logrec.KindPrepared, tA),
		&logrec.Entry{Kind: logrec.KindCommitting, AID: tA, GIDs: parts},
	)
	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := tables.CT[tA]
	if !ok || ci.State != CoordCommitting {
		t.Fatalf("CT[T1] = %+v, want committing", ci)
	}
	if len(ci.GIDs) != 2 || ci.GIDs[0] != 2 || ci.GIDs[1] != 3 {
		t.Fatalf("GIDs = %v, want [2 3]", ci.GIDs)
	}
}

// TestRecoveryIgnoresUnpreparedData: data entries whose action has no
// outcome entry (crash mid-prepare) are discarded and the action
// effectively aborts (§2.2.3).
func TestRecoveryIgnoresUnpreparedData(t *testing.T) {
	const o1 = ids.UID(5)
	log := newTestLog(t)
	appendEntries(t, log,
		bc(o1, value.Int(1)),
		outcome(logrec.KindPrepared, tA),
		outcome(logrec.KindCommitted, tA),
		// T2 wrote data entries but crashed before its prepared entry.
		data(o1, object.KindAtomic, value.Int(99), tB),
	)
	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if _, known := tables.PT[tB]; known {
		t.Fatalf("unprepared T2 appears in PT: %v", tables.PT)
	}
	a1 := getAtomic(t, tables.Heap, o1)
	if !value.Equal(a1.Base(), value.Int(1)) {
		t.Errorf("O1 = %s, want 1", value.String(a1.Base()))
	}
	if !a1.Writer().IsZero() {
		t.Errorf("O1 write-locked by vanished action %v", a1.Writer())
	}
}

// TestRecoveryPreparedDataEntry exercises §3.4.4 step 2.e: a
// prepared_data entry written for an object write-locked by another,
// already prepared action.
func TestRecoveryPreparedDataEntry(t *testing.T) {
	const oX = ids.UID(7)
	base, cur := value.Int(1), value.Int(2)

	build := func(t *testing.T, verdict *logrec.Entry) *Tables {
		log := newTestLog(t)
		entries := []*logrec.Entry{
			// T1 prepared earlier; O_X was inaccessible then, so nothing
			// was written for it.
			outcome(logrec.KindPrepared, tA),
			// T2's prepare makes O_X newly accessible: base_committed
			// plus prepared_data crediting T1's current version.
			bc(oX, base),
			{Kind: logrec.KindPreparedData, UID: oX, AID: tA, Value: flat(cur)},
			outcome(logrec.KindPrepared, tB),
		}
		if verdict != nil {
			entries = append(entries, verdict)
		}
		appendEntries(t, log, entries...)
		tables, err := Recover(log)
		if err != nil {
			t.Fatal(err)
		}
		return tables
	}

	t.Run("T1-still-prepared", func(t *testing.T) {
		tables := build(t, nil)
		a := getAtomic(t, tables.Heap, oX)
		if a.Writer() != tA {
			t.Fatalf("O_X writer = %v, want %v", a.Writer(), tA)
		}
		if c, ok := a.Current(); !ok || !value.Equal(c, cur) {
			t.Fatalf("O_X current = %v", c)
		}
		if !value.Equal(a.Base(), base) {
			t.Fatalf("O_X base = %s", value.String(a.Base()))
		}
		if tables.PT[tA] != PartPrepared {
			t.Fatalf("PT[T1] = %v", tables.PT[tA])
		}
	})

	t.Run("T1-committed", func(t *testing.T) {
		tables := build(t, outcome(logrec.KindCommitted, tA))
		a := getAtomic(t, tables.Heap, oX)
		if !value.Equal(a.Base(), cur) {
			t.Fatalf("O_X base = %s, want committed current %s",
				value.String(a.Base()), value.String(cur))
		}
		if !a.Writer().IsZero() {
			t.Fatalf("O_X still locked by %v", a.Writer())
		}
	})

	t.Run("T1-aborted", func(t *testing.T) {
		tables := build(t, outcome(logrec.KindAborted, tA))
		a := getAtomic(t, tables.Heap, oX)
		if !value.Equal(a.Base(), base) {
			t.Fatalf("O_X base = %s, want original base %s",
				value.String(a.Base()), value.String(base))
		}
	})
}

// TestRecoveryEmptyLog: a guardian that never prepared anything.
func TestRecoveryEmptyLog(t *testing.T) {
	log := newTestLog(t)
	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables.PT) != 0 || len(tables.CT) != 0 || tables.Heap.Len() != 0 {
		t.Fatalf("empty log recovered state: %+v", tables)
	}
}
