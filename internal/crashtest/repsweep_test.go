package crashtest

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// TestRepSweep crashes the replicated primary at every device write,
// crossed with every quorum-preserving replica availability pattern,
// promotes the best backup at each point, and verifies the takeover
// against the serial oracle: no acknowledged commit is ever lost.
func TestRepSweep(t *testing.T) {
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			res, err := RepSweep(RepSweepConfig{Backend: b, Seed: 1, Steps: 3})
			if err != nil {
				t.Fatal(err)
			}
			// Every (crash write × pattern) plus the zero-crash corner.
			want := len(repDownPatterns)*res.Writes + 1
			if res.Writes == 0 || res.Points != want {
				t.Fatalf("degenerate replicated sweep: %+v, want %d points", res, want)
			}
			if res.Promotions != res.Points {
				t.Fatalf("unverified takeovers: %+v", res)
			}
		})
	}
}

// TestRepSweepMultipleSeeds varies the replicated history.
func TestRepSweepMultipleSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed replicated sweep skipped in -short mode")
	}
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := RepSweep(RepSweepConfig{Backend: core.BackendHybrid, Seed: seed, Steps: 4}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRepSweepErrorIdentifiesScenario: a RepSweepError must carry the
// replay coordinates (backend, seed, pattern, crash write).
func TestRepSweepErrorIdentifiesScenario(t *testing.T) {
	e := &RepSweepError{
		Backend: core.BackendHybrid, Seed: 7, Down: RepDownSecond,
		Crash: 23, Step: 1, Err: errors.New("boom"),
	}
	got := e.Error()
	for _, want := range []string{"hybrid", "seed=7", "second-down", "crash=23", "step=1", "boom"} {
		if !contains(got, want) {
			t.Fatalf("RepSweepError %q missing %q", got, want)
		}
	}
	if !errors.Is(e, e.Err) {
		t.Fatal("RepSweepError does not unwrap")
	}
}
