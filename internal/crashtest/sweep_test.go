package crashtest

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// TestSweepAllBackends runs the exhaustive crash-point sweep — every
// device write of the scripted history, every write of the recovery
// that follows (double crash), and a triple-crash probe at each of
// those — for all three backends.
func TestSweepAllBackends(t *testing.T) {
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			res, err := Sweep(SweepConfig{Backend: b, Seed: 1, Steps: 3, Mutex: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Writes == 0 || res.Points <= res.Writes {
				t.Fatalf("degenerate sweep: %+v", res)
			}
			if res.Deepest < 3 {
				t.Fatalf("no triple crash exercised: %+v", res)
			}
		})
	}
}

// TestSweepHousekeeping sweeps a hybrid history that interleaves
// compaction and snapshot passes, so crash points land inside
// housekeeping (including the atomic log switch) too.
func TestSweepHousekeeping(t *testing.T) {
	res, err := Sweep(SweepConfig{
		Backend: core.BackendHybrid, Seed: 3, Steps: 4, Mutex: true, Housekeep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 {
		t.Fatalf("degenerate sweep: %+v", res)
	}
}

// TestSweepMultipleSeeds varies the scripted history.
func TestSweepMultipleSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep skipped in -short mode")
	}
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := SweepConfig{Backend: b, Seed: seed, Steps: 4, Mutex: true, Housekeep: seed == 2}
			if _, err := Sweep(cfg); err != nil {
				t.Fatalf("%v seed %d: %v", b, seed, err)
			}
		}
	}
}

// TestSweepErrorIdentifiesScenario: a SweepError must carry the full
// replay coordinates (backend, seed, crash schedule) for roscrash to
// print.
func TestSweepErrorIdentifiesScenario(t *testing.T) {
	e := &SweepError{
		Backend: core.BackendHybrid, Seed: 42, Decay: DecayAlternate,
		Crashes: []int{17, 3, 1}, Step: 2, Err: errors.New("boom"),
	}
	got := e.Error()
	for _, want := range []string{"hybrid", "seed=42", "crashes=[17 3 1]", "alternate", "step=2", "boom"} {
		if !contains(got, want) {
			t.Fatalf("SweepError %q missing %q", got, want)
		}
	}
	if !errors.Is(e, e.Err) {
		t.Fatal("SweepError does not unwrap")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
