package crashtest

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stablelog"
)

// traceConfigs are the sweep configurations whose event streams the
// determinism tests pin down: one per backend, plus the full hybrid
// feature set (mutex, housekeeping interleaved).
func traceConfigs() []SweepConfig {
	return []SweepConfig{
		{Backend: core.BackendSimple, Seed: 7, Steps: 4},
		{Backend: core.BackendHybrid, Seed: 7, Steps: 4, Mutex: true, Housekeep: true},
		{Backend: core.BackendShadow, Seed: 7, Steps: 4},
	}
}

// runTraced replays the scripted history, crashing at write k (0 for an
// undisturbed run), recovers if the crash fired, and returns the full
// event trace.
func runTraced(t *testing.T, cfg SweepConfig, script []scriptStep, k int) []byte {
	t.Helper()
	rec := &obs.Recorder{}
	vol := stablelog.NewMemVolume(cfg.BlockSize)
	vol.ArmGlobalCrashAtWrite(k)
	s, _, err := executeScript(vol, cfg, script, rec, nil)
	if err != nil {
		t.Fatalf("history (crash at %d): %v", k, err)
	}
	if s != len(script) {
		if _, fired, _, err := recoverOnce(vol, cfg, 0, true, rec); err != nil {
			t.Fatalf("recovery (crash at %d): %v", k, err)
		} else if fired {
			t.Fatalf("unarmed recovery reported a crash (crash at %d)", k)
		}
	}
	return rec.Text()
}

// TestReplayTraceDeterministic runs the same scripted history — and the
// recovery after a crash at several write indices — twice, and requires
// the two event traces to be byte-identical. This is the determinism
// contract the crash sweep's exhaustiveness rests on: if two replays of
// one schedule could diverge, crash point k would not name a unique
// protocol state.
func TestReplayTraceDeterministic(t *testing.T) {
	for _, cfg := range traceConfigs() {
		cfg := cfg
		cfg.BlockSize = 512
		t.Run(cfg.Backend.String(), func(t *testing.T) {
			script := buildScript(cfg)

			// The undisturbed run fixes W, the total write count.
			first := runTraced(t, cfg, script, 0)
			if !bytes.Equal(first, runTraced(t, cfg, script, 0)) {
				t.Fatal("two undisturbed runs produced different traces")
			}
			vol := stablelog.NewMemVolume(cfg.BlockSize)
			vol.ArmGlobalCrashAtWrite(0)
			if _, _, err := executeScript(vol, cfg, script, nil, nil); err != nil {
				t.Fatal(err)
			}
			w := vol.GlobalWrites()

			for _, k := range []int{1, w / 3, w / 2, w - 1} {
				if k < 1 {
					continue
				}
				t.Run(fmt.Sprintf("crash-at-%d", k), func(t *testing.T) {
					a := runTraced(t, cfg, script, k)
					b := runTraced(t, cfg, script, k)
					if !bytes.Equal(a, b) {
						t.Errorf("two crash-at-%d replays produced different traces (%d vs %d bytes)",
							k, len(a), len(b))
					}
				})
			}
		})
	}
}

// TestSweepDeterministic runs a small full sweep twice and requires the
// aggregate results — write count, scenario count, recovery count — to
// be identical, the sweep-level expression of the same contract.
func TestSweepDeterministic(t *testing.T) {
	cfg := SweepConfig{Backend: core.BackendHybrid, Seed: 11, Steps: 3, Housekeep: true}
	a, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("two sweeps diverged: %+v vs %+v", a, b)
	}
}
