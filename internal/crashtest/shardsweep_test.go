package crashtest

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// TestShardSweep crashes the coordinator shard's guardian at every one
// of its device writes during a cross-shard transfer history, recovers
// it, settles the two-shard cluster, and verifies the serial oracle:
// conservation across shards and zero acked-but-lost.
func TestShardSweep(t *testing.T) {
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			res, err := ShardSweep(ShardSweepConfig{Backend: b, Steps: 4})
			if err != nil {
				t.Fatal(err)
			}
			// Every crash write plus the counting run.
			if res.Writes == 0 || res.Points != res.Writes+1 {
				t.Fatalf("degenerate cross-shard sweep: %+v", res)
			}
			if res.Recoveries == 0 {
				t.Fatalf("sweep never exercised recovery: %+v", res)
			}
		})
	}
}

// TestShardSweepErrorIdentifiesScenario: a ShardSweepError must carry
// the replay coordinates (backend, crash write, interrupted step).
func TestShardSweepErrorIdentifiesScenario(t *testing.T) {
	e := &ShardSweepError{
		Backend: core.BackendHybrid, Crash: 17, Step: 2, Err: errors.New("boom"),
	}
	got := e.Error()
	for _, want := range []string{"hybrid", "crash=17", "step=2", "boom"} {
		if !contains(got, want) {
			t.Fatalf("ShardSweepError %q missing %q", got, want)
		}
	}
	if !errors.Is(e, e.Err) {
		t.Fatal("ShardSweepError does not unwrap")
	}
}
