package crashtest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/replog"
	"repro/internal/stablelog"
)

// The replicated sweep extends the crash-point sweep across the
// replication boundary: the same scripted history runs on a primary
// whose log is shipped to two backups (quorum 2 of 3), the primary is
// crashed at every device write, and at every crash point — crossed
// with every replica availability pattern that keeps the quorum
// reachable — the best backup is promoted and its takeover recovery is
// verified against the serial oracle. The property under test is the
// package's reason to exist: an acknowledged commit is never lost to a
// primary crash, because acknowledgment waited for a quorum and the
// promoted backup is chosen from the quorum's survivors.
//
// The sweep keeps one log generation (no housekeeping in the script):
// within a generation the promotion rule is purely mechanical —
// promote the backup with the most durable bytes — which is exactly
// the rule RepSweep applies. Generation switches (snapshot resets,
// rejoin catch-up) are exercised by the replog unit tests; crossing
// them mid-crash turns promotion into an operator decision the
// deterministic sweep cannot script.

// RepDownPattern selects which backup is unreachable for a whole
// replayed history. Patterns that lose the quorum are not swept: a
// quorum-less history cannot acknowledge, which the partition tests
// cover directly.
type RepDownPattern uint8

const (
	// RepDownNone keeps both backups reachable.
	RepDownNone RepDownPattern = iota
	// RepDownFirst partitions the lower-id backup away for the whole
	// history; every ack rides the second.
	RepDownFirst
	// RepDownSecond partitions the higher-id backup away.
	RepDownSecond
)

func (p RepDownPattern) String() string {
	switch p {
	case RepDownNone:
		return "none"
	case RepDownFirst:
		return "first-down"
	case RepDownSecond:
		return "second-down"
	default:
		return fmt.Sprintf("down(%d)", uint8(p))
	}
}

var repDownPatterns = []RepDownPattern{RepDownNone, RepDownFirst, RepDownSecond}

// repBackupIDs are the sweep's backup addresses; the primary is
// guardian 1, as everywhere in the crash harness.
var repBackupIDs = [2]ids.GuardianID{101, 102}

// RepSweepConfig parameterizes a replicated crash-point sweep.
type RepSweepConfig struct {
	Backend core.Backend
	Seed    int64
	// Steps is the number of scripted actions after the setup action.
	Steps int
	// BlockSize is the simulated device block size (default 512).
	BlockSize int
}

// RepSweepResult summarizes one replicated sweep.
type RepSweepResult struct {
	// Writes is W, the primary's device write count for the undisturbed
	// replicated history.
	Writes int
	// Points is the number of verified scenarios (crash write × down
	// pattern).
	Points int
	// Promotions counts backup takeovers run and verified.
	Promotions int
}

// RepSweepError identifies the failing scenario: the backend, seed,
// availability pattern, and crash write, replayable exactly.
type RepSweepError struct {
	Backend core.Backend
	Seed    int64
	Down    RepDownPattern
	// Crash is the primary device write the crash hit (0 = the
	// counting run).
	Crash int
	// Step is the script step the crash interrupted (-1 for the setup
	// phase, len(script) if the history completed).
	Step int
	Err  error
}

func (e *RepSweepError) Error() string {
	return fmt.Sprintf("repsweep %v seed=%d down=%v crash=%d step=%d: %v",
		e.Backend, e.Seed, e.Down, e.Crash, e.Step, e.Err)
}

func (e *RepSweepError) Unwrap() error { return e.Err }

// repCluster is one scenario's replication fabric.
type repCluster struct {
	net     *netsim.Network
	backups [2]*replog.Backup
}

// newRepCluster builds the network and backups for one replay, marks
// the pattern's backup down, and returns the install hook that wires
// the primary's replicator onto the scripted guardian.
func newRepCluster(cfg RepSweepConfig, down RepDownPattern, tr obs.Tracer) (*repCluster, func(*guardian.Guardian) error, error) {
	cl := &repCluster{net: netsim.New()}
	cl.net.SetTracer(tr)
	reps := make([]replog.Replica, 0, len(repBackupIDs))
	for i, id := range repBackupIDs {
		b, err := replog.NewBackup(replog.BackupConfig{
			ID: id, Primary: 1, Backend: cfg.Backend, BlockSize: cfg.BlockSize, Tracer: tr,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("backup %v: %w", id, err)
		}
		cl.backups[i] = b
		reps = append(reps, b)
	}
	switch down {
	case RepDownFirst:
		cl.net.SetDown(repBackupIDs[0], true)
	case RepDownSecond:
		cl.net.SetDown(repBackupIDs[1], true)
	}
	install := func(g *guardian.Guardian) error {
		site := g.Site()
		if site == nil {
			return fmt.Errorf("backend %v has no log site to replicate", cfg.Backend)
		}
		p, err := replog.NewPrimary(replog.Config{
			Self: 1, Site: site, Quorum: 2, Net: cl.net, Replicas: reps, Tracer: tr,
		})
		if err != nil {
			return err
		}
		g.SetReplicator(p)
		return nil
	}
	return cl, install, nil
}

// promoteBest applies the single-generation operator rule: promote the
// backup holding the most durable bytes (ties to the lower id). The
// quorum guarantee makes this sufficient — every acknowledged prefix
// is durable on at least one backup, and the longest copy subsumes
// every shorter acknowledged one.
func (cl *repCluster) promoteBest() (*guardian.Guardian, error) {
	best := 0
	if cl.backups[1].Status().Durable > cl.backups[0].Status().Durable {
		best = 1
	}
	g, err := cl.backups[best].Promote()
	if err != nil {
		return nil, err
	}
	g.SetSynchronousForces(true)
	if err := guardian.CheckRecovered(g); err != nil {
		return nil, err
	}
	if err := resolveInDoubt(g); err != nil {
		return nil, err
	}
	return g, nil
}

// RepSweep runs the replicated crash-point sweep for one
// configuration. It returns a *RepSweepError naming the failing
// (backend, seed, pattern, crash write) tuple on the first violation —
// in particular on any acknowledged-but-lost commit, which surfaces as
// a takeover state older than the interrupted step's pre-state.
func RepSweep(cfg RepSweepConfig) (RepSweepResult, error) {
	if cfg.Backend == 0 {
		cfg.Backend = core.BackendHybrid
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 512
	}
	var res RepSweepResult
	// The script is shared with the plain sweep, minus the knobs the
	// replicated harness pins (no mutex, no housekeeping — see the
	// package comment above).
	base := SweepConfig{Backend: cfg.Backend, Seed: cfg.Seed, Steps: cfg.Steps, BlockSize: cfg.BlockSize}
	script := buildScript(base)
	o := buildOracle(script)

	fail := func(down RepDownPattern, k, step int, err error) error {
		return &RepSweepError{Backend: cfg.Backend, Seed: cfg.Seed, Down: down, Crash: k, Step: step, Err: err}
	}

	// replay runs the replicated history with a crash armed at primary
	// write k, returning the cluster and the interrupted step.
	replay := func(k int, down RepDownPattern, chk *obs.Checker) (*repCluster, int, error) {
		vol := stablelog.NewMemVolume(cfg.BlockSize)
		vol.ArmGlobalCrashAtWrite(k)
		cl, install, err := newRepCluster(cfg, down, chk)
		if err != nil {
			return nil, -1, err
		}
		s, _, err := executeScript(vol, base, script, chk, install)
		return cl, s, err
	}

	// Counting run: the full replicated history with no crash, promoted
	// and verified like every crash point — the zero-crash corner of the
	// matrix — to tally the primary's W device writes.
	chk := obs.NewChecker(nil)
	countVol := stablelog.NewMemVolume(cfg.BlockSize)
	countVol.ArmGlobalCrashAtWrite(0)
	cl, install, err := newRepCluster(cfg, RepDownNone, chk)
	if err != nil {
		return res, fail(RepDownNone, 0, -1, err)
	}
	s, _, err := executeScript(countVol, base, script, chk, install)
	if err != nil {
		return res, fail(RepDownNone, 0, s, err)
	}
	if s != len(script) {
		return res, fail(RepDownNone, 0, s, fmt.Errorf("unarmed history did not complete (stopped at step %d)", s))
	}
	g, err := cl.promoteBest()
	if err != nil {
		return res, fail(RepDownNone, 0, s, err)
	}
	if err := verifyRecovered(g, base, script, o, s, false); err != nil {
		return res, fail(RepDownNone, 0, s, err)
	}
	if err := chk.Err(); err != nil {
		return res, fail(RepDownNone, 0, s, err)
	}
	res.Writes = countVol.GlobalWrites()
	res.Points++
	res.Promotions++

	for _, down := range repDownPatterns {
		for k := 1; k <= res.Writes; k++ {
			chk := obs.NewChecker(nil)
			cl, s, err := replay(k, down, chk)
			if err != nil {
				return res, fail(down, k, s, err)
			}
			if s == len(script) {
				// The crash never fired: this pattern's history performs
				// fewer primary writes than the all-up counting run (a
				// down backup saves no primary writes, so this would mean
				// the replays diverged — still verify the final state).
				g, err := cl.promoteBest()
				if err != nil {
					return res, fail(down, k, s, err)
				}
				if err := verifyRecovered(g, base, script, o, s, false); err != nil {
					return res, fail(down, k, s, err)
				}
				res.Points++
				res.Promotions++
				continue
			}
			g, err := cl.promoteBest()
			if err != nil {
				return res, fail(down, k, s, err)
			}
			res.Promotions++
			if err := verifyRecovered(g, base, script, o, s, false); err != nil {
				return res, fail(down, k, s, err)
			}
			if err := chk.Err(); err != nil {
				return res, fail(down, k, s, err)
			}
			res.Points++
		}
	}
	return res, nil
}
