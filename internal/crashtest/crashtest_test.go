package crashtest

import (
	"testing"

	"repro/internal/core"
)

// TestSerialOracleNoCrashes: sanity — without crashes, every backend
// tracks the oracle exactly.
func TestSerialOracleNoCrashes(t *testing.T) {
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			res, err := Run(Config{
				Backend: b, Counters: 5, Steps: 120, Seed: 7, Mutex: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed == 0 || res.Aborted == 0 {
				t.Fatalf("degenerate run: %+v", res)
			}
		})
	}
}

// TestSerialOracleWithCrashes: the chapter 6 property under clean
// crashes (between actions) and mid-action device crashes, across all
// backends and several seeds.
func TestSerialOracleWithCrashes(t *testing.T) {
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				res, err := Run(Config{
					Backend: b, Counters: 4, Steps: 80, Seed: seed,
					CrashEvery: 5, Mutex: true,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Crashes == 0 {
					t.Fatalf("seed %d: no crashes injected: %+v", seed, res)
				}
			}
		})
	}
}

// TestSerialOracleWithHousekeeping: hybrid backend with periodic
// compaction/snapshot interleaved with crashes.
func TestSerialOracleWithHousekeeping(t *testing.T) {
	for seed := int64(10); seed <= 14; seed++ {
		res, err := Run(Config{
			Backend: core.BackendHybrid, Counters: 4, Steps: 100, Seed: seed,
			CrashEvery: 7, HousekeepEvery: 9, Mutex: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Recoveries == 0 {
			t.Fatalf("seed %d: no recoveries: %+v", seed, res)
		}
	}
}

// TestLongHaul is a heavier soak run (kept modest for -short).
func TestLongHaul(t *testing.T) {
	if testing.Short() {
		t.Skip("long haul skipped in -short mode")
	}
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			cfg := Config{
				Backend: b, Counters: 8, Steps: 400, Seed: 99,
				CrashEvery: 6, Mutex: true,
			}
			if b == core.BackendHybrid {
				cfg.HousekeepEvery = 25
			}
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
