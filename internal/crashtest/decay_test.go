package crashtest

import (
	"testing"

	"repro/internal/core"
)

// TestSweepWithDecay is the read-fault crash matrix: for every backend
// and every single-copy decay pattern, the full crash-point sweep must
// hold the chapter 6 invariant — decay injected between each crash and
// its first recovery forces every recovery read through the fallback
// copy and every repair through read-repair/scrub.
func TestSweepWithDecay(t *testing.T) {
	backends := []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow}
	modes := []DecayMode{DecayDeviceA, DecayDeviceB, DecayAlternate}
	for _, b := range backends {
		for _, mode := range modes {
			b, mode := b, mode
			t.Run(b.String()+"/"+mode.String(), func(t *testing.T) {
				if testing.Short() && mode == DecayAlternate {
					t.Skip("alternate mode skipped in -short mode")
				}
				res, err := Sweep(SweepConfig{
					Backend: b, Seed: 2, Steps: 3, Mutex: true, Decay: mode,
					Housekeep: b == core.BackendHybrid,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Recoveries == 0 {
					t.Fatalf("degenerate decay sweep: %+v", res)
				}
			})
		}
	}
}
