// Package crashtest is a deterministic crash-injection harness for the
// recovery system: it drives a guardian with randomized action
// histories, crashes the node at arbitrary points — including in the
// middle of prepare and commit device writes — recovers, and checks the
// correctness property of thesis chapter 6:
//
//	"For atomic objects the property is that the state of each object
//	after a crash is exactly what is obtained from running all actions
//	that committed at a guardian in their serial order."
//
// The harness keeps a serial oracle of counter values. An action
// interrupted by a crash has an outcome decided by recovery (it either
// reached its commit point or it did not); the recovered state must
// equal either the oracle's pre-action state or its post-action state
// in full — all-or-nothing — and the oracle adopts whichever recovery
// chose.
package crashtest

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/twopc"
	"repro/internal/value"
)

// Config parameterizes a harness run.
type Config struct {
	Backend  core.Backend
	Counters int
	Steps    int
	Seed     int64
	// Mutex adds a mutex object to the workload, tracked with the
	// §2.4.2 semantics: seize modifications of unprepared actions are
	// visible in volatile memory but vanish at a crash, while any
	// prepared modification survives even aborts.
	Mutex bool
	// CrashEvery ~1/n of actions are interrupted by a device-level
	// crash at a random write. 0 disables mid-action crashes.
	CrashEvery int
	// HousekeepEvery runs housekeeping every n committed actions
	// (hybrid backend only). 0 disables.
	HousekeepEvery int
}

// Result summarizes a run.
type Result struct {
	Committed, Aborted, Crashes, Recoveries int
}

// Run executes the harness and returns an error on the first property
// violation.
func Run(cfg Config) (Result, error) {
	var res Result
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The whole history, crashes and recoveries included, runs under a
	// runtime invariant checker fed by the event stream; the tracer
	// survives Restart with the rest of the guardian configuration.
	chk := obs.NewChecker(nil)
	g, err := guardian.New(1, guardian.WithBackend(cfg.Backend), guardian.WithTracer(chk))
	if err != nil {
		return res, err
	}
	// Scripted histories replay by device-write index: synchronous
	// forces keep the write sequence deterministic.
	g.SetSynchronousForces(true)

	names := make([]string, cfg.Counters)
	oracle := make(map[string]int64, cfg.Counters)
	// Initialize the stable state.
	init := g.Begin()
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
		obj, err := init.NewAtomic(value.Int(0))
		if err != nil {
			return res, err
		}
		if err := init.SetVar(names[i], obj); err != nil {
			return res, err
		}
		oracle[names[i]] = 0
	}
	var stableMutex, volatileMutex int64
	if cfg.Mutex {
		m, err := init.NewMutex(value.Int(0))
		if err != nil {
			return res, err
		}
		if err := init.SetVar("journal", m); err != nil {
			return res, err
		}
	}
	if err := init.Commit(); err != nil {
		return res, err
	}

	counters := func() (map[string]*object.Atomic, error) {
		out := make(map[string]*object.Atomic, len(names))
		for _, n := range names {
			c, ok := g.VarAtomic(n)
			if !ok {
				return nil, fmt.Errorf("crashtest: counter %s lost", n)
			}
			out[n] = c
		}
		return out, nil
	}

	check := func(want map[string]int64, label string) error {
		cs, err := counters()
		if err != nil {
			return err
		}
		for _, n := range names {
			c := cs[n]
			got, ok := c.Base().(value.Int)
			if !ok || int64(got) != want[n] {
				return fmt.Errorf("crashtest: %s: %s = %s, want %d",
					label, n, value.String(c.Base()), want[n])
			}
		}
		return nil
	}

	stateEquals := func(want map[string]int64) (bool, error) {
		cs, err := counters()
		if err != nil {
			return false, err
		}
		for _, n := range names {
			c := cs[n]
			got, ok := c.Base().(value.Int)
			if !ok || int64(got) != want[n] {
				return false, nil
			}
		}
		return true, nil
	}

	checkMutex := func(label string, want int64) error {
		if !cfg.Mutex {
			return nil
		}
		m, ok := g.VarMutex("journal")
		if !ok {
			return fmt.Errorf("crashtest: %s: journal lost", label)
		}
		got, isInt := m.Current().(value.Int)
		if !isInt || int64(got) != want {
			return fmt.Errorf("crashtest: %s: journal = %s, want %d",
				label, value.String(m.Current()), want)
		}
		return nil
	}

	committedSinceHK := 0
	for step := 0; step < cfg.Steps; step++ {
		cs, err := counters()
		if err != nil {
			return res, err
		}
		// Build a candidate action touching 1..3 counters.
		candidate := make(map[string]int64, len(oracle))
		for _, n := range names {
			candidate[n] = oracle[n]
		}
		a := g.Begin()
		k := 1 + rng.Intn(3)
		perm := rng.Perm(len(names))[:k]
		var actErr error
		for _, idx := range perm {
			n := names[idx]
			delta := int64(rng.Intn(20) - 10)
			candidate[n] += delta
			if err := a.Update(cs[n], func(v value.Value) value.Value {
				return value.Int(int64(v.(value.Int)) + delta)
			}); err != nil {
				actErr = err
				break
			}
		}
		if actErr != nil {
			return res, actErr
		}
		mutexWritten := false
		if cfg.Mutex && rng.Intn(2) == 0 {
			m, ok := g.VarMutex("journal")
			if !ok {
				return res, fmt.Errorf("crashtest: journal lost at step %d", step)
			}
			v := int64(step + 1)
			if err := a.Seize(m, func(value.Value) value.Value { return value.Int(v) }); err != nil {
				return res, err
			}
			volatileMutex = v
			mutexWritten = true
		}
		// Occasionally early-prepare (hybrid only).
		if cfg.Backend == core.BackendHybrid && rng.Intn(4) == 0 {
			if err := a.EarlyPrepare(); err != nil {
				return res, err
			}
		}

		crashing := cfg.CrashEvery > 0 && rng.Intn(cfg.CrashEvery) == 0
		switch {
		case crashing:
			// Arm a device crash at a random upcoming write, then try to
			// commit; whether the action survives is recovery's call.
			g.Volume().ArmCrashAfterWrites(1 + rng.Intn(6))
			err := a.Commit()
			g.Crash()
			res.Crashes++
			g, err = restart(g)
			if err != nil {
				return res, err
			}
			res.Recoveries++
			if err := resolveInDoubt(g); err != nil {
				return res, err
			}
			// All-or-nothing: the recovered state is the old state or
			// the candidate state, never a mixture.
			if ok, err := stateEquals(oracle); err != nil {
				return res, err
			} else if ok {
				// aborted by the crash
			} else if ok, err := stateEquals(candidate); err != nil {
				return res, err
			} else if ok {
				oracle = candidate
				if mutexWritten {
					// The action reached at least its prepare, so the
					// mutex version is durable (§2.4.2).
					stableMutex = volatileMutex
				}
			} else {
				return res, fmt.Errorf("crashtest: step %d: recovered state is neither pre- nor post-action", step)
			}
			if cfg.Mutex && mutexWritten {
				// The mutex may have survived independently of the
				// atomic outcome: it is durable iff the prepare
				// completed. Accept either the old or new stable value,
				// then adopt what recovery chose.
				m, ok := g.VarMutex("journal")
				if !ok {
					return res, fmt.Errorf("crashtest: journal lost after crash at step %d", step)
				}
				got, isInt := m.Current().(value.Int)
				if !isInt || (int64(got) != stableMutex && int64(got) != volatileMutex) {
					return res, fmt.Errorf("crashtest: step %d: journal = %s, want %d or %d",
						step, value.String(m.Current()), stableMutex, volatileMutex)
				}
				stableMutex = int64(got)
			}
			volatileMutex = stableMutex

		case rng.Intn(4) == 0:
			if err := a.Abort(); err != nil {
				return res, err
			}
			res.Aborted++
			if err := check(oracle, fmt.Sprintf("after abort at step %d", step)); err != nil {
				return res, err
			}
			// An aborted (never-prepared) action's seize stays visible
			// in volatile memory but is not durable (§2.4.2): the
			// volatile oracle keeps the new value, the stable one the
			// old.
			if err := checkMutex(fmt.Sprintf("after abort at step %d", step), volatileMutex); err != nil {
				return res, err
			}

		default:
			if err := a.Commit(); err != nil {
				return res, err
			}
			res.Committed++
			committedSinceHK++
			oracle = candidate
			if mutexWritten {
				stableMutex = volatileMutex
			}
			if err := check(oracle, fmt.Sprintf("after commit at step %d", step)); err != nil {
				return res, err
			}
			if err := checkMutex(fmt.Sprintf("after commit at step %d", step), volatileMutex); err != nil {
				return res, err
			}
		}

		// Clean crash (between actions) sometimes.
		if rng.Intn(10) == 0 {
			g.Crash()
			res.Crashes++
			g, err = restart(g)
			if err != nil {
				return res, err
			}
			res.Recoveries++
			if err := resolveInDoubt(g); err != nil {
				return res, err
			}
			if err := check(oracle, fmt.Sprintf("after clean crash at step %d", step)); err != nil {
				return res, err
			}
			volatileMutex = stableMutex
			if err := checkMutex(fmt.Sprintf("after clean crash at step %d", step), stableMutex); err != nil {
				return res, err
			}
		}

		// Housekeeping.
		if cfg.HousekeepEvery > 0 && cfg.Backend == core.BackendHybrid &&
			committedSinceHK >= cfg.HousekeepEvery {
			committedSinceHK = 0
			kind := core.HousekeepCompact
			if rng.Intn(2) == 0 {
				kind = core.HousekeepSnapshot
			}
			if _, err := g.Housekeep(kind); err != nil {
				return res, fmt.Errorf("crashtest: housekeeping at step %d: %w", step, err)
			}
			if err := check(oracle, fmt.Sprintf("after housekeeping at step %d", step)); err != nil {
				return res, err
			}
		}
	}
	if err := chk.Err(); err != nil {
		return res, err
	}
	return res, nil
}

func restart(g *guardian.Guardian) (*guardian.Guardian, error) {
	ng, err := guardian.Restart(g)
	if err != nil {
		return nil, err
	}
	ng.SetSynchronousForces(true)
	if err := guardian.CheckRecovered(ng); err != nil {
		return nil, err
	}
	return ng, nil
}

// resolveInDoubt settles actions that were prepared at the crash. The
// harness's actions are single-guardian, so the guardian is its own
// coordinator: committed iff its committing record survived.
func resolveInDoubt(g *guardian.Guardian) error {
	for _, aid := range g.InDoubt() {
		var err error
		if g.OutcomeOf(aid) == twopc.OutcomeCommitted {
			err = g.HandleCommit(aid)
		} else {
			err = g.HandleAbort(aid)
		}
		if err != nil {
			return err
		}
	}
	// Finish phase two for any action committed but not done.
	for _, aid := range g.Unfinished() {
		if err := g.Done(aid); err != nil {
			return err
		}
	}
	return nil
}
