package crashtest

import (
	"testing"

	"repro/internal/core"
)

func TestDistributedNoCrashes(t *testing.T) {
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			res, err := RunDistributed(DistributedConfig{
				Backend: b, Guardians: 3, Steps: 60, Seed: 11,
				InitialBalance: 1000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed == 0 {
				t.Fatalf("degenerate run: %+v", res)
			}
		})
	}
}

func TestDistributedWithCrashes(t *testing.T) {
	for _, b := range []core.Backend{core.BackendSimple, core.BackendHybrid, core.BackendShadow} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				res, err := RunDistributed(DistributedConfig{
					Backend: b, Guardians: 3, Steps: 50, Seed: seed,
					CrashEvery: 4, InitialBalance: 1000,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Crashes == 0 {
					t.Fatalf("seed %d: no crashes: %+v", seed, res)
				}
			}
		})
	}
}

func TestDistributedLongHaul(t *testing.T) {
	if testing.Short() {
		t.Skip("long haul skipped in -short mode")
	}
	res, err := RunDistributed(DistributedConfig{
		Backend: core.BackendHybrid, Guardians: 5, Steps: 300, Seed: 42,
		CrashEvery: 5, InitialBalance: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatalf("no in-doubt queries exercised: %+v", res)
	}
}

func TestDistributedWithHousekeeping(t *testing.T) {
	for seed := int64(20); seed <= 23; seed++ {
		res, err := RunDistributed(DistributedConfig{
			Backend: core.BackendHybrid, Guardians: 3, Steps: 80, Seed: seed,
			CrashEvery: 5, HousekeepEvery: 10, InitialBalance: 1000,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Committed == 0 || res.Crashes == 0 {
			t.Fatalf("seed %d: degenerate: %+v", seed, res)
		}
	}
}
