package crashtest

// External-history oracle: the serial-oracle contract of this package
// (recovered state = some serial order of the committed actions, §6)
// restated for histories observed from *outside* a cluster of real
// processes, where the chaos harness sees only what its clients saw.
//
// The harness records every request attempt it issued, with one of
// three externally-knowable outcomes:
//
//   - Acked: the reply said OK. The op executed exactly once (the
//     driver disables client-internal retries, so one attempt is one
//     wire request).
//   - NotExecuted: the failure proves the request never reached a
//     handler (the server refused it before dispatch — StatusRetry —
//     or the connection failed before the request was written). It
//     must have no effect, ever.
//   - InDoubt: the attempt failed below the reply — timeout, killed
//     connection, dead server. Under the Lampson–Sturgis fault model
//     the request MAY have executed (and with 2PC, may even commit
//     after the failure is reported), so its effect is a free 0/1
//     variable.
//
// The oracle then asks: does ANY assignment of the in-doubt variables
// explain the final state read back after heal? Three structural
// facts make this exact rather than heuristic:
//
//   - The driver serializes attempts per key, so each key's acked
//     effects apply in issue order (an acked attempt's execution is
//     inside its attempt window, and windows on one key are disjoint).
//     An in-doubt attempt's execution may be delayed past later
//     windows (its request can sit in a server queue), which is why
//     it stays a free variable to the end rather than resolving at
//     the next acked op.
//   - Counter keys take only commutative deltas, so a key's final
//     value is exactly (sum of acked deltas) + (sum of the chosen
//     in-doubt deltas) regardless of execution order.
//   - A transaction is ONE variable spanning all its keys: there is no
//     assignment in which it half-executes, so a state explainable
//     only by a split transaction is reported as the atomicity
//     violation it is.
//
// Violations the oracle can prove: an acked op lost (no assignment
// reaches the final value), a never-executed op's effect present, a
// transaction applied non-atomically, and a stale read on a key with
// no in-doubt taint. "Zero acked-but-lost" in the acceptance criteria
// is exactly CheckExternal returning nil.

import (
	"fmt"
	"sort"
	"strings"
)

// ExtKind classifies an externally-driven attempt.
type ExtKind uint8

const (
	// ExtGet reads one key.
	ExtGet ExtKind = iota + 1
	// ExtPut blind-writes Value to a blob key.
	ExtPut
	// ExtIncr adds Deltas[0] to a counter key.
	ExtIncr
	// ExtTxn atomically applies Deltas across counter Keys.
	ExtTxn
)

var extKindNames = [...]string{
	ExtGet:  "get",
	ExtPut:  "put",
	ExtIncr: "incr",
	ExtTxn:  "txn",
}

func (k ExtKind) String() string {
	if int(k) < len(extKindNames) && extKindNames[k] != "" {
		return extKindNames[k]
	}
	return fmt.Sprintf("extkind(%d)", uint8(k))
}

// ExtOutcome is what the attempt's reply proved.
type ExtOutcome uint8

const (
	// ExtAcked: OK reply; executed exactly once.
	ExtAcked ExtOutcome = iota + 1
	// ExtInDoubt: failed below the reply; may have executed.
	ExtInDoubt
	// ExtNotExecuted: refused before dispatch; never executed.
	ExtNotExecuted
)

var extOutcomeNames = [...]string{
	ExtAcked:       "acked",
	ExtInDoubt:     "in-doubt",
	ExtNotExecuted: "not-executed",
}

func (o ExtOutcome) String() string {
	if int(o) < len(extOutcomeNames) && extOutcomeNames[o] != "" {
		return extOutcomeNames[o]
	}
	return fmt.Sprintf("extoutcome(%d)", uint8(o))
}

// ExtAttempt is one wire request as the harness saw it. Record them in
// issue order; the per-key serialization the oracle relies on means a
// key's attempts never overlap in time.
type ExtAttempt struct {
	// Seq is the attempt's issue order, assigned by ExtHistory.Record.
	Seq int
	// Kind classifies the attempt.
	Kind ExtKind
	// Keys are the touched keys (one for Get/Put/Incr, the spanned
	// counter keys for Txn).
	Keys []string
	// Deltas are the per-key increments (Incr/Txn).
	Deltas []int64
	// Value is the put payload.
	Value string
	// Outcome is what the reply proved.
	Outcome ExtOutcome
	// GetValue and GetAbsent carry an acked get's observation: the
	// value read, or that the key did not exist.
	GetValue  string
	GetAbsent bool
}

// ExtHistory accumulates attempts. Safe for single-goroutine use; the
// chaos driver serializes Record calls behind its own lock.
type ExtHistory struct {
	attempts []ExtAttempt
}

// Record appends a and assigns its Seq.
func (h *ExtHistory) Record(a ExtAttempt) {
	a.Seq = len(h.attempts)
	h.attempts = append(h.attempts, a)
}

// Attempts returns the recorded history in issue order.
func (h *ExtHistory) Attempts() []ExtAttempt { return h.attempts }

// ExtFinal is the state read back after heal and quiesce. Keys absent
// from both maps are absent from the store; the reader must have
// probed every key the history touched.
type ExtFinal struct {
	// Counters holds the present counter keys' values.
	Counters map[string]int64
	// Blobs holds the present blob keys' values.
	Blobs map[string]string
}

// ExtReport summarizes a checked history.
type ExtReport struct {
	Attempts    int
	Acked       int
	InDoubt     int
	NotExecuted int
	// Keys is how many distinct keys the history touched.
	Keys int
	// Components is how many in-doubt connected components the
	// subset search solved.
	Components int
	// States is the largest reachable-sum state set a component
	// needed.
	States int
}

// maxOracleStates bounds the reachable-sum search; past it the episode
// is too tangled to verify and the check errors rather than guessing.
const maxOracleStates = 1 << 15

// CheckExternal verifies final against the recorded history. It
// returns a non-nil error naming the first violation found, and the
// report either way.
func CheckExternal(h *ExtHistory, final ExtFinal) (ExtReport, error) {
	rep := ExtReport{Attempts: len(h.attempts)}
	keys := map[string]*extKey{}
	var keyOrder []string
	key := func(name string) *extKey {
		k, ok := keys[name]
		if !ok {
			k = &extKey{name: name}
			keys[name] = k
			keyOrder = append(keyOrder, name)
		}
		return k
	}
	// First pass: classify keys, accumulate acked effects, collect
	// in-doubt variables, and verify acked-get observations inline.
	var inDoubt []ExtAttempt
	for _, a := range h.attempts {
		switch a.Outcome {
		case ExtAcked:
			rep.Acked++
		case ExtInDoubt:
			rep.InDoubt++
		case ExtNotExecuted:
			rep.NotExecuted++
		default:
			return rep, fmt.Errorf("attempt %d: unknown outcome %v", a.Seq, a.Outcome)
		}
		switch a.Kind {
		case ExtGet:
			k := key(a.Keys[0])
			if a.Outcome == ExtAcked {
				if err := k.observe(a); err != nil {
					return rep, err
				}
			}
			// A failed get has no effect; an unexecuted one neither.
		case ExtPut:
			k := key(a.Keys[0])
			if err := k.setClass(classBlob, a.Seq); err != nil {
				return rep, err
			}
			switch a.Outcome {
			case ExtAcked:
				k.lastAckedPut = a.Value
				k.ackedPuts++
			case ExtInDoubt:
				k.inDoubtPuts = append(k.inDoubtPuts, a.Value)
				k.taint = true
			}
		case ExtIncr, ExtTxn:
			if len(a.Keys) != len(a.Deltas) {
				return rep, fmt.Errorf("attempt %d: %d keys, %d deltas", a.Seq, len(a.Keys), len(a.Deltas))
			}
			for i, name := range a.Keys {
				k := key(name)
				if err := k.setClass(classCounter, a.Seq); err != nil {
					return rep, err
				}
				switch a.Outcome {
				case ExtAcked:
					k.ackedSum += a.Deltas[i]
					k.ackedIncrs++
				case ExtInDoubt:
					k.taint = true
				}
			}
			if a.Outcome == ExtInDoubt {
				inDoubt = append(inDoubt, a)
			}
		default:
			return rep, fmt.Errorf("attempt %d: unknown kind %v", a.Seq, a.Kind)
		}
	}
	rep.Keys = len(keyOrder)

	// Blob keys check locally: the final value must be the last acked
	// put or some in-doubt put (which may have executed after it).
	for _, name := range keyOrder {
		k := keys[name]
		if k.class != classBlob {
			continue
		}
		v, present := final.Blobs[name]
		switch {
		case !present && k.ackedPuts > 0:
			return rep, fmt.Errorf("key %s: acked put lost: key absent after %d acked puts", name, k.ackedPuts)
		case present && k.ackedPuts == 0 && len(k.inDoubtPuts) == 0:
			return rep, fmt.Errorf("key %s: phantom value %q: no put could have executed", name, v)
		case present:
			ok := k.ackedPuts > 0 && v == k.lastAckedPut
			for _, w := range k.inDoubtPuts {
				ok = ok || v == w
			}
			if !ok {
				return rep, fmt.Errorf("key %s: final value %q is neither the last acked put %q nor any in-doubt put", name, v, k.lastAckedPut)
			}
		}
	}

	// Counter keys: group by in-doubt transactions (union-find), then
	// per component ask whether any 0/1 assignment of its in-doubt
	// attempts reaches the final values.
	uf := newUnionFind()
	for _, a := range inDoubt {
		for i := 1; i < len(a.Keys); i++ {
			uf.union(a.Keys[0], a.Keys[i])
		}
	}
	comps := map[string][]string{}
	var compRoots []string
	for _, name := range keyOrder {
		if keys[name].class != classCounter {
			continue
		}
		root := uf.find(name)
		if _, ok := comps[root]; !ok {
			compRoots = append(compRoots, root)
		}
		comps[root] = append(comps[root], name)
	}
	attemptsByRoot := map[string][]ExtAttempt{}
	for _, a := range inDoubt {
		root := uf.find(a.Keys[0])
		attemptsByRoot[root] = append(attemptsByRoot[root], a)
	}
	for _, root := range compRoots {
		rep.Components++
		states, err := checkComponent(comps[root], attemptsByRoot[root], keys, final)
		if states > rep.States {
			rep.States = states
		}
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

type extClass uint8

const (
	classUnknown extClass = iota
	classCounter
	classBlob
)

// extKey is the oracle's per-key accumulator.
type extKey struct {
	name  string
	class extClass
	// taint marks that an in-doubt mutating attempt has touched the
	// key; acked gets after the first taint carry no exact
	// expectation (the in-doubt request may execute at any later
	// point), so observation checking stops there.
	taint bool

	// Counter state.
	ackedSum   int64
	ackedIncrs int

	// Blob state.
	lastAckedPut string
	ackedPuts    int
	inDoubtPuts  []string
}

func (k *extKey) setClass(c extClass, seq int) error {
	if k.class == classUnknown {
		k.class = c
	}
	if k.class != c {
		return fmt.Errorf("attempt %d: key %s used as both counter and blob", seq, k.name)
	}
	return nil
}

// observe scores an acked get against the key's exact expectation,
// valid only before the first in-doubt taint.
func (k *extKey) observe(a ExtAttempt) error {
	if k.taint {
		return nil
	}
	switch k.class {
	case classUnknown:
		// Nothing could have executed yet: the key must not exist.
		if !a.GetAbsent {
			return fmt.Errorf("attempt %d: key %s read %q before any mutation", a.Seq, k.name, a.GetValue)
		}
	case classCounter:
		if k.ackedIncrs == 0 {
			if !a.GetAbsent {
				return fmt.Errorf("attempt %d: key %s read %q with no acked increments", a.Seq, k.name, a.GetValue)
			}
			return nil
		}
		want := fmt.Sprintf("%d", k.ackedSum)
		if a.GetAbsent || a.GetValue != want {
			return fmt.Errorf("attempt %d: stale read on %s: got %s, want %s (no in-doubt taint)",
				a.Seq, k.name, renderGet(a), want)
		}
	case classBlob:
		if k.ackedPuts == 0 {
			if !a.GetAbsent {
				return fmt.Errorf("attempt %d: key %s read %q with no acked puts", a.Seq, k.name, a.GetValue)
			}
			return nil
		}
		if a.GetAbsent || a.GetValue != k.lastAckedPut {
			return fmt.Errorf("attempt %d: stale read on %s: got %s, want %q (no in-doubt taint)",
				a.Seq, k.name, renderGet(a), k.lastAckedPut)
		}
	}
	return nil
}

func renderGet(a ExtAttempt) string {
	if a.GetAbsent {
		return "absent"
	}
	return fmt.Sprintf("%q", a.GetValue)
}

// checkComponent runs the reachable-sum search over one connected
// component: state = (per-key sums of chosen in-doubt deltas, bitmask
// of keys any chosen attempt created). It reports the peak state count
// and a violation error if no assignment explains the final values.
func checkComponent(names []string, attempts []ExtAttempt, keys map[string]*extKey, final ExtFinal) (int, error) {
	sort.Strings(names)
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	type state struct {
		sums    string // encoded per-key sums
		created uint64 // which keys some chosen attempt touched
	}
	encode := func(sums []int64) string {
		var b strings.Builder
		for _, s := range sums {
			fmt.Fprintf(&b, "%d,", s)
		}
		return b.String()
	}
	// reach is the deduplicating set; order is its insertion-ordered
	// mirror, so iteration never touches map order (this package is
	// sweep-deterministic).
	zero := make([]int64, len(names))
	start := state{sums: encode(zero)}
	reach := map[state][]int64{start: zero}
	order := []state{start}
	peak := 1
	for _, a := range attempts {
		next := make(map[state][]int64, 2*len(reach))
		nextOrder := make([]state, 0, 2*len(order))
		add := func(st state, sums []int64) {
			if _, ok := next[st]; !ok {
				next[st] = sums
				nextOrder = append(nextOrder, st)
			}
		}
		for _, st := range order {
			sums := reach[st]
			// Excluded: state carries over.
			add(st, sums)
			// Included: add the attempt's deltas.
			withSums := append([]int64(nil), sums...)
			created := st.created
			for i, name := range a.Keys {
				j, ok := idx[name]
				if !ok {
					return peak, fmt.Errorf("attempt %d: key %s outside its component", a.Seq, name)
				}
				withSums[j] += a.Deltas[i]
				created |= 1 << uint(j)
			}
			add(state{sums: encode(withSums), created: created}, withSums)
		}
		reach, order = next, nextOrder
		if len(reach) > peak {
			peak = len(reach)
		}
		if len(reach) > maxOracleStates {
			return peak, fmt.Errorf("oracle state explosion: %d reachable states over %d in-doubt attempts; bound the episode", len(reach), len(attempts))
		}
	}
	// Which assignments match the final state? A key is present with
	// value v iff ackedSum + chosen = v and something created it; a
	// key is absent iff it has no acked attempts and no chosen attempt
	// touched it.
	for _, st := range order {
		sums := reach[st]
		ok := true
		for j, name := range names {
			k := keys[name]
			v, present := final.Counters[name]
			switch {
			case present:
				if k.ackedSum+sums[j] != v {
					ok = false
				}
				if k.ackedIncrs == 0 && st.created&(1<<uint(j)) == 0 {
					ok = false // present but nothing could have created it
				}
			default:
				// Absent: no acked effect and no chosen attempt.
				if k.ackedIncrs > 0 || st.created&(1<<uint(j)) != 0 {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return peak, nil
		}
	}
	return peak, componentError(names, attempts, keys, final)
}

// componentError renders the unexplainable component's evidence.
func componentError(names []string, attempts []ExtAttempt, keys map[string]*extKey, final ExtFinal) error {
	var b strings.Builder
	fmt.Fprintf(&b, "no in-doubt assignment explains the final state of component {%s}:", strings.Join(names, " "))
	for _, name := range names {
		k := keys[name]
		v, present := final.Counters[name]
		if present {
			fmt.Fprintf(&b, " %s: final %d, acked sum %d (%d acked);", name, v, k.ackedSum, k.ackedIncrs)
		} else {
			fmt.Fprintf(&b, " %s: absent, acked sum %d (%d acked);", name, k.ackedSum, k.ackedIncrs)
		}
	}
	fmt.Fprintf(&b, " %d in-doubt attempts", len(attempts))
	return fmt.Errorf("%s", b.String())
}

// unionFind is a plain path-compressing union-find over key names.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}
