package crashtest

// Distributed crash testing: several guardians exchange funds through
// two-phase commit while nodes crash at random points of the protocol.
// The invariant is the distributed analogue of the chapter 6 property:
// across all guardians, every committed action is all-or-nothing, so
// the total of all committed balances is conserved; in-doubt actions
// resolve to the coordinator's verdict (§2.2.2/§2.2.3).

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/twopc"
	"repro/internal/value"
)

// DistributedConfig parameterizes a distributed harness run.
type DistributedConfig struct {
	Backend   core.Backend
	Guardians int
	Steps     int
	Seed      int64
	// CrashEvery ~1/n transfers are interrupted by crashing a random
	// involved guardian at a random protocol step.
	CrashEvery int
	// HousekeepEvery runs a snapshot pass at a random guardian every n
	// steps (hybrid backend only; 0 disables).
	HousekeepEvery int
	// InitialBalance per guardian.
	InitialBalance int64
}

// DistributedResult summarizes a run.
type DistributedResult struct {
	Committed, Aborted, Crashes, Queries int
}

// RunDistributed executes the harness, returning an error on the first
// invariant violation.
func RunDistributed(cfg DistributedConfig) (DistributedResult, error) {
	var res DistributedResult
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := netsim.New()

	gs := make([]*guardian.Guardian, cfg.Guardians)
	for i := range gs {
		g, err := guardian.New(ids.GuardianID(i+1), guardian.WithBackend(cfg.Backend))
		if err != nil {
			return res, err
		}
		g.SetSynchronousForces(true)
		boot := g.Begin()
		vault, err := boot.NewAtomic(value.Int(cfg.InitialBalance))
		if err != nil {
			return res, err
		}
		if err := boot.SetVar("vault", vault); err != nil {
			return res, err
		}
		if err := boot.Commit(); err != nil {
			return res, err
		}
		gs[i] = g
	}
	total := cfg.InitialBalance * int64(cfg.Guardians)

	balance := func(g *guardian.Guardian) (int64, error) {
		v, ok := g.VarAtomic("vault")
		if !ok {
			return 0, fmt.Errorf("crashtest: vault lost at %v", g.ID())
		}
		iv, ok := v.Base().(value.Int)
		if !ok {
			return 0, fmt.Errorf("crashtest: vault at %v is %s", g.ID(), value.String(v.Base()))
		}
		return int64(iv), nil
	}

	// settle recovers crashed guardians, resolves in-doubt actions via
	// coordinator queries, and finishes unfinished coordinators.
	settle := func() error {
		for i, g := range gs {
			if !netUp(net, g) {
				net.SetDown(g.ID(), false)
				ng, err := guardian.Restart(g)
				if err != nil {
					return err
				}
				ng.SetSynchronousForces(true)
				if err := guardian.CheckRecovered(ng); err != nil {
					return err
				}
				gs[i] = ng
			}
		}
		// Coordinators first: finish phase two of committed actions.
		for _, g := range gs {
			for _, aid := range g.Unfinished() {
				parts := make([]twopc.Participant, len(gs))
				for i := range gs {
					parts[i] = gs[i]
				}
				c := &twopc.Coordinator{Self: g.ID(), Net: net, Log: g}
				if _, err := c.Complete(aid, parts); err != nil {
					return err
				}
			}
		}
		// Participants query coordinators for in-doubt actions.
		for _, g := range gs {
			for _, aid := range g.InDoubt() {
				coord := gs[int(aid.Coordinator)-1]
				out, err := twopc.Query(net, g.ID(), coord, aid)
				if err != nil {
					return err
				}
				res.Queries++
				switch out {
				case twopc.OutcomeCommitted:
					if err := g.HandleCommit(aid); err != nil {
						return err
					}
				default:
					if err := g.HandleAbort(aid); err != nil {
						return err
					}
				}
			}
		}
		// Branches that never prepared still hold volatile locks at the
		// survivors; their actions cannot have committed (commitment
		// requires every participant's prepared vote), so abort them
		// once the coordinator confirms.
		for _, g := range gs {
			for _, aid := range g.LiveActions() {
				coord := gs[int(aid.Coordinator)-1]
				if coord.OutcomeOf(aid) == twopc.OutcomeCommitted {
					continue // a prepared branch settled above; leave it
				}
				if err := g.HandleAbort(aid); err != nil {
					return err
				}
			}
		}
		return nil
	}

	checkConservation := func(step int) error {
		var sum int64
		for _, g := range gs {
			b, err := balance(g)
			if err != nil {
				return err
			}
			sum += b
		}
		if sum != total {
			return fmt.Errorf("crashtest: step %d: total = %d, want %d (money not conserved)",
				step, sum, total)
		}
		return nil
	}

	for step := 0; step < cfg.Steps; step++ {
		// Pick a coordinator and a distinct participant.
		ci := rng.Intn(len(gs))
		pi := rng.Intn(len(gs) - 1)
		if pi >= ci {
			pi++
		}
		coord, part := gs[ci], gs[pi]
		amount := int64(rng.Intn(50) + 1)

		a := coord.Begin()
		branch := part.Join(a.ID())
		cv, _ := coord.VarAtomic("vault")
		pv, _ := part.VarAtomic("vault")
		if err := a.Update(cv, func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) - amount)
		}); err != nil {
			return res, err
		}
		if err := branch.Update(pv, func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + amount)
		}); err != nil {
			return res, err
		}

		crashing := cfg.CrashEvery > 0 && rng.Intn(cfg.CrashEvery) == 0
		if crashing {
			// Crash one of the two at a random point of the protocol by
			// arming a device-level crash there, then run 2PC; the run
			// fails partway.
			victim := coord
			if rng.Intn(2) == 0 {
				victim = part
			}
			victim.Volume().ArmCrashAfterWrites(1 + rng.Intn(8))
			c := &twopc.Coordinator{Self: coord.ID(), Net: net, Log: coord}
			//roslint:besteffort crash-injected run is expected to fail; settle/conservation checks judge the outcome
			_, _ = c.Run(a.ID(), []twopc.Participant{coord, part})
			victim.Crash()
			net.SetDown(victim.ID(), true)
			res.Crashes++
			if err := settle(); err != nil {
				return res, err
			}
			if err := checkConservation(step); err != nil {
				return res, err
			}
			continue
		}

		c := &twopc.Coordinator{Self: coord.ID(), Net: net, Log: coord}
		r, err := c.Run(a.ID(), []twopc.Participant{coord, part})
		if err != nil {
			res.Aborted++
		} else if r.Outcome == twopc.OutcomeCommitted {
			res.Committed++
		}
		if err := checkConservation(step); err != nil {
			return res, err
		}

		if cfg.HousekeepEvery > 0 && cfg.Backend == core.BackendHybrid &&
			step > 0 && step%cfg.HousekeepEvery == 0 {
			hg := gs[rng.Intn(len(gs))]
			if _, err := hg.Housekeep(core.HousekeepSnapshot); err != nil {
				return res, fmt.Errorf("crashtest: distributed housekeeping at step %d: %w", step, err)
			}
			if err := checkConservation(step); err != nil {
				return res, err
			}
		}
	}
	// Final settle and a clean crash-all to confirm stable-state
	// conservation.
	if err := settle(); err != nil {
		return res, err
	}
	for i, g := range gs {
		g.Crash()
		ng, err := guardian.Restart(g)
		if err != nil {
			return res, err
		}
		ng.SetSynchronousForces(true)
		gs[i] = ng
		res.Crashes++
	}
	if err := settle(); err != nil {
		return res, err
	}
	if err := checkConservation(cfg.Steps); err != nil {
		return res, err
	}
	return res, nil
}

func netUp(net *netsim.Network, g *guardian.Guardian) bool {
	return net.Reachable(g.ID(), g.ID())
}
