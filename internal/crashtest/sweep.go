package crashtest

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/obs"
	"repro/internal/stable"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// The sweep mode is the exhaustive counterpart of Run: instead of
// crashing at random writes of a random history, it fixes one scripted
// history, counts every device block write W it performs, and replays
// it W times, crashing at write k for each k in 1..W. Each crash point
// is then deepened: the recovery that follows is itself crashed at
// every one of its writes (double crash), and each of those recoveries
// is crashed once more at its first write (triple crash), before a
// final undisturbed recovery runs. After every terminal recovery the
// chapter 6 invariant is checked: the recovered state equals the serial
// run of the actions that committed — the pre- or post-state of the
// interrupted action, never a mixture — and structural invariants hold
// (guardian.CheckRecovered).

// DecayMode selects which device copies decay between every crash and
// the recovery that follows. All modes decay at most one copy of any
// block, which two-copy read-repair must survive; loss of both copies
// is exercised separately (it is a detected failure, not a recoverable
// one).
type DecayMode uint8

const (
	// DecayNone injects no read-path faults.
	DecayNone DecayMode = iota
	// DecayDeviceA decays every block of the primary device of every
	// pair before each recovery.
	DecayDeviceA
	// DecayDeviceB decays every block of the secondary device.
	DecayDeviceB
	// DecayAlternate decays even blocks on the primary and odd blocks
	// on the secondary, exercising per-device divergence.
	DecayAlternate
)

func (m DecayMode) String() string {
	switch m {
	case DecayNone:
		return "none"
	case DecayDeviceA:
		return "device-a"
	case DecayDeviceB:
		return "device-b"
	case DecayAlternate:
		return "alternate"
	default:
		return fmt.Sprintf("decay(%d)", uint8(m))
	}
}

// SweepConfig parameterizes an exhaustive crash-point sweep.
type SweepConfig struct {
	Backend core.Backend
	Seed    int64
	// Steps is the number of scripted actions after the setup action.
	Steps int
	// Mutex adds a §2.4.2 mutex object to the script.
	Mutex bool
	// Housekeep interleaves housekeeping passes (hybrid backend only).
	Housekeep bool
	// Decay selects read-path fault injection before every recovery.
	Decay DecayMode
	// BlockSize is the simulated device block size (default 512).
	BlockSize int
}

// SweepResult summarizes one sweep.
type SweepResult struct {
	// Writes is W, the device write count of the undisturbed history.
	Writes int
	// Points is the number of distinct crash scenarios exercised (one
	// per terminal verification: single, double, and triple crashes).
	Points int
	// Recoveries counts recovery attempts, including interrupted ones.
	Recoveries int
	// Deepest is the largest number of stacked crashes any point hit.
	Deepest int
}

// SweepError identifies the exact failing scenario so it can be
// replayed: the backend, the seed, and the crash schedule (history
// write k, then recovery writes for the nested crashes).
type SweepError struct {
	Backend core.Backend
	Seed    int64
	Decay   DecayMode
	// Crashes is the crash schedule, outermost first: Crashes[0] is the
	// history write the first crash hit, Crashes[1] the write of the
	// first recovery the second crash hit, and so on.
	Crashes []int
	// Step is the script step the first crash interrupted (-1 for the
	// setup phase, len(script) if the history completed).
	Step int
	Err  error
}

func (e *SweepError) Error() string {
	return fmt.Sprintf("sweep %v seed=%d decay=%v crashes=%v step=%d: %v",
		e.Backend, e.Seed, e.Decay, e.Crashes, e.Step, e.Err)
}

func (e *SweepError) Unwrap() error { return e.Err }

// --- the scripted history ----------------------------------------------

const sweepCounters = 3

type stepKind uint8

const (
	stepCommit stepKind = iota
	stepAbort
	stepHousekeep
)

type update struct {
	name  string
	delta int64
}

type scriptStep struct {
	kind     stepKind
	updates  []update
	mutexVal int64 // 0 = no mutex write this step
	early    bool  // early-prepare before committing (hybrid)
	hkKind   core.HousekeepKind
}

func counterName(i int) string { return fmt.Sprintf("c%d", i) }

// buildScript derives the deterministic history from the seed. The
// script, not the runner, holds all randomness: every replay performs
// the same operations in the same order, so the device write sequence
// is identical across replays and write k always lands in the same
// operation.
func buildScript(cfg SweepConfig) []scriptStep {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var script []scriptStep
	for i := 0; i < cfg.Steps; i++ {
		st := scriptStep{kind: stepCommit}
		if rng.Intn(4) == 0 {
			st.kind = stepAbort
		}
		k := 1 + rng.Intn(sweepCounters)
		for _, idx := range rng.Perm(sweepCounters)[:k] {
			st.updates = append(st.updates, update{counterName(idx), int64(rng.Intn(20) - 10)})
		}
		// Seize only on committing steps: mutex modifications are not
		// undone by abort (Argus §2.4.2 — seize is in-place), so a
		// seize on an aborting step would leave the volatile value
		// ahead of every recoverable state and no serial oracle could
		// predict it.
		if cfg.Mutex && st.kind == stepCommit && rng.Intn(2) == 0 {
			st.mutexVal = int64(i + 1)
		}
		if cfg.Backend == core.BackendHybrid && st.kind == stepCommit && rng.Intn(4) == 0 {
			st.early = true
		}
		script = append(script, st)
		if cfg.Housekeep && cfg.Backend == core.BackendHybrid && (i+1)%3 == 0 {
			hk := scriptStep{kind: stepHousekeep, hkKind: core.HousekeepCompact}
			if rng.Intn(2) == 0 {
				hk.hkKind = core.HousekeepSnapshot
			}
			script = append(script, hk)
		}
	}
	return script
}

// counterState is one point of the serial oracle.
type counterState map[string]int64

// oracle precomputes, for each script step i, the committed state
// before and after it, plus the stable mutex value before it. The
// runner never computes state — a crash can interrupt it anywhere, and
// the allowed outcomes must be known independently of how far it got.
type oracle struct {
	pre, post  []counterState
	preMutex   []int64
	finalMutex int64
	zero       counterState
}

func buildOracle(script []scriptStep) *oracle {
	o := &oracle{zero: make(counterState)}
	for i := 0; i < sweepCounters; i++ {
		o.zero[counterName(i)] = 0
	}
	cur := o.zero
	var mutex int64
	for _, st := range script {
		o.pre = append(o.pre, cur)
		o.preMutex = append(o.preMutex, mutex)
		if st.kind == stepCommit {
			next := make(counterState, len(cur))
			//roslint:nondet order-independent: whole-map copy into a keyed map
			for k, v := range cur {
				next[k] = v
			}
			for _, u := range st.updates {
				next[u.name] += u.delta
			}
			cur = next
			if st.mutexVal != 0 {
				mutex = st.mutexVal
			}
		}
		o.post = append(o.post, cur)
	}
	o.finalMutex = mutex
	return o
}

// --- executing the history ---------------------------------------------

// executeScript runs the scripted history on vol until it completes or
// the armed crash fires. It returns the interrupted step index (-1 for
// the setup phase, len(script) on completion) and the guardian (nil
// once crashed). A non-crash error is a harness failure. install, when
// non-nil, runs on the fresh guardian before the setup action — the
// replicated sweep hooks the log replicator in there.
func executeScript(vol *stablelog.MemVolume, cfg SweepConfig, script []scriptStep, tr obs.Tracer, install func(*guardian.Guardian) error) (int, *guardian.Guardian, error) {
	crashed := func(err error) (bool, error) {
		if err == nil {
			return false, nil
		}
		if vol.GlobalCrashFired() {
			return true, nil
		}
		return false, err
	}
	g, err := guardian.New(1, guardian.WithBackend(cfg.Backend), guardian.WithVolume(vol), guardian.WithTracer(tr))
	if c, err := crashed(err); err != nil {
		return -1, nil, err
	} else if c {
		return -1, nil, nil
	}
	// The sweep counts device writes to place crash points; pin
	// synchronous forces so the counts are a pure function of the
	// schedule, independent of group-commit coalescing.
	g.SetSynchronousForces(true)
	if install != nil {
		if err := install(g); err != nil {
			return -1, nil, err
		}
	}
	init := g.Begin()
	var initErr error
	for i := 0; i < sweepCounters && initErr == nil; i++ {
		c, err := init.NewAtomic(value.Int(0))
		if err == nil {
			err = init.SetVar(counterName(i), c)
		}
		initErr = err
	}
	if cfg.Mutex && initErr == nil {
		m, err := init.NewMutex(value.Int(0))
		if err == nil {
			err = init.SetVar("journal", m)
		}
		initErr = err
	}
	if initErr == nil {
		initErr = init.Commit()
	}
	if c, err := crashed(initErr); err != nil {
		return -1, nil, err
	} else if c {
		return -1, nil, nil
	}
	for i, st := range script {
		if c, err := crashed(runStep(g, st)); err != nil {
			return i, nil, fmt.Errorf("step %d: %w", i, err)
		} else if c {
			return i, nil, nil
		}
	}
	return len(script), g, nil
}

func runStep(g *guardian.Guardian, st scriptStep) error {
	if st.kind == stepHousekeep {
		_, err := g.Housekeep(st.hkKind)
		return err
	}
	a := g.Begin()
	for _, u := range st.updates {
		c, ok := g.VarAtomic(u.name)
		if !ok {
			return fmt.Errorf("crashtest: counter %s lost", u.name)
		}
		delta := u.delta
		if err := a.Update(c, func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + delta)
		}); err != nil {
			return err
		}
	}
	if st.mutexVal != 0 {
		m, ok := g.VarMutex("journal")
		if !ok {
			return fmt.Errorf("crashtest: journal lost")
		}
		v := st.mutexVal
		if err := a.Seize(m, func(value.Value) value.Value { return value.Int(v) }); err != nil {
			return err
		}
	}
	if st.early {
		if err := a.EarlyPrepare(); err != nil {
			return err
		}
	}
	if st.kind == stepAbort {
		return a.Abort()
	}
	return a.Commit()
}

func applyDecay(vol *stablelog.MemVolume, mode DecayMode) {
	if mode == DecayNone {
		return
	}
	vol.EachDevicePair(func(label string, a, b *stable.MemDevice) {
		// Never decay a copy whose sibling is already bad: the crash
		// being recovered from tore the block it interrupted, and a
		// second failure of that page before repair would violate the
		// single-failure assumption (it is genuine data loss, exercised
		// separately as a detected failure).
		decay := func(dev, sib *stable.MemDevice, i int) {
			if !sib.Bad(i) {
				dev.Decay(i)
			}
		}
		n := a.NumBlocks()
		if m := b.NumBlocks(); m > n {
			n = m
		}
		for i := 0; i < n; i++ {
			switch mode {
			case DecayDeviceA:
				decay(a, b, i)
			case DecayDeviceB:
				decay(b, a, i)
			case DecayAlternate:
				if i%2 == 0 {
					decay(a, b, i)
				} else {
					decay(b, a, i)
				}
			}
		}
	})
}

// recoverOnce crashes the volume, optionally applies decay, optionally
// arms a crash at recovery write armAt (0 = unarmed), and attempts a
// full recovery including in-doubt resolution. It returns the recovered
// guardian (nil if the armed crash fired or the site was never durably
// created), whether the armed crash fired, and whether the volume holds
// no site at all.
//
// Decay is injected only before the FIRST recovery after the history
// crash, never before the deeper recoveries of a double/triple-crash
// probe: a crash interrupts repair mid-write, leaving one copy torn,
// and decaying the surviving copy before repair resumes would be a
// second independent failure of the same page — outside the
// single-failure assumption the two-copy protocol (and the thesis)
// makes.
func recoverOnce(vol *stablelog.MemVolume, cfg SweepConfig, armAt int, withDecay bool, tr obs.Tracer) (g *guardian.Guardian, fired, noSite bool, err error) {
	vol.Crash()
	vol.Restart()
	if withDecay {
		applyDecay(vol, cfg.Decay)
	}
	if armAt > 0 {
		vol.ArmGlobalCrashAtWrite(armAt)
	}
	g, err = guardian.Open(1, vol, cfg.Backend, guardian.WithTracer(tr))
	if err == nil {
		g.SetSynchronousForces(true)
		err = guardian.CheckRecovered(g)
	}
	if err == nil {
		err = resolveInDoubt(g)
	}
	if err != nil {
		if vol.GlobalCrashFired() {
			return nil, true, false, nil
		}
		if isNoSite(err) {
			return nil, false, true, nil
		}
		return nil, false, false, err
	}
	return g, false, false, nil
}

func isNoSite(err error) bool {
	return errors.Is(err, stablelog.ErrNoSite)
}

// --- verification ------------------------------------------------------

// verifyRecovered checks the chapter 6 invariant for a recovery whose
// first crash interrupted script step s: the counters equal the serial
// pre- or post-state of that step, in full. noSite (the guardian was
// never durably created) is legal only for a setup-phase crash.
func verifyRecovered(g *guardian.Guardian, cfg SweepConfig, script []scriptStep, o *oracle, s int, noSite bool) error {
	if noSite {
		if s != -1 {
			return fmt.Errorf("site vanished though creation had committed")
		}
		return nil
	}
	read := func() (counterState, error) {
		got := make(counterState, sweepCounters)
		for i := 0; i < sweepCounters; i++ {
			n := counterName(i)
			c, ok := g.VarAtomic(n)
			if !ok {
				return nil, nil // counters absent
			}
			v, ok := c.Base().(value.Int)
			if !ok {
				return nil, fmt.Errorf("%s holds %s, not an int", n, value.String(c.Base()))
			}
			got[n] = int64(v)
		}
		return got, nil
	}
	got, err := read()
	if err != nil {
		return err
	}
	if s == -1 {
		// Crash during setup: either the init action never committed
		// (no counters) or it committed in full (all zeros).
		if got == nil {
			return nil
		}
		if !statesEqual(got, o.zero) {
			return fmt.Errorf("setup crash recovered to %v, want absent or all-zero", got)
		}
		return nil
	}
	if got == nil {
		return fmt.Errorf("counters lost after step-%d crash", s)
	}
	var allowed []counterState
	var label string
	switch {
	case s == len(script):
		allowed = []counterState{finalState(o, script)}
		label = "completed history"
	case script[s].kind == stepCommit:
		allowed = []counterState{o.pre[s], o.post[s]}
		label = "interrupted commit"
	default: // abort or housekeeping: committed state must not move
		allowed = []counterState{o.pre[s]}
		label = "interrupted " + stepLabel(script[s].kind)
	}
	idx := -1
	for i, w := range allowed {
		if statesEqual(got, w) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%s: recovered %v, allowed %v (neither pre- nor post-state in full)", label, got, allowed)
	}
	return verifyMutex(g, cfg, script, o, s, idx == 1)
}

// verifyMutex checks the §2.4.2 mutex rules: a seize is durable iff the
// writing action prepared, so after a crash the stable value is either
// the pre-crash stable value or the interrupted step's write — and if
// the interrupted action's counters committed, its seize necessarily
// reached stable storage with them.
func verifyMutex(g *guardian.Guardian, cfg SweepConfig, script []scriptStep, o *oracle, s int, tookPost bool) error {
	if !cfg.Mutex {
		return nil
	}
	m, ok := g.VarMutex("journal")
	if !ok {
		return fmt.Errorf("journal lost")
	}
	v, isInt := m.Current().(value.Int)
	if !isInt {
		return fmt.Errorf("journal holds %s", value.String(m.Current()))
	}
	got := int64(v)
	switch {
	case s == len(script):
		if got != o.finalMutex {
			return fmt.Errorf("journal = %d after completed history, want %d", got, o.finalMutex)
		}
	case script[s].kind == stepCommit && script[s].mutexVal != 0:
		if tookPost {
			// The action committed, so its seize is durable with it.
			if got != script[s].mutexVal {
				return fmt.Errorf("action committed but journal = %d, want %d", got, script[s].mutexVal)
			}
		} else if got != o.preMutex[s] && got != script[s].mutexVal {
			// Aborted counters, but the seize survives iff the prepare
			// completed before the crash; both values are legal.
			return fmt.Errorf("journal = %d, want %d or %d", got, o.preMutex[s], script[s].mutexVal)
		}
	default:
		if got != o.preMutex[min(s, len(o.preMutex)-1)] {
			return fmt.Errorf("journal = %d, want %d", got, o.preMutex[min(s, len(o.preMutex)-1)])
		}
	}
	return nil
}

func stepLabel(k stepKind) string {
	switch k {
	case stepAbort:
		return "abort"
	case stepHousekeep:
		return "housekeeping"
	default:
		return "commit"
	}
}

func statesEqual(a, b counterState) bool {
	if len(a) != len(b) {
		return false
	}
	//roslint:nondet order-independent: commutative equality conjunction
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func finalState(o *oracle, script []scriptStep) counterState {
	if len(script) == 0 {
		return o.zero
	}
	return o.post[len(script)-1]
}

// --- the sweep ---------------------------------------------------------

// maxRecoveryProbe bounds the double-crash probe loop per crash point;
// recoveries of these small scripted histories perform far fewer writes
// than this, so hitting the cap means the probe failed to terminate and
// is itself a bug.
const maxRecoveryProbe = 400

// Sweep runs the exhaustive crash-point sweep described in the package
// comment for one configuration. It returns a *SweepError naming the
// failing (backend, seed, crash schedule) triple on the first property
// violation.
func Sweep(cfg SweepConfig) (SweepResult, error) {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 512
	}
	var res SweepResult
	script := buildScript(cfg)
	o := buildOracle(script)

	fail := func(crashes []int, step int, err error) error {
		return &SweepError{
			Backend: cfg.Backend, Seed: cfg.Seed, Decay: cfg.Decay,
			Crashes: append([]int(nil), crashes...), Step: step, Err: err,
		}
	}

	// Counting run: no crash, just tally W device writes. Like every
	// scenario below, it runs under a runtime invariant checker fed by
	// the event stream.
	chk := obs.NewChecker(nil)
	countVol := stablelog.NewMemVolume(cfg.BlockSize)
	countVol.ArmGlobalCrashAtWrite(0)
	s, g, err := executeScript(countVol, cfg, script, chk, nil)
	if err != nil {
		return res, fail(nil, s, err)
	}
	if s != len(script) || g == nil {
		return res, fail(nil, s, fmt.Errorf("unarmed history did not complete (stopped at step %d)", s))
	}
	if err := verifyRecovered(g, cfg, script, o, s, false); err != nil {
		return res, fail(nil, s, err)
	}
	if err := chk.Err(); err != nil {
		return res, fail(nil, s, err)
	}
	res.Writes = countVol.GlobalWrites()

	// replay runs the history on a fresh volume with a crash armed at
	// write k, returning the volume and the interrupted step. The
	// checker spans the replay and every recovery of its crash point:
	// each recovery's log-open event resets the force boundary, so the
	// rules hold across the crashes.
	replay := func(k int, chk *obs.Checker) (*stablelog.MemVolume, int, error) {
		vol := stablelog.NewMemVolume(cfg.BlockSize)
		vol.ArmGlobalCrashAtWrite(k)
		s, _, err := executeScript(vol, cfg, script, chk, nil)
		return vol, s, err
	}

	for k := 1; k <= res.Writes; k++ {
		// Depth 1: crash at history write k, recover undisturbed.
		chk := obs.NewChecker(nil)
		vol, s, err := replay(k, chk)
		if err != nil {
			return res, fail([]int{k}, s, err)
		}
		if s == len(script) {
			// The crash never fired (k beyond this replay's writes —
			// possible only if replays diverge; still verify).
			res.Points++
			continue
		}
		g, fired, noSite, err := recoverOnce(vol, cfg, 0, true, chk)
		res.Recoveries++
		if err != nil {
			return res, fail([]int{k}, s, err)
		}
		if fired {
			return res, fail([]int{k}, s, fmt.Errorf("unarmed recovery reported a crash"))
		}
		if err := verifyRecovered(g, cfg, script, o, s, noSite); err != nil {
			return res, fail([]int{k}, s, err)
		}
		if err := chk.Err(); err != nil {
			return res, fail([]int{k}, s, err)
		}
		res.Points++
		if res.Deepest < 1 {
			res.Deepest = 1
		}

		// Depth 2 and 3: crash the recovery at each of its writes m;
		// when that fires, crash the next recovery at its first write,
		// then recover undisturbed and verify.
		for m := 1; ; m++ {
			if m > maxRecoveryProbe {
				return res, fail([]int{k, m}, s, fmt.Errorf("recovery crash probe did not terminate"))
			}
			chk := obs.NewChecker(nil)
			vol, s2, err := replay(k, chk)
			if err != nil {
				return res, fail([]int{k}, s2, err)
			}
			if s2 == len(script) {
				break
			}
			g, fired, noSite, err := recoverOnce(vol, cfg, m, true, chk)
			res.Recoveries++
			if err != nil {
				return res, fail([]int{k, m}, s2, err)
			}
			if !fired {
				// Recovery finished before reaching write m: the probe
				// has covered every recovery write. Verify and stop.
				if err := verifyRecovered(g, cfg, script, o, s2, noSite); err != nil {
					return res, fail([]int{k, m}, s2, err)
				}
				if err := chk.Err(); err != nil {
					return res, fail([]int{k, m}, s2, err)
				}
				res.Points++
				break
			}
			// Triple crash: interrupt the second recovery at its first
			// write, then let a final recovery run to completion.
			depth := 2
			g, fired, noSite, err = recoverOnce(vol, cfg, 1, false, chk)
			res.Recoveries++
			if err != nil {
				return res, fail([]int{k, m, 1}, s2, err)
			}
			if fired {
				depth = 3
				g, fired, noSite, err = recoverOnce(vol, cfg, 0, false, chk)
				res.Recoveries++
				if err != nil {
					return res, fail([]int{k, m, 1}, s2, err)
				}
				if fired {
					return res, fail([]int{k, m, 1}, s2, fmt.Errorf("unarmed recovery reported a crash"))
				}
			}
			if err := verifyRecovered(g, cfg, script, o, s2, noSite); err != nil {
				return res, fail([]int{k, m, 1}, s2, err)
			}
			if err := chk.Err(); err != nil {
				return res, fail([]int{k, m, 1}, s2, err)
			}
			res.Points++
			if res.Deepest < depth {
				res.Deepest = depth
			}
		}
	}
	return res, nil
}
