package crashtest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stablelog"
	"repro/internal/twopc"
	"repro/internal/value"
)

// The cross-shard sweep is the sharded deployment's analogue of the
// crash-point sweep: a fixed two-shard transfer history runs with the
// coordinator shard's guardian crashed at every one of its device
// writes — before its prepare, inside the committing record, between
// the commit applications, inside the done record — and after every
// crash the coordinator recovers, the cluster settles (unfinished
// coordinators complete phase two, in-doubt participants query), and
// the result is checked against a serial oracle. Transfer amounts are
// distinct powers of two, so the set of committed transfers reads
// directly off the balances; the checked properties are:
//
//   - conservation: the two vault balances always sum to the initial
//     total (all-or-nothing across shards);
//   - zero acked-but-lost: every transfer acknowledged committed
//     before the crash is present after recovery;
//   - serial order: the committed set is exactly the acknowledged
//     prefix, plus at most the interrupted transfer — never a later
//     one, never a gap.

// shardSweepIDs: the coordinator shard's guardian and the participant
// shard's guardian.
var shardSweepIDs = [2]ids.GuardianID{2, 4}

// ShardSweepConfig parameterizes a cross-shard crash-point sweep. The
// history is fully deterministic — there is no seed; transfer i moves
// 1<<i units from the coordinator shard to the participant shard.
type ShardSweepConfig struct {
	Backend core.Backend
	// Steps is the number of cross-shard transfers (≤ 16 keeps the
	// balances comfortably inside int64).
	Steps int
	// BlockSize is the simulated device block size (default 512).
	BlockSize int
}

// ShardSweepResult summarizes one sweep.
type ShardSweepResult struct {
	// Writes is W, the coordinator's device write count for the
	// undisturbed history.
	Writes int
	// Points is the number of verified crash scenarios.
	Points int
	// Recoveries counts coordinator recoveries run and verified.
	Recoveries int
}

// ShardSweepError identifies the failing scenario.
type ShardSweepError struct {
	Backend core.Backend
	// Crash is the coordinator device write the crash hit (0 = the
	// counting run).
	Crash int
	// Step is the transfer the crash interrupted (-1 for the setup
	// phase, Steps if the history completed).
	Step int
	Err  error
}

func (e *ShardSweepError) Error() string {
	return fmt.Sprintf("shardsweep %v crash=%d step=%d: %v", e.Backend, e.Crash, e.Step, e.Err)
}

func (e *ShardSweepError) Unwrap() error { return e.Err }

// gatedNet models the death of the node hosting the coordinator logic.
// Once the armed crash fires, the whole node is down — no message it
// was about to send (prepare, commit, or abort) leaves, and no message
// reaches its guardian. The gate matters for correctness, not just
// realism, in two ways:
//
//   - when the committing force errors but the record in fact survived
//     on one device copy, the presumed-abort path would notify the
//     participants of an abort that recovery later decides the other
//     way — a live coordinator never sees that ambiguity (a successful
//     force is durable) and a dead one cannot send the aborts;
//
//   - each post-crash device write tears another block, so letting the
//     abort path write an abort record can destroy both copies of a
//     page, which a fail-stop node cannot do.
type gatedNet struct {
	net *netsim.Network
	vol *stablelog.MemVolume
}

// Call implements transport.Transport, delivering only before the
// crash has fired.
func (n *gatedNet) Call(a, b ids.GuardianID, fn func() error) error {
	if n.vol.GlobalCrashFired() {
		return fmt.Errorf("crashtest: node %v is down", a)
	}
	return n.net.Call(a, b, fn)
}

// shardReplay holds one scenario's state.
type shardReplay struct {
	vol   *stablelog.MemVolume
	net   *netsim.Network
	coord *guardian.Guardian
	part  *guardian.Guardian
	// step is the interrupted transfer (-1 setup, Steps completed).
	step int
	// acked is the bitmask of transfers acknowledged committed.
	acked int64
}

// runShardHistory executes the transfer history on fresh guardians,
// with the coordinator's volume already armed (or not). It stops at
// the first fired crash.
func runShardHistory(cfg ShardSweepConfig, vol *stablelog.MemVolume, chk *obs.Checker) (*shardReplay, error) {
	r := &shardReplay{vol: vol, net: netsim.New(), step: -1}
	r.net.SetTracer(chk)
	initial := int64(1) << uint(cfg.Steps)

	fired := func(err error) (bool, error) {
		if vol.GlobalCrashFired() {
			return true, nil
		}
		return false, err
	}

	coord, err := guardian.New(shardSweepIDs[0], guardian.WithBackend(cfg.Backend),
		guardian.WithVolume(vol), guardian.WithTracer(chk))
	if f, err := fired(err); err != nil {
		return r, err
	} else if f {
		return r, nil
	}
	coord.SetSynchronousForces(true)
	r.coord = coord

	part, err := guardian.New(shardSweepIDs[1], guardian.WithBackend(cfg.Backend), guardian.WithTracer(chk))
	if err != nil {
		return r, err
	}
	part.SetSynchronousForces(true)
	r.part = part

	setup := func(g *guardian.Guardian) error {
		boot := g.Begin()
		v, err := boot.NewAtomic(value.Int(initial))
		if err != nil {
			return err
		}
		if err := boot.SetVar("vault", v); err != nil {
			return err
		}
		return boot.Commit()
	}
	if err := setup(part); err != nil {
		return r, err
	}
	if f, err := fired(setup(coord)); err != nil {
		return r, err
	} else if f {
		return r, nil
	}

	for i := 0; i < cfg.Steps; i++ {
		amount := int64(1) << uint(i)
		a := coord.Begin()
		branch := part.Join(a.ID())
		cv, ok := coord.VarAtomic("vault")
		if !ok {
			return r, fmt.Errorf("coordinator vault lost before step %d", i)
		}
		pv, ok := part.VarAtomic("vault")
		if !ok {
			return r, fmt.Errorf("participant vault lost before step %d", i)
		}
		debit := func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) - amount)
		}
		credit := func(v value.Value) value.Value {
			return value.Int(int64(v.(value.Int)) + amount)
		}
		if err := a.Update(cv, debit); err != nil {
			if f, err := fired(err); err != nil {
				return r, fmt.Errorf("step %d debit: %w", i, err)
			} else if f {
				r.step = i
				return r, nil
			}
		}
		if err := branch.Update(pv, credit); err != nil {
			return r, fmt.Errorf("step %d credit: %w", i, err)
		}
		co := &twopc.Coordinator{
			Self: coord.ID(), Net: &gatedNet{net: r.net, vol: vol},
			Log: coord, Tracer: chk,
		}
		res, runErr := co.Run(a.ID(), []twopc.Participant{coord, part})
		if runErr == nil && res.Outcome == twopc.OutcomeCommitted {
			// The commit point was reached and observed: this transfer
			// must survive any crash from here on.
			r.acked |= int64(1) << uint(i)
		}
		if vol.GlobalCrashFired() {
			r.step = i
			return r, nil
		}
		if runErr != nil {
			return r, fmt.Errorf("step %d commit: %w", i, runErr)
		}
	}
	r.step = cfg.Steps
	return r, nil
}

// settleShards recovers the crashed coordinator from its volume and
// settles the two-shard cluster: the coordinator's own in-doubt
// branches resolve against its recovered CT, unfinished committing
// actions re-drive phase two, and the participant's in-doubt branches
// query the coordinator (§2.2.2/§2.2.3). It returns the recovered
// coordinator (nil if the site was never durably created).
func settleShards(cfg ShardSweepConfig, r *shardReplay, chk *obs.Checker) (*guardian.Guardian, error) {
	r.vol.Crash()
	r.vol.Restart()
	ng, err := guardian.Open(shardSweepIDs[0], r.vol, cfg.Backend, guardian.WithTracer(chk))
	if err != nil {
		if isNoSite(err) {
			return nil, nil
		}
		return nil, err
	}
	ng.SetSynchronousForces(true)
	if err := guardian.CheckRecovered(ng); err != nil {
		return nil, err
	}
	// The coordinator's own prepared branches resolve against its CT.
	for _, aid := range ng.InDoubt() {
		var err error
		if ng.OutcomeOf(aid) == twopc.OutcomeCommitted {
			err = ng.HandleCommit(aid)
		} else {
			err = ng.HandleAbort(aid)
		}
		if err != nil {
			return nil, err
		}
	}
	part := r.part
	if part == nil {
		// The crash preceded the participant's creation; no cross-shard
		// action can exist.
		if n := len(ng.Unfinished()); n != 0 {
			return nil, fmt.Errorf("%d unfinished actions with no participant guardian", n)
		}
		return ng, nil
	}
	// Re-drive phase two of actions whose committing record survived.
	for _, aid := range ng.Unfinished() {
		co := &twopc.Coordinator{Self: ng.ID(), Net: r.net, Log: ng, Tracer: chk}
		if _, err := co.Complete(aid, []twopc.Participant{ng, part}); err != nil {
			return nil, err
		}
	}
	// Prepared participant branches the completion pass did not reach
	// query the coordinator for the verdict.
	for _, aid := range part.InDoubt() {
		out, err := twopc.Query(r.net, part.ID(), ng, aid)
		if err != nil {
			return nil, err
		}
		if out == twopc.OutcomeCommitted {
			err = part.HandleCommit(aid)
		} else {
			err = part.HandleAbort(aid)
		}
		if err != nil {
			return nil, err
		}
	}
	// Unprepared branches cannot belong to a committed action; abort
	// the leftovers once the coordinator confirms.
	for _, aid := range part.LiveActions() {
		if ng.OutcomeOf(aid) == twopc.OutcomeCommitted {
			continue
		}
		if err := part.HandleAbort(aid); err != nil {
			return nil, err
		}
	}
	return ng, nil
}

// verifyShards checks the oracle: conservation, zero acked-but-lost,
// and the committed set being exactly the acknowledged prefix plus at
// most the interrupted transfer.
func verifyShards(cfg ShardSweepConfig, r *shardReplay, ng *guardian.Guardian) error {
	initial := int64(1) << uint(cfg.Steps)
	if ng == nil {
		// The coordinator's site was never durably created: legal only
		// for a setup-phase crash, and the participant must be untouched.
		if r.step != -1 {
			return fmt.Errorf("coordinator site vanished though setup had committed")
		}
		if r.part != nil {
			if got := vaultOf(r.part); got != initial {
				return fmt.Errorf("participant vault = %d with no coordinator site, want %d", got, initial)
			}
		}
		return nil
	}
	cb := vaultOf(ng)
	if r.step == -1 {
		// Setup interrupted: the setup action either committed in full
		// (vault holds the initial balance) or not at all (no vault).
		if cb != initial && cb != -1 {
			return fmt.Errorf("setup crash recovered vault %d, want %d or none", cb, initial)
		}
		return nil
	}
	if cb < 0 {
		return fmt.Errorf("coordinator vault lost after recovery")
	}
	pb := vaultOf(r.part)
	if cb+pb != 2*initial {
		return fmt.Errorf("balances %d + %d = %d, want %d (transfer not atomic across shards)",
			cb, pb, cb+pb, 2*initial)
	}
	committed := pb - initial
	if committed&r.acked != r.acked {
		return fmt.Errorf("committed mask %b lost acknowledged transfers %b (acked-but-lost)",
			committed, r.acked)
	}
	allowed := r.acked
	if r.step < cfg.Steps {
		allowed |= int64(1) << uint(r.step)
	}
	if committed&^allowed != 0 {
		return fmt.Errorf("committed mask %b includes transfers beyond the acknowledged prefix %b and interrupted step %d",
			committed, r.acked, r.step)
	}
	return nil
}

// vaultOf reads a guardian's committed vault balance (-1 if lost).
func vaultOf(g *guardian.Guardian) int64 {
	v, ok := g.VarAtomic("vault")
	if !ok {
		return -1
	}
	iv, ok := v.Base().(value.Int)
	if !ok {
		return -1
	}
	return int64(iv)
}

// ShardSweep runs the cross-shard crash-point sweep for one
// configuration, returning a *ShardSweepError naming the failing
// (backend, crash write) pair on the first violation.
func ShardSweep(cfg ShardSweepConfig) (ShardSweepResult, error) {
	if cfg.Backend == 0 {
		cfg.Backend = core.BackendHybrid
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 512
	}
	if cfg.Steps <= 0 || cfg.Steps > 16 {
		return ShardSweepResult{}, fmt.Errorf("shardsweep: steps %d out of range (1..16)", cfg.Steps)
	}
	var res ShardSweepResult
	fail := func(k, step int, err error) error {
		return &ShardSweepError{Backend: cfg.Backend, Crash: k, Step: step, Err: err}
	}

	// Counting run: the undisturbed history tallies W and pins the
	// expected final state.
	chk := obs.NewChecker(nil)
	vol := stablelog.NewMemVolume(cfg.BlockSize)
	vol.ArmGlobalCrashAtWrite(0)
	r, err := runShardHistory(cfg, vol, chk)
	if err != nil {
		return res, fail(0, r.step, err)
	}
	if r.step != cfg.Steps {
		return res, fail(0, r.step, fmt.Errorf("unarmed history stopped at step %d", r.step))
	}
	if err := verifyShards(cfg, r, r.coord); err != nil {
		return res, fail(0, r.step, err)
	}
	if err := chk.Err(); err != nil {
		return res, fail(0, r.step, err)
	}
	res.Writes = vol.GlobalWrites()
	res.Points++

	for k := 1; k <= res.Writes; k++ {
		chk := obs.NewChecker(nil)
		vol := stablelog.NewMemVolume(cfg.BlockSize)
		vol.ArmGlobalCrashAtWrite(k)
		r, err := runShardHistory(cfg, vol, chk)
		if err != nil {
			return res, fail(k, r.step, err)
		}
		if r.step == cfg.Steps && !vol.GlobalCrashFired() {
			// k beyond this replay's writes: possible only if replays
			// diverge; still verify the final state.
			if err := verifyShards(cfg, r, r.coord); err != nil {
				return res, fail(k, r.step, err)
			}
			res.Points++
			continue
		}
		ng, err := settleShards(cfg, r, chk)
		res.Recoveries++
		if err != nil {
			return res, fail(k, r.step, err)
		}
		if err := verifyShards(cfg, r, ng); err != nil {
			return res, fail(k, r.step, err)
		}
		if err := chk.Err(); err != nil {
			return res, fail(k, r.step, err)
		}
		res.Points++
	}
	return res, nil
}
