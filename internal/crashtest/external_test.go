package crashtest

import (
	"fmt"
	"strings"
	"testing"
)

func acked(kind ExtKind, keys []string, deltas []int64) ExtAttempt {
	return ExtAttempt{Kind: kind, Keys: keys, Deltas: deltas, Outcome: ExtAcked}
}

func inDoubt(kind ExtKind, keys []string, deltas []int64) ExtAttempt {
	return ExtAttempt{Kind: kind, Keys: keys, Deltas: deltas, Outcome: ExtInDoubt}
}

func checkErr(t *testing.T, h *ExtHistory, final ExtFinal, wantSubstr string) {
	t.Helper()
	_, err := CheckExternal(h, final)
	switch {
	case wantSubstr == "" && err != nil:
		t.Fatalf("unexpected violation: %v", err)
	case wantSubstr != "" && err == nil:
		t.Fatalf("violation %q not detected", wantSubstr)
	case wantSubstr != "" && !strings.Contains(err.Error(), wantSubstr):
		t.Fatalf("got %v, want substring %q", err, wantSubstr)
	}
}

// TestExternalAckedLost: the acceptance criterion's core case — an
// acked increment missing from the final state is a violation; present
// is a pass.
func TestExternalAckedLost(t *testing.T) {
	h := &ExtHistory{}
	h.Record(acked(ExtIncr, []string{"a"}, []int64{5}))
	h.Record(acked(ExtIncr, []string{"a"}, []int64{3}))
	checkErr(t, h, ExtFinal{Counters: map[string]int64{"a": 8}}, "")
	checkErr(t, h, ExtFinal{Counters: map[string]int64{"a": 5}}, "no in-doubt assignment")
	checkErr(t, h, ExtFinal{}, "no in-doubt assignment") // key absent entirely
}

// TestExternalInDoubtEitherWay: an in-doubt increment may or may not
// have executed; both final values pass, anything else fails.
func TestExternalInDoubtEitherWay(t *testing.T) {
	for _, final := range []int64{5, 12} {
		h := &ExtHistory{}
		h.Record(acked(ExtIncr, []string{"a"}, []int64{5}))
		h.Record(inDoubt(ExtIncr, []string{"a"}, []int64{7}))
		checkErr(t, h, ExtFinal{Counters: map[string]int64{"a": final}}, "")
	}
	h := &ExtHistory{}
	h.Record(acked(ExtIncr, []string{"a"}, []int64{5}))
	h.Record(inDoubt(ExtIncr, []string{"a"}, []int64{7}))
	checkErr(t, h, ExtFinal{Counters: map[string]int64{"a": 7}}, "no in-doubt assignment")
}

// TestExternalNotExecuted: a refused-before-dispatch attempt must have
// no effect, ever.
func TestExternalNotExecuted(t *testing.T) {
	h := &ExtHistory{}
	h.Record(acked(ExtIncr, []string{"a"}, []int64{5}))
	h.Record(ExtAttempt{Kind: ExtIncr, Keys: []string{"a"}, Deltas: []int64{7}, Outcome: ExtNotExecuted})
	checkErr(t, h, ExtFinal{Counters: map[string]int64{"a": 5}}, "")
	checkErr(t, h, ExtFinal{Counters: map[string]int64{"a": 12}}, "no in-doubt assignment")
}

// TestExternalTxnAtomicity: an in-doubt transfer applies to all its
// keys or none — a half-applied transfer is the violation the single
// 0/1 variable construction exists to catch.
func TestExternalTxnAtomicity(t *testing.T) {
	base := func() *ExtHistory {
		h := &ExtHistory{}
		h.Record(acked(ExtIncr, []string{"a"}, []int64{10}))
		h.Record(acked(ExtIncr, []string{"b"}, []int64{10}))
		h.Record(inDoubt(ExtTxn, []string{"a", "b"}, []int64{-4, 4}))
		return h
	}
	checkErr(t, base(), ExtFinal{Counters: map[string]int64{"a": 10, "b": 10}}, "") // not executed
	checkErr(t, base(), ExtFinal{Counters: map[string]int64{"a": 6, "b": 14}}, "")  // executed
	checkErr(t, base(), ExtFinal{Counters: map[string]int64{"a": 6, "b": 10}}, "no in-doubt assignment")
	checkErr(t, base(), ExtFinal{Counters: map[string]int64{"a": 10, "b": 14}}, "no in-doubt assignment")
}

// TestExternalConservation: zero-sum transfers cannot change the total
// no matter which subset landed; a total drift is always detected.
func TestExternalConservation(t *testing.T) {
	h := &ExtHistory{}
	h.Record(acked(ExtIncr, []string{"a"}, []int64{100}))
	h.Record(inDoubt(ExtTxn, []string{"a", "b"}, []int64{-30, 30}))
	h.Record(inDoubt(ExtTxn, []string{"b", "c"}, []int64{-10, 10}))
	// All four subsets are fine…
	for _, f := range []map[string]int64{
		{"a": 100},
		{"a": 70, "b": 30},
		{"a": 70, "b": 20, "c": 10},
	} {
		checkErr(t, h, ExtFinal{Counters: f}, "")
	}
	// …but created money is not: a+b+c must stay 100.
	checkErr(t, h, ExtFinal{Counters: map[string]int64{"a": 70, "b": 30, "c": 10}}, "no in-doubt assignment")
}

// TestExternalPhantomCreate: a counter present with no acked and no
// chosen in-doubt creator is phantom state. The subtle shape: value 0
// — sums match trivially, only the created-bitmask check catches it.
func TestExternalPhantomCreate(t *testing.T) {
	h := &ExtHistory{}
	h.Record(acked(ExtIncr, []string{"a"}, []int64{1}))
	checkErr(t, h, ExtFinal{Counters: map[string]int64{"a": 1, "zzz": 0}}, "")
	// "zzz" never appears in the history: CheckExternal only scores
	// keys the history touched, so the driver pairs it with a probe
	// pass. An untouched-but-probed key is the driver's business; a
	// touched key with an unexplainable 0 is ours:
	h2 := &ExtHistory{}
	h2.Record(ExtAttempt{Kind: ExtIncr, Keys: []string{"b"}, Deltas: []int64{4}, Outcome: ExtNotExecuted})
	h2.Record(ExtAttempt{Kind: ExtGet, Keys: []string{"b"}, Outcome: ExtAcked, GetAbsent: true})
	checkErr(t, h2, ExtFinal{Counters: map[string]int64{"b": 0}}, "no in-doubt assignment")
}

// TestExternalBlobMembership: the final blob value must be the last
// acked put or some in-doubt put.
func TestExternalBlobMembership(t *testing.T) {
	h := func() *ExtHistory {
		h := &ExtHistory{}
		h.Record(ExtAttempt{Kind: ExtPut, Keys: []string{"x"}, Value: "v1", Outcome: ExtAcked})
		h.Record(ExtAttempt{Kind: ExtPut, Keys: []string{"x"}, Value: "v2", Outcome: ExtInDoubt})
		h.Record(ExtAttempt{Kind: ExtPut, Keys: []string{"x"}, Value: "v3", Outcome: ExtAcked})
		return h
	}
	checkErr(t, h(), ExtFinal{Blobs: map[string]string{"x": "v3"}}, "") // last acked
	checkErr(t, h(), ExtFinal{Blobs: map[string]string{"x": "v2"}}, "") // delayed in-doubt
	checkErr(t, h(), ExtFinal{Blobs: map[string]string{"x": "v1"}}, "neither the last acked put")
	checkErr(t, h(), ExtFinal{}, "acked put lost")
	empty := &ExtHistory{}
	empty.Record(ExtAttempt{Kind: ExtPut, Keys: []string{"y"}, Value: "v", Outcome: ExtNotExecuted})
	checkErr(t, empty, ExtFinal{Blobs: map[string]string{"y": "v"}}, "phantom value")
}

// TestExternalGetObservations: an acked read on an untainted key must
// see exactly the acked state; after the first in-doubt mutation the
// key carries no exact expectation.
func TestExternalGetObservations(t *testing.T) {
	h := &ExtHistory{}
	h.Record(acked(ExtIncr, []string{"a"}, []int64{5}))
	h.Record(ExtAttempt{Kind: ExtGet, Keys: []string{"a"}, Outcome: ExtAcked, GetValue: "5"})
	checkErr(t, h, ExtFinal{Counters: map[string]int64{"a": 5}}, "")

	stale := &ExtHistory{}
	stale.Record(acked(ExtIncr, []string{"a"}, []int64{5}))
	stale.Record(ExtAttempt{Kind: ExtGet, Keys: []string{"a"}, Outcome: ExtAcked, GetValue: "0"})
	checkErr(t, stale, ExtFinal{Counters: map[string]int64{"a": 5}}, "stale read")

	tainted := &ExtHistory{}
	tainted.Record(acked(ExtIncr, []string{"a"}, []int64{5}))
	tainted.Record(inDoubt(ExtIncr, []string{"a"}, []int64{7}))
	tainted.Record(ExtAttempt{Kind: ExtGet, Keys: []string{"a"}, Outcome: ExtAcked, GetValue: "12"})
	checkErr(t, tainted, ExtFinal{Counters: map[string]int64{"a": 12}}, "")

	preMutation := &ExtHistory{}
	preMutation.Record(ExtAttempt{Kind: ExtGet, Keys: []string{"n"}, Outcome: ExtAcked, GetAbsent: true})
	checkErr(t, preMutation, ExtFinal{}, "")
	preBad := &ExtHistory{}
	preBad.Record(ExtAttempt{Kind: ExtGet, Keys: []string{"n"}, Outcome: ExtAcked, GetValue: "1"})
	checkErr(t, preBad, ExtFinal{}, "before any mutation")
}

// TestExternalMixedClass: one key used as both counter and blob is a
// harness bug the oracle refuses to paper over.
func TestExternalMixedClass(t *testing.T) {
	h := &ExtHistory{}
	h.Record(acked(ExtIncr, []string{"k"}, []int64{1}))
	h.Record(ExtAttempt{Kind: ExtPut, Keys: []string{"k"}, Value: "v", Outcome: ExtAcked})
	checkErr(t, h, ExtFinal{Counters: map[string]int64{"k": 1}}, "both counter and blob")
}

// TestExternalComponentScale: many in-doubt deltas on overlapping keys
// stay tractable — the reachable-sum set grows with distinct sums, not
// 2^n — and the report carries the component accounting.
func TestExternalComponentScale(t *testing.T) {
	h := &ExtHistory{}
	total := int64(0)
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("k%d", i%3)
		h.Record(acked(ExtIncr, []string{k}, []int64{1}))
		h.Record(inDoubt(ExtIncr, []string{k}, []int64{1}))
		if i%3 == 0 {
			total++
		}
	}
	// Chain the three keys into one component.
	h.Record(inDoubt(ExtTxn, []string{"k0", "k1"}, []int64{-1, 1}))
	h.Record(inDoubt(ExtTxn, []string{"k1", "k2"}, []int64{-1, 1}))
	rep, err := CheckExternal(h, ExtFinal{Counters: map[string]int64{"k0": 8, "k1": 8, "k2": 8}})
	if err != nil {
		t.Fatalf("CheckExternal: %v", err)
	}
	if rep.Components != 1 {
		t.Fatalf("components %d, want 1", rep.Components)
	}
	if rep.InDoubt != 26 || rep.Acked != 24 {
		t.Fatalf("accounting: %+v", rep)
	}
	if rep.States > maxOracleStates {
		t.Fatalf("peak states %d over bound", rep.States)
	}
}
