package objindex

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/value"
)

func atom(uid ids.UID, v int64) *object.Atomic {
	return object.NewAtomic(uid, value.Int(v), ids.NoAction)
}

func flatBase(o *object.Atomic) []byte { return o.SnapshotBase(nil) }

func TestGetHitMissCounters(t *testing.T) {
	x := New()
	a := atom(10, 7)
	x.Rebuild([]Binding{{Key: "a", Obj: a}}, flatBase, 42)

	e, ok := x.Get("a")
	if !ok {
		t.Fatal("warm key missed")
	}
	if !bytes.Equal(e.Flat, a.SnapshotBase(nil)) {
		t.Fatalf("Get bytes = %x, want base snapshot", e.Flat)
	}
	if e.LSN != 42 {
		t.Fatalf("LSN = %d, want 42", e.LSN)
	}
	if _, ok := x.Get("absent"); ok {
		t.Fatal("absent key hit")
	}
	st := x.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if st.Keys != 1 || st.Entries != 1 || st.Rebuilds != 1 {
		t.Fatalf("keys/entries/rebuilds = %d/%d/%d, want 1/1/1", st.Keys, st.Entries, st.Rebuilds)
	}
	if st.Bytes != uint64(len(e.Flat)) {
		t.Fatalf("bytes gauge = %d, want %d", st.Bytes, len(e.Flat))
	}
}

func TestInstallRefusesUnbound(t *testing.T) {
	x := New()
	bound := atom(10, 1)
	stray := atom(11, 2)
	x.Rebuild([]Binding{{Key: "a", Obj: bound}}, flatBase, 0)

	x.Install(stray, stray.SnapshotBase(nil), 1)
	if st := x.Stats(); st.Entries != 1 || st.Installs != 0 {
		t.Fatalf("unbound install stored: entries=%d installs=%d", st.Entries, st.Installs)
	}
	x.Install(bound, bound.SnapshotBase(nil), 1)
	if st := x.Stats(); st.Entries != 1 || st.Installs != 1 {
		t.Fatalf("bound install: entries=%d installs=%d", st.Entries, st.Installs)
	}
}

func TestReplaceBindingsFillsAndPrunes(t *testing.T) {
	x := New()
	a, b, c := atom(10, 1), atom(11, 2), atom(12, 3)
	x.Rebuild([]Binding{{Key: "a", Obj: a}, {Key: "b", Obj: b}}, flatBase, 0)

	// Rebind: drop "a", keep "b", add "c" (never written, filled via
	// the flatten callback).
	x.ReplaceBindings([]Binding{{Key: "b", Obj: b}, {Key: "c", Obj: c}}, flatBase, 5)

	if _, ok := x.Get("a"); ok {
		t.Fatal("pruned key still hits")
	}
	if e, ok := x.Get("c"); !ok || !bytes.Equal(e.Flat, c.SnapshotBase(nil)) {
		t.Fatalf("filled key: ok=%v flat=%x", ok, e.Flat)
	}
	st := x.Stats()
	if st.Keys != 2 || st.Entries != 2 {
		t.Fatalf("keys/entries = %d/%d, want 2/2", st.Keys, st.Entries)
	}
	want := uint64(len(b.SnapshotBase(nil)) + len(c.SnapshotBase(nil)))
	if st.Bytes != want {
		t.Fatalf("bytes gauge = %d, want %d", st.Bytes, want)
	}
}

func TestSharedObjectOneEntry(t *testing.T) {
	x := New()
	shared := atom(10, 9)
	x.Rebuild([]Binding{{Key: "k1", Obj: shared}, {Key: "k2", Obj: shared}}, flatBase, 0)
	st := x.Stats()
	if st.Keys != 2 || st.Entries != 1 {
		t.Fatalf("keys/entries = %d/%d, want 2/1", st.Keys, st.Entries)
	}
	// Unbinding one alias keeps the entry; unbinding both prunes it.
	x.ReplaceBindings([]Binding{{Key: "k1", Obj: shared}}, flatBase, 1)
	if st := x.Stats(); st.Entries != 1 {
		t.Fatalf("entries after one alias dropped = %d, want 1", st.Entries)
	}
	x.ReplaceBindings(nil, flatBase, 2)
	if st := x.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("entries/bytes after all dropped = %d/%d, want 0/0", st.Entries, st.Bytes)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	x := New()
	var pairs []Binding
	for i := 0; i < 20; i++ {
		pairs = append(pairs, Binding{Key: fmt.Sprintf("k%02d", 19-i), Obj: atom(ids.UID(100+i), int64(i))})
	}
	x.Rebuild(pairs, flatBase, 3)
	snap := x.Snapshot()
	if len(snap) != 20 {
		t.Fatalf("snapshot rows = %d, want 20", len(snap))
	}
	for i, row := range snap {
		if want := fmt.Sprintf("k%02d", i); row.Key != want {
			t.Fatalf("row %d key = %q, want %q (sorted)", i, row.Key, want)
		}
		if row.Flat == nil {
			t.Fatalf("row %q has no bytes", row.Key)
		}
		if row.LSN != 3 {
			t.Fatalf("row %q LSN = %d, want 3", row.Key, row.LSN)
		}
	}
}

func TestBoundResolvesWithoutCounting(t *testing.T) {
	x := New()
	a := atom(10, 7)
	x.Rebuild([]Binding{{Key: "a", Obj: a}}, flatBase, 0)
	got, ok := x.Bound("a")
	if !ok || got != a {
		t.Fatalf("Bound = %v/%v, want the bound object", got, ok)
	}
	if _, ok := x.Bound("absent"); ok {
		t.Fatal("Bound hit for absent key")
	}
	if st := x.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Bound moved the counters: %d/%d", st.Hits, st.Misses)
	}
}
