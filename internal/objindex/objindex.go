// Package objindex is the per-guardian live-version index: an
// in-memory map from stable-variable keys to the current committed
// version of the bound atomic object (flattened bytes plus the log
// coordinate the version was durable at). It is the LogBase-style
// "log as data" read path — a warm index serves gets at memory speed
// with zero device reads and zero lock traffic, while the log stays
// the only durable truth.
//
// Consistency contract (maintained by the guardian, audited by
// roslint's lockdiscipline confinement rule and by
// guardian.CheckIndexCoherence in every crash sweep):
//
//   - Installs happen only on the committed side of the §2.2.3 point
//     of no return: after the outcome record is durable and before the
//     committing action's write locks are released. A reader can never
//     observe an uncommitted version, and the install order of two
//     versions of one object matches their commit order (serialized by
//     the object's write lock).
//   - Aborts touch nothing. The index only ever holds committed
//     state, so discarding an action's versions needs no invalidation.
//   - Rebuild derives the whole index from the committed heap the
//     backward-scan recovery materializes (root-record bindings →
//     base versions), so a restarted, promoted, or handed-off guardian
//     comes up warm-correct without any extra durable structure.
//
// Layout: two maps. bindings maps a stable-variable key to the UID of
// the atomic object it names (the committed root record, inverted);
// values maps a UID to that object's current committed version. The
// indirection keeps a rebinding (SetVar pointing an existing key at a
// new object) and a rewrite (a new version of a bound object) both
// O(1), and keys bound to the same object share one stored version.
// Invariant: every binding's UID has a values entry, and every values
// entry is referenced by at least one binding.
//
// The package is in the determinism analyzer's scope: no clocks, no
// global randomness, no goroutines; map iterations are sorted before
// use or order-independent and annotated.
package objindex

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/obs"
)

// Entry is one live committed version.
type Entry struct {
	// Obj is the indexed atomic object (the heap object, shared, not a
	// copy); the guardian's Var fast path resolves bindings through it.
	Obj *object.Atomic
	// Flat is the committed version, flattened exactly as value.Flatten
	// renders it — byte-identical to what a device read of the same
	// version would decode to.
	Flat []byte
	// LSN is the guardian's durable log boundary when the version was
	// installed (or the boundary recovery rebuilt from): the "log
	// coordinate" tying the cached bytes back to the durable truth.
	LSN uint64
}

// Binding names one stable-variable key and the atomic object bound
// to it, the unit Rebuild and ReplaceBindings consume.
type Binding struct {
	Key string
	Obj *object.Atomic
}

// Snap is one row of Snapshot's sorted dump: a key, the UID it binds,
// and the indexed bytes — the shape coherence checks compare against a
// from-scratch scan.
type Snap struct {
	Key  string
	UID  ids.UID
	Flat []byte
	LSN  uint64
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses uint64
	// Installs counts committed versions published (installs and
	// rebind fills), Rebuilds full from-recovery rebuilds.
	Installs, Rebuilds uint64
	// Keys is the number of bound stable-variable keys, Entries the
	// number of stored versions (Entries ≤ Keys; keys may share one).
	Keys, Entries int
	// Bytes is the total flattened size of all stored versions.
	Bytes uint64
}

// Index is one guardian's live-version index. All methods are safe
// for concurrent use: reads take an RWMutex read lock, mutations the
// write lock. The guardian confines mutations to its commit and
// recovery paths (see the package comment).
type Index struct {
	mu       sync.Mutex // guards tr, installs, rebuilds
	tr       obs.Tracer
	installs uint64
	rebuilds uint64

	// vmu guards the maps and the byte gauge.
	vmu      sync.RWMutex
	values   map[ids.UID]Entry
	bindings map[string]ids.UID
	bytes    uint64

	hits   atomic.Uint64
	misses atomic.Uint64
}

// New returns an empty index.
func New() *Index {
	return &Index{
		values:   make(map[ids.UID]Entry),
		bindings: make(map[string]ids.UID),
	}
}

// SetTracer installs (or, with nil, removes) an event tracer: Get
// emits idx.hit/idx.miss, installs emit idx.install, Rebuild emits
// idx.rebuild. The guardian passes its id-stamping tracer here.
func (x *Index) SetTracer(tr obs.Tracer) {
	x.mu.Lock()
	x.tr = tr
	x.mu.Unlock()
}

func (x *Index) emit(e obs.Event) {
	x.mu.Lock()
	tr := x.tr
	x.mu.Unlock()
	if tr != nil {
		tr.Emit(e)
	}
}

// Get returns the live committed version bound to key. A hit is the
// memory-speed read path; a miss (unbound key, or a binding whose
// value was pruned mid-rebind) sends the caller to the action-path
// fallback.
func (x *Index) Get(key string) (Entry, bool) {
	x.vmu.RLock()
	var e Entry
	uid, ok := x.bindings[key]
	if ok {
		e, ok = x.values[uid]
	}
	x.vmu.RUnlock()
	if !ok {
		x.misses.Add(1)
		x.emit(obs.Event{Kind: obs.KindIdxMiss, Note: key})
		return Entry{}, false
	}
	x.hits.Add(1)
	x.emit(obs.Event{Kind: obs.KindIdxHit, Bytes: len(e.Flat)})
	return e, true
}

// Bound returns the atomic object bound to key, resolving the
// committed binding without touching the hit/miss counters — the
// guardian's Var fast path (the read half of a read-validate update
// locates its object here instead of walking the root record).
func (x *Index) Bound(key string) (*object.Atomic, bool) {
	x.vmu.RLock()
	defer x.vmu.RUnlock()
	if uid, ok := x.bindings[key]; ok {
		if e, ok := x.values[uid]; ok {
			return e.Obj, true
		}
	}
	return nil, false
}

// Install publishes a committed version of obj. It is a no-op for
// objects no binding references (an unbound object's version can
// never be served, and storing it would leak); the guardian calls it
// for every object a committing action wrote, at the point of no
// return, before the action's write locks are released.
func (x *Index) Install(obj *object.Atomic, flat []byte, lsn uint64) {
	uid := obj.UID()
	x.vmu.Lock()
	if !x.referencedLocked(uid) {
		x.vmu.Unlock()
		return
	}
	x.setLocked(uid, Entry{Obj: obj, Flat: flat, LSN: lsn})
	x.vmu.Unlock()
	x.noteInstall(uid, len(flat), lsn)
}

// ReplaceBindings swaps in the complete new binding set of a
// committed root-record write. Versions for objects the new set
// references but the index does not yet hold (a key rebound to an
// existing, unwritten object) are filled by flatten — called under
// the index lock, with the owning action's write locks still held, so
// the fill and the bindings change are atomic to readers. Versions no
// binding references afterwards are pruned.
func (x *Index) ReplaceBindings(pairs []Binding, flatten func(*object.Atomic) []byte, lsn uint64) {
	type fill struct {
		uid   ids.UID
		bytes int
	}
	var filled []fill
	x.vmu.Lock()
	next := make(map[string]ids.UID, len(pairs))
	keep := make(map[ids.UID]bool, len(pairs))
	for _, b := range pairs {
		uid := b.Obj.UID()
		next[b.Key] = uid
		keep[uid] = true
		if _, ok := x.values[uid]; !ok {
			flat := flatten(b.Obj)
			x.setLocked(uid, Entry{Obj: b.Obj, Flat: flat, LSN: lsn})
			filled = append(filled, fill{uid: uid, bytes: len(flat)})
		}
	}
	x.bindings = next
	//roslint:nondet order-independent: pruning deletes entries by membership, no cross-entry effects
	for uid, e := range x.values {
		if !keep[uid] {
			x.bytes -= uint64(len(e.Flat))
			delete(x.values, uid)
		}
	}
	x.vmu.Unlock()
	for _, f := range filled {
		x.noteInstall(f.uid, f.bytes, lsn)
	}
}

// Rebuild discards the index and rebuilds it from the committed
// bindings recovery (or a fresh scan) produced: each pair's version
// is filled from flatten. The recovery path of a restart, a backup
// promotion, and a shard-handoff adoption all come through here.
func (x *Index) Rebuild(pairs []Binding, flatten func(*object.Atomic) []byte, lsn uint64) {
	x.vmu.Lock()
	x.values = make(map[ids.UID]Entry, len(pairs))
	x.bindings = make(map[string]ids.UID, len(pairs))
	x.bytes = 0
	for _, b := range pairs {
		uid := b.Obj.UID()
		x.bindings[b.Key] = uid
		if _, ok := x.values[uid]; !ok {
			x.setLocked(uid, Entry{Obj: b.Obj, Flat: flatten(b.Obj), LSN: lsn})
		}
	}
	total := x.bytes
	x.vmu.Unlock()
	x.mu.Lock()
	x.rebuilds++
	x.mu.Unlock()
	x.emit(obs.Event{Kind: obs.KindIdxRebuild, LSN: lsn, Bytes: int(total)})
}

// referencedLocked reports whether any binding names uid. Callers
// hold vmu.
func (x *Index) referencedLocked(uid ids.UID) bool {
	_, ok := x.values[uid]
	if ok {
		return true
	}
	//roslint:nondet order-independent: membership probe, first match wins and all matches agree
	for _, bound := range x.bindings {
		if bound == uid {
			return true
		}
	}
	return false
}

// setLocked stores e, maintaining the byte gauge. Callers hold vmu.
func (x *Index) setLocked(uid ids.UID, e Entry) {
	if old, ok := x.values[uid]; ok {
		x.bytes -= uint64(len(old.Flat))
	}
	x.bytes += uint64(len(e.Flat))
	x.values[uid] = e
}

func (x *Index) noteInstall(uid ids.UID, n int, lsn uint64) {
	x.mu.Lock()
	x.installs++
	x.mu.Unlock()
	x.emit(obs.Event{Kind: obs.KindIdxInstall, LSN: lsn, Bytes: n, Note: uid.String()})
}

// Snapshot dumps the index as one row per binding, sorted by key —
// the canonical form coherence checks compare against a from-scratch
// scan of committed state. A binding whose value entry is missing
// (an invariant violation) surfaces as a row with nil Flat.
func (x *Index) Snapshot() []Snap {
	x.vmu.RLock()
	out := make([]Snap, 0, len(x.bindings))
	//roslint:nondet keys collected here are sorted below before use
	for key, uid := range x.bindings {
		row := Snap{Key: key, UID: uid}
		if e, ok := x.values[uid]; ok {
			row.Flat = e.Flat
			row.LSN = e.LSN
		}
		out = append(out, row)
	}
	x.vmu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats returns a point-in-time counter snapshot.
func (x *Index) Stats() Stats {
	x.mu.Lock()
	installs, rebuilds := x.installs, x.rebuilds
	x.mu.Unlock()
	x.vmu.RLock()
	keys, entries, bytes := len(x.bindings), len(x.values), x.bytes
	x.vmu.RUnlock()
	return Stats{
		Hits:     x.hits.Load(),
		Misses:   x.misses.Load(),
		Installs: installs,
		Rebuilds: rebuilds,
		Keys:     keys,
		Entries:  entries,
		Bytes:    bytes,
	}
}
