package hybridlog

// Direct tests for the recovery ordering rules around committed_ss
// entries (the fromSS provenance rule): compaction writes stage-one
// entries in reverse chronological order, so recovery can meet a
// checkpoint's version of an object *before* the surviving prepared or
// prepared_data entry that supersedes it. These hand-crafted logs pin
// each conflict case.

import (
	"testing"

	"repro/internal/logrec"
	"repro/internal/object"
	"repro/internal/simplelog"
	"repro/internal/value"
)

// buildSSLog assembles a compacted-shaped log:
//
//	data(base of O)   ← checkpoint's copy
//	data(cur of O)    ← surviving prepared entry's copy (written earlier
//	                    in stage one, i.e. lower LSN — reverse order!)
//	prepared(T, [O→cur])   (chain tail)
//	committed_ss([O→base]) (chain middle)
//	[verdict for T]        (chain head, from stage two; optional)
func buildSSLog(t *testing.T, verdict logrec.Kind) (*Tables, value.Value, value.Value) {
	t.Helper()
	b := newLogBuilder(t)
	base := value.Int(1)
	cur := value.Int(2)
	// Stage one writes T's data entry first (it processes the prepared
	// entry before reaching older committed state), then the checkpoint
	// copy.
	lCur := b.data(object.KindAtomic, cur)
	lBase := b.data(object.KindAtomic, base)
	b.outcome(&logrec.Entry{Kind: logrec.KindPrepared, AID: tA,
		Pairs: []logrec.UIDLSN{{UID: 7, Addr: lCur}}})
	b.outcome(&logrec.Entry{Kind: logrec.KindCommittedSS,
		Pairs: []logrec.UIDLSN{{UID: 7, Addr: lBase}}})
	if verdict != 0 {
		b.outcome(&logrec.Entry{Kind: verdict, AID: tA})
	}
	log := b.finish()
	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	return tables, base, cur
}

func TestSSOrderPreparedUnknown(t *testing.T) {
	// No verdict: O must come back write-locked by T with the
	// checkpoint's base and the prepared entry's current version.
	tables, base, cur := buildSSLog(t, 0)
	o := getAtomic(t, tables.Heap, 7)
	if o.Writer() != tA {
		t.Fatalf("writer = %v, want %v", o.Writer(), tA)
	}
	if got, ok := o.Current(); !ok || !value.Equal(got, cur) {
		t.Fatalf("current = %v, want %s", got, value.String(cur))
	}
	if !value.Equal(o.Base(), base) {
		t.Fatalf("base = %s, want %s", value.String(o.Base()), value.String(base))
	}
	if tables.PT[tA] != simplelog.PartPrepared {
		t.Fatalf("PT = %v", tables.PT)
	}
}

func TestSSOrderCommittedAfterCheckpoint(t *testing.T) {
	// T committed after the checkpoint (verdict at the chain head): T's
	// version postdates the checkpoint's and must override it.
	tables, _, cur := buildSSLog(t, logrec.KindCommitted)
	o := getAtomic(t, tables.Heap, 7)
	if !value.Equal(o.Base(), cur) {
		t.Fatalf("base = %s, want the post-checkpoint commit %s",
			value.String(o.Base()), value.String(cur))
	}
	if !o.Writer().IsZero() {
		t.Fatalf("stale lock by %v", o.Writer())
	}
}

func TestSSOrderAbortedAfterCheckpoint(t *testing.T) {
	// T aborted after the checkpoint: the checkpoint's base stands.
	tables, base, _ := buildSSLog(t, logrec.KindAborted)
	o := getAtomic(t, tables.Heap, 7)
	if !value.Equal(o.Base(), base) {
		t.Fatalf("base = %s, want checkpoint %s",
			value.String(o.Base()), value.String(base))
	}
	if !o.Writer().IsZero() {
		t.Fatalf("stale lock by %v", o.Writer())
	}
}

// TestSSOrderPreparedDataVariant: the same three cases with a surviving
// prepared_data entry (an object another prepare made newly accessible
// while T held the write lock).
func TestSSOrderPreparedDataVariant(t *testing.T) {
	build := func(t *testing.T, verdict logrec.Kind) *Tables {
		t.Helper()
		b := newLogBuilder(t)
		lBase := b.data(object.KindAtomic, value.Int(1))
		b.outcome(&logrec.Entry{Kind: logrec.KindPreparedData, UID: 7, AID: tA,
			Value: value.Flatten(value.Int(2), nil)})
		b.outcome(&logrec.Entry{Kind: logrec.KindCommittedSS,
			Pairs: []logrec.UIDLSN{{UID: 7, Addr: lBase}}})
		if verdict != 0 {
			b.outcome(&logrec.Entry{Kind: verdict, AID: tA})
		}
		tables, err := Recover(b.finish())
		if err != nil {
			t.Fatal(err)
		}
		return tables
	}

	t.Run("unknown", func(t *testing.T) {
		tables := build(t, 0)
		o := getAtomic(t, tables.Heap, 7)
		if o.Writer() != tA {
			t.Fatalf("writer = %v", o.Writer())
		}
		if cur, ok := o.Current(); !ok || !value.Equal(cur, value.Int(2)) {
			t.Fatalf("current = %v", cur)
		}
		if !value.Equal(o.Base(), value.Int(1)) {
			t.Fatalf("base = %s", value.String(o.Base()))
		}
	})
	t.Run("committed", func(t *testing.T) {
		tables := build(t, logrec.KindCommitted)
		o := getAtomic(t, tables.Heap, 7)
		if !value.Equal(o.Base(), value.Int(2)) {
			t.Fatalf("base = %s, want 2", value.String(o.Base()))
		}
	})
	t.Run("aborted", func(t *testing.T) {
		tables := build(t, logrec.KindAborted)
		o := getAtomic(t, tables.Heap, 7)
		if !value.Equal(o.Base(), value.Int(1)) {
			t.Fatalf("base = %s, want 1", value.String(o.Base()))
		}
	})
}

// TestSSOrderMutexInCheckpointVsStage2: a mutex version in the CSSL
// versus a newer one in a stage-two prepared entry — the higher address
// (stage two writes after stage one) wins.
func TestSSOrderMutexInCheckpointVsStage2(t *testing.T) {
	b := newLogBuilder(t)
	lOld := b.data(object.KindMutex, value.Str("checkpoint"))
	b.outcome(&logrec.Entry{Kind: logrec.KindCommittedSS,
		Pairs: []logrec.UIDLSN{{UID: 7, Addr: lOld}}})
	lNew := b.data(object.KindMutex, value.Str("stage2"))
	b.outcome(&logrec.Entry{Kind: logrec.KindPrepared, AID: tB,
		Pairs: []logrec.UIDLSN{{UID: 7, Addr: lNew}}})
	tables, err := Recover(b.finish())
	if err != nil {
		t.Fatal(err)
	}
	m := getMutex(t, tables.Heap, 7)
	if !value.Equal(m.Current(), value.Str("stage2")) {
		t.Fatalf("mutex = %s, want stage2", value.String(m.Current()))
	}
	if tables.MT[7] != lNew {
		t.Fatalf("MT = %v, want %v", tables.MT[7], lNew)
	}
}
