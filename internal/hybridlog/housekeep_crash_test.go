package hybridlog

// Crash-during-housekeeping tests: the atomic switch (thesis ch. 5)
// means a crash at any point before the root-pointer write leaves the
// old log authoritative, and any point after leaves the new log
// complete. Either way no committed state is lost.

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/simplelog"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// TestCrashBetweenStage1AndFinish: the new log exists but was never
// installed; recovery uses the old log.
func TestCrashBetweenStage1AndFinish(t *testing.T) {
	for _, snapshot := range []bool{false, true} {
		name := "compaction"
		if snapshot {
			name = "snapshot"
		}
		t.Run(name, func(t *testing.T) {
			f := newFixture(t)
			accounts := f.seedBank(2)
			f.transfer(accounts[0], accounts[1], 100)

			var h *Housekeeper
			var err error
			if snapshot {
				h, err = f.writer.BeginSnapshot(f.site)
			} else {
				h, err = f.writer.BeginCompaction(f.site)
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Stage1(); err != nil {
				t.Fatal(err)
			}
			// More work lands on the old log before the crash.
			f.transfer(accounts[1], accounts[0], 25)
			// Crash before Finish: the generation pointer still names
			// the old log.
			tables := f.crashAndRecover()
			got0 := getAtomic(t, tables.Heap, accounts[0].UID())
			got1 := getAtomic(t, tables.Heap, accounts[1].UID())
			if !value.Equal(got0.Base(), value.Int(-75)) || !value.Equal(got1.Base(), value.Int(1075)) {
				t.Fatalf("balances %s/%s, want -75/1075",
					value.String(got0.Base()), value.String(got1.Base()))
			}
		})
	}
}

// TestCrashImmediatelyAfterSwitch: the new log is authoritative and
// complete.
func TestCrashImmediatelyAfterSwitch(t *testing.T) {
	f := newFixture(t)
	accounts := f.seedBank(2)
	f.transfer(accounts[0], accounts[1], 100)
	if _, err := f.writer.CompactLog(f.site); err != nil {
		t.Fatal(err)
	}
	// Crash with zero post-switch activity.
	tables := f.crashAndRecover()
	got0 := getAtomic(t, tables.Heap, accounts[0].UID())
	if !value.Equal(got0.Base(), value.Int(-100)) {
		t.Fatalf("balance = %s", value.String(got0.Base()))
	}
	if tables.OutcomesRead > 2 {
		t.Fatalf("OutcomesRead = %d: recovery is not reading the checkpoint", tables.OutcomesRead)
	}
}

// TestHousekeepingWithCoordinatorEntries: committing entries for
// unfinished actions survive compaction; done entries let them be
// dropped.
func TestHousekeepingWithCoordinatorEntries(t *testing.T) {
	f := newFixture(t)
	f.seedBank(1)
	// An action this guardian coordinates, committed but not done: its
	// committing entry must survive so the coordinator can finish
	// phase two after a crash (§2.2.3).
	unfinished := f.action()
	if err := f.writer.Prepare(unfinished, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Committing(unfinished, []ids.GuardianID{2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Commit(unfinished); err != nil {
		t.Fatal(err)
	}
	// And one fully finished action whose coordinator entries are
	// garbage.
	finished := f.action()
	if err := f.writer.Prepare(finished, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Committing(finished, []ids.GuardianID{2}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Commit(finished); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Done(finished); err != nil {
		t.Fatal(err)
	}

	if _, err := f.writer.CompactLog(f.site); err != nil {
		t.Fatal(err)
	}
	tables := f.crashAndRecover()
	ci, ok := tables.CT[unfinished]
	if !ok || ci.State != simplelog.CoordCommitting {
		t.Fatalf("unfinished action's committing entry lost: CT=%v", tables.CT)
	}
	if len(ci.GIDs) != 2 {
		t.Fatalf("GIDs = %v", ci.GIDs)
	}
	if _, still := tables.CT[finished]; still {
		t.Fatalf("finished action's coordinator entries survived compaction: %v", tables.CT)
	}
}

// errorKindGuard ensures housekeeping refuses to run on a foreign
// (already-switched) generation — regression guard for Site.Switch
// sequencing.
func TestSwitchSequencing(t *testing.T) {
	f := newFixture(t)
	f.seedBank(1)
	h1, err := f.writer.BeginCompaction(f.site)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Stage1(); err != nil {
		t.Fatal(err)
	}
	if err := h1.Finish(); err != nil {
		t.Fatal(err)
	}
	// A second full run on the new generation works, and the site
	// advanced twice.
	if _, err := f.writer.CompactLog(f.site); err != nil {
		t.Fatal(err)
	}
	if f.site.Generation() != 3 {
		t.Fatalf("generation = %d, want 3", f.site.Generation())
	}
	_ = stablelog.NoLSN
}
