// Package hybridlog implements the hybrid log of thesis chapters 4 and
// 5: the stable-storage organization that combines the pure log's fast
// writing with shadowing's fast recovery.
//
// The shadowing scheme's map is distributed over the log: each prepared
// outcome entry carries the ⟨uid, log address⟩ pairs for the data
// entries written on behalf of its action (Figure 4-1), and every
// outcome entry is linked to the previous outcome entry, forming a
// backward chain. Recovery follows the chain, reading data entries only
// when a version actually needs to be copied (§4.3), so its cost is
// proportional to the number of outcome entries rather than to the
// whole log.
//
// The package also implements early prepare (§4.4) — writing data
// entries ahead of the prepare message — and the two housekeeping
// algorithms of chapter 5, log compaction and the stable-state
// snapshot.
package hybridlog

import (
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/logrec"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// pendingEntry records one data entry written (possibly early) for an
// action that has not yet prepared.
type pendingEntry struct {
	obj  object.Recoverable
	addr stablelog.LSN
}

// Writer runs the hybrid-log writing algorithms for one guardian.
type Writer struct {
	mu   sync.Mutex
	log  *stablelog.Log
	heap *object.Heap
	as   *object.AccessSet
	pat  *object.PAT

	// lastOutcome is the head of the backward chain of outcome entries.
	lastOutcome stablelog.LSN
	// pending maps each not-yet-prepared action to the data entries
	// written for it so far (via early prepare and/or the prepare call);
	// the prepared entry is assembled from these.
	pending map[ids.ActionID][]pendingEntry
	// mt is the mutex table of §5.2: latest prepared data-entry address
	// per mutex object, maintained during all recovery-system activity
	// so the snapshot can find mutex versions in the log.
	mt map[ids.UID]stablelog.LSN
	// hk, when non-nil, is the housekeeping run in progress; outcome
	// entries written to the old log are appended to its OEL.
	hk *housekeeping
	// tr receives outcome, crit-section and housekeeping events; nil
	// (the default) traces nothing. Guarded by mu.
	tr obs.Tracer
}

// SetTracer installs the writer's event tracer: outcome appends and
// acknowledgments, crit.enter/crit.exit brackets around the writer
// mutex, and housekeep.start/housekeep.done around housekeeping runs.
func (w *Writer) SetTracer(tr obs.Tracer) {
	w.mu.Lock()
	w.tr = tr
	w.mu.Unlock()
}

// enterCrit / exitCrit emit the critical-section brackets; callers
// hold w.mu.
func (w *Writer) enterCrit() {
	if w.tr != nil {
		w.tr.Emit(obs.Event{Kind: obs.KindCritEnter})
	}
}

func (w *Writer) exitCrit() {
	if w.tr != nil {
		w.tr.Emit(obs.Event{Kind: obs.KindCritExit})
	}
}

// emitOutcome reports an outcome entry appended (under w.mu) or
// acknowledged durable (after the force, outside w.mu).
func emitOutcome(tr obs.Tracer, kind obs.Kind, code obs.OutcomeKind, aid ids.ActionID, lsn stablelog.LSN) {
	if tr != nil {
		tr.Emit(obs.Event{Kind: kind, Code: uint8(code), AID: aid, LSN: uint64(lsn)})
	}
}

// NewWriter returns a hybrid-log writer over an empty (or freshly
// recovered) state. lastOutcome is the address of the last outcome
// entry on the log (NoLSN for an empty log); after a crash pass
// Tables.ChainHead. mt is the recovered mutex table (nil for empty).
func NewWriter(log *stablelog.Log, heap *object.Heap, as *object.AccessSet, pat *object.PAT,
	lastOutcome stablelog.LSN, mt map[ids.UID]stablelog.LSN) *Writer {
	if mt == nil {
		mt = make(map[ids.UID]stablelog.LSN)
	}
	return &Writer{
		log:         log,
		heap:        heap,
		as:          as,
		pat:         pat,
		lastOutcome: lastOutcome,
		pending:     make(map[ids.ActionID][]pendingEntry),
		mt:          mt,
	}
}

// Log returns the current stable log.
func (w *Writer) Log() *stablelog.Log {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log
}

// PAT returns the prepared actions table.
func (w *Writer) PAT() *object.PAT { return w.pat }

// AS returns the accessibility set.
func (w *Writer) AS() *object.AccessSet { return w.as }

// ChainHead returns the address of the last outcome entry.
func (w *Writer) ChainHead() stablelog.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastOutcome
}

// MT returns a copy of the mutex table.
func (w *Writer) MT() map[ids.UID]stablelog.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[ids.UID]stablelog.LSN, len(w.mt))
	//roslint:nondet order-independent: whole-map copy into a keyed map
	for k, v := range w.mt {
		out[k] = v
	}
	return out
}

// WriteEntry early-prepares the objects in mos for action aid (§4.4):
// each accessible object's version is written as a data entry now, in
// anticipation of the prepare, so that preparing later only forces the
// prepared and committed outcome entries. It returns the objects that
// were not written because they were inaccessible; they become the MOS
// for the next WriteEntry or the final Prepare.
func (w *Writer) WriteEntry(aid ids.ActionID, mos object.MOS) (object.MOS, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.enterCrit()
	defer w.exitCrit()
	return w.writeMOSLocked(aid, mos)
}

// writeMOSLocked runs the chapter-3 writing algorithm (MOS + NAOS
// drain) in the hybrid format and returns the still-inaccessible rest.
func (w *Writer) writeMOSLocked(aid ids.ActionID, mos object.MOS) (object.MOS, error) {
	naos := newNAOS()
	if w.as.Len() == 0 {
		if root, ok := w.heap.StableVars(); ok {
			naos.add(root)
		}
	}
	for _, obj := range mos {
		if !w.as.Contains(obj.UID()) {
			continue
		}
		if err := w.writeDataEntry(aid, obj, naos); err != nil {
			return nil, err
		}
	}
	for {
		obj, ok := naos.pop()
		if !ok {
			break
		}
		if err := w.writeNewlyAccessible(aid, obj, naos); err != nil {
			return nil, err
		}
		w.as.Add(obj.UID())
	}
	var rest object.MOS
	for _, obj := range mos {
		if !w.as.Contains(obj.UID()) {
			rest = append(rest, obj)
		}
	}
	return rest, nil
}

// Prepare writes data entries for any objects in mos not yet early-
// prepared, then appends and forces the prepared outcome entry carrying
// the ⟨uid, log address⟩ pairs for every data entry written on behalf
// of aid, linked to the previous outcome entry (§4.2).
//
// The PAT and mutex-table updates happen at append time, before the
// force: a concurrent prepare that sees an object write-locked by aid
// must write aid's current version as prepared_data, which is correct
// because its own force covers aid's already-appended prepared entry
// (durability is a log-prefix property). On a force error the PAT entry
// is rolled back.
func (w *Writer) Prepare(aid ids.ActionID, mos object.MOS) error {
	w.mu.Lock()
	w.enterCrit()
	if _, err := w.writeMOSLocked(aid, mos); err != nil {
		w.exitCrit()
		w.mu.Unlock()
		return err
	}
	pend := w.pending[aid]
	pairs := make([]logrec.UIDLSN, len(pend))
	for i, p := range pend {
		pairs[i] = logrec.UIDLSN{UID: p.obj.UID(), Addr: p.addr}
	}
	e := &logrec.Entry{
		Kind:  logrec.KindPrepared,
		AID:   aid,
		Pairs: pairs,
		Prev:  w.lastOutcome,
	}
	lsn, err := w.log.Write(logrec.Encode(logrec.Hybrid, e))
	if err != nil {
		w.exitCrit()
		w.mu.Unlock()
		return err
	}
	w.noteOutcomeLocked(lsn)
	// The action's mutex versions are now prepared: enter them in the
	// mutex table (§5.2).
	for _, p := range pend {
		if p.obj.Kind() == object.KindMutex {
			w.mt[p.obj.UID()] = p.addr
		}
	}
	delete(w.pending, aid)
	w.pat.Add(aid)
	emitOutcome(w.tr, obs.KindOutcomeAppend, obs.OutcomePrepared, aid, lsn)
	w.exitCrit()
	tr := w.tr
	w.mu.Unlock()

	if err := w.log.ForceTo(lsn); err != nil {
		w.mu.Lock()
		w.pat.Remove(aid)
		w.mu.Unlock()
		return err
	}
	emitOutcome(tr, obs.KindOutcomeDurable, obs.OutcomePrepared, aid, lsn)
	return nil
}

// Commit appends and forces the committed outcome entry for aid
// (§3.3.2, hybrid format). The force runs outside the writer mutex so
// concurrent committers share one force barrier.
func (w *Writer) Commit(aid ids.ActionID) error {
	w.mu.Lock()
	w.enterCrit()
	e := &logrec.Entry{Kind: logrec.KindCommitted, AID: aid, Prev: w.lastOutcome}
	lsn, err := w.log.Write(logrec.Encode(logrec.Hybrid, e))
	if err != nil {
		w.exitCrit()
		w.mu.Unlock()
		return err
	}
	w.noteOutcomeLocked(lsn)
	emitOutcome(w.tr, obs.KindOutcomeAppend, obs.OutcomeCommitted, aid, lsn)
	w.exitCrit()
	tr := w.tr
	w.mu.Unlock()
	if err := w.log.ForceTo(lsn); err != nil {
		return err
	}
	emitOutcome(tr, obs.KindOutcomeDurable, obs.OutcomeCommitted, aid, lsn)
	w.mu.Lock()
	w.pat.Remove(aid)
	delete(w.pending, aid)
	w.mu.Unlock()
	return nil
}

// Abort appends and forces the aborted outcome entry for aid. Any
// early-prepared data entries become garbage ("extra work has been
// done, but that is not a problem", §4.4).
func (w *Writer) Abort(aid ids.ActionID) error {
	w.mu.Lock()
	w.enterCrit()
	e := &logrec.Entry{Kind: logrec.KindAborted, AID: aid, Prev: w.lastOutcome}
	lsn, err := w.log.Write(logrec.Encode(logrec.Hybrid, e))
	if err != nil {
		w.exitCrit()
		w.mu.Unlock()
		return err
	}
	w.noteOutcomeLocked(lsn)
	emitOutcome(w.tr, obs.KindOutcomeAppend, obs.OutcomeAborted, aid, lsn)
	w.exitCrit()
	tr := w.tr
	w.mu.Unlock()
	if err := w.log.ForceTo(lsn); err != nil {
		return err
	}
	emitOutcome(tr, obs.KindOutcomeDurable, obs.OutcomeAborted, aid, lsn)
	w.mu.Lock()
	w.pat.Remove(aid)
	delete(w.pending, aid)
	w.mu.Unlock()
	return nil
}

// Committing appends and forces the coordinator's committing entry.
func (w *Writer) Committing(aid ids.ActionID, gids []ids.GuardianID) error {
	w.mu.Lock()
	w.enterCrit()
	e := &logrec.Entry{Kind: logrec.KindCommitting, AID: aid, GIDs: gids, Prev: w.lastOutcome}
	lsn, err := w.log.Write(logrec.Encode(logrec.Hybrid, e))
	if err != nil {
		w.exitCrit()
		w.mu.Unlock()
		return err
	}
	w.noteOutcomeLocked(lsn)
	emitOutcome(w.tr, obs.KindOutcomeAppend, obs.OutcomeCommitting, aid, lsn)
	w.exitCrit()
	tr := w.tr
	w.mu.Unlock()
	if err := w.log.ForceTo(lsn); err != nil {
		return err
	}
	emitOutcome(tr, obs.KindOutcomeDurable, obs.OutcomeCommitting, aid, lsn)
	return nil
}

// Done appends and forces the coordinator's done entry.
func (w *Writer) Done(aid ids.ActionID) error {
	w.mu.Lock()
	w.enterCrit()
	e := &logrec.Entry{Kind: logrec.KindDone, AID: aid, Prev: w.lastOutcome}
	lsn, err := w.log.Write(logrec.Encode(logrec.Hybrid, e))
	if err != nil {
		w.exitCrit()
		w.mu.Unlock()
		return err
	}
	w.noteOutcomeLocked(lsn)
	emitOutcome(w.tr, obs.KindOutcomeAppend, obs.OutcomeDone, aid, lsn)
	w.exitCrit()
	tr := w.tr
	w.mu.Unlock()
	if err := w.log.ForceTo(lsn); err != nil {
		return err
	}
	emitOutcome(tr, obs.KindOutcomeDurable, obs.OutcomeDone, aid, lsn)
	return nil
}

// noteOutcomeLocked advances the backward-chain head to lsn and tells
// any housekeeping run in progress. The caller holds w.mu and has set
// the entry's Prev to the previous chain head.
func (w *Writer) noteOutcomeLocked(lsn stablelog.LSN) {
	w.lastOutcome = lsn
	if w.hk != nil {
		w.hk.noteOutcome(lsn)
	}
}

// writeOutcomeLocked appends a combined data/outcome entry
// (base_committed, prepared_data) into the backward chain without
// forcing: these need not hit the disk until the prepared entry that
// follows them is forced.
func (w *Writer) writeOutcomeLocked(e *logrec.Entry) (stablelog.LSN, error) {
	e.Prev = w.lastOutcome
	lsn, err := w.log.Write(logrec.Encode(logrec.Hybrid, e))
	if err != nil {
		return stablelog.NoLSN, err
	}
	w.noteOutcomeLocked(lsn)
	return lsn, nil
}

// writeDataEntry writes obj's version for aid as a hybrid data entry
// and records the ⟨uid, address⟩ pair in aid's pending list (replacing
// a stale pair from an earlier early-prepare of the same object).
func (w *Writer) writeDataEntry(aid ids.ActionID, obj object.Recoverable, naos *naos) error {
	var flat []byte
	switch o := obj.(type) {
	case *object.Atomic:
		flat = o.SnapshotFor(aid, naos.visitor(w.as))
	case *object.Mutex:
		flat = o.Snapshot(naos.visitor(w.as))
	default:
		return fmt.Errorf("hybridlog: unknown recoverable type %T", obj)
	}
	lsn, err := w.log.Write(logrec.Encode(logrec.Hybrid, &logrec.Entry{
		Kind:    logrec.KindData,
		ObjType: obj.Kind(),
		Value:   flat,
	}))
	if err != nil {
		return err
	}
	pend := w.pending[aid]
	for i, p := range pend {
		if p.obj.UID() == obj.UID() {
			pend[i].addr = lsn // re-written: keep only the latest address
			return nil
		}
	}
	w.pending[aid] = append(pend, pendingEntry{obj: obj, addr: lsn})
	return nil
}

// writeNewlyAccessible handles a newly accessible object, as in the
// simple log but with chained base_committed / prepared_data entries.
func (w *Writer) writeNewlyAccessible(aid ids.ActionID, obj object.Recoverable, naos *naos) error {
	switch o := obj.(type) {
	case *object.Mutex:
		return w.writeDataEntry(aid, obj, naos)

	case *object.Atomic:
		writer := o.Writer()
		switch {
		case writer == aid:
			if err := w.writeBaseCommitted(o, naos); err != nil {
				return err
			}
			return w.writeDataEntry(aid, obj, naos)
		case writer.IsZero():
			return w.writeBaseCommitted(o, naos)
		default:
			if w.pat.Contains(writer) {
				if err := w.writeBaseCommitted(o, naos); err != nil {
					return err
				}
				flat, ok := o.SnapshotCurrent(naos.visitor(w.as))
				if !ok {
					return fmt.Errorf("hybridlog: %v write-locked by %v but has no current version", o.UID(), writer)
				}
				_, err := w.writeOutcomeLocked(&logrec.Entry{
					Kind:  logrec.KindPreparedData,
					UID:   o.UID(),
					AID:   writer,
					Value: flat,
				})
				return err
			}
			return w.writeBaseCommitted(o, naos)
		}

	default:
		return fmt.Errorf("hybridlog: unknown recoverable type %T", obj)
	}
}

func (w *Writer) writeBaseCommitted(o *object.Atomic, naos *naos) error {
	flat := o.SnapshotBase(naos.visitor(w.as))
	_, err := w.writeOutcomeLocked(&logrec.Entry{
		Kind:  logrec.KindBaseCommitted,
		UID:   o.UID(),
		Value: flat,
	})
	return err
}

// TrimAS trims the accessibility set (§3.3.3.2): actions that make
// objects unreachable leave their UIDs in the AS, so it grows into a
// superset of the stable state. Trimming traverses the objects
// reachable from the stable variables into a fresh set and intersects
// it with the old one — the intersection (rather than replacement)
// drops objects that became newly accessible during the traversal,
// which must keep being treated as newly accessible by the writing
// algorithm.
func (w *Writer) TrimAS() {
	fresh := w.heap.AccessibleSet()
	w.mu.Lock()
	defer w.mu.Unlock()
	fresh.Intersect(w.as)
	w.as.ReplaceWith(fresh)
}

// naos is the newly accessible objects work queue, as in simplelog.
type naos struct {
	queue  []object.Recoverable
	queued map[ids.UID]bool
}

func newNAOS() *naos { return &naos{queued: make(map[ids.UID]bool)} }

func (n *naos) add(obj object.Recoverable) {
	if n.queued[obj.UID()] {
		return
	}
	n.queued[obj.UID()] = true
	n.queue = append(n.queue, obj)
}

func (n *naos) pop() (object.Recoverable, bool) {
	if len(n.queue) == 0 {
		return nil, false
	}
	obj := n.queue[0]
	n.queue = n.queue[1:]
	return obj, true
}

func (n *naos) visitor(as *object.AccessSet) func(value.Obj) {
	return func(ref value.Obj) {
		obj, ok := ref.(object.Recoverable)
		if !ok {
			return
		}
		if as.Contains(obj.UID()) {
			return
		}
		n.add(obj)
	}
}
