package hybridlog

import (
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/simplelog"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// fixture is a live guardian state over a hybrid log with crash/recover
// support via a MemVolume.
type fixture struct {
	t      *testing.T
	vol    *stablelog.MemVolume
	site   *stablelog.Site
	heap   *object.Heap
	as     *object.AccessSet
	pat    *object.PAT
	writer *Writer
	seq    uint64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	vol := stablelog.NewMemVolume(256)
	site, err := stablelog.CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{
		t:    t,
		vol:  vol,
		site: site,
		heap: object.NewHeap(),
		as:   object.NewAccessSet(),
		pat:  object.NewPAT(),
	}
	f.writer = NewWriter(site.Log(), f.heap, f.as, f.pat, stablelog.NoLSN, nil)
	return f
}

func (f *fixture) action() ids.ActionID {
	f.seq++
	return ids.ActionID{Coordinator: gP, Seq: f.seq}
}

// crashAndRecover simulates a node crash and runs hybrid recovery on
// the reopened site.
func (f *fixture) crashAndRecover() *Tables {
	f.t.Helper()
	f.vol.Crash()
	f.vol.Restart()
	site, err := stablelog.OpenSite(f.vol)
	if err != nil {
		f.t.Fatal(err)
	}
	tables, err := Recover(site.Log())
	if err != nil {
		f.t.Fatal(err)
	}
	return tables
}

// commitVolatile applies an action's commit to its objects.
func commitVolatile(aid ids.ActionID, objs ...object.Recoverable) {
	for _, o := range objs {
		if a, ok := o.(*object.Atomic); ok {
			a.Commit(aid)
		}
	}
}

// seedBank creates a root with n accounts and commits the initial state
// through the writer. Returns the accounts.
func (f *fixture) seedBank(n int) []*object.Atomic {
	f.t.Helper()
	accounts := make([]*object.Atomic, n)
	rootRec := value.NewRecord()
	setup := f.action()
	for i := range accounts {
		accounts[i] = object.NewAtomic(ids.UID(100+i), value.Int(int64(1000*i)), setup)
		f.heap.Register(accounts[i])
		rootRec.Fields[fmt.Sprintf("acct%d", i)] = value.Ref{Target: accounts[i]}
	}
	root := object.NewAtomic(ids.StableVarsUID, rootRec, setup)
	f.heap.Register(root)
	if err := f.writer.Prepare(setup, object.MOS{}); err != nil {
		f.t.Fatal(err)
	}
	if err := f.writer.Commit(setup); err != nil {
		f.t.Fatal(err)
	}
	commitVolatile(setup, root)
	for _, a := range accounts {
		a.Commit(setup)
	}
	return accounts
}

// transfer runs one committed action moving delta between two accounts.
func (f *fixture) transfer(from, to *object.Atomic, delta int64) {
	f.t.Helper()
	aid := f.action()
	if err := from.AcquireWrite(aid); err != nil {
		f.t.Fatal(err)
	}
	if err := to.AcquireWrite(aid); err != nil {
		f.t.Fatal(err)
	}
	from.Replace(aid, value.Int(int64(from.Value(aid).(value.Int))-delta))
	to.Replace(aid, value.Int(int64(to.Value(aid).(value.Int))+delta))
	if err := f.writer.Prepare(aid, object.MOS{from, to}); err != nil {
		f.t.Fatal(err)
	}
	if err := f.writer.Commit(aid); err != nil {
		f.t.Fatal(err)
	}
	from.Commit(aid)
	to.Commit(aid)
}

// assertHeapMatches checks that every live atomic object's committed
// state equals the recovered one.
func assertHeapMatches(t *testing.T, live *object.Heap, recovered *object.Heap) {
	t.Helper()
	live.Traverse(func(o object.Recoverable) {
		ro, ok := recovered.Lookup(o.UID())
		if !ok {
			t.Errorf("%v missing after recovery", o.UID())
			return
		}
		switch x := o.(type) {
		case *object.Atomic:
			ra, ok := ro.(*object.Atomic)
			if !ok {
				t.Errorf("%v kind changed", o.UID())
				return
			}
			if !value.Equal(x.Base(), ra.Base()) {
				t.Errorf("%v: live %s, recovered %s", o.UID(),
					value.String(x.Base()), value.String(ra.Base()))
			}
		case *object.Mutex:
			rm, ok := ro.(*object.Mutex)
			if !ok {
				t.Errorf("%v kind changed", o.UID())
				return
			}
			if !value.Equal(x.Current(), rm.Current()) {
				t.Errorf("%v: live %s, recovered %s", o.UID(),
					value.String(x.Current()), value.String(rm.Current()))
			}
		}
	})
}

func TestWriterRoundTrip(t *testing.T) {
	f := newFixture(t)
	accounts := f.seedBank(4)
	f.transfer(accounts[1], accounts[0], 250)
	f.transfer(accounts[2], accounts[3], 100)
	f.transfer(accounts[3], accounts[1], 50)

	tables := f.crashAndRecover()
	assertHeapMatches(t, f.heap, tables.Heap)
	if tables.MaxUID != 103 {
		t.Errorf("MaxUID = %v, want O103", tables.MaxUID)
	}
}

func TestWriterAbortDiscardsVersions(t *testing.T) {
	f := newFixture(t)
	accounts := f.seedBank(2)
	aid := f.action()
	if err := accounts[0].AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	accounts[0].Replace(aid, value.Int(-1))
	if err := f.writer.Prepare(aid, object.MOS{accounts[0]}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Abort(aid); err != nil {
		t.Fatal(err)
	}
	accounts[0].Abort(aid)

	tables := f.crashAndRecover()
	ra := getAtomic(t, tables.Heap, accounts[0].UID())
	if !value.Equal(ra.Base(), value.Int(0)) {
		t.Fatalf("account0 = %s, want 0 (abort must discard)", value.String(ra.Base()))
	}
}

func TestEarlyPrepareWriteEntry(t *testing.T) {
	f := newFixture(t)
	accounts := f.seedBank(2)
	aid := f.action()
	if err := accounts[0].AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	accounts[0].Replace(aid, value.Int(777))

	// Early-prepare the modification; only data entries are written, no
	// outcome entry, so the log's entry count grows but the chain head
	// does not move.
	before := f.writer.ChainHead()
	rest, err := f.writer.WriteEntry(aid, object.MOS{accounts[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("WriteEntry returned %d unwritten objects, want 0", len(rest))
	}
	if f.writer.ChainHead() != before {
		t.Fatal("early prepare moved the outcome chain")
	}

	// Prepare with an empty MOS: everything was early-prepared. The
	// prepared entry must still carry the pair for accounts[0].
	if err := f.writer.Prepare(aid, object.MOS{}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Commit(aid); err != nil {
		t.Fatal(err)
	}
	accounts[0].Commit(aid)

	tables := f.crashAndRecover()
	ra := getAtomic(t, tables.Heap, accounts[0].UID())
	if !value.Equal(ra.Base(), value.Int(777)) {
		t.Fatalf("account0 = %s, want 777", value.String(ra.Base()))
	}
}

func TestEarlyPrepareInaccessibleReturned(t *testing.T) {
	f := newFixture(t)
	f.seedBank(1)
	aid := f.action()
	// A new object not yet reachable from the stable state.
	orphan := object.NewAtomic(500, value.Int(5), aid)
	f.heap.Register(orphan)
	rest, err := f.writer.WriteEntry(aid, object.MOS{orphan})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 || rest[0].UID() != 500 {
		t.Fatalf("rest = %v, want the inaccessible orphan", rest)
	}
}

func TestEarlyPrepareRewriteSupersedes(t *testing.T) {
	// An object early-prepared, then modified again, then early-prepared
	// again: the prepared entry must point at the *latest* data entry.
	f := newFixture(t)
	accounts := f.seedBank(1)
	aid := f.action()
	if err := accounts[0].AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	accounts[0].Replace(aid, value.Int(1))
	if _, err := f.writer.WriteEntry(aid, object.MOS{accounts[0]}); err != nil {
		t.Fatal(err)
	}
	accounts[0].Replace(aid, value.Int(2))
	if _, err := f.writer.WriteEntry(aid, object.MOS{accounts[0]}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Prepare(aid, object.MOS{}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Commit(aid); err != nil {
		t.Fatal(err)
	}
	accounts[0].Commit(aid)

	tables := f.crashAndRecover()
	ra := getAtomic(t, tables.Heap, accounts[0].UID())
	if !value.Equal(ra.Base(), value.Int(2)) {
		t.Fatalf("account = %s, want 2 (latest early-prepare)", value.String(ra.Base()))
	}
}

func TestCrashBeforePreparedLosesEarlyData(t *testing.T) {
	// Early-prepared data whose action never prepared must vanish: the
	// action is effectively aborted by the crash (§2.2.3).
	f := newFixture(t)
	accounts := f.seedBank(2)
	aid := f.action()
	if err := accounts[0].AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	accounts[0].Replace(aid, value.Int(666))
	if _, err := f.writer.WriteEntry(aid, object.MOS{accounts[0]}); err != nil {
		t.Fatal(err)
	}
	// Make the data durable via an unrelated committed action, as would
	// happen when any later force flushes the shared buffer.
	f.transfer(accounts[1], accounts[1], 0)

	tables := f.crashAndRecover()
	if _, known := tables.PT[aid]; known {
		t.Fatalf("unprepared action in PT: %v", tables.PT)
	}
	ra := getAtomic(t, tables.Heap, accounts[0].UID())
	if !value.Equal(ra.Base(), value.Int(0)) {
		t.Fatalf("account = %s, want 0", value.String(ra.Base()))
	}
}

func TestWriterMutexSemantics(t *testing.T) {
	// A mutex modified and prepared by an action that later aborts must
	// keep the prepared version; the MT must track its data entry.
	f := newFixture(t)
	m := object.NewMutex(2, value.Int(1))
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("m", value.Ref{Target: m}), ids.NoAction)
	f.heap.Register(root)
	f.heap.Register(m)
	setup := f.action()
	if err := f.writer.Prepare(setup, object.MOS{}); err != nil {
		t.Fatal(err)
	}
	f.writer.Commit(setup)

	aid := f.action()
	m.Seize(aid, func(value.Value) value.Value { return value.Int(2) })
	if err := f.writer.Prepare(aid, object.MOS{m}); err != nil {
		t.Fatal(err)
	}
	if len(f.writer.MT()) == 0 {
		t.Fatal("MT empty after preparing a mutex modification")
	}
	if err := f.writer.Abort(aid); err != nil {
		t.Fatal(err)
	}
	// NOTE: mutex state is NOT rolled back on abort (§2.4.2).

	tables := f.crashAndRecover()
	rm := getMutex(t, tables.Heap, 2)
	if !value.Equal(rm.Current(), value.Int(2)) {
		t.Fatalf("mutex = %s, want prepared version 2", value.String(rm.Current()))
	}
}

func TestWriterCoordinatorChain(t *testing.T) {
	f := newFixture(t)
	f.seedBank(1)
	aid := f.action()
	if err := f.writer.Prepare(aid, object.MOS{}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Committing(aid, []ids.GuardianID{2, 3}); err != nil {
		t.Fatal(err)
	}
	tables := f.crashAndRecover()
	ci, ok := tables.CT[aid]
	if !ok || ci.State != simplelog.CoordCommitting || len(ci.GIDs) != 2 {
		t.Fatalf("CT = %v", tables.CT)
	}
	// Finish two-phase commit; after another crash the CT shows done.
	f2 := NewWriter(f.site.Log(), f.heap, f.as, f.pat, f.writer.ChainHead(), f.writer.MT())
	_ = f2
}

func TestResumeWriterAfterRecovery(t *testing.T) {
	// Recover, resume a writer on the recovered state, keep working,
	// crash again: both generations of work must survive.
	f := newFixture(t)
	accounts := f.seedBank(2)
	f.transfer(accounts[0], accounts[1], 10)

	f.vol.Crash()
	f.vol.Restart()
	site, err := stablelog.OpenSite(f.vol)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := Recover(site.Log())
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWriter(site.Log(), tables.Heap, tables.AS, tables.PAT, tables.ChainHead, tables.MT)

	// Continue on the recovered heap.
	ra0 := getAtomic(t, tables.Heap, accounts[0].UID())
	ra1 := getAtomic(t, tables.Heap, accounts[1].UID())
	aid := ids.ActionID{Coordinator: gP, Seq: 900}
	if err := ra0.AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	if err := ra1.AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	ra0.Replace(aid, value.Int(int64(ra0.Value(aid).(value.Int))-5))
	ra1.Replace(aid, value.Int(int64(ra1.Value(aid).(value.Int))+5))
	if err := w2.Prepare(aid, object.MOS{ra0, ra1}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(aid); err != nil {
		t.Fatal(err)
	}
	ra0.Commit(aid)
	ra1.Commit(aid)

	f.vol.Crash()
	f.vol.Restart()
	site2, err := stablelog.OpenSite(f.vol)
	if err != nil {
		t.Fatal(err)
	}
	tables2, err := Recover(site2.Log())
	if err != nil {
		t.Fatal(err)
	}
	got0 := getAtomic(t, tables2.Heap, accounts[0].UID())
	got1 := getAtomic(t, tables2.Heap, accounts[1].UID())
	if !value.Equal(got0.Base(), value.Int(-15)) || !value.Equal(got1.Base(), value.Int(1015)) {
		t.Fatalf("balances = %s, %s; want -15, 1015",
			value.String(got0.Base()), value.String(got1.Base()))
	}
}
