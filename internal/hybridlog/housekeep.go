package hybridlog

// Housekeeping (thesis chapter 5): reorganize the hybrid log so that
// recovery has a bounded amount of log to read. Both algorithms build a
// checkpoint of the guardian's stable state in a new log and install it
// in one atomic step (the Site generation switch):
//
//   - Compaction (§5.1) reads the old log backward from the
//     housekeeping marker, exactly like recovery, but writes surviving
//     entries to the new log instead of reconstructing volatile memory.
//   - Snapshot (§5.2) traverses the stable state already in volatile
//     memory and writes it to the new log, consulting the mutex table
//     (MT) for the latest prepared mutex versions, which live in the
//     log rather than in volatile memory.
//
// Both run in two stages. Stage one covers the log up to the
// housekeeping marker (compaction) or the volatile state (snapshot) and
// ends with a committed_ss entry carrying the committed-stable-state
// list (CSSL). Stage two copies the outcome entries the guardian wrote
// after the marker (tracked in the outcome entries list, OEL) and their
// data, then atomically switches logs.
//
// Note on ordering: compaction writes stage-one entries in reverse
// chronological order, so recovery (recover.go) resolves conflicts
// between committed_ss pairs and surviving prepared/prepared_data
// entries by provenance (the fromSS flag) rather than by scan order;
// see the comments in processPairs.

import (
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/logrec"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/simplelog"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// housekeeping is the writer-side hook: outcome entries appended to the
// old log after the marker are recorded in the OEL, preserving order.
type housekeeping struct {
	oel []stablelog.LSN
}

func (h *housekeeping) noteOutcome(lsn stablelog.LSN) {
	h.oel = append(h.oel, lsn)
}

// Stats reports the work a housekeeping run performed.
type Stats struct {
	// OldEntriesRead counts old-log entries examined in stage one
	// (compaction) — zero for snapshots, whose stage one reads volatile
	// memory.
	OldEntriesRead int
	// ObjectsCopied counts object versions written to the new log.
	ObjectsCopied int
	// OELCopied counts post-marker outcome entries copied in stage two.
	OELCopied int
	// NewLogSize is the byte size of the new log after the switch.
	NewLogSize uint64
	// OldLogSize is the byte size of the old log at the switch.
	OldLogSize uint64
}

// Housekeeper is one housekeeping run over a writer's log. Create with
// Writer.BeginCompaction or Writer.BeginSnapshot, run Stage1, then
// Finish. Writer operations may continue between the calls; Finish
// freezes the writer briefly for the atomic switch.
type Housekeeper struct {
	w        *Writer
	site     *stablelog.Site
	snapshot bool

	oldLog *stablelog.Log
	newLog *stablelog.Log
	gen    uint64
	marker stablelog.LSN
	hk     *housekeeping
	oldMT  map[ids.UID]stablelog.LSN

	// Stage-one working state.
	pt       map[ids.ActionID]simplelog.PartState
	ctDone   map[ids.ActionID]bool
	ot       map[ids.UID]*hkRow
	cssl     map[ids.UID]stablelog.LSN // uid -> new-log data entry address
	newMT    map[ids.UID]stablelog.LSN
	newChain stablelog.LSN
	newAS    *object.AccessSet
	stats    Stats
	stage1ok bool
}

// hkRow is the housekeeping object table row. For mutex objects, oldLSN
// is the old-log address of the version currently reflected in the
// CSSL, for the latest-version comparisons of §5.1.1/§5.2; atomic rows
// carry NoLSN.
type hkRow struct {
	state  simplelog.ObjState
	oldLSN stablelog.LSN
}

func newAtomicRow(state simplelog.ObjState) *hkRow {
	return &hkRow{state: state, oldLSN: stablelog.NoLSN}
}

func (w *Writer) begin(site *stablelog.Site, snapshot bool) (*Housekeeper, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hk != nil {
		return nil, fmt.Errorf("hybridlog: housekeeping already in progress")
	}
	newLog, gen, err := site.NewLog()
	if err != nil {
		return nil, err
	}
	h := &Housekeeper{
		w:        w,
		site:     site,
		snapshot: snapshot,
		oldLog:   w.log,
		newLog:   newLog,
		gen:      gen,
		marker:   w.lastOutcome, // the housekeeping marker (§5.1.1)
		hk:       &housekeeping{},
		oldMT:    make(map[ids.UID]stablelog.LSN, len(w.mt)),
		pt:       make(map[ids.ActionID]simplelog.PartState),
		ctDone:   make(map[ids.ActionID]bool),
		ot:       make(map[ids.UID]*hkRow),
		cssl:     make(map[ids.UID]stablelog.LSN),
		newMT:    make(map[ids.UID]stablelog.LSN),
		newChain: stablelog.NoLSN,
		newAS:    object.NewAccessSet(),
	}
	//roslint:nondet order-independent: whole-map copy into a keyed map
	for k, v := range w.mt {
		h.oldMT[k] = v
	}
	w.hk = h.hk
	return h, nil
}

// BeginCompaction starts a log-compaction run (§5.1.1), setting the
// housekeeping marker at the current end of the log.
func (w *Writer) BeginCompaction(site *stablelog.Site) (*Housekeeper, error) {
	return w.begin(site, false)
}

// BeginSnapshot starts a stable-state snapshot run (§5.2).
func (w *Writer) BeginSnapshot(site *stablelog.Site) (*Housekeeper, error) {
	return w.begin(site, true)
}

// CompactLog runs a complete compaction: Begin, Stage1, Finish.
func (w *Writer) CompactLog(site *stablelog.Site) (Stats, error) {
	return w.housekeepRun(site, false)
}

// SnapshotLog runs a complete snapshot: Begin, Stage1, Finish.
func (w *Writer) SnapshotLog(site *stablelog.Site) (Stats, error) {
	return w.housekeepRun(site, true)
}

func (w *Writer) housekeepRun(site *stablelog.Site, snapshot bool) (Stats, error) {
	code := obs.HousekeepCompact
	if snapshot {
		code = obs.HousekeepSnapshot
	}
	w.mu.Lock()
	tr := w.tr
	w.mu.Unlock()
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindHousekeepStart, Code: code})
	}
	stats, err := w.housekeepOnce(site, snapshot)
	if tr != nil {
		done := obs.Event{Kind: obs.KindHousekeepDone, Code: code}
		if err != nil {
			done.Note = err.Error()
		} else {
			done.OK = true
			done.Bytes = int(stats.NewLogSize)
		}
		tr.Emit(done)
	}
	return stats, err
}

func (w *Writer) housekeepOnce(site *stablelog.Site, snapshot bool) (Stats, error) {
	h, err := w.begin(site, snapshot)
	if err != nil {
		return Stats{}, err
	}
	if err := h.Stage1(); err != nil {
		h.abandon()
		return Stats{}, err
	}
	return h.stats, h.Finish()
}

func (h *Housekeeper) abandon() {
	h.w.mu.Lock()
	defer h.w.mu.Unlock()
	h.w.hk = nil
}

// Stage1 builds the checkpoint in the new log. For compaction it reads
// the old log backward from the marker; for a snapshot it traverses the
// stable state in volatile memory. It ends by writing the committed_ss
// entry carrying the CSSL.
func (h *Housekeeper) Stage1() error {
	var err error
	if h.snapshot {
		err = h.snapshotStage1()
	} else {
		err = h.compactStage1()
	}
	if err != nil {
		return err
	}
	// Write the committed_ss entry: "like a combined prepare and commit
	// for some special action whose name does not matter" (§5.1.1).
	// Sorted by UID: the pair list is log bytes, and the crash sweep
	// requires byte-identical logs per seed.
	uids := make([]ids.UID, 0, len(h.cssl))
	//roslint:nondet keys collected here are sorted below before use
	for uid := range h.cssl {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	pairs := make([]logrec.UIDLSN, 0, len(uids))
	for _, uid := range uids {
		pairs = append(pairs, logrec.UIDLSN{UID: uid, Addr: h.cssl[uid]})
	}
	//roslint:unforced Finish forces the whole new generation before Site.Switch publishes it; a crash before that reuses the old generation
	lsn, err := h.newLog.Write(logrec.Encode(logrec.Hybrid, &logrec.Entry{
		Kind:  logrec.KindCommittedSS,
		Pairs: pairs,
		Prev:  h.newChain,
	}))
	if err != nil {
		return err
	}
	h.newChain = lsn
	h.stage1ok = true
	return nil
}

// --- Stage one: compaction (§5.1.1) ------------------------------------

func (h *Housekeeper) compactStage1() error {
	for lsn := h.marker; lsn != stablelog.NoLSN; {
		payload, err := h.oldLog.Read(lsn)
		if err != nil {
			return fmt.Errorf("hybridlog: compaction read at %v: %w", lsn, err)
		}
		e, err := logrec.Decode(logrec.Hybrid, payload)
		if err != nil {
			return fmt.Errorf("hybridlog: compaction entry at %v: %w", lsn, err)
		}
		h.stats.OldEntriesRead++
		if err := h.compactEntry(e); err != nil {
			return err
		}
		lsn = e.Prev
	}
	return nil
}

func (h *Housekeeper) compactEntry(e *logrec.Entry) error {
	switch e.Kind {
	case logrec.KindCommitted:
		if _, known := h.pt[e.AID]; !known {
			h.pt[e.AID] = simplelog.PartCommitted
		}
	case logrec.KindAborted:
		if _, known := h.pt[e.AID]; !known {
			h.pt[e.AID] = simplelog.PartAborted
		}
	case logrec.KindDone:
		h.ctDone[e.AID] = true

	case logrec.KindCommitting:
		// Copy only if the outcome is not yet known to be done.
		if !h.ctDone[e.AID] {
			if err := h.writeNewOutcome(&logrec.Entry{
				Kind: logrec.KindCommitting, AID: e.AID, GIDs: e.GIDs,
			}); err != nil {
				return err
			}
		}

	case logrec.KindBaseCommitted:
		row, seen := h.ot[e.UID]
		if seen && row.state == simplelog.ObjRestored {
			return nil
		}
		if err := h.copyVersion(e.UID, object.KindAtomic, e.Value); err != nil {
			return err
		}
		if seen {
			row.state = simplelog.ObjRestored
		} else {
			h.ot[e.UID] = newAtomicRow(simplelog.ObjRestored)
		}

	case logrec.KindPreparedData:
		switch h.pt[e.AID] {
		case simplelog.PartAborted:
			// dropped
		case simplelog.PartCommitted:
			row, seen := h.ot[e.UID]
			if seen && row.state == simplelog.ObjRestored {
				return nil
			}
			if err := h.copyVersion(e.UID, object.KindAtomic, e.Value); err != nil {
				return err
			}
			if seen {
				row.state = simplelog.ObjRestored
			} else {
				h.ot[e.UID] = newAtomicRow(simplelog.ObjRestored)
			}
		default:
			// Prepared or unknown: the entry survives, chained.
			if _, seen := h.ot[e.UID]; !seen {
				h.ot[e.UID] = newAtomicRow(simplelog.ObjPrepared)
			}
			if err := h.writeNewOutcome(&logrec.Entry{
				Kind: logrec.KindPreparedData, UID: e.UID, AID: e.AID, Value: e.Value,
			}); err != nil {
				return err
			}
		}

	case logrec.KindPrepared:
		return h.compactPrepared(e)

	case logrec.KindCommittedSS:
		// A previous housekeeping's checkpoint: its pairs are committed
		// versions.
		for _, p := range e.Pairs {
			if err := h.compactCommittedPair(p); err != nil {
				return err
			}
		}

	default:
		return fmt.Errorf("hybridlog: unexpected %v on outcome chain during compaction", e.Kind)
	}
	return nil
}

// compactPrepared processes one prepared entry per §5.1.1 step 5.
func (h *Housekeeper) compactPrepared(e *logrec.Entry) error {
	state, known := h.pt[e.AID]
	if known && state == simplelog.PartAborted {
		// 5.a: only mutex versions survive an aborted (but prepared)
		// action.
		for _, p := range e.Pairs {
			if err := h.compactMutexPairIfLatest(p); err != nil {
				return err
			}
		}
		return nil
	}
	if known && state == simplelog.PartCommitted {
		// 5.b.
		for _, p := range e.Pairs {
			if err := h.compactCommittedPair(p); err != nil {
				return err
			}
		}
		return nil
	}
	// 5.c: outcome unknown — the action is still prepared. Atomic pairs
	// are rewritten under a new prepared entry; mutex pairs go to the
	// CSSL (their versions survive regardless of the verdict).
	if _, dup := h.pt[e.AID]; !dup {
		h.pt[e.AID] = simplelog.PartPrepared
	}
	var newPairs []logrec.UIDLSN
	for _, p := range e.Pairs {
		ver, kind, err := h.readOldData(p.Addr)
		if err != nil {
			return err
		}
		if kind == object.KindAtomic {
			if _, seen := h.ot[p.UID]; !seen {
				h.ot[p.UID] = newAtomicRow(simplelog.ObjPrepared)
			}
			newAddr, err := h.writeNewData(object.KindAtomic, ver)
			if err != nil {
				return err
			}
			newPairs = append(newPairs, logrec.UIDLSN{UID: p.UID, Addr: newAddr})
			continue
		}
		if err := h.compactMutexPairVersion(p, ver); err != nil {
			return err
		}
	}
	// The thesis writes the new prepared entry only when the new prepare
	// list is non-empty; we always write it so the action's prepared
	// state itself survives the compaction (a strict superset of the
	// thesis's behaviour).
	return h.writeNewOutcome(&logrec.Entry{
		Kind: logrec.KindPrepared, AID: e.AID, Pairs: newPairs,
	})
}

// compactCommittedPair folds one committed pair into the checkpoint.
func (h *Housekeeper) compactCommittedPair(p logrec.UIDLSN) error {
	row, seen := h.ot[p.UID]
	if seen && row.state == simplelog.ObjRestored && row.oldLSN == stablelog.NoLSN {
		// An atomic object already restored by a later (newer) version.
		return nil
	}
	ver, kind, err := h.readOldData(p.Addr)
	if err != nil {
		return err
	}
	if kind == object.KindAtomic {
		if seen && row.state == simplelog.ObjRestored {
			return nil
		}
		if err := h.copyVersion(p.UID, kind, ver); err != nil {
			return err
		}
		if seen {
			row.state = simplelog.ObjRestored
		} else {
			h.ot[p.UID] = &hkRow{state: simplelog.ObjRestored, oldLSN: stablelog.NoLSN}
		}
		return nil
	}
	return h.compactMutexPairVersion(p, ver)
}

// compactMutexPairIfLatest reads the data entry for a mutex pair and
// copies it if it is the most recent version seen for that object.
func (h *Housekeeper) compactMutexPairIfLatest(p logrec.UIDLSN) error {
	row, seen := h.ot[p.UID]
	if seen && row.oldLSN != stablelog.NoLSN && p.Addr <= row.oldLSN {
		return nil
	}
	ver, kind, err := h.readOldData(p.Addr)
	if err != nil {
		return err
	}
	if kind != object.KindMutex {
		// An aborted action's atomic pair: dropped.
		return nil
	}
	return h.compactMutexPairVersion(p, ver)
}

// compactMutexPairVersion installs a mutex version into the checkpoint
// under the latest-address rule, replacing a staler CSSL pair if needed.
func (h *Housekeeper) compactMutexPairVersion(p logrec.UIDLSN, ver []byte) error {
	row, seen := h.ot[p.UID]
	if seen && row.oldLSN != stablelog.NoLSN && p.Addr <= row.oldLSN {
		return nil
	}
	newAddr, err := h.writeNewData(object.KindMutex, ver)
	if err != nil {
		return err
	}
	h.cssl[p.UID] = newAddr
	h.newMT[p.UID] = newAddr
	if seen {
		row.state = simplelog.ObjRestored
		row.oldLSN = p.Addr
	} else {
		h.ot[p.UID] = &hkRow{state: simplelog.ObjRestored, oldLSN: p.Addr}
	}
	return nil
}

// copyVersion writes an object version as a new data entry and records
// it in the CSSL.
func (h *Housekeeper) copyVersion(uid ids.UID, kind object.Kind, ver []byte) error {
	addr, err := h.writeNewData(kind, ver)
	if err != nil {
		return err
	}
	h.cssl[uid] = addr
	return nil
}

func (h *Housekeeper) writeNewData(kind object.Kind, ver []byte) (stablelog.LSN, error) {
	h.stats.ObjectsCopied++
	return h.newLog.Write(logrec.Encode(logrec.Hybrid, &logrec.Entry{
		Kind: logrec.KindData, ObjType: kind, Value: ver,
	}))
}

func (h *Housekeeper) writeNewOutcome(e *logrec.Entry) error {
	e.Prev = h.newChain
	lsn, err := h.newLog.Write(logrec.Encode(logrec.Hybrid, e))
	if err != nil {
		return err
	}
	h.newChain = lsn
	return nil
}

func (h *Housekeeper) readOldData(addr stablelog.LSN) ([]byte, object.Kind, error) {
	payload, err := h.oldLog.Read(addr)
	if err != nil {
		return nil, 0, fmt.Errorf("hybridlog: housekeeping data read at %v: %w", addr, err)
	}
	e, err := logrec.Decode(logrec.Hybrid, payload)
	if err != nil {
		return nil, 0, err
	}
	if e.Kind != logrec.KindData {
		return nil, 0, fmt.Errorf("hybridlog: entry at %v is %v, want data", addr, e.Kind)
	}
	h.stats.OldEntriesRead++
	return e.Value, e.ObjType, nil
}

// --- Stage one: snapshot (§5.2) ----------------------------------------

func (h *Housekeeper) snapshotStage1() error {
	heap := h.w.heap
	pat := h.w.pat
	root, ok := heap.StableVars()
	if !ok {
		return nil // empty guardian: empty checkpoint
	}
	seen := make(map[ids.UID]bool)
	var walk func(o object.Recoverable) error
	walk = func(o object.Recoverable) error {
		if seen[o.UID()] {
			return nil
		}
		seen[o.UID()] = true
		h.newAS.Add(o.UID())
		var next []object.Recoverable
		collect := func(ref value.Obj) {
			if obj, ok := ref.(object.Recoverable); ok {
				next = append(next, obj)
			} else if obj, ok := heap.Lookup(ref.UID()); ok {
				next = append(next, obj)
			}
		}
		switch x := o.(type) {
		case *object.Atomic:
			writer := x.Writer()
			prepared := !writer.IsZero() && pat.Contains(writer)
			// The base version is always part of the committed stable
			// state.
			flatBase := x.SnapshotBase(collect)
			if err := h.copyVersion(x.UID(), object.KindAtomic, flatBase); err != nil {
				return err
			}
			if prepared {
				// Write-locked by a prepared action: also record the
				// current version as prepared_data so the action's
				// modification survives if it commits (§5.2).
				flatCur, ok := x.SnapshotCurrent(collect)
				if ok {
					if err := h.writeNewOutcome(&logrec.Entry{
						Kind:  logrec.KindPreparedData,
						UID:   x.UID(),
						AID:   writer,
						Value: flatCur,
					}); err != nil {
						return err
					}
					h.stats.ObjectsCopied++
				}
			}
		case *object.Mutex:
			// The authoritative prepared version of a mutex lives in the
			// log, not volatile memory: consult the MT (§5.2).
			if oldAddr, ok := h.oldMT[x.UID()]; ok {
				ver, _, err := h.readOldData(oldAddr)
				if err != nil {
					return err
				}
				addr, err := h.writeNewData(object.KindMutex, ver)
				if err != nil {
					return err
				}
				h.cssl[x.UID()] = addr
				h.newMT[x.UID()] = addr
				// Still traverse its volatile references for
				// reachability.
				x.Snapshot(collect)
			} else {
				// Newly accessible under a still-preparing action: its
				// state reaches the new log via stage two or the
				// post-switch rewrite (§5.2).
				x.Snapshot(collect)
			}
		}
		for _, obj := range next {
			if err := walk(obj); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return err
	}
	// Preserve the prepared status of every action in the PAT with an
	// (empty) prepared entry. The thesis leaves this implicit; without
	// it, an action whose modifications were all mutex objects — whose
	// versions the snapshot diverts to the CSSL — would lose its
	// prepared state across the switch and wrongly abort on recovery.
	for _, aid := range pat.Actions() {
		if err := h.writeNewOutcome(&logrec.Entry{Kind: logrec.KindPrepared, AID: aid}); err != nil {
			return err
		}
	}
	return nil
}

// --- Stage two and the atomic switch ------------------------------------

// Finish copies the post-marker outcome entries (the OEL) to the new
// log, freezes the writer, copies any stragglers, switches the site to
// the new log in one atomic step, and re-writes data entries for
// actions that had early-prepared but not yet prepared (§5.1.1).
func (h *Housekeeper) Finish() error {
	if !h.stage1ok {
		return fmt.Errorf("hybridlog: Finish before successful Stage1")
	}
	w := h.w
	// Copy OEL entries and force the new log without the lock until we
	// catch up with the new log forced, then freeze. The force runs
	// outside w.mu (force waits never happen under a writer lock); if
	// outcome entries land between the force and the re-check, the next
	// iteration copies and re-forces.
	done := 0
	forcedAt := -1
	for {
		w.mu.Lock()
		pendingOEL := h.hk.oel[done:]
		if len(pendingOEL) == 0 && forcedAt == done {
			// Caught up and durable: keep the lock, switch below.
			break
		}
		batch := make([]stablelog.LSN, len(pendingOEL))
		copy(batch, pendingOEL)
		w.mu.Unlock()
		for _, lsn := range batch {
			if err := h.copyOELEntry(lsn); err != nil {
				return err
			}
		}
		done += len(batch)
		if err := h.newLog.Force(); err != nil {
			return err
		}
		forcedAt = done
	}
	defer w.mu.Unlock()

	// Switch generations: the one atomic step.
	if err := h.site.Switch(h.newLog, h.gen); err != nil {
		return err
	}
	h.stats.OELCopied = done
	h.stats.OldLogSize = h.oldLog.Size()

	w.log = h.newLog
	w.lastOutcome = h.newChain
	w.hk = nil
	if h.snapshot {
		// The new AS is the traversal's set intersected with the old
		// one (§5.2).
		h.newAS.Intersect(w.as)
		w.as.ReplaceWith(h.newAS)
	}
	w.mt = h.newMT

	// Data entries for actions that had not yet prepared were not
	// copied; re-write them to the new log from volatile memory
	// (§5.1.1: "the recovery system ... restarts the writing of the
	// data entries for those actions to the new log"). Sorted by action
	// id: these are log writes, and the sweep replays them by index.
	aids := make([]ids.ActionID, 0, len(w.pending))
	//roslint:nondet keys collected here are sorted below before use
	for aid := range w.pending {
		aids = append(aids, aid)
	}
	sort.Slice(aids, func(i, j int) bool {
		if aids[i].Coordinator != aids[j].Coordinator {
			return aids[i].Coordinator < aids[j].Coordinator
		}
		return aids[i].Seq < aids[j].Seq
	})
	for _, aid := range aids {
		pend := w.pending[aid]
		objs := make([]object.Recoverable, len(pend))
		for i, p := range pend {
			objs[i] = p.obj
		}
		delete(w.pending, aid)
		naos := newNAOS()
		for _, obj := range objs {
			if !w.as.Contains(obj.UID()) {
				continue
			}
			if err := w.writeDataEntry(aid, obj, naos); err != nil {
				return err
			}
		}
		for {
			obj, ok := naos.pop()
			if !ok {
				break
			}
			if err := w.writeNewlyAccessible(aid, obj, naos); err != nil {
				return err
			}
			w.as.Add(obj.UID())
		}
	}
	h.stats.NewLogSize = h.newLog.Size()
	return nil
}

// copyOELEntry copies one post-marker outcome entry to the new log
// (stage two). Prepared entries have their data entries re-written and
// re-addressed; everything else is copied with a fresh chain link.
func (h *Housekeeper) copyOELEntry(lsn stablelog.LSN) error {
	payload, err := h.oldLog.Read(lsn)
	if err != nil {
		return fmt.Errorf("hybridlog: OEL read at %v: %w", lsn, err)
	}
	e, err := logrec.Decode(logrec.Hybrid, payload)
	if err != nil {
		return err
	}
	switch e.Kind {
	case logrec.KindPrepared:
		var newPairs []logrec.UIDLSN
		for _, p := range e.Pairs {
			ver, kind, err := h.readOldData(p.Addr)
			if err != nil {
				return err
			}
			if kind == object.KindMutex {
				// Latest-version check against the OT (§5.1.1 stage 2).
				if row, seen := h.ot[p.UID]; seen && row.oldLSN != stablelog.NoLSN && p.Addr < row.oldLSN {
					continue
				}
			}
			newAddr, err := h.writeNewData(kind, ver)
			if err != nil {
				return err
			}
			newPairs = append(newPairs, logrec.UIDLSN{UID: p.UID, Addr: newAddr})
			if kind == object.KindMutex {
				if row, seen := h.ot[p.UID]; seen {
					row.oldLSN = p.Addr
				} else {
					h.ot[p.UID] = &hkRow{state: simplelog.ObjRestored, oldLSN: p.Addr}
				}
				h.newMT[p.UID] = newAddr
			}
		}
		return h.writeNewOutcome(&logrec.Entry{Kind: logrec.KindPrepared, AID: e.AID, Pairs: newPairs})

	case logrec.KindBaseCommitted:
		return h.writeNewOutcome(&logrec.Entry{Kind: e.Kind, UID: e.UID, Value: e.Value})

	case logrec.KindPreparedData:
		return h.writeNewOutcome(&logrec.Entry{Kind: e.Kind, UID: e.UID, AID: e.AID, Value: e.Value})

	case logrec.KindCommitting:
		return h.writeNewOutcome(&logrec.Entry{Kind: e.Kind, AID: e.AID, GIDs: e.GIDs})

	case logrec.KindCommitted, logrec.KindAborted, logrec.KindDone:
		return h.writeNewOutcome(&logrec.Entry{Kind: e.Kind, AID: e.AID})

	default:
		return fmt.Errorf("hybridlog: unexpected %v in OEL", e.Kind)
	}
}
