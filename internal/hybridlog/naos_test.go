package hybridlog

// Newly-accessible-object coverage for the hybrid writer: the case
// analysis of §3.3.3.3 step 4 in the hybrid format (chained
// base_committed / prepared_data entries), plus housekeeping over those
// entries.

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/value"
)

// prepareHidden sets up the prepared_data situation: action A modifies
// an inaccessible object O and prepares; action B then makes O
// accessible and prepares.
func prepareHidden(t *testing.T, f *fixture) (aA, aB ids.ActionID, o *object.Atomic) {
	t.Helper()
	accounts := f.seedBank(1)
	holder := accounts[0]

	o = object.NewAtomic(777, value.Int(1), ids.NoAction)
	f.heap.Register(o)
	aA = f.action()
	aB = f.action()
	if err := o.AcquireWrite(aA); err != nil {
		t.Fatal(err)
	}
	o.Replace(aA, value.Int(2))
	if err := f.writer.Prepare(aA, object.MOS{o}); err != nil {
		t.Fatal(err)
	}
	if err := holder.AcquireWrite(aB); err != nil {
		t.Fatal(err)
	}
	holder.Replace(aB, value.NewList(value.Ref{Target: o}))
	if err := f.writer.Prepare(aB, object.MOS{holder}); err != nil {
		t.Fatal(err)
	}
	return aA, aB, o
}

func TestHybridPreparedDataEntry(t *testing.T) {
	f := newFixture(t)
	aA, _, _ := prepareHidden(t, f)

	tables := f.crashAndRecover()
	rO := getAtomic(t, tables.Heap, 777)
	if rO.Writer() != aA {
		t.Fatalf("O writer = %v, want %v", rO.Writer(), aA)
	}
	if cur, ok := rO.Current(); !ok || !value.Equal(cur, value.Int(2)) {
		t.Fatalf("O current = %v", cur)
	}
	if !value.Equal(rO.Base(), value.Int(1)) {
		t.Fatalf("O base = %s", value.String(rO.Base()))
	}
}

func TestHybridPreparedDataThenCommit(t *testing.T) {
	f := newFixture(t)
	aA, _, o := prepareHidden(t, f)
	if err := f.writer.Commit(aA); err != nil {
		t.Fatal(err)
	}
	o.Commit(aA)
	tables := f.crashAndRecover()
	rO := getAtomic(t, tables.Heap, 777)
	if !value.Equal(rO.Base(), value.Int(2)) {
		t.Fatalf("O base = %s, want committed 2", value.String(rO.Base()))
	}
	if !rO.Writer().IsZero() {
		t.Fatalf("stale lock by %v", rO.Writer())
	}
}

func TestHybridPreparedDataThenAbort(t *testing.T) {
	f := newFixture(t)
	aA, _, o := prepareHidden(t, f)
	if err := f.writer.Abort(aA); err != nil {
		t.Fatal(err)
	}
	o.Abort(aA)
	tables := f.crashAndRecover()
	rO := getAtomic(t, tables.Heap, 777)
	if !value.Equal(rO.Base(), value.Int(1)) {
		t.Fatalf("O base = %s, want original 1", value.String(rO.Base()))
	}
}

// TestHybridPreparedDataSurvivesHousekeeping: compaction and snapshot
// must carry the pd entry (or equivalent) across the switch while A is
// still prepared.
func TestHybridPreparedDataSurvivesHousekeeping(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		aA, _, o := prepareHidden(t, f)

		runHousekeeping(t, f, snapshot)

		// A commits after the switch; its current version must win.
		if err := f.writer.Commit(aA); err != nil {
			t.Fatal(err)
		}
		o.Commit(aA)
		tables := f.crashAndRecover()
		rO := getAtomic(t, tables.Heap, 777)
		if !value.Equal(rO.Base(), value.Int(2)) {
			t.Fatalf("O base = %s, want 2", value.String(rO.Base()))
		}
	})
}

// TestHybridPreparedDataAbortAfterHousekeeping is the abort dual.
func TestHybridPreparedDataAbortAfterHousekeeping(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		aA, _, o := prepareHidden(t, f)
		runHousekeeping(t, f, snapshot)
		if err := f.writer.Abort(aA); err != nil {
			t.Fatal(err)
		}
		o.Abort(aA)
		tables := f.crashAndRecover()
		rO := getAtomic(t, tables.Heap, 777)
		if !value.Equal(rO.Base(), value.Int(1)) {
			t.Fatalf("O base = %s, want 1", value.String(rO.Base()))
		}
	})
}

// TestHybridNewlyAccessibleUnlocked: an object made accessible while
// holding no lock gets a single base_committed entry.
func TestHybridNewlyAccessibleUnlocked(t *testing.T) {
	f := newFixture(t)
	accounts := f.seedBank(1)
	free := object.NewAtomic(888, value.Str("free"), ids.NoAction)
	f.heap.Register(free)
	aid := f.action()
	if err := accounts[0].AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	accounts[0].Replace(aid, value.NewList(value.Ref{Target: free}))
	if err := f.writer.Prepare(aid, object.MOS{accounts[0]}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Commit(aid); err != nil {
		t.Fatal(err)
	}
	accounts[0].Commit(aid)
	tables := f.crashAndRecover()
	rf := getAtomic(t, tables.Heap, 888)
	if !value.Equal(rf.Base(), value.Str("free")) {
		t.Fatalf("free = %s", value.String(rf.Base()))
	}
}

// TestHybridNewlyAccessibleLockedByUnpreparedAction: the other writer
// has not prepared, so only the base version is written.
func TestHybridNewlyAccessibleLockedByUnpreparedAction(t *testing.T) {
	f := newFixture(t)
	accounts := f.seedBank(1)
	o := object.NewAtomic(999, value.Int(1), ids.NoAction)
	f.heap.Register(o)
	aA := f.action() // modifies O but never prepares
	aB := f.action()
	if err := o.AcquireWrite(aA); err != nil {
		t.Fatal(err)
	}
	o.Replace(aA, value.Int(2))
	if err := accounts[0].AcquireWrite(aB); err != nil {
		t.Fatal(err)
	}
	accounts[0].Replace(aB, value.NewList(value.Ref{Target: o}))
	if err := f.writer.Prepare(aB, object.MOS{accounts[0]}); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Commit(aB); err != nil {
		t.Fatal(err)
	}
	accounts[0].Commit(aB)
	tables := f.crashAndRecover()
	rO := getAtomic(t, tables.Heap, 999)
	if !value.Equal(rO.Base(), value.Int(1)) {
		t.Fatalf("O = %s, want base 1 (A never prepared)", value.String(rO.Base()))
	}
	if !rO.Writer().IsZero() {
		t.Fatalf("phantom lock by %v", rO.Writer())
	}
}

// TestHousekeepingStage2CopiesAllOutcomeKinds: bc, pd, committing, and
// done entries written after the marker are copied by stage two.
func TestHousekeepingStage2CopiesAllOutcomeKinds(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		accounts := f.seedBank(1)

		var h *Housekeeper
		var err error
		if snapshot {
			h, err = f.writer.BeginSnapshot(f.site)
		} else {
			h, err = f.writer.BeginCompaction(f.site)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Stage1(); err != nil {
			t.Fatal(err)
		}

		// Post-marker activity producing every outcome kind:
		// a prepared_data + base_committed via a hidden object, and a
		// coordinator pair.
		aA, _, o := prepareHidden2(t, f, accounts[0])
		coordAid := f.action()
		if err := f.writer.Prepare(coordAid, nil); err != nil {
			t.Fatal(err)
		}
		if err := f.writer.Committing(coordAid, []ids.GuardianID{1, 2}); err != nil {
			t.Fatal(err)
		}
		if err := f.writer.Commit(coordAid); err != nil {
			t.Fatal(err)
		}
		doneAid := f.action()
		if err := f.writer.Prepare(doneAid, nil); err != nil {
			t.Fatal(err)
		}
		if err := f.writer.Committing(doneAid, []ids.GuardianID{1}); err != nil {
			t.Fatal(err)
		}
		if err := f.writer.Commit(doneAid); err != nil {
			t.Fatal(err)
		}
		if err := f.writer.Done(doneAid); err != nil {
			t.Fatal(err)
		}

		if err := h.Finish(); err != nil {
			t.Fatal(err)
		}

		tables := f.crashAndRecover()
		// The hidden object's pd entry survived the stage-2 copy.
		rO := getAtomic(t, tables.Heap, 777)
		if rO.Writer() != aA {
			t.Fatalf("O writer = %v, want %v", rO.Writer(), aA)
		}
		// The unfinished coordinator survives; the finished one is done.
		ci, ok := tables.CT[coordAid]
		if !ok || len(ci.GIDs) != 2 {
			t.Fatalf("CT[%v] = %+v", coordAid, ci)
		}
		_ = o
	})
}

// prepareHidden2 is prepareHidden against an existing seeded account.
func prepareHidden2(t *testing.T, f *fixture, holder *object.Atomic) (aA, aB ids.ActionID, o *object.Atomic) {
	t.Helper()
	o = object.NewAtomic(777, value.Int(1), ids.NoAction)
	f.heap.Register(o)
	aA = f.action()
	aB = f.action()
	if err := o.AcquireWrite(aA); err != nil {
		t.Fatal(err)
	}
	o.Replace(aA, value.Int(2))
	if err := f.writer.Prepare(aA, object.MOS{o}); err != nil {
		t.Fatal(err)
	}
	if err := holder.AcquireWrite(aB); err != nil {
		t.Fatal(err)
	}
	holder.Replace(aB, value.NewList(value.Ref{Target: o}))
	if err := f.writer.Prepare(aB, object.MOS{holder}); err != nil {
		t.Fatal(err)
	}
	return aA, aB, o
}
