package hybridlog

// Tests for chapter 5: log compaction (§5.1) and the stable-state
// snapshot (§5.2). The core property for both: recovery from the
// housekept log reconstructs exactly the state recovery from the
// original log would have, while the new log is smaller and cheaper to
// recover from.

import (
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/simplelog"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// runHousekeeping dispatches on the algorithm under test.
func runHousekeeping(t *testing.T, f *fixture, snapshot bool) Stats {
	t.Helper()
	var stats Stats
	var err error
	if snapshot {
		stats, err = f.writer.SnapshotLog(f.site)
	} else {
		stats, err = f.writer.CompactLog(f.site)
	}
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func forBoth(t *testing.T, fn func(t *testing.T, snapshot bool)) {
	t.Run("compaction", func(t *testing.T) { fn(t, false) })
	t.Run("snapshot", func(t *testing.T) { fn(t, true) })
}

// TestHousekeepingShrinksLogAndPreservesState: after a long committed
// history, housekeeping must shrink the log and recovery must still
// reproduce the live state.
func TestHousekeepingShrinksLogAndPreservesState(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		accounts := f.seedBank(4)
		for i := 0; i < 50; i++ {
			f.transfer(accounts[i%4], accounts[(i+1)%4], int64(i))
		}
		oldSize := f.writer.Log().Size()
		oldGen := f.site.Generation()

		stats := runHousekeeping(t, f, snapshot)
		if f.site.Generation() != oldGen+1 {
			t.Fatalf("generation = %d, want %d", f.site.Generation(), oldGen+1)
		}
		if stats.NewLogSize >= oldSize {
			t.Fatalf("new log %d bytes, old %d: no shrink", stats.NewLogSize, oldSize)
		}
		// 5 live objects (root + 4 accounts): the checkpoint copies
		// exactly those.
		if stats.ObjectsCopied != 5 {
			t.Fatalf("ObjectsCopied = %d, want 5", stats.ObjectsCopied)
		}

		tables := f.crashAndRecover()
		assertHeapMatches(t, f.heap, tables.Heap)
		// Recovery reads the committed_ss chain, not 50 transfers' worth
		// of entries.
		if tables.OutcomesRead > 3 {
			t.Fatalf("OutcomesRead = %d after housekeeping, want ≤3", tables.OutcomesRead)
		}
	})
}

// TestHousekeepingContinuesAfterSwitch: the guardian keeps committing
// actions on the new log and everything survives a crash.
func TestHousekeepingContinuesAfterSwitch(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		accounts := f.seedBank(2)
		f.transfer(accounts[0], accounts[1], 100)
		runHousekeeping(t, f, snapshot)
		f.transfer(accounts[1], accounts[0], 30)

		tables := f.crashAndRecover()
		got0 := getAtomic(t, tables.Heap, accounts[0].UID())
		got1 := getAtomic(t, tables.Heap, accounts[1].UID())
		if !value.Equal(got0.Base(), value.Int(-70)) || !value.Equal(got1.Base(), value.Int(1070)) {
			t.Fatalf("balances %s/%s, want -70/1070",
				value.String(got0.Base()), value.String(got1.Base()))
		}
	})
}

// TestHousekeepingPreservesPreparedAction: an action prepared but not
// yet resolved at housekeeping time must survive the switch with its
// write locks and both versions.
func TestHousekeepingPreservesPreparedAction(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		accounts := f.seedBank(2)
		aid := f.action()
		if err := accounts[0].AcquireWrite(aid); err != nil {
			t.Fatal(err)
		}
		accounts[0].Replace(aid, value.Int(42))
		if err := f.writer.Prepare(aid, object.MOS{accounts[0]}); err != nil {
			t.Fatal(err)
		}

		runHousekeeping(t, f, snapshot)

		tables := f.crashAndRecover()
		if tables.PT[aid] != simplelog.PartPrepared {
			t.Fatalf("PT[%v] = %v, want prepared", aid, tables.PT[aid])
		}
		ra := getAtomic(t, tables.Heap, accounts[0].UID())
		if ra.Writer() != aid {
			t.Fatalf("writer = %v, want %v", ra.Writer(), aid)
		}
		if cur, ok := ra.Current(); !ok || !value.Equal(cur, value.Int(42)) {
			t.Fatalf("current = %v, want 42", cur)
		}
		if !value.Equal(ra.Base(), value.Int(0)) {
			t.Fatalf("base = %s, want 0", value.String(ra.Base()))
		}
	})
}

// TestHousekeepingPreparedThenCommitAfterSwitch: the surviving prepared
// action commits on the new log; its version must win over the
// checkpoint's base.
func TestHousekeepingPreparedThenCommitAfterSwitch(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		accounts := f.seedBank(2)
		aid := f.action()
		if err := accounts[0].AcquireWrite(aid); err != nil {
			t.Fatal(err)
		}
		accounts[0].Replace(aid, value.Int(42))
		if err := f.writer.Prepare(aid, object.MOS{accounts[0]}); err != nil {
			t.Fatal(err)
		}

		runHousekeeping(t, f, snapshot)

		if err := f.writer.Commit(aid); err != nil {
			t.Fatal(err)
		}
		accounts[0].Commit(aid)

		tables := f.crashAndRecover()
		ra := getAtomic(t, tables.Heap, accounts[0].UID())
		if !value.Equal(ra.Base(), value.Int(42)) {
			t.Fatalf("base = %s, want committed 42", value.String(ra.Base()))
		}
		if !ra.Writer().IsZero() {
			t.Fatalf("stale write lock by %v", ra.Writer())
		}
	})
}

// TestHousekeepingPreparedThenAbortAfterSwitch is the abort dual.
func TestHousekeepingPreparedThenAbortAfterSwitch(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		accounts := f.seedBank(2)
		aid := f.action()
		if err := accounts[0].AcquireWrite(aid); err != nil {
			t.Fatal(err)
		}
		accounts[0].Replace(aid, value.Int(42))
		if err := f.writer.Prepare(aid, object.MOS{accounts[0]}); err != nil {
			t.Fatal(err)
		}
		runHousekeeping(t, f, snapshot)
		if err := f.writer.Abort(aid); err != nil {
			t.Fatal(err)
		}
		accounts[0].Abort(aid)

		tables := f.crashAndRecover()
		ra := getAtomic(t, tables.Heap, accounts[0].UID())
		if !value.Equal(ra.Base(), value.Int(0)) {
			t.Fatalf("base = %s, want 0 after abort", value.String(ra.Base()))
		}
	})
}

// TestHousekeepingStageTwoCopiesInterleavedWrites: actions that run
// between Stage1 and Finish land in the OEL and must survive.
func TestHousekeepingStageTwoCopiesInterleavedWrites(t *testing.T) {
	for _, snapshot := range []bool{false, true} {
		name := "compaction"
		if snapshot {
			name = "snapshot"
		}
		t.Run(name, func(t *testing.T) {
			f := newFixture(t)
			accounts := f.seedBank(3)
			f.transfer(accounts[0], accounts[1], 10)

			var h *Housekeeper
			var err error
			if snapshot {
				h, err = f.writer.BeginSnapshot(f.site)
			} else {
				h, err = f.writer.BeginCompaction(f.site)
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Stage1(); err != nil {
				t.Fatal(err)
			}
			// Work arriving between the stages, including a mutex-free
			// commit and an action left prepared.
			f.transfer(accounts[1], accounts[2], 5)
			pend := f.action()
			if err := accounts[0].AcquireWrite(pend); err != nil {
				t.Fatal(err)
			}
			accounts[0].Replace(pend, value.Int(1234))
			if err := f.writer.Prepare(pend, object.MOS{accounts[0]}); err != nil {
				t.Fatal(err)
			}
			if err := h.Finish(); err != nil {
				t.Fatal(err)
			}

			tables := f.crashAndRecover()
			// The mid-housekeeping transfer survived.
			got1 := getAtomic(t, tables.Heap, accounts[1].UID())
			got2 := getAtomic(t, tables.Heap, accounts[2].UID())
			if !value.Equal(got1.Base(), value.Int(1005)) || !value.Equal(got2.Base(), value.Int(2005)) {
				t.Fatalf("balances %s/%s, want 1005/2005",
					value.String(got1.Base()), value.String(got2.Base()))
			}
			// The prepared action survived with lock and versions.
			ra := getAtomic(t, tables.Heap, accounts[0].UID())
			if ra.Writer() != pend {
				t.Fatalf("writer = %v, want %v", ra.Writer(), pend)
			}
			if cur, ok := ra.Current(); !ok || !value.Equal(cur, value.Int(1234)) {
				t.Fatalf("current = %v", cur)
			}
		})
	}
}

// TestHousekeepingRewritesUnpreparedEarlyData: data entries early-
// prepared by an action that has not prepared at switch time are not
// copied by stage two; the writer re-writes them to the new log
// (§5.1.1 last paragraph).
func TestHousekeepingRewritesUnpreparedEarlyData(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		accounts := f.seedBank(2)
		aid := f.action()
		if err := accounts[0].AcquireWrite(aid); err != nil {
			t.Fatal(err)
		}
		accounts[0].Replace(aid, value.Int(55))
		if _, err := f.writer.WriteEntry(aid, object.MOS{accounts[0]}); err != nil {
			t.Fatal(err)
		}

		runHousekeeping(t, f, snapshot)

		// Now prepare and commit on the new log; the pair must resolve
		// to a data entry in the *new* log.
		if err := f.writer.Prepare(aid, object.MOS{}); err != nil {
			t.Fatal(err)
		}
		if err := f.writer.Commit(aid); err != nil {
			t.Fatal(err)
		}
		accounts[0].Commit(aid)

		tables := f.crashAndRecover()
		ra := getAtomic(t, tables.Heap, accounts[0].UID())
		if !value.Equal(ra.Base(), value.Int(55)) {
			t.Fatalf("base = %s, want 55", value.String(ra.Base()))
		}
	})
}

// TestHousekeepingMutexLatestVersion: two actions prepared mutex
// versions; housekeeping must keep only the latest, and recovery must
// agree.
func TestHousekeepingMutexLatestVersion(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		m := object.NewMutex(2, value.Int(0))
		root := object.NewAtomic(ids.StableVarsUID,
			value.RecordOf("m", value.Ref{Target: m}), ids.NoAction)
		f.heap.Register(root)
		f.heap.Register(m)
		setup := f.action()
		if err := f.writer.Prepare(setup, object.MOS{}); err != nil {
			t.Fatal(err)
		}
		f.writer.Commit(setup)

		// Two prepared (unresolved) actions touch the mutex in turn.
		a1, a2 := f.action(), f.action()
		m.Seize(a1, func(value.Value) value.Value { return value.Int(1) })
		if err := f.writer.Prepare(a1, object.MOS{m}); err != nil {
			t.Fatal(err)
		}
		m.Seize(a2, func(value.Value) value.Value { return value.Int(2) })
		if err := f.writer.Prepare(a2, object.MOS{m}); err != nil {
			t.Fatal(err)
		}

		runHousekeeping(t, f, snapshot)

		tables := f.crashAndRecover()
		rm := getMutex(t, tables.Heap, 2)
		if !value.Equal(rm.Current(), value.Int(2)) {
			t.Fatalf("mutex = %s, want latest prepared version 2", value.String(rm.Current()))
		}
		if tables.PT[a1] != simplelog.PartPrepared || tables.PT[a2] != simplelog.PartPrepared {
			t.Fatalf("PT = %v", tables.PT)
		}
	})
}

// TestRepeatedHousekeeping: housekeeping must compose — including
// compacting a log that already contains a committed_ss entry — and
// keep recovery cost bounded as history grows.
func TestRepeatedHousekeeping(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		accounts := f.seedBank(3)
		for round := 0; round < 4; round++ {
			for i := 0; i < 10; i++ {
				f.transfer(accounts[i%3], accounts[(i+1)%3], 1)
			}
			runHousekeeping(t, f, snapshot)
		}
		tables := f.crashAndRecover()
		assertHeapMatches(t, f.heap, tables.Heap)
		if tables.OutcomesRead > 3 {
			t.Fatalf("OutcomesRead = %d, want bounded", tables.OutcomesRead)
		}
	})
}

// TestHousekeepingWithNewlyAccessibleUnderPreparedAction covers the
// §5.2 corner: an object created and made accessible by a *prepared*
// action. Its data predates the marker; if the action commits after the
// switch, the object must still be recoverable.
func TestHousekeepingWithNewlyAccessibleUnderPreparedAction(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		accounts := f.seedBank(2)
		aid := f.action()
		child := object.NewAtomic(777, value.Str("child"), aid) // read-locked by creator
		f.heap.Register(child)
		if err := accounts[0].AcquireWrite(aid); err != nil {
			t.Fatal(err)
		}
		accounts[0].Replace(aid, value.NewList(value.Ref{Target: child}))
		if err := f.writer.Prepare(aid, object.MOS{accounts[0]}); err != nil {
			t.Fatal(err)
		}

		runHousekeeping(t, f, snapshot)

		if err := f.writer.Commit(aid); err != nil {
			t.Fatal(err)
		}
		accounts[0].Commit(aid)
		child.Commit(aid)

		tables := f.crashAndRecover()
		rc := getAtomic(t, tables.Heap, 777)
		if !value.Equal(rc.Base(), value.Str("child")) {
			t.Fatalf("child = %s", value.String(rc.Base()))
		}
		ra := getAtomic(t, tables.Heap, accounts[0].UID())
		l, ok := ra.Base().(*value.List)
		if !ok {
			t.Fatalf("account0 = %s", value.String(ra.Base()))
		}
		if ref, ok := l.Elems[0].(value.Ref); !ok || ref.Target.UID() != 777 {
			t.Fatalf("reference = %s", value.String(l.Elems[0]))
		}
	})
}

// TestHousekeepingDropsAbortedGarbage: versions written by aborted
// actions do not survive into the new log.
func TestHousekeepingDropsAbortedGarbage(t *testing.T) {
	forBoth(t, func(t *testing.T, snapshot bool) {
		f := newFixture(t)
		accounts := f.seedBank(1)
		for i := 0; i < 20; i++ {
			aid := f.action()
			if err := accounts[0].AcquireWrite(aid); err != nil {
				t.Fatal(err)
			}
			accounts[0].Replace(aid, value.Int(int64(i)))
			if err := f.writer.Prepare(aid, object.MOS{accounts[0]}); err != nil {
				t.Fatal(err)
			}
			if err := f.writer.Abort(aid); err != nil {
				t.Fatal(err)
			}
			accounts[0].Abort(aid)
		}
		stats := runHousekeeping(t, f, snapshot)
		// Only root + account survive (2 objects).
		if stats.ObjectsCopied != 2 {
			t.Fatalf("ObjectsCopied = %d, want 2", stats.ObjectsCopied)
		}
		tables := f.crashAndRecover()
		ra := getAtomic(t, tables.Heap, accounts[0].UID())
		if !value.Equal(ra.Base(), value.Int(0)) {
			t.Fatalf("account = %s, want 0", value.String(ra.Base()))
		}
	})
}

// TestConcurrentHousekeepingRejected: only one run at a time.
func TestConcurrentHousekeepingRejected(t *testing.T) {
	f := newFixture(t)
	f.seedBank(1)
	h, err := f.writer.BeginCompaction(f.site)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.writer.BeginSnapshot(f.site); err == nil {
		t.Fatal("second housekeeping accepted")
	}
	if err := h.Stage1(); err != nil {
		t.Fatal(err)
	}
	if err := h.Finish(); err != nil {
		t.Fatal(err)
	}
	// After Finish a new run is allowed again.
	stats, err := f.writer.CompactLog(f.site)
	if err != nil {
		t.Fatal(err)
	}
	_ = stats
}

// TestHousekeepingRecoveryCostBounded quantifies E6: recovery cost
// before housekeeping grows with history; after housekeeping it is
// proportional to the live set.
func TestHousekeepingRecoveryCostBounded(t *testing.T) {
	f := newFixture(t)
	accounts := f.seedBank(2)
	for i := 0; i < 100; i++ {
		f.transfer(accounts[0], accounts[1], 1)
	}
	// Measure recovery cost pre-housekeeping (on a copy via crash).
	f.vol.Crash()
	f.vol.Restart()
	site, err := stablelog.OpenSite(f.vol)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Recover(site.Log())
	if err != nil {
		t.Fatal(err)
	}
	// Resume and housekeep.
	w := NewWriter(site.Log(), before.Heap, before.AS, before.PAT, before.ChainHead, before.MT)
	if _, err := w.CompactLog(site); err != nil {
		t.Fatal(err)
	}
	f.vol.Crash()
	f.vol.Restart()
	site2, err := stablelog.OpenSite(f.vol)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Recover(site2.Log())
	if err != nil {
		t.Fatal(err)
	}
	if after.OutcomesRead >= before.OutcomesRead/10 {
		t.Fatalf("recovery outcome reads: before %d, after %d — not bounded",
			before.OutcomesRead, after.OutcomesRead)
	}
	// And state equivalence.
	for _, uid := range before.Heap.UIDs() {
		bo, _ := before.Heap.Lookup(uid)
		ao, ok := after.Heap.Lookup(uid)
		if !ok {
			t.Fatalf("%v lost by housekeeping", uid)
		}
		ba, aok := bo.(*object.Atomic)
		aa, bok := ao.(*object.Atomic)
		if aok && bok && !value.Equal(ba.Base(), aa.Base()) {
			t.Fatalf("%v: %s vs %s", uid, value.String(ba.Base()), value.String(aa.Base()))
		}
	}
	_ = fmt.Sprint()
}
