package hybridlog

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/logrec"
	"repro/internal/object"
	"repro/internal/simplelog"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// Tables is the recovery result, as in the simple log, plus the hybrid
// log's extra state: the chain head (the last outcome entry, which a
// resumed Writer links its next outcome entry to) and the reconstructed
// mutex table for snapshot housekeeping (§5.2).
type Tables struct {
	PT     map[ids.ActionID]simplelog.PartState
	CT     map[ids.ActionID]simplelog.CoordInfo
	Heap   *object.Heap
	AS     *object.AccessSet
	PAT    *object.PAT
	MaxUID ids.UID
	// ChainHead is the address of the last outcome entry on the log.
	ChainHead stablelog.LSN
	// MT maps each mutex object to the address of the data entry holding
	// its latest prepared version.
	MT map[ids.UID]stablelog.LSN
	// OutcomesRead counts outcome entries processed; DataRead counts
	// data entries actually fetched. Hybrid recovery's advantage (§4.1)
	// is that OutcomesRead + DataRead ≪ total entries when most data is
	// superseded.
	OutcomesRead int
	DataRead     int
}

// otRow is an object-table row; for mutex objects it carries the log
// address of the copied version so the early-prepare comparison rule of
// §4.4 can prefer the later entry.
type otRow struct {
	kind     object.Kind
	state    simplelog.ObjState
	base     value.Value
	cur      value.Value
	writer   ids.ActionID
	mutexLSN stablelog.LSN
	// fromSS marks a version restored from a committed_ss entry.
	// Compaction writes stage-one entries in reverse chronological
	// order, so a prepared entry read *after* the committed_ss may carry
	// a version newer than the checkpoint's; such pairs override fromSS
	// rows, whereas the ordinary first-seen-wins rule applies otherwise.
	fromSS bool
}

type recovery struct {
	log *stablelog.Log
	ot  map[ids.UID]*otRow
	t   *Tables
}

// Recover reconstructs a guardian's stable state from its hybrid log by
// following the backward chain of outcome entries (§4.3.3).
func Recover(log *stablelog.Log) (*Tables, error) {
	r := &recovery{
		log: log,
		ot:  make(map[ids.UID]*otRow),
		t: &Tables{
			PT: make(map[ids.ActionID]simplelog.PartState),
			CT: make(map[ids.ActionID]simplelog.CoordInfo),
			MT: make(map[ids.UID]stablelog.LSN),
		},
	}
	// Find the last outcome entry: scan back over any trailing data
	// entries (early-prepared data whose action never prepared).
	head := stablelog.NoLSN
	err := log.ReadBackward(log.Top(), func(lsn stablelog.LSN, payload []byte) bool {
		e, derr := logrec.Decode(logrec.Hybrid, payload)
		if derr != nil {
			return true // unreadable trailing bytes: keep scanning
		}
		if e.Kind.IsOutcome() {
			head = lsn
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	r.t.ChainHead = head

	// Follow the chain.
	for lsn := head; lsn != stablelog.NoLSN; {
		payload, err := log.Read(lsn)
		if err != nil {
			return nil, fmt.Errorf("hybridlog: chain read at %v: %w", lsn, err)
		}
		e, err := logrec.Decode(logrec.Hybrid, payload)
		if err != nil {
			return nil, fmt.Errorf("hybridlog: chain entry at %v: %w", lsn, err)
		}
		r.t.OutcomesRead++
		if err := r.process(e); err != nil {
			return nil, err
		}
		lsn = e.Prev
	}
	return r.finish()
}

func (r *recovery) process(e *logrec.Entry) error {
	switch e.Kind {
	case logrec.KindPrepared:
		if _, known := r.t.PT[e.AID]; !known {
			r.t.PT[e.AID] = simplelog.PartPrepared
		}
		return r.processPairs(e.AID, e.Pairs)

	case logrec.KindCommitted:
		if _, known := r.t.PT[e.AID]; !known {
			r.t.PT[e.AID] = simplelog.PartCommitted
		}

	case logrec.KindAborted:
		if _, known := r.t.PT[e.AID]; !known {
			r.t.PT[e.AID] = simplelog.PartAborted
		}

	case logrec.KindCommitting:
		if _, known := r.t.CT[e.AID]; !known {
			r.t.CT[e.AID] = simplelog.CoordInfo{State: simplelog.CoordCommitting, GIDs: e.GIDs}
		}

	case logrec.KindDone:
		if _, known := r.t.CT[e.AID]; !known {
			r.t.CT[e.AID] = simplelog.CoordInfo{State: simplelog.CoordDone}
		}

	case logrec.KindBaseCommitted:
		r.applyBaseVersion(e.UID, e.Value, false)

	case logrec.KindPreparedData:
		switch r.t.PT[e.AID] {
		case simplelog.PartAborted:
			// discarded
		case simplelog.PartCommitted:
			// A surviving prepared_data entry whose action committed
			// after the checkpoint: newer than any committed_ss version.
			r.applyBaseVersion(e.UID, e.Value, true)
		default:
			if _, known := r.t.PT[e.AID]; !known {
				r.t.PT[e.AID] = simplelog.PartPrepared
			}
			if row, seen := r.ot[e.UID]; !seen {
				v, err := value.Unflatten(e.Value)
				if err != nil {
					return fmt.Errorf("hybridlog: prepared_data for %v: %w", e.UID, err)
				}
				r.ot[e.UID] = &otRow{
					kind:   object.KindAtomic,
					state:  simplelog.ObjPrepared,
					cur:    v,
					writer: e.AID,
				}
			} else if row.kind == object.KindAtomic && row.writer.IsZero() && row.cur == nil {
				v, err := value.Unflatten(e.Value)
				if err != nil {
					return fmt.Errorf("hybridlog: prepared_data for %v: %w", e.UID, err)
				}
				row.cur = v
				row.writer = e.AID
			}
		}

	case logrec.KindCommittedSS:
		// §5.1.2: treat as a commit and prepare of an anonymous action.
		return r.processCommittedSS(e.Pairs)

	default:
		return fmt.Errorf("hybridlog: unexpected %v entry on outcome chain", e.Kind)
	}
	return nil
}

// processPairs handles the ⟨uid, log address⟩ list of a prepared entry,
// dispatching on the action's (already known) final state.
func (r *recovery) processPairs(aid ids.ActionID, pairs []logrec.UIDLSN) error {
	state := r.t.PT[aid]
	for _, p := range pairs {
		row, seen := r.ot[p.UID]
		switch state {
		case simplelog.PartCommitted:
			if seen {
				if row.kind == object.KindMutex {
					if err := r.maybeCopyMutex(p); err != nil {
						return err
					}
					continue
				}
				if row.state == simplelog.ObjRestored && row.fromSS {
					// This pair belongs to an action that prepared
					// before the checkpoint and committed after it: its
					// version postdates the checkpoint's.
					v, kind, err := r.readData(p.Addr)
					if err != nil {
						return err
					}
					if kind == object.KindAtomic {
						row.base = v
						row.fromSS = false
					}
					continue
				}
				if row.state == simplelog.ObjPrepared {
					// The latest committed version: becomes the base of
					// the restored, still write-locked object.
					v, kind, err := r.readData(p.Addr)
					if err != nil {
						return err
					}
					if kind != object.KindAtomic {
						return fmt.Errorf("hybridlog: %v changed kind across entries", p.UID)
					}
					row.base = v
					row.state = simplelog.ObjRestored
				}
				continue
			}
			v, kind, err := r.readData(p.Addr)
			if err != nil {
				return err
			}
			nr := &otRow{kind: kind, state: simplelog.ObjRestored, base: v}
			if kind == object.KindMutex {
				nr.mutexLSN = p.Addr
			}
			r.ot[p.UID] = nr

		case simplelog.PartPrepared:
			if seen {
				if row.kind == object.KindMutex {
					if err := r.maybeCopyMutex(p); err != nil {
						return err
					}
					continue
				}
				if row.writer.IsZero() && row.cur == nil {
					// The row holds only a committed base (restored from
					// a checkpoint written while this action was
					// preparing); this pair supplies the in-progress
					// current version and the write lock.
					v, kind, err := r.readData(p.Addr)
					if err != nil {
						return err
					}
					if kind == object.KindAtomic {
						row.cur = v
						row.writer = aid
					}
				}
				continue
			}
			v, kind, err := r.readData(p.Addr)
			if err != nil {
				return err
			}
			if kind == object.KindAtomic {
				r.ot[p.UID] = &otRow{
					kind:   object.KindAtomic,
					state:  simplelog.ObjPrepared,
					cur:    v,
					writer: aid,
				}
			} else {
				r.ot[p.UID] = &otRow{
					kind:     object.KindMutex,
					state:    simplelog.ObjRestored,
					base:     v,
					mutexLSN: p.Addr,
				}
			}

		case simplelog.PartAborted:
			// Atomic versions are discarded; mutex versions written by
			// this prepared-then-aborted action are restored (§2.4.2).
			if seen {
				if row.kind == object.KindMutex {
					if err := r.maybeCopyMutex(p); err != nil {
						return err
					}
				}
				continue
			}
			// Unseen object: read the data entry to learn its kind.
			v, kind, err := r.readData(p.Addr)
			if err != nil {
				return err
			}
			if kind != object.KindMutex {
				continue
			}
			r.ot[p.UID] = &otRow{
				kind:     object.KindMutex,
				state:    simplelog.ObjRestored,
				base:     v,
				mutexLSN: p.Addr,
			}
		}
	}
	return nil
}

// maybeCopyMutex applies the early-prepare rule of §4.4: with data
// entries of different actions interleaved, a mutex version already in
// the OT may be older than the one this pair names; compare log
// addresses and keep the later.
func (r *recovery) maybeCopyMutex(p logrec.UIDLSN) error {
	row := r.ot[p.UID]
	if p.Addr <= row.mutexLSN {
		return nil
	}
	v, kind, err := r.readData(p.Addr)
	if err != nil {
		return err
	}
	if kind != object.KindMutex {
		return fmt.Errorf("hybridlog: %v changed kind across entries", p.UID)
	}
	row.base = v
	row.mutexLSN = p.Addr
	return nil
}

// processCommittedSS restores the committed stable state written by
// housekeeping: every pair is the latest committed version of one
// object (§5.1.2).
func (r *recovery) processCommittedSS(pairs []logrec.UIDLSN) error {
	for _, p := range pairs {
		if row, seen := r.ot[p.UID]; seen {
			if row.state == simplelog.ObjPrepared {
				v, kind, err := r.readData(p.Addr)
				if err != nil {
					return err
				}
				if kind == object.KindAtomic {
					row.base = v
					row.state = simplelog.ObjRestored
				}
			}
			continue
		}
		v, kind, err := r.readData(p.Addr)
		if err != nil {
			return err
		}
		nr := &otRow{kind: kind, state: simplelog.ObjRestored, base: v, fromSS: true}
		if kind == object.KindMutex {
			nr.mutexLSN = p.Addr
		}
		r.ot[p.UID] = nr
	}
	return nil
}

// readData follows a log address to a data entry and decodes its
// version.
func (r *recovery) readData(addr stablelog.LSN) (value.Value, object.Kind, error) {
	payload, err := r.log.Read(addr)
	if err != nil {
		return nil, 0, fmt.Errorf("hybridlog: data entry at %v: %w", addr, err)
	}
	e, err := logrec.Decode(logrec.Hybrid, payload)
	if err != nil {
		return nil, 0, fmt.Errorf("hybridlog: data entry at %v: %w", addr, err)
	}
	if e.Kind != logrec.KindData {
		return nil, 0, fmt.Errorf("hybridlog: entry at %v is %v, want data", addr, e.Kind)
	}
	r.t.DataRead++
	v, err := value.Unflatten(e.Value)
	if err != nil {
		return nil, 0, fmt.Errorf("hybridlog: version at %v: %w", addr, err)
	}
	return v, e.ObjType, nil
}

func (r *recovery) applyBaseVersion(uid ids.UID, flat []byte, overrideSS bool) {
	if row, seen := r.ot[uid]; seen {
		if row.state == simplelog.ObjPrepared {
			if v, err := value.Unflatten(flat); err == nil {
				row.base = v
				row.state = simplelog.ObjRestored
			}
		} else if overrideSS && row.fromSS && row.kind == object.KindAtomic {
			if v, err := value.Unflatten(flat); err == nil {
				row.base = v
				row.fromSS = false
			}
		}
		return
	}
	v, err := value.Unflatten(flat)
	if err != nil {
		return
	}
	r.ot[uid] = &otRow{kind: object.KindAtomic, state: simplelog.ObjRestored, base: v}
}

// finish materializes objects, resolves references, rebuilds AS/PAT/MT.
func (r *recovery) finish() (*Tables, error) {
	heap := object.NewHeap()
	atomics := make(map[ids.UID]*object.Atomic)
	mutexes := make(map[ids.UID]*object.Mutex)
	var maxUID ids.UID
	//roslint:nondet order-independent: installs into keyed maps and the heap, whose readers sort (Heap.UIDs)
	for uid, row := range r.ot {
		if uid > maxUID {
			maxUID = uid
		}
		switch row.kind {
		case object.KindAtomic:
			a := object.RestoreAtomic(uid, row.base, row.cur, row.writer)
			atomics[uid] = a
			heap.Register(a)
		case object.KindMutex:
			m := object.NewMutex(uid, row.base)
			mutexes[uid] = m
			heap.Register(m)
			r.t.MT[uid] = row.mutexLSN
		}
	}
	lookup := func(u ids.UID) (value.Obj, bool) {
		o, ok := heap.Lookup(u)
		if !ok {
			return nil, false
		}
		return o, true
	}
	//roslint:nondet order-independent: per-object reference resolution, no cross-object effects
	for uid, row := range r.ot {
		switch row.kind {
		case object.KindAtomic:
			a := atomics[uid]
			if row.base != nil {
				nb, err := value.ResolveRefs(row.base, lookup)
				if err != nil {
					return nil, err
				}
				a.SetBase(nb)
			}
			if row.cur != nil && !row.writer.IsZero() {
				nc, err := value.ResolveRefs(row.cur, lookup)
				if err != nil {
					return nil, err
				}
				if err := a.Replace(row.writer, nc); err != nil {
					return nil, err
				}
			}
		case object.KindMutex:
			m := mutexes[uid]
			if row.base != nil {
				nv, err := value.ResolveRefs(row.base, lookup)
				if err != nil {
					return nil, err
				}
				m.SetCurrent(nv)
			}
		}
	}
	r.t.Heap = heap
	r.t.AS = heap.AccessibleSet()
	r.t.PAT = object.NewPAT()
	//roslint:nondet order-independent: installs into the PAT set, whose readers sort (PAT.Actions)
	for aid, st := range r.t.PT {
		if st == simplelog.PartPrepared {
			r.t.PAT.Add(aid)
		}
	}
	r.t.MaxUID = maxUID
	return r.t, nil
}
