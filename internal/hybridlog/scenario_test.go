package hybridlog

// Scenario tests for chapter 4: the hybrid-log recovery of §4.3.2
// (Figure 4-2) and the early-prepare complication of §4.4 (Figure 4-3).

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/logrec"
	"repro/internal/object"
	"repro/internal/simplelog"
	"repro/internal/stablelog"
	"repro/internal/value"
)

var (
	gP = ids.GuardianID(1)
	tA = ids.ActionID{Coordinator: gP, Seq: 1} // "T1"
	tB = ids.ActionID{Coordinator: gP, Seq: 2} // "T2"
)

// logBuilder hand-assembles a hybrid log with explicit chain links.
type logBuilder struct {
	t     *testing.T
	log   *stablelog.Log
	chain stablelog.LSN
}

func newLogBuilder(t *testing.T) *logBuilder {
	t.Helper()
	vol := stablelog.NewMemVolume(256)
	site, err := stablelog.CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	return &logBuilder{t: t, log: site.Log(), chain: stablelog.NoLSN}
}

func (b *logBuilder) data(kind object.Kind, v value.Value) stablelog.LSN {
	b.t.Helper()
	lsn, err := b.log.Write(logrec.Encode(logrec.Hybrid, &logrec.Entry{
		Kind: logrec.KindData, ObjType: kind, Value: value.Flatten(v, nil),
	}))
	if err != nil {
		b.t.Fatal(err)
	}
	return lsn
}

func (b *logBuilder) outcome(e *logrec.Entry) stablelog.LSN {
	b.t.Helper()
	e.Prev = b.chain
	lsn, err := b.log.Write(logrec.Encode(logrec.Hybrid, e))
	if err != nil {
		b.t.Fatal(err)
	}
	b.chain = lsn
	return lsn
}

func (b *logBuilder) finish() *stablelog.Log {
	b.t.Helper()
	if err := b.log.Force(); err != nil {
		b.t.Fatal(err)
	}
	return b.log
}

func getAtomic(t *testing.T, h *object.Heap, uid ids.UID) *object.Atomic {
	t.Helper()
	o, ok := h.Lookup(uid)
	if !ok {
		t.Fatalf("%v not restored", uid)
	}
	a, ok := o.(*object.Atomic)
	if !ok {
		t.Fatalf("%v is %T, want atomic", uid, o)
	}
	return a
}

func getMutex(t *testing.T, h *object.Heap, uid ids.UID) *object.Mutex {
	t.Helper()
	o, ok := h.Lookup(uid)
	if !ok {
		t.Fatalf("%v not restored", uid)
	}
	m, ok := o.(*object.Mutex)
	if !ok {
		t.Fatalf("%v is %T, want mutex", uid, o)
	}
	return m
}

// TestScenarioFig4_2 reproduces §4.3.2: O1 atomic, O2 mutex; T1
// committed, T2 prepared. The log of Figure 4-2/4-3's shape:
//
//	bc(O1,V1b,nil) data(V1,T1) data(V2,T1)
//	prepared(T1,[(O1,L1),(O2,L2)]) committed(T1)
//	data(V1',T2) data(V2',T2) prepared(T2,[(O1,L1'),(O2,L2')])
func TestScenarioFig4_2(t *testing.T) {
	const o1, o2 = ids.UID(11), ids.UID(12)
	v1b := value.Int(1)
	v1T1, v2T1 := value.Int(10), value.Int(20)
	v1T2, v2T2 := value.Int(100), value.Int(200)

	b := newLogBuilder(t)
	b.outcome(&logrec.Entry{Kind: logrec.KindBaseCommitted, UID: o1, Value: value.Flatten(v1b, nil)})
	l1 := b.data(object.KindAtomic, v1T1)
	l2 := b.data(object.KindMutex, v2T1)
	b.outcome(&logrec.Entry{Kind: logrec.KindPrepared, AID: tA,
		Pairs: []logrec.UIDLSN{{UID: o1, Addr: l1}, {UID: o2, Addr: l2}}})
	b.outcome(&logrec.Entry{Kind: logrec.KindCommitted, AID: tA})
	l1p := b.data(object.KindAtomic, v1T2)
	l2p := b.data(object.KindMutex, v2T2)
	b.outcome(&logrec.Entry{Kind: logrec.KindPrepared, AID: tB,
		Pairs: []logrec.UIDLSN{{UID: o1, Addr: l1p}, {UID: o2, Addr: l2p}}})
	log := b.finish()

	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if tables.PT[tA] != simplelog.PartCommitted || tables.PT[tB] != simplelog.PartPrepared {
		t.Fatalf("PT = %v", tables.PT)
	}
	// O1: current = T2's version (write lock granted), base = T1's
	// committed version; the bc entry at the chain's end is ignored.
	a1 := getAtomic(t, tables.Heap, o1)
	if a1.Writer() != tB {
		t.Fatalf("O1 writer = %v, want T2", a1.Writer())
	}
	if cur, ok := a1.Current(); !ok || !value.Equal(cur, v1T2) {
		t.Fatalf("O1 current = %v, want %s", cur, value.String(v1T2))
	}
	if !value.Equal(a1.Base(), v1T1) {
		t.Fatalf("O1 base = %s, want T1's committed %s", value.String(a1.Base()), value.String(v1T1))
	}
	// O2: mutex restored to T2's (prepared) version.
	m2 := getMutex(t, tables.Heap, o2)
	if !value.Equal(m2.Current(), v2T2) {
		t.Fatalf("O2 = %s, want %s", value.String(m2.Current()), value.String(v2T2))
	}
	// MT points at T2's data entry for O2.
	if tables.MT[o2] != l2p {
		t.Fatalf("MT[O2] = %v, want %v", tables.MT[o2], l2p)
	}
	// Chain-following efficiency: 4 outcome entries processed, and only
	// 3 data fetches (O1's base+current, O2's latest) — T1's stale O2
	// version is never read.
	if tables.OutcomesRead != 4 {
		t.Errorf("OutcomesRead = %d, want 4", tables.OutcomesRead)
	}
	if tables.DataRead != 3 {
		t.Errorf("DataRead = %d, want 3 (stale mutex version skipped)", tables.DataRead)
	}
}

// TestScenarioFig4_3 reproduces the early-prepare problem of §4.4: data
// entries of T1 and T2 interleave; O1 is a mutex modified first by T1
// and then by T2; both prepared, T1 committed. Without the log-address
// comparison the recovery would restore T1's older version.
func TestScenarioFig4_3(t *testing.T) {
	const o1, o2, o3, o4 = ids.UID(21), ids.UID(22), ids.UID(23), ids.UID(24)
	v1T1 := value.Str("O1 by T1 (older)")
	v1T2 := value.Str("O1 by T2 (latest)")

	b := newLogBuilder(t)
	lT1o1 := b.data(object.KindMutex, v1T1) // step 1: early prepare for T1
	lT2o1 := b.data(object.KindMutex, v1T2) // step 2: T2 seizes and modifies O1
	lT2o2 := b.data(object.KindAtomic, value.Int(2))
	lT2o3 := b.data(object.KindAtomic, value.Int(3))
	b.outcome(&logrec.Entry{Kind: logrec.KindPrepared, AID: tB, Pairs: []logrec.UIDLSN{
		{UID: o1, Addr: lT2o1}, {UID: o2, Addr: lT2o2}, {UID: o3, Addr: lT2o3}}})
	lT1o4 := b.data(object.KindAtomic, value.Int(4)) // step 5
	b.outcome(&logrec.Entry{Kind: logrec.KindPrepared, AID: tA, Pairs: []logrec.UIDLSN{
		{UID: o1, Addr: lT1o1}, {UID: o4, Addr: lT1o4}}})
	b.outcome(&logrec.Entry{Kind: logrec.KindCommitted, AID: tA})
	log := b.finish()

	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	// The crux: O1 must hold T2's version, the *latest* data entry,
	// even though T1's prepared entry is processed first (T1 committed,
	// T2 merely prepared).
	m1 := getMutex(t, tables.Heap, o1)
	if !value.Equal(m1.Current(), v1T2) {
		t.Fatalf("O1 = %s, want %s (latest-address rule)",
			value.String(m1.Current()), value.String(v1T2))
	}
	if tables.MT[o1] != lT2o1 {
		t.Fatalf("MT[O1] = %v, want %v", tables.MT[o1], lT2o1)
	}
	// O4 committed under T1; O2, O3 write-locked by prepared T2.
	if !value.Equal(getAtomic(t, tables.Heap, o4).Base(), value.Int(4)) {
		t.Error("O4 wrong")
	}
	for _, uid := range []ids.UID{o2, o3} {
		a := getAtomic(t, tables.Heap, uid)
		if a.Writer() != tB {
			t.Errorf("%v writer = %v, want T2", uid, a.Writer())
		}
	}
	if tables.PT[tA] != simplelog.PartCommitted || tables.PT[tB] != simplelog.PartPrepared {
		t.Fatalf("PT = %v", tables.PT)
	}
}

// TestScenarioFig4_3ReversedVerdicts is the dual: T2 (the later mutex
// writer) aborted after preparing, T1 unknown. T2's version still wins.
func TestScenarioFig4_3ReversedVerdicts(t *testing.T) {
	const o1 = ids.UID(31)
	v1T1 := value.Str("older")
	v1T2 := value.Str("latest")

	b := newLogBuilder(t)
	lT1 := b.data(object.KindMutex, v1T1)
	lT2 := b.data(object.KindMutex, v1T2)
	b.outcome(&logrec.Entry{Kind: logrec.KindPrepared, AID: tB,
		Pairs: []logrec.UIDLSN{{UID: o1, Addr: lT2}}})
	b.outcome(&logrec.Entry{Kind: logrec.KindPrepared, AID: tA,
		Pairs: []logrec.UIDLSN{{UID: o1, Addr: lT1}}})
	b.outcome(&logrec.Entry{Kind: logrec.KindAborted, AID: tB})
	log := b.finish()

	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	m1 := getMutex(t, tables.Heap, o1)
	if !value.Equal(m1.Current(), v1T2) {
		t.Fatalf("O1 = %s, want %s (prepared-then-aborted still wins by address)",
			value.String(m1.Current()), value.String(v1T2))
	}
}

// TestRecoverySkipsTrailingData: data entries written (and made durable
// by a later force) after the last outcome entry belong to an action
// that never prepared; recovery must skip them to find the chain head.
func TestRecoverySkipsTrailingData(t *testing.T) {
	const o1 = ids.UID(41)
	b := newLogBuilder(t)
	l1 := b.data(object.KindAtomic, value.Int(1))
	b.outcome(&logrec.Entry{Kind: logrec.KindPrepared, AID: tA,
		Pairs: []logrec.UIDLSN{{UID: o1, Addr: l1}}})
	b.outcome(&logrec.Entry{Kind: logrec.KindCommitted, AID: tA})
	// Early-prepared data for T2, which never prepared.
	b.data(object.KindAtomic, value.Int(99))
	b.data(object.KindMutex, value.Int(98))
	log := b.finish()

	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables.PT) != 1 || tables.PT[tA] != simplelog.PartCommitted {
		t.Fatalf("PT = %v", tables.PT)
	}
	if tables.Heap.Len() != 1 {
		t.Fatalf("heap has %d objects, want 1", tables.Heap.Len())
	}
	if !value.Equal(getAtomic(t, tables.Heap, o1).Base(), value.Int(1)) {
		t.Fatal("O1 wrong")
	}
}

// TestRecoveryEmptyHybridLog handles the degenerate case.
func TestRecoveryEmptyHybridLog(t *testing.T) {
	b := newLogBuilder(t)
	log := b.finish()
	tables, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if tables.ChainHead != stablelog.NoLSN || tables.Heap.Len() != 0 {
		t.Fatalf("recovered %+v from empty log", tables)
	}
}
