package obs

import (
	"reflect"
	"testing"

	"repro/internal/ids"
)

// positions returns the merged indices of events matching pred.
func positions(merged []Event, pred func(Event) bool) []int {
	var out []int
	for i, e := range merged {
		if pred(e) {
			out = append(out, i)
		}
	}
	return out
}

// TestMergeGuardianContinuity: a promoted backup's events for the dead
// primary's gid come after every primary-stream event for that gid —
// and the merged stream passes the Checker, which it would not if the
// promoted log.open reset the boundary under the primary's last
// outcome.
func TestMergeGuardianContinuity(t *testing.T) {
	const gid = 5
	aid := ids.ActionID{Coordinator: gid, Seq: 1}
	primary := NodeTrace{Node: "p", Events: []Event{
		{Seq: 1, Kind: KindLogOpen, Gid: gid, Durable: 0},
		{Seq: 2, Kind: KindOutcomeAppend, Gid: gid, AID: aid, LSN: 0, Code: uint8(OutcomeCommitted)},
		{Seq: 3, Kind: KindForceDone, Gid: gid, LSN: 0, Durable: 512, Bytes: 512, OK: true},
		{Seq: 4, Kind: KindOutcomeDurable, Gid: gid, AID: aid, LSN: 0, Code: uint8(OutcomeCommitted)},
	}}
	// The backup stream's own-gid traffic happens concurrently; its
	// events for the primary's gid (the takeover) must sort last.
	backup := NodeTrace{Node: "b", Events: []Event{
		{Seq: 1, Kind: KindLogOpen, Gid: 6, Durable: 0},
		{Seq: 2, Kind: KindRepPromote, Gid: gid, Durable: 512},
		{Seq: 3, Kind: KindRecoveryStart, Gid: gid},
		{Seq: 4, Kind: KindRecoveryPhase, Gid: gid, Code: uint8(PhaseResume)},
		{Seq: 5, Kind: KindLogOpen, Gid: gid, Durable: 512},
	}}
	merged, warns := MergeTraces([]NodeTrace{primary, backup})
	if len(warns) != 0 {
		t.Fatalf("warnings: %v", warns)
	}
	if len(merged) != 9 {
		t.Fatalf("merged %d events, want 9", len(merged))
	}
	lastPrimary := positions(merged, func(e Event) bool { return e.Kind == KindOutcomeDurable })[0]
	promote := positions(merged, func(e Event) bool { return e.Kind == KindRepPromote })[0]
	if promote < lastPrimary {
		t.Fatalf("takeover at %d before primary's outcome at %d", promote, lastPrimary)
	}
	ck := NewChecker(nil)
	for _, e := range merged {
		ck.Emit(e)
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("checker over merged stream: %v", err)
	}
	// Determinism: merging again yields the identical stream.
	again, _ := MergeTraces([]NodeTrace{primary, backup})
	if !reflect.DeepEqual(merged, again) {
		t.Fatalf("merge is not deterministic")
	}
}

// TestMergeReplicationEdges: rep.recv sorts after its covering
// rep.send even when the backup stream is listed first, and rep.ack
// after the replica's recv.
func TestMergeReplicationEdges(t *testing.T) {
	backup := NodeTrace{Node: "b", Events: []Event{
		{Seq: 1, Kind: KindRepRecv, Gid: 2, Durable: 512, Bytes: 512},
	}}
	primary := NodeTrace{Node: "p", Events: []Event{
		{Seq: 1, Kind: KindRepSend, Gid: 1, From: 1, To: 2, Durable: 0, Bytes: 512},
		{Seq: 2, Kind: KindRepAck, Gid: 1, From: 1, To: 2, Durable: 512},
		{Seq: 3, Kind: KindRepQuorum, Gid: 1, Durable: 512, OK: true},
	}}
	merged, warns := MergeTraces([]NodeTrace{backup, primary})
	if len(warns) != 0 {
		t.Fatalf("warnings: %v", warns)
	}
	var order []Kind
	for _, e := range merged {
		order = append(order, e.Kind)
	}
	want := []Kind{KindRepSend, KindRepRecv, KindRepAck, KindRepQuorum}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

// TestMergeTwoPCEdge: a participant's committed append follows the
// coordinator shard's committing append.
func TestMergeTwoPCEdge(t *testing.T) {
	aid := ids.ActionID{Coordinator: 1, Seq: 9}
	participant := NodeTrace{Node: "s2", Events: []Event{
		{Seq: 1, Kind: KindOutcomeAppend, Gid: 2, AID: aid, LSN: 0, Code: uint8(OutcomeCommitted)},
	}}
	coord := NodeTrace{Node: "s1", Events: []Event{
		{Seq: 1, Kind: KindOutcomeAppend, Gid: 1, AID: aid, LSN: 0, Code: uint8(OutcomeCommitting)},
	}}
	merged, warns := MergeTraces([]NodeTrace{participant, coord})
	if len(warns) != 0 {
		t.Fatalf("warnings: %v", warns)
	}
	if merged[0].Gid != 1 || merged[1].Gid != 2 {
		t.Fatalf("committed before committing: %+v", merged)
	}
}

// TestMergeTruncatedCause: when the cause record was lost to a torn
// trace, the effect is released rather than wedging the merge.
func TestMergeTruncatedCause(t *testing.T) {
	// The recv's matching send does not exist anywhere (primary trace
	// lost it): no constraint, no wedge, no warning.
	backup := NodeTrace{Node: "b", Events: []Event{
		{Seq: 1, Kind: KindRepRecv, Gid: 2, Durable: 512, Bytes: 512},
	}}
	merged, warns := MergeTraces([]NodeTrace{backup})
	if len(merged) != 1 || len(warns) != 0 {
		t.Fatalf("merged %d, warns %v", len(merged), warns)
	}
}

// TestMergeWedgeRelease: genuinely cyclic inputs (possible only when
// traces are inconsistent) release with a warning instead of dropping
// events.
func TestMergeWedgeRelease(t *testing.T) {
	// Stream 0 holds gid 9 hostage behind a recv whose send sits in
	// stream 1, behind stream 1's own gid-9 event (which waits for
	// stream 0 to drain gid 9): a cycle.
	s0 := NodeTrace{Node: "a", Events: []Event{
		{Seq: 1, Kind: KindRepRecv, Gid: 9, Durable: 512, Bytes: 512},
	}}
	s1 := NodeTrace{Node: "b", Events: []Event{
		{Seq: 1, Kind: KindLogOpen, Gid: 9},
		{Seq: 2, Kind: KindRepSend, Gid: 9, From: 1, To: 2, Durable: 0, Bytes: 512},
	}}
	merged, warns := MergeTraces([]NodeTrace{s0, s1})
	if len(merged) != 3 {
		t.Fatalf("merged %d events, want all 3", len(merged))
	}
	if len(warns) == 0 {
		t.Fatalf("no warning for a released wedge")
	}
}
